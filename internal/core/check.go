package core

import (
	"fmt"
)

// CheckOptions tunes the invariant audit.
type CheckOptions struct {
	// AllowDeleted permits logically deleted nodes to remain stitched
	// (true while slow-path queries or unflushed removal buffers may
	// hold them; false after Quiesce on an otherwise idle map with no
	// in-flight queries).
	AllowDeleted bool
}

// CheckInvariants audits the composition without transactional
// protection; the map must be quiescent. It verifies:
//
//   - the skip list is sorted at every level, with equal keys only among
//     logically deleted nodes ordered before their live replacement;
//   - prev/next links mirror each other at every level and every tower
//     member appears at level 0;
//   - the hash index and the set of logically present skip list nodes
//     are identical (the paper's central invariant: "the hash map always
//     reflects the current logical state");
//   - insertion times never exceed removal times on deleted nodes.
func (m *Map[K, V]) CheckInvariants(opts CheckOptions) error {
	// Collect the level-0 chain.
	live := make(map[K]*node[K, V])
	level0 := make(map[*node[K, V]]bool)
	var prev *node[K, V] = m.head
	for cur := m.head.next0.Raw(); ; cur = cur.next0.Raw() {
		if cur == nil {
			return fmt.Errorf("level 0: nil link")
		}
		if back := cur.prev0.Raw(); back != prev {
			return fmt.Errorf("level 0: prev link of %v broken", cur.key)
		}
		if cur.sentinel > 0 {
			break
		}
		if cur.sentinel < 0 {
			return fmt.Errorf("level 0: head reachable mid-chain")
		}
		level0[cur] = true
		deleted := cur.rTime.Raw() != rTimeNone
		if deleted && !opts.AllowDeleted {
			return fmt.Errorf("deleted node %v still stitched", cur.key)
		}
		if deleted && cur.rTime.Raw() < cur.iTime {
			return fmt.Errorf("node %v removed at %d before inserted at %d",
				cur.key, cur.rTime.Raw(), cur.iTime)
		}
		if prev.sentinel == 0 {
			switch {
			case m.less(prev.key, cur.key):
				// strictly ascending: fine
			case m.less(cur.key, prev.key):
				return fmt.Errorf("level 0: order violation %v > %v", prev.key, cur.key)
			default:
				// Equal keys: every node but the last among equals must
				// be logically deleted (§4.2).
				if prev.rTime.Raw() == rTimeNone {
					return fmt.Errorf("duplicate live key %v", prev.key)
				}
			}
		}
		if !deleted {
			if _, dup := live[cur.key]; dup {
				return fmt.Errorf("two live nodes for key %v", cur.key)
			}
			live[cur.key] = cur
		}
		prev = cur
	}
	// Upper levels must be sub-chains of level 0 with mirrored links.
	for l := 1; l < m.cfg.MaxLevel; l++ {
		prev = m.head
		for cur := m.head.nextAt(l).Raw(); ; cur = cur.nextAt(l).Raw() {
			if cur == nil {
				return fmt.Errorf("level %d: nil link", l)
			}
			if back := cur.prevAt(l).Raw(); back != prev {
				return fmt.Errorf("level %d: prev link of %v broken", l, cur.key)
			}
			if cur.sentinel > 0 {
				break
			}
			if cur.height() <= l {
				return fmt.Errorf("level %d: node %v of height %d present", l, cur.key, cur.height())
			}
			if !level0[cur] {
				return fmt.Errorf("level %d: node %v missing from level 0", l, cur.key)
			}
			prev = cur
		}
	}
	// The hash index must match the live set exactly.
	indexed := 0
	var indexErr error
	m.index.ForEachSlow(func(k K, n *node[K, V]) bool {
		indexed++
		ln, ok := live[k]
		if !ok {
			indexErr = fmt.Errorf("index maps %v to a node that is not live in the list", k)
			return false
		}
		if ln != n {
			indexErr = fmt.Errorf("index maps %v to a stale node", k)
			return false
		}
		return true
	})
	if indexErr != nil {
		return indexErr
	}
	if indexed != len(live) {
		return fmt.Errorf("index has %d entries but list has %d live nodes", indexed, len(live))
	}
	return nil
}

// SizeSlow counts logically present nodes without transactional
// protection; the map must be quiescent.
func (m *Map[K, V]) SizeSlow() int {
	n := 0
	for cur := m.head.next0.Raw(); cur.sentinel == 0; cur = cur.next0.Raw() {
		if cur.rTime.Raw() == rTimeNone {
			n++
		}
	}
	return n
}

// StitchedSlow counts all stitched nodes including logically deleted
// ones; with SizeSlow it measures deferred-reclamation backlog in tests.
func (m *Map[K, V]) StitchedSlow() int {
	n := 0
	for cur := m.head.next0.Raw(); cur.sentinel == 0; cur = cur.next0.Raw() {
		n++
	}
	return n
}
