package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/thashmap"
)

const benchUniverse = 1 << 16

func newBenchMap(b *testing.B, cfg Config) *Map[int64, int64] {
	b.Helper()
	m := New[int64, int64](lessInt64, thashmap.Hash64, cfg)
	h := m.NewHandle()
	for k := int64(0); k < benchUniverse; k += 2 {
		h.Insert(k, k)
	}
	b.ResetTimer()
	return m
}

func BenchmarkLookupHit(b *testing.B) {
	m := newBenchMap(b, Config{})
	b.RunParallel(func(pb *testing.PB) {
		h := m.NewHandle()
		rng := rand.New(rand.NewPCG(rand.Uint64(), 1))
		for pb.Next() {
			h.Lookup(int64(rng.Uint64()%benchUniverse) &^ 1)
		}
	})
}

func BenchmarkLookupMiss(b *testing.B) {
	m := newBenchMap(b, Config{})
	b.RunParallel(func(pb *testing.PB) {
		h := m.NewHandle()
		rng := rand.New(rand.NewPCG(rand.Uint64(), 2))
		for pb.Next() {
			h.Lookup(int64(rng.Uint64()%benchUniverse) | 1)
		}
	})
}

func BenchmarkInsertRemove(b *testing.B) {
	m := newBenchMap(b, Config{})
	b.RunParallel(func(pb *testing.PB) {
		h := m.NewHandle()
		rng := rand.New(rand.NewPCG(rand.Uint64(), 3))
		for pb.Next() {
			k := int64(rng.Uint64() % benchUniverse)
			if rng.Uint64()&1 == 0 {
				h.Insert(k, k)
			} else {
				h.Remove(k)
			}
		}
	})
}

func BenchmarkCeilAbsent(b *testing.B) {
	// Absent-key point queries pay the O(log n) tower descent.
	m := newBenchMap(b, Config{})
	b.RunParallel(func(pb *testing.PB) {
		h := m.NewHandle()
		rng := rand.New(rand.NewPCG(rand.Uint64(), 4))
		for pb.Next() {
			h.Ceil(int64(rng.Uint64()%benchUniverse) | 1)
		}
	})
}

func BenchmarkRange100(b *testing.B) {
	m := newBenchMap(b, Config{})
	b.RunParallel(func(pb *testing.PB) {
		h := m.NewHandle()
		rng := rand.New(rand.NewPCG(rand.Uint64(), 5))
		var buf []Pair[int64, int64]
		for pb.Next() {
			l := int64(rng.Uint64() % benchUniverse)
			buf = h.Range(l, l+100, buf[:0])
		}
	})
}

func BenchmarkRangeSlowPath(b *testing.B) {
	m := newBenchMap(b, Config{SlowOnly: true})
	b.RunParallel(func(pb *testing.PB) {
		h := m.NewHandle()
		rng := rand.New(rand.NewPCG(rand.Uint64(), 6))
		var buf []Pair[int64, int64]
		for pb.Next() {
			l := int64(rng.Uint64() % benchUniverse)
			buf = h.Range(l, l+100, buf[:0])
		}
	})
}

func BenchmarkAtomicPairToggle(b *testing.B) {
	// The batch API's cost: two lookups + two updates in one tx.
	m := newBenchMap(b, Config{})
	b.RunParallel(func(pb *testing.PB) {
		h := m.NewHandle()
		rng := rand.New(rand.NewPCG(rand.Uint64(), 7))
		for pb.Next() {
			k := int64(rng.Uint64() % (benchUniverse / 2))
			_ = h.Atomic(func(op *Txn[int64, int64]) error {
				if op.Contains(k) {
					op.Remove(k)
					op.Insert(k+benchUniverse/2, k)
				} else {
					op.Remove(k + benchUniverse/2)
					op.Insert(k, k)
				}
				return nil
			})
		}
	})
}

func BenchmarkAscend(b *testing.B) {
	m := newBenchMap(b, Config{})
	h := m.NewHandle()
	for i := 0; i < b.N; i++ {
		count := 0
		h.AscendFrom(0, func(k, v int64) bool {
			count++
			return count < 1024
		})
	}
}
