package core

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/thashmap"
)

func newLifecycleMap(cfg Config) *Map[int64, int64] {
	cfg.Buckets = 1021
	return New[int64, int64](func(a, b int64) bool { return a < b }, thashmap.Hash64, cfg)
}

// TestHandleCloseDeregisters is the regression test for the unbounded
// handle registry: handles must leave Map.handles on Close, and their
// counters must survive in RangeStats via the retired accumulator.
func TestHandleCloseDeregisters(t *testing.T) {
	m := newLifecycleMap(Config{})
	const n = 64
	handles := make([]*Handle[int64, int64], n)
	for i := range handles {
		handles[i] = m.NewHandle()
	}
	if got := m.HandleCount(); got != n {
		t.Fatalf("HandleCount = %d, want %d", got, n)
	}
	m.Insert(1, 1)
	handles[0].Range(0, 10, nil)
	before := m.RangeStats()
	if before.FastCommits == 0 && before.SlowCommits == 0 {
		t.Fatalf("range did not count: %+v", before)
	}
	for _, h := range handles {
		h.Close()
		h.Close() // idempotent
	}
	if got := m.HandleCount(); got != 0 {
		t.Fatalf("HandleCount after Close = %d, want 0", got)
	}
	if after := m.RangeStats(); after != before {
		t.Errorf("RangeStats changed across Close: before %+v after %+v", before, after)
	}
}

// TestCloseRoutesBufferedRemovals checks that a closed handle's buffered
// removals reach the orphan queue and are reclaimed by Quiesce, instead
// of staying stitched forever as they did when Close did not exist.
func TestCloseRoutesBufferedRemovals(t *testing.T) {
	m := newLifecycleMap(Config{RemovalBufferSize: 64})
	h := m.NewHandle()
	const keys = 16 // fewer than the buffer size, so nothing auto-flushes
	for k := int64(0); k < keys; k++ {
		h.Insert(k, k)
	}
	for k := int64(0); k < keys; k++ {
		h.Remove(k)
	}
	if stitched, live := m.StitchedSlow(), m.SizeSlow(); stitched-live != keys {
		t.Fatalf("backlog before Close = %d, want %d", stitched-live, keys)
	}
	h.Close()
	if got := m.OrphanBacklog(); got != keys {
		t.Fatalf("orphan queue after Close = %d, want %d", got, keys)
	}
	m.Quiesce()
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatalf("invariants after Quiesce: %v", err)
	}
	if stitched, live := m.StitchedSlow(), m.SizeSlow(); stitched != live {
		t.Errorf("stitched %d != live %d after Quiesce", stitched, live)
	}
	if s := m.MaintenanceStats(); s.Orphaned != keys || s.Adopted != keys || s.DrainedNodes != keys {
		t.Errorf("maintenance stats = %+v, want %d orphaned/adopted/drained", s, keys)
	}
}

// TestPooledConvenienceChurn is the leak-class regression for the
// convenience path: heavy remove/insert churn through pooled handles —
// with GC emptying the pools mid-run — must leave the registry empty
// and, after quiescence, no logically-deleted node stitched. With
// -short it still runs well past the removal buffer and orphan
// thresholds; the full edition covers >10^6 cycles.
func TestPooledConvenienceChurn(t *testing.T) {
	m := newLifecycleMap(Config{})
	goroutines := 8
	iters := 150_000 // ~1.2M operations across goroutines
	if testing.Short() {
		iters = 10_000
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xc0ffee))
			const universe = 512
			for i := 0; i < iters; i++ {
				k := int64(rng.Uint64() % universe)
				if rng.Uint64()&1 == 0 {
					m.Insert(k, k)
				} else {
					m.Remove(k)
				}
				if i%4096 == 0 {
					runtime.GC()
				}
			}
		}(uint64(g) + 1)
	}
	wg.Wait()
	if got := m.HandleCount(); got != 0 {
		t.Errorf("handle registry = %d after convenience churn, want 0", got)
	}
	m.Quiesce()
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Errorf("invariants: %v", err)
	}
	if stitched, live := m.StitchedSlow(), m.SizeSlow(); stitched != live {
		t.Errorf("stitched %d != live %d: logically-deleted nodes left stitched", stitched, live)
	}
}

// TestMaintenanceDrainsWithoutQuiesce checks the background maintainer:
// with Config.Maintenance, orphaned removals are reclaimed without
// anyone calling Quiesce.
func TestMaintenanceDrainsWithoutQuiesce(t *testing.T) {
	m := newLifecycleMap(Config{Maintenance: true, MaintenanceInterval: time.Millisecond})
	defer m.Close()
	const keys = 400
	for k := int64(0); k < keys; k++ {
		m.Insert(k, k)
	}
	for k := int64(0); k < keys; k++ {
		m.Remove(k)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m.OrphanBacklog() == 0 && m.StitchedSlow() == m.SizeSlow() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("maintainer did not drain: backlog %d, stitched %d, live %d",
				m.OrphanBacklog(), m.StitchedSlow(), m.SizeSlow())
		}
		time.Sleep(time.Millisecond)
	}
	s := m.MaintenanceStats()
	if s.Wakeups == 0 || s.DrainedNodes == 0 {
		t.Errorf("maintainer idle: %+v", s)
	}
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Errorf("invariants: %v", err)
	}
	m.Close()
	m.Close() // idempotent
	if !m.Closed() {
		t.Error("Closed() = false after Close")
	}
}

// TestMaintenanceNegativeInterval pins the config guard: a negative
// interval must fall back to the default rather than panicking the
// maintainer goroutine's time.NewTicker.
func TestMaintenanceNegativeInterval(t *testing.T) {
	m := newLifecycleMap(Config{Maintenance: true, MaintenanceInterval: -time.Second})
	m.Insert(1, 1)
	m.Remove(1)
	m.Close()
	if stitched, live := m.StitchedSlow(), m.SizeSlow(); stitched != live {
		t.Errorf("stitched %d != live %d after Close", stitched, live)
	}
}

// TestQuiesceConcurrentWithOperations is the data-race regression for
// the Quiesce/FlushRemovals footgun: flushing a handle's buffer from
// another goroutine while the owner keeps removing must be safe (the
// race detector guards the handoff) and must lose no node.
func TestQuiesceConcurrentWithOperations(t *testing.T) {
	m := newLifecycleMap(Config{RemovalBufferSize: 8})
	h := m.NewHandle()
	defer h.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(11, 13))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := int64(rng.Uint64() % 128)
			if rng.Uint64()&1 == 0 {
				h.Insert(k, k)
			} else {
				h.Remove(k)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		m.Quiesce()
	}
	close(stop)
	wg.Wait()
	m.Quiesce()
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Errorf("invariants: %v", err)
	}
	if stitched, live := m.StitchedSlow(), m.SizeSlow(); stitched != live {
		t.Errorf("stitched %d != live %d after concurrent Quiesce churn", stitched, live)
	}
}

// TestExplicitHandleTurnover churns explicit NewHandle/Close cycles
// across goroutines: the registry must track only live handles and the
// final audit must find no stranded removals.
func TestExplicitHandleTurnover(t *testing.T) {
	m := newLifecycleMap(Config{})
	const goroutines = 8
	const rounds = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xdead))
			for r := 0; r < rounds; r++ {
				h := m.NewHandle()
				const universe = 256
				for i := 0; i < 200; i++ {
					k := int64(rng.Uint64() % universe)
					if rng.Uint64()&1 == 0 {
						h.Insert(k, k)
					} else {
						h.Remove(k)
					}
				}
				h.Close()
			}
		}(uint64(g) + 1)
	}
	wg.Wait()
	if got := m.HandleCount(); got != 0 {
		t.Errorf("handle registry = %d after turnover, want 0", got)
	}
	m.Quiesce()
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Errorf("invariants: %v", err)
	}
	if stitched, live := m.StitchedSlow(), m.SizeSlow(); stitched != live {
		t.Errorf("stitched %d != live %d after handle turnover", stitched, live)
	}
}

// closeRaceProbe is a Persister stub that records Close calls and how
// they interleave, standing in for the durability engine whose
// flush-on-Close makes the Close contract load-bearing.
type closeRaceProbe struct {
	mu     sync.Mutex
	closes int
	inside bool
}

func (p *closeRaceProbe) Snapshot() error { return nil }
func (p *closeRaceProbe) Sync() error     { return nil }
func (p *closeRaceProbe) Err() error      { return nil }
func (p *closeRaceProbe) SimulateCrash() error {
	return nil
}
func (p *closeRaceProbe) Close() error {
	p.mu.Lock()
	if p.inside {
		p.mu.Unlock()
		panic("Persister.Close entered concurrently")
	}
	p.inside = true
	p.closes++
	p.mu.Unlock()
	time.Sleep(2 * time.Millisecond) // widen the race window
	p.mu.Lock()
	p.inside = false
	p.mu.Unlock()
	return nil
}

// TestCloseIdempotentConcurrentWithQuiesce is the regression test for
// the Close contract durability relies on: concurrent Close calls,
// racing Quiesce calls and in-flight operations must all return only
// after teardown completed, the underlying Persister must be closed
// exactly once, and no call may observe a partially torn-down map.
func TestCloseIdempotentConcurrentWithQuiesce(t *testing.T) {
	for _, maint := range []bool{false, true} {
		m := newLifecycleMap(Config{Maintenance: maint, RemovalBufferSize: 8})
		probe := &closeRaceProbe{}
		m.AttachPersistence(nil, probe)
		for k := int64(0); k < 256; k++ {
			m.Insert(k, k)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				m.Close()
				if !m.Closed() {
					t.Error("Close returned with Closed() == false")
				}
				if probe.closes != 1 {
					t.Errorf("Close returned before the persister flush: closes=%d", probe.closes)
				}
			}()
		}
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				m.Quiesce()
			}()
		}
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(base int64) {
				defer wg.Done()
				<-start
				for k := base; k < base+64; k++ {
					m.Remove(k % 256)
				}
			}(int64(i) * 64)
		}
		close(start)
		wg.Wait()
		if probe.closes != 1 {
			t.Fatalf("persister closed %d times, want exactly 1", probe.closes)
		}
		m.Close() // still idempotent afterwards
		if probe.closes != 1 {
			t.Fatalf("late Close re-closed the persister: %d", probe.closes)
		}
	}
}
