package core

import (
	"iter"

	"repro/internal/stm"
)

// iterChunk is how many pairs each underlying transaction fetches during
// iteration: large enough to amortize per-transaction overhead, small
// enough to keep the transactions conflict-resistant.
const iterChunk = 64

// AscendFrom visits pairs with key >= from in ascending order until fn
// returns false. Iteration is weakly consistent: it is assembled from a
// sequence of transactions (each chunk is an atomic snapshot), so it
// tolerates — and may observe — concurrent updates between chunks, like
// the iterators of java.util.concurrent maps. For a fully atomic ordered
// scan over a bounded window use Range; composed with other operations,
// use Txn.Range.
func (h *Handle[K, V]) AscendFrom(from K, fn func(k K, v V) bool) {
	h.ascend(&from, fn)
}

// Ascend visits every pair in ascending key order until fn returns
// false; see AscendFrom for the consistency contract.
func (h *Handle[K, V]) Ascend(fn func(k K, v V) bool) {
	h.ascend(nil, fn)
}

func (h *Handle[K, V]) ascend(from *K, fn func(k K, v V) bool) {
	m := h.m
	var cursor K
	haveCursor := false
	if from != nil {
		cursor = *from
		haveCursor = true
	}
	inclusive := true
	var buf []Pair[K, V]
	for {
		buf = buf[:0]
		_ = m.rt.Atomic(func(tx *stm.Tx) error {
			buf = buf[:0]
			var c *node[K, V]
			if !haveCursor {
				c = m.head.next0.Load(tx, &m.head.orec)
			} else {
				c = m.ceilNodeTx(tx, h, cursor)
				if !inclusive && c.sentinel == 0 && !m.less(cursor, c.key) {
					c = c.next0.Load(tx, &c.orec)
				}
			}
			for c.sentinel == 0 && len(buf) < iterChunk {
				if !c.deleted(tx) {
					buf = append(buf, Pair[K, V]{Key: c.key, Val: c.val})
				}
				c = c.next0.Load(tx, &c.orec)
			}
			return nil
		})
		if len(buf) == 0 {
			return
		}
		for _, p := range buf {
			if !fn(p.Key, p.Val) {
				return
			}
		}
		cursor = buf[len(buf)-1].Key
		haveCursor = true
		inclusive = false
	}
}

// DescendFrom visits pairs with key <= from in descending order until
// fn returns false; the consistency contract matches AscendFrom. This is
// a dividend of the skip hash's double-linking: singly linked lock-free
// skip lists cannot iterate backward at all.
func (h *Handle[K, V]) DescendFrom(from K, fn func(k K, v V) bool) {
	h.descend(&from, fn)
}

// Descend visits every pair in descending key order until fn returns
// false; see DescendFrom.
func (h *Handle[K, V]) Descend(fn func(k K, v V) bool) {
	h.descend(nil, fn)
}

func (h *Handle[K, V]) descend(from *K, fn func(k K, v V) bool) {
	m := h.m
	var cursor K
	haveCursor := false
	if from != nil {
		cursor = *from
		haveCursor = true
	}
	inclusive := true
	var buf []Pair[K, V]
	for {
		buf = buf[:0]
		_ = m.rt.Atomic(func(tx *stm.Tx) error {
			buf = buf[:0]
			var c *node[K, V]
			if !haveCursor {
				c = m.tail.prev0.Load(tx, &m.tail.orec)
			} else if inclusive {
				// First node > cursor, then one step back: the last
				// node with key <= cursor (possibly deleted; the walk
				// below skips those).
				first := m.findPreds(tx, cursor, h.preds, m.nodeBeforeOrAt)
				c = first.prev0.Load(tx, &first.orec)
			} else {
				// First node >= cursor, then back: last node < cursor.
				first := m.findPreds(tx, cursor, h.preds, m.nodeBefore)
				c = first.prev0.Load(tx, &first.orec)
			}
			for c.sentinel == 0 && len(buf) < iterChunk {
				if !c.deleted(tx) {
					buf = append(buf, Pair[K, V]{Key: c.key, Val: c.val})
				}
				c = c.prev0.Load(tx, &c.orec)
			}
			return nil
		})
		if len(buf) == 0 {
			return
		}
		for _, p := range buf {
			if !fn(p.Key, p.Val) {
				return
			}
		}
		cursor = buf[len(buf)-1].Key
		haveCursor = true
		inclusive = false
	}
}

// All returns a weakly consistent iterator over every pair in ascending
// key order, for use with range-over-func:
//
//	for k, v := range m.All() { ... }
func (m *Map[K, V]) All() iter.Seq2[K, V] {
	return func(yield func(K, V) bool) {
		h := m.borrow()
		defer m.releaseClean(h)
		h.Ascend(yield)
	}
}

// AscendFrom visits pairs with key >= from using a pooled handle; see
// Handle.AscendFrom.
func (m *Map[K, V]) AscendFrom(from K, fn func(k K, v V) bool) {
	h := m.borrow()
	defer m.releaseClean(h)
	h.AscendFrom(from, fn)
}

// Backward returns a weakly consistent iterator over every pair in
// descending key order.
func (m *Map[K, V]) Backward() iter.Seq2[K, V] {
	return func(yield func(K, V) bool) {
		h := m.borrow()
		defer m.releaseClean(h)
		h.Descend(yield)
	}
}

// DescendFrom visits pairs with key <= from using a pooled handle; see
// Handle.DescendFrom.
func (m *Map[K, V]) DescendFrom(from K, fn func(k K, v V) bool) {
	h := m.borrow()
	defer m.releaseClean(h)
	h.DescendFrom(from, fn)
}
