package core

import (
	"testing"

	"repro/internal/thashmap"
)

// TestFastPathHitsAcquireNothing is the PR's core acceptance property:
// on a quiescent map every point read is answered by the optimistic fast
// path — hits accumulate, and no transaction begins, commits, or
// acquires an orec on their behalf.
func TestFastPathHitsAcquireNothing(t *testing.T) {
	m := newTestMap(t, Config{})
	for k := int64(0); k < 128; k++ {
		m.Insert(k, k*10)
	}
	before := m.Runtime().Stats()

	const reads = 512
	for i := 0; i < reads; i++ {
		k := int64(i) % 256 // half the probes miss
		v, ok := m.Lookup(k)
		if k < 128 && (!ok || v != k*10) {
			t.Fatalf("Lookup(%d) = %d,%v want %d,true", k, v, ok, k*10)
		}
		if k >= 128 && ok {
			t.Fatalf("Lookup(%d) reported a phantom key", k)
		}
		if m.Contains(k) != (k < 128) {
			t.Fatalf("Contains(%d) = %v", k, k >= 128)
		}
	}

	d := m.Runtime().Stats().Sub(before)
	if d.FastReadHits != 2*reads {
		t.Errorf("FastReadHits = %d, want %d", d.FastReadHits, 2*reads)
	}
	if d.FastReadFallbacks != 0 {
		t.Errorf("FastReadFallbacks = %d on a quiescent map", d.FastReadFallbacks)
	}
	if d.Commits != 0 || d.Aborts != 0 {
		t.Errorf("fast-path hits ran transactions: commits=%d aborts=%d", d.Commits, d.Aborts)
	}
}

// TestFastPathFallbackMidWalk forces the torn-read schedule
// deterministically: the walk hook commits a conflicting write between
// the fast path's chain walk and its revalidation, so the read must
// detect the change, fall back, and answer through a transaction.
func TestFastPathFallbackMidWalk(t *testing.T) {
	m := newTestMap(t, Config{Buckets: 1}) // one bucket: any write invalidates any probe
	m.Insert(1, 10)

	flips := int64(100)
	hook := func() {
		// Toggle key 2 so every fast walk observes a bucket commit.
		if flips%2 == 0 {
			m.Insert(2, 20)
		} else {
			m.Remove(2)
		}
		flips++
	}
	thashmap.SetFastWalkHook(hook)
	defer thashmap.SetFastWalkHook(nil)

	before := m.Runtime().Stats()
	if v, ok := m.Lookup(1); !ok || v != 10 {
		t.Fatalf("Lookup(1) under forced invalidation = %d,%v want 10,true", v, ok)
	}
	if m.Contains(3) {
		t.Fatal("Contains(3) reported a phantom key under forced invalidation")
	}
	d := m.Runtime().Stats().Sub(before)
	if d.FastReadFallbacks != 2 {
		t.Errorf("FastReadFallbacks = %d, want 2", d.FastReadFallbacks)
	}
	if d.FastReadHits != 0 {
		t.Errorf("FastReadHits = %d under forced invalidation, want 0", d.FastReadHits)
	}
	// Each fallback runs as a read-only transaction (plus the hook's own
	// write transactions); the reads themselves must not have aborted
	// repeatedly — the fallback path commits deterministically.
	if d.ReadOnlyCommits != 2 {
		t.Errorf("ReadOnlyCommits = %d, want 2 (one per fallback)", d.ReadOnlyCommits)
	}

	thashmap.SetFastWalkHook(nil)
	after := m.Runtime().Stats()
	if v, ok := m.Lookup(1); !ok || v != 10 {
		t.Fatalf("Lookup(1) after hook removal = %d,%v", v, ok)
	}
	if d2 := m.Runtime().Stats().Sub(after); d2.FastReadHits != 1 || d2.FastReadFallbacks != 0 {
		t.Errorf("post-hook read: hits=%d fallbacks=%d, want 1,0", d2.FastReadHits, d2.FastReadFallbacks)
	}
}

// TestDisableReadFastPath pins the ablation switch: with the fast path
// off, point reads are transactional and the fast counters stay zero.
func TestDisableReadFastPath(t *testing.T) {
	m := newTestMap(t, Config{DisableReadFastPath: true})
	m.Insert(1, 10)
	before := m.Runtime().Stats()
	if v, ok := m.Lookup(1); !ok || v != 10 {
		t.Fatalf("Lookup(1) = %d,%v want 10,true", v, ok)
	}
	if _, ok := m.Lookup(2); ok {
		t.Fatal("Lookup(2) reported a phantom key")
	}
	d := m.Runtime().Stats().Sub(before)
	if d.FastReadHits != 0 || d.FastReadFallbacks != 0 {
		t.Errorf("fast counters moved with the fast path disabled: hits=%d fallbacks=%d",
			d.FastReadHits, d.FastReadFallbacks)
	}
	if d.ReadOnlyCommits != 2 {
		t.Errorf("ReadOnlyCommits = %d, want 2 (transactional reads)", d.ReadOnlyCommits)
	}
}
