package core

import (
	"repro/internal/stm"
)

// rqc is the range query coordinator of §4.5 (Figure 4). It owns a
// version counter — incremented only by slow-path range queries, so that
// elemental operations merely read it — and a doubly linked list of
// in-flight slow-path range queries, newest at the tail. Each list entry
// carries the nodes whose physical removal has been deferred on its
// behalf.
//
// One orec guards the counter and the list links; this concentration is
// deliberate, reproducing the contention profile the paper measures for
// slow-path-heavy workloads (§5.2.2).
type rqc[K comparable, V any] struct {
	orec    stm.Orec
	counter stm.U64
	opsHead stm.Ptr[rangeOp[K, V]]
	opsTail stm.Ptr[rangeOp[K, V]]
}

// rangeOp is Figure 4's range_op: metadata for one in-flight slow-path
// range query. Its own orec guards the deferred list endpoints, so
// removals delegating cleanup contend on the op rather than on the
// whole coordinator.
type rangeOp[K comparable, V any] struct {
	orec stm.Orec
	ver  uint64                 // immutable
	prev stm.Ptr[rangeOp[K, V]] // list links, guarded by rqc.orec
	next stm.Ptr[rangeOp[K, V]]
	// deferred list of nodes to unstitch after this query completes,
	// chained through node.dnext; endpoints guarded by this op's orec.
	defHead stm.Ptr[node[K, V]]
	defTail stm.Ptr[node[K, V]]
}

// onRange registers a new slow-path range query: it increments the
// version counter (the only operation that does) and appends a range_op
// at the tail of the list. It returns the op, whose ver field is the
// query's unique version number.
func (q *rqc[K, V]) onRange(tx *stm.Tx) *rangeOp[K, V] {
	ver := q.counter.Load(tx, &q.orec) + 1
	q.counter.Store(tx, &q.orec, ver)
	op := &rangeOp[K, V]{ver: ver}
	tail := q.opsTail.Load(tx, &q.orec)
	op.prev.Init(tail)
	if tail == nil {
		q.opsHead.Store(tx, &q.orec, op)
	} else {
		tail.next.Store(tx, &q.orec, op)
	}
	q.opsTail.Store(tx, &q.orec, op)
	return op
}

// onUpdate reports the most recent range query's version number; the
// calling insertion or removal orders itself after that query. This is
// the "typically only a single read" O(1) overhead of §4.
func (q *rqc[K, V]) onUpdate(tx *stm.Tx) uint64 {
	return q.counter.Load(tx, &q.orec)
}

// afterRemove is Figure 4's after_remove: take responsibility for the
// logically deleted node n, unstitching immediately when no in-flight
// slow-path range query can need it, and deferring to the most recent
// query otherwise. m supplies the unstitch; the caller's transaction
// makes the decision and the action atomic.
func (q *rqc[K, V]) afterRemove(tx *stm.Tx, m *Map[K, V], n *node[K, V]) {
	tail := q.opsTail.Load(tx, &q.orec)
	if tail == nil || n.iTime >= tail.ver {
		m.unstitchTx(tx, n) // safe to remove immediately
		return
	}
	q.appendDeferred(tx, tail, n)
}

// appendDeferred pushes n onto op's deferred list (O(1)).
func (q *rqc[K, V]) appendDeferred(tx *stm.Tx, op *rangeOp[K, V], n *node[K, V]) {
	t := op.defTail.Load(tx, &op.orec)
	if t == nil {
		op.defHead.Store(tx, &op.orec, n)
	} else {
		t.dnext.Store(tx, &t.orec, n)
	}
	op.defTail.Store(tx, &op.orec, n)
}

// afterRange is Figure 4's after_range: the finishing query's op is
// unlinked; its deferred nodes are either inherited by this map's oldest
// remaining predecessor query (passed backward, guaranteeing eventual
// reclamation) or, when op was the oldest, collected for immediate
// unstitching. The bookkeeping is one transaction; the unstitching runs
// afterwards in bounded batches of reclaimBatch nodes per transaction —
// chunked, rather than the paper's one transaction per node, so a query
// that accumulated a long deferred list does not pay a full
// transaction's begin/commit for every single node, while each chunk
// stays small enough to be conflict-resistant.
func (q *rqc[K, V]) afterRange(m *Map[K, V], op *rangeOp[K, V]) {
	var removals []*node[K, V]
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		removals = removals[:0]
		prev := op.prev.Load(tx, &q.orec)
		next := op.next.Load(tx, &q.orec)
		if prev == nil {
			q.opsHead.Store(tx, &q.orec, next)
		} else {
			prev.next.Store(tx, &q.orec, next)
		}
		if next == nil {
			q.opsTail.Store(tx, &q.orec, prev)
		} else {
			next.prev.Store(tx, &q.orec, prev)
		}
		head := op.defHead.Load(tx, &op.orec)
		if head == nil {
			return nil
		}
		if prev == nil {
			// Oldest query: its deferred nodes are needed by no one.
			for n := head; n != nil; n = n.dnext.Load(tx, &n.orec) {
				removals = append(removals, n)
			}
			return nil
		}
		// Splice the whole deferred list onto the predecessor (O(1)).
		tail := op.defTail.Load(tx, &op.orec)
		pt := prev.defTail.Load(tx, &prev.orec)
		if pt == nil {
			prev.defHead.Store(tx, &prev.orec, head)
		} else {
			pt.dnext.Store(tx, &pt.orec, head)
		}
		prev.defTail.Store(tx, &prev.orec, tail)
		return nil
	})
	// op was the oldest in-flight query, so no remaining query can need
	// these nodes; unstitch unconditionally (consultTail false).
	m.reclaimBatches(removals, false)
}

// tailOp returns the most recent in-flight slow-path range query, or nil.
func (q *rqc[K, V]) tailOp(tx *stm.Tx) *rangeOp[K, V] {
	return q.opsTail.Load(tx, &q.orec)
}
