package core

import (
	"testing"
	"unsafe"

	"repro/internal/stm"
)

// TestNodeHotFieldsFitOneCacheLine guards the cache-conscious layout
// node.go documents: for word-sized keys and values, everything a point
// read or level-0 walk touches must land in the node's first 64 bytes.
// A field reorder or a type growing past a word shows up here as a
// failing offset, not as a silent throughput regression.
func TestNodeHotFieldsFitOneCacheLine(t *testing.T) {
	const line = 64
	var n node[int64, int64]
	hot := []struct {
		name string
		off  uintptr
		size uintptr
	}{
		{"orec", unsafe.Offsetof(n.orec), unsafe.Sizeof(n.orec)},
		{"next0", unsafe.Offsetof(n.next0), unsafe.Sizeof(n.next0)},
		{"prev0", unsafe.Offsetof(n.prev0), unsafe.Sizeof(n.prev0)},
		{"rTime", unsafe.Offsetof(n.rTime), unsafe.Sizeof(n.rTime)},
		{"iTime", unsafe.Offsetof(n.iTime), unsafe.Sizeof(n.iTime)},
		{"key", unsafe.Offsetof(n.key), unsafe.Sizeof(n.key)},
		{"val", unsafe.Offsetof(n.val), unsafe.Sizeof(n.val)},
		{"sentinel", unsafe.Offsetof(n.sentinel), unsafe.Sizeof(n.sentinel)},
	}
	for _, f := range hot {
		if end := f.off + f.size; end > line {
			t.Errorf("hot field %s spans [%d, %d), past the first %d-byte line",
				f.name, f.off, end, line)
		}
	}
	// The orec leads the struct: the fast path samples it before touching
	// anything else, and sharing its line with the level-0 links is the
	// point of the layout.
	if off := unsafe.Offsetof(n.orec); off != 0 {
		t.Errorf("orec at offset %d, want 0", off)
	}
}

// TestNodeSizeBudget pins the whole node's footprint for the word-sized
// instantiation, so an accidental field addition (or a field type
// gaining padding) is caught at review time. Two lines: the hot line
// plus the cold tail (tower slice header and deferred-chain link).
func TestNodeSizeBudget(t *testing.T) {
	got := unsafe.Sizeof(node[int64, int64]{})
	if got > 128 {
		t.Errorf("node[int64,int64] is %d bytes, exceeding the two-line (128 B) budget", got)
	}
	if unsafe.Sizeof(tower[int64, int64]{}) != 2*unsafe.Sizeof(uintptr(0)) {
		t.Errorf("tower[int64,int64] is %d bytes, want two words", unsafe.Sizeof(tower[int64, int64]{}))
	}
}

// TestFastReadCountersPadding keeps each striped counter cell on its own
// cache line; false sharing between stripes would silently serialize the
// very path the striping exists to scale.
func TestFastReadCountersPadding(t *testing.T) {
	if got := unsafe.Sizeof(stm.FastReadCounters{}); got != 64 {
		t.Errorf("FastReadCounters is %d bytes, want exactly one 64-byte line", got)
	}
}
