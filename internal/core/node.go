// Package core implements the skip hash: the paper's primary
// contribution. A transactional closed-addressing hash map routes keys to
// the nodes of a transactional doubly linked skip list, giving O(1)
// expected complexity for every elemental operation except successful
// insertion and absent-key point queries (Figure 1). Range queries run on
// a fast path (one transaction) with a slow-path fallback coordinated by
// the range query coordinator (Figures 3 and 4).
package core

import (
	"repro/internal/stm"
)

// rTimeNone marks a node as logically present (the paper's r_time =
// None). Version numbers produced by the RQC counter are far below this
// sentinel for any feasible execution.
const rTimeNone = ^uint64(0)

// node is the paper's sl_node augmented with the §4.2 logical-deletion
// fields. One orec guards all mutable state (links, r_time, the deferred
// chain link); key, val, height and i_time are immutable once the node is
// published, which is the "const field" optimization modern STMs reward.
//
// The declaration order is the memory layout, and it is deliberate:
// everything a point read or a level-0 walk touches — the orec, the
// level-0 links, both deletion stamps, key and value — comes first, so
// for word-sized keys and values the entire hot set lands in the node's
// first cache line (node_layout_test.go guards the offsets). Levels >= 1
// exist only on the minority of nodes a tower descent visits and live in
// a separately allocated up slice; a height-1 node (half of all nodes)
// allocates no tower at all, where the old twin prev/next slices cost
// two allocations per node regardless of height.
type node[K comparable, V any] struct {
	orec stm.Orec

	// next0/prev0 are the level-0 list links, inlined so the walks that
	// dominate every workload (point reads via the index, range scans,
	// iteration) never chase a slice header off the node's first line.
	next0 stm.Ptr[node[K, V]]
	prev0 stm.Ptr[node[K, V]]

	// rTime is rTimeNone while the node is logically present; a removal
	// stamps it with the most recent range query's version.
	rTime stm.U64

	// iTime is the version of the last slow-path range query that began
	// before this node's insertion (§4.2). It is written inside the
	// inserting transaction, before the node becomes reachable.
	iTime uint64

	key      K
	val      V
	sentinel int8 // 0 interior, -1 head, +1 tail

	// up holds the tower links for levels 1..height-1; nil for height-1
	// nodes. up[l-1] is level l.
	up []tower[K, V]

	// dnext chains the node into an RQC deferred-removal list.
	dnext stm.Ptr[node[K, V]]
}

// tower is one level of a node's upper links, paired so each level's
// next/prev share a cache line slot instead of living in parallel slices.
type tower[K comparable, V any] struct {
	next stm.Ptr[node[K, V]]
	prev stm.Ptr[node[K, V]]
}

func (n *node[K, V]) height() int { return 1 + len(n.up) }

// nextAt returns the level-l forward link. Level 0 is inlined in the
// node; the bounds check on up is the only cost of the split.
func (n *node[K, V]) nextAt(l int) *stm.Ptr[node[K, V]] {
	if l == 0 {
		return &n.next0
	}
	return &n.up[l-1].next
}

// prevAt returns the level-l backward link.
func (n *node[K, V]) prevAt(l int) *stm.Ptr[node[K, V]] {
	if l == 0 {
		return &n.prev0
	}
	return &n.up[l-1].prev
}

func newNode[K comparable, V any](height int) *node[K, V] {
	n := &node[K, V]{}
	if height > 1 {
		n.up = make([]tower[K, V], height-1)
	}
	n.rTime.Init(rTimeNone)
	return n
}

// deleted reports whether the node is logically deleted, reading rTime
// transactionally.
func (n *node[K, V]) deleted(tx *stm.Tx) bool {
	return n.rTime.Load(tx, &n.orec) != rTimeNone
}

// Pair is a key/value pair produced by range queries.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}
