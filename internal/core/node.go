// Package core implements the skip hash: the paper's primary
// contribution. A transactional closed-addressing hash map routes keys to
// the nodes of a transactional doubly linked skip list, giving O(1)
// expected complexity for every elemental operation except successful
// insertion and absent-key point queries (Figure 1). Range queries run on
// a fast path (one transaction) with a slow-path fallback coordinated by
// the range query coordinator (Figures 3 and 4).
package core

import (
	"repro/internal/stm"
)

// rTimeNone marks a node as logically present (the paper's r_time =
// None). Version numbers produced by the RQC counter are far below this
// sentinel for any feasible execution.
const rTimeNone = ^uint64(0)

// node is the paper's sl_node augmented with the §4.2 logical-deletion
// fields. One orec guards all mutable state (links, r_time, the deferred
// chain link); key, val, height and i_time are immutable once the node is
// published, which is the "const field" optimization modern STMs reward.
type node[K comparable, V any] struct {
	orec stm.Orec

	key      K
	val      V
	sentinel int8 // 0 interior, -1 head, +1 tail

	// iTime is the version of the last slow-path range query that began
	// before this node's insertion (§4.2). It is written inside the
	// inserting transaction, before the node becomes reachable.
	iTime uint64

	// rTime is rTimeNone while the node is logically present; a removal
	// stamps it with the most recent range query's version.
	rTime stm.U64

	// prev[l]/next[l] are the level-l tower links; len == height.
	prev []stm.Ptr[node[K, V]]
	next []stm.Ptr[node[K, V]]

	// dnext chains the node into an RQC deferred-removal list.
	dnext stm.Ptr[node[K, V]]
}

func (n *node[K, V]) height() int { return len(n.next) }

func newNode[K comparable, V any](height int) *node[K, V] {
	n := &node[K, V]{
		prev: make([]stm.Ptr[node[K, V]], height),
		next: make([]stm.Ptr[node[K, V]], height),
	}
	n.rTime.Init(rTimeNone)
	return n
}

// deleted reports whether the node is logically deleted, reading rTime
// transactionally.
func (n *node[K, V]) deleted(tx *stm.Tx) bool {
	return n.rTime.Load(tx, &n.orec) != rTimeNone
}

// Pair is a key/value pair produced by range queries.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}
