package core

import (
	"math/rand/v2"
	"sync"
	"testing"
)

func TestAscendVisitsAllInOrder(t *testing.T) {
	m := newTestMap(t, Config{})
	const n = 200 // spans several chunks
	for k := int64(0); k < n; k++ {
		m.Insert(k, k*2)
	}
	var got []int64
	m.AscendFrom(0, func(k, v int64) bool {
		if v != k*2 {
			t.Errorf("key %d has value %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != n {
		t.Fatalf("visited %d keys, want %d", len(got), n)
	}
	for i, k := range got {
		if k != int64(i) {
			t.Fatalf("position %d holds key %d", i, k)
		}
	}
}

func TestAscendFromMidAndEarlyStop(t *testing.T) {
	m := newTestMap(t, Config{})
	for k := int64(0); k < 100; k += 2 {
		m.Insert(k, k)
	}
	var got []int64
	m.AscendFrom(31, func(k, v int64) bool {
		got = append(got, k)
		return len(got) < 5
	})
	want := []int64{32, 34, 36, 38, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAllRangeOverFunc(t *testing.T) {
	m := newTestMap(t, Config{})
	for k := int64(5); k > 0; k-- {
		m.Insert(k, k)
	}
	var sum int64
	for k, v := range m.All() {
		if k != v {
			t.Errorf("pair %d=%d", k, v)
		}
		sum += k
	}
	if sum != 15 {
		t.Errorf("sum = %d, want 15", sum)
	}
}

func TestAscendEmptyMap(t *testing.T) {
	m := newTestMap(t, Config{})
	calls := 0
	m.AscendFrom(0, func(k, v int64) bool {
		calls++
		return true
	})
	if calls != 0 {
		t.Errorf("callback invoked %d times on empty map", calls)
	}
}

func TestAscendSkipsDeletedChunkBoundaries(t *testing.T) {
	// Delete a stretch wider than a chunk; iteration must jump it.
	m := newTestMap(t, Config{})
	for k := int64(0); k < 300; k++ {
		m.Insert(k, k)
	}
	for k := int64(60); k < 200; k++ {
		m.Remove(k)
	}
	count := 0
	last := int64(-1)
	m.AscendFrom(0, func(k, v int64) bool {
		if k >= 60 && k < 200 {
			t.Errorf("visited deleted key %d", k)
		}
		if k <= last {
			t.Errorf("iteration went backwards: %d after %d", k, last)
		}
		last = k
		count++
		return true
	})
	if count != 160 {
		t.Errorf("visited %d keys, want 160", count)
	}
}

func TestAscendUnderConcurrentUpdates(t *testing.T) {
	// Weak consistency contract: iteration must stay sorted and
	// duplicate-free even while the map churns.
	m := newTestMap(t, Config{})
	const universe = 2048
	for k := int64(0); k < universe; k += 2 {
		m.Insert(k, k)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := m.NewHandle()
			rng := rand.New(rand.NewPCG(seed, 1))
			for {
				select {
				case <-done:
					return
				default:
				}
				k := int64(rng.Uint64() % universe)
				if rng.Uint64()&1 == 0 {
					h.Insert(k, k)
				} else {
					h.Remove(k)
				}
			}
		}(uint64(g) + 1)
	}
	h := m.NewHandle()
	for i := 0; i < 50; i++ {
		last := int64(-1)
		h.Ascend(func(k, v int64) bool {
			if k <= last {
				t.Errorf("iteration unsorted or duplicated: %d after %d", k, last)
				return false
			}
			if v != k {
				t.Errorf("key %d carries foreign value %d", k, v)
				return false
			}
			last = k
			return true
		})
	}
	close(done)
	wg.Wait()
}

func TestDescendVisitsAllInReverse(t *testing.T) {
	m := newTestMap(t, Config{})
	const n = 200
	for k := int64(0); k < n; k++ {
		m.Insert(k, k*2)
	}
	var got []int64
	m.DescendFrom(n, func(k, v int64) bool {
		if v != k*2 {
			t.Errorf("key %d has value %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != n {
		t.Fatalf("visited %d keys, want %d", len(got), n)
	}
	for i, k := range got {
		if k != int64(n-1-i) {
			t.Fatalf("position %d holds key %d, want %d", i, k, n-1-i)
		}
	}
}

func TestDescendFromMidInclusive(t *testing.T) {
	m := newTestMap(t, Config{})
	for k := int64(0); k < 100; k += 2 {
		m.Insert(k, k)
	}
	var got []int64
	m.DescendFrom(30, func(k, v int64) bool {
		got = append(got, k)
		return len(got) < 4
	})
	want := []int64{30, 28, 26, 24}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Odd starting point lands between keys.
	got = got[:0]
	m.DescendFrom(31, func(k, v int64) bool {
		got = append(got, k)
		return len(got) < 2
	})
	if len(got) != 2 || got[0] != 30 || got[1] != 28 {
		t.Errorf("DescendFrom(31) = %v, want [30 28]", got)
	}
}

func TestBackwardRangeOverFunc(t *testing.T) {
	m := newTestMap(t, Config{})
	for k := int64(1); k <= 5; k++ {
		m.Insert(k, k)
	}
	var got []int64
	for k := range m.Backward() {
		got = append(got, k)
	}
	want := []int64{5, 4, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Backward() = %v, want %v", got, want)
		}
	}
}

func TestDescendSkipsDeletedAndEmpty(t *testing.T) {
	m := newTestMap(t, Config{})
	calls := 0
	m.DescendFrom(100, func(k, v int64) bool { calls++; return true })
	if calls != 0 {
		t.Errorf("callback ran %d times on empty map", calls)
	}
	for k := int64(0); k < 300; k++ {
		m.Insert(k, k)
	}
	for k := int64(100); k < 250; k++ {
		m.Remove(k)
	}
	last := int64(300)
	count := 0
	m.DescendFrom(299, func(k, v int64) bool {
		if k >= 100 && k < 250 {
			t.Errorf("visited deleted key %d", k)
		}
		if k >= last {
			t.Errorf("descend went forwards: %d after %d", k, last)
		}
		last = k
		count++
		return true
	})
	if count != 150 {
		t.Errorf("visited %d keys, want 150", count)
	}
}

func TestAdaptiveFallbackSkipsDoomedFastPath(t *testing.T) {
	m := newTestMap(t, Config{Adaptive: true, AdaptiveSkip: 8})
	h := m.NewHandle()
	for k := int64(0); k < 64; k++ {
		h.Insert(k, k)
	}
	// Uncontended: everything completes on the fast path, no skipping.
	for i := 0; i < 5; i++ {
		h.Range(0, 63, nil)
	}
	_, _, fastCommits, _ := h.Stats()
	if fastCommits != 5 {
		t.Fatalf("fast commits = %d, want 5", fastCommits)
	}
	// Force a fallback: simulate exhausted tries by setting the skip
	// window directly, then check the next queries bypass the fast path.
	h.adaptSkip = m.cfg.AdaptiveSkip
	before, _, _, slowBefore := h.Stats()
	for i := 0; i < 8; i++ {
		h.Range(0, 63, nil)
	}
	attempts, _, _, slowAfter := h.Stats()
	if attempts != before {
		t.Errorf("fast path probed during skip window: %d -> %d attempts", before, attempts)
	}
	if slowAfter-slowBefore != 8 {
		t.Errorf("slow commits = %d, want 8", slowAfter-slowBefore)
	}
	// Window exhausted: the fast path gets probed (and succeeds) again.
	h.Range(0, 63, nil)
	attempts2, _, fastCommits2, _ := h.Stats()
	if attempts2 == attempts || fastCommits2 != fastCommits+1 {
		t.Errorf("fast path not re-probed after window: attempts %d->%d commits %d->%d",
			attempts, attempts2, fastCommits, fastCommits2)
	}
}

func TestAdaptiveConformance(t *testing.T) {
	// The adaptive variant must preserve all range semantics.
	m := runChaos(t, Config{Adaptive: true}, 8, 2000, 256, 48)
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}
