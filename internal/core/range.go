package core

import (
	"repro/internal/stm"
)

// rangeFast attempts Figure 3's fast path: the whole query as one
// transaction that does not retry on conflict. On success the pairs are
// appended to out; ErrAborted indicates the caller should try again or
// fall back.
func (m *Map[K, V]) rangeFast(h *Handle[K, V], l, r K, out []Pair[K, V]) ([]Pair[K, V], error) {
	if !m.cfg.DisableReadFastPath {
		m.warmDescent(l)
	}
	res := out
	err := m.rt.TryOnce(func(tx *stm.Tx) error {
		res = out
		c := m.findPreds(tx, l, h.preds, m.nodeBefore)
		for c.sentinel == 0 && !m.less(r, c.key) {
			if !c.deleted(tx) {
				res = append(res, Pair[K, V]{Key: c.key, Val: c.val})
			}
			c = c.next0.Load(tx, &c.orec)
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	return res, nil
}

// warmDescent walks the tower toward l through the links' atomic backing,
// with no transaction and no validation, purely to pull the descent's
// cache lines (and their orec words) before the fast-path transaction
// replays the same search. Wrong turns from concurrent splices are
// harmless — the transactional descent re-reads everything — and the walk
// terminates because inserts, removals and their undos never create a
// level cycle. Only immutable fields (key, sentinel) feed the navigation.
func (m *Map[K, V]) warmDescent(k K) {
	cur := m.head
	for l := m.cfg.MaxLevel - 1; l >= 0; l-- {
		for {
			nxt := cur.nextAt(l).Raw()
			if nxt == nil || !m.nodeBefore(nxt, k) {
				break
			}
			cur = nxt
		}
	}
}

// rangeSlow runs Figure 3's slow path. One transaction finds the first
// logically present node at or after l and registers with the RQC —
// doing both atomically makes the start node safe and is the query's
// linearization point. The traversal then proceeds as a resumable
// transaction; a finalizing call hands the query's safe nodes back to
// the RQC.
func (m *Map[K, V]) rangeSlow(h *Handle[K, V], l, r K, out []Pair[K, V]) []Pair[K, V] {
	var sr *SlowRange[K, V]
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		sr = m.BeginSlowRangeTx(tx, h, l)
		return nil
	})
	out = sr.Collect(r, out)
	sr.Finish()
	return out
}

// SlowRange is a registered slow-path range query whose lifecycle the
// caller drives: BeginSlowRangeTx registers it, Collect traverses, and
// Finish deregisters it from the RQC. The skip hash's own Range drives
// one per fallback; the sharded frontend registers one per shard inside
// a single cross-shard transaction so that the union of the per-shard
// traversals is a snapshot taken at the registration commit instant.
type SlowRange[K comparable, V any] struct {
	m  *Map[K, V]
	op *rangeOp[K, V]
	n  *node[K, V] // resumable cursor: next safe node to collect
}

// BeginSlowRangeTx registers a slow-path range query starting at the
// first logically present key >= l, inside the caller's transaction.
// Performing the ceil search and the RQC registration in one transaction
// makes the start node safe and is the query's linearization point. The
// caller must eventually call Finish exactly once (after the enclosing
// transaction commits); if the enclosing transaction aborts, the
// registration is rolled back and the returned value from the failed
// attempt must be discarded.
func (m *Map[K, V]) BeginSlowRangeTx(tx *stm.Tx, h *Handle[K, V], l K) *SlowRange[K, V] {
	return &SlowRange[K, V]{
		m:  m,
		op: m.rqc.onRange(tx),
		n:  m.ceilNodeTx(tx, h, l),
	}
}

// Collect traverses safe nodes from the current cursor while key <= r,
// appending pairs to out. The traversal is a resumable transaction: the
// pairs collected so far and the current safe node are plain locals that
// survive aborts (atomic(no_local_undo)), so an abort behaves as an
// early commit and the next attempt picks up exactly where the last one
// stopped. The cursor persists across calls, so Collect may be invoked
// again with a larger r to extend the scan.
func (s *SlowRange[K, V]) Collect(r K, out []Pair[K, V]) []Pair[K, V] {
	m := s.m
	ver := s.op.ver
	set := out
	n := s.n
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		// Loop order matters for exactly-once collection: the only
		// transactional reads are inside nextSafe and precede the
		// append, so an abort always resumes at a node that has not
		// been collected yet (§4.4.2).
		for n.sentinel == 0 && !m.less(r, n.key) {
			next := m.nextSafe(tx, n, ver)
			set = append(set, Pair[K, V]{Key: n.key, Val: n.val})
			n = next
		}
		return nil
	})
	s.n = n
	return set
}

// Finish deregisters the query, handing its deferred nodes back to the
// RQC for reclamation. It must be called exactly once.
func (s *SlowRange[K, V]) Finish() {
	s.m.rqc.afterRange(s.m, s.op)
}

// nextSafe walks level 0 from n to the next node that is safe for a
// range query with version ver. The tail sentinel is always safe, so the
// walk terminates.
func (m *Map[K, V]) nextSafe(tx *stm.Tx, n *node[K, V], ver uint64) *node[K, V] {
	c := n.next0.Load(tx, &n.orec)
	for !m.isSafe(tx, c, ver) {
		c = c.next0.Load(tx, &c.orec)
	}
	return c
}

// isSafe implements Figure 3's is_safe: sentinels are always safe; nodes
// inserted at or after ver are not (the RQC may unstitch them
// immediately); otherwise the node must be logically present or removed
// at or after ver.
func (m *Map[K, V]) isSafe(tx *stm.Tx, n *node[K, V], ver uint64) bool {
	if n.sentinel != 0 {
		return true
	}
	if n.iTime >= ver {
		return false
	}
	rt := n.rTime.Load(tx, &n.orec)
	return rt == rTimeNone || rt >= ver
}

// rangeTx collects [l, r] inside an enclosing transaction (used by the
// batch API, where the surrounding transaction already provides
// atomicity; this is the fast path's body without the try-once wrapper).
func (m *Map[K, V]) rangeTx(tx *stm.Tx, h *Handle[K, V], l, r K, out []Pair[K, V]) []Pair[K, V] {
	c := m.findPreds(tx, l, h.preds, m.nodeBefore)
	for c.sentinel == 0 && !m.less(r, c.key) {
		if !c.deleted(tx) {
			out = append(out, Pair[K, V]{Key: c.key, Val: c.val})
		}
		c = c.next0.Load(tx, &c.orec)
	}
	return out
}
