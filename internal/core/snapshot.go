package core

import (
	"repro/internal/stm"
)

// snapshotScanBound caps how many nodes (live or logically deleted) one
// snapshot chunk transaction visits, keeping its read footprint — and
// therefore its abort exposure under churn — bounded even when the walk
// crosses a long run of deleted nodes.
const snapshotScanBound = 4

// SnapshotChunks iterates the whole map for a durable snapshot while
// writers proceed: the key space is walked in chunks of up to chunkSize
// live pairs, each chunk read inside one read-only transaction and
// reported to fn together with that transaction's start stamp. A chunk
// is therefore a consistent view of its keys as of its stamp — the
// commit clock's total order is what lets recovery decide, per key,
// which WAL records the snapshot already reflects. fn runs between
// chunk transactions (it does file I/O) and may stop iteration by
// returning an error, which is propagated.
//
// At least one chunk is always reported, and the last one may be empty:
// it stamps the moment iteration observed the end of the key space,
// which is what allows WAL truncation even for an empty map. The pairs
// slice is reused across calls; fn must not retain it.
func (m *Map[K, V]) SnapshotChunks(chunkSize int, fn func(stamp uint64, pairs []Pair[K, V]) error) error {
	if chunkSize <= 0 {
		chunkSize = 512
	}
	maxScan := snapshotScanBound * chunkSize
	h := m.borrow()
	defer m.releaseClean(h)
	var cursor K
	haveCursor := false
	// cursorLive records whether the node the previous chunk ended on was
	// live (emitted). Only then may the resume step skip past a ceil node
	// whose key equals the cursor: when the chunk ended on a logically
	// deleted node, a live reinserted node with the same key sits after it
	// in the chain (inserts land after deleted same-key nodes), is what
	// ceilNodeTx returns via the index, and was never emitted — advancing
	// past it would drop the key from the snapshot.
	cursorLive := false
	buf := make([]Pair[K, V], 0, chunkSize)
	var stamp uint64
	var last K
	lastLive := false
	end := false
	for {
		buf = buf[:0]
		_ = m.rt.Atomic(func(tx *stm.Tx) error {
			buf = buf[:0]
			end = false
			lastLive = false
			stamp = tx.Start()
			var c *node[K, V]
			if !haveCursor {
				c = m.head.next0.Load(tx, &m.head.orec)
			} else {
				c = m.ceilNodeTx(tx, h, cursor)
				if cursorLive && c.sentinel == 0 && !m.less(cursor, c.key) {
					c = c.next0.Load(tx, &c.orec)
				}
			}
			scanned := 0
			for c.sentinel == 0 && len(buf) < chunkSize && scanned < maxScan {
				if lastLive = !c.deleted(tx); lastLive {
					buf = append(buf, Pair[K, V]{Key: c.key, Val: c.val})
				}
				last = c.key
				scanned++
				c = c.next0.Load(tx, &c.orec)
			}
			end = c.sentinel != 0
			return nil
		})
		if end || len(buf) > 0 {
			if err := fn(stamp, buf); err != nil {
				return err
			}
		}
		if end {
			return nil
		}
		cursor = last
		cursorLive = lastLive
		haveCursor = true
	}
}
