package core

import (
	"repro/internal/stm"
)

// snapshotScanBound caps how many nodes (live or logically deleted) one
// snapshot chunk transaction visits, keeping its read footprint — and
// therefore its abort exposure under churn — bounded even when the walk
// crosses a long run of deleted nodes.
const snapshotScanBound = 4

// SnapshotChunks iterates the whole map for a durable snapshot while
// writers proceed: the key space is walked in chunks of up to chunkSize
// live pairs, each chunk read inside one read-only transaction and
// reported to fn together with that transaction's start stamp. A chunk
// is therefore a consistent view of its keys as of its stamp — the
// commit clock's total order is what lets recovery decide, per key,
// which WAL records the snapshot already reflects. fn runs between
// chunk transactions (it does file I/O) and may stop iteration by
// returning an error, which is propagated.
//
// At least one chunk is always reported, and the last one may be empty:
// it stamps the moment iteration observed the end of the key space,
// which is what allows WAL truncation even for an empty map. The pairs
// slice is reused across calls; fn must not retain it.
func (m *Map[K, V]) SnapshotChunks(chunkSize int, fn func(stamp uint64, pairs []Pair[K, V]) error) error {
	if chunkSize <= 0 {
		chunkSize = 512
	}
	maxScan := snapshotScanBound * chunkSize
	h := m.borrow()
	defer m.releaseClean(h)
	var cursor K
	haveCursor := false
	buf := make([]Pair[K, V], 0, chunkSize)
	var stamp uint64
	var last K
	end := false
	for {
		buf = buf[:0]
		_ = m.rt.Atomic(func(tx *stm.Tx) error {
			buf = buf[:0]
			end = false
			stamp = tx.Start()
			var c *node[K, V]
			if !haveCursor {
				c = m.head.next[0].Load(tx, &m.head.orec)
			} else {
				c = m.ceilNodeTx(tx, h, cursor)
				if c.sentinel == 0 && !m.less(cursor, c.key) {
					c = c.next[0].Load(tx, &c.orec)
				}
			}
			scanned := 0
			for c.sentinel == 0 && len(buf) < chunkSize && scanned < maxScan {
				if !c.deleted(tx) {
					buf = append(buf, Pair[K, V]{Key: c.key, Val: c.val})
				}
				last = c.key
				scanned++
				c = c.next[0].Load(tx, &c.orec)
			}
			end = c.sentinel != 0
			return nil
		})
		if end || len(buf) > 0 {
			if err := fn(stamp, buf); err != nil {
				return err
			}
		}
		if end {
			return nil
		}
		cursor = last
		haveCursor = true
	}
}
