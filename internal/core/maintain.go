package core

import (
	"sync/atomic"
	"time"

	"repro/internal/stm"
)

// This file is the handle-lifecycle and background-reclamation
// subsystem. The paper's §4.5 removal buffer defers physical
// unstitching for speed but assumes every buffer is eventually flushed
// by its owning handle; a handle that goes away (worker exit, pooled
// handle dropped by GC) would strand its buffered nodes stitched
// forever, degrading exactly the range-query path the design optimizes.
// The subsystem closes that hole:
//
//   - every removal buffer that loses its owner is handed to the map's
//     orphan queue (Handle.Close, Handle.Recycle, the pooled
//     convenience paths, Quiesce);
//   - a background maintainer (Config.Maintenance) — or, without one,
//     the next operation that pushes the queue past its threshold —
//     adopts the queue and unstitches the nodes in bounded
//     transactional batches, deferring to the RQC when a slow-path
//     range query is in flight, exactly like a handle flush.

// reclaimBatch bounds how many nodes one drain transaction unstitches.
// Small enough to stay conflict-resistant against concurrent elemental
// operations (an unstitch writes the node's neighbors at every level),
// large enough to amortize per-transaction overhead; it also chunks the
// RQC's after_range reclamation.
const reclaimBatch = 32

// orphanDrainThreshold is the queue length beyond which, absent a
// maintainer, the orphaning operation drains the queue inline. It keeps
// the stitched-but-deleted backlog bounded on maps that never opted
// into background maintenance.
const orphanDrainThreshold = 4 * reclaimBatch

// MaintenanceStats counts the reclamation subsystem's work. Orphaned and
// Adopted track the orphan queue (nodes in, nodes out); DrainedNodes and
// DrainBatches cover every batched drain — orphan adoptions, handle
// buffer flushes, and the RQC's after_range reclamation alike; Wakeups
// counts maintainer loop iterations.
type MaintenanceStats struct {
	Orphaned     uint64
	Adopted      uint64
	DrainedNodes uint64
	DrainBatches uint64
	Wakeups      uint64
}

// Add returns the element-wise sum s + o (for cross-shard aggregation).
func (s MaintenanceStats) Add(o MaintenanceStats) MaintenanceStats {
	return MaintenanceStats{
		Orphaned:     s.Orphaned + o.Orphaned,
		Adopted:      s.Adopted + o.Adopted,
		DrainedNodes: s.DrainedNodes + o.DrainedNodes,
		DrainBatches: s.DrainBatches + o.DrainBatches,
		Wakeups:      s.Wakeups + o.Wakeups,
	}
}

// maintCounters is MaintenanceStats with atomic fields.
type maintCounters struct {
	orphaned     atomic.Uint64
	adopted      atomic.Uint64
	drainedNodes atomic.Uint64
	drainBatches atomic.Uint64
	wakeups      atomic.Uint64
}

// MaintenanceStats returns a snapshot of the map's reclamation counters.
func (m *Map[K, V]) MaintenanceStats() MaintenanceStats {
	return MaintenanceStats{
		Orphaned:     m.maintStats.orphaned.Load(),
		Adopted:      m.maintStats.adopted.Load(),
		DrainedNodes: m.maintStats.drainedNodes.Load(),
		DrainBatches: m.maintStats.drainBatches.Load(),
		Wakeups:      m.maintStats.wakeups.Load(),
	}
}

// SetMaintenanceObserver installs fn to receive the node count and
// wall-clock duration of every orphan-adoption drain (background
// maintainer wakeups and inline threshold drains alike). Pass nil to
// remove. The observer runs on the draining goroutine, so it must be
// cheap and non-blocking — typically a latency histogram's observe.
func (m *Map[K, V]) SetMaintenanceObserver(fn func(nodes int, d time.Duration)) {
	if fn == nil {
		m.maintObs.Store(nil)
		return
	}
	m.maintObs.Store(&fn)
}

// OrphanBacklog returns the current orphan queue length (nodes awaiting
// adoption; a live probe for tests and monitoring).
func (m *Map[K, V]) OrphanBacklog() int {
	m.orphanMu.Lock()
	defer m.orphanMu.Unlock()
	return len(m.orphans)
}

// orphanNodes appends nodes to the orphan queue and arranges for their
// reclamation: the maintainer is kicked when one is running, otherwise
// the caller drains inline once the queue crosses its threshold (and
// always after Close, when no maintainer will ever come).
func (m *Map[K, V]) orphanNodes(nodes []*node[K, V]) {
	if len(nodes) == 0 {
		return
	}
	m.orphanMu.Lock()
	m.orphans = append(m.orphans, nodes...)
	pending := len(m.orphans)
	m.orphanMu.Unlock()
	m.maintStats.orphaned.Add(uint64(len(nodes)))
	if m.maint != nil && !m.closed.Load() {
		m.maint.kick()
		return
	}
	if pending >= orphanDrainThreshold || m.closed.Load() {
		m.adoptOrphans()
	}
}

// orphanNode is orphanNodes for a single straggler (a removal committed
// against an already-closed handle).
func (m *Map[K, V]) orphanNode(n *node[K, V]) {
	m.orphanNodes([]*node[K, V]{n})
}

// adoptOrphans takes ownership of the entire orphan queue and drains it
// in bounded batches. Adoption is serialized by adoptMu — held across
// the drain, not just the queue swap — so that when Quiesce (or Close)
// calls adoptOrphans it also waits out any drain the maintainer already
// has in flight: on return, every node that was orphaned before the
// call is off the level-0 chain (or on an in-flight range query's
// deferred list, which owns it from there). Returns how many nodes this
// call adopted.
func (m *Map[K, V]) adoptOrphans() int {
	m.adoptMu.Lock()
	defer m.adoptMu.Unlock()
	m.orphanMu.Lock()
	take := m.orphans
	m.orphans = nil
	m.orphanMu.Unlock()
	if len(take) == 0 {
		return 0
	}
	m.maintStats.adopted.Add(uint64(len(take)))
	obs := m.maintObs.Load()
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	m.drainNodes(take)
	if obs != nil {
		(*obs)(len(take), time.Since(t0))
	}
	return len(take)
}

// drainNodes reclaims a batch of logically deleted nodes in chunked
// transactions of at most reclaimBatch each: when no slow-path range
// query is in flight the chunk is unstitched directly; otherwise the
// chunk is spliced onto the most recent query's deferred list (§4.5) and
// the RQC guarantees eventual unstitching. This replaces the
// one-transaction-per-node loop the handle flush used to run.
func (m *Map[K, V]) drainNodes(nodes []*node[K, V]) {
	m.reclaimBatches(nodes, true)
}

// reclaimBatches is the one chunked-drain loop every reclamation path —
// handle flushes, orphan adoption, the RQC's after_range — funnels
// through. consultTail selects whether each chunk defers to an in-flight
// slow-path range query (false only for after_range's oldest-query
// nodes, which no remaining query can need).
func (m *Map[K, V]) reclaimBatches(nodes []*node[K, V], consultTail bool) {
	for len(nodes) > 0 {
		chunk := nodes
		if len(chunk) > reclaimBatch {
			chunk = nodes[:reclaimBatch]
		}
		_ = m.rt.Atomic(func(tx *stm.Tx) error {
			if consultTail {
				if tail := m.rqc.tailOp(tx); tail != nil {
					for _, n := range chunk {
						m.rqc.appendDeferred(tx, tail, n)
					}
					return nil
				}
			}
			for _, n := range chunk {
				m.unstitchTx(tx, n)
			}
			return nil
		})
		m.maintStats.drainedNodes.Add(uint64(len(chunk)))
		m.maintStats.drainBatches.Add(1)
		nodes = nodes[len(chunk):]
	}
}

// maintainer is the background reclamation goroutine: it adopts the
// orphan queue whenever kicked (a buffer was orphaned) and on a periodic
// interval (bounding staleness when kicks coalesce), draining in bounded
// transactional batches so it never holds a large conflict footprint.
type maintainer[K comparable, V any] struct {
	m      *Map[K, V]
	kickCh chan struct{}
	stopCh chan struct{}
	done   chan struct{}
}

// startMaintainer launches the maintainer goroutine for m.
func startMaintainer[K comparable, V any](m *Map[K, V], interval time.Duration) *maintainer[K, V] {
	mt := &maintainer[K, V]{
		m:      m,
		kickCh: make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go mt.loop(interval)
	return mt
}

// kick wakes the maintainer without blocking; concurrent kicks coalesce.
func (mt *maintainer[K, V]) kick() {
	select {
	case mt.kickCh <- struct{}{}:
	default:
	}
}

// stop terminates the maintainer and waits for it to exit; the final
// queue drain belongs to the caller (Map.Close quiesces after stopping).
func (mt *maintainer[K, V]) stop() {
	close(mt.stopCh)
	<-mt.done
}

func (mt *maintainer[K, V]) loop(interval time.Duration) {
	defer close(mt.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-mt.stopCh:
			return
		case <-mt.kickCh:
		case <-ticker.C:
		}
		mt.m.maintStats.wakeups.Add(1)
		mt.m.adoptOrphans()
	}
}
