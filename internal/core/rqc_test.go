package core

import (
	"testing"

	"repro/internal/stm"
	"repro/internal/thashmap"
)

// startRange registers a slow-path range query by hand, returning its op.
func startRange(m *Map[int64, int64]) *rangeOp[int64, int64] {
	var op *rangeOp[int64, int64]
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		op = m.rqc.onRange(tx)
		return nil
	})
	return op
}

func newRQCMap(t *testing.T) *Map[int64, int64] {
	t.Helper()
	return New[int64, int64](lessInt64, thashmap.Hash64,
		Config{Buckets: 257, RemovalBufferSize: -1})
}

func TestRQCVersionsMonotonic(t *testing.T) {
	m := newRQCMap(t)
	var last uint64
	for i := 0; i < 10; i++ {
		op := startRange(m)
		if op.ver <= last {
			t.Fatalf("version %d not greater than %d", op.ver, last)
		}
		last = op.ver
		m.rqc.afterRange(m, op)
	}
}

func TestRQCUpdatesReuseLatestVersion(t *testing.T) {
	m := newRQCMap(t)
	op := startRange(m)
	var seen uint64
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		seen = m.rqc.onUpdate(tx)
		return nil
	})
	if seen != op.ver {
		t.Errorf("onUpdate = %d, want latest range version %d", seen, op.ver)
	}
	m.rqc.afterRange(m, op)
}

func TestRQCImmediateUnstitchWithoutQueries(t *testing.T) {
	m := newRQCMap(t)
	m.Insert(1, 1)
	m.Insert(2, 2)
	m.Remove(1)
	// No slow-path query in flight: the node must be unstitched inside
	// the remove transaction itself (Figure 4 line 23).
	if got := m.StitchedSlow(); got != 1 {
		t.Errorf("stitched = %d, want 1", got)
	}
}

func TestRQCImmediateUnstitchForNewNodes(t *testing.T) {
	// A node inserted after the most recent range query began is not
	// safe for anyone and is unstitched immediately even while the
	// query runs (Figure 4's i_time >= tail.ver case).
	m := newRQCMap(t)
	op := startRange(m)
	m.Insert(5, 5) // iTime == op.ver
	m.Remove(5)
	if got := m.StitchedSlow(); got != 0 {
		t.Errorf("stitched = %d, want 0 (new node not deferrable)", got)
	}
	m.rqc.afterRange(m, op)
}

func TestRQCBackwardPassing(t *testing.T) {
	// Three queries; a node removed under the newest must survive until
	// the oldest finishes, traveling backward through deferred lists.
	m := newRQCMap(t)
	m.Insert(1, 1)
	m.Insert(2, 2)
	m.Insert(3, 3)
	op1 := startRange(m)
	op2 := startRange(m)
	op3 := startRange(m)
	m.Remove(2) // deferred onto op3 (the newest)
	if got := m.StitchedSlow(); got != 3 {
		t.Fatalf("stitched = %d, want 3", got)
	}
	// Finishing the newest passes the node to op2.
	m.rqc.afterRange(m, op3)
	if got := m.StitchedSlow(); got != 3 {
		t.Errorf("after op3: stitched = %d, want 3 (still deferred)", got)
	}
	// Finishing the middle passes it to op1.
	m.rqc.afterRange(m, op2)
	if got := m.StitchedSlow(); got != 3 {
		t.Errorf("after op2: stitched = %d, want 3 (still deferred)", got)
	}
	// Finishing the oldest finally unstitches.
	m.rqc.afterRange(m, op1)
	if got := m.StitchedSlow(); got != 2 {
		t.Errorf("after op1: stitched = %d, want 2", got)
	}
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Error(err)
	}
}

func TestRQCOutOfOrderCompletion(t *testing.T) {
	// Finishing the oldest query first must unstitch its deferred nodes
	// immediately while younger queries keep theirs.
	m := newRQCMap(t)
	for k := int64(1); k <= 4; k++ {
		m.Insert(k, k)
	}
	op1 := startRange(m)
	m.Remove(1) // deferred onto op1
	op2 := startRange(m)
	m.Remove(2) // deferred onto op2
	if got := m.StitchedSlow(); got != 4 {
		t.Fatalf("stitched = %d, want 4", got)
	}
	m.rqc.afterRange(m, op1) // oldest finishes first: node 1 reclaimed
	if got := m.StitchedSlow(); got != 3 {
		t.Errorf("after op1: stitched = %d, want 3", got)
	}
	m.rqc.afterRange(m, op2)
	if got := m.StitchedSlow(); got != 2 {
		t.Errorf("after op2: stitched = %d, want 2", got)
	}
}

func TestSafeNodePredicate(t *testing.T) {
	m := newRQCMap(t)
	m.Insert(10, 10)
	op := startRange(m)
	ver := op.ver
	m.Insert(20, 20) // iTime == ver: NOT safe
	m.Remove(10)     // rTime == ver: safe (removed at/after ver)
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		if !m.isSafe(tx, m.head, ver) || !m.isSafe(tx, m.tail, ver) {
			t.Error("sentinels must always be safe")
		}
		n10 := m.head.next0.Load(tx, &m.head.orec)
		for n10.sentinel == 0 && n10.key != 10 {
			n10 = n10.next0.Load(tx, &n10.orec)
		}
		if n10.sentinel != 0 {
			t.Fatal("node 10 not found stitched")
		}
		if !m.isSafe(tx, n10, ver) {
			t.Error("logically deleted node with rTime >= ver must be safe")
		}
		var n20 *node[int64, int64]
		m.index.ForEachSlow(func(k int64, n *node[int64, int64]) bool {
			if k == 20 {
				n20 = n
			}
			return true
		})
		if n20 == nil {
			t.Fatal("node 20 missing from index")
		}
		if m.isSafe(tx, n20, ver) {
			t.Error("node inserted at ver must not be safe")
		}
		return nil
	})
	m.rqc.afterRange(m, op)
}

func TestSlowRangeSeesSnapshotAtVersion(t *testing.T) {
	// A slow-path range must include keys removed after it registered
	// and exclude keys inserted after it registered.
	m := newRQCMap(t)
	for k := int64(0); k < 10; k++ {
		m.Insert(k, k)
	}
	h := m.NewHandle()
	var op *rangeOp[int64, int64]
	var start *node[int64, int64]
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		start = m.ceilNodeTx(tx, h, 0)
		op = m.rqc.onRange(tx)
		return nil
	})
	m.Remove(5)     // removed after linearization: must appear
	m.Insert(50, 1) // inserted after linearization: must not appear
	set := make([]Pair[int64, int64], 0, 16)
	n := start
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		for n.sentinel == 0 && !m.less(100, n.key) {
			next := m.nextSafe(tx, n, op.ver)
			set = append(set, Pair[int64, int64]{Key: n.key, Val: n.val})
			n = next
		}
		return nil
	})
	m.rqc.afterRange(m, op)
	if len(set) != 10 {
		t.Fatalf("slow traversal returned %d pairs, want 10: %v", len(set), set)
	}
	for i, p := range set {
		if p.Key != int64(i) {
			t.Errorf("pair %d = %v, want key %d", i, p, i)
		}
	}
}

func TestHandleBufferFlushThreshold(t *testing.T) {
	m := New[int64, int64](lessInt64, thashmap.Hash64,
		Config{Buckets: 257, RemovalBufferSize: 4})
	h := m.NewHandle()
	for k := int64(0); k < 16; k++ {
		h.Insert(k, k)
	}
	// Three removals buffer without unstitching.
	for k := int64(0); k < 3; k++ {
		h.Remove(k)
	}
	if got := m.StitchedSlow(); got != 16 {
		t.Errorf("stitched = %d, want 16 (removals buffered)", got)
	}
	// The fourth crosses the threshold: all four unstitch.
	h.Remove(3)
	if got := m.StitchedSlow(); got != 12 {
		t.Errorf("stitched = %d, want 12 after flush", got)
	}
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Error(err)
	}
}

func TestHandleBufferTransfersToActiveQuery(t *testing.T) {
	m := New[int64, int64](lessInt64, thashmap.Hash64,
		Config{Buckets: 257, RemovalBufferSize: 2})
	h := m.NewHandle()
	for k := int64(0); k < 8; k++ {
		h.Insert(k, k)
	}
	op := startRange(m)
	h.Remove(0)
	h.Remove(1) // flush: buffer spliced onto op's deferred list
	if got := m.StitchedSlow(); got != 8 {
		t.Errorf("stitched = %d, want 8 (buffer deferred to query)", got)
	}
	m.rqc.afterRange(m, op)
	if got := m.StitchedSlow(); got != 6 {
		t.Errorf("stitched = %d, want 6 after query completes", got)
	}
}
