package core

import (
	"errors"
	"math/bits"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/stm"
	"repro/internal/thashmap"
)

// RemovalBufferDisabled is the explicit "no removal buffering" sentinel
// for Config.RemovalBufferSize: every removal is routed straight to the
// RQC (Figure 4's exact after_remove). Any negative value is treated the
// same; the named constant exists so the intent survives code review.
const RemovalBufferDisabled = -1

// Config selects the tunables the paper's evaluation varies.
type Config struct {
	// MaxLevel is the skip list tower height. The evaluation uses 20
	// (2^20 slightly exceeds the 10^6 key universe). Default 20.
	MaxLevel int
	// Buckets is the hash table size; should be prime. The evaluation
	// uses 714341 (smallest prime keeping utilization <= 70% at the
	// expected population of 5*10^5). Default 131071, a prime better
	// suited to general use; benchmarks set the paper's value.
	Buckets int
	// FastPathTries is the number of single-transaction range attempts
	// before falling back to the slow path. The paper uses 3.
	// FastOnly/SlowOnly configure the two ablation variants of §5.
	FastPathTries int
	// FastOnly makes range queries retry the fast path forever (the
	// "Skip-hash (Fast Only)" series).
	FastOnly bool
	// SlowOnly makes range queries go straight to the slow path (the
	// "Skip-hash (Slow Only)" series).
	SlowOnly bool
	// Adaptive enables the fallback policy the paper's §5.2.3 suggests
	// exploring: after a range query exhausts its fast-path tries, the
	// next AdaptiveSkip queries from the same handle go straight to the
	// slow path before the fast path is probed again. Long-range
	// workloads then pay the doomed fast-path attempts only once per
	// probe window instead of on every query.
	Adaptive bool
	// AdaptiveSkip is the probe window for Adaptive (default 16).
	AdaptiveSkip int
	// DisableReadFastPath turns off the optimistic non-transactional
	// read fast path for Lookup/Contains and the cache warm-up descent
	// it gives range queries, forcing every point read through a full
	// STM transaction. The zero value keeps the fast path on; the switch
	// exists for the benchmark ablation (the "txread" series) and for
	// debugging.
	DisableReadFastPath bool
	// RemovalBufferSize is the per-handle buffer of logically deleted
	// nodes whose unstitching is batched (§4.5, size 32 in the paper).
	// Zero selects the paper's default of 32 (the zero Config is the
	// recommended configuration); RemovalBufferDisabled (or any negative
	// value) disables buffering, yielding Figure 4's exact after_remove.
	RemovalBufferSize int
	// Maintenance opts into a background maintainer goroutine per map
	// (one per shard on the sharded frontend) that adopts orphaned
	// removal buffers — from closed handles, pooled convenience handles,
	// and Quiesce — and unstitches them in bounded transactional batches,
	// keeping the level-0 chain free of stitched-but-deleted garbage on
	// long-running servers. Without it orphans are still reclaimed, but
	// inline by whichever operation pushes the queue past its threshold.
	// Maps with Maintenance set must be Closed to stop the goroutine.
	Maintenance bool
	// MaintenanceInterval is the maintainer's periodic sweep interval
	// (default 25ms). The maintainer is also kicked eagerly whenever a
	// buffer is orphaned, so the interval only bounds staleness when
	// kicks are coalesced under load.
	MaintenanceInterval time.Duration
	// Clock overrides the STM commit clock (default: monotonic
	// "hardware" clock, the configuration the paper reports).
	Clock stm.Clock
	// ClockFactory, when set and Clock is nil, mints the commit clock.
	// Its purpose is isolated sharding: the sharded frontend calls it
	// once per shard, so counter-based clocks (gv1/gv5) can be private
	// per shard instead of one shared instance ticking one cacheline.
	ClockFactory func() stm.Clock
	// Shards selects the initial partition count of the sharded
	// frontend (internal/shard, surfaced as skiphash.NewSharded). Zero
	// derives a power of two from GOMAXPROCS. The count is only
	// initial: Sharded.Resize migrates to a new count under live
	// traffic, and a durable isolated-shard map reopens at the count
	// its meta file records, not this field. A single map ignores it;
	// Buckets is interpreted as the total across shards.
	Shards int
	// IsolatedShards gives every shard of the sharded frontend its own
	// STM runtime and clock instead of one shared runtime. Point
	// operations are unaffected; cross-shard operations (ranges,
	// iterators, point queries, Atomic) weaken as documented on
	// shard.Sharded. A single map ignores it.
	IsolatedShards bool
	// Durability, when non-nil, makes the map durable: committed
	// insert/remove/batch operations are written to a commit-stamp-
	// ordered write-ahead log in Durability.Dir, background snapshots
	// bound its replay length, and skiphash.Open recovers the map from
	// that directory. The field is consumed by the Open constructors;
	// New/NewIn ignore it (they cannot recover — recovery needs codecs).
	Durability *persist.Options
}

func (c Config) withDefaults() Config {
	if c.MaxLevel == 0 {
		c.MaxLevel = 20
	}
	if c.Buckets == 0 {
		c.Buckets = 131071
	}
	if c.FastPathTries == 0 {
		c.FastPathTries = 3
	}
	if c.RemovalBufferSize == 0 {
		c.RemovalBufferSize = 32 // the zero Config buffers at the paper's size
	}
	if c.RemovalBufferSize < 0 {
		c.RemovalBufferSize = 0 // RemovalBufferDisabled: exact after_remove
	}
	if c.AdaptiveSkip == 0 {
		c.AdaptiveSkip = 16
	}
	if c.MaintenanceInterval <= 0 {
		c.MaintenanceInterval = 25 * time.Millisecond // non-positive would panic time.NewTicker
	}
	return c
}

// Map is the skip hash. All methods are safe for concurrent use. Hot
// paths should go through per-goroutine Handles (see NewHandle); the
// convenience methods on Map borrow pooled handles.
type Map[K comparable, V any] struct {
	rt    *stm.Runtime
	less  func(a, b K) bool
	cfg   Config
	index *thashmap.PtrMap[K, node[K, V]]
	head  *node[K, V]
	tail  *node[K, V]
	rqc   rqc[K, V]

	handlePool sync.Pool
	mu         sync.Mutex
	handles    []*Handle[K, V]
	// retired accumulates the range-path counters of handles that left
	// the registry (closed handles) and of pooled transient handles,
	// banked on every release, so RangeStats never loses history.
	retired retiredStats

	// orphans is the per-map orphan queue: logically deleted nodes whose
	// owning removal buffer went away (handle closed, pooled handle
	// released, Quiesce handoff) and that now await batched unstitching
	// by the maintainer or an inline drain.
	orphanMu sync.Mutex
	orphans  []*node[K, V]
	// adoptMu serializes orphan adoption across the drain itself, so
	// quiescence points can wait out an in-flight maintainer drain.
	adoptMu sync.Mutex

	maint      *maintainer[K, V]
	maintStats maintCounters
	// maintObs, when set, receives every orphan-adoption drain's node
	// count and duration (SetMaintenanceObserver). Core stays free of
	// metrics dependencies; the observer is a plain func the embedding
	// layer points at its histogram.
	maintObs atomic.Pointer[func(nodes int, d time.Duration)]
	closed   atomic.Bool
	// closeDone lets concurrent Close calls (and anyone who must know
	// teardown finished) wait for the one closing goroutine; with
	// durability attached, "Close returned" must mean "flushed".
	closeDone chan struct{}

	// logger and persist are the durability hooks (AttachPersistence):
	// logger captures committed logical operations into the WAL, persist
	// drives snapshots, syncs and shutdown. Both nil on non-durable maps.
	logger  OpLogger[K, V]
	persist Persister

	// tap, when set, observes every committed write in commit-stamp
	// order (SetWriteTap); the sharded frontend points it at a
	// migration's delta log while this map is a resize source. Nil —
	// one atomic load on the write path — outside migrations.
	tap atomic.Pointer[func(del bool, k K, v V, stamp uint64)]
}

// OpLogger observes the logical effect of committed transactions: every
// state-changing insert is reported as a put and every state-changing
// removal as a delete, from inside the transaction body. Implementations
// (persist.Store) buffer per attempt and emit on commit, so an aborted
// attempt reports nothing.
type OpLogger[K comparable, V any] interface {
	LogPut(tx *stm.Tx, k K, v V)
	LogDel(tx *stm.Tx, k K)
}

// Persister is the non-generic face of the durability engine a map
// delegates lifecycle operations to; persist.Store implements it.
type Persister interface {
	// Snapshot writes a full snapshot now and truncates covered WAL
	// segments.
	Snapshot() error
	// Sync forces all logged operations to durable storage.
	Sync() error
	// Close flushes and fsyncs the log and closes the files.
	Close() error
	// SimulateCrash abandons the engine as a process crash would:
	// unflushed records are lost and nothing more is logged.
	SimulateCrash() error
	// Err reports the sticky background I/O error, if any.
	Err() error
}

// ErrNotDurable is returned by durability operations on a map that was
// not opened with persistence attached.
var ErrNotDurable = errors.New("core: map has no durability attached")

// retiredStats is RangeStats with atomic fields, aggregating counters of
// handles no longer in the registry.
type retiredStats struct {
	fastAttempts atomic.Uint64
	fastAborts   atomic.Uint64
	fastCommits  atomic.Uint64
	slowCommits  atomic.Uint64
}

// New creates a skip hash ordered by less and hashed by hash. It builds
// a private STM runtime from cfg.Clock; callers embedding the map in a
// larger transactional system (for example the sharded frontend in
// internal/shard) inject an existing runtime with NewIn instead.
func New[K comparable, V any](less func(a, b K) bool, hash func(K) uint64, cfg Config) *Map[K, V] {
	clock := cfg.Clock
	if clock == nil && cfg.ClockFactory != nil {
		clock = cfg.ClockFactory()
	}
	return NewIn[K, V](stm.New(stm.WithClock(clock)), less, hash, cfg)
}

// NewIn creates a skip hash whose transactions run on the existing
// runtime rt. Every dependency is injected: rt supplies the commit clock
// and descriptor pool, hash the distribution over cfg.Buckets chains,
// and less the ordering. Maps sharing one runtime live in one timestamp
// and transaction-ID domain, so a single transaction may span them (see
// Handle.Bind); maps on distinct runtimes are fully independent and must
// never be touched from one transaction.
func NewIn[K comparable, V any](rt *stm.Runtime, less func(a, b K) bool, hash func(K) uint64, cfg Config) *Map[K, V] {
	cfg = cfg.withDefaults()
	m := &Map[K, V]{
		rt:        rt,
		less:      less,
		cfg:       cfg,
		closeDone: make(chan struct{}),
	}
	m.index = thashmap.NewPtr[K, node[K, V]](rt, hash, cfg.Buckets)
	m.head = newNode[K, V](cfg.MaxLevel)
	m.head.sentinel = -1
	m.tail = newNode[K, V](cfg.MaxLevel)
	m.tail.sentinel = 1
	for l := 0; l < cfg.MaxLevel; l++ {
		m.head.nextAt(l).Init(m.tail)
		m.tail.prevAt(l).Init(m.head)
	}
	m.handlePool.New = func() any { return m.NewTransientHandle() }
	if cfg.Maintenance {
		m.maint = startMaintainer(m, cfg.MaintenanceInterval)
	}
	return m
}

// Close shuts the map down: it stops the background maintainer (when
// Config.Maintenance enabled one), flushes every registered handle's
// removal buffer, drains the orphan queue — so a quiescent map holds no
// stitched logically-deleted nodes afterwards — and, on durable maps,
// flushes and fsyncs the write-ahead log before closing its files.
// Close is idempotent and safe to call concurrently with operations,
// with Quiesce, and with other Close calls: every call returns only
// after teardown (including the durability flush) has completed, no
// matter which call performed it. Operations issued after Close fall
// back to inline reclamation and are no longer logged — on durable maps
// the engine counts them and reports the divergence through its Err.
// Maps without maintenance or durability may skip Close; nothing leaks
// beyond the map itself.
func (m *Map[K, V]) Close() {
	if m.closed.Swap(true) {
		<-m.closeDone
		return
	}
	defer close(m.closeDone)
	if m.maint != nil {
		m.maint.stop()
	}
	m.Quiesce()
	if m.persist != nil {
		m.persist.Close()
	}
}

// Closed reports whether Close has been called.
func (m *Map[K, V]) Closed() bool { return m.closed.Load() }

// HandleCount returns the number of handles currently registered with
// the map (explicitly created via NewHandle and not yet closed). Pooled
// convenience handles are transient and never appear here; the count is
// the leak-detection probe for handle-lifecycle tests.
func (m *Map[K, V]) HandleCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.handles)
}

// Runtime exposes the underlying STM runtime (for stats and tests).
func (m *Map[K, V]) Runtime() *stm.Runtime { return m.rt }

// Config returns the configuration the map was built with (with defaults
// applied).
func (m *Map[K, V]) Config() Config { return m.cfg }

// AttachPersistence wires the durability hooks: l observes every
// committed logical operation from this point on, and p (which may be
// nil when a frontend — the sharded map — owns the engine) receives
// Snapshot/Sync/Close. It must be called before the map is shared —
// recovery loads happen before attachment precisely so they are not
// re-logged.
func (m *Map[K, V]) AttachPersistence(l OpLogger[K, V], p Persister) {
	m.logger = l
	m.persist = p
}

// Persister returns the attached durability engine, or nil.
func (m *Map[K, V]) Persister() Persister { return m.persist }

// SetWriteTap installs fn to observe every committed state-changing
// write (puts and deletes) from this point on. Hooks run inside the
// commit, after validation and with ownership records still held, so
// two conflicting writes report in their exact commit order; aborted
// attempts report nothing. The caller must ensure no write transaction
// is in flight at installation (the sharded frontend drains its
// migration gate first) — a transaction that began before the tap was
// visible commits unobserved. fn must not touch this map.
func (m *Map[K, V]) SetWriteTap(fn func(del bool, k K, v V, stamp uint64)) {
	m.tap.Store(&fn)
}

// ClearWriteTap removes the write tap. Writes that committed before the
// clear have already reported; the caller serializes against in-flight
// writers the same way as for SetWriteTap.
func (m *Map[K, V]) ClearWriteTap() { m.tap.Store(nil) }

// Snapshot writes a durable snapshot of the map now (and truncates the
// WAL segments it covers). ErrNotDurable without persistence.
func (m *Map[K, V]) Snapshot() error {
	if m.persist == nil {
		return ErrNotDurable
	}
	return m.persist.Snapshot()
}

// Sync forces every logged operation to durable storage, regardless of
// the configured fsync policy. ErrNotDurable without persistence.
func (m *Map[K, V]) Sync() error {
	if m.persist == nil {
		return ErrNotDurable
	}
	return m.persist.Sync()
}

// SimulateCrash abandons the durability engine the way a process crash
// would — buffered records are lost, nothing more is logged — while the
// in-memory map keeps working. Reopen the directory to observe what
// survived. ErrNotDurable without persistence.
func (m *Map[K, V]) SimulateCrash() error {
	if m.persist == nil {
		return ErrNotDurable
	}
	return m.persist.SimulateCrash()
}

// randomHeight draws from the geometric distribution with p = 1/2 in
// [1, MaxLevel] (§3).
func (m *Map[K, V]) randomHeight() int {
	h := bits.TrailingZeros64(rand.Uint64()|(1<<63)) + 1
	if h > m.cfg.MaxLevel {
		h = m.cfg.MaxLevel
	}
	return h
}

// nodeBefore reports whether n orders strictly before key k, counting
// sentinels as infinities.
func (m *Map[K, V]) nodeBefore(n *node[K, V], k K) bool {
	if n.sentinel != 0 {
		return n.sentinel < 0
	}
	return m.less(n.key, k)
}

// nodeBeforeOrAt additionally admits equal keys; the stitching search
// uses it so a new node lands after logically deleted nodes sharing its
// key (§4.2's insert_after_logical_deletes).
func (m *Map[K, V]) nodeBeforeOrAt(n *node[K, V], k K) bool {
	if n.sentinel != 0 {
		return n.sentinel < 0
	}
	return !m.less(k, n.key)
}

// findPreds descends the tower, storing into preds (len MaxLevel) the
// rightmost node at each level for which before(node, k) holds, and
// returns the level-0 successor of preds[0].
func (m *Map[K, V]) findPreds(tx *stm.Tx, k K, preds []*node[K, V], before func(*node[K, V], K) bool) *node[K, V] {
	cur := m.head
	for l := m.cfg.MaxLevel - 1; l >= 0; l-- {
		for {
			nxt := cur.nextAt(l).Load(tx, &cur.orec)
			if !before(nxt, k) {
				break
			}
			cur = nxt
		}
		preds[l] = cur
	}
	return preds[0].next0.Load(tx, &preds[0].orec)
}

// lookupTx is Figure 1's lookup: the hash map routes straight to the
// node, so presence costs O(1).
func (m *Map[K, V]) lookupTx(tx *stm.Tx, k K) (V, bool) {
	n := m.index.GetPtrTx(tx, k)
	if n == nil {
		var zero V
		return zero, false
	}
	return n.val, true
}

// containsTx reports presence without touching the node at all.
func (m *Map[K, V]) containsTx(tx *stm.Tx, k K) bool {
	return m.index.GetPtrTx(tx, k) != nil
}

// lookupFast is lookupTx without the transaction: one optimistic index
// probe validated against the bucket's orec word alone — no clock, no
// descriptor. The third result reports whether the fast path answered;
// on false the caller must fall back to lookupTx in a full transaction.
// Validating the single bucket orec suffices for linearizability: index
// membership is exactly logical presence (insert and remove update the
// index inside the same transaction that stitches or stamps the node), a
// node's key and value are immutable once published, and any commit
// touching the bucket between sample and revalidation releases the orec
// at a strictly newer version, changing the sampled word. A validated
// probe therefore observed the one committed state current at its sample
// instant and linearizes there, with the same residual
// acquire/write/rollback exposure as the transactional read protocol
// (see the stm package doc).
func (m *Map[K, V]) lookupFast(k K) (v V, present, answered bool) {
	n, ok := m.index.GetPtrFast(k)
	if !ok {
		return v, false, false
	}
	if n == nil {
		return v, false, true
	}
	return n.val, true, true
}

// containsFast is containsTx on the optimistic fast path; see lookupFast.
func (m *Map[K, V]) containsFast(k K) (present, answered bool) {
	n, ok := m.index.GetPtrFast(k)
	if !ok {
		return false, false
	}
	return n != nil, true
}

// Prefetch warms the cache lines a point read of k will touch — the hash
// bucket chain and the node's hot line — through atomic loads the
// compiler cannot elide. It has no consistency implications and returns
// nothing; the server's drain loop uses it to overlap the next run's
// index probes with the current run's execution.
func (m *Map[K, V]) Prefetch(k K) {
	if n := m.index.PrefetchPtr(k); n != nil {
		_ = n.rTime.Raw()
	}
}

// insertTx is Figure 2's insert. h supplies the scratch predecessor
// array; the caller owns the enclosing transaction.
func (m *Map[K, V]) insertTx(tx *stm.Tx, h *Handle[K, V], k K, v V) bool {
	if m.index.GetPtrTx(tx, k) != nil {
		return false // O(1): key already present
	}
	// The key may still exist in the skip list as logically deleted
	// nodes; position the new node after them.
	m.findPreds(tx, k, h.preds, m.nodeBeforeOrAt)
	n := newNode[K, V](m.randomHeight())
	n.key = k
	n.val = v
	n.iTime = m.rqc.onUpdate(tx)
	for l := 0; l < n.height(); l++ {
		p := h.preds[l]
		s := p.nextAt(l).Load(tx, &p.orec)
		n.prevAt(l).Init(p)
		n.nextAt(l).Init(s)
		p.nextAt(l).Store(tx, &p.orec, n)
		s.prevAt(l).Store(tx, &s.orec, n)
	}
	m.index.InsertPtrTx(tx, k, n)
	if m.logger != nil {
		m.logger.LogPut(tx, k, v)
	}
	if tap := m.tap.Load(); tap != nil {
		tx.OnPublish(func(stamp uint64) { (*tap)(false, k, v, stamp) })
	}
	return true
}

// removeTx is Figure 2's remove: O(1) routing through the map, logical
// deletion by stamping rTime, and delegation of the physical unstitch to
// the RQC (possibly via the handle's removal buffer).
func (m *Map[K, V]) removeTx(tx *stm.Tx, h *Handle[K, V], k K) bool {
	n := m.index.GetPtrTx(tx, k)
	if n == nil {
		return false // O(1): key absent
	}
	m.index.RemoveTx(tx, k)
	n.rTime.Store(tx, &n.orec, m.rqc.onUpdate(tx))
	if m.logger != nil {
		m.logger.LogDel(tx, k)
	}
	if tap := m.tap.Load(); tap != nil {
		var zero V
		tx.OnPublish(func(stamp uint64) { (*tap)(true, k, zero, stamp) })
	}
	m.afterRemove(tx, h, n)
	return true
}

// unstitchTx physically removes n from every level. Double-linking makes
// this O(height) with no traversal (§3). The node's orec is acquired
// first so removals own everything they read.
func (m *Map[K, V]) unstitchTx(tx *stm.Tx, n *node[K, V]) {
	tx.Acquire(&n.orec)
	for l := 0; l < n.height(); l++ {
		p := n.prevAt(l).Load(tx, &n.orec)
		s := n.nextAt(l).Load(tx, &n.orec)
		p.nextAt(l).Store(tx, &p.orec, s)
		s.prevAt(l).Store(tx, &s.orec, p)
	}
}

// ceilNodeTx returns the first logically present node with key >= k
// (m.tail if none), plus scratch-free O(1) handling when the key is
// present in the map.
func (m *Map[K, V]) ceilNodeTx(tx *stm.Tx, h *Handle[K, V], k K) *node[K, V] {
	if n := m.index.GetPtrTx(tx, k); n != nil {
		return n // O(1) when the key is present (Fig. 1 ceil)
	}
	c := m.findPreds(tx, k, h.preds, m.nodeBefore)
	for c.sentinel == 0 && c.deleted(tx) {
		c = c.next0.Load(tx, &c.orec)
	}
	return c
}

// CeilTx returns the smallest key >= k.
func (m *Map[K, V]) ceilTx(tx *stm.Tx, h *Handle[K, V], k K) (K, V, bool) {
	return m.liveKeyOf(m.ceilNodeTx(tx, h, k))
}

// succTx returns the smallest key > k. When k is present the map routes
// to its node and the successor is one link away (Fig. 1 succ).
func (m *Map[K, V]) succTx(tx *stm.Tx, h *Handle[K, V], k K) (K, V, bool) {
	var c *node[K, V]
	if n := m.index.GetPtrTx(tx, k); n != nil {
		c = n.next0.Load(tx, &n.orec)
	} else {
		c = m.findPreds(tx, k, h.preds, m.nodeBeforeOrAt)
	}
	for c.sentinel == 0 && c.deleted(tx) {
		c = c.next0.Load(tx, &c.orec)
	}
	return m.liveKeyOf(c)
}

// floorTx returns the largest key <= k.
func (m *Map[K, V]) floorTx(tx *stm.Tx, h *Handle[K, V], k K) (K, V, bool) {
	if n := m.index.GetPtrTx(tx, k); n != nil {
		return n.key, n.val, true
	}
	c := m.findPreds(tx, k, h.preds, m.nodeBefore)
	p := c.prev0.Load(tx, &c.orec)
	for p.sentinel == 0 && p.deleted(tx) {
		p = p.prev0.Load(tx, &p.orec)
	}
	return m.liveKeyOf(p)
}

// predTx returns the largest key < k.
func (m *Map[K, V]) predTx(tx *stm.Tx, h *Handle[K, V], k K) (K, V, bool) {
	var c *node[K, V]
	if n := m.index.GetPtrTx(tx, k); n != nil {
		c = n.prev0.Load(tx, &n.orec)
	} else {
		first := m.findPreds(tx, k, h.preds, m.nodeBefore)
		c = first.prev0.Load(tx, &first.orec)
	}
	for c.sentinel == 0 && c.deleted(tx) {
		c = c.prev0.Load(tx, &c.orec)
	}
	return m.liveKeyOf(c)
}

func (m *Map[K, V]) liveKeyOf(n *node[K, V]) (K, V, bool) {
	if n.sentinel != 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	return n.key, n.val, true
}
