package core

import (
	"sync/atomic"

	"repro/internal/stm"
)

// Handle is a per-goroutine context for skip hash operations. It owns
// the scratch predecessor array for tower searches, the removal buffer
// of §4.5 (deferred unstitch batching, size 32 in the paper), and
// operation counters. A Handle must not be used concurrently; create one
// per worker goroutine with Map.NewHandle.
type Handle[K comparable, V any] struct {
	m     *Map[K, V]
	preds []*node[K, V]
	buf   []*node[K, V]
	stats HandleStats
	// adaptSkip counts remaining range queries that bypass the fast
	// path under Config.Adaptive.
	adaptSkip int
}

// HandleStats counts operations and range-path events for one handle.
// The fields are atomics only so aggregation can run concurrently with
// the owner; each field is written by the owning goroutine alone.
type HandleStats struct {
	// RangeFastAttempts counts fast-path transactions started.
	RangeFastAttempts atomic.Uint64
	// RangeFastAborts counts fast-path transactions that aborted
	// (Table 1's numerator).
	RangeFastAborts atomic.Uint64
	// RangeFastCommits counts range queries completed on the fast path.
	RangeFastCommits atomic.Uint64
	// RangeSlowCommits counts range queries completed on the slow path.
	RangeSlowCommits atomic.Uint64
}

// NewHandle creates a handle bound to m and registers it for stats
// aggregation.
func (m *Map[K, V]) NewHandle() *Handle[K, V] {
	h := &Handle[K, V]{
		m:     m,
		preds: make([]*node[K, V], m.cfg.MaxLevel),
	}
	if m.cfg.RemovalBufferSize > 0 {
		h.buf = make([]*node[K, V], 0, m.cfg.RemovalBufferSize)
	}
	m.mu.Lock()
	m.handles = append(m.handles, h)
	m.mu.Unlock()
	return h
}

// Map returns the map this handle operates on.
func (h *Handle[K, V]) Map() *Map[K, V] { return h.m }

// Lookup returns the value associated with k. O(1): one hash map probe
// and at most one extra read (Fig. 1).
func (h *Handle[K, V]) Lookup(k K) (V, bool) {
	var v V
	var ok bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		v, ok = h.m.lookupTx(tx, k)
		return nil
	})
	return v, ok
}

// Contains reports whether k is present.
func (h *Handle[K, V]) Contains(k K) bool {
	var ok bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		ok = h.m.containsTx(tx, k)
		return nil
	})
	return ok
}

// Insert adds (k, v) if k is absent and reports whether it did.
func (h *Handle[K, V]) Insert(k K, v V) bool {
	var ok bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		ok = h.m.insertTx(tx, h, k, v)
		return nil
	})
	return ok
}

// Remove deletes k and reports whether it was present. O(1) expected:
// the hash map routes to the node and double-linking unstitches it
// without a traversal.
func (h *Handle[K, V]) Remove(k K) bool {
	var ok bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		ok = h.m.removeTx(tx, h, k)
		return nil
	})
	return ok
}

// Put sets k to v unconditionally, reporting whether a previous value
// was replaced. Replacement is remove-then-insert in one transaction, so
// node values stay immutable and range-query linearizability is
// unaffected (the old node is logically deleted, the new one carries a
// fresh insertion time).
func (h *Handle[K, V]) Put(k K, v V) bool {
	var replaced bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		replaced = h.m.removeTx(tx, h, k)
		h.m.insertTx(tx, h, k, v)
		return nil
	})
	return replaced
}

// Ceil returns the smallest key >= k and its value.
func (h *Handle[K, V]) Ceil(k K) (K, V, bool) {
	return h.pointQuery(k, h.m.ceilTx)
}

// Succ returns the smallest key > k and its value.
func (h *Handle[K, V]) Succ(k K) (K, V, bool) {
	return h.pointQuery(k, h.m.succTx)
}

// Floor returns the largest key <= k and its value.
func (h *Handle[K, V]) Floor(k K) (K, V, bool) {
	return h.pointQuery(k, h.m.floorTx)
}

// Pred returns the largest key < k and its value.
func (h *Handle[K, V]) Pred(k K) (K, V, bool) {
	return h.pointQuery(k, h.m.predTx)
}

func (h *Handle[K, V]) pointQuery(k K, fn func(*stm.Tx, *Handle[K, V], K) (K, V, bool)) (K, V, bool) {
	var rk K
	var rv V
	var ok bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		rk, rv, ok = fn(tx, h, k)
		return nil
	})
	return rk, rv, ok
}

// Range appends every pair with l <= key <= r, in key order, to out and
// returns the extended slice. It implements Figure 3's two-path scheme:
// FastPathTries single-transaction attempts, then the RQC-coordinated
// slow path (subject to the FastOnly/SlowOnly configuration).
func (h *Handle[K, V]) Range(l, r K, out []Pair[K, V]) []Pair[K, V] {
	m := h.m
	return TwoPathRange(m.cfg, &h.stats, &h.adaptSkip,
		func() ([]Pair[K, V], error) { return m.rangeFast(h, l, r, out) },
		func() []Pair[K, V] { return m.rangeSlow(h, l, r, out) })
}

// TwoPathRange drives Figure 3's two-path policy for one range query:
// up to FastPathTries fast attempts (forever under FastOnly, none under
// SlowOnly or inside an Adaptive skip window), then the slow fallback,
// with the path counters and the adaptive window updated on the way.
// It is shared with the sharded frontend so the policy — and any future
// tuning of it — cannot drift between the two maps. fast reports a
// conflict through its error; slow must always succeed.
func TwoPathRange[K comparable, V any](cfg Config, stats *HandleStats, adaptSkip *int,
	fast func() ([]Pair[K, V], error), slow func() []Pair[K, V]) []Pair[K, V] {
	tryFast := !cfg.SlowOnly
	if tryFast && cfg.Adaptive && *adaptSkip > 0 {
		*adaptSkip--
		tryFast = false
	}
	if tryFast {
		for i := 0; cfg.FastOnly || i < cfg.FastPathTries; i++ {
			stats.RangeFastAttempts.Add(1)
			res, err := fast()
			if err == nil {
				stats.RangeFastCommits.Add(1)
				*adaptSkip = 0
				return res
			}
			stats.RangeFastAborts.Add(1)
		}
		if cfg.Adaptive {
			*adaptSkip = cfg.AdaptiveSkip
		}
	}
	res := slow()
	stats.RangeSlowCommits.Add(1)
	return res
}

// afterRemove routes a logically deleted node to the RQC, through the
// handle's removal buffer when buffering is enabled. The buffer push is
// an on-commit hook: if the enclosing transaction aborts, the node was
// never actually removed and must not be unstitched.
func (m *Map[K, V]) afterRemove(tx *stm.Tx, h *Handle[K, V], n *node[K, V]) {
	if h == nil || m.cfg.RemovalBufferSize == 0 {
		m.rqc.afterRemove(tx, m, n)
		return
	}
	tx.OnCommit(func() {
		h.buf = append(h.buf, n)
		if len(h.buf) >= m.cfg.RemovalBufferSize {
			h.FlushRemovals()
		}
	})
}

// FlushRemovals drains the handle's removal buffer: if no slow-path
// range query is in flight every buffered node is unstitched
// immediately; otherwise the whole buffer is spliced onto the most
// recent query's deferred list (§4.5). Tests and quiescence points may
// call it directly; it is otherwise automatic once the buffer fills.
func (h *Handle[K, V]) FlushRemovals() {
	m := h.m
	if len(h.buf) == 0 {
		return
	}
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		tail := m.rqc.tailOp(tx)
		if tail == nil {
			for _, n := range h.buf {
				m.unstitchTx(tx, n)
			}
			return nil
		}
		for _, n := range h.buf {
			m.rqc.appendDeferred(tx, tail, n)
		}
		return nil
	})
	h.buf = h.buf[:0]
}

// Stats returns a snapshot of the handle's counters.
func (h *Handle[K, V]) Stats() (attempts, fastAborts, fastCommits, slowCommits uint64) {
	return h.stats.RangeFastAttempts.Load(),
		h.stats.RangeFastAborts.Load(),
		h.stats.RangeFastCommits.Load(),
		h.stats.RangeSlowCommits.Load()
}

// RangeStats aggregates range-path counters across every handle of the
// map (Table 1's inputs).
type RangeStats struct {
	FastAttempts uint64
	FastAborts   uint64
	FastCommits  uint64
	SlowCommits  uint64
}

// Sub returns the element-wise difference s - prev.
func (s RangeStats) Sub(prev RangeStats) RangeStats {
	return RangeStats{
		FastAttempts: s.FastAttempts - prev.FastAttempts,
		FastAborts:   s.FastAborts - prev.FastAborts,
		FastCommits:  s.FastCommits - prev.FastCommits,
		SlowCommits:  s.SlowCommits - prev.SlowCommits,
	}
}

// RangeStats aggregates counters across all handles.
func (m *Map[K, V]) RangeStats() RangeStats {
	m.mu.Lock()
	handles := make([]*Handle[K, V], len(m.handles))
	copy(handles, m.handles)
	m.mu.Unlock()
	var s RangeStats
	for _, h := range handles {
		s.FastAttempts += h.stats.RangeFastAttempts.Load()
		s.FastAborts += h.stats.RangeFastAborts.Load()
		s.FastCommits += h.stats.RangeFastCommits.Load()
		s.SlowCommits += h.stats.RangeSlowCommits.Load()
	}
	return s
}

// Convenience methods on Map borrow a pooled handle. They are the
// ergonomic entry points; benchmark workers hold explicit handles.

func (m *Map[K, V]) borrow() *Handle[K, V] { return m.handlePool.Get().(*Handle[K, V]) }

// Lookup returns the value associated with k.
func (m *Map[K, V]) Lookup(k K) (V, bool) {
	h := m.borrow()
	defer m.handlePool.Put(h)
	return h.Lookup(k)
}

// Contains reports whether k is present.
func (m *Map[K, V]) Contains(k K) bool {
	h := m.borrow()
	defer m.handlePool.Put(h)
	return h.Contains(k)
}

// Insert adds (k, v) if k is absent and reports whether it did.
func (m *Map[K, V]) Insert(k K, v V) bool {
	h := m.borrow()
	defer m.handlePool.Put(h)
	return h.Insert(k, v)
}

// Remove deletes k and reports whether it was present.
func (m *Map[K, V]) Remove(k K) bool {
	h := m.borrow()
	defer m.handlePool.Put(h)
	return h.Remove(k)
}

// Put sets k to v unconditionally; see Handle.Put.
func (m *Map[K, V]) Put(k K, v V) bool {
	h := m.borrow()
	defer m.handlePool.Put(h)
	return h.Put(k, v)
}

// Ceil returns the smallest key >= k and its value.
func (m *Map[K, V]) Ceil(k K) (K, V, bool) {
	h := m.borrow()
	defer m.handlePool.Put(h)
	return h.Ceil(k)
}

// Succ returns the smallest key > k and its value.
func (m *Map[K, V]) Succ(k K) (K, V, bool) {
	h := m.borrow()
	defer m.handlePool.Put(h)
	return h.Succ(k)
}

// Floor returns the largest key <= k and its value.
func (m *Map[K, V]) Floor(k K) (K, V, bool) {
	h := m.borrow()
	defer m.handlePool.Put(h)
	return h.Floor(k)
}

// Pred returns the largest key < k and its value.
func (m *Map[K, V]) Pred(k K) (K, V, bool) {
	h := m.borrow()
	defer m.handlePool.Put(h)
	return h.Pred(k)
}

// Range collects [l, r] into out; see Handle.Range.
func (m *Map[K, V]) Range(l, r K, out []Pair[K, V]) []Pair[K, V] {
	h := m.borrow()
	defer m.handlePool.Put(h)
	return h.Range(l, r, out)
}

// Quiesce flushes every handle's removal buffer. The caller must ensure
// no operations are in flight; tests use it before auditing invariants.
func (m *Map[K, V]) Quiesce() {
	m.mu.Lock()
	handles := make([]*Handle[K, V], len(m.handles))
	copy(handles, m.handles)
	m.mu.Unlock()
	for _, h := range handles {
		h.FlushRemovals()
	}
}
