package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/stm"
)

// Handle is a per-goroutine context for skip hash operations. It owns
// the scratch predecessor array for tower searches, the removal buffer
// of §4.5 (deferred unstitch batching, size 32 in the paper), and
// operation counters. A Handle must not be used concurrently; create one
// per worker goroutine with Map.NewHandle and call Close when the worker
// is done, so the handle leaves the map's registry and its buffered
// removals reach the orphan queue instead of staying stitched forever.
type Handle[K comparable, V any] struct {
	m     *Map[K, V]
	preds []*node[K, V]
	stats HandleStats
	// adaptSkip counts remaining range queries that bypass the fast
	// path under Config.Adaptive.
	adaptSkip int
	// fastC is the handle's striped fast-read counter cell; nil when
	// Config.DisableReadFastPath turned the read fast path off.
	fastC *stm.FastReadCounters

	// buf is the removal buffer. It is appended to by the owning
	// goroutine (in on-commit hooks) but handed off wholesale by
	// Quiesce, Close and Recycle, which may run on other goroutines;
	// bufMu guards exactly that handoff so flushing is safe concurrent
	// with in-flight operations. No transactional work ever runs under
	// bufMu: flushers swap the slice out and drain outside the lock.
	// bufLen mirrors len(buf) (updated under bufMu) so the release fast
	// path can skip the lock entirely when there is nothing buffered.
	bufMu  sync.Mutex
	buf    []*node[K, V]
	bufLen atomic.Int32
	closed bool

	// registered records membership in Map.handles (explicit handles
	// only; pooled transient handles bank their counters on release
	// instead of living in the registry).
	registered bool
}

// HandleStats counts operations and range-path events for one handle.
// The fields are atomics only so aggregation can run concurrently with
// the owner; each field is written by the owning goroutine alone.
type HandleStats struct {
	// RangeFastAttempts counts fast-path transactions started.
	RangeFastAttempts atomic.Uint64
	// RangeFastAborts counts fast-path transactions that aborted
	// (Table 1's numerator).
	RangeFastAborts atomic.Uint64
	// RangeFastCommits counts range queries completed on the fast path.
	RangeFastCommits atomic.Uint64
	// RangeSlowCommits counts range queries completed on the slow path.
	RangeSlowCommits atomic.Uint64
}

// NewHandle creates a handle bound to m and registers it for stats
// aggregation. The caller should Close it when done; handles that are
// never closed stay in the registry (and keep their removal buffer
// private) for the life of the map.
func (m *Map[K, V]) NewHandle() *Handle[K, V] {
	h := m.NewTransientHandle()
	h.registered = true
	m.mu.Lock()
	m.handles = append(m.handles, h)
	m.mu.Unlock()
	return h
}

// NewTransientHandle creates a handle that is not tracked by the map's
// handle registry: its counters and removal buffer only reach the map
// when Recycle or Close banks them. The pooled convenience paths are
// built on transient handles so that handles dropped by the pool (GC
// empties sync.Pool) cannot grow the registry or strand buffered
// removals; explicit workers normally want NewHandle instead.
func (m *Map[K, V]) NewTransientHandle() *Handle[K, V] {
	h := &Handle[K, V]{
		m:     m,
		preds: make([]*node[K, V], m.cfg.MaxLevel),
	}
	if !m.cfg.DisableReadFastPath {
		h.fastC = m.rt.FastReadCounters()
	}
	if m.cfg.RemovalBufferSize > 0 {
		h.buf = make([]*node[K, V], 0, m.cfg.RemovalBufferSize)
	}
	return h
}

// Map returns the map this handle operates on.
func (h *Handle[K, V]) Map() *Map[K, V] { return h.m }

// Close retires the handle: its counters are banked into the map's
// retired-stats accumulator (RangeStats loses nothing), its buffered
// removals are handed to the orphan queue for batched reclamation, and —
// for handles created with NewHandle — it is deregistered from the
// handle registry. Close is idempotent. The owning goroutine must issue
// no further operations through the handle; a removal that commits
// concurrently with Close still reaches the orphan queue rather than a
// dead buffer.
func (h *Handle[K, V]) Close() {
	h.bufMu.Lock()
	alreadyClosed := h.closed
	h.closed = true
	take := h.buf
	h.buf = nil
	h.bufLen.Store(0)
	h.bufMu.Unlock()
	h.bankStats()
	h.m.orphanNodes(take)
	if alreadyClosed || !h.registered {
		return
	}
	m := h.m
	m.mu.Lock()
	for i, other := range m.handles {
		if other == h {
			last := len(m.handles) - 1
			m.handles[i] = m.handles[last]
			m.handles[last] = nil
			m.handles = m.handles[:last]
			break
		}
	}
	m.mu.Unlock()
}

// Recycle banks the handle's counters and hands its buffered removals to
// the orphan queue while leaving the handle usable, unlike Close. The
// pooled convenience paths call it on every release, so a handle parked
// in — or dropped from — the pool never holds stranded state; a clean
// handle (the common case — point operations buffer nothing) recycles
// with a handful of atomic loads and no lock.
func (h *Handle[K, V]) Recycle() {
	h.bankStats()
	if h.bufLen.Load() == 0 {
		return // nothing buffered; any racing flusher only shrinks the buffer
	}
	if take := h.takeBuf(); take != nil {
		h.m.orphanNodes(take) // copies the pointers into the queue
		h.finishDrain(take)
	}
}

// takeBuf detaches the handle's removal buffer for a handoff, returning
// nil when there is nothing to drain (the buffer, if any, stays put).
func (h *Handle[K, V]) takeBuf() []*node[K, V] {
	h.bufMu.Lock()
	take := h.buf
	if len(take) == 0 {
		h.bufMu.Unlock()
		return nil
	}
	h.buf = nil
	h.bufLen.Store(0)
	h.bufMu.Unlock()
	return take
}

// finishDrain completes a buffer handoff after the nodes have reached
// their sink: the drained slice's pointers are zeroed (so the pooled
// backing array pins no nodes) and the array is offered back to the
// handle. Every flush path — Recycle, pushRemoval overflow,
// FlushRemovals — funnels through here so the protocol lives in one
// place.
func (h *Handle[K, V]) finishDrain(take []*node[K, V]) {
	for i := range take {
		take[i] = nil
	}
	h.restoreBuf(take[:0])
}

// restoreBuf hands the (now-drained) backing array back to the handle so
// steady-state flushing allocates nothing.
func (h *Handle[K, V]) restoreBuf(buf []*node[K, V]) {
	h.bufMu.Lock()
	if h.buf == nil && !h.closed {
		h.buf = buf
	}
	h.bufMu.Unlock()
}

// bankStats moves the handle's counters into the map's retired
// accumulator, under the same mutex RangeStats aggregates under, so a
// snapshot can never catch a value on both sides of a move (no double
// count, no loss — successive RangeStats snapshots are monotone and Sub
// deltas non-negative). The Load guard keeps the common all-zero bank
// (point operations never touch these counters) to plain reads; m.mu is
// uncontended on that path outside registry churn and stats scrapes.
func (h *Handle[K, V]) bankStats() {
	st := &h.stats
	if st.RangeFastAttempts.Load()|st.RangeFastAborts.Load()|
		st.RangeFastCommits.Load()|st.RangeSlowCommits.Load() == 0 {
		return // nothing to move; skipping the lock cannot affect a snapshot
	}
	bank := func(c *atomic.Uint64, r *atomic.Uint64) {
		if v := c.Load(); v != 0 {
			r.Add(v)
			c.Store(0) // owner-exclusive writer, so no increments are lost
		}
	}
	m := h.m
	m.mu.Lock()
	bank(&st.RangeFastAttempts, &m.retired.fastAttempts)
	bank(&st.RangeFastAborts, &m.retired.fastAborts)
	bank(&st.RangeFastCommits, &m.retired.fastCommits)
	bank(&st.RangeSlowCommits, &m.retired.slowCommits)
	m.mu.Unlock()
}

// Lookup returns the value associated with k. O(1): one hash map probe
// and at most one extra read (Fig. 1). Unless Config.DisableReadFastPath
// is set, the probe first runs optimistically outside any transaction —
// one clock sample, a raw bucket walk, one orec revalidation — and only
// a torn or concurrent-write observation falls back to the full
// transaction below, which remains the source of truth.
func (h *Handle[K, V]) Lookup(k K) (V, bool) {
	if h.fastC != nil {
		if v, present, answered := h.m.lookupFast(k); answered {
			h.fastC.Hit()
			return v, present
		}
		h.fastC.Fallback()
	}
	var v V
	var ok bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		v, ok = h.m.lookupTx(tx, k)
		return nil
	})
	return v, ok
}

// Contains reports whether k is present, on the same optimistic fast
// path as Lookup.
func (h *Handle[K, V]) Contains(k K) bool {
	if h.fastC != nil {
		if present, answered := h.m.containsFast(k); answered {
			h.fastC.Hit()
			return present
		}
		h.fastC.Fallback()
	}
	var ok bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		ok = h.m.containsTx(tx, k)
		return nil
	})
	return ok
}

// Insert adds (k, v) if k is absent and reports whether it did.
func (h *Handle[K, V]) Insert(k K, v V) bool {
	var ok bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		ok = h.m.insertTx(tx, h, k, v)
		return nil
	})
	return ok
}

// Remove deletes k and reports whether it was present. O(1) expected:
// the hash map routes to the node and double-linking unstitches it
// without a traversal.
func (h *Handle[K, V]) Remove(k K) bool {
	var ok bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		ok = h.m.removeTx(tx, h, k)
		return nil
	})
	return ok
}

// Put sets k to v unconditionally, reporting whether a previous value
// was replaced. Replacement is remove-then-insert in one transaction, so
// node values stay immutable and range-query linearizability is
// unaffected (the old node is logically deleted, the new one carries a
// fresh insertion time).
func (h *Handle[K, V]) Put(k K, v V) bool {
	var replaced bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		replaced = h.m.removeTx(tx, h, k)
		h.m.insertTx(tx, h, k, v)
		return nil
	})
	return replaced
}

// Ceil returns the smallest key >= k and its value.
func (h *Handle[K, V]) Ceil(k K) (K, V, bool) {
	return h.pointQuery(k, h.m.ceilTx)
}

// Succ returns the smallest key > k and its value.
func (h *Handle[K, V]) Succ(k K) (K, V, bool) {
	return h.pointQuery(k, h.m.succTx)
}

// Floor returns the largest key <= k and its value.
func (h *Handle[K, V]) Floor(k K) (K, V, bool) {
	return h.pointQuery(k, h.m.floorTx)
}

// Pred returns the largest key < k and its value.
func (h *Handle[K, V]) Pred(k K) (K, V, bool) {
	return h.pointQuery(k, h.m.predTx)
}

func (h *Handle[K, V]) pointQuery(k K, fn func(*stm.Tx, *Handle[K, V], K) (K, V, bool)) (K, V, bool) {
	var rk K
	var rv V
	var ok bool
	_ = h.m.rt.Atomic(func(tx *stm.Tx) error {
		rk, rv, ok = fn(tx, h, k)
		return nil
	})
	return rk, rv, ok
}

// Range appends every pair with l <= key <= r, in key order, to out and
// returns the extended slice. It implements Figure 3's two-path scheme:
// FastPathTries single-transaction attempts, then the RQC-coordinated
// slow path (subject to the FastOnly/SlowOnly configuration).
func (h *Handle[K, V]) Range(l, r K, out []Pair[K, V]) []Pair[K, V] {
	m := h.m
	return TwoPathRange(m.cfg, &h.stats, &h.adaptSkip,
		func() ([]Pair[K, V], error) { return m.rangeFast(h, l, r, out) },
		func() []Pair[K, V] { return m.rangeSlow(h, l, r, out) })
}

// TwoPathRange drives Figure 3's two-path policy for one range query:
// up to FastPathTries fast attempts (forever under FastOnly, none under
// SlowOnly or inside an Adaptive skip window), then the slow fallback,
// with the path counters and the adaptive window updated on the way.
// It is shared with the sharded frontend so the policy — and any future
// tuning of it — cannot drift between the two maps. fast reports a
// conflict through its error; slow must always succeed.
func TwoPathRange[K comparable, V any](cfg Config, stats *HandleStats, adaptSkip *int,
	fast func() ([]Pair[K, V], error), slow func() []Pair[K, V]) []Pair[K, V] {
	tryFast := !cfg.SlowOnly
	if tryFast && cfg.Adaptive && *adaptSkip > 0 {
		*adaptSkip--
		tryFast = false
	}
	if tryFast {
		for i := 0; cfg.FastOnly || i < cfg.FastPathTries; i++ {
			stats.RangeFastAttempts.Add(1)
			res, err := fast()
			if err == nil {
				stats.RangeFastCommits.Add(1)
				*adaptSkip = 0
				return res
			}
			stats.RangeFastAborts.Add(1)
		}
		if cfg.Adaptive {
			*adaptSkip = cfg.AdaptiveSkip
		}
	}
	res := slow()
	stats.RangeSlowCommits.Add(1)
	return res
}

// afterRemove routes a logically deleted node to the RQC, through the
// handle's removal buffer when buffering is enabled. The buffer push is
// an on-commit hook: if the enclosing transaction aborts, the node was
// never actually removed and must not be unstitched.
func (m *Map[K, V]) afterRemove(tx *stm.Tx, h *Handle[K, V], n *node[K, V]) {
	if h == nil || m.cfg.RemovalBufferSize == 0 {
		m.rqc.afterRemove(tx, m, n)
		return
	}
	tx.OnCommit(func() { h.pushRemoval(n) })
}

// pushRemoval appends one committed removal to the buffer, flushing when
// the buffer reaches Config.RemovalBufferSize. A node committed against
// a closed (or mid-handoff) handle is routed to the orphan queue, so no
// removal can strand in a buffer nobody will flush.
func (h *Handle[K, V]) pushRemoval(n *node[K, V]) {
	h.bufMu.Lock()
	if h.buf == nil {
		h.bufMu.Unlock()
		h.m.orphanNode(n)
		return
	}
	h.buf = append(h.buf, n)
	if len(h.buf) < h.m.cfg.RemovalBufferSize {
		h.bufLen.Store(int32(len(h.buf)))
		h.bufMu.Unlock()
		return
	}
	take := h.buf
	h.buf = nil
	h.bufLen.Store(0)
	h.bufMu.Unlock()
	h.m.drainNodes(take)
	h.finishDrain(take)
}

// FlushRemovals drains the handle's removal buffer in bounded
// transactional batches: chunks are unstitched immediately when no
// slow-path range query is in flight and spliced onto the most recent
// query's deferred list otherwise (§4.5). It is safe to call from any
// goroutine, concurrent with the owner's operations — the buffer is
// swapped out under the handle's buffer lock and drained outside it.
// Tests and quiescence points may call it directly; it is otherwise
// automatic once the buffer fills.
func (h *Handle[K, V]) FlushRemovals() {
	if take := h.takeBuf(); take != nil {
		h.m.drainNodes(take)
		h.finishDrain(take)
	}
}

// Stats returns a snapshot of the handle's counters.
func (h *Handle[K, V]) Stats() (attempts, fastAborts, fastCommits, slowCommits uint64) {
	return h.stats.RangeFastAttempts.Load(),
		h.stats.RangeFastAborts.Load(),
		h.stats.RangeFastCommits.Load(),
		h.stats.RangeSlowCommits.Load()
}

// RangeStats aggregates range-path counters across every handle of the
// map (Table 1's inputs).
type RangeStats struct {
	FastAttempts uint64
	FastAborts   uint64
	FastCommits  uint64
	SlowCommits  uint64
}

// Sub returns the element-wise difference s - prev.
func (s RangeStats) Sub(prev RangeStats) RangeStats {
	return RangeStats{
		FastAttempts: s.FastAttempts - prev.FastAttempts,
		FastAborts:   s.FastAborts - prev.FastAborts,
		FastCommits:  s.FastCommits - prev.FastCommits,
		SlowCommits:  s.SlowCommits - prev.SlowCommits,
	}
}

// RangeStats aggregates counters across all registered handles plus the
// retired accumulator (closed handles and released pooled handles bank
// their counters there, so history survives handle turnover). The whole
// aggregation runs under m.mu — the mutex bankStats moves counters
// under — so snapshots are exact with respect to banking and successive
// snapshots never decrease (Sub deltas stay non-negative).
func (m *Map[K, V]) RangeStats() RangeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s RangeStats
	for _, h := range m.handles {
		s.FastAttempts += h.stats.RangeFastAttempts.Load()
		s.FastAborts += h.stats.RangeFastAborts.Load()
		s.FastCommits += h.stats.RangeFastCommits.Load()
		s.SlowCommits += h.stats.RangeSlowCommits.Load()
	}
	s.FastAttempts += m.retired.fastAttempts.Load()
	s.FastAborts += m.retired.fastAborts.Load()
	s.FastCommits += m.retired.fastCommits.Load()
	s.SlowCommits += m.retired.slowCommits.Load()
	return s
}

// Convenience methods on Map borrow a pooled transient handle. They are
// the ergonomic entry points; benchmark workers hold explicit handles.
// Every release recycles the handle — counters banked, buffered removals
// handed to the orphan queue — so a handle the pool later drops under GC
// pressure cannot strand removals or grow the registry.

func (m *Map[K, V]) borrow() *Handle[K, V] { return m.handlePool.Get().(*Handle[K, V]) }

// release recycles a borrowed handle before returning it to the pool;
// for paths that may have dirtied it (Remove/Put buffer removals,
// Range/Atomic touch the counters).
func (m *Map[K, V]) release(h *Handle[K, V]) {
	h.Recycle()
	m.handlePool.Put(h)
}

// releaseClean returns a borrowed handle without the recycle pass; only
// for operations that can neither buffer a removal nor touch a
// range-path counter (lookups, inserts, point queries, iteration), so
// the O(1) read path pays nothing beyond the pool round-trip. Dirty
// paths always release through release(), so a pooled handle's buffer
// is empty by invariant.
func (m *Map[K, V]) releaseClean(h *Handle[K, V]) { m.handlePool.Put(h) }

// Lookup returns the value associated with k.
func (m *Map[K, V]) Lookup(k K) (V, bool) {
	h := m.borrow()
	defer m.releaseClean(h)
	return h.Lookup(k)
}

// Contains reports whether k is present.
func (m *Map[K, V]) Contains(k K) bool {
	h := m.borrow()
	defer m.releaseClean(h)
	return h.Contains(k)
}

// Insert adds (k, v) if k is absent and reports whether it did.
func (m *Map[K, V]) Insert(k K, v V) bool {
	h := m.borrow()
	defer m.releaseClean(h)
	return h.Insert(k, v)
}

// Remove deletes k and reports whether it was present.
func (m *Map[K, V]) Remove(k K) bool {
	h := m.borrow()
	defer m.release(h)
	return h.Remove(k)
}

// Put sets k to v unconditionally; see Handle.Put.
func (m *Map[K, V]) Put(k K, v V) bool {
	h := m.borrow()
	defer m.release(h)
	return h.Put(k, v)
}

// Ceil returns the smallest key >= k and its value.
func (m *Map[K, V]) Ceil(k K) (K, V, bool) {
	h := m.borrow()
	defer m.releaseClean(h)
	return h.Ceil(k)
}

// Succ returns the smallest key > k and its value.
func (m *Map[K, V]) Succ(k K) (K, V, bool) {
	h := m.borrow()
	defer m.releaseClean(h)
	return h.Succ(k)
}

// Floor returns the largest key <= k and its value.
func (m *Map[K, V]) Floor(k K) (K, V, bool) {
	h := m.borrow()
	defer m.releaseClean(h)
	return h.Floor(k)
}

// Pred returns the largest key < k and its value.
func (m *Map[K, V]) Pred(k K) (K, V, bool) {
	h := m.borrow()
	defer m.releaseClean(h)
	return h.Pred(k)
}

// Range collects [l, r] into out; see Handle.Range.
func (m *Map[K, V]) Range(l, r K, out []Pair[K, V]) []Pair[K, V] {
	h := m.borrow()
	defer m.release(h)
	return h.Range(l, r, out)
}

// Quiesce flushes every registered handle's removal buffer and drains
// the orphan queue. It is safe concurrent with in-flight operations
// (buffer handoff happens under each handle's buffer lock); removals
// that commit after Quiesce returns are, of course, not covered. Tests
// call it before auditing invariants; servers may call it at idle
// points to reclaim eagerly.
func (m *Map[K, V]) Quiesce() {
	m.mu.Lock()
	handles := make([]*Handle[K, V], len(m.handles))
	copy(handles, m.handles)
	m.mu.Unlock()
	for _, h := range handles {
		h.FlushRemovals()
	}
	m.adoptOrphans()
}
