package core

import (
	"repro/internal/stm"
)

// Txn provides the skip hash's composable transactional batch API: every
// method call inside one Atomic body executes as a single indivisible
// operation. This is the STM dividend the paper's design methodology
// banks on — multi-key atomicity costs nothing extra to expose.
//
// A Txn is only valid inside the closure it was handed to.
type Txn[K comparable, V any] struct {
	m  *Map[K, V]
	h  *Handle[K, V]
	tx *stm.Tx
}

// Atomic runs fn as one transaction over the map. All operations
// performed through op commit or roll back together. Returning a non-nil
// error rolls everything back and propagates the error.
func (h *Handle[K, V]) Atomic(fn func(op *Txn[K, V]) error) error {
	return h.m.rt.Atomic(func(tx *stm.Tx) error {
		return fn(&Txn[K, V]{m: h.m, h: h, tx: tx})
	})
}

// Bind returns the transactional view of the handle's map inside an
// externally managed transaction. It is the composition primitive for
// multi-map atomicity: several maps created with NewIn on one shared
// runtime can be operated on inside a single Runtime.Atomic body, each
// through its own bound Txn, and all of it commits or rolls back
// together. The caller must guarantee tx belongs to the map's runtime;
// binding a transaction from a foreign runtime is undefined behavior
// (timestamps and ownership words are not comparable across runtimes).
func (h *Handle[K, V]) Bind(tx *stm.Tx) *Txn[K, V] {
	return &Txn[K, V]{m: h.m, h: h, tx: tx}
}

// Atomic runs fn as one transaction using a pooled handle.
func (m *Map[K, V]) Atomic(fn func(op *Txn[K, V]) error) error {
	h := m.borrow()
	defer m.release(h)
	return h.Atomic(fn)
}

// Lookup returns the value associated with k.
func (t *Txn[K, V]) Lookup(k K) (V, bool) { return t.m.lookupTx(t.tx, k) }

// Contains reports whether k is present.
func (t *Txn[K, V]) Contains(k K) bool { return t.m.containsTx(t.tx, k) }

// Insert adds (k, v) if k is absent and reports whether it did.
func (t *Txn[K, V]) Insert(k K, v V) bool { return t.m.insertTx(t.tx, t.h, k, v) }

// Remove deletes k and reports whether it was present.
func (t *Txn[K, V]) Remove(k K) bool { return t.m.removeTx(t.tx, t.h, k) }

// Put sets k to v unconditionally, reporting whether a previous value
// was replaced.
func (t *Txn[K, V]) Put(k K, v V) bool {
	replaced := t.m.removeTx(t.tx, t.h, k)
	t.m.insertTx(t.tx, t.h, k, v)
	return replaced
}

// Ceil returns the smallest key >= k and its value.
func (t *Txn[K, V]) Ceil(k K) (K, V, bool) { return t.m.ceilTx(t.tx, t.h, k) }

// Succ returns the smallest key > k and its value.
func (t *Txn[K, V]) Succ(k K) (K, V, bool) { return t.m.succTx(t.tx, t.h, k) }

// Floor returns the largest key <= k and its value.
func (t *Txn[K, V]) Floor(k K) (K, V, bool) { return t.m.floorTx(t.tx, t.h, k) }

// Pred returns the largest key < k and its value.
func (t *Txn[K, V]) Pred(k K) (K, V, bool) { return t.m.predTx(t.tx, t.h, k) }

// Range appends every pair with l <= key <= r to out within the
// transaction. The surrounding transaction provides snapshot atomicity,
// so no coordinator involvement is needed.
func (t *Txn[K, V]) Range(l, r K, out []Pair[K, V]) []Pair[K, V] {
	return t.m.rangeTx(t.tx, t.h, l, r, out)
}
