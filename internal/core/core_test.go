package core

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
	"repro/internal/thashmap"
)

func lessInt64(a, b int64) bool { return a < b }

func newTestMap(t *testing.T, cfg Config) *Map[int64, int64] {
	t.Helper()
	if cfg.Buckets == 0 {
		cfg.Buckets = 257
	}
	return New[int64, int64](lessInt64, thashmap.Hash64, cfg)
}

func TestBasicOperations(t *testing.T) {
	m := newTestMap(t, Config{})
	if _, ok := m.Lookup(7); ok {
		t.Error("Lookup on empty map reported present")
	}
	if !m.Insert(7, 70) {
		t.Error("Insert of absent key failed")
	}
	if m.Insert(7, 71) {
		t.Error("Insert of present key succeeded")
	}
	if v, ok := m.Lookup(7); !ok || v != 70 {
		t.Errorf("Lookup(7) = %d,%v want 70,true", v, ok)
	}
	if !m.Contains(7) {
		t.Error("Contains(7) = false")
	}
	if !m.Remove(7) {
		t.Error("Remove of present key failed")
	}
	if m.Remove(7) {
		t.Error("Remove of absent key succeeded")
	}
	m.Quiesce()
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Error(err)
	}
}

func TestPutReplaces(t *testing.T) {
	m := newTestMap(t, Config{})
	if m.Put(1, 10) {
		t.Error("first Put reported replacement")
	}
	if !m.Put(1, 20) {
		t.Error("second Put did not report replacement")
	}
	if v, _ := m.Lookup(1); v != 20 {
		t.Errorf("value after Put = %d, want 20", v)
	}
	m.Quiesce()
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Error(err)
	}
}

func TestPointQueries(t *testing.T) {
	m := newTestMap(t, Config{})
	for _, k := range []int64{10, 20, 30} {
		m.Insert(k, k*2)
	}
	tests := []struct {
		name string
		fn   func(int64) (int64, int64, bool)
		k    int64
		want int64
		ok   bool
	}{
		{"ceil present O(1)", m.Ceil, 20, 20, true},
		{"ceil between", m.Ceil, 11, 20, true},
		{"ceil below all", m.Ceil, 1, 10, true},
		{"ceil above all", m.Ceil, 31, 0, false},
		{"succ present O(1)", m.Succ, 20, 30, true},
		{"succ between", m.Succ, 11, 20, true},
		{"succ of last", m.Succ, 30, 0, false},
		{"floor present O(1)", m.Floor, 20, 20, true},
		{"floor between", m.Floor, 29, 20, true},
		{"floor below all", m.Floor, 1, 0, false},
		{"pred present O(1)", m.Pred, 20, 10, true},
		{"pred between", m.Pred, 29, 20, true},
		{"pred of first", m.Pred, 10, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			k, v, ok := tt.fn(tt.k)
			if ok != tt.ok || (ok && k != tt.want) {
				t.Errorf("got %d,%v want %d,%v", k, ok, tt.want, tt.ok)
			}
			if ok && v != k*2 {
				t.Errorf("value %d, want %d", v, k*2)
			}
		})
	}
}

func TestPointQueriesSkipDeleted(t *testing.T) {
	// Logically deleted nodes may linger in the list while a slow-path
	// range query is active; point queries must never return them.
	m := newTestMap(t, Config{SlowOnly: true, RemovalBufferSize: -1})
	for _, k := range []int64{10, 20, 30} {
		m.Insert(k, k)
	}
	// Start a slow-path range query "by hand" so removals are deferred.
	h := m.NewHandle()
	var op *rangeOp[int64, int64]
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		op = m.rqc.onRange(tx)
		return nil
	})
	m.Remove(20)
	if m.StitchedSlow() != 3 {
		t.Fatalf("expected deferred node to stay stitched, have %d nodes", m.StitchedSlow())
	}
	if k, _, ok := m.Ceil(15); !ok || k != 30 {
		t.Errorf("Ceil(15) = %d,%v want 30,true (deleted 20 skipped)", k, ok)
	}
	if k, _, ok := m.Succ(10); !ok || k != 30 {
		t.Errorf("Succ(10) = %d,%v want 30,true", k, ok)
	}
	if k, _, ok := m.Floor(25); !ok || k != 10 {
		t.Errorf("Floor(25) = %d,%v want 10,true", k, ok)
	}
	if k, _, ok := m.Pred(30); !ok || k != 10 {
		t.Errorf("Pred(30) = %d,%v want 10,true", k, ok)
	}
	if _, ok := m.Lookup(20); ok {
		t.Error("Lookup(20) found logically deleted node")
	}
	m.rqc.afterRange(m, op)
	_ = h
	if got := m.StitchedSlow(); got != 2 {
		t.Errorf("after afterRange: %d stitched nodes, want 2", got)
	}
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Error(err)
	}
}

func TestInsertAfterLogicalDelete(t *testing.T) {
	// Removing a key while it is pinned by a range query and then
	// re-inserting it must produce a fresh live node placed after the
	// deleted one, and lookups must see the new value.
	m := newTestMap(t, Config{SlowOnly: true, RemovalBufferSize: -1})
	m.Insert(5, 50)
	var op *rangeOp[int64, int64]
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		op = m.rqc.onRange(tx)
		return nil
	})
	m.Remove(5)
	if !m.Insert(5, 51) {
		t.Fatal("re-insert after logical delete failed")
	}
	if v, ok := m.Lookup(5); !ok || v != 51 {
		t.Errorf("Lookup(5) = %d,%v want 51,true", v, ok)
	}
	if got := m.StitchedSlow(); got != 2 {
		t.Errorf("stitched = %d, want 2 (deleted + live)", got)
	}
	if err := m.CheckInvariants(CheckOptions{AllowDeleted: true}); err != nil {
		t.Error(err)
	}
	m.rqc.afterRange(m, op)
	if got := m.StitchedSlow(); got != 1 {
		t.Errorf("after cleanup stitched = %d, want 1", got)
	}
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Error(err)
	}
}

func TestRangeBasic(t *testing.T) {
	for _, cfg := range []Config{
		{},               // two-path
		{FastOnly: true}, // fast only
		{SlowOnly: true}, // slow only
	} {
		m := newTestMap(t, cfg)
		for k := int64(0); k < 100; k += 2 {
			m.Insert(k, k*10)
		}
		got := m.Range(10, 20, nil)
		want := []int64{10, 12, 14, 16, 18, 20}
		if len(got) != len(want) {
			t.Fatalf("cfg %+v: Range(10,20) returned %d pairs, want %d", cfg, len(got), len(want))
		}
		for i, p := range got {
			if p.Key != want[i] || p.Val != want[i]*10 {
				t.Errorf("pair %d = %+v, want {%d %d}", i, p, want[i], want[i]*10)
			}
		}
		if got := m.Range(1, 1, nil); len(got) != 0 {
			t.Errorf("empty Range returned %v", got)
		}
		if got := m.Range(200, 300, nil); len(got) != 0 {
			t.Errorf("out-of-universe Range returned %v", got)
		}
	}
}

func TestQuickVersusModel(t *testing.T) {
	m := newTestMap(t, Config{Buckets: 31, MaxLevel: 4})
	model := make(map[int64]int64)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			k := int64(op % 48)
			switch (op / 48) % 5 {
			case 0:
				got := m.Insert(k, k*7)
				_, present := model[k]
				if got == present {
					return false
				}
				if !present {
					model[k] = k * 7
				}
			case 1:
				got := m.Remove(k)
				_, present := model[k]
				if got != present {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := m.Lookup(k)
				mv, present := model[k]
				if ok != present || (ok && v != mv) {
					return false
				}
			case 3:
				gk, _, ok := m.Ceil(k)
				wk, wok := modelCeil(model, k)
				if ok != wok || (ok && gk != wk) {
					return false
				}
			case 4:
				gk, _, ok := m.Pred(k)
				wk, wok := modelPred(model, k)
				if ok != wok || (ok && gk != wk) {
					return false
				}
			}
		}
		got := m.Range(0, 47, nil)
		keys := sortedKeys(model)
		if len(got) != len(keys) {
			return false
		}
		for i, p := range got {
			if p.Key != keys[i] || p.Val != model[keys[i]] {
				return false
			}
		}
		m.Quiesce()
		return m.CheckInvariants(CheckOptions{}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func modelCeil(model map[int64]int64, k int64) (int64, bool) {
	best, ok := int64(0), false
	for mk := range model {
		if mk >= k && (!ok || mk < best) {
			best, ok = mk, true
		}
	}
	return best, ok
}

func modelPred(model map[int64]int64, k int64) (int64, bool) {
	best, ok := int64(0), false
	for mk := range model {
		if mk < k && (!ok || mk > best) {
			best, ok = mk, true
		}
	}
	return best, ok
}

func sortedKeys(model map[int64]int64) []int64 {
	keys := make([]int64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func TestAtomicBatch(t *testing.T) {
	m := newTestMap(t, Config{})
	err := m.Atomic(func(op *Txn[int64, int64]) error {
		op.Insert(1, 1)
		op.Insert(2, 2)
		if v, ok := op.Lookup(1); !ok || v != 1 {
			t.Errorf("Lookup inside txn = %d,%v", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Contains(1) || !m.Contains(2) {
		t.Error("batch insert lost keys")
	}
	// Rollback on error must undo everything.
	rollbackErr := errSentinel{}
	err = m.Atomic(func(op *Txn[int64, int64]) error {
		op.Remove(1)
		op.Insert(3, 3)
		return rollbackErr
	})
	if err != rollbackErr {
		t.Fatalf("error = %v, want sentinel", err)
	}
	if !m.Contains(1) {
		t.Error("rollback lost key 1")
	}
	if m.Contains(3) {
		t.Error("rollback leaked key 3")
	}
	m.Quiesce()
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Error(err)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

func runChaos(t *testing.T, cfg Config, goroutines, iters int, universe int64, rangeLen int64) *Map[int64, int64] {
	t.Helper()
	m := newTestMap(t, cfg)
	hs := make([]*Handle[int64, int64], goroutines)
	for i := range hs {
		hs[i] = m.NewHandle()
	}
	// Prefill half the universe.
	pre := m.NewHandle()
	for k := int64(0); k < universe; k += 2 {
		pre.Insert(k, k)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(h *Handle[int64, int64], seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
			var buf []Pair[int64, int64]
			for i := 0; i < iters; i++ {
				k := int64(rng.Uint64() % uint64(universe))
				switch rng.Uint64() % 10 {
				case 0, 1, 2:
					h.Insert(k, k)
				case 3, 4, 5:
					h.Remove(k)
				case 6, 7:
					if v, ok := h.Lookup(k); ok && v != k {
						t.Errorf("Lookup(%d) = %d", k, v)
					}
				case 8:
					r := k + rangeLen
					buf = h.Range(k, r, buf[:0])
					last := int64(-1)
					for _, p := range buf {
						if p.Key < k || p.Key > r {
							t.Errorf("range [%d,%d] returned out-of-range key %d", k, r, p.Key)
						}
						if p.Key <= last {
							t.Errorf("range result not strictly sorted: %d after %d", p.Key, last)
						}
						if p.Val != p.Key {
							t.Errorf("range returned wrong value %d for key %d", p.Val, p.Key)
						}
						last = p.Key
					}
				case 9:
					if ck, _, ok := h.Ceil(k); ok && ck < k {
						t.Errorf("Ceil(%d) = %d < k", k, ck)
					}
				}
			}
		}(hs[g], uint64(g)+1)
	}
	wg.Wait()
	m.Quiesce()
	return m
}

func TestConcurrentChaosTwoPath(t *testing.T) {
	m := runChaos(t, Config{}, 8, 3000, 512, 32)
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentChaosSlowOnly(t *testing.T) {
	m := runChaos(t, Config{SlowOnly: true}, 8, 1500, 256, 32)
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentChaosFastOnly(t *testing.T) {
	m := runChaos(t, Config{FastOnly: true}, 8, 3000, 512, 32)
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentChaosUnbuffered(t *testing.T) {
	m := runChaos(t, Config{RemovalBufferSize: -1}, 8, 2000, 256, 32)
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestPairInvariantUnderRanges(t *testing.T) {
	// Writers toggle pairs (k, k+half) atomically via the batch API.
	// Every range query — fast or slow — must observe the pair
	// invariant, which is the strongest practical linearizability check
	// for snapshots.
	for _, cfg := range []Config{{}, {SlowOnly: true}, {FastOnly: true}} {
		cfg := cfg
		m := newTestMap(t, cfg)
		const half = 64
		seed := m.NewHandle()
		for k := int64(0); k < half; k += 2 {
			seed.Insert(k, k)
			seed.Insert(k+half, k)
		}
		stop := make(chan struct{})
		var writers sync.WaitGroup
		for g := 0; g < 4; g++ {
			writers.Add(1)
			go func(s uint64) {
				defer writers.Done()
				h := m.NewHandle()
				rng := rand.New(rand.NewPCG(s, s^0x5555))
				for i := 0; i < 1200; i++ {
					k := int64(rng.Uint64() % half)
					_ = h.Atomic(func(op *Txn[int64, int64]) error {
						if op.Contains(k) {
							op.Remove(k)
							op.Remove(k + half)
						} else {
							op.Insert(k, k)
							op.Insert(k+half, k)
						}
						return nil
					})
				}
			}(uint64(g) + 11)
		}
		var readers sync.WaitGroup
		for g := 0; g < 2; g++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				h := m.NewHandle()
				var buf []Pair[int64, int64]
				for {
					select {
					case <-stop:
						return
					default:
					}
					buf = h.Range(0, 2*half, buf[:0])
					seen := make(map[int64]bool, len(buf))
					for _, p := range buf {
						seen[p.Key] = true
					}
					for k := int64(0); k < half; k++ {
						if seen[k] != seen[k+half] {
							t.Errorf("cfg %+v: torn snapshot key %d=%v partner=%v",
								cfg, k, seen[k], seen[k+half])
							return
						}
					}
				}
			}()
		}
		writers.Wait()
		close(stop)
		readers.Wait()
		m.Quiesce()
		if err := m.CheckInvariants(CheckOptions{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPerKeyLinearization(t *testing.T) {
	// successfulInserts(k) - successfulRemoves(k) must equal final
	// presence for every key.
	m := newTestMap(t, Config{})
	const keys = 16
	const goroutines = 8
	var inserts, removes [keys]int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := m.NewHandle()
			var li, lr [keys]int64
			rng := rand.New(rand.NewPCG(seed, seed))
			for i := 0; i < 2000; i++ {
				k := int64(rng.Uint64() % keys)
				if rng.Uint64()&1 == 0 {
					if h.Insert(k, k) {
						li[k]++
					}
				} else {
					if h.Remove(k) {
						lr[k]++
					}
				}
			}
			mu.Lock()
			for k := 0; k < keys; k++ {
				inserts[k] += li[k]
				removes[k] += lr[k]
			}
			mu.Unlock()
		}(uint64(g) + 3)
	}
	wg.Wait()
	for k := int64(0); k < keys; k++ {
		_, present := m.Lookup(k)
		balance := inserts[k] - removes[k]
		want := int64(0)
		if present {
			want = 1
		}
		if balance != want {
			t.Errorf("key %d: balance %d, present %v", k, balance, present)
		}
	}
	m.Quiesce()
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestDeferredReclamationDrains(t *testing.T) {
	// Slow-path queries running concurrently with removals defer
	// unstitching; once all queries finish and buffers flush, no
	// logically deleted node may remain stitched.
	m := newTestMap(t, Config{SlowOnly: true})
	const universe = 256
	seedH := m.NewHandle()
	for k := int64(0); k < universe; k++ {
		seedH.Insert(k, k)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := m.NewHandle()
			rng := rand.New(rand.NewPCG(seed, seed^0x77))
			var buf []Pair[int64, int64]
			for i := 0; i < 800; i++ {
				k := int64(rng.Uint64() % universe)
				switch rng.Uint64() % 3 {
				case 0:
					h.Remove(k)
				case 1:
					h.Insert(k, k)
				case 2:
					buf = h.Range(k, k+64, buf[:0])
				}
			}
		}(uint64(g) + 19)
	}
	wg.Wait()
	m.Quiesce()
	if err := m.CheckInvariants(CheckOptions{}); err != nil {
		t.Fatal(err)
	}
	if live, stitched := m.SizeSlow(), m.StitchedSlow(); live != stitched {
		t.Errorf("deferred nodes leaked: %d live, %d stitched", live, stitched)
	}
}

func TestRangeStatsAccounting(t *testing.T) {
	m := newTestMap(t, Config{})
	h := m.NewHandle()
	for k := int64(0); k < 64; k++ {
		h.Insert(k, k)
	}
	before := m.RangeStats()
	for i := 0; i < 10; i++ {
		h.Range(0, 63, nil)
	}
	s := m.RangeStats().Sub(before)
	if s.FastCommits+s.SlowCommits != 10 {
		t.Errorf("commits = %d fast + %d slow, want 10 total", s.FastCommits, s.SlowCommits)
	}
	if s.FastAttempts < s.FastCommits {
		t.Errorf("attempts %d < commits %d", s.FastAttempts, s.FastCommits)
	}
}
