package core

import (
	"testing"
)

// collectSnapshot runs SnapshotChunks and returns every emitted pair.
func collectSnapshot(t *testing.T, m *Map[int64, int64], chunkSize int) map[int64]int64 {
	t.Helper()
	got := make(map[int64]int64)
	err := m.SnapshotChunks(chunkSize, func(_ uint64, pairs []Pair[int64, int64]) error {
		for _, p := range pairs {
			if _, dup := got[p.Key]; dup {
				t.Fatalf("snapshot emitted key %d twice", p.Key)
			}
			got[p.Key] = p.Val
		}
		return nil
	})
	if err != nil {
		t.Fatalf("SnapshotChunks: %v", err)
	}
	return got
}

func TestSnapshotChunksBasic(t *testing.T) {
	m := newTestMap(t, Config{})
	want := make(map[int64]int64)
	for k := int64(0); k < 100; k++ {
		m.Insert(k, k*10)
		want[k] = k * 10
	}
	for _, chunkSize := range []int{1, 3, 7, 512} {
		got := collectSnapshot(t, m, chunkSize)
		if len(got) != len(want) {
			t.Fatalf("chunkSize %d: snapshot has %d keys, want %d", chunkSize, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("chunkSize %d: key %d = %d, want %d", chunkSize, k, got[k], v)
			}
		}
	}
}

// TestSnapshotChunksResumeOnDeletedRun is the regression test for a
// silent key drop: when a chunk's scan bound lands on a logically
// deleted node for key k whose live reinserted node (positioned after
// the deleted same-key nodes) was not yet scanned, resuming at
// ceilNodeTx(k) returns that live node via the index — and an
// unconditional advance-past-equal-cursor step would skip it, so the
// pair was never emitted. The resume step must only advance past an
// equal-key ceil node when the previous chunk actually emitted it.
func TestSnapshotChunksResumeOnDeletedRun(t *testing.T) {
	m := newTestMap(t, Config{})
	h := m.NewHandle()
	defer h.Close()

	h.Insert(1, 10)
	h.Insert(2, 0)
	// Pile up snapshotScanBound logically deleted nodes for key 2 in
	// front of its live node: each remove+insert round marks the live
	// node deleted in place and stitches the replacement after it. The
	// handle's removal buffer (default size 32) keeps them stitched.
	for i := 0; i < snapshotScanBound; i++ {
		h.Remove(2)
		h.Insert(2, int64(20+i))
	}
	wantVal := int64(20 + snapshotScanBound - 1)

	// chunkSize 1: chunk 1 emits key 1 and fills up; chunk 2 scans
	// exactly the snapshotScanBound deleted key-2 nodes and exhausts its
	// scan bound with an empty buffer, ending on a deleted node for key
	// 2; chunk 3 must emit the live key-2 node.
	got := collectSnapshot(t, m, 1)
	if len(got) != 2 {
		t.Fatalf("snapshot has %d keys, want 2 (got %v)", len(got), got)
	}
	if got[1] != 10 {
		t.Errorf("key 1 = %d, want 10", got[1])
	}
	if got[2] != wantVal {
		t.Errorf("key 2 = %d, want %d (live reinserted node dropped)", got[2], wantVal)
	}
}

// TestSnapshotChunksDeletedRunNoReinsert covers the sibling resume case:
// the chunk ends on a deleted node for a key with no live successor, so
// the next chunk's ceil lands strictly past the cursor and must not be
// skipped.
func TestSnapshotChunksDeletedRunNoReinsert(t *testing.T) {
	m := newTestMap(t, Config{})
	h := m.NewHandle()
	defer h.Close()

	h.Insert(1, 10)
	h.Insert(3, 30)
	h.Insert(2, 0)
	for i := 0; i < snapshotScanBound-1; i++ {
		h.Remove(2)
		h.Insert(2, int64(20+i))
	}
	h.Remove(2) // key 2 ends as a run of deleted nodes, no live one

	got := collectSnapshot(t, m, 1)
	if len(got) != 2 || got[1] != 10 || got[3] != 30 {
		t.Fatalf("snapshot = %v, want {1:10 3:30}", got)
	}
}
