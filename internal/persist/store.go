package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stm"
)

// Store is the durability engine of one map (or one shard group sharing
// a commit-stamp domain): it captures the logical effect of committed
// transactions into the WAL, writes background snapshots, and exposes
// the recovered state it was opened from.
//
// Store implements the core package's OpLogger (LogPut/LogDel) and
// Persister (Snapshot/Sync/Close/SimulateCrash/Err) hook interfaces
// structurally; core stays free of any persist dependency in its data
// path.
type Store[K comparable, V any] struct {
	opts Options
	kc   Codec[K]
	vc   Codec[V]
	w    *wal

	recovered RecoverInfo
	pairs     []KV[K, V] // handed out once by TakeRecovered

	bufPool sync.Pool

	// snapshotter state.
	source   SnapshotSource[K, V]
	snapMu   sync.Mutex // serializes snapshot writes
	kickSnap chan struct{}
	stopSnap chan struct{}
	snapDone chan struct{}
	started  bool

	mu           sync.Mutex
	lastSnapErr  error
	snapshots    uint64
	snapsEntries uint64

	// instrSnap, when set via Instrument, observes each snapshot
	// attempt's wall-clock duration in nanoseconds.
	instrSnap *obs.Histogram
}

// Instrument installs latency histograms on the engine's slow paths:
// fsync duration and records-per-flush (observed by the WAL flusher,
// never on the append path) and snapshot duration. Any histogram may
// be nil to leave that site uninstrumented. Call before serving
// traffic; the fields are read under the engine's internal locks.
func (s *Store[K, V]) Instrument(fsyncLatency, batchRecords, snapDuration *obs.Histogram) {
	s.w.mu.Lock()
	s.w.instrFsync = fsyncLatency
	s.w.instrBatch = batchRecords
	s.w.mu.Unlock()
	s.snapMu.Lock()
	s.instrSnap = snapDuration
	s.snapMu.Unlock()
}

// Open recovers a durability directory and returns a store ready to log
// new operations. The recovered pairs (TakeRecovered) must be loaded
// into the map before the store is attached as its operation logger,
// and the map's clock must be floored above Recovered().MaxStamp.
func Open[K comparable, V any](opts Options, kc Codec[K], vc Codec[V]) (*Store[K, V], error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: Options.Dir is required")
	}
	if kc.Append == nil || kc.Read == nil || vc.Append == nil || vc.Read == nil {
		return nil, fmt.Errorf("persist: key and value codecs are required")
	}
	opts = opts.withDefaults()
	pairs, info, st, err := recoverDir[K, V](opts.Dir, kc, vc)
	if err != nil {
		return nil, err
	}
	s := &Store[K, V]{
		opts:      opts,
		kc:        kc,
		vc:        vc,
		recovered: info,
		pairs:     pairs,
		kickSnap:  make(chan struct{}, 1),
		stopSnap:  make(chan struct{}),
		snapDone:  make(chan struct{}),
	}
	s.bufPool.New = func() any { return &txBuf{} }

	// Continue appending into the newest existing segment (tail already
	// repaired) unless it is full; otherwise the first flush opens a
	// fresh one. A segment that lost even its header to a crash (created
	// but never written) holds nothing and must not be adopted — appends
	// at offset zero without the magic would make the whole directory
	// unrecoverable — so it is deleted instead.
	var sealed []segMeta
	var adopt *segMeta
	if len(st.segs) > 0 {
		lastSeg := st.segs[len(st.segs)-1]
		switch {
		case lastSeg.n < int64(len(walMagic)):
			os.Remove(lastSeg.path)
			sealed = append(sealed, st.segs[:len(st.segs)-1]...)
		case lastSeg.n < opts.SegmentBytes:
			adopt = &lastSeg
			sealed = append(sealed, st.segs[:len(st.segs)-1]...)
		default:
			sealed = append(sealed, st.segs...)
		}
	}
	s.w = newWAL(opts, st.maxSeq, sealed)
	s.w.snapKick = func() {
		select {
		case s.kickSnap <- struct{}{}:
		default:
		}
	}
	if adopt != nil {
		if err := s.w.adoptSegment(*adopt); err != nil {
			s.w.close()
			return nil, err
		}
	}
	return s, nil
}

// Recovered reports what Open reconstructed.
func (s *Store[K, V]) Recovered() RecoverInfo { return s.recovered }

// TakeRecovered returns the recovered pairs (unordered) exactly once,
// releasing the store's reference to them.
func (s *Store[K, V]) TakeRecovered() []KV[K, V] {
	p := s.pairs
	s.pairs = nil
	return p
}

// Dir returns the durability directory.
func (s *Store[K, V]) Dir() string { return s.opts.Dir }

// Policy returns the effective fsync policy.
func (s *Store[K, V]) Policy() FsyncPolicy { return s.opts.Fsync }

// txBuf accumulates one transaction attempt's logical ops, pre-encoded.
// It lives in the transaction's per-attempt local slot, so an aborted
// attempt's ops are dropped with the slot and a retry starts clean.
// Multiple stores observing one transaction (distinct durable maps
// bound into one runtime) chain through next.
type txBuf struct {
	owner any
	next  *txBuf
	ops   []byte
	count int
	lsn   int64
	err   error
}

// bufFor finds or installs this store's op buffer on the transaction,
// registering the publish/commit hooks on first use in the attempt.
func (s *Store[K, V]) bufFor(tx *stm.Tx) *txBuf {
	head, _ := tx.Local().(*txBuf)
	for b := head; b != nil; b = b.next {
		if b.owner == s {
			return b
		}
	}
	b := s.bufPool.Get().(*txBuf)
	b.owner = s
	b.next = head
	b.count = 0
	b.ops = b.ops[:0]
	b.lsn = 0
	b.err = nil
	tx.SetLocal(b)
	tx.OnPublish(func(stamp uint64) {
		// Orecs still held: append order equals commit order for every
		// conflicting transaction, making the WAL's file order a valid
		// tiebreak for equal stamps.
		b.lsn, b.err = s.w.appendRecord(stamp, b.count, b.ops)
	})
	tx.OnCommit(func() {
		if s.opts.Fsync == FsyncAlways && b.err == nil {
			// The wait's error is not returned to the operation: the
			// transaction has already committed in memory and cannot be
			// un-acknowledged. Every failure path is sticky engine state
			// that Err/Sync/Close report — I/O errors via w.err, and an
			// append rejected by a racing Close via the unlogged counter.
			s.w.waitDurable(b.lsn)
		}
		b.owner = nil
		b.next = nil
		s.bufPool.Put(b)
	})
	return b
}

// LogPut records that the transaction set k to v (implements the core
// OpLogger hook).
func (s *Store[K, V]) LogPut(tx *stm.Tx, k K, v V) {
	b := s.bufFor(tx)
	b.ops = append(b.ops, opPut)
	b.ops = s.kc.Append(b.ops, k)
	b.ops = s.vc.Append(b.ops, v)
	b.count++
}

// LogDel records that the transaction removed k.
func (s *Store[K, V]) LogDel(tx *stm.Tx, k K) {
	b := s.bufFor(tx)
	b.ops = append(b.ops, opDel)
	b.ops = s.kc.Append(b.ops, k)
	b.count++
}

// Start binds the snapshot source and launches the background
// snapshotter (size- and optionally time-triggered). It must be called
// after the recovered pairs have been loaded into the map.
func (s *Store[K, V]) Start(source SnapshotSource[K, V]) {
	s.source = source
	if s.started {
		return
	}
	s.started = true
	go s.snapshotter()
}

func (s *Store[K, V]) snapshotter() {
	defer close(s.snapDone)
	interval := s.opts.SnapshotEvery
	if interval <= 0 {
		interval = time.Hour // size triggers only; the ticker is a backstop
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopSnap:
			return
		case <-s.kickSnap:
		case <-ticker.C:
			if s.opts.SnapshotEvery <= 0 {
				continue
			}
		}
		if s.opts.SnapshotBytes >= 0 || s.opts.SnapshotEvery > 0 {
			if err := s.Snapshot(); err != nil && !errors.Is(err, ErrClosed) {
				s.mu.Lock()
				s.lastSnapErr = err
				s.mu.Unlock()
			}
		}
	}
}

// Snapshot writes a full snapshot now: the map is iterated in chunked
// consistent reads while writers proceed, the file is fsynced and
// atomically renamed, and WAL segments fully covered by it are
// truncated. Serialized with other snapshots; safe concurrent with
// appends.
func (s *Store[K, V]) Snapshot() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.source == nil {
		return fmt.Errorf("persist: no snapshot source bound (Start not called)")
	}
	if h := s.instrSnap; h != nil {
		t0 := time.Now()
		defer h.ObserveSince(t0)
	}
	s.w.mu.Lock()
	dead := s.w.closing || s.w.closed || s.w.crashed
	s.w.mu.Unlock()
	if dead {
		return ErrClosed
	}
	seq := s.w.nextFileSeq()
	tmp := filepath.Join(s.opts.Dir, fmt.Sprintf("snap-%016x.tmp", seq))
	sw, err := newSnapWriter(tmp, s.kc, s.vc)
	if err != nil {
		return err
	}
	if err := s.source(s.opts.SnapshotChunk, sw.writeChunk); err != nil {
		sw.abort()
		os.Remove(tmp)
		return err
	}
	minStamp, _, err := sw.finish()
	if err != nil {
		os.Remove(tmp)
		return err
	}
	// The chunks read committed in-memory state whose WAL records may
	// still sit in the append buffer (FsyncNone/Interval). A record that
	// straddles the snapshot — logged between two chunks, so one key's
	// chunk predates it and another's reflects it — must be durable
	// before the snapshot becomes the recovery source, or a crash would
	// recover the straddled update partially (breaking batch atomicity)
	// instead of losing it wholesale. Sync the WAL up through everything
	// the chunks could have observed before the rename publishes them.
	if err := s.w.sync(); err != nil {
		os.Remove(tmp)
		return err
	}
	final := filepath.Join(s.opts.Dir, snapName(seq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.opts.Dir); err != nil {
		return err
	}
	// The new snapshot supersedes every older one and every WAL segment
	// whose records all predate its earliest chunk.
	st, err := scanDir(s.opts.Dir)
	if err == nil {
		for _, old := range st.snaps {
			if old != seq {
				os.Remove(filepath.Join(s.opts.Dir, snapName(old)))
			}
		}
	}
	s.w.truncateBelow(minStamp)
	s.w.resetSnapshotDebt()
	s.mu.Lock()
	s.snapshots++
	s.snapsEntries += sw.total
	s.lastSnapErr = nil
	s.mu.Unlock()
	return nil
}

// Sync forces every logged operation to durable storage now, regardless
// of the fsync policy. A Sync that loses a race with Close or
// SimulateCrash returns ErrSyncRaced (which matches ErrClosed) and is
// counted in StoreStats.LateSyncs, never acknowledged as durable.
func (s *Store[K, V]) Sync() error { return s.w.sync() }

// TapWAL installs fn (nil removes it) as the WAL tap: every record the
// engine accepts is observed as (stamp, count, ops), serialized in
// append order — which for conflicting transactions is commit order.
// This is the replication feed. fn runs at the STM publish point with
// the committing transaction's orecs held, so it must not block and
// must copy ops before returning. Install the tap before serving
// traffic; records appended earlier are only reachable through
// snapshot chunks.
func (s *Store[K, V]) TapWAL(fn func(stamp uint64, count int, ops []byte)) {
	s.w.mu.Lock()
	s.w.tap = fn
	s.w.mu.Unlock()
}

// Err returns the sticky background error, if any. Permanent, in
// precedence order: a WAL I/O failure, then unlogged commits (ops that
// committed in memory while the log was closing or closed — that
// divergence from disk never clears). When the log is healthy: the most
// recent background snapshot failure, cleared by the next snapshot that
// succeeds. This is the one probe that observes every way the engine
// can silently degrade.
func (s *Store[K, V]) Err() error {
	s.w.mu.Lock()
	werr := s.w.err
	if werr == nil {
		werr = s.w.unloggedErrLocked()
	}
	s.w.mu.Unlock()
	if werr != nil {
		return werr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSnapErr
}

// Close stops the snapshotter, flushes and fsyncs the WAL (all
// policies), and closes the files. Idempotent; concurrent callers all
// return after teardown completes.
func (s *Store[K, V]) Close() error {
	s.stopSnapshotter()
	return s.w.close()
}

func (s *Store[K, V]) stopSnapshotter() {
	if !s.started {
		return
	}
	s.snapMu.Lock()
	select {
	case <-s.stopSnap:
	default:
		close(s.stopSnap)
	}
	s.snapMu.Unlock()
	<-s.snapDone
}

// SimulateCrash abandons the store as a process crash would: buffered,
// un-flushed records are lost, nothing is fsynced, files are left
// as-is. The owning map keeps working in memory but logs nothing
// further. See also SimulateTornCrash.
func (s *Store[K, V]) SimulateCrash() error {
	s.stopSnapshotter()
	return s.w.simulateCrash(0)
}

// SimulateTornCrash is SimulateCrash plus a power-loss emulation: up to
// dropTail bytes are cut off the active segment, possibly mid-frame,
// exercising recovery's torn-tail handling.
func (s *Store[K, V]) SimulateTornCrash(dropTail int64) error {
	s.stopSnapshotter()
	return s.w.simulateCrash(dropTail)
}

// StoreStats is an observability snapshot of the durability engine.
type StoreStats struct {
	// Records and AppendedBytes cover WAL appends since open;
	// FlushedBytes and SyncedBytes track how much of the logical log
	// has reached the OS and stable storage respectively.
	Records        uint64
	AppendedBytes  int64
	FlushedBytes   int64
	SyncedBytes    int64
	BytesSinceSnap int64
	// Flushes and Syncs count file write-outs and fsyncs.
	Flushes uint64
	Syncs   uint64
	// Snapshots counts completed snapshots; SnapshotEntries their total
	// pairs; SegmentsDeleted the WAL segments truncated behind them.
	Snapshots       uint64
	SnapshotEntries uint64
	SegmentsDeleted uint64
	// LateSyncs counts Sync calls that lost a race with Close or
	// SimulateCrash and were answered with ErrSyncRaced.
	LateSyncs uint64
}

// Stats returns the engine counters.
func (s *Store[K, V]) Stats() StoreStats {
	s.w.mu.Lock()
	ws := s.w.stats
	flushed, synced := s.w.flushedLSN, s.w.syncedLSN
	s.w.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Records:         ws.records,
		AppendedBytes:   ws.bytes,
		FlushedBytes:    flushed,
		SyncedBytes:     synced,
		BytesSinceSnap:  ws.sinceSnp,
		Flushes:         ws.flushes,
		Syncs:           ws.syncs,
		Snapshots:       s.snapshots,
		SnapshotEntries: s.snapsEntries,
		SegmentsDeleted: ws.segsGone,
		LateSyncs:       ws.lateSyncs,
	}
}
