package persist

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/stm"
)

// TestSyncAfterCloseReturnsSentinel pins the Sync/Close race contract:
// a Sync that runs after (or concurrently with) Close must answer with
// ErrSyncRaced — matching ErrClosed — and be counted, never return nil
// just because Close's own flush already covered every byte.
func TestSyncAfterCloseReturnsSentinel(t *testing.T) {
	dir := t.TempDir()
	st := openInt64Store(t, Options{Dir: dir, Fsync: FsyncNone})
	st.Start(func(chunkSize int, emit func(stamp uint64, kvs []KV[int64, int64]) error) error {
		return nil
	})
	rt := stm.New()
	var ws writeScratch
	logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, 1, 10) })
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	err := st.Sync()
	if !errors.Is(err, ErrSyncRaced) {
		t.Fatalf("Sync after Close = %v, want ErrSyncRaced", err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("ErrSyncRaced does not match ErrClosed: %v", err)
	}
	if got := st.Stats().LateSyncs; got < 1 {
		t.Fatalf("LateSyncs = %d, want >= 1", got)
	}
	// Snapshot racing Close goes through the same gate.
	if err := st.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close = %v, want ErrClosed match", err)
	}
}

// TestSyncAfterSimulateCrash pins the crash flavor of the same race.
func TestSyncAfterSimulateCrash(t *testing.T) {
	dir := t.TempDir()
	st := openInt64Store(t, Options{Dir: dir, Fsync: FsyncNone})
	rt := stm.New()
	var ws writeScratch
	logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, 1, 10) })
	if err := st.SimulateCrash(); err != nil {
		t.Fatalf("SimulateCrash: %v", err)
	}
	if err := st.Sync(); !errors.Is(err, ErrSyncRaced) {
		t.Fatalf("Sync after SimulateCrash = %v, want ErrSyncRaced", err)
	}
	if got := st.Stats().LateSyncs; got < 1 {
		t.Fatalf("LateSyncs = %d, want >= 1", got)
	}
}

// TestSyncCloseRaceConcurrent hammers Sync against a concurrent Close
// under the race detector: every Sync must return nil (it won the race
// and its data is durable), a sticky I/O error, or something matching
// ErrClosed — never a misleading low-level error, never a false nil
// after the post-flush state check sees a closed engine.
func TestSyncCloseRaceConcurrent(t *testing.T) {
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		st := openInt64Store(t, Options{Dir: dir, Fsync: FsyncNone})
		rt := stm.New()
		var ws writeScratch
		logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, 1, int64(round)) })

		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 8; j++ {
					if err := st.Sync(); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("Sync raced Close returned %v; want nil or ErrClosed match", err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := st.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		close(start)
		wg.Wait()
	}
}

// TestTapWALObservesAppends pins the replication feed: the tap sees
// every accepted record with its stamp and op payload, in append order,
// and a re-decode of the tapped bytes reproduces the logical ops.
func TestTapWALObservesAppends(t *testing.T) {
	dir := t.TempDir()
	st := openInt64Store(t, Options{Dir: dir, Fsync: FsyncNone})
	defer st.Close()
	type rec struct {
		stamp uint64
		count int
		ops   []byte
	}
	var mu sync.Mutex
	var seen []rec
	st.TapWAL(func(stamp uint64, count int, ops []byte) {
		mu.Lock()
		seen = append(seen, rec{stamp: stamp, count: count, ops: append([]byte(nil), ops...)})
		mu.Unlock()
	})
	rt := stm.New()
	var ws writeScratch
	logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, 7, 70) })
	logTx(t, rt, &ws, func(tx *stm.Tx) {
		st.LogDel(tx, 7)
		st.LogPut(tx, 8, 80)
	})

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("tap observed %d records, want 2", len(seen))
	}
	if seen[0].count != 1 || seen[1].count != 2 {
		t.Fatalf("tap counts = %d,%d; want 1,2", seen[0].count, seen[1].count)
	}
	if seen[0].stamp >= seen[1].stamp {
		t.Fatalf("tap stamps not increasing: %d then %d", seen[0].stamp, seen[1].stamp)
	}
	model := map[int64]int64{}
	for _, r := range seen {
		err := DecodeOps(r.ops, uint64(r.count), Int64Codec(), Int64Codec(),
			func(k, v int64) error { model[k] = v; return nil },
			func(k int64) error { delete(model, k); return nil })
		if err != nil {
			t.Fatalf("DecodeOps on tapped record: %v", err)
		}
	}
	if len(model) != 1 || model[8] != 80 {
		t.Fatalf("replayed tap state = %v, want {8:80}", model)
	}
}

// TestDecodeOpsCorruption pins the decoder's error contract.
func TestDecodeOpsCorruption(t *testing.T) {
	ic := Int64Codec()
	ops := []byte{opPut}
	ops = ic.Append(ops, 1)
	ops = ic.Append(ops, 2)
	nop := func(k, v int64) error { return nil }
	ndel := func(k int64) error { return nil }
	if err := DecodeOps(ops, 1, ic, ic, nop, ndel); err != nil {
		t.Fatalf("valid ops: %v", err)
	}
	if err := DecodeOps(ops[:3], 1, ic, ic, nop, ndel); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated key = %v, want ErrCorrupt", err)
	}
	if err := DecodeOps(ops, 2, ic, ic, nop, ndel); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short op list = %v, want ErrCorrupt", err)
	}
	if err := DecodeOps(append(ops, 0xee), 1, ic, ic, nop, ndel); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes = %v, want ErrCorrupt", err)
	}
	bad := append([]byte{99}, ops[1:]...)
	if err := DecodeOps(bad, 1, ic, ic, nop, ndel); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown kind = %v, want ErrCorrupt", err)
	}
	sentinel := errors.New("stop")
	if err := DecodeOps(ops, 1, ic, ic, func(k, v int64) error { return sentinel }, ndel); !errors.Is(err, sentinel) {
		t.Fatalf("callback error = %v, want passthrough", err)
	}
}
