package persist

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// RecoverInfo summarizes what Open reconstructed from disk.
type RecoverInfo struct {
	// Entries is how many pairs the recovered state holds.
	Entries int
	// SnapshotEntries is how many of those came from the snapshot.
	SnapshotEntries int
	// Records is how many WAL records were parsed and replayed.
	Records int
	// Segments is how many WAL segment files were read.
	Segments int
	// MaxStamp is the largest commit stamp observed anywhere (snapshot
	// chunks and WAL records); the reopened map's clock is floored above
	// it so new commits keep the log totally ordered across restarts.
	MaxStamp uint64
	// TornTail reports that the newest segment ended in an incomplete
	// frame (the expected artifact of a crash mid-append); the tail was
	// discarded and the file repaired.
	TornTail bool
}

// walRecord is one parsed WAL record awaiting replay.
type walRecord struct {
	stamp uint64
	count uint64
	ops   []byte
}

const (
	opPut = 1
	opDel = 2
)

// dirState is the scan of a durability directory.
type dirState struct {
	segs     []segMeta // ascending seq; n/maxStamp filled during read
	snaps    []uint64  // snapshot seqs, ascending
	maxSeq   uint64
	tmpFiles []string
}

func scanDir(dir string) (dirState, error) {
	var st dirState
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return st, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return st, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
			if err != nil {
				continue
			}
			st.segs = append(st.segs, segMeta{path: filepath.Join(dir, name), seq: seq})
			if seq > st.maxSeq {
				st.maxSeq = seq
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
			if err != nil {
				continue
			}
			st.snaps = append(st.snaps, seq)
			if seq > st.maxSeq {
				st.maxSeq = seq
			}
		case strings.HasSuffix(name, ".tmp"):
			st.tmpFiles = append(st.tmpFiles, name)
		}
	}
	sort.Slice(st.segs, func(i, j int) bool { return st.segs[i].seq < st.segs[j].seq })
	sort.Slice(st.snaps, func(i, j int) bool { return st.snaps[i] < st.snaps[j] })
	return st, nil
}

// readSegment parses one WAL segment. last selects the torn-tail
// tolerance: in the newest segment an incomplete frame at EOF is a
// crash artifact — parsing stops and the good prefix length is
// returned for repair; anywhere else it is corruption. A checksum
// mismatch is corruption everywhere — a deliberate trade-off. Past the
// last fsync horizon, out-of-order page persistence after power loss
// could in principle leave a mismatching frame followed by valid bytes
// (not the clean prefix tear or zero-fill handled below), but recovery
// cannot tell that apart from a flipped bit in acknowledged data: the
// sync horizon is not persisted. Truncating on mismatch would silently
// discard records a user may have been promised, so recovery refuses
// with a CorruptionError and leaves the choice to the operator.
func readSegment(meta *segMeta, last bool, recs []walRecord) ([]walRecord, int64, bool, error) {
	data, err := os.ReadFile(meta.path)
	if err != nil {
		return recs, 0, false, err
	}
	if len(data) == 0 && last {
		// Crash between file creation and the header write.
		return recs, 0, true, nil
	}
	if len(data) < len(walMagic) {
		if last {
			return recs, 0, true, nil
		}
		return recs, 0, false, &CorruptionError{Path: meta.path, Offset: 0, Reason: "short segment header"}
	}
	if string(data[:len(walMagic)]) != string(walMagic) {
		return recs, 0, false, &CorruptionError{Path: meta.path, Offset: 0, Reason: "bad segment magic"}
	}
	r := &frameReader{path: meta.path, data: data, off: int64(len(walMagic))}
	torn := false
	goodEnd := r.off
	for {
		payload, off, done, err := r.next()
		if done {
			break
		}
		if err == errTornFrame {
			if !last {
				return recs, 0, false, &CorruptionError{Path: meta.path, Offset: off, Reason: "torn frame in sealed segment"}
			}
			torn = true
			break
		}
		if err != nil {
			return recs, 0, false, err
		}
		if len(payload) < 9 {
			// A real record payload is at least stamp+count (9 bytes); a
			// shorter "frame" in the newest segment is a zero-extended
			// tail (delayed allocation after power loss zero-fills the
			// unsynced suffix, and an all-zero header parses as an empty
			// frame whose CRC of nothing matches). Torn tail there;
			// corruption anywhere else.
			if last {
				torn = true
				break
			}
			return recs, 0, false, &CorruptionError{Path: meta.path, Offset: off, Reason: "record too short"}
		}
		stamp := binary.LittleEndian.Uint64(payload)
		count, n, uerr := readUvarint(payload[8:])
		if uerr != nil {
			return recs, 0, false, &CorruptionError{Path: meta.path, Offset: off, Reason: uerr.Error()}
		}
		recs = append(recs, walRecord{stamp: stamp, count: count, ops: payload[8+n:]})
		if stamp > meta.maxStamp {
			meta.maxStamp = stamp
		}
		goodEnd = r.off
	}
	meta.n = goodEnd
	return recs, goodEnd, torn, nil
}

// replay applies sorted WAL records onto the snapshot state. A record
// touches a key only if its stamp is at or above the key's watermark
// (the stamp of the snapshot chunk that observed it), so operations the
// snapshot already reflects are re-applied at most idempotently and
// never regress newer state. Decode failures here are CRC-valid bytes
// that do not parse (codec mismatch, malformed op list) — corruption,
// so every error wraps ErrCorrupt like the framing layer's.
func replay[K comparable, V any](recs []walRecord, kc Codec[K], vc Codec[V], state map[K]*snapEntry[V]) error {
	// Stable by stamp: appends happen while the committing transaction
	// still holds its write set, so file order is commit order for any
	// two records that could disagree about a key — stamp ties between
	// conflicting transactions resolve correctly.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].stamp < recs[j].stamp })
	for ri := range recs {
		rec := &recs[ri]
		apply := func(k K, put bool, v V) {
			e := state[k]
			if e == nil {
				e = &snapEntry[V]{}
				state[k] = e
			} else if rec.stamp < e.stamp {
				return // already reflected in this key's snapshot chunk
			}
			e.stamp = rec.stamp
			e.val = v
			e.present = put
		}
		var zero V
		err := DecodeOps(rec.ops, rec.count, kc, vc,
			func(k K, v V) error { apply(k, true, v); return nil },
			func(k K) error { apply(k, false, zero); return nil })
		if err != nil {
			return fmt.Errorf("record %d: %w", ri, err)
		}
	}
	return nil
}

// truncateDurable truncates a file to size and fsyncs the result (file
// and parent directory), so the repair cannot be reverted by a later
// power loss.
func truncateDurable(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// recoverDir reconstructs state from a durability directory: newest
// valid snapshot plus the stamp-ordered WAL replayed over it. It also
// repairs a torn tail in place and reports the segment metadata the
// reopened engine continues from.
func recoverDir[K comparable, V any](dir string, kc Codec[K], vc Codec[V]) (
	pairs []KV[K, V], info RecoverInfo, st dirState, err error) {
	st, err = scanDir(dir)
	if err != nil {
		return nil, info, st, err
	}
	// Aborted snapshot writes (crash before rename) are garbage.
	removeFiles(dir, st.tmpFiles)

	state := make(map[K]*snapEntry[V])
	var snapMin uint64
	if len(st.snaps) > 0 {
		newest := st.snaps[len(st.snaps)-1]
		var snapMax uint64
		snapMin, snapMax, err = readSnapshot(filepath.Join(dir, snapName(newest)), kc, vc, state)
		if err != nil {
			return nil, info, st, err
		}
		info.SnapshotEntries = len(state)
		if snapMax > info.MaxStamp {
			info.MaxStamp = snapMax
		}
		// Older snapshots are fully superseded.
		for _, seq := range st.snaps[:len(st.snaps)-1] {
			os.Remove(filepath.Join(dir, snapName(seq)))
		}
		st.snaps = st.snaps[len(st.snaps)-1:]
	}

	var recs []walRecord
	for i := range st.segs {
		last := i == len(st.segs)-1
		var goodEnd int64
		var torn bool
		recs, goodEnd, torn, err = readSegment(&st.segs[i], last, recs)
		if err != nil {
			return nil, info, st, err
		}
		if torn {
			info.TornTail = true
			// Repair and fsync: the truncation must itself survive a
			// power loss, or resurrected pre-truncate bytes could later
			// sit under freshly appended frames and turn a recoverable
			// torn tail into a checksum mismatch.
			if terr := truncateDurable(st.segs[i].path, goodEnd); terr != nil {
				return nil, info, st, terr
			}
		}
	}
	info.Segments = len(st.segs)
	info.Records = len(recs)
	for i := range recs {
		if recs[i].stamp > info.MaxStamp {
			info.MaxStamp = recs[i].stamp
		}
	}
	if err = replay(recs, kc, vc, state); err != nil {
		return nil, info, st, err
	}
	for k, e := range state {
		if e.present {
			pairs = append(pairs, KV[K, V]{Key: k, Val: e.val})
		}
	}
	info.Entries = len(pairs)

	// Tidy: segments fully covered by the loaded snapshot are dead
	// weight on the next recovery. Prefix rule as in wal.truncateBelow.
	if snapMin > 0 {
		cut := 0
		for cut < len(st.segs)-1 && st.segs[cut].maxStamp < snapMin {
			cut++
		}
		for _, s := range st.segs[:cut] {
			os.Remove(s.path)
		}
		st.segs = st.segs[cut:]
	}
	return pairs, info, st, nil
}
