package persist

import "fmt"

// DecodeOps walks one WAL record's op list — count operations encoded
// as [kind][key] for deletes and [kind][key][value] for puts — calling
// put/del for each in encoded order. It is the one decoder for that
// format: recovery replay uses it against the snapshot state, and the
// replication applier (internal/repl) uses it to apply streamed records
// to a live replica. A callback's non-nil error aborts the walk and is
// returned as-is; decode failures are CRC-valid bytes that do not parse
// (codec mismatch, malformed op list) and wrap ErrCorrupt.
func DecodeOps[K comparable, V any](ops []byte, count uint64, kc Codec[K], vc Codec[V],
	put func(k K, v V) error, del func(k K) error) error {
	body := ops
	for i := uint64(0); i < count; i++ {
		if len(body) < 1 {
			return fmt.Errorf("%w: truncated op list", ErrCorrupt)
		}
		kind := body[0]
		body = body[1:]
		k, n, err := kc.Read(body)
		if err != nil {
			return fmt.Errorf("%w: key decode: %v", ErrCorrupt, err)
		}
		body = body[n:]
		switch kind {
		case opPut:
			v, n, err := vc.Read(body)
			if err != nil {
				return fmt.Errorf("%w: value decode: %v", ErrCorrupt, err)
			}
			body = body[n:]
			if err := put(k, v); err != nil {
				return err
			}
		case opDel:
			if err := del(k); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown op kind %d", ErrCorrupt, kind)
		}
	}
	if len(body) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body))
	}
	return nil
}
