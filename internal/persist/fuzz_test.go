package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stm"
)

// FuzzWALTail is the durability contract check: starting from a valid
// WAL built from a fuzz-chosen op script, an arbitrary tail mutation
// (truncation at any offset, or a byte flip anywhere) must leave
// recovery either succeeding with exactly a prefix of the logged
// records — never fewer than the records the mutation could not have
// touched — or failing with a checksum/corruption error. It must never
// silently load wrong data.
func FuzzWALTail(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x31, 0x44, 0x05}, uint32(20), byte(0x40), false)
	f.Add([]byte{0x01, 0x12, 0x23, 0x31, 0x44, 0x05}, uint32(30), byte(0), true)
	f.Add([]byte{0xff, 0x00, 0x80, 0x41}, uint32(5), byte(0x01), false)
	f.Add([]byte{}, uint32(0), byte(0xff), true)
	f.Fuzz(func(t *testing.T, script []byte, mutPos uint32, mutByte byte, truncate bool) {
		if len(script) > 512 {
			script = script[:512]
		}
		const universe = 16
		dir := t.TempDir()
		opts := Options{Dir: dir, Fsync: FsyncNone, SnapshotBytes: -1}
		st, err := Open[int64, int64](opts, Int64Codec(), Int64Codec())
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		rt := stm.New()
		var ws writeScratch

		// Apply the script: each byte is one single-op record. Track the
		// model state after every prefix, and each record's end offset in
		// the (single) segment file.
		type state [universe]struct {
			v  int64
			ok bool
		}
		var cur state
		states := []state{cur}
		frameEnds := []int64{int64(len(walMagic))}
		off := int64(len(walMagic))
		for i, b := range script {
			k := int64(b % universe)
			put := b&0x10 == 0
			v := int64(i)
			if err := rt.Atomic(func(tx *stm.Tx) error {
				ws.f.Store(tx, &ws.o, ws.f.Raw()+1)
				if put {
					st.LogPut(tx, k, v)
				} else {
					st.LogDel(tx, k)
				}
				return nil
			}); err != nil {
				t.Fatalf("log: %v", err)
			}
			if put {
				cur[k].v, cur[k].ok = v, true
			} else {
				cur[k].v, cur[k].ok = 0, false
			}
			states = append(states, cur)
			// Frame size: header(8) + stamp(8) + uvarint(1 for count=1) +
			// kind(1) + key(8) + value(8 if put).
			sz := int64(8 + 8 + 1 + 1 + 8)
			if put {
				sz += 8
			}
			off += sz
			frameEnds = append(frameEnds, off)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if len(segs) == 0 {
			// Segments are created lazily on the first flush; an empty
			// script leaves an empty directory, and recovery of that must
			// be an empty map.
			if len(script) != 0 {
				t.Fatalf("no segment despite %d records", len(script))
			}
			st2, err := Open[int64, int64](opts, Int64Codec(), Int64Codec())
			if err != nil {
				t.Fatalf("empty-dir recovery: %v", err)
			}
			defer st2.Close()
			if len(st2.TakeRecovered()) != 0 {
				t.Fatal("empty dir recovered entries")
			}
			return
		}
		if len(segs) != 1 {
			t.Fatalf("expected one segment, got %d", len(segs))
		}
		data, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(data)) != off {
			t.Fatalf("segment is %d bytes, computed %d", len(data), off)
		}

		// Mutate the file.
		mutated := false
		var mutOff int64
		if len(data) > 0 {
			mutOff = int64(mutPos) % int64(len(data)+1)
			if truncate {
				data = data[:mutOff]
				mutated = mutOff < off
			} else if mutOff < int64(len(data)) && mutByte != 0 {
				data[mutOff] ^= mutByte
				mutated = true
			}
		}
		if err := os.WriteFile(segs[0], data, 0o644); err != nil {
			t.Fatal(err)
		}

		// untouched counts records whose frames end at or before the
		// mutation offset — the mutation cannot explain losing them.
		untouched := len(script)
		if mutated {
			untouched = 0
			for untouched < len(script) && frameEnds[untouched+1] <= mutOff {
				untouched++
			}
		}

		st2, err := Open[int64, int64](opts, Int64Codec(), Int64Codec())
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("recovery failed with a non-corruption error: %v", err)
			}
			if truncate {
				t.Fatalf("pure truncation must be tolerated as a torn tail, got %v", err)
			}
			return
		}
		defer st2.Close()
		var got state
		for _, kv := range st2.TakeRecovered() {
			if kv.Key < 0 || kv.Key >= universe {
				t.Fatalf("recovered impossible key %d", kv.Key)
			}
			got[kv.Key].v, got[kv.Key].ok = kv.Val, true
		}
		n := st2.Recovered().Records
		if n > len(script) {
			t.Fatalf("recovered %d records from %d logged", n, len(script))
		}
		if n < untouched {
			t.Fatalf("recovery dropped untouched records: got %d, mutation at %d leaves %d intact", n, mutOff, untouched)
		}
		if got != states[n] {
			t.Fatalf("recovered state does not match the model after %d records:\n got %v\nwant %v", n, got, states[n])
		}
	})
}
