package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// Snapshot files hold the map's pairs as a sequence of chunk frames,
// each chunk tagged with the clock stamp of the read-only transaction
// that observed it — the chunk is a consistent view of its keys as of
// that stamp, even though the whole file spans many stamps while
// writers proceed. A trailer frame seals the file; a snapshot without a
// valid trailer is an aborted write and is never loaded. Files are
// written to a .tmp name, fsynced, and atomically renamed.

const (
	snapTagChunk   = 1
	snapTagTrailer = 2
)

// SnapshotSource iterates a map in chunked consistent reads: emit is
// called once per chunk with the chunk's clock stamp and pairs (the
// final chunk may be empty — it stamps the end of iteration, which is
// what allows truncating the WAL of an empty map).
type SnapshotSource[K comparable, V any] func(chunkSize int, emit func(stamp uint64, kvs []KV[K, V]) error) error

// snapWriter streams one snapshot file.
type snapWriter[K comparable, V any] struct {
	f   *os.File
	bw  *bufio.Writer
	kc  Codec[K]
	vc  Codec[V]
	buf []byte

	total    uint64
	minStamp uint64
	maxStamp uint64
	chunks   int
}

func newSnapWriter[K comparable, V any](path string, kc Codec[K], vc Codec[V]) (*snapWriter[K, V], error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	sw := &snapWriter[K, V]{f: f, bw: bufio.NewWriterSize(f, 1<<16), kc: kc, vc: vc, minStamp: ^uint64(0)}
	if _, err := sw.bw.Write(snapMagic); err != nil {
		f.Close()
		return nil, err
	}
	return sw, nil
}

func (sw *snapWriter[K, V]) writeChunk(stamp uint64, kvs []KV[K, V]) error {
	var header int
	sw.buf, header = beginFrame(sw.buf[:0])
	sw.buf = append(sw.buf, snapTagChunk)
	sw.buf = binary.LittleEndian.AppendUint64(sw.buf, stamp)
	sw.buf = binary.AppendUvarint(sw.buf, uint64(len(kvs)))
	for _, kv := range kvs {
		sw.buf = sw.kc.Append(sw.buf, kv.Key)
		sw.buf = sw.vc.Append(sw.buf, kv.Val)
	}
	sw.buf = finishFrame(sw.buf, header)
	sw.total += uint64(len(kvs))
	if stamp < sw.minStamp {
		sw.minStamp = stamp
	}
	if stamp > sw.maxStamp {
		sw.maxStamp = stamp
	}
	sw.chunks++
	_, err := sw.bw.Write(sw.buf)
	return err
}

// finish writes the trailer, fsyncs, and closes the file. It reports
// the stamp bounds for truncation decisions.
func (sw *snapWriter[K, V]) finish() (minStamp, maxStamp uint64, err error) {
	if sw.chunks == 0 {
		// Sources always emit at least one (possibly empty) chunk; guard
		// anyway so an empty file still has defined bounds.
		sw.minStamp, sw.maxStamp = 0, 0
	}
	var header int
	sw.buf, header = beginFrame(sw.buf[:0])
	sw.buf = append(sw.buf, snapTagTrailer)
	sw.buf = binary.LittleEndian.AppendUint64(sw.buf, sw.total)
	sw.buf = binary.LittleEndian.AppendUint64(sw.buf, sw.minStamp)
	sw.buf = binary.LittleEndian.AppendUint64(sw.buf, sw.maxStamp)
	sw.buf = finishFrame(sw.buf, header)
	if _, err := sw.bw.Write(sw.buf); err != nil {
		sw.f.Close()
		return 0, 0, err
	}
	if err := sw.bw.Flush(); err != nil {
		sw.f.Close()
		return 0, 0, err
	}
	if err := sw.f.Sync(); err != nil {
		sw.f.Close()
		return 0, 0, err
	}
	return sw.minStamp, sw.maxStamp, sw.f.Close()
}

func (sw *snapWriter[K, V]) abort() { sw.f.Close() }

// snapEntry is one recovered snapshot pair plus the stamp of the chunk
// it came from — the per-key watermark deciding which WAL records are
// already reflected.
type snapEntry[V any] struct {
	val     V
	stamp   uint64
	present bool
}

// readSnapshot loads a snapshot file into the recovery state map. Any
// framing, checksum, decode, or trailer violation is corruption: the
// file was fsynced before its atomic rename, so a damaged snapshot is
// never a crash artifact.
func readSnapshot[K comparable, V any](path string, kc Codec[K], vc Codec[V], state map[K]*snapEntry[V]) (minStamp, maxStamp uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != string(snapMagic) {
		return 0, 0, &CorruptionError{Path: path, Offset: 0, Reason: "bad snapshot magic"}
	}
	r := &frameReader{path: path, data: data, off: int64(len(snapMagic))}
	var total uint64
	sealed := false
	sawChunk := false
	for {
		payload, off, done, err := r.next()
		if done {
			break
		}
		if err != nil {
			if err == errTornFrame {
				err = &CorruptionError{Path: path, Offset: off, Reason: "truncated snapshot frame"}
			}
			return 0, 0, err
		}
		if sealed {
			return 0, 0, &CorruptionError{Path: path, Offset: off, Reason: "data after snapshot trailer"}
		}
		if len(payload) < 1 {
			return 0, 0, &CorruptionError{Path: path, Offset: off, Reason: "empty snapshot frame"}
		}
		switch payload[0] {
		case snapTagChunk:
			body := payload[1:]
			if len(body) < 8 {
				return 0, 0, &CorruptionError{Path: path, Offset: off, Reason: "short chunk header"}
			}
			stamp := binary.LittleEndian.Uint64(body)
			body = body[8:]
			count, n, uerr := readUvarint(body)
			if uerr != nil {
				return 0, 0, &CorruptionError{Path: path, Offset: off, Reason: uerr.Error()}
			}
			body = body[n:]
			for i := uint64(0); i < count; i++ {
				k, n, kerr := kc.Read(body)
				if kerr != nil {
					return 0, 0, &CorruptionError{Path: path, Offset: off, Reason: "key decode: " + kerr.Error()}
				}
				body = body[n:]
				v, n, verr := vc.Read(body)
				if verr != nil {
					return 0, 0, &CorruptionError{Path: path, Offset: off, Reason: "value decode: " + verr.Error()}
				}
				body = body[n:]
				state[k] = &snapEntry[V]{val: v, stamp: stamp, present: true}
			}
			if len(body) != 0 {
				return 0, 0, &CorruptionError{Path: path, Offset: off, Reason: "trailing bytes in chunk"}
			}
			total += count
			if !sawChunk || stamp < minStamp {
				minStamp = stamp
			}
			if stamp > maxStamp {
				maxStamp = stamp
			}
			sawChunk = true
		case snapTagTrailer:
			body := payload[1:]
			if len(body) != 24 {
				return 0, 0, &CorruptionError{Path: path, Offset: off, Reason: "bad trailer size"}
			}
			wantTotal := binary.LittleEndian.Uint64(body)
			if wantTotal != total {
				return 0, 0, &CorruptionError{Path: path, Offset: off,
					Reason: fmt.Sprintf("trailer records %d entries, file holds %d", wantTotal, total)}
			}
			sealed = true
		default:
			return 0, 0, &CorruptionError{Path: path, Offset: off, Reason: fmt.Sprintf("unknown frame tag %d", payload[0])}
		}
	}
	if !sealed {
		return 0, 0, &CorruptionError{Path: path, Offset: r.off, Reason: "missing snapshot trailer"}
	}
	return minStamp, maxStamp, nil
}

// removeFiles deletes the named directory entries, ignoring errors.
func removeFiles(dir string, names []string) {
	for _, n := range names {
		os.Remove(filepath.Join(dir, n))
	}
}
