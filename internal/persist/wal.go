package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// FsyncPolicy selects how aggressively the WAL is made durable.
type FsyncPolicy int

const (
	// FsyncInterval (the default) fsyncs the log from a background
	// goroutine at least every Options.FsyncEvery; a crash loses at most
	// that window of committed operations.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways group-commits: every writing operation blocks until an
	// fsync covering its record has completed. Concurrent committers
	// share one fsync, so throughput degrades far less than one fsync
	// per operation would suggest.
	FsyncAlways
	// FsyncNone never fsyncs while running; records are still written to
	// the OS promptly, so a process crash loses little, but a power loss
	// can lose everything since the last snapshot. A clean Close still
	// flushes and syncs.
	FsyncNone
)

// String names the policy for reports.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return "interval"
	}
}

// Options configures a durable map's on-disk behavior. The zero value
// (plus a Dir) is a production-reasonable configuration: interval
// fsyncs, 8 MiB segments, size-triggered background snapshots.
type Options struct {
	// Dir is the directory holding WAL segments and snapshots; it is
	// created if missing. A directory must be owned by at most one open
	// map at a time.
	Dir string
	// Fsync selects the durability/latency trade-off; see FsyncPolicy.
	Fsync FsyncPolicy
	// FsyncEvery is the background fsync (FsyncInterval) and write-out
	// (FsyncNone) cadence. Default 25ms.
	FsyncEvery time.Duration
	// SegmentBytes rotates the active WAL segment once it exceeds this
	// size. Default 8 MiB.
	SegmentBytes int64
	// SnapshotBytes triggers a background snapshot (and subsequent
	// truncation of fully covered segments) once this many WAL bytes
	// have accumulated since the last one. Default 32 MiB; negative
	// disables size-triggered snapshots.
	SnapshotBytes int64
	// SnapshotEvery additionally snapshots on a timer when positive.
	SnapshotEvery time.Duration
	// SnapshotChunk is how many pairs each snapshot chunk transaction
	// reads (each chunk is consistent at its own clock stamp). Default
	// 512.
	SnapshotChunk int
}

func (o Options) withDefaults() Options {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 25 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = 32 << 20
	}
	if o.SnapshotChunk <= 0 {
		o.SnapshotChunk = 512
	}
	return o
}

// ErrClosed is returned by operations on a store that has been closed
// (or has simulated a crash).
var ErrClosed = errors.New("persist: store is closed")

// ErrSyncRaced is returned by Store.Sync (and the WAL sync inside
// Store.Snapshot) when the sync lost a race with Close or SimulateCrash:
// the engine shut down between the call and its fsync, so the caller
// must not treat the call as an acknowledgment of anything appended
// since the shutdown began. It wraps ErrClosed, so existing
// errors.Is(err, ErrClosed) checks keep matching. Each occurrence is
// counted (StoreStats.LateSyncs) alongside the unlogged-commit
// bookkeeping.
var ErrSyncRaced = fmt.Errorf("persist: sync raced shutdown: %w", ErrClosed)

// flushHighWater is the buffered-bytes threshold beyond which an append
// kicks the flusher regardless of policy, bounding user-space buffering.
const flushHighWater = 1 << 20

// wal is the non-generic write-ahead-log engine: an in-memory append
// buffer feeding segment files through a single flusher goroutine.
// Appends happen at the STM publish point (orecs held), so they must be
// cheap: encode into the buffer under a mutex and return. All file I/O
// belongs to the flusher (and to Close/Sync, which run after the
// flusher has stopped or under the I/O mutex).
type wal struct {
	opts Options
	dir  string

	// mu guards the append buffer, LSN bookkeeping, segment metadata
	// and lifecycle flags. Hold it briefly; never do file I/O under it.
	mu          sync.Mutex
	durable     *sync.Cond // signals syncedLSN/err/lifecycle changes
	buf         []byte
	bufMaxStamp uint64
	appendLSN   int64 // bytes ever appended (logical)
	flushedLSN  int64 // bytes written to the OS
	syncedLSN   int64 // bytes covered by an fsync
	fileSeq     uint64
	sealed      []segMeta
	err         error // sticky background I/O error
	closing     bool  // rejects new appends while Close drains
	closed      bool
	crashed     bool
	// unlogged counts committed transactions whose append was rejected
	// because the log was closing or closed — in-memory state that
	// diverged from disk. Surfaced by close and the store's Err so a
	// commit racing Close is reported, never silently dropped (a
	// simulated crash intentionally stops logging and does not count).
	unlogged uint64

	// ioMu guards the segment files themselves.
	ioMu   sync.Mutex
	active *segment

	flushCh chan struct{}
	stopCh  chan struct{}
	done    chan struct{}

	// snapKick, when set (before any append), is poked once the WAL has
	// grown Options.SnapshotBytes past the last snapshot.
	snapKick func()

	// tap, when set, observes every record appendRecord accepts —
	// (stamp, count, ops) — under w.mu, i.e. serialized in append order
	// with commit order (the replication feed). The callback must copy
	// ops before returning and must not block: it runs at the STM
	// publish point while the committing transaction holds its orecs.
	tap func(stamp uint64, count int, ops []byte)

	// Optional instrumentation (see Store.Instrument): fsync latency
	// and records-per-flush histograms, read under w.mu and observed by
	// the flusher — never on the append path. bufRecords counts the
	// records currently buffered, feeding the batch-size histogram.
	instrFsync *obs.Histogram
	instrBatch *obs.Histogram
	bufRecords int

	stats walStats
}

type walStats struct {
	records   uint64
	bytes     int64
	sinceSnp  int64
	flushes   uint64
	syncs     uint64
	segsGone  uint64
	lateSyncs uint64
}

type segment struct {
	f        *os.File
	seq      uint64
	n        int64
	maxStamp uint64
}

type segMeta struct {
	path     string
	seq      uint64
	n        int64
	maxStamp uint64
}

func segName(seq uint64) string  { return fmt.Sprintf("wal-%016x.seg", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// newWAL builds the engine over an already-scanned directory state and
// starts the flusher.
func newWAL(opts Options, fileSeq uint64, sealed []segMeta) *wal {
	w := &wal{
		opts:    opts,
		dir:     opts.Dir,
		fileSeq: fileSeq,
		sealed:  sealed,
		flushCh: make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.durable = sync.NewCond(&w.mu)
	go w.flusher()
	return w
}

// nextFileSeq allocates a file sequence number (shared by segments and
// snapshots, so names are unique and ordered across both).
func (w *wal) nextFileSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fileSeq++
	return w.fileSeq
}

// appendRecord encodes one logical record — the ops of a single
// committed transaction — into the append buffer and returns the LSN a
// durability wait must cover. It is called from stm.Tx.OnPublish, while
// the committing transaction still holds its orecs, which is what makes
// append order agree with commit order for conflicting transactions.
func (w *wal) appendRecord(stamp uint64, count int, ops []byte) (lsn int64, err error) {
	w.mu.Lock()
	if w.err != nil {
		err = w.err
		w.mu.Unlock()
		return 0, err
	}
	if w.closing || w.closed {
		if !w.crashed {
			w.unlogged++
		}
		w.mu.Unlock()
		return 0, ErrClosed
	}
	var header int
	w.buf, header = beginFrame(w.buf)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, stamp)
	w.buf = binary.AppendUvarint(w.buf, uint64(count))
	w.buf = append(w.buf, ops...)
	w.buf = finishFrame(w.buf, header)
	frameLen := int64(len(w.buf) - header)
	w.appendLSN += frameLen
	lsn = w.appendLSN
	if stamp > w.bufMaxStamp {
		w.bufMaxStamp = stamp
	}
	w.stats.records++
	w.stats.bytes += frameLen
	w.stats.sinceSnp += frameLen
	w.bufRecords++
	if w.tap != nil {
		w.tap(stamp, count, ops)
	}
	kick := w.opts.Fsync == FsyncAlways || len(w.buf) >= flushHighWater
	snap := w.snapKick != nil && w.opts.SnapshotBytes >= 0 && w.stats.sinceSnp >= w.opts.SnapshotBytes
	w.mu.Unlock()
	if kick {
		w.kickFlush()
	}
	if snap {
		w.snapKick()
	}
	return lsn, nil
}

func (w *wal) kickFlush() {
	select {
	case w.flushCh <- struct{}{}:
	default:
	}
}

// waitDurable blocks until an fsync covers lsn (FsyncAlways's
// group-commit wait). It returns immediately for other policies' sticky
// errors, crash simulation, or closure; by the time closure is visible
// the final flush has already covered every accepted append.
func (w *wal) waitDurable(lsn int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncedLSN < lsn && w.err == nil && !w.crashed && !w.closed {
		w.durable.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.crashed && w.syncedLSN < lsn {
		return ErrClosed
	}
	return nil
}

// flusher is the single I/O goroutine: it drains the append buffer on
// kicks and on the policy's cadence.
func (w *wal) flusher() {
	defer close(w.done)
	ticker := time.NewTicker(w.opts.FsyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopCh:
			return
		case <-w.flushCh:
			w.flush(w.opts.Fsync == FsyncAlways)
		case <-ticker.C:
			w.flush(w.opts.Fsync == FsyncInterval)
		}
	}
}

// flush writes the buffered frames to the active segment and optionally
// fsyncs, then rotates the segment if it outgrew SegmentBytes. Frames
// never split across segments: the buffer is written whole, so segments
// may overshoot by at most one flush. ioMu is taken before the buffer
// is captured, so concurrent flush calls (the background flusher racing
// a user Sync or Close) cannot write their chunks to the file out of
// append order — file order must stay append order, both for the
// stamp-tie contract and for the torn-tail prefix guarantee.
func (w *wal) flush(sync bool) {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	w.mu.Lock()
	if w.crashed || w.err != nil {
		w.mu.Unlock()
		return
	}
	chunk := w.buf
	target := w.appendLSN
	maxStamp := w.bufMaxStamp
	batchRecords := w.bufRecords
	hFsync, hBatch := w.instrFsync, w.instrBatch
	w.buf = nil
	w.bufMaxStamp = 0
	w.bufRecords = 0
	alreadySynced := w.syncedLSN
	w.mu.Unlock()
	var ioErr error
	if len(chunk) > 0 {
		if w.active == nil {
			ioErr = w.openSegmentLocked()
		}
		if ioErr == nil {
			_, ioErr = w.active.f.Write(chunk)
		}
		if ioErr == nil {
			w.active.n += int64(len(chunk))
			if maxStamp > w.active.maxStamp {
				w.active.maxStamp = maxStamp
			}
			if hBatch != nil && batchRecords > 0 {
				hBatch.Observe(uint64(batchRecords))
			}
		}
	}
	if ioErr == nil && sync && w.active != nil && target > alreadySynced {
		var t0 time.Time
		if hFsync != nil {
			t0 = time.Now()
		}
		ioErr = w.active.f.Sync()
		if hFsync != nil {
			hFsync.ObserveSince(t0)
		}
	}
	w.mu.Lock()
	if ioErr != nil {
		w.setErrLocked(ioErr)
		w.mu.Unlock()
		return
	}
	if len(chunk) > 0 {
		w.flushedLSN = target
		w.stats.flushes++
		if len(w.buf) == 0 && !w.closing {
			w.buf = chunk[:0] // recycle the backing array
		}
	}
	if sync {
		w.syncedLSN = w.flushedLSN
		w.stats.syncs++
		w.durable.Broadcast()
	}
	rotate := w.active != nil && w.active.n >= w.opts.SegmentBytes
	w.mu.Unlock()
	if rotate {
		w.rotateLocked()
	}
}

// unloggedErrLocked reports transactions that committed in memory while
// the log was closing or closed and so were never appended; callers
// hold w.mu.
func (w *wal) unloggedErrLocked() error {
	if w.unlogged == 0 {
		return nil
	}
	return fmt.Errorf("persist: %d committed operations were not logged (commit raced or followed Close)", w.unlogged)
}

// setErrLocked records a sticky background error and wakes waiters;
// callers hold w.mu.
func (w *wal) setErrLocked(err error) {
	if w.err == nil {
		w.err = err
	}
	w.durable.Broadcast()
}

// openSegmentLocked creates the next segment file; callers hold ioMu.
func (w *wal) openSegmentLocked() error {
	seq := w.nextFileSeq()
	path := filepath.Join(w.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(walMagic); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.active = &segment{f: f, seq: seq, n: int64(len(walMagic))}
	return nil
}

// adoptSegment reuses an existing (tail-repaired) segment as the active
// one, appending at its end. It takes ioMu itself; callers must not hold
// it.
func (w *wal) adoptSegment(meta segMeta) error {
	f, err := os.OpenFile(meta.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.ioMu.Lock()
	w.active = &segment{f: f, seq: meta.seq, n: meta.n, maxStamp: meta.maxStamp}
	w.ioMu.Unlock()
	return nil
}

// rotateLocked seals the active segment and leaves segment creation to
// the next flush; callers hold ioMu.
func (w *wal) rotateLocked() {
	seg := w.active
	if seg == nil {
		return
	}
	if err := seg.f.Sync(); err == nil {
		seg.f.Close()
	} else {
		seg.f.Close()
		w.mu.Lock()
		w.setErrLocked(err)
		w.mu.Unlock()
		return
	}
	w.mu.Lock()
	w.sealed = append(w.sealed, segMeta{
		path: filepath.Join(w.dir, segName(seg.seq)), seq: seg.seq, n: seg.n, maxStamp: seg.maxStamp,
	})
	// A rotation fsynced everything written so far.
	if w.syncedLSN < w.flushedLSN {
		w.syncedLSN = w.flushedLSN
		w.durable.Broadcast()
	}
	w.mu.Unlock()
	w.active = nil
}

// truncateBelow deletes the longest prefix of sealed segments whose
// every record is strictly below minStamp — i.e. fully reflected in a
// snapshot taken at (per-chunk stamps no smaller than) minStamp. The
// prefix rule matters: append order puts a key's delete after its
// insert, so deleting only prefixes can never strand an insert whose
// delete was dropped.
func (w *wal) truncateBelow(minStamp uint64) {
	w.mu.Lock()
	cut := 0
	for cut < len(w.sealed) && w.sealed[cut].maxStamp < minStamp {
		cut++
	}
	drop := append([]segMeta(nil), w.sealed[:cut]...)
	w.sealed = w.sealed[cut:]
	w.stats.segsGone += uint64(len(drop))
	w.mu.Unlock()
	for _, s := range drop {
		os.Remove(s.path)
	}
	if len(drop) > 0 {
		syncDir(w.dir)
	}
}

// resetSnapshotDebt zeroes the WAL-growth counter that size-triggers
// background snapshots; called after each completed snapshot.
func (w *wal) resetSnapshotDebt() {
	w.mu.Lock()
	w.stats.sinceSnp = 0
	w.mu.Unlock()
}

// sync forces buffered records to disk with an fsync, regardless of
// policy. Safe to call concurrently with appends. A nil return means
// every record appended before the call is on stable storage — a sync
// that loses a race with Close or SimulateCrash is reported as
// ErrSyncRaced (and counted) rather than falsely acknowledged or
// silently mapped to a low-level file error. The post-flush re-check
// matters: a Close that completes between the entry check and the
// flush leaves flush a no-op with syncedLSN already at target, which
// used to read as a successful sync of a closed engine.
func (w *wal) sync() error {
	w.mu.Lock()
	if w.crashed || w.closing || w.closed {
		err := w.err
		w.stats.lateSyncs++
		w.mu.Unlock()
		if err != nil {
			return err
		}
		return ErrSyncRaced
	}
	target := w.appendLSN
	w.mu.Unlock()
	w.flush(true)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.crashed || w.closing || w.closed {
		w.stats.lateSyncs++
		return ErrSyncRaced
	}
	if w.syncedLSN < target {
		return ErrClosed
	}
	return nil
}

// close drains the engine: new appends are rejected, the flusher stops,
// everything buffered reaches disk with a final fsync (all policies —
// flush-on-close), and the active segment is closed. Idempotent and
// safe for concurrent callers: every call returns after teardown has
// completed, with the sticky error state.
func (w *wal) close() error {
	w.mu.Lock()
	if w.closed || w.closing {
		for !w.closed {
			w.durable.Wait()
		}
		err := w.err
		if err == nil {
			err = w.unloggedErrLocked()
		}
		w.mu.Unlock()
		return err
	}
	w.closing = true
	w.mu.Unlock()

	close(w.stopCh)
	<-w.done
	if !w.isCrashed() {
		w.flush(true)
	}
	w.ioMu.Lock()
	if w.active != nil {
		w.active.f.Close()
		w.active = nil
	}
	w.ioMu.Unlock()
	w.mu.Lock()
	w.closed = true
	w.durable.Broadcast()
	err := w.err
	if err == nil {
		err = w.unloggedErrLocked()
	}
	w.mu.Unlock()
	return err
}

func (w *wal) isCrashed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.crashed
}

// simulateCrash kills the engine the way a process crash would: the
// user-space append buffer is discarded without reaching the OS, no
// final fsync happens, and the files are abandoned as-is. dropTail
// additionally truncates the active segment by up to that many bytes,
// emulating a power loss tearing the unsynced suffix — possibly
// mid-frame, which recovery must tolerate. The cut never reaches into
// fsynced data: a real power loss cannot revoke a completed fsync, and
// the stress harness relies on exactly that bound.
func (w *wal) simulateCrash(dropTail int64) error {
	w.mu.Lock()
	if w.closed || w.closing {
		w.mu.Unlock()
		return ErrClosed
	}
	w.closing = true
	w.crashed = true
	w.buf = nil // lost: never handed to the OS
	w.bufRecords = 0
	w.durable.Broadcast()
	w.mu.Unlock()

	close(w.stopCh)
	<-w.done
	w.ioMu.Lock()
	// Bytes in the file but not yet covered by an fsync; rotation syncs
	// before sealing, so all of them live in the active segment. Read
	// only after ioMu is held: an in-flight Sync that wins the ioMu race
	// may still be fsyncing, and its acknowledgment must bound the cut.
	w.mu.Lock()
	unsynced := w.flushedLSN - w.syncedLSN
	w.mu.Unlock()
	if w.active != nil {
		if dropTail > unsynced {
			dropTail = unsynced
		}
		if dropTail > 0 {
			keep := w.active.n - dropTail
			if keep < int64(len(walMagic)) {
				keep = int64(len(walMagic))
			}
			w.active.f.Truncate(keep)
		}
		w.active.f.Close()
		w.active = nil
	}
	w.ioMu.Unlock()
	w.mu.Lock()
	w.closed = true
	w.durable.Broadcast()
	w.mu.Unlock()
	return nil
}

// syncDir fsyncs a directory so renames and creates survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic writes content to path via a temp file, fsync,
// rename, and a parent-directory fsync, so even across a power loss
// readers observe either no file or a complete one. Exported for the
// durable Open path's small metadata files (the shard-count pin); the
// crash-safety sequence lives here, next to the rest of the engine's
// fsync discipline.
func WriteFileAtomic(path string, content []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(content); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}
