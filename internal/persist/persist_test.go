package persist

import (
	"errors"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/stm"
)

// logTx runs fn inside a writing transaction: a throwaway transactional
// field is stored so the transaction acquires an orec, draws a commit
// stamp, and fires its publish hooks — the store only logs writing
// transactions.
func logTx(t *testing.T, rt *stm.Runtime, scratch *writeScratch, fn func(tx *stm.Tx)) {
	t.Helper()
	if err := rt.Atomic(func(tx *stm.Tx) error {
		scratch.f.Store(tx, &scratch.o, scratch.f.Raw()+1)
		fn(tx)
		return nil
	}); err != nil {
		t.Fatalf("logTx: %v", err)
	}
}

type writeScratch struct {
	o stm.Orec
	f stm.U64
}

func openInt64Store(t *testing.T, opts Options) *Store[int64, int64] {
	t.Helper()
	st, err := Open[int64, int64](opts, Int64Codec(), Int64Codec())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

func recoveredMap(st *Store[int64, int64]) map[int64]int64 {
	out := make(map[int64]int64)
	for _, kv := range st.TakeRecovered() {
		out[kv.Key] = kv.Val
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	ic := Int64Codec()
	buf := ic.Append(nil, -42)
	v, n, err := ic.Read(buf)
	if err != nil || v != -42 || n != 8 {
		t.Fatalf("int64 round trip: %d %d %v", v, n, err)
	}
	sc := StringCodec()
	buf = sc.Append(nil, "hello, skip hash")
	s, n, err := sc.Read(buf)
	if err != nil || s != "hello, skip hash" || n != len(buf) {
		t.Fatalf("string round trip: %q %d %v", s, n, err)
	}
	if _, _, err := sc.Read(buf[:3]); err == nil {
		t.Fatal("truncated string decoded without error")
	}
	bc := BytesCodec()
	buf = bc.Append(nil, []byte{1, 2, 3})
	b, _, err := bc.Read(buf)
	if err != nil || len(b) != 3 || b[2] != 3 {
		t.Fatalf("bytes round trip: %v %v", b, err)
	}
}

// TestWALRecovery logs a mixed op sequence (including multi-op batch
// records), closes cleanly, and verifies recovery reproduces the model.
func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	// FsyncAlways flushes per record, so the small SegmentBytes actually
	// forces rotations (segments rotate between flushes, never mid-flush).
	opts := Options{Dir: dir, SegmentBytes: 1 << 12, Fsync: FsyncAlways}
	st := openInt64Store(t, opts)
	rt := stm.New()
	var ws writeScratch
	model := map[int64]int64{}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 2000; i++ {
		k := int64(rng.Uint64() % 128)
		switch rng.Uint64() % 3 {
		case 0:
			v := int64(i)
			logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, k, v) })
			model[k] = v
		case 1:
			logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogDel(tx, k) })
			delete(model, k)
		case 2:
			// A batch: delete k, put k+1000 — one record.
			v := int64(i)
			logTx(t, rt, &ws, func(tx *stm.Tx) {
				st.LogDel(tx, k)
				st.LogPut(tx, k+1000, v)
			})
			delete(model, k)
			model[k+1000] = v
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2 := openInt64Store(t, opts)
	defer st2.Close()
	info := st2.Recovered()
	if info.Records != 2000 {
		t.Fatalf("recovered %d records, want 2000", info.Records)
	}
	if info.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", info.Segments)
	}
	got := recoveredMap(st2)
	if len(got) != len(model) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("key %d: recovered %d want %d", k, got[k], v)
		}
	}
}

// TestSnapshotTruncates verifies a snapshot supersedes older snapshots
// and deletes fully covered WAL segments, and that snapshot + newer
// records recover correctly.
func TestSnapshotTruncates(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentBytes: 1 << 11, SnapshotBytes: -1, Fsync: FsyncAlways}
	st := openInt64Store(t, opts)
	rt := stm.New()
	var ws writeScratch
	model := map[int64]int64{}
	put := func(k, v int64) {
		logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, k, v) })
		model[k] = v
	}
	for i := int64(0); i < 500; i++ {
		put(i, i)
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Source reflects the model at a stamp beyond every record logged
	// so far: any stamp from the runtime's clock read after the ops.
	st.Start(func(chunkSize int, emit func(uint64, []KV[int64, int64]) error) error {
		stamp := rt.Clock().Read() + 1
		kvs := make([]KV[int64, int64], 0, len(model))
		for k, v := range model {
			kvs = append(kvs, KV[int64, int64]{Key: k, Val: v})
		}
		return emit(stamp, kvs)
	})
	if err := st.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segsAfter) > 2 {
		t.Fatalf("snapshot left %d segments, want <=2 (active + at most one)", len(segsAfter))
	}
	if stats := st.Stats(); stats.Snapshots != 1 || stats.SegmentsDeleted == 0 {
		t.Fatalf("stats after snapshot: %+v", stats)
	}
	for i := int64(0); i < 50; i++ {
		put(1000+i, i)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2 := openInt64Store(t, opts)
	defer st2.Close()
	if st2.Recovered().SnapshotEntries != 500 {
		t.Fatalf("snapshot entries %d, want 500", st2.Recovered().SnapshotEntries)
	}
	got := recoveredMap(st2)
	if len(got) != len(model) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("key %d: recovered %d want %d", k, got[k], v)
		}
	}
}

// TestFsyncAlwaysDurableBeforeReturn: with FsyncAlways, a logged op is
// on disk by the time the transaction returns — SimulateCrash (which
// drops everything not yet written) must lose nothing.
func TestFsyncAlwaysDurableBeforeReturn(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Fsync: FsyncAlways}
	st := openInt64Store(t, opts)
	rt := stm.New()
	var ws writeScratch
	for i := int64(0); i < 50; i++ {
		logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, i, i) })
	}
	if err := st.SimulateCrash(); err != nil {
		t.Fatalf("SimulateCrash: %v", err)
	}
	st2 := openInt64Store(t, opts)
	defer st2.Close()
	if got := len(recoveredMap(st2)); got != 50 {
		t.Fatalf("FsyncAlways lost data: recovered %d of 50", got)
	}
}

// TestUnloggedCommitAfterCloseReported: a transaction that commits
// while the log is closing (or closed) cannot be appended — its
// in-memory effect silently diverges from disk unless the engine
// reports it. The loss must surface through Err and a late Close, not
// vanish behind the operation's in-memory success.
func TestUnloggedCommitAfterCloseReported(t *testing.T) {
	dir := t.TempDir()
	st := openInt64Store(t, Options{Dir: dir, Fsync: FsyncAlways})
	rt := stm.New()
	var ws writeScratch
	logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, 1, 10) })
	if err := st.Close(); err != nil {
		t.Fatalf("clean Close: %v", err)
	}
	logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, 2, 20) })
	if err := st.Err(); err == nil {
		t.Fatal("commit racing/after Close was dropped without Err reporting it")
	}
	if err := st.Close(); err == nil {
		t.Fatal("second Close did not report the unlogged commit")
	}
}

// TestSnapshotStraddlingBatchSurvivesCrash: a record logged between two
// snapshot chunks straddles the snapshot — one key's chunk predates it,
// the other's reflects it. Snapshot must sync the WAL before the rename
// publishes the snapshot as the recovery source; otherwise a crash
// loses the record and recovery applies the batch to one key but not
// the other, violating batch atomicity.
func TestSnapshotStraddlingBatchSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	// FsyncNone with an hour-long write-out cadence: nothing reaches the
	// file unless Snapshot itself syncs it.
	opts := Options{Dir: dir, Fsync: FsyncNone, FsyncEvery: time.Hour, SnapshotBytes: -1}
	st := openInt64Store(t, opts)
	rt := stm.New()
	var ws writeScratch
	// Durable baseline for both keys.
	logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, 1, 10) })
	logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, 2, 10) })
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// The source plays the role of SnapshotChunks racing a writer: key
	// 2's chunk is emitted before a batch updates both keys, key 1's
	// chunk after, reflecting it.
	st.Start(func(chunkSize int, emit func(uint64, []KV[int64, int64]) error) error {
		if err := emit(rt.Clock().Read(), []KV[int64, int64]{{Key: 2, Val: 10}}); err != nil {
			return err
		}
		logTx(t, rt, &ws, func(tx *stm.Tx) {
			st.LogPut(tx, 1, 20)
			st.LogPut(tx, 2, 20)
		})
		return emit(rt.Clock().Read()+1, []KV[int64, int64]{{Key: 1, Val: 20}})
	})
	if err := st.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := st.SimulateCrash(); err != nil {
		t.Fatalf("SimulateCrash: %v", err)
	}
	st2 := openInt64Store(t, opts)
	defer st2.Close()
	got := recoveredMap(st2)
	if got[1] != 20 || got[2] != 20 {
		t.Fatalf("straddling batch recovered partially: got %v, want both keys = 20", got)
	}
}

// TestTornTailTolerated: a crash that tears the last record leaves a
// recoverable prefix, and the repaired file recovers identically again.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	// FsyncNone with a fast write-out: records reach the file but are
	// never fsynced, so the torn crash has an unsynced tail to cut (the
	// tear is bounded by the fsync horizon — power loss cannot revoke a
	// completed fsync).
	opts := Options{Dir: dir, Fsync: FsyncNone, FsyncEvery: 2 * time.Millisecond}
	st := openInt64Store(t, opts)
	rt := stm.New()
	var ws writeScratch
	for i := int64(0); i < 100; i++ {
		logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, i, i) })
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := st.Stats()
		if s.FlushedBytes == s.AppendedBytes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("records never reached the file")
		}
		time.Sleep(time.Millisecond)
	}
	if err := st.SimulateTornCrash(7); err != nil {
		t.Fatalf("SimulateTornCrash: %v", err)
	}
	st2, err := Open[int64, int64](opts, Int64Codec(), Int64Codec())
	if err != nil {
		t.Fatalf("recovery after torn crash: %v", err)
	}
	info := st2.Recovered()
	if !info.TornTail {
		t.Fatalf("expected TornTail, got %+v", info)
	}
	if info.Records >= 100 || info.Records < 90 {
		t.Fatalf("torn tail should drop a small suffix, recovered %d records", info.Records)
	}
	got := recoveredMap(st2)
	// Single-writer: the surviving records are exactly a prefix.
	for i := int64(0); i < int64(info.Records); i++ {
		if got[i] != i {
			t.Fatalf("prefix key %d missing or wrong: %d", i, got[i])
		}
	}
	if len(got) != info.Records {
		t.Fatalf("recovered %d entries from %d records", len(got), info.Records)
	}
	st2.Close()

	st3 := openInt64Store(t, opts)
	defer st3.Close()
	if st3.Recovered().TornTail {
		t.Fatal("tail was not repaired: second recovery still sees a torn frame")
	}
	if st3.Recovered().Records != info.Records {
		t.Fatalf("second recovery %d records, first %d", st3.Recovered().Records, info.Records)
	}
}

// TestCorruptionRejected: a flipped bit inside a record is a checksum
// error, not silently wrong data.
func TestCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir}
	st := openInt64Store(t, opts)
	rt := stm.New()
	var ws writeScratch
	for i := int64(0); i < 100; i++ {
		logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, i, i) })
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segments written")
	}
	data, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(segs[len(segs)-1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open[int64, int64](opts, Int64Codec(), Int64Codec())
	if err == nil {
		t.Fatal("corrupted WAL recovered without error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error does not match ErrCorrupt: %v", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) || ce.Path == "" || ce.Reason == "" {
		t.Fatalf("error is not a precise CorruptionError: %#v", err)
	}
}

// TestCloseIdempotentConcurrent: concurrent Close calls all return
// after teardown, and post-close appends are rejected not lost.
func TestCloseIdempotentConcurrent(t *testing.T) {
	dir := t.TempDir()
	st := openInt64Store(t, Options{Dir: dir})
	rt := stm.New()
	var ws writeScratch
	logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, 1, 1) })
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- st.Close() }()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent Close: %v", err)
		}
	}
	if _, err := st.w.appendRecord(99, 1, []byte{opDel, 0, 0, 0, 0, 0, 0, 0, 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

// TestIntervalFsyncEventuallySyncs: with FsyncInterval, records reach
// disk without any explicit Sync.
func TestIntervalFsyncEventuallySyncs(t *testing.T) {
	dir := t.TempDir()
	st := openInt64Store(t, Options{Dir: dir, Fsync: FsyncInterval, FsyncEvery: 5 * time.Millisecond})
	rt := stm.New()
	var ws writeScratch
	logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, 7, 7) })
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := st.Stats(); s.Syncs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never happened")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Crash drops only user-space state; the synced record survives.
	st.SimulateCrash()
	st2 := openInt64Store(t, Options{Dir: dir})
	defer st2.Close()
	if got := recoveredMap(st2); got[7] != 7 {
		t.Fatalf("interval-synced record lost: %v", got)
	}
}

// TestZeroExtendedTailTolerated: delayed allocation after power loss
// can zero-fill the unsynced suffix of the newest segment; an all-zero
// frame header parses as a valid empty frame, which must be treated as
// a torn tail (and repaired), not rejected as corruption.
func TestZeroExtendedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir}
	st := openInt64Store(t, opts)
	rt := stm.New()
	var ws writeScratch
	for i := int64(0); i < 50; i++ {
		logTx(t, rt, &ws, func(tx *stm.Tx) { st.LogPut(tx, i, i) })
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open[int64, int64](opts, Int64Codec(), Int64Codec())
	if err != nil {
		t.Fatalf("zero-extended tail rejected: %v", err)
	}
	if !st2.Recovered().TornTail || st2.Recovered().Records != 50 {
		t.Fatalf("recovery info: %+v", st2.Recovered())
	}
	if got := recoveredMap(st2); len(got) != 50 || got[49] != 49 {
		t.Fatalf("lost records behind the zero tail: %d entries", len(got))
	}
	st2.Close()

	st3 := openInt64Store(t, opts)
	defer st3.Close()
	if st3.Recovered().TornTail {
		t.Fatal("zero tail was not repaired")
	}
}
