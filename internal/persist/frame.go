package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Framing shared by WAL segments and snapshot files: every record is
// [u32 payload length][u32 CRC-32C of payload][payload]. Files open with
// an 8-byte magic identifying their kind and format version.

const (
	frameHeaderLen = 8
	// maxFramePayload bounds a single frame so a corrupted length field
	// cannot drive a multi-gigabyte allocation during recovery.
	maxFramePayload = 1 << 28
)

var (
	walMagic  = []byte("SKHWAL1\n")
	snapMagic = []byte("SKHSNP1\n")

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// ErrCorrupt is the sentinel matched (via errors.Is) by every
// *CorruptionError recovery returns.
var ErrCorrupt = errors.New("persist: corrupt data")

// CorruptionError reports exactly where recovery refused to proceed. It
// is returned for checksum mismatches, framing violations, and decode
// failures anywhere recovery is not allowed to tolerate them (a torn
// frame at the very tail of the newest WAL segment is the one tolerated
// anomaly — an expected crash artifact, not corruption).
type CorruptionError struct {
	// Path is the offending file.
	Path string
	// Offset is the byte offset of the frame (or header) at fault.
	Offset int64
	// Reason describes the violation.
	Reason string
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("persist: corrupt data in %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Is reports a match against ErrCorrupt.
func (e *CorruptionError) Is(target error) bool { return target == ErrCorrupt }

// appendFrame appends a framed payload to dst. The payload is the byte
// range payloadStart..len(dst) that the caller has already written; the
// caller must have reserved frameHeaderLen bytes immediately before it
// (see beginFrame).
func finishFrame(dst []byte, headerStart int) []byte {
	payload := dst[headerStart+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[headerStart:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[headerStart+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// beginFrame reserves a frame header in dst and returns the extended
// slice plus the header's offset, to be completed by finishFrame once
// the payload has been appended.
func beginFrame(dst []byte) ([]byte, int) {
	start := len(dst)
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0), start
}

// frameReader walks the frames of a fully loaded file.
type frameReader struct {
	path string
	data []byte
	off  int64 // absolute offset of the next frame
}

// errTornFrame marks an incomplete frame at the end of the data: either
// a header extending past EOF or a payload shorter than its declared
// length. Whether that is tolerable (tail of the newest WAL segment) or
// corruption (anywhere else) is the caller's decision.
var errTornFrame = errors.New("persist: torn frame at end of file")

// next returns the next frame's payload. io.EOF-style end is reported
// with done=true; a torn tail with errTornFrame; a checksum mismatch
// with a *CorruptionError.
func (r *frameReader) next() (payload []byte, frameOff int64, done bool, err error) {
	rest := r.data[r.off:]
	if len(rest) == 0 {
		return nil, r.off, true, nil
	}
	frameOff = r.off
	if len(rest) < frameHeaderLen {
		return nil, frameOff, false, errTornFrame
	}
	ln := binary.LittleEndian.Uint32(rest)
	if ln > maxFramePayload {
		return nil, frameOff, false, &CorruptionError{Path: r.path, Offset: frameOff,
			Reason: fmt.Sprintf("frame length %d exceeds limit", ln)}
	}
	if int64(len(rest)-frameHeaderLen) < int64(ln) {
		return nil, frameOff, false, errTornFrame
	}
	payload = rest[frameHeaderLen : frameHeaderLen+int(ln)]
	want := binary.LittleEndian.Uint32(rest[4:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, frameOff, false, &CorruptionError{Path: r.path, Offset: frameOff,
			Reason: fmt.Sprintf("checksum mismatch: stored %08x, computed %08x", want, got)}
	}
	r.off += int64(frameHeaderLen) + int64(ln)
	return payload, frameOff, false, nil
}
