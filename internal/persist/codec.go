// Package persist is the durability subsystem of the skip hash: a
// write-ahead log of logical operations ordered by STM commit stamp,
// clock-consistent snapshots taken while writers proceed, and crash
// recovery that reconstructs the map from the newest valid snapshot plus
// the strictly-newer tail of the log.
//
// # Why commit stamps make this easy
//
// Every committed writing transaction of the STM runtime already carries
// a totally-ordered commit timestamp — the global-version clock the
// paper's design rests on. The WAL records a transaction's logical
// effect (the puts and deletes that actually changed state) tagged with
// that stamp, captured at the stm.Tx.OnPublish observation point, i.e.
// while the transaction still holds every orec it wrote. Two conflicting
// transactions therefore append in commit order, so file order breaks
// stamp ties exactly as the real serialization did. A snapshot is a
// sequence of chunked read-only transactions, each chunk tagged with its
// start stamp; a chunk is a consistent view of its keys as of that
// stamp. Recovery loads the snapshot, sorts the log by stamp (stable, so
// file order resolves ties), and replays onto each key every record not
// already reflected in that key's chunk — the same clock trick Jiffy
// uses for its batch snapshots.
//
// # On-disk layout
//
// A durable map owns a directory holding WAL segments (wal-<seq>.seg)
// and snapshots (snap-<seq>.snap), both built from CRC-framed records:
// a 4-byte little-endian payload length, a 4-byte CRC-32C of the
// payload, then the payload. A torn frame at the tail of the newest
// segment (a crash mid-write) is tolerated and truncated; any other
// framing or checksum violation fails recovery with a *CorruptionError
// rather than loading wrong data.
package persist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec serializes keys or values of a durable map. Append must be a
// self-delimiting encoding (Read can find its own end); Read returns the
// decoded value and how many bytes it consumed.
type Codec[T any] struct {
	// Append appends the encoding of v to dst and returns the extended
	// slice.
	Append func(dst []byte, v T) []byte
	// Read decodes one value from the front of src, returning it and the
	// number of bytes consumed.
	Read func(src []byte) (v T, n int, err error)
}

// Int64Codec encodes int64 as 8 little-endian bytes.
func Int64Codec() Codec[int64] {
	return Codec[int64]{
		Append: func(dst []byte, v int64) []byte {
			return binary.LittleEndian.AppendUint64(dst, uint64(v))
		},
		Read: func(src []byte) (int64, int, error) {
			if len(src) < 8 {
				return 0, 0, fmt.Errorf("persist: int64 needs 8 bytes, have %d", len(src))
			}
			return int64(binary.LittleEndian.Uint64(src)), 8, nil
		},
	}
}

// Uint64Codec encodes uint64 as 8 little-endian bytes.
func Uint64Codec() Codec[uint64] {
	return Codec[uint64]{
		Append: func(dst []byte, v uint64) []byte {
			return binary.LittleEndian.AppendUint64(dst, v)
		},
		Read: func(src []byte) (uint64, int, error) {
			if len(src) < 8 {
				return 0, 0, fmt.Errorf("persist: uint64 needs 8 bytes, have %d", len(src))
			}
			return binary.LittleEndian.Uint64(src), 8, nil
		},
	}
}

// Float64Codec encodes float64 as its IEEE 754 bits, little-endian.
func Float64Codec() Codec[float64] {
	return Codec[float64]{
		Append: func(dst []byte, v float64) []byte {
			return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		},
		Read: func(src []byte) (float64, int, error) {
			if len(src) < 8 {
				return 0, 0, fmt.Errorf("persist: float64 needs 8 bytes, have %d", len(src))
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(src)), 8, nil
		},
	}
}

// BytesCodec encodes a byte slice as a uvarint length prefix plus the
// bytes. Read copies the payload out of src: recovery decodes from
// whole-file buffers and inserts the values into the map, so an aliasing
// slice would pin an entire snapshot or WAL segment in memory for as
// long as one of its values stays live.
func BytesCodec() Codec[[]byte] {
	return Codec[[]byte]{
		Append: func(dst []byte, v []byte) []byte {
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			return append(dst, v...)
		},
		Read: func(src []byte) ([]byte, int, error) {
			ln, n, err := readUvarint(src)
			if err != nil {
				return nil, 0, err
			}
			if uint64(len(src)-n) < ln {
				return nil, 0, fmt.Errorf("persist: bytes length %d exceeds remaining %d", ln, len(src)-n)
			}
			out := make([]byte, ln)
			copy(out, src[n:n+int(ln)])
			return out, n + int(ln), nil
		},
	}
}

// StringCodec encodes a string as a uvarint length prefix plus its
// bytes. The string conversion in Read is itself the copy out of the
// recovery buffer.
func StringCodec() Codec[string] {
	return Codec[string]{
		Append: func(dst []byte, v string) []byte {
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			return append(dst, v...)
		},
		Read: func(src []byte) (string, int, error) {
			ln, n, err := readUvarint(src)
			if err != nil {
				return "", 0, err
			}
			if uint64(len(src)-n) < ln {
				return "", 0, fmt.Errorf("persist: string length %d exceeds remaining %d", ln, len(src)-n)
			}
			return string(src[n : n+int(ln)]), n + int(ln), nil
		},
	}
}

// readUvarint decodes a uvarint from src, rejecting truncated input.
func readUvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("persist: bad uvarint")
	}
	return v, n, nil
}

// KV is a recovered or snapshotted key/value pair.
type KV[K comparable, V any] struct {
	Key K
	Val V
}
