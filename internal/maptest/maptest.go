// Package maptest provides a reusable conformance, stress, and
// range-consistency suite for every ordered map in this repository: the
// skip hash itself and each of the evaluation's baselines. Implementing
// the small OrderedMap adapter buys a data structure several hundred
// checks spanning sequential semantics, concurrent linearization
// evidence, and snapshot sanity for range queries.
package maptest

import (
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/kv"
)

// KV is a key/value pair returned by range queries.
type KV = kv.KV

// OrderedMap is the minimal interface the suite exercises. Implementations
// must be safe for concurrent use.
type OrderedMap interface {
	// Lookup returns the value for k.
	Lookup(k int64) (int64, bool)
	// Insert adds (k, v) if absent, reporting whether it did.
	Insert(k, v int64) bool
	// Remove deletes k, reporting whether it was present.
	Remove(k int64) bool
	// Range appends all pairs with l <= key <= r, in key order, to buf.
	Range(l, r int64, buf []KV) []KV
}

// Queryable is implemented by maps that also support point queries; the
// suite exercises them when available.
type Queryable interface {
	Ceil(k int64) (int64, int64, bool)
	Floor(k int64) (int64, int64, bool)
	Succ(k int64) (int64, int64, bool)
	Pred(k int64) (int64, int64, bool)
}

// Checkable is implemented by maps with a quiescent invariant audit.
type Checkable interface {
	CheckQuiescent() error
}

// Lifecycle is implemented by maps with a handle registry and explicit
// teardown (the skip hash variants); the suite's handle-churn component
// uses it to assert the registry stays bounded under convenience-path
// traffic and that teardown leaves no deferred-reclamation garbage.
type Lifecycle interface {
	// HandleCount reports how many handles are currently registered.
	HandleCount() int
	// Close tears the map down, flushing all deferred reclamation.
	Close()
}

// Factory builds a fresh empty map for one test.
type Factory func() OrderedMap

// RunAll runs every suite component against the factory.
func RunAll(t *testing.T, newMap Factory) {
	t.Run("Sequential", func(t *testing.T) { RunSequential(t, newMap) })
	t.Run("Model", func(t *testing.T) { RunModel(t, newMap) })
	if _, ok := newMap().(Queryable); ok {
		t.Run("PointQueryModel", func(t *testing.T) { RunPointQueryModel(t, newMap) })
	}
	t.Run("ConcurrentDisjoint", func(t *testing.T) { RunConcurrentDisjoint(t, newMap) })
	t.Run("ConcurrentContended", func(t *testing.T) { RunConcurrentContended(t, newMap) })
	t.Run("RangeSanity", func(t *testing.T) { RunRangeSanity(t, newMap) })
	t.Run("RangeCountBound", func(t *testing.T) { RunRangeCountBound(t, newMap) })
	t.Run("Linearizability", func(t *testing.T) { RunLinearizability(t, newMap) })
	t.Run("HandleChurn", func(t *testing.T) { RunHandleChurn(t, newMap) })
}

// RunHandleChurn is the regression suite for the handle-lifecycle leak
// class: goroutines churn insert/remove through the map's convenience
// methods (the pooled-handle path), with GC cycles recycling the pools
// mid-run. Afterwards the handle registry must not have grown with the
// operation count, and a quiescent audit must find no logically-deleted
// node still stitched (CheckQuiescent runs the map's invariant check
// with AllowDeleted false). Requires Lifecycle.
func RunHandleChurn(t *testing.T, newMap Factory) {
	m := newMap()
	lc, ok := m.(Lifecycle)
	if !ok {
		t.Skip("map does not implement Lifecycle")
	}
	const goroutines = 8
	const iters = 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0x10fe))
			const universe = 256
			for i := 0; i < iters; i++ {
				k := int64(rng.Uint64() % universe)
				switch rng.Uint64() % 4 {
				case 0, 1:
					m.Insert(k, k)
				case 2:
					m.Remove(k)
				case 3:
					m.Lookup(k)
				}
				if i%1024 == 0 {
					// Empty the handle pools mid-churn: handles the pool
					// drops must neither linger in the registry nor
					// strand their buffered removals.
					runtime.GC()
				}
			}
		}(uint64(g) + 1)
	}
	wg.Wait()
	// Convenience traffic uses transient pooled handles only, so the
	// registry must stay empty no matter how many operations ran.
	if n := lc.HandleCount(); n != 0 {
		t.Errorf("handle registry holds %d handles after convenience-only churn, want 0", n)
	}
	checkQuiescent(t, m)
	lc.Close()
	if c, ok := m.(Checkable); ok {
		if err := c.CheckQuiescent(); err != nil {
			t.Errorf("quiescent invariant check after Close: %v", err)
		}
	}
}

// RunPointQueryModel replays random updates and checks every point query
// against a reference model; requires Queryable.
func RunPointQueryModel(t *testing.T, newMap Factory) {
	m := newMap()
	q, ok := m.(Queryable)
	if !ok {
		t.Skip("map does not implement point queries")
	}
	model := make(map[int64]int64)
	rng := rand.New(rand.NewPCG(7, 13))
	const universe = 96
	for i := 0; i < 4000; i++ {
		k := int64(rng.Uint64() % universe)
		switch rng.Uint64() % 6 {
		case 0, 1:
			if m.Insert(k, k*5) {
				model[k] = k * 5
			}
		case 2:
			if m.Remove(k) {
				delete(model, k)
			}
		case 3:
			gk, gv, gok := q.Ceil(k)
			wk, wok := modelBound(model, func(mk int64) bool { return mk >= k }, false)
			checkPoint(t, i, "Ceil", k, gk, gv, gok, wk, model[wk], wok)
		case 4:
			gk, gv, gok := q.Floor(k)
			wk, wok := modelBound(model, func(mk int64) bool { return mk <= k }, true)
			checkPoint(t, i, "Floor", k, gk, gv, gok, wk, model[wk], wok)
		case 5:
			if rng.Uint64()&1 == 0 {
				gk, gv, gok := q.Succ(k)
				wk, wok := modelBound(model, func(mk int64) bool { return mk > k }, false)
				checkPoint(t, i, "Succ", k, gk, gv, gok, wk, model[wk], wok)
			} else {
				gk, gv, gok := q.Pred(k)
				wk, wok := modelBound(model, func(mk int64) bool { return mk < k }, true)
				checkPoint(t, i, "Pred", k, gk, gv, gok, wk, model[wk], wok)
			}
		}
	}
	checkQuiescent(t, m)
}

// modelBound finds the smallest (or, when wantMax, largest) model key
// satisfying pred.
func modelBound(model map[int64]int64, pred func(int64) bool, wantMax bool) (int64, bool) {
	best, ok := int64(0), false
	for mk := range model {
		if !pred(mk) {
			continue
		}
		if !ok || (wantMax && mk > best) || (!wantMax && mk < best) {
			best, ok = mk, true
		}
	}
	return best, ok
}

func checkPoint(t *testing.T, step int, op string, k, gk, gv int64, gok bool, wk, wv int64, wok bool) {
	t.Helper()
	if gok != wok || (gok && (gk != wk || gv != wv)) {
		t.Fatalf("step %d: %s(%d) = %d,%d,%v want %d,%d,%v", step, op, k, gk, gv, gok, wk, wv, wok)
	}
}

// RunSequential checks single-threaded semantics on directed cases.
func RunSequential(t *testing.T, newMap Factory) {
	m := newMap()
	if _, ok := m.Lookup(3); ok {
		t.Error("empty map reports key present")
	}
	if got := m.Range(0, 100, nil); len(got) != 0 {
		t.Errorf("empty map range = %v", got)
	}
	if !m.Insert(3, 30) || m.Insert(3, 31) {
		t.Error("insert semantics broken for key 3")
	}
	if v, ok := m.Lookup(3); !ok || v != 30 {
		t.Errorf("Lookup(3) = %d,%v", v, ok)
	}
	for _, k := range []int64{1, 5, 2, 4} {
		if !m.Insert(k, k*10) {
			t.Errorf("Insert(%d) failed", k)
		}
	}
	got := m.Range(1, 5, nil)
	want := []KV{
		{Key: 1, Val: 10}, {Key: 2, Val: 20}, {Key: 3, Val: 30},
		{Key: 4, Val: 40}, {Key: 5, Val: 50},
	}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Range[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Sub-ranges and boundary inclusion.
	if got := m.Range(2, 4, nil); len(got) != 3 || got[0].Key != 2 || got[2].Key != 4 {
		t.Errorf("Range(2,4) = %v", got)
	}
	if got := m.Range(3, 3, nil); len(got) != 1 || got[0] != (KV{Key: 3, Val: 30}) {
		t.Errorf("point range = %v", got)
	}
	if !m.Remove(3) || m.Remove(3) {
		t.Error("remove semantics broken for key 3")
	}
	if got := m.Range(1, 5, nil); len(got) != 4 {
		t.Errorf("Range after removal = %v", got)
	}
	if q, ok := m.(Queryable); ok {
		if k, _, ok := q.Ceil(3); !ok || k != 4 {
			t.Errorf("Ceil(3) = %d,%v want 4", k, ok)
		}
		if k, _, ok := q.Floor(3); !ok || k != 2 {
			t.Errorf("Floor(3) = %d,%v want 2", k, ok)
		}
		if k, _, ok := q.Succ(4); !ok || k != 5 {
			t.Errorf("Succ(4) = %d,%v want 5", k, ok)
		}
		if k, _, ok := q.Pred(2); !ok || k != 1 {
			t.Errorf("Pred(2) = %d,%v want 1", k, ok)
		}
		if _, _, ok := q.Ceil(6); ok {
			t.Error("Ceil(6) found a key")
		}
		if _, _, ok := q.Floor(0); ok {
			t.Error("Floor(0) found a key")
		}
	}
	checkQuiescent(t, m)
}

// RunModel replays a long pseudo-random trace against map semantics and
// compares every answer with a reference model.
func RunModel(t *testing.T, newMap Factory) {
	m := newMap()
	model := make(map[int64]int64)
	rng := rand.New(rand.NewPCG(42, 99))
	const universe = 128
	for i := 0; i < 6000; i++ {
		k := int64(rng.Uint64() % universe)
		switch rng.Uint64() % 4 {
		case 0:
			got := m.Insert(k, k*3+1)
			_, present := model[k]
			if got == present {
				t.Fatalf("step %d: Insert(%d) = %v with present=%v", i, k, got, present)
			}
			if !present {
				model[k] = k*3 + 1
			}
		case 1:
			got := m.Remove(k)
			_, present := model[k]
			if got != present {
				t.Fatalf("step %d: Remove(%d) = %v with present=%v", i, k, got, present)
			}
			delete(model, k)
		case 2:
			v, ok := m.Lookup(k)
			mv, present := model[k]
			if ok != present || (ok && v != mv) {
				t.Fatalf("step %d: Lookup(%d) = %d,%v want %d,%v", i, k, v, ok, mv, present)
			}
		case 3:
			r := k + int64(rng.Uint64()%32)
			got := m.Range(k, r, nil)
			want := modelRange(model, k, r)
			if len(got) != len(want) {
				t.Fatalf("step %d: Range(%d,%d) = %v want %v", i, k, r, got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("step %d: Range(%d,%d)[%d] = %v want %v", i, k, r, j, got[j], want[j])
				}
			}
		}
	}
	checkQuiescent(t, m)
}

func modelRange(model map[int64]int64, l, r int64) []KV {
	var out []KV
	for k, v := range model {
		if k >= l && k <= r {
			out = append(out, KV{Key: k, Val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// RunConcurrentDisjoint has goroutines own disjoint key stripes; every
// operation's result is deterministic.
func RunConcurrentDisjoint(t *testing.T, newMap Factory) {
	m := newMap()
	const goroutines = 8
	const perG = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < perG; i++ {
				k := base*perG + i
				if !m.Insert(k, k) {
					t.Errorf("Insert(%d) failed", k)
				}
			}
			for i := int64(0); i < perG; i += 2 {
				k := base*perG + i
				if !m.Remove(k) {
					t.Errorf("Remove(%d) failed", k)
				}
			}
			for i := int64(0); i < perG; i++ {
				k := base*perG + i
				v, ok := m.Lookup(k)
				wantPresent := i%2 == 1
				if ok != wantPresent {
					t.Errorf("Lookup(%d) present=%v want %v", k, ok, wantPresent)
				}
				if ok && v != k {
					t.Errorf("Lookup(%d) = %d", k, v)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	got := m.Range(0, goroutines*perG, nil)
	if len(got) != goroutines*perG/2 {
		t.Errorf("final population = %d, want %d", len(got), goroutines*perG/2)
	}
	checkQuiescent(t, m)
}

// RunConcurrentContended hammers a small key space and verifies per-key
// linearization evidence: successful inserts minus successful removes
// equals final presence.
func RunConcurrentContended(t *testing.T, newMap Factory) {
	m := newMap()
	const keys = 12
	const goroutines = 8
	const iters = 1500
	var inserts, removes [keys]int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var li, lr [keys]int64
			rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
			for i := 0; i < iters; i++ {
				k := int64(rng.Uint64() % keys)
				if rng.Uint64()&1 == 0 {
					if m.Insert(k, k) {
						li[k]++
					}
				} else {
					if m.Remove(k) {
						lr[k]++
					}
				}
			}
			mu.Lock()
			for k := 0; k < keys; k++ {
				inserts[k] += li[k]
				removes[k] += lr[k]
			}
			mu.Unlock()
		}(uint64(g) + 1)
	}
	wg.Wait()
	for k := int64(0); k < keys; k++ {
		_, present := m.Lookup(k)
		balance := inserts[k] - removes[k]
		want := int64(0)
		if present {
			want = 1
		}
		if balance != want {
			t.Errorf("key %d: inserts-removes = %d, present = %v", k, balance, present)
		}
	}
	checkQuiescent(t, m)
}

// RunRangeSanity checks structural properties of concurrent range
// results: sorted, in bounds, duplicate-free, values consistent.
func RunRangeSanity(t *testing.T, newMap Factory) {
	m := newMap()
	const universe = 512
	for k := int64(0); k < universe; k += 2 {
		m.Insert(k, k)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
			for i := 0; i < 4000; i++ {
				k := int64(rng.Uint64() % universe)
				if rng.Uint64()&1 == 0 {
					m.Insert(k, k)
				} else {
					m.Remove(k)
				}
			}
		}(uint64(g) + 5)
	}
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0xcafe))
			var buf []KV
			for {
				select {
				case <-stop:
					return
				default:
				}
				l := int64(rng.Uint64() % universe)
				r := l + int64(rng.Uint64()%100)
				buf = m.Range(l, r, buf[:0])
				last := int64(-1)
				for _, p := range buf {
					if p.Key < l || p.Key > r {
						t.Errorf("Range(%d,%d) returned out-of-bounds key %d", l, r, p.Key)
						return
					}
					if p.Key <= last {
						t.Errorf("Range(%d,%d) unsorted or duplicate: %d after %d", l, r, p.Key, last)
						return
					}
					if p.Val != p.Key {
						t.Errorf("Range(%d,%d): key %d has foreign value %d", l, r, p.Key, p.Val)
						return
					}
					last = p.Key
				}
			}
		}(uint64(g) + 31)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	checkQuiescent(t, m)
}

// RunRangeCountBound is the snapshot-atomicity bound check: each writer
// keeps its own stripe's population constant except for a one-key window
// between a successful remove and the matching re-insert. Any range
// covering the whole universe must therefore report a population within
// #writers of the initial one. Ranges that miss concurrently relocated
// nodes (the classic non-linearizable traversal bug) fail this bound.
func RunRangeCountBound(t *testing.T, newMap Factory) {
	m := newMap()
	const writers = 4
	const stripe = 64
	const universe = writers * stripe
	for k := int64(0); k < universe; k++ {
		m.Insert(k, k)
	}
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(base int64, seed uint64) {
			defer writerWG.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0x1234))
			for i := 0; i < 5000; i++ {
				k := base + int64(rng.Uint64()%stripe)
				if m.Remove(k) {
					for !m.Insert(k, k) {
						// The key cannot reappear on its own: our
						// stripe, so retry must succeed immediately.
						t.Errorf("re-insert of %d failed in owned stripe", k)
						return
					}
				}
			}
		}(int64(g)*stripe, uint64(g)+17)
	}
	var readerWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			var buf []KV
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = m.Range(0, universe, buf[:0])
				if len(buf) < universe-writers || len(buf) > universe {
					t.Errorf("range population = %d, want within [%d, %d]",
						len(buf), universe-writers, universe)
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if got := m.Range(0, universe, nil); len(got) != universe {
		t.Errorf("final population = %d, want %d", len(got), universe)
	}
	checkQuiescent(t, m)
}

func checkQuiescent(t *testing.T, m OrderedMap) {
	t.Helper()
	if c, ok := m.(Checkable); ok {
		if err := c.CheckQuiescent(); err != nil {
			t.Errorf("quiescent invariant check: %v", err)
		}
	}
}
