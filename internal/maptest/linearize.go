package maptest

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/linearize"
	"repro/internal/stm"
)

// Batcher is implemented by maps supporting multi-key atomic batches
// (the skip hash's Atomic). Batch applies steps in order as one atomic
// unit, filling in each step's outputs, and reports whether the batch
// was applied; false means the map rejected it wholesale (for example
// ErrCrossShard on isolated shards) and left no trace.
type Batcher interface {
	Batch(steps []linearize.Step) bool
}

// HookInstaller is implemented by adapters whose map can accept STM
// schedule/fault hooks (see stm.Hooks). Installing nil removes them.
// The linearizability suite uses it for fault-injection and
// deterministic-schedule phases; maps without an STM runtime simply
// don't implement it and skip those phases.
type HookInstaller interface {
	InstallSTMHooks(h stm.Hooks)
}

// WorkloadOptions parameterizes RecordHistory. Every random choice
// derives from Seed, so one seed regenerates the identical per-client
// operation streams.
type WorkloadOptions struct {
	// Clients is the number of concurrent client goroutines.
	Clients int
	// OpsPerClient is each client's operation count.
	OpsPerClient int
	// Universe draws keys from [0, Universe).
	Universe int64
	// Seed derives all random choices.
	Seed uint64
	// PointQueries mixes in Ceil/Floor/Succ/Pred (needs Queryable).
	PointQueries bool
	// Ranges mixes in short range queries.
	Ranges bool
	// Batches mixes in 2-4 step atomic batches (needs Batcher).
	Batches bool
	// LookupPct, when positive, reserves that percentage of operations
	// for point lookups — the read-heavy mix that drives the optimistic
	// read fast path — while the remaining operations keep the default
	// mix's relative weights. Zero keeps the default mix.
	LookupPct int
	// Scheduler, when set, serializes the run under the deterministic
	// step scheduler: workers attach to it and are started one at a
	// time so the interleaving derives from the scheduler's seed.
	Scheduler *stm.StepScheduler
}

// RecordHistory runs the seeded workload against m and returns the
// merged invoke/return history for linearizability checking.
func RecordHistory(m OrderedMap, o WorkloadOptions) []linearize.Op {
	q, hasQ := m.(Queryable)
	b, hasB := m.(Batcher)
	rec := linearize.NewRecorder()
	clients := make([]*linearize.Client, o.Clients)
	for c := range clients {
		clients[c] = rec.NewClient(c)
	}
	if o.Scheduler != nil {
		o.Scheduler.Freeze()
	}
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int, cl *linearize.Client) {
			defer wg.Done()
			if o.Scheduler != nil {
				o.Scheduler.Attach()
				defer o.Scheduler.Detach()
			}
			rng := rand.New(rand.NewPCG(o.Seed, uint64(c)+1))
			for i := 0; i < o.OpsPerClient; i++ {
				k := int64(rng.Uint64() % uint64(o.Universe))
				v := int64(c)<<24 | int64(i)<<4
				op := linearize.Op{Key: k}
				r := rng.Uint64() % 100
				if pct := uint64(o.LookupPct); pct > 0 {
					if r < pct {
						// Out-of-range r falls through every case below to
						// the default arm, which is Lookup.
						r = 100
					} else {
						// Rescale the residual draw so the other ops keep
						// their relative weights.
						r = (r - pct) * 100 / (100 - pct)
					}
				}
				switch {
				case r < 30:
					op.Kind = linearize.Insert
					op.Val = v
					op.Call = cl.Now()
					op.Ok = m.Insert(k, v)
					op.Return = cl.Now()
				case r < 55:
					op.Kind = linearize.Remove
					op.Call = cl.Now()
					op.Ok = m.Remove(k)
					op.Return = cl.Now()
				case r < 83 && o.PointQueries && hasQ:
					op.Kind = linearize.Ceil + linearize.Kind(rng.Uint64()%4)
					var fn func(int64) (int64, int64, bool)
					switch op.Kind {
					case linearize.Ceil:
						fn = q.Ceil
					case linearize.Floor:
						fn = q.Floor
					case linearize.Succ:
						fn = q.Succ
					default:
						fn = q.Pred
					}
					op.Call = cl.Now()
					op.OutKey, op.OutVal, op.Ok = fn(k)
					op.Return = cl.Now()
				case r < 91 && o.Ranges:
					op.Kind = linearize.Range
					op.Lo = k
					op.Hi = k + int64(rng.Uint64()%uint64(o.Universe/2+1))
					op.Call = cl.Now()
					op.Pairs = m.Range(op.Lo, op.Hi, nil)
					op.Return = cl.Now()
				case r < 96 && o.Batches && hasB:
					op.Kind = linearize.Batch
					steps := make([]linearize.Step, 2+rng.Uint64()%3)
					for s := range steps {
						steps[s].Key = int64(rng.Uint64() % uint64(o.Universe))
						switch rng.Uint64() % 3 {
						case 0:
							steps[s].Kind = linearize.Insert
							steps[s].Val = v | int64(s)
						case 1:
							steps[s].Kind = linearize.Remove
						default:
							steps[s].Kind = linearize.Lookup
						}
					}
					op.Steps = steps
					op.Call = cl.Now()
					applied := b.Batch(steps)
					op.Return = cl.Now()
					if !applied {
						// Rejected wholesale (e.g. cross-shard on an
						// isolated map): a rollback leaves no trace, so
						// there is nothing to linearize.
						continue
					}
				default:
					op.Kind = linearize.Lookup
					op.Call = cl.Now()
					op.OutVal, op.Ok = m.Lookup(k)
					op.Return = cl.Now()
				}
				cl.Add(op)
			}
		}(c, clients[c])
		if o.Scheduler != nil {
			// Deterministic start order: wait for this worker to park at
			// its first instrumentation point before starting the next.
			deadline := time.Now().Add(20 * time.Second)
			for o.Scheduler.Waiting() != c+1 && time.Now().Before(deadline) {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}
	if o.Scheduler != nil {
		o.Scheduler.Release()
	}
	wg.Wait()
	return linearize.Merge(clients...)
}

// linSeeds are the workload seeds every linearizability phase runs.
var linSeeds = []uint64{1, 7, 42}

// checkWorkload records one seeded workload on a fresh map and verifies
// the history, failing the test with a reproducible report on a
// violation.
func checkWorkload(t *testing.T, newMap Factory, o WorkloadOptions) {
	t.Helper()
	m := newMap()
	h := RecordHistory(m, o)
	res := linearize.Check(h)
	// The structural audit is valid (and wanted) regardless of the
	// checker's verdict.
	checkQuiescent(t, m)
	if res.Unknown {
		t.Logf("seed %d: checker budget exhausted on a %d-key partition (%d ops); inconclusive",
			o.Seed, len(res.PartitionKeys), len(res.Ops))
		return
	}
	if !res.Ok {
		t.Fatalf("non-linearizable history (seed %d, partition keys %v):\n%s",
			o.Seed, res.PartitionKeys, linearize.FormatOps(res.Ops))
	}
}

// RunLinearizability records and machine-checks invoke/return histories
// against the sequential ordered-map model across several phases:
// contended single-key traffic (checked per key), mixed traffic with
// range and point queries (one fused partition), atomic batches, and —
// for maps exposing their STM runtime — the same traffic under seeded
// fault injection and under the deterministic step scheduler.
func RunLinearizability(t *testing.T, newMap Factory) {
	probe := newMap()
	_, hasQ := probe.(Queryable)
	_, hasB := probe.(Batcher)
	_, hasHooks := probe.(HookInstaller)

	t.Run("PerKey", func(t *testing.T) {
		for _, seed := range linSeeds {
			checkWorkload(t, newMap, WorkloadOptions{
				Clients: 4, OpsPerClient: 150, Universe: 8, Seed: seed,
			})
		}
	})
	t.Run("Mixed", func(t *testing.T) {
		for _, seed := range linSeeds {
			checkWorkload(t, newMap, WorkloadOptions{
				Clients: 3, OpsPerClient: 50, Universe: 8, Seed: seed,
				PointQueries: hasQ, Ranges: true,
			})
		}
	})
	t.Run("Batch", func(t *testing.T) {
		if !hasB {
			t.Skip("map does not implement atomic batches")
		}
		for _, seed := range linSeeds {
			checkWorkload(t, newMap, WorkloadOptions{
				Clients: 3, OpsPerClient: 60, Universe: 6, Seed: seed,
				Batches: true,
			})
		}
	})
	runHookedPhases(t, newMap, hasHooks)
}

// RunLinearizabilityPerKey is the subset of RunLinearizability whose
// guarantees survive isolated shards: single-key operations and batches
// stay linearizable (cross-shard batches are rejected wholesale), while
// multi-shard ranges and point queries — which merge per-shard
// snapshots taken at distinct instants — are excluded by design.
func RunLinearizabilityPerKey(t *testing.T, newMap Factory) {
	probe := newMap()
	_, hasB := probe.(Batcher)
	_, hasHooks := probe.(HookInstaller)

	t.Run("PerKey", func(t *testing.T) {
		for _, seed := range linSeeds {
			checkWorkload(t, newMap, WorkloadOptions{
				Clients: 4, OpsPerClient: 150, Universe: 8, Seed: seed,
			})
		}
	})
	t.Run("Batch", func(t *testing.T) {
		if !hasB {
			t.Skip("map does not implement atomic batches")
		}
		for _, seed := range linSeeds {
			checkWorkload(t, newMap, WorkloadOptions{
				Clients: 3, OpsPerClient: 60, Universe: 6, Seed: seed,
				Batches: true,
			})
		}
	})
	runHookedPhases(t, newMap, hasHooks)
}

// runHookedPhases runs the fault-injection and deterministic-schedule
// phases for maps that expose their STM runtime.
func runHookedPhases(t *testing.T, newMap Factory, hasHooks bool) {
	t.Run("Faults", func(t *testing.T) {
		if !hasHooks {
			t.Skip("map does not expose STM hooks")
		}
		for _, seed := range linSeeds {
			m := newMap()
			inj := stm.NewAbortInjector(seed, 1, 4)
			m.(HookInstaller).InstallSTMHooks(inj)
			h := RecordHistory(m, WorkloadOptions{
				Clients: 4, OpsPerClient: 120, Universe: 8, Seed: seed,
			})
			m.(HookInstaller).InstallSTMHooks(nil)
			if inj.Aborts() == 0 {
				t.Fatalf("seed %d: fault injector never aborted an attempt (%d firings)",
					seed, inj.Injected())
			}
			res := linearize.Check(h)
			if !res.Ok && !res.Unknown {
				t.Fatalf("injected aborts broke linearizability (seed %d):\n%s",
					seed, linearize.FormatOps(res.Ops))
			}
			checkQuiescent(t, m)
		}
	})
	t.Run("Scheduled", func(t *testing.T) {
		if !hasHooks {
			t.Skip("map does not expose STM hooks")
		}
		for _, seed := range linSeeds {
			m := newMap()
			sched := stm.NewStepScheduler(seed)
			m.(HookInstaller).InstallSTMHooks(sched)
			h := RecordHistory(m, WorkloadOptions{
				Clients: 3, OpsPerClient: 40, Universe: 4, Seed: seed,
				Scheduler: sched,
			})
			m.(HookInstaller).InstallSTMHooks(nil)
			if sched.Steps() == 0 {
				t.Fatalf("seed %d: step scheduler made no decisions", seed)
			}
			res := linearize.Check(h)
			if !res.Ok && !res.Unknown {
				t.Fatalf("scheduled interleaving not linearizable (seed %d):\n%s",
					seed, linearize.FormatOps(res.Ops))
			}
			checkQuiescent(t, m)
		}
	})
}
