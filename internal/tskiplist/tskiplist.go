// Package tskiplist implements a transactional doubly linked skip list:
// the ordered half of the skip hash composition, and — standalone — the
// paper's "Skip List (STM)" baseline for workloads without range queries.
//
// Every node embeds one ownership record guarding its value and all of
// its links. Double-linking is what STM buys the design: a node found by
// any means can be unstitched in O(height) without a fresh traversal, at
// the cost of twice the writes per stitch relative to singly linked
// lock-free skip lists (§3).
package tskiplist

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"repro/internal/stm"
)

// DefaultMaxLevel matches the evaluation configuration: 20 levels,
// because 2^20 slightly exceeds the 10^6 key universe (§5.1).
const DefaultMaxLevel = 20

// Map is a transactional ordered map backed by a doubly linked skip list.
type Map[K any, V any] struct {
	rt       *stm.Runtime
	less     func(a, b K) bool
	maxLevel int
	head     *node[K, V]
	tail     *node[K, V]
}

type node[K any, V any] struct {
	orec     stm.Orec
	key      K    // immutable
	sentinel int8 // 0 interior, -1 head, +1 tail
	val      stm.Val[V]
	// prev[l] and next[l] are the level-l neighbors, guarded by orec.
	// len(prev) == len(next) == the node's height.
	prev []stm.Ptr[node[K, V]]
	next []stm.Ptr[node[K, V]]
}

func (n *node[K, V]) height() int { return len(n.next) }

// New creates an empty skip list ordered by less with the given maximum
// tower height. maxLevel below 1 panics.
func New[K any, V any](rt *stm.Runtime, less func(a, b K) bool, maxLevel int) *Map[K, V] {
	if maxLevel < 1 {
		panic("tskiplist: maxLevel must be positive")
	}
	m := &Map[K, V]{rt: rt, less: less, maxLevel: maxLevel}
	m.head = newNode[K, V](maxLevel)
	m.head.sentinel = -1
	m.tail = newNode[K, V](maxLevel)
	m.tail.sentinel = 1
	for l := 0; l < maxLevel; l++ {
		m.head.next[l].Init(m.tail)
		m.tail.prev[l].Init(m.head)
	}
	return m
}

func newNode[K any, V any](height int) *node[K, V] {
	return &node[K, V]{
		prev: make([]stm.Ptr[node[K, V]], height),
		next: make([]stm.Ptr[node[K, V]], height),
	}
}

// Runtime returns the STM runtime the list was created with.
func (m *Map[K, V]) Runtime() *stm.Runtime { return m.rt }

// RandomHeight draws a height from the geometric distribution with
// p = 1/2 in [1, maxLevel], as specified for node insertion in §3.
func (m *Map[K, V]) RandomHeight() int {
	h := bits.TrailingZeros64(rand.Uint64()|(1<<63)) + 1
	if h > m.maxLevel {
		h = m.maxLevel
	}
	return h
}

// keyLess orders nodes, treating sentinels as infinities.
func (m *Map[K, V]) nodeBeforeKey(n *node[K, V], k K) bool {
	if n.sentinel < 0 {
		return true
	}
	if n.sentinel > 0 {
		return false
	}
	return m.less(n.key, k)
}

// findPreds descends the tower collecting, per level, the rightmost node
// whose key is strictly less than k (sentinels count as -inf/+inf). It
// returns the predecessors and the level-0 successor candidate: the first
// node with key >= k.
func (m *Map[K, V]) findPreds(tx *stm.Tx, k K) (preds []*node[K, V], candidate *node[K, V]) {
	preds = make([]*node[K, V], m.maxLevel)
	cur := m.head
	for l := m.maxLevel - 1; l >= 0; l-- {
		for {
			nxt := cur.next[l].Load(tx, &cur.orec)
			if !m.nodeBeforeKey(nxt, k) {
				break
			}
			cur = nxt
		}
		preds[l] = cur
	}
	return preds, preds[0].next[0].Load(tx, &preds[0].orec)
}

// found reports whether candidate holds exactly key k.
func (m *Map[K, V]) found(candidate *node[K, V], k K) bool {
	return candidate.sentinel == 0 && !m.less(k, candidate.key)
}

// descend returns the level-0 successor candidate for k (the first node
// with key >= k) without materializing the predecessor array; the
// allocation-free path for read-only operations.
func (m *Map[K, V]) descend(tx *stm.Tx, k K) *node[K, V] {
	cur := m.head
	for l := m.maxLevel - 1; l >= 0; l-- {
		for {
			nxt := cur.next[l].Load(tx, &cur.orec)
			if !m.nodeBeforeKey(nxt, k) {
				break
			}
			cur = nxt
		}
	}
	return cur.next[0].Load(tx, &cur.orec)
}

// GetTx looks k up within an enclosing transaction.
func (m *Map[K, V]) GetTx(tx *stm.Tx, k K) (V, bool) {
	c := m.descend(tx, k)
	if m.found(c, k) {
		return c.val.Load(tx, &c.orec), true
	}
	var zero V
	return zero, false
}

// InsertTx adds (k, v) if k is absent and reports whether it did.
func (m *Map[K, V]) InsertTx(tx *stm.Tx, k K, v V) bool {
	preds, c := m.findPreds(tx, k)
	if m.found(c, k) {
		return false
	}
	m.stitch(tx, preds, k, v, m.RandomHeight())
	return true
}

// PutTx sets k to v, inserting or overwriting; it reports whether a
// previous value was replaced.
func (m *Map[K, V]) PutTx(tx *stm.Tx, k K, v V) bool {
	preds, c := m.findPreds(tx, k)
	if m.found(c, k) {
		c.val.Store(tx, &c.orec, v)
		return true
	}
	m.stitch(tx, preds, k, v, m.RandomHeight())
	return false
}

// stitch links a fresh node of the given height after preds. The new
// node's own links are initialized without instrumentation: it is
// unpublished until the enclosing transaction commits.
func (m *Map[K, V]) stitch(tx *stm.Tx, preds []*node[K, V], k K, v V, height int) {
	n := newNode[K, V](height)
	n.key = k
	n.val.Init(v)
	for l := 0; l < height; l++ {
		p := preds[l]
		s := p.next[l].Load(tx, &p.orec)
		n.prev[l].Init(p)
		n.next[l].Init(s)
		p.next[l].Store(tx, &p.orec, n)
		s.prev[l].Store(tx, &s.orec, n)
	}
}

// RemoveTx deletes k and reports whether it was present. Double-linking
// makes the unstitch O(height) with no additional traversal once the
// node is in hand.
func (m *Map[K, V]) RemoveTx(tx *stm.Tx, k K) bool {
	_, c := m.findPreds(tx, k)
	if !m.found(c, k) {
		return false
	}
	m.UnstitchTx(tx, c)
	return true
}

// UnstitchTx removes a node from every level it occupies. The node's own
// orec is acquired first so the operation owns everything it reads,
// detecting conflicts with adjacent removals eagerly.
func (m *Map[K, V]) UnstitchTx(tx *stm.Tx, n *node[K, V]) {
	tx.Acquire(&n.orec)
	for l := 0; l < n.height(); l++ {
		p := n.prev[l].Load(tx, &n.orec)
		s := n.next[l].Load(tx, &n.orec)
		p.next[l].Store(tx, &p.orec, s)
		s.prev[l].Store(tx, &s.orec, p)
	}
}

// CeilTx returns the smallest key >= k and its value.
func (m *Map[K, V]) CeilTx(tx *stm.Tx, k K) (K, V, bool) {
	return m.keyOf(tx, m.descend(tx, k))
}

// SuccTx returns the smallest key strictly greater than k and its value.
func (m *Map[K, V]) SuccTx(tx *stm.Tx, k K) (K, V, bool) {
	c := m.descend(tx, k)
	if m.found(c, k) {
		c = c.next[0].Load(tx, &c.orec)
	}
	return m.keyOf(tx, c)
}

// FloorTx returns the largest key <= k and its value.
func (m *Map[K, V]) FloorTx(tx *stm.Tx, k K) (K, V, bool) {
	c := m.descend(tx, k)
	if m.found(c, k) {
		return m.keyOf(tx, c)
	}
	return m.keyOf(tx, c.prev[0].Load(tx, &c.orec))
}

// PredTx returns the largest key strictly less than k and its value.
func (m *Map[K, V]) PredTx(tx *stm.Tx, k K) (K, V, bool) {
	c := m.descend(tx, k)
	return m.keyOf(tx, c.prev[0].Load(tx, &c.orec))
}

func (m *Map[K, V]) keyOf(tx *stm.Tx, n *node[K, V]) (K, V, bool) {
	if n.sentinel != 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	return n.key, n.val.Load(tx, &n.orec), true
}

// RangeTx appends every pair with l <= key <= r, in key order, to out and
// returns the extended slice. It runs entirely within the enclosing
// transaction, which is the paper's simplest linearizable range query
// (§4, first paragraph); the skip hash core layers the fast/slow path
// machinery on top of this idea.
func (m *Map[K, V]) RangeTx(tx *stm.Tx, l, r K, out []Pair[K, V]) []Pair[K, V] {
	c := m.descend(tx, l)
	for c.sentinel == 0 && !m.less(r, c.key) {
		out = append(out, Pair[K, V]{Key: c.key, Val: c.val.Load(tx, &c.orec)})
		c = c.next[0].Load(tx, &c.orec)
	}
	return out
}

// Pair is a key/value pair returned by range queries.
type Pair[K any, V any] struct {
	Key K
	Val V
}

// Get looks k up in its own transaction.
func (m *Map[K, V]) Get(k K) (V, bool) {
	var v V
	var ok bool
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		v, ok = m.GetTx(tx, k)
		return nil
	})
	return v, ok
}

// Insert adds (k, v) if absent, in its own transaction.
func (m *Map[K, V]) Insert(k K, v V) bool {
	var ok bool
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		ok = m.InsertTx(tx, k, v)
		return nil
	})
	return ok
}

// Remove deletes k in its own transaction.
func (m *Map[K, V]) Remove(k K) bool {
	var ok bool
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		ok = m.RemoveTx(tx, k)
		return nil
	})
	return ok
}

// Range collects [l, r] in its own transaction.
func (m *Map[K, V]) Range(l, r K) []Pair[K, V] {
	var out []Pair[K, V]
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		out = m.RangeTx(tx, l, r, out[:0])
		return nil
	})
	return out
}

// CheckInvariants audits the structure without transactional protection;
// the list must be quiescent. It verifies per-level sortedness, mutual
// prev/next consistency, that every level-l chain is a sub-sequence of
// the level-0 chain, and sentinel integrity.
func (m *Map[K, V]) CheckInvariants() error {
	level0 := make(map[*node[K, V]]bool)
	for cur := m.head.next[0].Raw(); cur != nil && cur.sentinel == 0; cur = cur.next[0].Raw() {
		level0[cur] = true
	}
	for l := m.maxLevel - 1; l >= 0; l-- {
		var prev *node[K, V] = m.head
		for cur := m.head.next[l].Raw(); ; cur = cur.next[l].Raw() {
			if cur == nil {
				return fmt.Errorf("level %d: nil link after %v", l, prev.key)
			}
			if back := cur.prev[l].Raw(); back != prev {
				return fmt.Errorf("level %d: prev of %v is not %v", l, cur.key, prev.key)
			}
			if cur.sentinel > 0 {
				break
			}
			if cur.sentinel < 0 {
				return fmt.Errorf("level %d: head reachable mid-chain", l)
			}
			if prev.sentinel == 0 && !m.less(prev.key, cur.key) {
				return fmt.Errorf("level %d: order violation %v !< %v", l, prev.key, cur.key)
			}
			if cur.height() <= l {
				return fmt.Errorf("level %d: node %v of height %d present", l, cur.key, cur.height())
			}
			if l > 0 && !level0[cur] {
				return fmt.Errorf("level %d: node %v missing from level 0", l, cur.key)
			}
			prev = cur
		}
	}
	return nil
}

// SizeSlow counts interior nodes without transactional protection; the
// list must be quiescent.
func (m *Map[K, V]) SizeSlow() int {
	n := 0
	for cur := m.head.next[0].Raw(); cur.sentinel == 0; cur = cur.next[0].Raw() {
		n++
	}
	return n
}
