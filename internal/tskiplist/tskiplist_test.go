package tskiplist

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
)

func lessInt64(a, b int64) bool { return a < b }

func newTestList(t *testing.T) *Map[int64, int64] {
	t.Helper()
	return New[int64, int64](stm.New(), lessInt64, DefaultMaxLevel)
}

func TestBasicOperations(t *testing.T) {
	m := newTestList(t)
	if _, ok := m.Get(10); ok {
		t.Error("Get on empty list reported present")
	}
	if !m.Insert(10, 100) {
		t.Error("Insert of absent key failed")
	}
	if m.Insert(10, 200) {
		t.Error("Insert of present key succeeded")
	}
	if v, ok := m.Get(10); !ok || v != 100 {
		t.Errorf("Get(10) = %d,%v want 100,true", v, ok)
	}
	if !m.Remove(10) {
		t.Error("Remove of present key failed")
	}
	if m.Remove(10) {
		t.Error("Remove of absent key succeeded")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestOrderedIteration(t *testing.T) {
	m := newTestList(t)
	keys := []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for _, k := range keys {
		m.Insert(k, k*10)
	}
	got := m.Range(0, 9)
	if len(got) != len(keys) {
		t.Fatalf("Range returned %d pairs, want %d", len(got), len(keys))
	}
	for i, p := range got {
		if p.Key != int64(i) || p.Val != int64(i)*10 {
			t.Errorf("pair %d = %+v, want {%d %d}", i, p, i, i*10)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPointQueries(t *testing.T) {
	m := newTestList(t)
	for _, k := range []int64{10, 20, 30} {
		m.Insert(k, k)
	}
	rt := m.Runtime()
	tests := []struct {
		name string
		fn   func(tx *stm.Tx, k int64) (int64, int64, bool)
		k    int64
		want int64
		ok   bool
	}{
		{"ceil present", m.CeilTx, 20, 20, true},
		{"ceil between", m.CeilTx, 15, 20, true},
		{"ceil past end", m.CeilTx, 31, 0, false},
		{"succ present", m.SuccTx, 20, 30, true},
		{"succ between", m.SuccTx, 15, 20, true},
		{"succ of last", m.SuccTx, 30, 0, false},
		{"floor present", m.FloorTx, 20, 20, true},
		{"floor between", m.FloorTx, 25, 20, true},
		{"floor before start", m.FloorTx, 5, 0, false},
		{"pred present", m.PredTx, 20, 10, true},
		{"pred between", m.PredTx, 25, 20, true},
		{"pred of first", m.PredTx, 10, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var k int64
			var ok bool
			_ = rt.Atomic(func(tx *stm.Tx) error {
				k, _, ok = tt.fn(tx, tt.k)
				return nil
			})
			if ok != tt.ok || (ok && k != tt.want) {
				t.Errorf("got %d,%v want %d,%v", k, ok, tt.want, tt.ok)
			}
		})
	}
}

func TestEmptyRangeAndBounds(t *testing.T) {
	m := newTestList(t)
	if got := m.Range(1, 100); len(got) != 0 {
		t.Errorf("Range on empty list = %v, want empty", got)
	}
	m.Insert(50, 1)
	if got := m.Range(60, 100); len(got) != 0 {
		t.Errorf("Range right of key = %v, want empty", got)
	}
	if got := m.Range(0, 49); len(got) != 0 {
		t.Errorf("Range left of key = %v, want empty", got)
	}
	if got := m.Range(50, 50); len(got) != 1 {
		t.Errorf("point Range = %v, want one pair", got)
	}
}

func TestHeightOneList(t *testing.T) {
	// maxLevel 1 degenerates to a doubly linked list; everything must
	// still work.
	m := New[int64, int64](stm.New(), lessInt64, 1)
	for k := int64(0); k < 100; k++ {
		if !m.Insert(k, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	for k := int64(0); k < 100; k += 2 {
		if !m.Remove(k) {
			t.Fatalf("Remove(%d) failed", k)
		}
	}
	if got := m.SizeSlow(); got != 50 {
		t.Fatalf("SizeSlow = %d, want 50", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRandomHeightDistribution(t *testing.T) {
	m := newTestList(t)
	const n = 100000
	counts := make([]int, DefaultMaxLevel+1)
	for i := 0; i < n; i++ {
		h := m.RandomHeight()
		if h < 1 || h > DefaultMaxLevel {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	// Geometric with p=1/2: roughly half the nodes have height 1.
	if counts[1] < n*4/10 || counts[1] > n*6/10 {
		t.Errorf("height-1 fraction = %d/%d, want about half", counts[1], n)
	}
	if counts[2] < n*2/10 || counts[2] > n*3/10 {
		t.Errorf("height-2 fraction = %d/%d, want about a quarter", counts[2], n)
	}
}

func TestQuickVersusModel(t *testing.T) {
	m := newTestList(t)
	model := make(map[int64]int64)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			k := int64(op % 64)
			switch (op / 64) % 3 {
			case 0:
				got := m.Insert(k, k*3)
				_, present := model[k]
				if got == present {
					return false
				}
				if !present {
					model[k] = k * 3
				}
			case 1:
				got := m.Remove(k)
				_, present := model[k]
				if got != present {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := m.Get(k)
				mv, present := model[k]
				if ok != present || (ok && v != mv) {
					return false
				}
			}
		}
		// Compare a full range scan against the sorted model.
		keys := make([]int64, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		got := m.Range(0, 63)
		if len(got) != len(keys) {
			return false
		}
		for i, p := range got {
			if p.Key != keys[i] || p.Val != model[keys[i]] {
				return false
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentChaos(t *testing.T) {
	m := newTestList(t)
	const universe = 256
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0xdead))
			for i := 0; i < iters; i++ {
				k := int64(rng.Uint64() % universe)
				switch rng.Uint64() % 3 {
				case 0:
					m.Insert(k, k)
				case 1:
					m.Remove(k)
				case 2:
					if v, ok := m.Get(k); ok && v != k {
						t.Errorf("Get(%d) returned wrong value %d", k, v)
					}
				}
			}
		}(uint64(g) + 1)
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentRangeConsistency(t *testing.T) {
	// Writers keep pairs (k, k+half) in lockstep membership inside one
	// transaction; every range over the whole universe must observe the
	// pair invariant, proving range snapshots are atomic.
	rt := stm.New()
	m := New[int64, int64](rt, lessInt64, DefaultMaxLevel)
	const half = 128
	for k := int64(0); k < half; k += 2 {
		m.Insert(k, k)
		m.Insert(k+half, k)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			rng := rand.New(rand.NewPCG(seed, seed))
			for i := 0; i < 1500; i++ {
				k := int64(rng.Uint64() % half)
				_ = rt.Atomic(func(tx *stm.Tx) error {
					if _, ok := m.GetTx(tx, k); ok {
						m.RemoveTx(tx, k)
						m.RemoveTx(tx, k+half)
					} else {
						m.InsertTx(tx, k, k)
						m.InsertTx(tx, k+half, k)
					}
					return nil
				})
			}
		}(uint64(g) + 7)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pairs := m.Range(0, 2*half)
			seen := make(map[int64]bool, len(pairs))
			for _, p := range pairs {
				seen[p.Key] = true
			}
			for k := int64(0); k < half; k++ {
				if seen[k] != seen[k+half] {
					t.Errorf("torn range: key %d present=%v partner=%v", k, seen[k], seen[k+half])
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacentRemovals(t *testing.T) {
	// Concurrent removals of neighboring nodes exercise the unstitch
	// conflict window discussed in §3.
	for trial := 0; trial < 20; trial++ {
		m := newTestList(t)
		const n = 64
		for k := int64(0); k < n; k++ {
			m.Insert(k, k)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(start int64) {
				defer wg.Done()
				for k := start; k < n; k += 4 {
					if !m.Remove(k) {
						t.Errorf("Remove(%d) failed", k)
					}
				}
			}(int64(g))
		}
		wg.Wait()
		if got := m.SizeSlow(); got != 0 {
			t.Fatalf("trial %d: %d nodes left, want 0", trial, got)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
