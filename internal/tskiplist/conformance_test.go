package tskiplist

import (
	"testing"

	"repro/internal/maptest"
	"repro/internal/stm"
)

// adapter exposes the STM skip list through the shared conformance
// interface (its single-transaction ranges are trivially linearizable,
// so the full suite applies).
type adapter struct {
	m *Map[int64, int64]
}

func (a adapter) Lookup(k int64) (int64, bool) { return a.m.Get(k) }
func (a adapter) Insert(k, v int64) bool       { return a.m.Insert(k, v) }
func (a adapter) Remove(k int64) bool          { return a.m.Remove(k) }

func (a adapter) Range(l, r int64, buf []maptest.KV) []maptest.KV {
	for _, p := range a.m.Range(l, r) {
		buf = append(buf, maptest.KV{Key: p.Key, Val: p.Val})
	}
	return buf
}

func (a adapter) Ceil(k int64) (int64, int64, bool)  { return a.point(k, a.m.CeilTx) }
func (a adapter) Floor(k int64) (int64, int64, bool) { return a.point(k, a.m.FloorTx) }
func (a adapter) Succ(k int64) (int64, int64, bool)  { return a.point(k, a.m.SuccTx) }
func (a adapter) Pred(k int64) (int64, int64, bool)  { return a.point(k, a.m.PredTx) }

func (a adapter) point(k int64, fn func(*stm.Tx, int64) (int64, int64, bool)) (int64, int64, bool) {
	var rk, rv int64
	var ok bool
	_ = a.m.Runtime().Atomic(func(tx *stm.Tx) error {
		rk, rv, ok = fn(tx, k)
		return nil
	})
	return rk, rv, ok
}

func (a adapter) CheckQuiescent() error { return a.m.CheckInvariants() }

func TestConformance(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return adapter{m: New[int64, int64](stm.New(), lessInt64, DefaultMaxLevel)}
	})
}

func TestConformanceGV1Clock(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		rt := stm.New(stm.WithClock(stm.NewGV1()))
		return adapter{m: New[int64, int64](rt, lessInt64, DefaultMaxLevel)}
	})
}
