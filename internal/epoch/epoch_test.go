package epoch

import (
	"sync"
	"testing"
)

func TestCounterSourceOrdering(t *testing.T) {
	s := NewCounterSource()
	stamp := s.Stamp()
	snap := s.Snapshot()
	if stamp > snap {
		t.Errorf("stamp %d > snapshot %d taken later", stamp, snap)
	}
	after := s.Stamp()
	if after <= snap {
		t.Errorf("stamp %d after snapshot %d is not strictly larger", after, snap)
	}
}

func TestHybridSourceMonotonic(t *testing.T) {
	s := NewHybridSource()
	last := uint64(0)
	for i := 0; i < 10000; i++ {
		v := s.Stamp()
		if v < last {
			t.Fatalf("stamp went backwards: %d after %d", v, last)
		}
		last = v
	}
}

func TestTrackerBeginClosesPruneWindow(t *testing.T) {
	// Begin publishes the pending sentinel before drawing the snapshot,
	// so Min observed concurrently is never larger than the snapshot
	// eventually registered.
	s := NewCounterSource()
	var tr Tracker
	for i := 0; i < 100; i++ {
		s.Snapshot() // advance
	}
	ts, ticket := tr.Begin(s)
	if got := tr.Min(); got > ts {
		t.Errorf("Min = %d > registered snapshot %d", got, ts)
	}
	tr.Exit(ticket)
}

func TestTrackerConcurrentEnterExit(t *testing.T) {
	var tr Tracker
	s := NewCounterSource()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ts, ticket := tr.Begin(s)
				if min := tr.Min(); min > ts {
					t.Errorf("Min %d exceeds own active snapshot %d", min, ts)
					tr.Exit(ticket)
					return
				}
				tr.Exit(ticket)
			}
		}()
	}
	wg.Wait()
	if got := tr.Min(); got != ^uint64(0) {
		t.Errorf("Min after all exits = %d, want empty sentinel", got)
	}
}

func TestTrackerSlotReuse(t *testing.T) {
	var tr Tracker
	tickets := make([]int, 0, trackerSlots)
	for i := 0; i < trackerSlots; i++ {
		tickets = append(tickets, tr.Enter(uint64(i)+5))
	}
	if got := tr.Min(); got != 5 {
		t.Errorf("Min = %d, want 5", got)
	}
	for _, tk := range tickets {
		tr.Exit(tk)
	}
	// All slots free again; a fresh Enter must terminate immediately.
	tk := tr.Enter(99)
	tr.Exit(tk)
}
