// Package epoch provides the snapshot-timestamp machinery shared by the
// evaluation's MVCC baselines (vCAS and bundled references): a timestamp
// source with both a shared-counter and a hardware-clock-style
// implementation, and a tracker of active snapshots that bounds how far
// version/bundle garbage collection may prune.
//
// The paper evaluates each baseline in two flavors: the authors'
// original shared-memory counter and an rdtscp variant from Grimes et
// al. [23] that removes the counter hotspot. CounterSource and
// HybridSource reproduce the two flavors; Hybrid stands in for rdtscp
// using Go's monotonic clock (commits draw nanosecond stamps without
// writing shared memory except on same-nanosecond ties).
package epoch

import (
	"sync/atomic"
	"time"
)

// Source produces snapshot and version timestamps. The contract: a Stamp
// drawn causally after a Snapshot returns a value strictly greater than
// that snapshot; versions stamped at or before a snapshot are visible to
// it (readers keep versions with ts <= snapshot).
type Source interface {
	// Snapshot returns a timestamp for a new range query.
	Snapshot() uint64
	// Stamp returns a timestamp for a freshly installed version.
	Stamp() uint64
	// Name identifies the source in benchmark output.
	Name() string
}

// CounterSource is the original vCAS/bundling camera: a single shared
// counter. Stamps read it; snapshots read-and-advance it, so versions
// installed after a snapshot carry strictly larger stamps. The advance
// makes the counter a contention hotspot under range-heavy load, which
// is exactly the behavior the rdtscp variants eliminate.
type CounterSource struct {
	counter atomic.Uint64
}

// NewCounterSource returns a shared-counter source whose first stamp is 1.
func NewCounterSource() *CounterSource {
	s := &CounterSource{}
	s.counter.Store(1)
	return s
}

// Snapshot reads the counter and attempts to advance it (failures mean
// another snapshot advanced it, which is just as good).
func (s *CounterSource) Snapshot() uint64 {
	ts := s.counter.Load()
	s.counter.CompareAndSwap(ts, ts+1)
	return ts
}

// Stamp reads the counter.
func (s *CounterSource) Stamp() uint64 { return s.counter.Load() }

// Name returns "counter".
func (s *CounterSource) Name() string { return "counter" }

// HybridSource is the rdtscp stand-in: stamps and snapshots are
// monotonic nanoseconds, so neither writes shared memory. Two causally
// ordered draws are separated by far more than the clock granularity, so
// a stamp drawn after a snapshot is strictly larger in practice, which
// is the same granularity argument the rdtscp literature makes.
type HybridSource struct {
	base time.Time
}

// NewHybridSource returns a monotonic-clock source.
func NewHybridSource() *HybridSource {
	return &HybridSource{base: time.Now()}
}

// Snapshot returns the current monotonic nanosecond count.
func (s *HybridSource) Snapshot() uint64 { return uint64(time.Since(s.base)) + 1 }

// Stamp returns the current monotonic nanosecond count.
func (s *HybridSource) Stamp() uint64 { return uint64(time.Since(s.base)) + 1 }

// Name returns "hwclock".
func (s *HybridSource) Name() string { return "hwclock" }

// trackerSlots is sized so unrelated goroutines rarely collide on a slot.
const trackerSlots = 128

// Tracker records the snapshots of in-flight range queries so garbage
// collection of old versions and bundle entries never prunes a version a
// live query still needs. It plays the role of the custom GC epochs in
// the vCAS and bundling papers.
type Tracker struct {
	slots [trackerSlots]paddedSlot
}

type paddedSlot struct {
	ts atomic.Uint64
	_  [7]uint64 // avoid false sharing between neighboring slots
}

// Enter registers an active snapshot and returns a ticket for Exit. It
// probes for a free slot; with more concurrent snapshots than slots it
// shares the oldest-compatible slot conservatively by spinning on probe
// sequence, which only ever delays pruning, never unsafely enables it.
func (t *Tracker) Enter(ts uint64) int {
	for i := 0; ; i++ {
		slot := &t.slots[i%trackerSlots]
		if slot.ts.CompareAndSwap(0, ts) {
			return i % trackerSlots
		}
	}
}

// Begin atomically registers a new snapshot: the slot is first published
// with the minimal timestamp (pausing all pruning) and only then is the
// snapshot drawn, closing the window in which a concurrent pruner could
// discard a version the new snapshot needs.
func (t *Tracker) Begin(src Source) (ts uint64, ticket int) {
	ticket = t.Enter(1)
	ts = src.Snapshot()
	t.slots[ticket].ts.Store(ts)
	return ts, ticket
}

// Exit releases a ticket returned by Enter.
func (t *Tracker) Exit(ticket int) {
	t.slots[ticket].ts.Store(0)
}

// Min returns the smallest active snapshot, or max-uint64 when no
// snapshot is active. Pruning below the returned value is safe: any
// query that enters later will draw a larger snapshot.
func (t *Tracker) Min() uint64 {
	min := ^uint64(0)
	for i := range t.slots {
		if ts := t.slots[i].ts.Load(); ts != 0 && ts < min {
			min = ts
		}
	}
	return min
}
