package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/thashmap"
	"repro/skiphash"
)

// This file is the long-running churn experiment behind the handle
// lifecycle and background-reclamation subsystem: sustained
// remove/insert cycles through the pooled convenience paths, with
// explicit handles created and closed throughout, while dedicated
// goroutines measure range throughput in consecutive windows. Before
// the lifecycle subsystem existed, every removal routed through a
// pooled handle could strand its node stitched-but-deleted, so the
// level-0 chain grew without bound and range throughput decayed
// monotonically window over window; with orphan-queue reclamation (and
// optionally the background maintainer) the backlog stays bounded and
// the series stays flat.

// churnHandle is the explicit-handle face the turnover loop needs; both
// skiphash.Handle and skiphash.ShardedHandle satisfy it.
type churnHandle interface {
	Insert(k, v int64) bool
	Remove(k int64) bool
	Close()
}

// churnSubject adapts one map variant for the churn driver.
type churnSubject struct {
	name      string
	insert    func(k int64) bool
	remove    func(k int64) bool
	rangeLen  func(l, r int64) int
	newHandle func() churnHandle
	backlog   func() int
	handles   func() int
	drained   func() uint64
	quiesce   func()
	close     func()
}

func churnUnsharded(name string, cfg skiphash.Config) *churnSubject {
	m := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg)
	return &churnSubject{
		name:   name,
		insert: func(k int64) bool { return m.Insert(k, k) },
		remove: func(k int64) bool { return m.Remove(k) },
		rangeLen: func(l, r int64) int {
			return len(m.Range(l, r, nil))
		},
		newHandle: func() churnHandle { return m.NewHandle() },
		backlog:   func() int { return liveBacklog(m.StitchedSlow(), m.SizeSlow()) },
		handles:   func() int { return m.HandleCount() },
		drained:   func() uint64 { return m.MaintenanceStats().DrainedNodes },
		quiesce:   func() { m.Quiesce() },
		close:     func() { m.Close() },
	}
}

func churnSharded(name string, cfg skiphash.Config) *churnSubject {
	m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg)
	return &churnSubject{
		name:   fmt.Sprintf("%s-%d", name, m.NumShards()),
		insert: func(k int64) bool { return m.Insert(k, k) },
		remove: func(k int64) bool { return m.Remove(k) },
		rangeLen: func(l, r int64) int {
			return len(m.Range(l, r, nil))
		},
		newHandle: func() churnHandle { return m.NewHandle() },
		backlog:   func() int { return liveBacklog(m.StitchedSlow(), m.SizeSlow()) },
		handles:   func() int { return m.HandleCount() },
		drained:   func() uint64 { return m.MaintenanceStats().DrainedNodes },
		quiesce:   func() { m.Quiesce() },
		close:     func() { m.Close() },
	}
}

// churnSubjects returns constructors for the churn series: the
// unsharded map with the background maintainer, the same map on inline
// threshold reclamation only, and the sharded map with per-shard
// maintainers. Construction is deferred to measurement time so one
// subject's maintainer goroutines never tick during another's windows,
// and an early error cannot leak maps that were never measured.
func churnSubjects() []func() *churnSubject {
	buckets := thashmap.DefaultBuckets
	return []func() *churnSubject{
		func() *churnSubject {
			return churnUnsharded("skiphash-maint", skiphash.Config{Buckets: buckets, Maintenance: true})
		},
		func() *churnSubject {
			return churnUnsharded("skiphash-inline", skiphash.Config{Buckets: buckets})
		},
		func() *churnSubject {
			// Pinned to 4 shards so the series is comparable across hosts.
			return churnSharded("skiphash-sharded-maint", skiphash.Config{Buckets: buckets, Shards: 4, Maintenance: true})
		},
	}
}

// liveBacklog clamps a racily sampled stitched-minus-live reading; the
// two walks are unsynchronized, so mid-churn samples can transiently go
// negative.
func liveBacklog(stitched, live int) int {
	if stitched < live {
		return 0
	}
	return stitched - live
}

// handleTurnoverOps is how many operations each explicit handle performs
// before the worker closes it and opens a fresh one, exercising
// NewHandle/Close churn alongside the pooled convenience traffic.
const handleTurnoverOps = 256

// Churn runs the handle-churn experiment: for each subject,
// opts.Threads/2 (min 1) updater goroutines run remove/insert cycles —
// through the pooled convenience methods, and periodically through
// short-lived explicit handles — while the same number of range
// goroutines measure range throughput, reported per window of
// opts.Duration. A healthy reclamation path shows a flat range series
// and a bounded backlog; a leak shows monotonic decay and a backlog
// growing with every window.
func Churn(w io.Writer, windows int, opts Options) error {
	opts = opts.withDefaults()
	if windows <= 0 {
		windows = 6
	}
	threads := opts.Threads[len(opts.Threads)-1]
	half := threads / 2
	if half < 1 {
		half = 1
	}
	universe := opts.Universe
	rangeSpan := universe / 100
	if rangeSpan < 16 {
		rangeSpan = 16
	}
	fmt.Fprintf(w, "# Churn: %d update + %d range threads, universe %d, %d windows x %v\n",
		half, half, universe, windows, opts.Duration)
	fmt.Fprintf(w, "%-26s %-8s %14s %14s %12s %10s\n",
		"map", "window", "update-Mops/s", "range-Mpairs/s", "backlog", "handles")
	for _, newSub := range churnSubjects() {
		if err := churnOne(w, newSub(), half, windows, universe, rangeSpan, opts); err != nil {
			return err
		}
	}
	return nil
}

func churnOne(w io.Writer, sub *churnSubject, half, windows int, universe, rangeSpan int64, opts Options) error {
	defer sub.close() // idempotent; guarantees maintainer teardown on every path
	seed := opts.Seed + 97
	perm := rand.New(rand.NewPCG(seed, 0x5eed)).Perm(int(universe))
	for i := 0; i < int(universe)/2; i++ {
		sub.insert(int64(perm[i]))
	}

	var updates, rangePairs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < half; t++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed+id, 0xabc1))
			var h churnHandle
			hOps := 0
			for {
				select {
				case <-stop:
					if h != nil {
						h.Close()
					}
					return
				default:
				}
				for i := 0; i < 64; i++ {
					k := int64(rng.Uint64() % uint64(universe))
					if h == nil {
						// Convenience path: pooled transient handles.
						if rng.Uint64()&1 == 0 {
							sub.remove(k)
						} else {
							sub.insert(k)
						}
					} else {
						if rng.Uint64()&1 == 0 {
							h.Remove(k)
						} else {
							h.Insert(k, k)
						}
						hOps++
					}
					updates.Add(1)
				}
				// Handle turnover: alternate between pooled convenience
				// traffic and short-lived explicit handles.
				if h == nil && rng.Uint64()%8 == 0 {
					h = sub.newHandle()
					hOps = 0
				} else if h != nil && hOps >= handleTurnoverOps {
					h.Close()
					h = nil
				}
			}
		}(uint64(t) + 1)
	}
	for t := 0; t < half; t++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed+id, 0xabc2))
			for {
				select {
				case <-stop:
					return
				default:
				}
				l := int64(rng.Uint64() % uint64(universe))
				n := sub.rangeLen(l, l+rangeSpan)
				rangePairs.Add(uint64(n))
			}
		}(uint64(t) + 101)
	}

	var firstRange, lastRange float64
	for win := 0; win < windows; win++ {
		u0, p0 := updates.Load(), rangePairs.Load()
		began := time.Now()
		time.Sleep(opts.Duration)
		elapsed := time.Since(began).Seconds()
		du := updates.Load() - u0
		dp := rangePairs.Load() - p0
		updMops := float64(du) / 1e6 / elapsed
		rngMpairs := float64(dp) / 1e6 / elapsed
		backlog := sub.backlog()
		handles := sub.handles()
		if win == 0 {
			firstRange = rngMpairs
		}
		lastRange = rngMpairs
		fmt.Fprintf(w, "%-26s %-8d %14.2f %14.2f %12d %10d\n",
			sub.name, win, updMops, rngMpairs, backlog, handles)
		if opts.CSV != nil {
			fmt.Fprintf(opts.CSV, "churn,%s,%d,%.4f,%.4f,%d,%d\n",
				sub.name, win, updMops, rngMpairs, backlog, handles)
		}
		if opts.Report != nil {
			win, backlog, handles, drained := win, backlog, handles, sub.drained()
			opts.Report.Add(Row{
				Experiment: "churn", Map: sub.name, Threads: 2 * half, Window: &win,
				Universe: universe, UpdateMops: updMops, RangeMpairs: rngMpairs,
				Backlog: &backlog, Handles: &handles, Drained: &drained,
			})
		}
	}
	close(stop)
	wg.Wait()
	sub.quiesce()
	finalBacklog := sub.backlog()
	fmt.Fprintf(w, "%-26s quiesced: backlog %d, handles %d, drained %d, range first->last %.2f -> %.2f Mpairs/s\n",
		sub.name, finalBacklog, sub.handles(), sub.drained(), firstRange, lastRange)
	if finalBacklog != 0 {
		return fmt.Errorf("bench: %s left %d stitched logically-deleted nodes after quiesce", sub.name, finalBacklog)
	}
	return nil
}
