package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func tinyOptions() Options {
	return Options{
		Duration: 30 * time.Millisecond,
		Trials:   1,
		Universe: 4096,
		Threads:  []int{2},
	}
}

func TestPrefillPopulatesAboutHalf(t *testing.T) {
	m := NewSkipHash("two-path", 1021)
	universe := int64(10000)
	pop := Prefill(m, universe, 3)
	if pop < universe*4/10 || pop > universe*6/10 {
		t.Errorf("population = %d, want about %d", pop, universe/2)
	}
	w := m.NewWorker()
	if got := w.Range(0, universe); int64(got) != pop {
		t.Errorf("full range sees %d pairs, prefill reported %d", got, pop)
	}
}

func TestRunProducesThroughput(t *testing.T) {
	m := NewSkipHash("two-path", 1021)
	res := Run(m, Workload{Name: "mix", LookupPct: 80, UpdatePct: 10, RangePct: 10, Universe: 4096},
		RunConfig{Threads: 4, Duration: 50 * time.Millisecond})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.RangeOps == 0 {
		t.Error("no range queries completed in a 10% range mix")
	}
	if res.Mops() <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestRunSplitSeparatesRoles(t *testing.T) {
	m := NewBundleSkip("hwclock")
	res := RunSplit(m, 2, 2, 64, 4096, RunConfig{Duration: 50 * time.Millisecond})
	if res.UpdateOps == 0 {
		t.Error("update threads made no progress")
	}
	if res.RangeOps == 0 {
		t.Error("range threads made no progress")
	}
}

func TestAllAdaptersRunAllWorkloads(t *testing.T) {
	factories := append(Fig5Maps(true),
		MapFactory{Name: "bst-vcas-counter", New: func() Map { return NewVcasBST("counter") }},
		MapFactory{Name: "skiplist-vcas-counter", New: func() Map { return NewVcasSkip("counter") }},
		MapFactory{Name: "skiplist-bundled-counter", New: func() Map { return NewBundleSkip("counter") }},
	)
	for _, mf := range factories {
		mf := mf
		t.Run(mf.Name, func(t *testing.T) {
			t.Parallel()
			m := mf.New()
			wl := Workload{LookupPct: 50, UpdatePct: 40, RangePct: 10, Universe: 2048}
			if !m.SupportsRange() {
				wl = Workload{LookupPct: 60, UpdatePct: 40, Universe: 2048}
			}
			res := Run(m, wl, RunConfig{Threads: 2, Duration: 30 * time.Millisecond})
			if res.Ops == 0 {
				t.Error("no operations completed")
			}
		})
	}
}

func TestFig5Driver(t *testing.T) {
	var out, csv bytes.Buffer
	opts := tinyOptions()
	opts.CSV = &csv
	if err := Fig5(&out, "d", opts); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "skiphash-two-path") {
		t.Errorf("missing series in output:\n%s", text)
	}
	if !strings.Contains(csv.String(), "fig5d,skiphash-two-path,2,") {
		t.Errorf("missing CSV rows:\n%s", csv.String())
	}
}

func TestFig5RejectsUnknownLetter(t *testing.T) {
	var out bytes.Buffer
	if err := Fig5(&out, "z", tinyOptions()); err == nil {
		t.Error("expected error for unknown workload letter")
	}
}

func TestTable1Driver(t *testing.T) {
	var out bytes.Buffer
	opts := tinyOptions()
	if err := Table1(&out, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "aborts/query") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestThreadCountsBounded(t *testing.T) {
	counts := ThreadCounts()
	if len(counts) == 0 || counts[0] != 1 {
		t.Fatalf("ThreadCounts = %v", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Errorf("ThreadCounts not increasing: %v", counts)
		}
	}
}

func TestWorkloadDefaults(t *testing.T) {
	w := Workload{}.withDefaults()
	if w.Universe != 1_000_000 || w.RangeLen != 100 {
		t.Errorf("defaults = %+v", w)
	}
}

// TestMetricsRegistryMatchesRows cross-checks the two reporting paths:
// the obs registry a run banks into must agree exactly with the sums
// over the JSON rows, since both are filled from the same deltas.
func TestMetricsRegistryMatchesRows(t *testing.T) {
	var out bytes.Buffer
	opts := tinyOptions()
	opts.Report = &Report{}
	opts.Metrics = obs.NewRegistry()
	if err := Fig5(&out, "d", opts); err != nil {
		t.Fatal(err)
	}
	rows := opts.Report.Rows()
	if len(rows) == 0 {
		t.Fatal("no rows reported")
	}
	var commits, aborts, fastHits uint64
	for _, r := range rows {
		commits += r.Commits
		aborts += r.Aborts
		fastHits += r.FastReadHits
	}
	got := map[string]float64{}
	for _, s := range opts.Metrics.Samples() {
		got[s.Name] = s.Value
	}
	if got["skipbench_rows_total"] != float64(len(rows)) {
		t.Errorf("registry rows = %v, report has %d", got["skipbench_rows_total"], len(rows))
	}
	if got["skipbench_commits_total"] != float64(commits) {
		t.Errorf("registry commits = %v, rows sum to %d", got["skipbench_commits_total"], commits)
	}
	if got["skipbench_aborts_total"] != float64(aborts) {
		t.Errorf("registry aborts = %v, rows sum to %d", got["skipbench_aborts_total"], aborts)
	}
	if got["skipbench_fastread_hits_total"] != float64(fastHits) {
		t.Errorf("registry fast-read hits = %v, rows sum to %d", got["skipbench_fastread_hits_total"], fastHits)
	}
	if commits == 0 {
		t.Error("measured window recorded zero commits")
	}
}
