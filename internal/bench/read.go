package bench

import (
	"fmt"
	"io"
)

// ReadWorkloads are the mixes the read-fast-path experiment sweeps: pure
// lookups (the fast path's best case) and a 90/10 mix (writers keep the
// bucket orecs moving, exercising the fallback).
var ReadWorkloads = []Workload{
	{Name: "100% lookup", LookupPct: 100},
	{Name: "90% lookup, 10% update", LookupPct: 90, UpdatePct: 10},
}

// ReadMaps returns the read-experiment series: the two-path skip hash
// with the optimistic read fast path (the default configuration), the
// same map with the fast path disabled — the pre-fast-path transactional
// Get, so the pair isolates exactly the tentpole's effect — and the
// sharded frontend, which inherits the fast path through its per-shard
// handles.
func ReadMaps() []MapFactory {
	return []MapFactory{
		{Name: "skiphash-two-path", New: func() Map { return NewSkipHash("two-path", 0) }},
		{Name: "skiphash-txread", New: func() Map { return NewSkipHash("txread", 0) }},
		{Name: "skiphash-sharded", New: func() Map { return NewShardedSkipHash(0, 0, false) }},
	}
}

// ReadBench sweeps thread counts for each of ReadWorkloads over
// ReadMaps and prints a throughput table; with opts.Report set it
// records "read" rows carrying the fast-read hit/fallback counters, the
// series benchdiff gates via BENCH_read.json.
func ReadBench(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	maps := ReadMaps()
	fmt.Fprintf(w, "# Read fast path: universe %d, %v x %d trials\n",
		opts.Universe, opts.Duration, opts.Trials)
	for _, wl := range ReadWorkloads {
		wl.Universe = opts.Universe
		fmt.Fprintf(w, "\n## %s\n%-8s", wl.Name, "threads")
		for _, mf := range maps {
			fmt.Fprintf(w, " %24s", mf.Name)
		}
		fmt.Fprintf(w, " %10s\n", "hit-rate")
		for _, threads := range opts.Threads {
			fmt.Fprintf(w, "%-8d", threads)
			var hitRate float64
			for _, mf := range maps {
				m := mf.New()
				rc := RunConfig{Threads: threads, Duration: opts.Duration, Trials: opts.Trials, Seed: opts.Seed + 53}
				Prefill(m, wl.Universe, rc.Seed+1)
				stmBefore, rqBefore := subjectSnapshots(m)
				res := RunTrials(m, wl, rc)
				row := Row{Experiment: "read", Workload: wl.Name, Map: mf.Name, Threads: threads,
					Universe: wl.Universe, Mops: res.Mops()}
				fillSubjectStats(&row, m, stmBefore, rqBefore, opts.Metrics)
				fmt.Fprintf(w, " %24.2f", res.Mops())
				if total := row.FastReadHits + row.FastReadFallbacks; total > 0 {
					hitRate = float64(row.FastReadHits) / float64(total)
				}
				if opts.CSV != nil {
					fmt.Fprintf(opts.CSV, "read,%q,%s,%d,%.4f,%d,%d\n",
						wl.Name, mf.Name, threads, res.Mops(), row.FastReadHits, row.FastReadFallbacks)
				}
				if opts.Report != nil {
					opts.Report.Add(row)
				}
			}
			// hitRate is the last fast-path-enabled series' rate in this
			// row (the sharded subject); the JSON rows carry every series'
			// exact counters.
			fmt.Fprintf(w, " %10.4f\n", hitRate)
		}
	}
	return nil
}
