// Package bench is the evaluation harness: it reproduces the
// microbenchmark methodology of the paper's §5 (which follows Grimes et
// al. [23]) over every map implementation in this repository, and drives
// the experiments behind Figures 5 and 6 and Table 1.
//
// Worker threads perform lookups, updates (an even split of insertions
// and removals), and range queries in workload-specified proportions
// over a uniform key universe. Maps are pre-filled to half the universe;
// range queries copy all pairs in [l, l+len] into a pre-allocated
// buffer. Throughput is reported in millions of operations per second.
package bench

import (
	"fmt"

	"repro/internal/baseline/bundleskip"
	"repro/internal/baseline/vcasbst"
	"repro/internal/baseline/vcasskip"
	"repro/internal/epoch"
	"repro/internal/kv"
	"repro/internal/stm"
	"repro/internal/thashmap"
	"repro/internal/tskiplist"
	"repro/skiphash"
)

// Map is a benchmark subject: a named factory of per-thread workers.
type Map interface {
	// Name identifies the map in reports (matches the paper's series).
	Name() string
	// NewWorker returns a worker context owned by one goroutine.
	NewWorker() Worker
	// SupportsRange reports whether range queries are implemented.
	SupportsRange() bool
}

// Worker is the per-goroutine face of a Map. Implementations reuse
// buffers; results of Range report how many pairs were copied.
type Worker interface {
	Lookup(k int64) bool
	Insert(k, v int64) bool
	Remove(k int64) bool
	Range(l, r int64) int
}

// RangePathStats is implemented by subjects that can report fast/slow
// path counters (the skip hash variants); Table 1 needs it.
type RangePathStats interface {
	RangeStats() skiphash.RangeStats
}

// STMStatsSource is implemented by subjects that can report STM
// commit/abort counters; the JSON report derives abort rates from it.
type STMStatsSource interface {
	STMStats() stm.Stats
}

// --- Skip hash variants -------------------------------------------------

// SkipHash wraps a skip hash variant for the harness.
type SkipHash struct {
	m    *skiphash.Map[int64, int64]
	name string
}

// NewSkipHash builds the skip hash series: mode is "two-path", "fast",
// "slow" (the paper's three variants), "adaptive" (this repo's
// extension), or "txread" (the read-fast-path ablation: every point
// read runs the full STM transaction). buckets of 0 selects the paper's
// table size.
func NewSkipHash(mode string, buckets int) *SkipHash {
	if buckets == 0 {
		buckets = thashmap.DefaultBuckets
	}
	cfg := skiphash.Config{Buckets: buckets}
	name := "skiphash-two-path"
	switch mode {
	case "fast":
		cfg.FastOnly = true
		name = "skiphash-fast-only"
	case "slow":
		cfg.SlowOnly = true
		name = "skiphash-slow-only"
	case "adaptive":
		cfg.Adaptive = true
		name = "skiphash-adaptive"
	case "txread":
		cfg.DisableReadFastPath = true
		name = "skiphash-txread"
	case "", "two-path":
	default:
		panic(fmt.Sprintf("bench: unknown skip hash mode %q", mode))
	}
	return &SkipHash{m: skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg), name: name}
}

// Name implements Map.
func (s *SkipHash) Name() string { return s.name }

// SupportsRange implements Map.
func (s *SkipHash) SupportsRange() bool { return true }

// RangeStats implements RangePathStats.
func (s *SkipHash) RangeStats() skiphash.RangeStats { return s.m.RangeStats() }

// STMStats implements STMStatsSource.
func (s *SkipHash) STMStats() stm.Stats { return s.m.Runtime().Stats() }

// NewWorker implements Map.
func (s *SkipHash) NewWorker() Worker {
	return &skipHashWorker{h: s.m.NewHandle()}
}

type skipHashWorker struct {
	h   *skiphash.Handle[int64, int64]
	buf []skiphash.Pair[int64, int64]
}

func (w *skipHashWorker) Lookup(k int64) bool {
	_, ok := w.h.Lookup(k)
	return ok
}
func (w *skipHashWorker) Insert(k, v int64) bool { return w.h.Insert(k, v) }
func (w *skipHashWorker) Remove(k int64) bool    { return w.h.Remove(k) }
func (w *skipHashWorker) Range(l, r int64) int {
	w.buf = w.h.Range(l, r, w.buf[:0])
	return len(w.buf)
}

// --- Sharded skip hash ---------------------------------------------------

// ShardedSkipHash wraps the hash-partitioned skip hash (the series this
// repository adds beyond the paper): S independent shards behind the
// same ordered-map interface.
type ShardedSkipHash struct {
	m    *skiphash.Sharded[int64, int64]
	name string
}

// NewShardedSkipHash builds the sharded series. shards of 0 derives the
// partition count from GOMAXPROCS; buckets of 0 selects the paper's
// total table size, split across shards. isolated selects per-shard STM
// runtimes instead of the default shared one.
func NewShardedSkipHash(shards, buckets int, isolated bool) *ShardedSkipHash {
	if buckets == 0 {
		buckets = thashmap.DefaultBuckets
	}
	cfg := skiphash.Config{Buckets: buckets, Shards: shards, IsolatedShards: isolated}
	m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg)
	name := fmt.Sprintf("skiphash-sharded-%d", m.NumShards())
	if isolated {
		name += "-iso"
	}
	return &ShardedSkipHash{m: m, name: name}
}

// Name implements Map.
func (s *ShardedSkipHash) Name() string { return s.name }

// NumShards reports the resolved partition count, for report rows.
func (s *ShardedSkipHash) NumShards() int { return s.m.NumShards() }

// SupportsRange implements Map.
func (s *ShardedSkipHash) SupportsRange() bool { return true }

// RangeStats implements RangePathStats.
func (s *ShardedSkipHash) RangeStats() skiphash.RangeStats { return s.m.RangeStats() }

// STMStats implements STMStatsSource.
func (s *ShardedSkipHash) STMStats() stm.Stats { return s.m.STMStats() }

// NewWorker implements Map.
func (s *ShardedSkipHash) NewWorker() Worker {
	return &shardedWorker{h: s.m.NewHandle()}
}

type shardedWorker struct {
	h   *skiphash.ShardedHandle[int64, int64]
	buf []skiphash.Pair[int64, int64]
}

func (w *shardedWorker) Lookup(k int64) bool {
	_, ok := w.h.Lookup(k)
	return ok
}
func (w *shardedWorker) Insert(k, v int64) bool { return w.h.Insert(k, v) }
func (w *shardedWorker) Remove(k int64) bool    { return w.h.Remove(k) }
func (w *shardedWorker) Range(l, r int64) int {
	w.buf = w.h.Range(l, r, w.buf[:0])
	return len(w.buf)
}

// --- vCAS BST ------------------------------------------------------------

// VcasBST wraps the vCAS leaf-oriented BST.
type VcasBST struct {
	m   *vcasbst.Map
	src string
}

// NewVcasBST builds the baseline with the given timestamp source
// ("hwclock" reproduces the paper's preferred rdtscp variant,
// "counter" the original).
func NewVcasBST(source string) *VcasBST {
	return &VcasBST{m: vcasbst.New(vcasbst.Config{Source: sourceByName(source)}), src: source}
}

// Name implements Map.
func (s *VcasBST) Name() string { return "bst-vcas-" + s.src }

// SupportsRange implements Map.
func (s *VcasBST) SupportsRange() bool { return true }

// NewWorker implements Map.
func (s *VcasBST) NewWorker() Worker { return &kvWorker{m: s.m} }

// --- vCAS skip list -------------------------------------------------------

// VcasSkip wraps the vCAS lock-free skip list.
type VcasSkip struct {
	m   *vcasskip.Map
	src string
}

// NewVcasSkip builds the baseline with the given timestamp source.
func NewVcasSkip(source string) *VcasSkip {
	return &VcasSkip{m: vcasskip.New(vcasskip.Config{Source: sourceByName(source)}), src: source}
}

// Name implements Map.
func (s *VcasSkip) Name() string { return "skiplist-vcas-" + s.src }

// SupportsRange implements Map.
func (s *VcasSkip) SupportsRange() bool { return true }

// NewWorker implements Map.
func (s *VcasSkip) NewWorker() Worker { return &kvWorker{m: s.m} }

// --- Bundled skip list ----------------------------------------------------

// BundleSkip wraps the bundled-references lazy skip list.
type BundleSkip struct {
	m   *bundleskip.Map
	src string
}

// NewBundleSkip builds the baseline with the given timestamp source.
func NewBundleSkip(source string) *BundleSkip {
	return &BundleSkip{m: bundleskip.New(bundleskip.Config{Source: sourceByName(source)}), src: source}
}

// Name implements Map.
func (s *BundleSkip) Name() string { return "skiplist-bundled-" + s.src }

// SupportsRange implements Map.
func (s *BundleSkip) SupportsRange() bool { return true }

// NewWorker implements Map.
func (s *BundleSkip) NewWorker() Worker { return &kvWorker{m: s.m} }

// kvWorker adapts any map with the native int64 interface.
type kvWorker struct {
	m interface {
		Lookup(k int64) (int64, bool)
		Insert(k, v int64) bool
		Remove(k int64) bool
		Range(l, r int64, buf []kv.KV) []kv.KV
	}
	buf []kv.KV
}

func (w *kvWorker) Lookup(k int64) bool {
	_, ok := w.m.Lookup(k)
	return ok
}
func (w *kvWorker) Insert(k, v int64) bool { return w.m.Insert(k, v) }
func (w *kvWorker) Remove(k int64) bool    { return w.m.Remove(k) }
func (w *kvWorker) Range(l, r int64) int {
	w.buf = w.m.Range(l, r, w.buf[:0])
	return len(w.buf)
}

// --- STM skip list (no range metadata) -------------------------------------

// StmSkip wraps the plain transactional skip list (elemental workloads
// only in the paper's charts; its single-transaction range is available
// for completeness).
type StmSkip struct {
	m *tskiplist.Map[int64, int64]
}

// NewStmSkip builds the "Skip List (STM)" baseline.
func NewStmSkip() *StmSkip {
	return &StmSkip{m: tskiplist.New[int64, int64](stm.New(), func(a, b int64) bool { return a < b }, tskiplist.DefaultMaxLevel)}
}

// Name implements Map.
func (s *StmSkip) Name() string { return "skiplist-stm" }

// SupportsRange implements Map.
func (s *StmSkip) SupportsRange() bool { return false }

// NewWorker implements Map.
func (s *StmSkip) NewWorker() Worker { return &stmSkipWorker{m: s.m} }

type stmSkipWorker struct {
	m   *tskiplist.Map[int64, int64]
	buf []tskiplist.Pair[int64, int64]
}

func (w *stmSkipWorker) Lookup(k int64) bool {
	_, ok := w.m.Get(k)
	return ok
}
func (w *stmSkipWorker) Insert(k, v int64) bool { return w.m.Insert(k, v) }
func (w *stmSkipWorker) Remove(k int64) bool    { return w.m.Remove(k) }
func (w *stmSkipWorker) Range(l, r int64) int {
	w.buf = w.buf[:0]
	pairs := w.m.Range(l, r)
	w.buf = append(w.buf, pairs...)
	return len(w.buf)
}

// --- STM hash map (no ordering) --------------------------------------------

// StmHash wraps the plain transactional hash map (elemental workloads
// only; it cannot order keys).
type StmHash struct {
	m *thashmap.Map[int64, int64]
}

// NewStmHash builds the "Hash Map (STM)" baseline with the paper's
// bucket count.
func NewStmHash(buckets int) *StmHash {
	if buckets == 0 {
		buckets = thashmap.DefaultBuckets
	}
	return &StmHash{m: thashmap.New[int64, int64](stm.New(), thashmap.Hash64, buckets)}
}

// Name implements Map.
func (s *StmHash) Name() string { return "hashmap-stm" }

// SupportsRange implements Map.
func (s *StmHash) SupportsRange() bool { return false }

// NewWorker implements Map.
func (s *StmHash) NewWorker() Worker { return &stmHashWorker{m: s.m} }

type stmHashWorker struct {
	m *thashmap.Map[int64, int64]
}

func (w *stmHashWorker) Lookup(k int64) bool {
	_, ok := w.m.Get(k)
	return ok
}
func (w *stmHashWorker) Insert(k, v int64) bool { return w.m.Insert(k, v) }
func (w *stmHashWorker) Remove(k int64) bool    { return w.m.Remove(k) }
func (w *stmHashWorker) Range(l, r int64) int {
	panic("bench: hashmap-stm does not support range queries")
}

func sourceByName(name string) epoch.Source {
	switch name {
	case "counter":
		return epoch.NewCounterSource()
	case "", "hwclock":
		return epoch.NewHybridSource()
	default:
		panic(fmt.Sprintf("bench: unknown timestamp source %q", name))
	}
}
