package bench

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
	"repro/skiphash"
	"repro/skiphash/client"
)

// The net experiment measures the serving layer: the sharded skip hash
// behind internal/server, driven over loopback TCP and a unix socket by
// real protocol clients. Two series per transport quantify what the
// access boundary costs and what pipelining buys back:
//
//   - closed-loop: each connection issues one request and waits for its
//     response — the per-op round-trip price (syscalls, scheduling, one
//     STM transaction per op).
//   - pipelined: each connection keeps a window of NetPipelineWindow
//     requests in flight; the server coalesces each burst into a few
//     Atomic transactions and answers with one write. This is the mode
//     the front end is designed around, and the recorded series is
//     expected to clear several multiples of the closed loop.
//
// Workers split evenly between lookups and updates, so the pipelined
// series exercises the batcher's read/write coalescing rather than a
// read-only fast path.

// NetPipelineWindow is the pipelined series' per-connection in-flight
// window.
const NetPipelineWindow = 64

// NetWorkload is the op mix the net experiment drives over the wire.
var NetWorkload = Workload{Name: "50% lookup, 50% update", LookupPct: 50, UpdatePct: 50}

// Net runs the serving-layer experiment: for each transport (local TCP,
// unix socket) and each connection count in opts.Threads, a closed-loop
// and a pipelined series against a freshly prefilled served map.
func Net(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	wl := NetWorkload
	wl.Universe = opts.Universe
	for _, transport := range []string{"tcp", "unix"} {
		if err := netTransport(w, transport, wl, opts); err != nil {
			return err
		}
	}
	return netBytes(w, wl, opts)
}

// NetByteKeyLen is the byte-key series' fixed key and value width: the
// v2 ops carry length-prefixed byte strings, and a fixed width keeps
// the series' per-op payload deterministic.
const NetByteKeyLen = 16

// netKey encodes k as an order-preserving NetByteKeyLen-byte key.
func netKey(k int64) []byte {
	b := make([]byte, NetByteKeyLen)
	binary.BigEndian.PutUint64(b[NetByteKeyLen-8:], uint64(k))
	return b
}

// netBytes records the byte-key serving series: the same mix and sweep
// as the int64 tcp series, but driven through the v2 ops against one
// byte-string namespace, measuring the variable-length codec and the
// namespace executor. Its rows carry KeyBytes and Namespaces identity
// so cmd/benchdiff never compares them against the int64 series.
func netBytes(w io.Writer, wl Workload, opts Options) error {
	subject := NewShardedSkipHash(0, 0, false)
	defer subject.m.Close()
	reg, err := server.NewRegistry(server.RegistryConfig{
		Map: skiphash.Config{Shards: subject.m.NumShards()},
	})
	if err != nil {
		return err
	}
	srv := server.NewWithRegistry(server.NewShardedBackend(subject.m), reg, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-served
	}()
	addr := ln.Addr().String()

	// Create and prefill the namespace through the wire, half the
	// universe, pipelined.
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		return err
	}
	ns, err := cl.CreateNamespace("bench", client.NamespaceOptions{})
	if err != nil {
		cl.Close()
		return err
	}
	nsID := ns.ID()
	rng := rand.New(rand.NewPCG(opts.Seed+71, 0x6b65))
	cn := cl.Conn(0)
	calls := make([]*client.Call, 0, NetPipelineWindow)
	for at := int64(0); at < wl.Universe; at += NetPipelineWindow {
		calls = calls[:0]
		for k := at; k < at+NetPipelineWindow && k < wl.Universe; k++ {
			if rng.Uint64()&1 != 0 {
				continue
			}
			call, err := cn.Start(&wire.Request{Op: wire.OpInsert2, NS: nsID, BKey: netKey(k), BVal: netKey(k)})
			if err != nil {
				cl.Close()
				return err
			}
			calls = append(calls, call)
		}
		if err := cn.Flush(); err != nil {
			cl.Close()
			return err
		}
		for _, call := range calls {
			if _, err := call.Wait(); err != nil {
				cl.Close()
				return err
			}
		}
	}
	cl.Close()

	fmt.Fprintf(w, "# Net (tcp, %d-byte keys, 1 namespace): %s, universe %d, %v x %d trials, served %s, window %d\n",
		NetByteKeyLen, wl.Name, wl.Universe, opts.Duration, opts.Trials, subject.Name(), NetPipelineWindow)
	fmt.Fprintf(w, "%-8s %18s %18s %10s\n", "conns", "closed-loop Mops", "pipelined Mops", "speedup")
	for _, conns := range opts.Threads {
		var mops [2]float64
		for si, window := range []int{1, NetPipelineWindow} {
			res, err := runNetSeriesOps(addr, conns, window, wl, opts, func(req *wire.Request, rng *rand.Rand) {
				die := int(rng.Uint64() % 100)
				k := int64(rng.Uint64() % uint64(wl.Universe))
				switch {
				case die < wl.LookupPct:
					*req = wire.Request{Op: wire.OpGet2, NS: nsID, BKey: netKey(k)}
				default:
					if rng.Uint64()&1 == 0 {
						*req = wire.Request{Op: wire.OpInsert2, NS: nsID, BKey: netKey(k), BVal: netKey(k)}
					} else {
						*req = wire.Request{Op: wire.OpDel2, NS: nsID, BKey: netKey(k)}
					}
				}
			})
			if err != nil {
				return err
			}
			mops[si] = res.Mops()
			if opts.CSV != nil {
				fmt.Fprintf(opts.CSV, "net-bytes,tcp,%d,%d,%.4f\n", conns, window, res.Mops())
			}
			if opts.Report != nil {
				opts.Report.Add(Row{
					Experiment: "net",
					Workload:   wl.Name,
					Map:        subject.Name() + "-served",
					Threads:    conns,
					Shards:     subject.NumShards(),
					Universe:   wl.Universe,
					Transport:  "tcp",
					Pipeline:   window,
					KeyBytes:   NetByteKeyLen,
					Namespaces: 1,
					Mops:       res.Mops(),
				})
			}
		}
		speedup := 0.0
		if mops[0] > 0 {
			speedup = mops[1] / mops[0]
		}
		fmt.Fprintf(w, "%-8d %18.3f %18.3f %9.1fx\n", conns, mops[0], mops[1], speedup)
	}
	return nil
}

// netTransport serves one map over one transport and sweeps connection
// counts.
func netTransport(w io.Writer, transport string, wl Workload, opts Options) error {
	subject := NewShardedSkipHash(0, 0, false)
	defer subject.m.Close()
	srv := server.New(server.NewShardedBackend(subject.m), server.Config{})

	var ln net.Listener
	var err error
	var cleanup func()
	switch transport {
	case "tcp":
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		cleanup = func() {}
	case "unix":
		dir, derr := os.MkdirTemp("", "skipbench-net-*")
		if derr != nil {
			return derr
		}
		ln, err = net.Listen("unix", dir+"/bench.sock")
		cleanup = func() { os.RemoveAll(dir) }
	default:
		return fmt.Errorf("bench: unknown net transport %q", transport)
	}
	if err != nil {
		return err
	}
	defer cleanup()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-served
	}()
	addr := ln.Addr().String()
	network := "tcp"
	if transport == "unix" {
		network = "unix"
	}

	Prefill(subject, wl.Universe, opts.Seed+71)

	fmt.Fprintf(w, "# Net (%s): %s, universe %d, %v x %d trials, served %s, window %d\n",
		transport, wl.Name, wl.Universe, opts.Duration, opts.Trials, subject.Name(), NetPipelineWindow)
	fmt.Fprintf(w, "%-8s %18s %18s %10s\n", "conns", "closed-loop Mops", "pipelined Mops", "speedup")
	for _, conns := range opts.Threads {
		var mops [2]float64
		for si, window := range []int{1, NetPipelineWindow} {
			stmBefore := subject.STMStats()
			res, err := runNetSeries(network, addr, conns, window, wl, opts)
			if err != nil {
				return err
			}
			mops[si] = res.Mops()
			if opts.CSV != nil {
				fmt.Fprintf(opts.CSV, "net,%s,%d,%d,%.4f\n", transport, conns, window, res.Mops())
			}
			if opts.Report != nil {
				d := subject.STMStats().Sub(stmBefore)
				row := Row{
					Experiment: "net",
					Workload:   wl.Name,
					Map:        subject.Name() + "-served",
					Threads:    conns,
					Shards:     subject.NumShards(),
					Universe:   wl.Universe,
					Transport:  transport,
					Pipeline:   window,
					Mops:       res.Mops(),
					Commits:    d.Commits,
					Aborts:     d.Aborts,
				}
				if total := d.Commits + d.Aborts; total > 0 {
					row.AbortRate = float64(d.Aborts) / float64(total)
				}
				opts.Report.Add(row)
			}
		}
		speedup := 0.0
		if mops[0] > 0 {
			speedup = mops[1] / mops[0]
		}
		fmt.Fprintf(w, "%-8d %18.3f %18.3f %9.1fx\n", conns, mops[0], mops[1], speedup)
	}
	return nil
}

// runNetSeries drives one data point: conns connections, each owned by
// one goroutine keeping window requests in flight (window 1 = closed
// loop).
func runNetSeries(network, addr string, conns, window int, wl Workload, opts Options) (Result, error) {
	wl = wl.withDefaults()
	trials := opts.Trials
	if trials == 0 {
		trials = 1
	}
	var sum Result
	for trial := 0; trial < trials; trial++ {
		r, err := runNetTrial(network, addr, conns, window, wl, opts.Duration, opts.Seed+uint64(trial)*1000)
		if err != nil {
			return sum, err
		}
		sum.Ops += r.Ops
		sum.Elapsed += r.Elapsed
	}
	return sum, nil
}

func runNetTrial(network, addr string, conns, window int, wl Workload,
	duration time.Duration, seed uint64) (Result, error) {
	return runNetTrialOps(network, addr, conns, window, duration, seed,
		func(req *wire.Request, rng *rand.Rand) {
			die := int(rng.Uint64() % 100)
			k := int64(rng.Uint64() % uint64(wl.Universe))
			switch {
			case die < wl.LookupPct:
				*req = wire.Request{Op: wire.OpGet, Key: k}
			default:
				if rng.Uint64()&1 == 0 {
					*req = wire.Request{Op: wire.OpInsert, Key: k, Val: k}
				} else {
					*req = wire.Request{Op: wire.OpDel, Key: k}
				}
			}
		})
}

// runNetSeriesOps is runNetSeries for a caller-supplied request mix
// (the byte-key series), tcp only.
func runNetSeriesOps(addr string, conns, window int, wl Workload, opts Options,
	gen func(req *wire.Request, rng *rand.Rand)) (Result, error) {
	trials := opts.Trials
	if trials == 0 {
		trials = 1
	}
	var sum Result
	for trial := 0; trial < trials; trial++ {
		r, err := runNetTrialOps("tcp", addr, conns, window, opts.Duration, opts.Seed+uint64(trial)*1000, gen)
		if err != nil {
			return sum, err
		}
		sum.Ops += r.Ops
		sum.Elapsed += r.Elapsed
	}
	return sum, nil
}

// runNetTrialOps drives one data point of any request mix: conns
// connections, each owned by one goroutine keeping window requests in
// flight (window 1 = closed loop), each request filled in by gen.
func runNetTrialOps(network, addr string, conns, window int,
	duration time.Duration, seed uint64, gen func(req *wire.Request, rng *rand.Rand)) (Result, error) {
	cl, err := client.Dial2(network, addr, client.Options{Conns: conns})
	if err != nil {
		return Result{}, err
	}
	defer cl.Close()

	type count struct {
		ops uint64
		_   [7]uint64 // pad to a cache line
	}
	counts := make([]count, conns)
	errs := make(chan error, conns)
	var start, stop sync.WaitGroup
	done := make(chan struct{})
	start.Add(1)
	for i := 0; i < conns; i++ {
		stop.Add(1)
		go func(id int) {
			defer stop.Done()
			cn := cl.Conn(id)
			rng := rand.New(rand.NewPCG(seed+uint64(id), 0x6e70))
			calls := make([]*client.Call, 0, window)
			reqs := make([]wire.Request, window)
			start.Wait()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Issue one window, flush once, then wait for all of it.
				calls = calls[:0]
				for j := 0; j < window; j++ {
					req := &reqs[j]
					gen(req, rng)
					call, err := cn.Start(req)
					if err != nil {
						errs <- err
						return
					}
					calls = append(calls, call)
				}
				if err := cn.Flush(); err != nil {
					errs <- err
					return
				}
				for _, call := range calls {
					if _, err := call.Wait(); err != nil {
						errs <- err
						return
					}
				}
				counts[id].ops += uint64(window)
			}
		}(i)
	}
	began := time.Now()
	start.Done()
	time.Sleep(duration)
	close(done)
	stop.Wait()
	elapsed := time.Since(began)
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}
	var r Result
	for i := range counts {
		r.Ops += counts[i].ops
	}
	r.Elapsed = elapsed
	return r, nil
}
