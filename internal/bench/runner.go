package bench

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workload is an operation mix over a uniform key universe (§5.1).
type Workload struct {
	// Name labels the workload in reports ("100%-lookup", ...).
	Name string
	// LookupPct, UpdatePct and RangePct must sum to 100. Updates split
	// evenly between insertions and removals, keeping the population
	// stable at half the universe.
	LookupPct, UpdatePct, RangePct int
	// RangeLen is added to a uniform l to form [l, l+RangeLen] (default
	// 100, processing 50 pairs on average at half population).
	RangeLen int64
	// Universe is the key universe size (default 10^6).
	Universe int64
}

func (w Workload) withDefaults() Workload {
	if w.Universe == 0 {
		w.Universe = 1_000_000
	}
	if w.RangeLen == 0 {
		w.RangeLen = 100
	}
	return w
}

// RunConfig fixes the execution parameters of one trial.
type RunConfig struct {
	// Threads is the number of worker goroutines.
	Threads int
	// Duration is the measurement window per trial (paper: 3 s).
	Duration time.Duration
	// Trials averages this many runs (paper: 5). Default 1.
	Trials int
	// Seed perturbs the per-worker RNG streams.
	Seed uint64
}

// Result is a trial's aggregate outcome.
type Result struct {
	// Ops counts completed operations of all types.
	Ops uint64
	// RangeOps counts completed range queries.
	RangeOps uint64
	// RangePairs counts pairs copied by range queries.
	RangePairs uint64
	// Elapsed is the wall-clock measurement time.
	Elapsed time.Duration
}

// Mops is throughput in millions of operations per second.
func (r Result) Mops() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Ops) / 1e6 / r.Elapsed.Seconds()
}

// RangePairsPerSec is range-query throughput in pairs processed per
// second (Figure 6's lower chart).
func (r Result) RangePairsPerSec() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.RangePairs) / r.Elapsed.Seconds()
}

// Prefill populates m with half the universe. Keys are inserted in a
// random order (the evaluation framework draws keys uniformly), which
// matters for the unbalanced external BST baseline: sequential insertion
// would degenerate it into a list. It returns the population.
func Prefill(m Map, universe int64, seed uint64) int64 {
	perm := rand.New(rand.NewPCG(seed, 0x5eed)).Perm(int(universe))
	target := universe / 2
	workers := runtime.GOMAXPROCS(0)
	if workers > 16 {
		workers = 16
	}
	var population atomic.Int64
	var wg sync.WaitGroup
	chunk := (target + int64(workers) - 1) / int64(workers)
	for wkr := 0; wkr < workers; wkr++ {
		lo := int64(wkr) * chunk
		hi := lo + chunk
		if hi > target {
			hi = target
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			w := m.NewWorker()
			n := int64(0)
			for i := lo; i < hi; i++ {
				k := int64(perm[i])
				if w.Insert(k, k) {
					n++
				}
			}
			population.Add(n)
		}(lo, hi)
	}
	wg.Wait()
	return population.Load()
}

// Run executes the workload against a freshly prefilled map and returns
// the averaged result. The map must be empty when passed in.
func Run(m Map, w Workload, rc RunConfig) Result {
	w = w.withDefaults()
	Prefill(m, w.Universe, rc.Seed+1)
	return RunTrials(m, w, rc)
}

// RunTrials executes only the measured trials against an already
// prefilled map. Callers that snapshot per-subject counters (the JSON
// report) prefill first, snapshot, then call this, so the prefill
// phase's transactions stay out of the measured window.
func RunTrials(m Map, w Workload, rc RunConfig) Result {
	w = w.withDefaults()
	if rc.Trials == 0 {
		rc.Trials = 1
	}
	var sum Result
	for trial := 0; trial < rc.Trials; trial++ {
		r := runTrial(m, w, rc, uint64(trial))
		sum.Ops += r.Ops
		sum.RangeOps += r.RangeOps
		sum.RangePairs += r.RangePairs
		sum.Elapsed += r.Elapsed
	}
	return sum
}

func runTrial(m Map, w Workload, rc RunConfig, trial uint64) Result {
	type counters struct {
		ops, rangeOps, rangePairs uint64
		_                         [5]uint64 // pad to a cache line
	}
	counts := make([]counters, rc.Threads)
	var start, stop sync.WaitGroup
	done := make(chan struct{})
	start.Add(1)
	for t := 0; t < rc.Threads; t++ {
		stop.Add(1)
		go func(id int) {
			defer stop.Done()
			wk := m.NewWorker()
			rng := rand.New(rand.NewPCG(rc.Seed+uint64(id)+trial*1000, 0x9e37))
			c := &counts[id]
			start.Wait()
			for {
				select {
				case <-done:
					return
				default:
				}
				// A small batch per check keeps the channel poll off
				// the per-op path.
				for i := 0; i < 64; i++ {
					die := int(rng.Uint64() % 100)
					k := int64(rng.Uint64() % uint64(w.Universe))
					switch {
					case die < w.LookupPct:
						wk.Lookup(k)
					case die < w.LookupPct+w.UpdatePct:
						if rng.Uint64()&1 == 0 {
							wk.Insert(k, k)
						} else {
							wk.Remove(k)
						}
					default:
						n := wk.Range(k, k+w.RangeLen)
						c.rangePairs += uint64(n)
						c.rangeOps++
					}
					c.ops++
				}
			}
		}(t)
	}
	began := time.Now()
	start.Done()
	time.Sleep(rc.Duration)
	close(done)
	stop.Wait()
	elapsed := time.Since(began)
	var r Result
	for i := range counts {
		r.Ops += counts[i].ops
		r.RangeOps += counts[i].rangeOps
		r.RangePairs += counts[i].rangePairs
	}
	r.Elapsed = elapsed
	return r
}

// SplitResult is the outcome of a split-role trial (Figure 6): update
// throughput and range throughput measured independently.
type SplitResult struct {
	UpdateOps  uint64
	RangeOps   uint64
	RangePairs uint64
	Elapsed    time.Duration
}

// UpdateMops is update throughput in millions of operations per second.
func (r SplitResult) UpdateMops() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.UpdateOps) / 1e6 / r.Elapsed.Seconds()
}

// RangePairsPerSec is range throughput in pairs processed per second.
func (r SplitResult) RangePairsPerSec() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.RangePairs) / r.Elapsed.Seconds()
}

// RunSplit executes Figure 6's experiment: updateThreads run 100%
// updates while rangeThreads run 100% range queries of the given length.
// The map is prefilled to half the universe first.
func RunSplit(m Map, updateThreads, rangeThreads int, rangeLen, universe int64, rc RunConfig) SplitResult {
	if universe == 0 {
		universe = 1_000_000
	}
	Prefill(m, universe, rc.Seed+1)
	return RunSplitTrials(m, updateThreads, rangeThreads, rangeLen, universe, rc)
}

// RunSplitTrials executes only the measured split-role trials against
// an already prefilled map; see RunTrials.
func RunSplitTrials(m Map, updateThreads, rangeThreads int, rangeLen, universe int64, rc RunConfig) SplitResult {
	if universe == 0 {
		universe = 1_000_000
	}
	if rc.Trials == 0 {
		rc.Trials = 1
	}
	var sum SplitResult
	for trial := 0; trial < rc.Trials; trial++ {
		r := runSplitTrial(m, updateThreads, rangeThreads, rangeLen, universe, rc, uint64(trial))
		sum.UpdateOps += r.UpdateOps
		sum.RangeOps += r.RangeOps
		sum.RangePairs += r.RangePairs
		sum.Elapsed += r.Elapsed
	}
	return sum
}

func runSplitTrial(m Map, updateThreads, rangeThreads int, rangeLen, universe int64, rc RunConfig, trial uint64) SplitResult {
	var updateOps, rangeOps, rangePairs atomic.Uint64
	var start, stop sync.WaitGroup
	done := make(chan struct{})
	start.Add(1)
	for t := 0; t < updateThreads; t++ {
		stop.Add(1)
		go func(id int) {
			defer stop.Done()
			wk := m.NewWorker()
			rng := rand.New(rand.NewPCG(rc.Seed+uint64(id)+trial*1000, 0xabc1))
			ops := uint64(0)
			start.Wait()
			for {
				select {
				case <-done:
					updateOps.Add(ops)
					return
				default:
				}
				for i := 0; i < 64; i++ {
					k := int64(rng.Uint64() % uint64(universe))
					if rng.Uint64()&1 == 0 {
						wk.Insert(k, k)
					} else {
						wk.Remove(k)
					}
					ops++
				}
			}
		}(t)
	}
	for t := 0; t < rangeThreads; t++ {
		stop.Add(1)
		go func(id int) {
			defer stop.Done()
			wk := m.NewWorker()
			rng := rand.New(rand.NewPCG(rc.Seed+uint64(id)+trial*1000, 0xabc2))
			ops, pairs := uint64(0), uint64(0)
			start.Wait()
			for {
				select {
				case <-done:
					rangeOps.Add(ops)
					rangePairs.Add(pairs)
					return
				default:
				}
				l := int64(rng.Uint64() % uint64(universe))
				pairs += uint64(wk.Range(l, l+rangeLen))
				ops++
			}
		}(t)
	}
	began := time.Now()
	start.Done()
	time.Sleep(rc.Duration)
	close(done)
	stop.Wait()
	return SplitResult{
		UpdateOps:  updateOps.Load(),
		RangeOps:   rangeOps.Load(),
		RangePairs: rangePairs.Load(),
		Elapsed:    time.Since(began),
	}
}

// ThreadCounts returns the sweep axis for Figure 5, scaled to the host:
// the paper sweeps 1..96 on a 48-core box; here the axis stops at twice
// GOMAXPROCS (matching the paper's use of SMT beyond the core count).
func ThreadCounts() []int {
	maxThreads := 2 * runtime.GOMAXPROCS(0)
	candidates := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96}
	var out []int
	for _, c := range candidates {
		if c <= maxThreads {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}
