package bench

import (
	"fmt"
	"io"
	"os"

	"repro/internal/persist"
	"repro/internal/stm"
	"repro/internal/thashmap"
	"repro/skiphash"
)

// The persist experiment measures what durability costs on the
// write-heavy mix: the same workload runs against the skip hash with
// durability off and with the WAL at each fsync policy, reporting
// throughput, the WAL volume generated, and the overhead versus the
// durability-off baseline. The design goal is that FsyncNone — pure
// logging, no fsync on the hot path — stays within a few percent,
// FsyncInterval close behind, and FsyncAlways costs what a group-
// committed fsync per operation must cost on the host's storage.

// persistSubject is one durability configuration under test.
type persistSubject struct {
	// label names the fsync policy ("off" for the baseline).
	label string
	// build returns the map and a cleanup; dir is empty for "off".
	build func(dir string) (Map, func(), error)
}

// durableSkipHash wraps a durable skip hash for the harness, exposing
// the store's stats for the report.
type durableSkipHash struct {
	m  *skiphash.Map[int64, int64]
	st *persist.Store[int64, int64]
}

func (s *durableSkipHash) Name() string                    { return "skiphash-durable" }
func (s *durableSkipHash) SupportsRange() bool             { return true }
func (s *durableSkipHash) RangeStats() skiphash.RangeStats { return s.m.RangeStats() }
func (s *durableSkipHash) STMStats() stm.Stats             { return s.m.Runtime().Stats() }
func (s *durableSkipHash) NewWorker() Worker               { return &skipHashWorker{h: s.m.NewHandle()} }

// PersistWorkload is the write-heavy mix the overhead target is defined
// on: 98% updates, 1% lookups, 1% ranges (Figure 5's mix f), which
// makes nearly every operation append a WAL record.
var PersistWorkload = Workload{Name: "1% lookup, 98% update, 1% range", LookupPct: 1, UpdatePct: 98, RangePct: 1}

// persistSubjects returns the durability configurations in report
// order.
func persistSubjects(buckets int) []persistSubject {
	mk := func(policy persist.FsyncPolicy) func(dir string) (Map, func(), error) {
		return func(dir string) (Map, func(), error) {
			cfg := skiphash.Config{Buckets: buckets, Durability: &skiphash.Durability{
				Dir:   dir,
				Fsync: policy,
				// The experiment measures logging, not snapshotting:
				// snapshots are driven explicitly by real deployments and
				// would inject background I/O noise here.
				SnapshotBytes: -1,
			}}
			m, err := skiphash.Open[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
			if err != nil {
				return nil, nil, err
			}
			st, _ := m.Persister().(*persist.Store[int64, int64])
			return &durableSkipHash{m: m, st: st}, func() { m.Close() }, nil
		}
	}
	return []persistSubject{
		{label: "off", build: func(string) (Map, func(), error) {
			m := NewSkipHash("two-path", buckets)
			return m, func() {}, nil
		}},
		{label: persist.FsyncNone.String(), build: mk(persist.FsyncNone)},
		{label: persist.FsyncInterval.String(), build: mk(persist.FsyncInterval)},
		{label: persist.FsyncAlways.String(), build: mk(persist.FsyncAlways)},
	}
}

// Persist runs the durability-overhead experiment at a fixed thread
// count (the last — highest — entry of opts.Threads, defaulting to
// GOMAXPROCS-scaled) on the write-heavy mix. WAL directories are
// created under baseDir (a temp dir when empty) and removed afterwards.
func Persist(w io.Writer, baseDir string, opts Options) error {
	opts = opts.withDefaults()
	threads := opts.Threads[len(opts.Threads)-1]
	wl := PersistWorkload
	wl.Universe = opts.Universe
	buckets := thashmap.DefaultBuckets

	cleanupBase := func() {}
	if baseDir == "" {
		tmp, err := os.MkdirTemp("", "skipbench-persist-*")
		if err != nil {
			return err
		}
		baseDir = tmp
		cleanupBase = func() { os.RemoveAll(tmp) }
	}
	defer cleanupBase()

	fmt.Fprintf(w, "# Persist: %s, %d threads, universe %d, %v x %d trials (WAL dirs under %s)\n",
		wl.Name, threads, opts.Universe, opts.Duration, opts.Trials, baseDir)
	fmt.Fprintf(w, "%-10s %12s %12s %12s %14s\n", "fsync", "Mops/s", "overhead", "WAL MiB", "syncs")

	var baseline float64
	for _, sub := range persistSubjects(buckets) {
		dir := ""
		if sub.label != "off" {
			dir = fmt.Sprintf("%s/wal-%s", baseDir, sub.label)
			// A leftover directory from a previous run would be recovered
			// into the map and skew prefill, WAL volume and overhead; each
			// subject must start from an empty log.
			if err := os.RemoveAll(dir); err != nil {
				return err
			}
		}
		m, cleanup, err := sub.build(dir)
		if err != nil {
			return err
		}
		rc := RunConfig{Threads: threads, Duration: opts.Duration, Trials: opts.Trials, Seed: opts.Seed + 53}
		Prefill(m, wl.Universe, rc.Seed+1)
		stmBefore, rqBefore := subjectSnapshots(m)
		var statsBefore persist.StoreStats
		ds, durable := m.(*durableSkipHash)
		if durable && ds.st != nil {
			statsBefore = ds.st.Stats()
		}
		res := RunTrials(m, wl, rc)
		mops := res.Mops()
		overhead := 0.0
		if sub.label == "off" {
			baseline = mops
		} else if baseline > 0 {
			overhead = (baseline - mops) / baseline * 100
		}
		var walMB float64
		var syncs uint64
		if durable && ds.st != nil {
			d := ds.st.Stats()
			walMB = float64(d.AppendedBytes-statsBefore.AppendedBytes) / (1 << 20)
			syncs = d.Syncs - statsBefore.Syncs
		}
		fmt.Fprintf(w, "%-10s %12.2f %11.1f%% %12.1f %14d\n", sub.label, mops, overhead, walMB, syncs)
		if opts.CSV != nil {
			fmt.Fprintf(opts.CSV, "persist,%s,%d,%.4f,%.2f,%.2f\n", sub.label, threads, mops, overhead, walMB)
		}
		if opts.Report != nil {
			row := Row{Experiment: "persist", Workload: wl.Name, Map: m.Name(), Threads: threads,
				Universe: wl.Universe, Mops: mops, Fsync: sub.label, WalMB: walMB, OverheadPct: overhead}
			fillSubjectStats(&row, m, stmBefore, rqBefore, opts.Metrics)
			opts.Report.Add(row)
		}
		cleanup()
		if dir != "" {
			os.RemoveAll(dir)
		}
	}
	return nil
}
