package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/skiphash"
	"repro/skiphash/client"
)

// The repl experiment measures what read fan-out over live replicas
// buys and what the watermark barrier costs. One durable primary
// (FsyncNone — the subject is replication, not the disk) streams its
// WAL to up to two in-process replicas; primary and replicas each
// serve the wire protocol on loopback TCP. Three closed-loop read
// series per connection count:
//
//   - primary-only: plain Get against the primary, the baseline every
//     fan-out figure is relative to.
//   - fanout-1 / fanout-2: barriered GetAt round-robined across one or
//     two replicas. Each GetAt pipelines a Watermark probe with the
//     read in one flush, so the series price includes the barrier
//     check, not just the lookup.
//
// The interesting shape: fan-out splits the read load across maps and
// runtimes, so past the primary's saturation point the replica series
// should scale where primary-only flattens.

// ReplWorkload names the repl experiment's op mix.
var ReplWorkload = Workload{Name: "100% barriered lookup", LookupPct: 100}

// replFanouts are the replica counts swept per connection count.
var replFanouts = []int{0, 1, 2}

// Repl runs the replication read fan-out experiment.
func Repl(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	wl := ReplWorkload
	wl.Universe = opts.Universe

	dir, err := os.MkdirTemp("", "skipbench-repl-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	m, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{
		Maintenance: true,
		Durability:  &skiphash.Durability{Dir: dir, Fsync: skiphash.FsyncNone},
	}, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		return err
	}
	defer m.Close()
	clockRead := m.Runtime().Clock().Read
	prim := repl.NewPrimary(repl.PrimaryConfig{
		Snapshot: func(chunkSize int, emit func(stamp uint64, pairs []wire.KV) error) error {
			kvs := make([]wire.KV, 0, chunkSize)
			return m.SnapshotChunks(chunkSize, func(stamp uint64, pairs []skiphash.Pair[int64, int64]) error {
				kvs = kvs[:0]
				for _, p := range pairs {
					kvs = append(kvs, wire.KV{Key: p.Key, Val: p.Val})
				}
				return emit(stamp, kvs)
			})
		},
		ClockRead: clockRead,
	})
	tp, ok := m.Persister().(interface {
		TapWAL(func(stamp uint64, count int, ops []byte))
	})
	if !ok {
		return fmt.Errorf("bench: persister %T has no WAL tap", m.Persister())
	}
	tp.TapWAL(prim.Append)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go prim.Serve(rln)
	defer prim.Shutdown()

	srv := server.New(repl.PrimaryBackend(server.NewShardedBackend(m), clockRead), server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-served
	}()

	// Prefill the whole universe in batched transactions (one WAL
	// record per batch), then bring the replicas up: they arrive after
	// the backlog, so catch-up takes the snapshot path, not a
	// record-by-record tail replay of the prefill.
	const prefillBatch = 512
	for lo := int64(0); lo < wl.Universe; lo += prefillBatch {
		hi := lo + prefillBatch
		if hi > wl.Universe {
			hi = wl.Universe
		}
		if err := m.Atomic(func(tx *skiphash.ShardedTxn[int64, int64]) error {
			for k := lo; k < hi; k++ {
				tx.Put(k, k)
			}
			return nil
		}); err != nil {
			return err
		}
	}

	replicaAddrs := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		r := repl.NewReplica(repl.ReplicaConfig{Addr: rln.Addr().String()})
		defer r.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		err := r.WaitReady(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("bench: replica %d catch-up: %w", i, err)
		}
		rsrv := server.New(r.Backend(), server.Config{})
		rlnS, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go rsrv.Serve(rlnS)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			rsrv.Shutdown(ctx)
		}()
		replicaAddrs = append(replicaAddrs, rlnS.Addr().String())
	}

	fmt.Fprintf(w, "# Repl: %s, universe %d, %v x %d trials, primary + %d replicas over tcp\n",
		wl.Name, wl.Universe, opts.Duration, opts.Trials, len(replicaAddrs))
	fmt.Fprintf(w, "%-8s %18s %15s %15s\n", "conns", "primary-only Mops", "fanout-1 Mops", "fanout-2 Mops")
	for _, conns := range opts.Threads {
		var mops [3]float64
		for fi, fanout := range replFanouts {
			var sum Result
			for trial := 0; trial < opts.Trials; trial++ {
				r, err := runReplTrial(ln.Addr().String(), replicaAddrs[:fanout], conns,
					wl.Universe, opts.Duration, opts.Seed+uint64(trial)*1000)
				if err != nil {
					return err
				}
				sum.Ops += r.Ops
				sum.Elapsed += r.Elapsed
			}
			mops[fi] = sum.Mops()
			series := "primary-only"
			if fanout > 0 {
				series = fmt.Sprintf("fanout-%d", fanout)
			}
			if opts.CSV != nil {
				fmt.Fprintf(opts.CSV, "repl,tcp,%d,%d,%.4f\n", conns, fanout, sum.Mops())
			}
			if opts.Report != nil {
				opts.Report.Add(Row{
					Experiment: "repl",
					Workload:   wl.Name,
					Map:        series,
					Threads:    conns,
					Shards:     m.NumShards(),
					Universe:   wl.Universe,
					Transport:  "tcp",
					Pipeline:   1,
					Mops:       sum.Mops(),
				})
			}
		}
		fmt.Fprintf(w, "%-8d %18.3f %15.3f %15.3f\n", conns, mops[0], mops[1], mops[2])
	}
	return nil
}

// runReplTrial drives conns closed-loop readers for one trial: plain
// primary Gets when no replicas are configured, barriered GetAt reads
// fanning out across the replicas otherwise. The zero barrier is
// always below a caught-up replica's watermark, so the series measures
// the barrier's cost, not stale-fallback churn.
func runReplTrial(primaryAddr string, replicas []string, conns int,
	universe int64, duration time.Duration, seed uint64) (Result, error) {
	cl, err := client.Dial(primaryAddr, client.Options{Conns: conns, Replicas: replicas})
	if err != nil {
		return Result{}, err
	}
	defer cl.Close()

	type count struct {
		ops uint64
		_   [7]uint64 // pad to a cache line
	}
	counts := make([]count, conns)
	errs := make(chan error, conns)
	var start, stop sync.WaitGroup
	done := make(chan struct{})
	start.Add(1)
	for i := 0; i < conns; i++ {
		stop.Add(1)
		go func(id int) {
			defer stop.Done()
			rng := rand.New(rand.NewPCG(seed+uint64(id), 0x4e70))
			barriered := len(replicas) > 0
			start.Wait()
			for {
				select {
				case <-done:
					return
				default:
				}
				k := int64(rng.Uint64() % uint64(universe))
				var rerr error
				if barriered {
					_, _, rerr = cl.GetAt(k, 0)
				} else {
					_, _, rerr = cl.Get(k)
				}
				if rerr != nil {
					errs <- rerr
					return
				}
				counts[id].ops++
			}
		}(i)
	}
	began := time.Now()
	start.Done()
	time.Sleep(duration)
	close(done)
	stop.Wait()
	elapsed := time.Since(began)
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}
	var r Result
	for i := range counts {
		r.Ops += counts[i].ops
	}
	r.Elapsed = elapsed
	return r, nil
}
