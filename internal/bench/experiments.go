package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/obs"
)

// Options control the experiment drivers.
type Options struct {
	// Duration per trial (paper: 3 s; default 2 s; quick runs shrink it).
	Duration time.Duration
	// Trials per data point (paper: 5; default 1).
	Trials int
	// Universe is the key universe size (default 10^6).
	Universe int64
	// Threads overrides the sweep axis (nil selects ThreadCounts()).
	Threads []int
	// CSV, when non-nil, additionally receives machine-readable rows.
	CSV io.Writer
	// Report, when non-nil, collects structured rows (throughput,
	// abort rates, range-path counters) for JSON output.
	Report *Report
	// Seed offsets every experiment's base seed, flowing into the
	// worker RNG streams and the prefill permutation, so two runs with
	// one seed measure identical key sequences (and different seeds
	// vary them deliberately). Zero keeps the historical streams.
	Seed uint64
	// Metrics, when non-nil, accumulates every reported row's counter
	// deltas into obs counters (skipbench_commits_total and friends),
	// so a bench run can be cross-checked against — and dumped in the
	// same exposition format as — the daemon's registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	if o.Universe == 0 {
		o.Universe = 1_000_000
	}
	if o.Threads == nil {
		o.Threads = ThreadCounts()
	}
	return o
}

// Fig5Workloads are the six operation mixes of Figure 5, keyed a-f.
var Fig5Workloads = map[string]Workload{
	"a": {Name: "100% lookup", LookupPct: 100},
	"b": {Name: "100% update", UpdatePct: 100},
	"c": {Name: "100% range", RangePct: 100},
	"d": {Name: "80% lookup, 10% update, 10% range", LookupPct: 80, UpdatePct: 10, RangePct: 10},
	"e": {Name: "80% update, 20% range", UpdatePct: 80, RangePct: 20},
	"f": {Name: "1% lookup, 98% update, 1% range", LookupPct: 1, UpdatePct: 98, RangePct: 1},
}

// MapFactory builds a fresh map per data point so state never leaks
// between trials of different thread counts.
type MapFactory struct {
	Name string
	New  func() Map
}

// Fig5Maps returns the series of Figure 5, in the paper's legend order.
// Elemental-only workloads (a, b) additionally include the STM skip list
// and STM hash map.
func Fig5Maps(elementalOnly bool) []MapFactory {
	out := []MapFactory{
		{Name: "skiphash-fast-only", New: func() Map { return NewSkipHash("fast", 0) }},
		{Name: "skiphash-slow-only", New: func() Map { return NewSkipHash("slow", 0) }},
		{Name: "skiphash-two-path", New: func() Map { return NewSkipHash("two-path", 0) }},
		{Name: "skiphash-sharded", New: func() Map { return NewShardedSkipHash(0, 0, false) }},
		{Name: "bst-vcas-hwclock", New: func() Map { return NewVcasBST("hwclock") }},
		{Name: "skiplist-vcas-hwclock", New: func() Map { return NewVcasSkip("hwclock") }},
		{Name: "skiplist-bundled-hwclock", New: func() Map { return NewBundleSkip("hwclock") }},
	}
	if elementalOnly {
		out = append(out,
			MapFactory{Name: "skiplist-stm", New: func() Map { return NewStmSkip() }},
			MapFactory{Name: "hashmap-stm", New: func() Map { return NewStmHash(0) }},
		)
	}
	return out
}

// Fig5 sweeps thread counts for one of Figure 5's workloads (letter in
// a..f) and prints a throughput table: one column per map, rows are
// thread counts, cells millions of operations per second.
func Fig5(w io.Writer, letter string, opts Options) error {
	opts = opts.withDefaults()
	wl, ok := Fig5Workloads[letter]
	if !ok {
		return fmt.Errorf("bench: no Figure 5 workload %q", letter)
	}
	wl.Universe = opts.Universe
	elemental := wl.RangePct == 0
	maps := Fig5Maps(elemental)

	fmt.Fprintf(w, "# Figure 5%s: %s (universe %d, %v x %d trials)\n",
		letter, wl.Name, opts.Universe, opts.Duration, opts.Trials)
	fmt.Fprintf(w, "%-8s", "threads")
	for _, mf := range maps {
		fmt.Fprintf(w, " %24s", mf.Name)
	}
	fmt.Fprintln(w)
	for _, threads := range opts.Threads {
		fmt.Fprintf(w, "%-8d", threads)
		for _, mf := range maps {
			m := mf.New()
			if wl.RangePct > 0 && !m.SupportsRange() {
				fmt.Fprintf(w, " %24s", "-")
				continue
			}
			rc := RunConfig{Threads: threads, Duration: opts.Duration, Trials: opts.Trials, Seed: opts.Seed + 7}
			Prefill(m, wl.Universe, rc.Seed+1)
			stmBefore, rqBefore := subjectSnapshots(m) // post-prefill: counters cover the measured window only
			res := RunTrials(m, wl, rc)
			fmt.Fprintf(w, " %24.2f", res.Mops())
			if opts.CSV != nil {
				fmt.Fprintf(opts.CSV, "fig5%s,%s,%d,%.4f\n", letter, mf.Name, threads, res.Mops())
			}
			if opts.Report != nil {
				row := Row{Experiment: "fig5" + letter, Workload: wl.Name, Map: mf.Name, Threads: threads,
					Universe: wl.Universe, Mops: res.Mops()}
				fillSubjectStats(&row, m, stmBefore, rqBefore, opts.Metrics)
				opts.Report.Add(row)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig6Lengths is the range-length sweep of Figure 6: powers of two from
// 2^4 to 2^16.
func Fig6Lengths() []int64 {
	var out []int64
	for e := 4; e <= 16; e++ {
		out = append(out, 1<<uint(e))
	}
	return out
}

// Fig6 reproduces Figure 6: half the threads run updates only, half run
// range queries only, while the range length sweeps. Two tables are
// printed: update throughput (Mops/s) and range throughput (million
// pairs processed per second).
func Fig6(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	// The paper pins 24+24 threads on one socket; scale to the host.
	half := 12
	if maxHalf := ThreadCounts()[len(ThreadCounts())-1] / 4; maxHalf < half {
		half = maxHalf
	}
	if half < 1 {
		half = 1
	}
	maps := Fig5Maps(false)
	lengths := Fig6Lengths()

	fmt.Fprintf(w, "# Figure 6: %d update threads + %d range threads, universe %d, %v x %d trials\n",
		half, half, opts.Universe, opts.Duration, opts.Trials)
	type cell struct{ upd, rng float64 }
	table := make(map[string]map[int64]cell, len(maps))
	for _, mf := range maps {
		table[mf.Name] = make(map[int64]cell, len(lengths))
		for _, ln := range lengths {
			m := mf.New()
			rc := RunConfig{Duration: opts.Duration, Trials: opts.Trials, Seed: opts.Seed + 13}
			Prefill(m, opts.Universe, rc.Seed+1)
			stmBefore, rqBefore := subjectSnapshots(m)
			res := RunSplitTrials(m, half, half, ln, opts.Universe, rc)
			table[mf.Name][ln] = cell{upd: res.UpdateMops(), rng: res.RangePairsPerSec() / 1e6}
			if opts.CSV != nil {
				fmt.Fprintf(opts.CSV, "fig6,%s,%d,%.4f,%.4f\n",
					mf.Name, ln, res.UpdateMops(), res.RangePairsPerSec()/1e6)
			}
			if opts.Report != nil {
				row := Row{Experiment: "fig6", Map: mf.Name, Threads: 2 * half, RangeLen: ln,
					Universe: opts.Universe, UpdateMops: res.UpdateMops(), RangeMpairs: res.RangePairsPerSec() / 1e6}
				fillSubjectStats(&row, m, stmBefore, rqBefore, opts.Metrics)
				opts.Report.Add(row)
			}
		}
	}
	for _, section := range []struct {
		title string
		pick  func(cell) float64
	}{
		{"update throughput (Mops/s)", func(c cell) float64 { return c.upd }},
		{"range throughput (Mpairs/s)", func(c cell) float64 { return c.rng }},
	} {
		fmt.Fprintf(w, "\n## %s\n%-8s", section.title, "length")
		for _, mf := range maps {
			fmt.Fprintf(w, " %24s", mf.Name)
		}
		fmt.Fprintln(w)
		for _, ln := range lengths {
			fmt.Fprintf(w, "%-8d", ln)
			for _, mf := range maps {
				fmt.Fprintf(w, " %24.2f", section.pick(table[mf.Name][ln]))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Table1Lengths is the abort-rate sweep of Table 1: 2^10..2^14.
func Table1Lengths() []int64 {
	return []int64{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14}
}

// Table1 reproduces Table 1: aborts per successful range query in a
// fast-path-only skip hash under the Figure 6 workload, by range length.
func Table1(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	half := 12
	if maxHalf := ThreadCounts()[len(ThreadCounts())-1] / 4; maxHalf < half {
		half = maxHalf
	}
	if half < 1 {
		half = 1
	}
	fmt.Fprintf(w, "# Table 1: aborts per successful fast-path range query (%d+%d threads, universe %d)\n",
		half, half, opts.Universe)
	fmt.Fprintf(w, "%-10s %16s %16s %16s\n", "length", "aborts/query", "queries", "aborts")
	for _, ln := range Table1Lengths() {
		m := NewSkipHash("fast", 0)
		before := m.RangeStats()
		RunSplit(m, half, half, ln, opts.Universe,
			RunConfig{Duration: opts.Duration, Trials: opts.Trials, Seed: opts.Seed + 29})
		s := m.RangeStats().Sub(before)
		rate := "inf"
		if s.FastCommits > 0 {
			rate = fmt.Sprintf("%.2f", float64(s.FastAborts)/float64(s.FastCommits))
		}
		fmt.Fprintf(w, "%-10d %16s %16d %16d\n", ln, rate, s.FastCommits, s.FastAborts)
		if opts.CSV != nil {
			fmt.Fprintf(opts.CSV, "table1,%d,%s,%d,%d\n", ln, rate, s.FastCommits, s.FastAborts)
		}
		if opts.Report != nil {
			opts.Report.Add(Row{Experiment: "table1", Map: m.Name(), RangeLen: ln,
				Universe: opts.Universe, FastCommits: s.FastCommits, FastAborts: s.FastAborts})
		}
	}
	return nil
}

// ShardWorkloads are the two mixes the sharding evaluation sweeps: pure
// lookups (the hash-routed O(1) path) and a 30% update mix (commit
// pressure on every shard's orecs).
var ShardWorkloads = []Workload{
	{Name: "100% lookup", LookupPct: 100},
	{Name: "30% update, 70% lookup", LookupPct: 70, UpdatePct: 30},
}

// ShardCounts returns the shard sweep axis: powers of two from 1 to the
// smallest power covering GOMAXPROCS (at least 8, so small hosts still
// show the trend).
func ShardCounts() []int {
	limit := 1
	for limit < runtime.GOMAXPROCS(0) {
		limit <<= 1
	}
	if limit < 8 {
		limit = 8
	}
	var out []int
	for n := 1; n <= limit; n <<= 1 {
		out = append(out, n)
	}
	return out
}

// Shards sweeps the shard count of the sharded skip hash at a fixed
// thread count (the last — highest — entry of opts.Threads, defaulting
// to max(8, GOMAXPROCS)), for each of ShardWorkloads. A shard count of 1
// is the degenerate sharded map; the unsharded two-path skip hash is
// run alongside as the baseline row.
func Shards(w io.Writer, opts Options) error {
	userThreads := opts.Threads
	opts = opts.withDefaults()
	threads := max(8, runtime.GOMAXPROCS(0))
	if len(userThreads) > 0 {
		threads = userThreads[len(userThreads)-1]
	}
	fmt.Fprintf(w, "# Shard sweep: %d threads, universe %d, %v x %d trials\n",
		threads, opts.Universe, opts.Duration, opts.Trials)
	fmt.Fprintf(w, "%-26s %-10s %12s %12s\n", "workload", "shards", "Mops/s", "abort-rate")
	for _, wl := range ShardWorkloads {
		wl.Universe = opts.Universe
		run := func(label string, shards int, m Map) {
			rc := RunConfig{Threads: threads, Duration: opts.Duration, Trials: opts.Trials, Seed: opts.Seed + 41}
			Prefill(m, wl.Universe, rc.Seed+1)
			stmBefore, rqBefore := subjectSnapshots(m)
			res := RunTrials(m, wl, rc)
			row := Row{Experiment: "shards", Workload: wl.Name, Map: m.Name(), Threads: threads,
				Shards: shards, Universe: wl.Universe, Mops: res.Mops()}
			fillSubjectStats(&row, m, stmBefore, rqBefore, opts.Metrics)
			fmt.Fprintf(w, "%-26s %-10s %12.2f %12.4f\n", wl.Name, label, res.Mops(), row.AbortRate)
			if opts.CSV != nil {
				// The workload name contains a comma; quote the field.
				fmt.Fprintf(opts.CSV, "shards,%q,%s,%d,%d,%.4f\n", wl.Name, m.Name(), threads, shards, res.Mops())
			}
			if opts.Report != nil {
				opts.Report.Add(row)
			}
		}
		run("unsharded", 0, NewSkipHash("two-path", 0))
		for _, shards := range ShardCounts() {
			run(fmt.Sprintf("%d", shards), shards, NewShardedSkipHash(shards, 0, false))
		}
	}
	return nil
}
