package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/thashmap"
	"repro/skiphash"
)

// This file is the online-resharding experiment behind Sharded.Resize:
// a fixed point-operation workload (50% lookup, 25% insert, 25% remove)
// runs throughout while the shard count walks a fixed grow/shrink
// schedule, alternating measurement windows with a live migration in
// flight ("migrate") and windows at the new steady state ("steady").
// The demonstration is twofold: the map keeps serving while keys move
// (migrate-window throughput stays within a modest factor of steady),
// and having resized leaves steady-state throughput unchanged — the
// benchdiff regression gate rides on the steady series.

// reshardSchedule is the walk of target shard counts from the initial
// count: doubling, collapsing, fanning wide, and returning home. Fixed
// so report rows carry identical identities across runs.
var reshardSchedule = []int{8, 2, 16, 4}

// reshardInitialShards pins the starting partition count so the series
// is comparable across hosts.
const reshardInitialShards = 4

// Reshard runs the online-resharding experiment for the shared-runtime
// and isolated-shard variants.
func Reshard(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	threads := opts.Threads[len(opts.Threads)-1]
	fmt.Fprintf(w, "# Reshard: %d threads, universe %d, windows of %v, schedule %v from %d shards\n",
		threads, opts.Universe, opts.Duration, reshardSchedule, reshardInitialShards)
	fmt.Fprintf(w, "%-22s %-8s %-9s %7s %10s %13s\n",
		"map", "window", "phase", "shards", "Mops/s", "keys-copied")
	for _, isolated := range []bool{false, true} {
		if err := reshardOne(w, isolated, threads, opts); err != nil {
			return err
		}
	}
	return nil
}

func reshardOne(w io.Writer, isolated bool, threads int, opts Options) error {
	cfg := skiphash.Config{
		Buckets:        thashmap.DefaultBuckets,
		Shards:         reshardInitialShards,
		IsolatedShards: isolated,
	}
	sm := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg)
	defer sm.Close()
	name := "skiphash-reshard"
	if isolated {
		name += "-iso"
	}
	universe := opts.Universe
	seed := opts.Seed + 131
	perm := rand.New(rand.NewPCG(seed, 0x5eed)).Perm(int(universe))
	for i := 0; i < int(universe)/2; i++ {
		sm.Insert(int64(perm[i]), int64(perm[i]))
	}

	var ops atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			h := sm.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewPCG(seed+id, 0xabc3))
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 64; i++ {
					k := int64(rng.Uint64() % uint64(universe))
					switch rng.Uint64() & 3 {
					case 0:
						h.Insert(k, k)
					case 1:
						h.Remove(k)
					default:
						h.Lookup(k)
					}
				}
				ops.Add(64)
			}
		}(uint64(t) + 1)
	}
	stopped := false
	stopWorkers := func() {
		if !stopped {
			stopped = true
			close(stop)
			wg.Wait()
		}
	}
	defer stopWorkers()

	winIdx := 0
	// window measures one throughput window. target > 0 kicks off a
	// live migration at the window's start; the window then extends
	// until the migration finishes, so a migrate window's elapsed time
	// is max(opts.Duration, migration time) and its throughput is the
	// whole-migration average.
	window := func(phase string, target int) error {
		o0 := ops.Load()
		st0 := sm.STMStats()
		copied0 := sm.ResizeStats().KeysCopied
		began := time.Now()
		var rerr error
		var rwg sync.WaitGroup
		if target > 0 {
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				_, rerr = sm.Resize(target)
			}()
		}
		time.Sleep(opts.Duration)
		rwg.Wait()
		elapsed := time.Since(began).Seconds()
		if rerr != nil {
			return fmt.Errorf("bench: reshard %s: Resize(%d): %w", name, target, rerr)
		}
		mops := float64(ops.Load()-o0) / 1e6 / elapsed
		copied := sm.ResizeStats().KeysCopied - copied0
		shards := sm.Shards()
		fmt.Fprintf(w, "%-22s %-8d %-9s %7d %10.2f %13d\n",
			name, winIdx, phase, shards, mops, copied)
		if opts.CSV != nil {
			fmt.Fprintf(opts.CSV, "reshard,%s,%s,%d,%d,%.4f,%d\n",
				name, phase, winIdx, shards, mops, copied)
		}
		win := winIdx
		row := Row{
			Experiment: "reshard", Workload: phase, Map: name, Threads: threads,
			Shards: shards, Universe: universe, Window: &win, Mops: mops,
		}
		d := sm.STMStats().Sub(st0)
		row.Commits, row.Aborts = d.Commits, d.Aborts
		if total := d.Commits + d.Aborts; total > 0 {
			row.AbortRate = float64(d.Aborts) / float64(total)
		}
		opts.Report.Add(row)
		if opts.Metrics != nil {
			bankRow(opts.Metrics, &row)
		}
		winIdx++
		return nil
	}

	if err := window("steady", 0); err != nil {
		return err
	}
	for _, target := range reshardSchedule {
		if err := window("migrate", target); err != nil {
			return err
		}
		if err := window("steady", 0); err != nil {
			return err
		}
	}
	stopWorkers()
	sm.Quiesce()
	if err := sm.CheckInvariants(skiphash.CheckOptions{}); err != nil {
		return fmt.Errorf("bench: reshard %s: invariants after schedule: %w", name, err)
	}
	st := sm.ResizeStats()
	fmt.Fprintf(w, "%-22s done: resizes=%d keys-copied=%d delta-applied=%d cutovers=%d final-shards=%d\n",
		name, st.Resizes, st.KeysCopied, st.DeltaApplied, st.Cutovers, sm.Shards())
	return nil
}
