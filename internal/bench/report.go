package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/stm"

	"repro/skiphash"
)

// Env describes the machine a report was recorded on, so BENCH_*.json
// trajectories are comparable (or knowingly incomparable) across
// machines and toolchains.
type Env struct {
	// GoVersion is runtime.Version() of the recording binary.
	GoVersion string `json:"go_version"`
	// GOOS/GOARCH identify the platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// GOMAXPROCS is the scheduler parallelism during the run; NumCPU the
	// machine's logical CPU count.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

// CurrentEnv samples the recording environment.
func CurrentEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Row is one machine-readable data point of an experiment run, written
// by the -json flag of cmd/skipbench for the perf trajectory.
type Row struct {
	// Experiment identifies the driver: "fig5a".."fig5f", "fig6",
	// "table1", "shards", "churn", "persist", "net", or "read".
	Experiment string `json:"experiment"`
	// Workload is the operation mix's human name, when applicable.
	Workload string `json:"workload,omitempty"`
	// Map is the subject series name.
	Map string `json:"map"`
	// Threads is the worker count of the data point.
	Threads int `json:"threads,omitempty"`
	// Shards is the partition count for sharded subjects.
	Shards int `json:"shards,omitempty"`
	// RangeLen is the range length for fig6/table1 points.
	RangeLen int64 `json:"range_len,omitempty"`
	// Universe is the key universe size of the data point; quick-mode
	// and full-mode rows measure different populations, so regression
	// gating (cmd/benchdiff) keys on it.
	Universe int64 `json:"universe,omitempty"`
	// Mops is throughput in millions of operations per second.
	Mops float64 `json:"mops,omitempty"`
	// UpdateMops/RangeMpairs split fig6's two roles.
	UpdateMops  float64 `json:"update_mops,omitempty"`
	RangeMpairs float64 `json:"range_mpairs,omitempty"`
	// Commits/Aborts/AbortRate are STM counters over the data point's
	// window, for subjects that expose them.
	Commits   uint64  `json:"commits,omitempty"`
	Aborts    uint64  `json:"aborts,omitempty"`
	AbortRate float64 `json:"abort_rate,omitempty"`
	// FastCommits/SlowCommits/FastAborts are range-path counters, for
	// subjects that expose them.
	FastCommits uint64 `json:"fast_commits,omitempty"`
	SlowCommits uint64 `json:"slow_commits,omitempty"`
	FastAborts  uint64 `json:"fast_aborts,omitempty"`
	// FastReadHits/FastReadFallbacks are the optimistic point-read
	// counters over the data point's window: reads answered without a
	// transaction, and fast-path attempts that fell back to one.
	FastReadHits      uint64 `json:"fast_read_hits,omitempty"`
	FastReadFallbacks uint64 `json:"fast_read_fallbacks,omitempty"`
	// Window is the measurement window index of a churn run (the series
	// whose flatness demonstrates background reclamation working). The
	// churn fields are pointers so that churn rows always carry them —
	// window 0 is a real window and a zero backlog is the healthy result
	// the experiment demonstrates — while other experiments' rows omit
	// them entirely instead of reporting unmeasured zeros.
	Window *int `json:"window,omitempty"`
	// Backlog is the stitched-but-logically-deleted node count sampled
	// at the end of a churn window; Handles the registry length; Drained
	// the cumulative nodes reclaimed by the maintenance subsystem.
	Backlog *int    `json:"backlog,omitempty"`
	Handles *int    `json:"handles,omitempty"`
	Drained *uint64 `json:"drained,omitempty"`
	// Fsync names the persist experiment's durability policy ("off",
	// "none", "interval", "always"); WalMB is the WAL volume the trial
	// appended and OverheadPct the throughput cost versus the
	// durability-off baseline of the same workload.
	Fsync       string  `json:"fsync,omitempty"`
	WalMB       float64 `json:"wal_mb,omitempty"`
	OverheadPct float64 `json:"overhead_pct,omitempty"`
	// Transport names the net experiment's transport ("tcp", "unix");
	// Pipeline is its per-connection in-flight request window (1 = the
	// closed-loop series). Threads counts client connections there.
	Transport string `json:"transport,omitempty"`
	Pipeline  int    `json:"pipeline,omitempty"`
	// KeyBytes is the fixed key/value width of a byte-key net series;
	// zero means the int64 family (8-byte fixed keys on the v1 ops).
	// Namespaces is how many byte-string namespaces the series drove;
	// zero means the default map. Both are row identity: benchdiff keys
	// on them, so an int64 row and a byte-key row never cross-compare
	// (and old baselines, which predate the fields, decode them as zero
	// and keep matching the int64 series).
	KeyBytes   int `json:"key_bytes,omitempty"`
	Namespaces int `json:"namespaces,omitempty"`
}

// Report collects Rows across experiments; it is safe for concurrent
// use.
type Report struct {
	mu   sync.Mutex
	rows []Row
}

// Add appends one row.
func (r *Report) Add(row Row) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rows = append(r.rows, row)
	r.mu.Unlock()
}

// Rows returns a snapshot of the collected rows.
func (r *Report) Rows() []Row {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Row, len(r.rows))
	copy(out, r.rows)
	return out
}

// WriteJSON writes the report as an indented JSON object: the recording
// environment header followed by the rows.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Env  Env   `json:"env"`
		Rows []Row `json:"rows"`
	}{Env: CurrentEnv(), Rows: r.Rows()})
}

// fillSubjectStats decorates row with the subject's identity (the
// constructed map's name — which, unlike the factory label, carries the
// resolved shard count — plus the shard count itself) and its STM and
// range-path counters relative to the pre-run snapshots. A non-nil reg
// additionally banks the same deltas into run-wide obs counters
// (registration is idempotent, so banking at fill time needs no
// setup), keeping the registry and the rows trivially cross-checkable.
func fillSubjectStats(row *Row, m Map, stmBefore stm.Stats, rqBefore skiphash.RangeStats, reg *obs.Registry) {
	row.Map = m.Name()
	if ns, ok := m.(interface{ NumShards() int }); ok {
		row.Shards = ns.NumShards()
	}
	if src, ok := m.(STMStatsSource); ok {
		d := src.STMStats().Sub(stmBefore)
		row.Commits = d.Commits
		row.Aborts = d.Aborts
		if total := d.Commits + d.Aborts; total > 0 {
			row.AbortRate = float64(d.Aborts) / float64(total)
		}
		row.FastReadHits = d.FastReadHits
		row.FastReadFallbacks = d.FastReadFallbacks
	}
	if src, ok := m.(RangePathStats); ok {
		d := src.RangeStats().Sub(rqBefore)
		row.FastCommits = d.FastCommits
		row.SlowCommits = d.SlowCommits
		row.FastAborts = d.FastAborts
	}
	if reg != nil {
		bankRow(reg, row)
	}
}

// bankRow adds one row's measured deltas to the run-wide registry: by
// construction the registry totals always equal the sums over every
// row reported so far.
func bankRow(reg *obs.Registry, row *Row) {
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"skipbench_rows_total", "Data-point rows reported.", 1},
		{"skipbench_commits_total", "STM commits across measured windows.", row.Commits},
		{"skipbench_aborts_total", "STM aborts across measured windows.", row.Aborts},
		{"skipbench_fastread_hits_total", "Optimistic fast-path read hits.", row.FastReadHits},
		{"skipbench_fastread_fallbacks_total", "Fast-path reads that fell back.", row.FastReadFallbacks},
		{"skipbench_range_fast_commits_total", "Fast-path range commits.", row.FastCommits},
		{"skipbench_range_slow_commits_total", "Slow-path range commits.", row.SlowCommits},
		{"skipbench_range_fast_aborts_total", "Fast-path range aborts.", row.FastAborts},
	} {
		reg.Counter(c.name, c.help).Add(c.v)
	}
}

// subjectSnapshots captures the pre-run counters needed by
// fillSubjectStats; zero values are returned for subjects without the
// interfaces.
func subjectSnapshots(m Map) (stm.Stats, skiphash.RangeStats) {
	var s stm.Stats
	var r skiphash.RangeStats
	if src, ok := m.(STMStatsSource); ok {
		s = src.STMStats()
	}
	if src, ok := m.(RangePathStats); ok {
		r = src.RangeStats()
	}
	return s, r
}
