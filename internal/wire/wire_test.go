package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// roundTripRequest encodes req, walks it back through the frame reader
// and parser, and returns the decoded copy.
func roundTripRequest(t *testing.T, req Request) Request {
	t.Helper()
	frame := AppendRequest(nil, &req)
	fr := NewFrameReader(bytes.NewReader(frame), MaxRequestPayload)
	payload, err := fr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	got, err := ParseRequest(payload)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	return got
}

func roundTripResponse(t *testing.T, resp Response) Response {
	t.Helper()
	frame := AppendResponse(nil, &resp)
	fr := NewFrameReader(bytes.NewReader(frame), MaxResponsePayload)
	payload, err := fr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	got, err := ParseResponse(payload)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Op: OpGet, Key: 42},
		{ID: 2, Op: OpInsert, Key: math.MinInt64, Val: math.MaxInt64},
		{ID: 3, Op: OpPut, Key: -7, Val: 70},
		{ID: 4, Op: OpDel, Key: 9},
		{ID: 5, Op: OpRange, Key: -100, Val: 100, Max: 17},
		{ID: 6, Op: OpBatch, Steps: []Step{
			{Kind: StepInsert, Key: 1, Val: 10},
			{Kind: StepRemove, Key: 2},
			{Kind: StepLookup, Key: 3},
		}},
		{ID: 7, Op: OpSync},
		{ID: 8, Op: OpSnapshot},
		{ID: 9, Op: OpResize, Key: 16},
		{ID: math.MaxUint64, Op: OpPing},
	}
	for _, req := range reqs {
		got := roundTripRequest(t, req)
		if got.ID != req.ID || got.Op != req.Op || got.Key != req.Key ||
			got.Val != req.Val || got.Max != req.Max || len(got.Steps) != len(req.Steps) {
			t.Fatalf("%s: round trip %+v -> %+v", req.Op, req, got)
		}
		for i := range req.Steps {
			if got.Steps[i] != req.Steps[i] {
				t.Fatalf("%s: step %d %+v -> %+v", req.Op, i, req.Steps[i], got.Steps[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Op: OpGet, Ok: true, Val: -5},
		{ID: 2, Op: OpGet, Ok: false},
		{ID: 3, Op: OpInsert, Ok: true},
		{ID: 4, Op: OpDel, Ok: false},
		{ID: 5, Op: OpRange, Pairs: []KV{{Key: 1, Val: 10}, {Key: 2, Val: 20}}},
		{ID: 6, Op: OpRange, Pairs: nil},
		{ID: 7, Op: OpBatch, Steps: []StepResult{{Ok: true, Out: 0}, {Ok: false, Out: 33}}},
		{ID: 8, Op: OpSync},
		{ID: 9, Op: OpPing},
		{ID: 10, Op: OpBatch, Status: StatusCrossShard, Msg: "spans shards"},
		{ID: 11, Op: OpSync, Status: StatusNotDurable, Msg: "no durability"},
		{ID: 12, Op: OpGet, Status: StatusShuttingDown},
		{ID: 13, Op: OpResize, Val: 32},
		{ID: 14, Op: OpResize, Status: StatusErr, Msg: "backend is not resizable"},
	}
	for _, resp := range resps {
		got := roundTripResponse(t, resp)
		if got.ID != resp.ID || got.Op != resp.Op || got.Status != resp.Status ||
			got.Ok != resp.Ok || got.Val != resp.Val || got.Msg != resp.Msg ||
			len(got.Pairs) != len(resp.Pairs) || len(got.Steps) != len(resp.Steps) {
			t.Fatalf("round trip %+v -> %+v", resp, got)
		}
		for i := range resp.Pairs {
			if got.Pairs[i] != resp.Pairs[i] {
				t.Fatalf("pair %d: %+v -> %+v", i, resp.Pairs[i], got.Pairs[i])
			}
		}
		for i := range resp.Steps {
			if got.Steps[i] != resp.Steps[i] {
				t.Fatalf("step %d: %+v -> %+v", i, resp.Steps[i], got.Steps[i])
			}
		}
	}
}

func TestPipelinedFrames(t *testing.T) {
	var stream []byte
	for i := uint64(1); i <= 100; i++ {
		stream = AppendRequest(stream, &Request{ID: i, Op: OpGet, Key: int64(i)})
	}
	fr := NewFrameReader(bytes.NewReader(stream), MaxRequestPayload)
	for i := uint64(1); i <= 100; i++ {
		payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		req, err := ParseRequest(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if req.ID != i || req.Key != int64(i) {
			t.Fatalf("frame %d decoded as %+v", i, req)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestCorruptFrameRejected(t *testing.T) {
	frame := AppendRequest(nil, &Request{ID: 1, Op: OpInsert, Key: 5, Val: 50})
	for _, bit := range []int{0, 35, 60} {
		mutated := bytes.Clone(frame)
		mutated[len(mutated)-1-bit%8] ^= 1 << (bit % 8)
		// Flipping length bytes may turn into a short read instead of a
		// checksum error; both must reject, never decode silently.
		fr := NewFrameReader(bytes.NewReader(mutated), MaxRequestPayload)
		payload, err := fr.Next()
		if err == nil {
			if _, perr := ParseRequest(payload); perr == nil {
				if !bytes.Equal(payload, frame[frameHeaderLen:]) {
					t.Fatalf("bit %d: corrupt frame decoded to different payload", bit)
				}
			}
		}
	}
	// Deterministic checksum violation: flip a payload byte only.
	mutated := bytes.Clone(frame)
	mutated[frameHeaderLen] ^= 0xff
	fr := NewFrameReader(bytes.NewReader(mutated), MaxRequestPayload)
	if _, err := fr.Next(); err == nil {
		t.Fatal("payload bit flip not caught by checksum")
	} else {
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Fatalf("want *ProtocolError, got %v", err)
		}
	}
}

func TestTruncatedFrame(t *testing.T) {
	frame := AppendRequest(nil, &Request{ID: 1, Op: OpRange, Key: 0, Val: 100, Max: 3})
	for cut := 1; cut < len(frame); cut++ {
		fr := NewFrameReader(bytes.NewReader(frame[:cut]), MaxRequestPayload)
		if _, err := fr.Next(); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(frame))
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxRequestPayload+1)
	fr := NewFrameReader(bytes.NewReader(hdr[:]), MaxRequestPayload)
	_, err := fr.Next()
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("oversized frame: want *ProtocolError, got %v", err)
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	req := Request{ID: 9, Op: OpGet, Key: 1}
	frame := AppendRequest(nil, &req)
	payload := append(bytes.Clone(frame[frameHeaderLen:]), 0xAB)
	if _, err := ParseRequest(payload); err == nil {
		t.Fatal("trailing bytes not rejected")
	}
}

func TestUnknownOpRejected(t *testing.T) {
	frame := AppendRequest(nil, &Request{ID: 1, Op: OpPing})
	payload := bytes.Clone(frame[frameHeaderLen:])
	payload[8] = 0xEE // op byte
	if _, err := ParseRequest(payload); err == nil {
		t.Fatal("unknown op not rejected")
	}
}

func TestBatchStepLimit(t *testing.T) {
	var payload []byte
	payload = appendU64(payload, 1)
	payload = append(payload, byte(OpBatch))
	payload = appendU32(payload, MaxBatchSteps+1)
	if _, err := ParseRequest(payload); err == nil {
		t.Fatal("oversized batch not rejected")
	}
}

func TestMaxBatchEncodesWithinRequestLimit(t *testing.T) {
	// Every batch MaxBatchSteps admits must also be encodable as a
	// legal frame: a limit the framing rejects would let one oversized
	// request kill a whole pipelined connection.
	steps := make([]Step, MaxBatchSteps)
	for i := range steps {
		steps[i] = Step{Kind: StepInsert, Key: int64(i), Val: int64(i)} // widest step encoding
	}
	frame := AppendRequest(nil, &Request{ID: 1, Op: OpBatch, Steps: steps})
	if payload := len(frame) - frameHeaderLen; payload > MaxRequestPayload {
		t.Fatalf("maximal batch payload %d exceeds MaxRequestPayload %d", payload, MaxRequestPayload)
	}
	fr := NewFrameReader(bytes.NewReader(frame), MaxRequestPayload)
	payload, err := fr.Next()
	if err != nil {
		t.Fatalf("maximal batch frame rejected: %v", err)
	}
	req, err := ParseRequest(payload)
	if err != nil || len(req.Steps) != MaxBatchSteps {
		t.Fatalf("maximal batch decode: %d steps, %v", len(req.Steps), err)
	}
}
