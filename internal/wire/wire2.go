package wire

// The v2 frame family: namespace-addressed data ops over
// variable-length byte-string keys and values, plus the namespace admin
// ops. Frames share v1's transport (length prefix, CRC-32C, the same
// FrameReader) and the same request/response prologues; only the op set
// and bodies differ.
//
// # Encoding
//
// Every v2 data op starts its body with the u32 namespace id the server
// assigned at create time (NsCreate returns it, NsList reports it).
// Keys and values are length-prefixed byte strings: [u32 len][bytes],
// with len bounded by MaxKeyLen / MaxValLen. Zero-length keys and
// values are legal — "" is the smallest key of the byte-string order.
//
//	Get2     ns, key              -> ok, val
//	Insert2  ns, key, val         -> ok (inserted; absent-key contract)
//	Put2     ns, key, val         -> ok (replaced; upsert contract)
//	Del2     ns, key              -> ok (was present)
//	Range2   ns, lo, hi, max, fl  -> pairs (lexicographic byte order;
//	                                 flag bit 0 = no upper bound; the
//	                                 server truncates at MaxRangeBytes2
//	                                 so the response fits one frame —
//	                                 paginate by resuming from the last
//	                                 key + "\x00")
//	Batch2   ns, n steps          -> n step results, applied atomically
//	Sync2    ns                   -> fsync that namespace's WAL
//	Snap2    ns                   -> snapshot that namespace now
//	Resize2  ns, n                -> live-resize that namespace's map to
//	                                 n shards; resulting count in Val
//
// The admin ops address namespaces by name, not id:
//
//	NsCreate name, durable, fsync -> id (StatusNsExists if present)
//	NsDrop   name                 -> empty (StatusNsNotFound if absent;
//	                                 a durable namespace's directory is
//	                                 deleted with it)
//	NsList                        -> entries of (id, name, durable)
//
// Namespace 0 is the always-present default map. It speaks the v1
// fixed-width ops (8-byte int64 keys and values, no namespace id, no
// length prefixes) — the fast encoding the int64 benchmarks ride — and
// refuses v2 data ops, so neither family ever pays the other's bytes.
//
// # Batch admission
//
// A Batch2 is admissible when it has at most MaxBatchSteps steps AND
// its encoded steps total at most MaxBatchBytes2. Both bounds are
// client-checkable before writing (BatchBytes2), and together they
// guarantee every admissible batch encodes within MaxRequestPayload —
// an oversized batch must be rejected by the sender, never by the
// framing, because a refused frame kills the whole pipelined
// connection.

// v2 limits, derived so every admissible message still encodes within
// the v1 frame limits (which are shared protocol constants).
const (
	// MaxKeyLen bounds one key's bytes.
	MaxKeyLen = 1 << 10
	// MaxValLen bounds one value's bytes.
	MaxValLen = 1 << 16
	// MaxNsName bounds a namespace name's bytes.
	MaxNsName = 128
	// batch2Prologue is a Batch2 payload's fixed cost: id (8) + op (1)
	// + namespace (4) + step count (4).
	batch2Prologue = 17
	// MaxBatchBytes2 bounds the encoded steps of one Batch2 request
	// (see BatchBytes2), leaving prologue headroom under
	// MaxRequestPayload.
	MaxBatchBytes2 = MaxRequestPayload - 64
	// MaxRangeBytes2 bounds one Range2 response's encoded pairs so the
	// response always fits a single frame; servers truncate longer
	// results and clients paginate, resuming from last key + "\x00".
	MaxRangeBytes2 = MaxResponsePayload - 64
)

// Fsync policy selectors for NsCreate, mapped by the server onto its
// durability engine's policies.
const (
	NsFsyncDefault uint8 = iota // server's default policy
	NsFsyncNone
	NsFsyncInterval
	NsFsyncAlways
)

// BStep is one primitive of an atomic Batch2 request.
type BStep struct {
	Kind uint8 // StepInsert, StepRemove, StepLookup
	Key  []byte
	Val  []byte // StepInsert only
}

// BStepResult is one Batch2 step's outcome: Ok is the insert/remove
// success or lookup presence, Val the looked-up value (nil for
// non-lookup steps and absent keys).
type BStepResult struct {
	Ok  bool
	Val []byte
}

// BKV is a byte-string key/value pair carried by Range2 responses.
type BKV struct {
	Key, Val []byte
}

// NsInfo is one NsList entry.
type NsInfo struct {
	ID      uint32
	Name    string
	Durable bool
}

// StepBytes2 is the encoded size of one Batch2 step.
func StepBytes2(s *BStep) int {
	n := 1 + 4 + len(s.Key)
	if s.Kind == StepInsert {
		n += 4 + len(s.Val)
	}
	return n
}

// BatchBytes2 is the encoded size of a Batch2 request's steps; a batch
// is admissible when len(steps) <= MaxBatchSteps and BatchBytes2 <=
// MaxBatchBytes2.
func BatchBytes2(steps []BStep) int {
	n := 0
	for i := range steps {
		n += StepBytes2(&steps[i])
	}
	return n
}

// --- Encoding -----------------------------------------------------------

func appendBytes(dst []byte, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// appendRequest2 encodes a v2 request body (everything after the id and
// op byte); AppendRequest dispatches here.
func appendRequest2(dst []byte, req *Request) []byte {
	switch req.Op {
	case OpNsCreate:
		dst = appendString(dst, req.Name)
		dst = appendBool(dst, req.Durable)
		return append(dst, req.Fsync)
	case OpNsDrop:
		return appendString(dst, req.Name)
	case OpNsList:
		return dst
	}
	dst = appendU32(dst, req.NS)
	switch req.Op {
	case OpGet2, OpDel2:
		dst = appendBytes(dst, req.BKey)
	case OpInsert2, OpPut2:
		dst = appendBytes(dst, req.BKey)
		dst = appendBytes(dst, req.BVal)
	case OpRange2:
		dst = appendBytes(dst, req.BKey)
		dst = appendBytes(dst, req.BVal)
		dst = appendU32(dst, req.Max)
		var fl uint8
		if req.NoHi {
			fl |= 1
		}
		dst = append(dst, fl)
	case OpBatch2:
		dst = appendU32(dst, uint32(len(req.BSteps)))
		for i := range req.BSteps {
			s := &req.BSteps[i]
			dst = append(dst, s.Kind)
			dst = appendBytes(dst, s.Key)
			if s.Kind == StepInsert {
				dst = appendBytes(dst, s.Val)
			}
		}
	case OpResize2:
		dst = appendI64(dst, req.Key)
	case OpSync2, OpSnapshot2:
		// namespace id only
	}
	return dst
}

// appendResponse2 encodes a v2 StatusOK response body.
func appendResponse2(dst []byte, resp *Response) []byte {
	switch resp.Op {
	case OpGet2:
		dst = appendBool(dst, resp.Ok)
		if resp.Ok {
			dst = appendBytes(dst, resp.BVal)
		}
	case OpInsert2, OpPut2, OpDel2:
		dst = appendBool(dst, resp.Ok)
	case OpRange2:
		dst = appendU32(dst, uint32(len(resp.BPairs)))
		for i := range resp.BPairs {
			dst = appendBytes(dst, resp.BPairs[i].Key)
			dst = appendBytes(dst, resp.BPairs[i].Val)
		}
	case OpBatch2:
		dst = appendU32(dst, uint32(len(resp.BSteps)))
		for i := range resp.BSteps {
			s := &resp.BSteps[i]
			dst = appendBool(dst, s.Ok)
			dst = appendBytes(dst, s.Val)
		}
	case OpNsCreate:
		dst = appendU32(dst, resp.NsID)
	case OpNsList:
		dst = appendU32(dst, uint32(len(resp.Namespaces)))
		for i := range resp.Namespaces {
			ns := &resp.Namespaces[i]
			dst = appendU32(dst, ns.ID)
			dst = appendString(dst, ns.Name)
			dst = appendBool(dst, ns.Durable)
		}
	case OpResize2:
		dst = appendI64(dst, resp.Val)
	case OpSync2, OpSnapshot2, OpNsDrop:
		// no body
	}
	return dst
}

// --- Decoding -----------------------------------------------------------

// bstr reads a length-prefixed byte string, enforcing maxLen and
// copying the bytes out of the frame buffer (which is reused by the
// next frame).
func (d *decoder) bstr(maxLen int, what string) []byte {
	n := d.u32(what + " length")
	if d.err != nil {
		return nil
	}
	if int(n) > maxLen {
		d.err = protoErrf("%s of %d bytes exceeds limit %d", what, n, maxLen)
		return nil
	}
	raw := d.bytes(int(n), what)
	if d.err != nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, raw)
	return out
}

func (d *decoder) str(maxLen int, what string) string {
	n := d.u32(what + " length")
	if d.err != nil {
		return ""
	}
	if int(n) > maxLen {
		d.err = protoErrf("%s of %d bytes exceeds limit %d", what, n, maxLen)
		return ""
	}
	return string(d.bytes(int(n), what))
}

// parseRequest2 decodes a v2 request body; ParseRequest dispatches
// here after reading the id and op.
func parseRequest2(d *decoder, req *Request) {
	switch req.Op {
	case OpNsCreate:
		req.Name = d.str(MaxNsName, "namespace name")
		req.Durable = d.bool8("durable")
		req.Fsync = d.u8("fsync policy")
		if d.err == nil && req.Fsync > NsFsyncAlways {
			d.err = protoErrf("unknown fsync policy %d", req.Fsync)
		}
		return
	case OpNsDrop:
		req.Name = d.str(MaxNsName, "namespace name")
		return
	case OpNsList:
		return
	}
	req.NS = d.u32("namespace")
	switch req.Op {
	case OpGet2, OpDel2:
		req.BKey = d.bstr(MaxKeyLen, "key")
	case OpInsert2, OpPut2:
		req.BKey = d.bstr(MaxKeyLen, "key")
		req.BVal = d.bstr(MaxValLen, "val")
	case OpRange2:
		req.BKey = d.bstr(MaxKeyLen, "lo")
		req.BVal = d.bstr(MaxKeyLen, "hi")
		req.Max = d.u32("max")
		fl := d.u8("flags")
		if d.err == nil && fl > 1 {
			d.err = protoErrf("unknown range flags %#x", fl)
		}
		req.NoHi = fl&1 != 0
	case OpBatch2:
		n := d.u32("step count")
		if d.err == nil && n > MaxBatchSteps {
			d.err = protoErrf("batch of %d steps exceeds limit %d", n, MaxBatchSteps)
			return
		}
		if d.err == nil {
			req.BSteps = make([]BStep, 0, min(int(n), len(d.buf)/5))
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			var s BStep
			s.Kind = d.u8("step kind")
			if d.err == nil && s.Kind > StepLookup {
				d.err = protoErrf("unknown batch step kind %d", s.Kind)
				return
			}
			s.Key = d.bstr(MaxKeyLen, "step key")
			if s.Kind == StepInsert {
				s.Val = d.bstr(MaxValLen, "step val")
			}
			if d.err == nil {
				req.BSteps = append(req.BSteps, s)
			}
		}
	case OpResize2:
		req.Key = d.i64("shards")
	case OpSync2, OpSnapshot2:
		// namespace id only
	}
}

// parseResponse2 decodes a v2 StatusOK response body.
func parseResponse2(d *decoder, resp *Response) {
	switch resp.Op {
	case OpGet2:
		resp.Ok = d.bool8("ok")
		if resp.Ok && d.err == nil {
			resp.BVal = d.bstr(MaxValLen, "val")
		}
	case OpInsert2, OpPut2, OpDel2:
		resp.Ok = d.bool8("ok")
	case OpRange2:
		n := d.u32("pair count")
		// Each pair costs at least 8 bytes of length prefixes; bound the
		// allocation by what the payload could actually hold.
		if d.err == nil && int64(n)*8 > int64(len(d.buf)) {
			d.err = protoErrf("pair count %d exceeds payload", n)
			return
		}
		resp.BPairs = make([]BKV, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			k := d.bstr(MaxKeyLen, "pair key")
			v := d.bstr(MaxValLen, "pair val")
			if d.err == nil {
				resp.BPairs = append(resp.BPairs, BKV{Key: k, Val: v})
			}
		}
	case OpBatch2:
		n := d.u32("result count")
		if d.err == nil && n > MaxBatchSteps {
			d.err = protoErrf("batch of %d results exceeds limit %d", n, MaxBatchSteps)
			return
		}
		if d.err == nil {
			resp.BSteps = make([]BStepResult, 0, min(int(n), len(d.buf)/5))
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			ok := d.bool8("result ok")
			val := d.bstr(MaxValLen, "result val")
			if d.err == nil {
				resp.BSteps = append(resp.BSteps, BStepResult{Ok: ok, Val: val})
			}
		}
	case OpNsCreate:
		resp.NsID = d.u32("namespace id")
	case OpNsList:
		n := d.u32("namespace count")
		if d.err == nil && int64(n)*9 > int64(len(d.buf)) {
			d.err = protoErrf("namespace count %d exceeds payload", n)
			return
		}
		resp.Namespaces = make([]NsInfo, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			var ns NsInfo
			ns.ID = d.u32("namespace id")
			ns.Name = d.str(MaxNsName, "namespace name")
			ns.Durable = d.bool8("durable")
			if d.err == nil {
				resp.Namespaces = append(resp.Namespaces, ns)
			}
		}
	case OpResize2:
		resp.Val = d.i64("shards")
	case OpSync2, OpSnapshot2, OpNsDrop:
		// no body
	}
}
