package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func roundTripReplMsg(t *testing.T, m ReplMsg) ReplMsg {
	t.Helper()
	frame := AppendReplMsg(nil, &m)
	fr := NewFrameReader(bytes.NewReader(frame), MaxResponsePayload)
	payload, err := fr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	got, err := ParseReplMsg(payload)
	if err != nil {
		t.Fatalf("ParseReplMsg: %v", err)
	}
	return got
}

func TestReplMsgRoundTrip(t *testing.T) {
	msgs := []ReplMsg{
		{Op: OpFollow, Epoch: 7, Seq: 42},
		{Op: OpFollow, Epoch: 8, Seq: 0, Full: true},
		{Op: OpSnapChunk, Stamp: 100, Pairs: []KV{{Key: 1, Val: 10}, {Key: -2, Val: 20}}},
		{Op: OpSnapChunk, Stamp: 0, Pairs: nil},
		{Op: OpWalRecord, Seq: 3, Stamp: 101, Count: 2, Ops: []byte{1, 2, 3, 4}},
		{Op: OpWalRecord, Seq: 4, Stamp: 102, Count: 0, Ops: nil},
		{Op: OpCaughtUp, Stamp: 103},
		{Op: OpHeartbeat, Stamp: 104},
	}
	for _, m := range msgs {
		got := roundTripReplMsg(t, m)
		if got.Op != m.Op || got.Epoch != m.Epoch || got.Seq != m.Seq ||
			got.Stamp != m.Stamp || got.Count != m.Count || got.Full != m.Full ||
			!bytes.Equal(got.Ops, m.Ops) || len(got.Pairs) != len(m.Pairs) {
			t.Fatalf("%s: round trip %+v -> %+v", m.Op, m, got)
		}
		for i := range m.Pairs {
			if got.Pairs[i] != m.Pairs[i] {
				t.Fatalf("%s: pair %d %+v -> %+v", m.Op, i, m.Pairs[i], got.Pairs[i])
			}
		}
	}
}

func TestReplMsgCopiesOps(t *testing.T) {
	src := []byte{1, 2, 3, 4}
	frame := AppendReplMsg(nil, &ReplMsg{Op: OpWalRecord, Seq: 1, Stamp: 1, Count: 1, Ops: src})
	payload := bytes.Clone(frame[frameHeaderLen:])
	m, err := ParseReplMsg(payload)
	if err != nil {
		t.Fatalf("ParseReplMsg: %v", err)
	}
	for i := range payload {
		payload[i] = 0xFF
	}
	if !bytes.Equal(m.Ops, src) {
		t.Fatalf("Ops alias the frame buffer: %v", m.Ops)
	}
}

func TestReplMsgRejectsGarbage(t *testing.T) {
	if _, err := ParseReplMsg([]byte{0xEE}); err == nil {
		t.Fatal("unknown replication op not rejected")
	}
	frame := AppendReplMsg(nil, &ReplMsg{Op: OpCaughtUp, Stamp: 9})
	payload := bytes.Clone(frame[frameHeaderLen:])
	if _, err := ParseReplMsg(payload[:len(payload)-2]); err == nil {
		t.Fatal("truncated payload not rejected")
	}
	if _, err := ParseReplMsg(append(payload, 0xAB)); err == nil {
		t.Fatal("trailing bytes not rejected")
	}
	// A pair count that cannot fit the payload must be rejected before
	// allocation.
	var chunk []byte
	chunk = append(chunk, byte(OpSnapChunk))
	chunk = appendU64(chunk, 1)
	chunk = appendU32(chunk, 1<<30)
	if _, err := ParseReplMsg(chunk); err == nil {
		t.Fatal("oversized snap chunk pair count not rejected")
	}
}

func TestWatermarkPromoteRoundTrip(t *testing.T) {
	got := roundTripRequest(t, Request{ID: 1, Op: OpWatermark})
	if got.Op != OpWatermark {
		t.Fatalf("watermark request round trip: %+v", got)
	}
	got = roundTripRequest(t, Request{ID: 2, Op: OpPromote})
	if got.Op != OpPromote {
		t.Fatalf("promote request round trip: %+v", got)
	}
	resp := roundTripResponse(t, Response{ID: 1, Op: OpWatermark, Val: 1 << 40})
	if resp.Val != 1<<40 {
		t.Fatalf("watermark response Val = %d", resp.Val)
	}
	resp = roundTripResponse(t, Response{ID: 2, Op: OpPromote})
	if resp.Op != OpPromote || resp.Status != StatusOK {
		t.Fatalf("promote response round trip: %+v", resp)
	}
	resp = roundTripResponse(t, Response{ID: 3, Op: OpPut, Status: StatusReadOnly, Msg: "replica"})
	if resp.Status != StatusReadOnly || resp.Msg != "replica" {
		t.Fatalf("read-only response round trip: %+v", resp)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	got := roundTripRequest(t, Request{ID: 7, Op: OpStats})
	if got.Op != OpStats || got.ID != 7 {
		t.Fatalf("stats request round trip: %+v", got)
	}
	blob := []byte("# HELP skiphash_stm_commits_total x\nskiphash_stm_commits_total 42\n")
	resp := roundTripResponse(t, Response{ID: 7, Op: OpStats, BVal: blob})
	if !bytes.Equal(resp.BVal, blob) {
		t.Fatalf("stats response blob = %q", resp.BVal)
	}
	// An oversized blob length must be rejected before allocation.
	frame := AppendResponse(nil, &Response{ID: 8, Op: OpStats, BVal: []byte("x")})
	payload := bytes.Clone(frame[frameHeaderLen:])
	binary.LittleEndian.PutUint32(payload[10:], MaxStatsLen+1)
	if _, err := ParseResponse(payload); err == nil {
		t.Fatal("oversized stats length not rejected")
	}
}
