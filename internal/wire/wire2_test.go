package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestRequest2RoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Op: OpGet2, NS: 3, BKey: []byte("feed/politics")},
		{ID: 2, Op: OpGet2, NS: 0, BKey: []byte{}}, // zero-length key is legal
		{ID: 3, Op: OpInsert2, NS: 9, BKey: []byte("a"), BVal: []byte("value")},
		{ID: 4, Op: OpPut2, NS: 9, BKey: bytes.Repeat([]byte{0xff}, MaxKeyLen), BVal: nil},
		{ID: 5, Op: OpDel2, NS: 1, BKey: []byte("\x00\x01\x02")},
		{ID: 6, Op: OpRange2, NS: 2, BKey: []byte("a"), BVal: []byte("z"), Max: 7},
		{ID: 7, Op: OpRange2, NS: 2, BKey: nil, BVal: nil, NoHi: true},
		{ID: 8, Op: OpBatch2, NS: 4, BSteps: []BStep{
			{Kind: StepInsert, Key: []byte("k1"), Val: []byte("v1")},
			{Kind: StepRemove, Key: []byte("k2")},
			{Kind: StepLookup, Key: []byte{}},
		}},
		{ID: 9, Op: OpSync2, NS: 5},
		{ID: 10, Op: OpSnapshot2, NS: 6},
		{ID: 11, Op: OpNsCreate, Name: "news-articles", Durable: true, Fsync: NsFsyncAlways},
		{ID: 12, Op: OpNsCreate, Name: "", Durable: false, Fsync: NsFsyncDefault},
		{ID: 13, Op: OpNsDrop, Name: "news-articles"},
		{ID: 14, Op: OpNsList},
		{ID: 15, Op: OpResize2, NS: 7, Key: 16},
	}
	for _, req := range reqs {
		got := roundTripRequest(t, req)
		if got.ID != req.ID || got.Op != req.Op || got.NS != req.NS ||
			!bytes.Equal(got.BKey, req.BKey) || !bytes.Equal(got.BVal, req.BVal) ||
			got.Max != req.Max || got.NoHi != req.NoHi || got.Key != req.Key ||
			got.Name != req.Name || got.Durable != req.Durable || got.Fsync != req.Fsync ||
			len(got.BSteps) != len(req.BSteps) {
			t.Fatalf("%s: round trip %+v -> %+v", req.Op, req, got)
		}
		for i := range req.BSteps {
			if got.BSteps[i].Kind != req.BSteps[i].Kind ||
				!bytes.Equal(got.BSteps[i].Key, req.BSteps[i].Key) ||
				!bytes.Equal(got.BSteps[i].Val, req.BSteps[i].Val) {
				t.Fatalf("%s: step %d %+v -> %+v", req.Op, i, req.BSteps[i], got.BSteps[i])
			}
		}
	}
}

func TestResponse2RoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Op: OpGet2, Ok: true, BVal: []byte("payload")},
		{ID: 2, Op: OpGet2, Ok: true, BVal: []byte{}},
		{ID: 3, Op: OpGet2, Ok: false},
		{ID: 4, Op: OpInsert2, Ok: true},
		{ID: 5, Op: OpDel2, Ok: false},
		{ID: 6, Op: OpRange2, BPairs: []BKV{
			{Key: []byte(""), Val: []byte("empty key")},
			{Key: []byte("k"), Val: []byte{}},
		}},
		{ID: 7, Op: OpRange2, BPairs: nil},
		{ID: 8, Op: OpBatch2, BSteps: []BStepResult{
			{Ok: true, Val: []byte("looked up")},
			{Ok: false, Val: nil},
		}},
		{ID: 9, Op: OpSync2},
		{ID: 10, Op: OpNsCreate, NsID: 17},
		{ID: 11, Op: OpNsDrop},
		{ID: 12, Op: OpNsList, Namespaces: []NsInfo{
			{ID: 0, Name: "default", Durable: true},
			{ID: 3, Name: "articles", Durable: false},
		}},
		{ID: 13, Op: OpGet2, Status: StatusNsNotFound, Msg: "namespace 9 not found"},
		{ID: 14, Op: OpNsCreate, Status: StatusNsExists, Msg: "articles exists"},
		{ID: 15, Op: OpResize2, Val: 8},
	}
	for _, resp := range resps {
		got := roundTripResponse(t, resp)
		if got.ID != resp.ID || got.Op != resp.Op || got.Status != resp.Status ||
			got.Ok != resp.Ok || got.NsID != resp.NsID || got.Msg != resp.Msg ||
			got.Val != resp.Val ||
			!bytes.Equal(got.BVal, resp.BVal) ||
			len(got.BPairs) != len(resp.BPairs) || len(got.BSteps) != len(resp.BSteps) ||
			!reflect.DeepEqual(got.Namespaces, resp.Namespaces) &&
				!(len(got.Namespaces) == 0 && len(resp.Namespaces) == 0) {
			t.Fatalf("round trip %+v -> %+v", resp, got)
		}
		for i := range resp.BPairs {
			if !bytes.Equal(got.BPairs[i].Key, resp.BPairs[i].Key) ||
				!bytes.Equal(got.BPairs[i].Val, resp.BPairs[i].Val) {
				t.Fatalf("pair %d: %+v -> %+v", i, resp.BPairs[i], got.BPairs[i])
			}
		}
		for i := range resp.BSteps {
			if got.BSteps[i].Ok != resp.BSteps[i].Ok ||
				!bytes.Equal(got.BSteps[i].Val, resp.BSteps[i].Val) {
				t.Fatalf("step %d: %+v -> %+v", i, resp.BSteps[i], got.BSteps[i])
			}
		}
	}
}

// TestRandomNamespaceRoundTrip is the encode/decode property test: v2
// traffic over randomly generated namespaces, keys and values must
// round-trip exactly, for every op shape, across many trials.
func TestRandomNamespaceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1107))
	randBytes := func(maxLen int) []byte {
		b := make([]byte, rng.Intn(maxLen+1))
		rng.Read(b)
		return b
	}
	for trial := 0; trial < 500; trial++ {
		ns := rng.Uint32()
		var req Request
		req.ID = rng.Uint64()
		switch rng.Intn(6) {
		case 0:
			req.Op, req.NS, req.BKey = OpGet2, ns, randBytes(64)
		case 1:
			req.Op, req.NS, req.BKey, req.BVal = OpInsert2, ns, randBytes(MaxKeyLen), randBytes(256)
		case 2:
			req.Op, req.NS, req.BKey, req.BVal = OpPut2, ns, randBytes(64), randBytes(MaxValLen/64)
		case 3:
			req.Op, req.NS, req.BKey = OpDel2, ns, randBytes(64)
		case 4:
			req.Op, req.NS = OpRange2, ns
			req.BKey, req.BVal = randBytes(32), randBytes(32)
			req.Max = rng.Uint32() % 1000
			req.NoHi = rng.Intn(2) == 0
		case 5:
			req.Op, req.NS = OpBatch2, ns
			for i := rng.Intn(8); i > 0; i-- {
				s := BStep{Kind: uint8(rng.Intn(3)), Key: randBytes(32)}
				if s.Kind == StepInsert {
					s.Val = randBytes(64)
				}
				req.BSteps = append(req.BSteps, s)
			}
		}
		frame := AppendRequest(nil, &req)
		got, err := ParseRequest(frame[frameHeaderLen:])
		if err != nil {
			t.Fatalf("trial %d: parse %s: %v", trial, req.Op, err)
		}
		// Re-encoding the decoded request must reproduce the original
		// frame byte for byte: the encoding is canonical.
		if !bytes.Equal(AppendRequest(nil, &got), frame) {
			t.Fatalf("trial %d: %s did not round-trip canonically", trial, req.Op)
		}
	}
}

func TestV2MalformedRejected(t *testing.T) {
	prologue := func(op Op) []byte {
		var p []byte
		p = appendU64(p, 1)
		return append(p, byte(op))
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"truncated key length prefix", append(appendU32(prologue(OpGet2), 3), 0x00, 0x01)}, // 2 of 4 length bytes
		{"truncated key body", append(appendU32(appendU32(prologue(OpGet2), 3), 10), 'a', 'b')},
		{"oversized key length", appendU32(appendU32(prologue(OpGet2), 3), MaxKeyLen+1)},
		{"oversized val length", appendU32(appendBytes(appendU32(prologue(OpInsert2), 3), []byte("k")), MaxValLen+1)},
		{"oversized namespace name", appendU32(prologue(OpNsCreate), MaxNsName+1)},
		{"bad fsync policy", append(appendString(prologue(OpNsCreate), "x"), 1, 99)},
		{"bad range flags", append(appendU32(appendBytes(appendBytes(appendU32(prologue(OpRange2), 1), nil), nil), 0), 0x04)},
		{"batch step limit", appendU32(appendU32(prologue(OpBatch2), 1), MaxBatchSteps+1)},
		{"bad batch step kind", append(appendU32(appendU32(prologue(OpBatch2), 1), 1), 7)},
		{"missing namespace id", prologue(OpSync2)},
	}
	for _, tc := range cases {
		if _, err := ParseRequest(tc.payload); err == nil {
			t.Errorf("%s: not rejected", tc.name)
		}
	}
	// Oversized value in a Get2 response.
	var resp []byte
	resp = appendU64(resp, 1)
	resp = append(resp, byte(OpGet2), byte(StatusOK), 1)
	resp = appendU32(resp, MaxValLen+1)
	if _, err := ParseResponse(resp); err == nil {
		t.Error("oversized response val not rejected")
	}
}

func TestV2CorruptFrameRejected(t *testing.T) {
	frame := AppendRequest(nil, &Request{ID: 1, Op: OpInsert2, NS: 2,
		BKey: []byte("article/2026/08/07"), BVal: bytes.Repeat([]byte("x"), 100)})
	for i := frameHeaderLen; i < len(frame); i++ {
		mutated := bytes.Clone(frame)
		mutated[i] ^= 0x40
		fr := NewFrameReader(bytes.NewReader(mutated), MaxRequestPayload)
		if _, err := fr.Next(); err == nil {
			t.Fatalf("payload corruption at byte %d not caught by checksum", i)
		}
	}
}

// TestMaxBatch2EncodesWithinRequestLimit pins the re-derived limit
// contract: any Batch2 within both admission bounds (MaxBatchSteps
// steps, MaxBatchBytes2 encoded bytes) must encode as a legal frame.
func TestMaxBatch2EncodesWithinRequestLimit(t *testing.T) {
	// Build a batch saturating the byte bound with wide insert steps.
	val := bytes.Repeat([]byte("v"), MaxValLen)
	var steps []BStep
	total := 0
	for {
		s := BStep{Kind: StepInsert, Key: []byte("key"), Val: val}
		if n := StepBytes2(&s); total+n > MaxBatchBytes2 {
			// Top up with the smallest possible step to get as close to
			// the bound as it allows.
			pad := BStep{Kind: StepLookup, Key: nil}
			for total+StepBytes2(&pad) <= MaxBatchBytes2 && len(steps) < MaxBatchSteps {
				steps = append(steps, pad)
				total += StepBytes2(&pad)
			}
			break
		} else {
			steps = append(steps, s)
			total += n
		}
	}
	if got := BatchBytes2(steps); got != total || got > MaxBatchBytes2 {
		t.Fatalf("BatchBytes2 = %d, accumulated %d, limit %d", got, total, MaxBatchBytes2)
	}
	frame := AppendRequest(nil, &Request{ID: 1, Op: OpBatch2, NS: 1, BSteps: steps})
	if payload := len(frame) - frameHeaderLen; payload > MaxRequestPayload {
		t.Fatalf("maximal Batch2 payload %d exceeds MaxRequestPayload %d", payload, MaxRequestPayload)
	}
	fr := NewFrameReader(bytes.NewReader(frame), MaxRequestPayload)
	payload, err := fr.Next()
	if err != nil {
		t.Fatalf("maximal Batch2 frame rejected: %v", err)
	}
	req, err := ParseRequest(payload)
	if err != nil || len(req.BSteps) != len(steps) {
		t.Fatalf("maximal Batch2 decode: %d steps, %v", len(req.BSteps), err)
	}
}

// FuzzParseFrames throws arbitrary payloads at both parsers. Neither
// may panic or over-allocate, and anything either accepts must
// re-encode canonically — a frame can be rejected or decoded exactly,
// never misdecoded.
func FuzzParseFrames(f *testing.F) {
	seed := []Request{
		{ID: 1, Op: OpGet, Key: 42},
		{ID: 2, Op: OpBatch, Steps: []Step{{Kind: StepInsert, Key: 1, Val: 2}}},
		{ID: 3, Op: OpGet2, NS: 1, BKey: []byte("k")},
		{ID: 4, Op: OpInsert2, NS: 2, BKey: []byte(""), BVal: []byte("v")},
		{ID: 5, Op: OpRange2, NS: 3, BKey: []byte("a"), BVal: []byte("z"), Max: 10},
		{ID: 6, Op: OpBatch2, NS: 4, BSteps: []BStep{{Kind: StepLookup, Key: []byte("q")}}},
		{ID: 7, Op: OpNsCreate, Name: "fuzz", Durable: true, Fsync: NsFsyncInterval},
		{ID: 8, Op: OpNsList},
	}
	for i := range seed {
		f.Add(AppendRequest(nil, &seed[i])[frameHeaderLen:])
	}
	f.Add(AppendResponse(nil, &Response{ID: 9, Op: OpGet2, Ok: true, BVal: []byte("v")})[frameHeaderLen:])
	f.Add(AppendResponse(nil, &Response{ID: 10, Op: OpNsList,
		Namespaces: []NsInfo{{ID: 1, Name: "a", Durable: true}}})[frameHeaderLen:])
	f.Fuzz(func(t *testing.T, payload []byte) {
		if req, err := ParseRequest(payload); err == nil {
			if !bytes.Equal(AppendRequest(nil, &req)[frameHeaderLen:], payload) {
				t.Fatalf("accepted request did not re-encode canonically: %+v", req)
			}
		}
		if resp, err := ParseResponse(payload); err == nil {
			if !bytes.Equal(AppendResponse(nil, &resp)[frameHeaderLen:], payload) {
				t.Fatalf("accepted response did not re-encode canonically: %+v", resp)
			}
		}
	})
}
