package wire

// The replication channel: the primary→replica stream reuses this
// package's frame transport but speaks ReplMsg payloads instead of the
// request/response codec. One TCP connection per follower carries, in
// order:
//
//	replica → primary   Follow {Epoch, Seq}         resume request
//	primary → replica   Follow {Epoch, Seq, Full}   stream header
//	primary → replica   SnapChunk {Stamp, Pairs}    full sync only
//	primary → replica   WalRecord {Seq, Stamp, Count, Ops}
//	primary → replica   CaughtUp {Stamp}            end of catch-up
//	primary → replica   Heartbeat {Stamp}           idle watermark
//
// The replica's Follow names the last (Epoch, Seq) it has applied;
// Seq 0 means "nothing". The primary answers with its own header: when
// the epochs match and the requested tail is still in the ring it
// replays from Seq+1 (Full=false); otherwise Full=true and the stream
// restarts from a snapshot, after which the replica must discard its
// state. Epochs are unique per primary incarnation, so a primary that
// crashed with a torn WAL tail and recovered never tail-feeds a
// replica that might have applied records the repair discarded.

// ReplMsg is one replication-channel message. Fields are meaningful
// per-op as documented above; unused fields are zero.
type ReplMsg struct {
	Op    Op
	Epoch uint64
	Seq   uint64
	Stamp uint64
	Count uint64
	Full  bool
	Ops   []byte
	Pairs []KV
}

// MaxReplPairs bounds one SnapChunk's pair count, mirroring
// MaxRangePairs' framing arithmetic.
const MaxReplPairs = (MaxResponsePayload - 64) / 16

// AppendReplMsg appends m as one complete frame to dst.
func AppendReplMsg(dst []byte, m *ReplMsg) []byte {
	dst, hdr := beginFrame(dst)
	dst = append(dst, byte(m.Op))
	switch m.Op {
	case OpFollow:
		dst = appendU64(dst, m.Epoch)
		dst = appendU64(dst, m.Seq)
		dst = appendBool(dst, m.Full)
	case OpSnapChunk:
		dst = appendU64(dst, m.Stamp)
		dst = appendU32(dst, uint32(len(m.Pairs)))
		for _, p := range m.Pairs {
			dst = appendI64(dst, p.Key)
			dst = appendI64(dst, p.Val)
		}
	case OpWalRecord:
		dst = appendU64(dst, m.Seq)
		dst = appendU64(dst, m.Stamp)
		dst = appendU64(dst, m.Count)
		dst = appendU32(dst, uint32(len(m.Ops)))
		dst = append(dst, m.Ops...)
	case OpCaughtUp, OpHeartbeat:
		dst = appendU64(dst, m.Stamp)
	}
	return finishFrame(dst, hdr)
}

// ParseReplMsg decodes one replication payload. Ops and Pairs are
// copied out of the frame buffer, so the buffer may be reused
// immediately.
func ParseReplMsg(payload []byte) (ReplMsg, error) {
	d := decoder{buf: payload}
	var m ReplMsg
	m.Op = Op(d.u8("op"))
	switch m.Op {
	case OpFollow:
		m.Epoch = d.u64("epoch")
		m.Seq = d.u64("seq")
		m.Full = d.u8("full") != 0
	case OpSnapChunk:
		m.Stamp = d.u64("stamp")
		n := d.u32("pair count")
		if int64(n)*16 > int64(len(payload)) {
			return m, protoErrf("snap chunk pair count %d exceeds payload", n)
		}
		if d.err == nil {
			m.Pairs = make([]KV, 0, n)
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			k := d.i64("pair key")
			v := d.i64("pair val")
			m.Pairs = append(m.Pairs, KV{Key: k, Val: v})
		}
	case OpWalRecord:
		m.Seq = d.u64("seq")
		m.Stamp = d.u64("stamp")
		m.Count = d.u64("count")
		n := d.u32("ops length")
		m.Ops = append([]byte(nil), d.bytes(int(n), "ops")...)
	case OpCaughtUp, OpHeartbeat:
		m.Stamp = d.u64("stamp")
	default:
		return m, protoErrf("unknown replication op %d", uint8(m.Op))
	}
	return m, d.finish()
}
