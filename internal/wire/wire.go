// Package wire defines the skip hash's binary serving protocol: the
// length-prefixed, CRC-framed request/response codec spoken between
// cmd/skiphashd (internal/server) and skiphash/client.
//
// # Framing
//
// Every message is one frame, reusing the persist package's framing
// discipline: [u32 payload length][u32 CRC-32C of payload][payload],
// all little-endian. A frame whose checksum does not match, whose
// length field exceeds the reader's limit, or whose payload is cut
// short is a protocol violation — unlike the WAL's torn tail there is
// no tolerable anomaly on a live connection, so the peer tears the
// connection down.
//
// # Requests and responses
//
// A request payload is [u64 id][u8 op][op-specific body]; a response
// payload is [u64 id][u8 op][u8 status][body]. The id is an opaque
// per-connection sequence number chosen by the client; the server
// echoes it so pipelined responses can be matched to their requests.
// Responses to one connection's requests are written in request order,
// but clients must match by id, not position — that contract is what
// lets the transport evolve (out-of-order execution, server pushes)
// without a flag day.
//
// Keys and values are signed 64-bit integers (the paper evaluation's
// type, and the type every map in this repository is benchmarked at).
//
// # Operations
//
//	Get      key            -> ok, val
//	Insert   key, val       -> ok (inserted; absent-key contract)
//	Put      key, val       -> ok (replaced; upsert contract)
//	Del      key            -> ok (was present)
//	Range    lo, hi, max    -> pairs (key order; max 0 = no client
//	                           bound; servers truncate at MaxRangePairs
//	                           so the response fits one frame)
//	Batch    n steps        -> n step results, applied atomically
//	Sync                    -> force WAL fsync (durable servers)
//	Snapshot                -> write a durable snapshot now
//	Ping                    -> empty (liveness, RTT probes)
//	Watermark               -> current commit-stamp watermark (Val);
//	                           on a replica the applied stamp, on a
//	                           primary a fresh clock read
//	Promote                 -> make a replica writable (no-op body)
//	Stats                   -> server metrics in the Prometheus text
//	                           exposition format, one length-prefixed
//	                           blob (bounded by MaxStatsLen)
//	Resize   n              -> live-migrate the default map to n shards
//	                           (0 = automatic); the resulting count
//	                           comes back in Val
//
// # Replication channel
//
// Ops 10–14 (Follow, SnapChunk, WalRecord, CaughtUp, Heartbeat) belong
// to the primary→replica replication channel, which reuses this
// package's framing but speaks ReplMsg payloads (see repl.go), not the
// request/response codec — they never appear in ParseRequest or
// ParseResponse traffic. Watermark and Promote are ordinary serving
// ops so clients and operators can reach them over a normal
// connection.
//
// Batch is the wire face of the map's Atomic: its steps (insert,
// remove, lookup) execute as one transaction, so observers see all of
// a batch's effects or none. On isolated-shard servers a batch whose
// keys span shards fails wholesale with StatusCrossShard, mirroring
// skiphash.ErrCrossShard.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/kv"
)

// KV is a key/value pair carried by Range responses.
type KV = kv.KV

// Op identifies a request's operation.
type Op uint8

// The protocol operations. The numeric values are the wire encoding
// and must never be reordered.
const (
	OpGet Op = iota + 1
	OpInsert
	OpPut
	OpDel
	OpRange
	OpBatch
	OpSync
	OpSnapshot
	OpPing
	// Replication-channel ops (ReplMsg payloads; never request/response).
	OpFollow
	OpSnapChunk
	OpWalRecord
	OpCaughtUp
	OpHeartbeat
	// Serving ops added with replication.
	OpWatermark
	OpPromote
	// The v2 frame family: namespace-addressed byte-string data ops and
	// namespace admin ops (see wire2.go for the encoding).
	OpGet2
	OpInsert2
	OpPut2
	OpDel2
	OpRange2
	OpBatch2
	OpSync2
	OpSnapshot2
	OpNsCreate
	OpNsDrop
	OpNsList
	// OpStats returns the server's metrics registry rendered in the
	// Prometheus text exposition format, as one length-prefixed blob
	// (the STATS2 op; see MaxStatsLen).
	OpStats
	// OpResize live-resizes the default map's shard count: Key carries
	// the requested count (0 = the map's automatic default), the
	// response's Val the resulting live count. OpResize2 is the
	// namespace-addressed variant.
	OpResize
	OpResize2
)

// IsV2Data reports whether op is a namespace-addressed v2 data op (its
// body begins with a namespace id). Admin ops address namespaces by
// name and are not data ops.
func (o Op) IsV2Data() bool {
	switch o {
	case OpGet2, OpInsert2, OpPut2, OpDel2, OpRange2, OpBatch2, OpSync2, OpSnapshot2:
		return true
	}
	return false
}

// String names the op for diagnostics.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "Get"
	case OpInsert:
		return "Insert"
	case OpPut:
		return "Put"
	case OpDel:
		return "Del"
	case OpRange:
		return "Range"
	case OpBatch:
		return "Batch"
	case OpSync:
		return "Sync"
	case OpSnapshot:
		return "Snapshot"
	case OpPing:
		return "Ping"
	case OpFollow:
		return "Follow"
	case OpSnapChunk:
		return "SnapChunk"
	case OpWalRecord:
		return "WalRecord"
	case OpCaughtUp:
		return "CaughtUp"
	case OpHeartbeat:
		return "Heartbeat"
	case OpWatermark:
		return "Watermark"
	case OpPromote:
		return "Promote"
	case OpGet2:
		return "Get2"
	case OpInsert2:
		return "Insert2"
	case OpPut2:
		return "Put2"
	case OpDel2:
		return "Del2"
	case OpRange2:
		return "Range2"
	case OpBatch2:
		return "Batch2"
	case OpSync2:
		return "Sync2"
	case OpSnapshot2:
		return "Snapshot2"
	case OpNsCreate:
		return "NsCreate"
	case OpNsDrop:
		return "NsDrop"
	case OpNsList:
		return "NsList"
	case OpStats:
		return "Stats"
	case OpResize:
		return "Resize"
	case OpResize2:
		return "Resize2"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Status is a response's outcome code.
type Status uint8

// Response statuses. Non-OK statuses carry a human-readable message in
// place of the op's result body; the client package maps them back to
// the typed errors the embedded map returns (skiphash.ErrCrossShard,
// skiphash.ErrNotDurable, skiphash.ErrCorrupt).
const (
	// StatusOK is success; the body is the op's result.
	StatusOK Status = iota
	// StatusCrossShard mirrors skiphash.ErrCrossShard: the batch's keys
	// span isolated shards and cannot commit atomically.
	StatusCrossShard
	// StatusNotDurable mirrors skiphash.ErrNotDurable: Sync/Snapshot on
	// a server whose map has no durability attached.
	StatusNotDurable
	// StatusCorrupt mirrors skiphash.ErrCorrupt: the durability engine
	// refused an operation over corrupt data.
	StatusCorrupt
	// StatusBusy is sent (with id 0) to a connection rejected by the
	// server's connection limit before the server closes it.
	StatusBusy
	// StatusShuttingDown reports the server is draining and the request
	// was not executed.
	StatusShuttingDown
	// StatusErr is any other server-side failure; the message tells.
	StatusErr
	// StatusReadOnly reports a write (or Sync/Snapshot) sent to a
	// replica that has not been promoted; the client maps it to its
	// ErrReadOnly.
	StatusReadOnly
	// StatusNsNotFound reports a v2 op addressed to a namespace id or
	// name the server does not know; the client maps it to
	// ErrNamespaceNotFound.
	StatusNsNotFound
	// StatusNsExists reports an NsCreate whose name is already taken;
	// the client maps it to ErrNamespaceExists.
	StatusNsExists
)

// String names the status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusCrossShard:
		return "CrossShard"
	case StatusNotDurable:
		return "NotDurable"
	case StatusCorrupt:
		return "Corrupt"
	case StatusBusy:
		return "Busy"
	case StatusShuttingDown:
		return "ShuttingDown"
	case StatusErr:
		return "Err"
	case StatusReadOnly:
		return "ReadOnly"
	case StatusNsNotFound:
		return "NsNotFound"
	case StatusNsExists:
		return "NsExists"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Step kinds inside a Batch, matching internal/linearize's batch step
// vocabulary so served histories check against the same model.
const (
	StepInsert uint8 = iota
	StepRemove
	StepLookup
)

// Step is one primitive of an atomic batch request.
type Step struct {
	Kind uint8
	Key  int64
	Val  int64 // StepInsert only
}

// StepResult is one step's outcome: Ok is the insert/remove success or
// lookup presence, Out the looked-up value.
type StepResult struct {
	Ok  bool
	Out int64
}

// Request is a decoded request frame.
type Request struct {
	ID uint64
	Op Op
	// Key, Val are the point-op arguments; Range uses Key=lo, Val=hi.
	Key, Val int64
	// Max bounds a Range's result count (0 = unbounded); Range2 reuses
	// it with the same meaning.
	Max uint32
	// Steps is a Batch's body.
	Steps []Step

	// NS addresses a v2 data op's namespace.
	NS uint32
	// BKey, BVal are the v2 point-op arguments; Range2 uses BKey=lo,
	// BVal=hi.
	BKey, BVal []byte
	// NoHi marks a Range2 with no upper bound (BVal is then ignored).
	NoHi bool
	// BSteps is a Batch2's body.
	BSteps []BStep
	// Name, Durable, Fsync are the NsCreate/NsDrop arguments.
	Name    string
	Durable bool
	Fsync   uint8
}

// Response is a decoded response frame.
type Response struct {
	ID     uint64
	Op     Op
	Status Status
	// Ok/Val are the point-op results (Get: Val, Ok; Insert/Put/Del: Ok).
	Ok  bool
	Val int64
	// Pairs is a Range result, in key order.
	Pairs []KV
	// Steps is a Batch result, one entry per request step.
	Steps []StepResult
	// Msg describes a non-OK status.
	Msg string

	// BVal is a Get2 result's value (present only when Ok).
	BVal []byte
	// BPairs is a Range2 result, in lexicographic key order.
	BPairs []BKV
	// BSteps is a Batch2 result, one entry per request step.
	BSteps []BStepResult
	// NsID is an NsCreate result's assigned namespace id.
	NsID uint32
	// Namespaces is an NsList result.
	Namespaces []NsInfo
}

// Err converts a non-OK status into an error-shaped description; the
// client package wraps it into its typed errors. Nil for StatusOK.
func (r *Response) Err() error {
	if r.Status == StatusOK {
		return nil
	}
	if r.Msg != "" {
		return fmt.Errorf("wire: %s: %s", r.Status, r.Msg)
	}
	return fmt.Errorf("wire: %s", r.Status)
}

// Framing limits. Requests are small (a batch is bounded by
// MaxBatchSteps); responses carry range results and get more headroom.
// Both are hard protocol constants so a corrupted or hostile length
// field cannot drive a huge allocation.
const (
	frameHeaderLen = 8
	// MaxRequestPayload bounds a request frame's payload.
	MaxRequestPayload = 1 << 20
	// MaxResponsePayload bounds a response frame's payload.
	MaxResponsePayload = 1 << 28
	// MaxBatchSteps bounds the steps of one Batch request. A maximal
	// all-insert batch (17 bytes per step plus the 13-byte request
	// prologue) must still fit MaxRequestPayload, so every batch the
	// limit admits is also encodable as a legal frame.
	MaxBatchSteps = 1 << 15
	// MaxRangePairs bounds one Range response so it always fits a
	// single frame (16 bytes per pair plus header slack under
	// MaxResponsePayload). The server truncates longer results to it;
	// clients wanting more paginate, resuming from their last key + 1.
	MaxRangePairs = (MaxResponsePayload - 64) / 16
	// MaxStatsLen bounds a Stats response's exposition blob. Far above
	// any real registry render, but a hard cap so a corrupted length
	// cannot drive a huge allocation.
	MaxStatsLen = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ProtocolError reports a framing or encoding violation. Either side
// receiving one must consider the connection unusable: after a bad
// frame there is no way to find the next frame boundary.
type ProtocolError struct{ Reason string }

// Error implements error.
func (e *ProtocolError) Error() string { return "wire: protocol error: " + e.Reason }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{Reason: fmt.Sprintf(format, args...)}
}

// --- Encoding -----------------------------------------------------------

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// beginFrame reserves the 8-byte frame header; finishFrame completes it
// once the payload has been appended (the persist package's idiom).
func beginFrame(dst []byte) ([]byte, int) {
	start := len(dst)
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0), start
}

func finishFrame(dst []byte, headerStart int) []byte {
	payload := dst[headerStart+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[headerStart:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[headerStart+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// AppendRequest appends req as one complete frame to dst.
func AppendRequest(dst []byte, req *Request) []byte {
	dst, hdr := beginFrame(dst)
	dst = appendU64(dst, req.ID)
	dst = append(dst, byte(req.Op))
	switch req.Op {
	case OpGet, OpDel:
		dst = appendI64(dst, req.Key)
	case OpInsert, OpPut:
		dst = appendI64(dst, req.Key)
		dst = appendI64(dst, req.Val)
	case OpRange:
		dst = appendI64(dst, req.Key)
		dst = appendI64(dst, req.Val)
		dst = appendU32(dst, req.Max)
	case OpBatch:
		dst = appendU32(dst, uint32(len(req.Steps)))
		for _, s := range req.Steps {
			dst = append(dst, s.Kind)
			dst = appendI64(dst, s.Key)
			if s.Kind == StepInsert {
				dst = appendI64(dst, s.Val)
			}
		}
	case OpSync, OpSnapshot, OpPing, OpWatermark, OpPromote, OpStats:
		// no body
	case OpResize:
		dst = appendI64(dst, req.Key)
	case OpGet2, OpInsert2, OpPut2, OpDel2, OpRange2, OpBatch2, OpSync2, OpSnapshot2,
		OpNsCreate, OpNsDrop, OpNsList, OpResize2:
		dst = appendRequest2(dst, req)
	}
	return finishFrame(dst, hdr)
}

// AppendResponse appends resp as one complete frame to dst.
func AppendResponse(dst []byte, resp *Response) []byte {
	dst, hdr := beginFrame(dst)
	dst = appendU64(dst, resp.ID)
	dst = append(dst, byte(resp.Op))
	dst = append(dst, byte(resp.Status))
	if resp.Status != StatusOK {
		dst = appendU32(dst, uint32(len(resp.Msg)))
		dst = append(dst, resp.Msg...)
		return finishFrame(dst, hdr)
	}
	switch resp.Op {
	case OpGet:
		dst = appendBool(dst, resp.Ok)
		dst = appendI64(dst, resp.Val)
	case OpInsert, OpPut, OpDel:
		dst = appendBool(dst, resp.Ok)
	case OpRange:
		dst = appendU32(dst, uint32(len(resp.Pairs)))
		for _, p := range resp.Pairs {
			dst = appendI64(dst, p.Key)
			dst = appendI64(dst, p.Val)
		}
	case OpBatch:
		dst = appendU32(dst, uint32(len(resp.Steps)))
		for _, s := range resp.Steps {
			dst = appendBool(dst, s.Ok)
			dst = appendI64(dst, s.Out)
		}
	case OpWatermark:
		// The watermark stamp travels in Val.
		dst = appendI64(dst, resp.Val)
	case OpSync, OpSnapshot, OpPing, OpPromote:
		// no body
	case OpStats:
		dst = appendBytes(dst, resp.BVal)
	case OpResize:
		// The resulting shard count travels in Val.
		dst = appendI64(dst, resp.Val)
	case OpGet2, OpInsert2, OpPut2, OpDel2, OpRange2, OpBatch2, OpSync2, OpSnapshot2,
		OpNsCreate, OpNsDrop, OpNsList, OpResize2:
		dst = appendResponse2(dst, resp)
	}
	return finishFrame(dst, hdr)
}

// --- Decoding -----------------------------------------------------------

// decoder is a bounds-checked cursor over one payload.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = protoErrf("truncated payload reading %s at offset %d", what, d.off)
	}
}

func (d *decoder) u8(what string) uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail(what)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32(what string) uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64(what string) int64 { return int64(d.u64(what)) }

// bool8 reads a boolean byte strictly: only 0 and 1 are legal, so every
// accepted payload re-encodes canonically (a fuzz-checked property).
func (d *decoder) bool8(what string) bool {
	v := d.u8(what)
	if d.err == nil && v > 1 {
		d.err = protoErrf("boolean %s encoded as %d", what, v)
	}
	return v != 0
}

func (d *decoder) bytes(n int, what string) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return protoErrf("%d trailing bytes after payload", len(d.buf)-d.off)
	}
	return nil
}

// ParseRequest decodes one request payload. The returned request's
// Steps alias payload-derived memory only by value (they are copied),
// so the frame buffer may be reused immediately.
func ParseRequest(payload []byte) (Request, error) {
	d := decoder{buf: payload}
	var req Request
	req.ID = d.u64("id")
	req.Op = Op(d.u8("op"))
	switch req.Op {
	case OpGet, OpDel:
		req.Key = d.i64("key")
	case OpInsert, OpPut:
		req.Key = d.i64("key")
		req.Val = d.i64("val")
	case OpRange:
		req.Key = d.i64("lo")
		req.Val = d.i64("hi")
		req.Max = d.u32("max")
	case OpBatch:
		n := d.u32("step count")
		if n > MaxBatchSteps {
			return req, protoErrf("batch of %d steps exceeds limit %d", n, MaxBatchSteps)
		}
		if d.err == nil {
			req.Steps = make([]Step, 0, n)
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			var s Step
			s.Kind = d.u8("step kind")
			if s.Kind > StepLookup {
				return req, protoErrf("unknown batch step kind %d", s.Kind)
			}
			s.Key = d.i64("step key")
			if s.Kind == StepInsert {
				s.Val = d.i64("step val")
			}
			req.Steps = append(req.Steps, s)
		}
	case OpSync, OpSnapshot, OpPing, OpWatermark, OpPromote, OpStats:
		// no body
	case OpResize:
		req.Key = d.i64("shards")
	case OpGet2, OpInsert2, OpPut2, OpDel2, OpRange2, OpBatch2, OpSync2, OpSnapshot2,
		OpNsCreate, OpNsDrop, OpNsList, OpResize2:
		parseRequest2(&d, &req)
	default:
		return req, protoErrf("unknown op %d", uint8(req.Op))
	}
	return req, d.finish()
}

// ParseResponse decodes one response payload. Pairs and Steps are
// copied out of the frame buffer.
func ParseResponse(payload []byte) (Response, error) {
	d := decoder{buf: payload}
	var resp Response
	resp.ID = d.u64("id")
	resp.Op = Op(d.u8("op"))
	resp.Status = Status(d.u8("status"))
	if resp.Status > StatusNsExists {
		return resp, protoErrf("unknown status %d", uint8(resp.Status))
	}
	if resp.Status != StatusOK {
		n := d.u32("message length")
		resp.Msg = string(d.bytes(int(n), "message"))
		return resp, d.finish()
	}
	switch resp.Op {
	case OpGet:
		resp.Ok = d.bool8("ok")
		resp.Val = d.i64("val")
	case OpInsert, OpPut, OpDel:
		resp.Ok = d.bool8("ok")
	case OpRange:
		n := d.u32("pair count")
		// Each pair is 16 bytes; the framing limit already bounds n, but
		// cross-check before allocating.
		if int64(n)*16 > int64(len(payload)) {
			return resp, protoErrf("pair count %d exceeds payload", n)
		}
		resp.Pairs = make([]KV, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			k := d.i64("pair key")
			v := d.i64("pair val")
			resp.Pairs = append(resp.Pairs, KV{Key: k, Val: v})
		}
	case OpBatch:
		n := d.u32("result count")
		if n > MaxBatchSteps {
			return resp, protoErrf("batch of %d results exceeds limit %d", n, MaxBatchSteps)
		}
		if d.err == nil {
			resp.Steps = make([]StepResult, 0, n)
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			ok := d.bool8("result ok")
			out := d.i64("result out")
			resp.Steps = append(resp.Steps, StepResult{Ok: ok, Out: out})
		}
	case OpWatermark:
		resp.Val = d.i64("watermark")
	case OpSync, OpSnapshot, OpPing, OpPromote:
		// no body
	case OpStats:
		resp.BVal = d.bstr(MaxStatsLen, "stats")
	case OpResize:
		resp.Val = d.i64("shards")
	case OpGet2, OpInsert2, OpPut2, OpDel2, OpRange2, OpBatch2, OpSync2, OpSnapshot2,
		OpNsCreate, OpNsDrop, OpNsList, OpResize2:
		parseResponse2(&d, &resp)
	default:
		return resp, protoErrf("unknown op %d", uint8(resp.Op))
	}
	return resp, d.finish()
}

// --- Frame transport ----------------------------------------------------

// FrameReader reads frames off a stream, verifying length bounds and
// checksums. The returned payload aliases an internal buffer that is
// valid only until the next call.
type FrameReader struct {
	r   io.Reader
	max uint32
	hdr [frameHeaderLen]byte
	buf []byte
}

// NewFrameReader wraps r with a frame reader enforcing the given
// payload limit (MaxRequestPayload on servers, MaxResponsePayload on
// clients).
func NewFrameReader(r io.Reader, maxPayload uint32) *FrameReader {
	return &FrameReader{r: r, max: maxPayload}
}

// Next reads one frame and returns its verified payload. io.EOF is
// returned untouched on a clean boundary; a partial frame surfaces as
// io.ErrUnexpectedEOF; framing violations as *ProtocolError.
func (fr *FrameReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return nil, err
	}
	ln := binary.LittleEndian.Uint32(fr.hdr[:4])
	want := binary.LittleEndian.Uint32(fr.hdr[4:])
	if ln > fr.max {
		return nil, protoErrf("frame length %d exceeds limit %d", ln, fr.max)
	}
	if cap(fr.buf) < int(ln) {
		fr.buf = make([]byte, ln)
	}
	payload := fr.buf[:ln]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, protoErrf("frame checksum mismatch: stored %08x, computed %08x", want, got)
	}
	return payload, nil
}
