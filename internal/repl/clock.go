// Package repl streams a primary skip hash's write-ahead log to live
// replicas: recovery made remote. The primary taps its WAL at the STM
// publish point (append order = commit order for conflicting
// transactions) and feeds each follower a snapshot-plus-log-tail
// stream over the internal/wire replication channel; the replica
// applies the records through the same per-key chunk-stamp replay rule
// crash recovery uses, and serves read-only traffic at an advertised
// commit-stamp watermark.
//
// # Consistency contract
//
// Commit stamps are comparable only within one primary lineage — one
// clock instance on one primary incarnation and the replicas applying
// its stream. Within a lineage the watermark supports a read barrier:
// a replica whose watermark strictly exceeds X has applied every
// commit with stamp <= X (clients obtain X from the primary's
// Watermark after their writes, see skiphash/client.GetAt). Across
// lineages — after a promotion — the only safe watermark comparison is
// against the promoted node itself.
package repl

import (
	"sync/atomic"

	"repro/internal/stm"
)

// liftClock wraps a replica's commit clock so every stamp it mints
// stays strictly above the replication watermark. The floor rises as
// records apply; after a promotion the first local commits therefore
// mint stamps above everything the dead primary ever streamed here,
// extending the log's total order instead of rewinding it — exactly
// what stm.FloorClock does for crash recovery, but with a floor that
// moves while the map is live.
type liftClock struct {
	inner stm.Clock
	floor atomic.Uint64
}

func newLiftClock(inner stm.Clock) *liftClock { return &liftClock{inner: inner} }

// Raise lifts the floor to at least s (monotone; safe concurrently).
func (c *liftClock) Raise(s uint64) {
	for {
		cur := c.floor.Load()
		if s <= cur || c.floor.CompareAndSwap(cur, s) {
			return
		}
	}
}

func (c *liftClock) lift(v uint64) uint64 {
	if f := c.floor.Load(); v <= f {
		return f + 1
	}
	return v
}

// Read implements stm.Clock.
func (c *liftClock) Read() uint64 { return c.lift(c.inner.Read()) }

// Next implements stm.Clock.
func (c *liftClock) Next() uint64 { return c.lift(c.inner.Next()) }

// OnAbort implements stm.Clock.
func (c *liftClock) OnAbort() { c.inner.OnAbort() }

// Strict reports true: lifting can map distinct inner stamps onto
// floor+1, so readers must reject equal versions like the monotonic
// clock's tie rule.
func (c *liftClock) Strict() bool { return true }

// Name implements stm.Clock.
func (c *liftClock) Name() string { return "lift(" + c.inner.Name() + ")" }
