package repl

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// PrimaryConfig configures the primary-side WAL streamer. Snapshot and
// ClockRead are required; the rest defaults sensibly.
type PrimaryConfig struct {
	// Snapshot iterates the primary map in chunked consistent reads
	// (skiphash's SnapshotChunks adapted to wire pairs); it feeds a
	// follower's full sync.
	Snapshot func(chunkSize int, emit func(stamp uint64, pairs []wire.KV) error) error
	// ClockRead returns a fresh commit-clock read. CaughtUp and
	// Heartbeat stamps come from it; see the ordering rule in sender().
	ClockRead func() uint64
	// RingBytes bounds the in-memory record ring buffering the log tail
	// for followers. A follower that falls behind the ring is cut off
	// and resyncs from a snapshot. Default 32 MiB.
	RingBytes int
	// SnapshotChunk is the pair count per snapshot chunk. Default 512.
	SnapshotChunk int
	// HeartbeatEvery is the idle watermark cadence. Default 250ms.
	HeartbeatEvery time.Duration
	// Logf, when set, receives per-follower diagnostics.
	Logf func(format string, args ...any)
}

func (c PrimaryConfig) withDefaults() PrimaryConfig {
	if c.RingBytes == 0 {
		c.RingBytes = 32 << 20
	}
	if c.SnapshotChunk == 0 {
		c.SnapshotChunk = 512
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	return c
}

// record is one tapped WAL record in the ring.
type record struct {
	seq   uint64
	stamp uint64
	count int
	ops   []byte
}

// Primary tails the local WAL into a bounded ring and serves it to
// followers. Wire it to the engine with Store.TapWAL(p.Append).
type Primary struct {
	cfg   PrimaryConfig
	epoch uint64

	mu        sync.Mutex
	ring      []record
	ringBytes int
	nextSeq   uint64 // seq the next appended record receives; first is 1
	subs      map[*subscriber]struct{}
	lns       map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	resyncs   uint64 // full resyncs served to followers
	wg        sync.WaitGroup
}

// PrimaryStats is an observability snapshot of the streamer.
type PrimaryStats struct {
	// LastSeq is the newest record sequence appended to the ring (0
	// before the first append); the stream position.
	LastSeq uint64
	// Followers counts live follower subscriptions (connections past
	// their snapshot phase).
	Followers int
	// Resyncs counts full resyncs served (snapshot + tail handshakes).
	Resyncs uint64
}

// Stats returns the streamer's counters.
func (p *Primary) Stats() PrimaryStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PrimaryStats{
		LastSeq:   p.nextSeq - 1,
		Followers: len(p.subs),
		Resyncs:   p.resyncs,
	}
}

// subscriber wakes one follower sender when records arrive.
type subscriber struct{ kick chan struct{} }

// NewPrimary creates a streamer. The epoch — unique per primary
// incarnation — is drawn from the wall clock, so a primary that
// crashed (possibly shedding a torn WAL tail in recovery) never
// tail-feeds followers that may have applied the records the repair
// discarded: the epoch mismatch forces them through a full resync.
func NewPrimary(cfg PrimaryConfig) *Primary {
	return &Primary{
		cfg:     cfg.withDefaults(),
		epoch:   uint64(time.Now().UnixNano()),
		nextSeq: 1,
		subs:    make(map[*subscriber]struct{}),
		lns:     make(map[net.Listener]struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Epoch identifies this primary incarnation.
func (p *Primary) Epoch() uint64 { return p.epoch }

// Append feeds one WAL record into the ring. It is the WAL tap target:
// it runs at the STM publish point with the committing transaction's
// orecs held, so it copies ops and never blocks (subscriber kicks are
// non-blocking sends).
func (p *Primary) Append(stamp uint64, count int, ops []byte) {
	rec := record{stamp: stamp, count: count, ops: append([]byte(nil), ops...)}
	p.mu.Lock()
	rec.seq = p.nextSeq
	p.nextSeq++
	p.ring = append(p.ring, rec)
	p.ringBytes += len(rec.ops) + 32
	for p.ringBytes > p.cfg.RingBytes && len(p.ring) > 1 {
		p.ringBytes -= len(p.ring[0].ops) + 32
		p.ring[0].ops = nil
		p.ring = p.ring[1:]
	}
	for s := range p.subs {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	p.mu.Unlock()
}

// baseSeq is the oldest seq still in the ring (nextSeq when empty).
// Callers hold p.mu.
func (p *Primary) baseSeqLocked() uint64 {
	if len(p.ring) == 0 {
		return p.nextSeq
	}
	return p.ring[0].seq
}

// Serve accepts follower connections on ln until it closes (Shutdown)
// or fails.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return errors.New("repl: primary is shut down")
	}
	p.lns[ln] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.lns, ln)
		p.mu.Unlock()
		ln.Close()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			nc.Close()
			return nil
		}
		p.conns[nc] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			err := p.sender(nc)
			p.mu.Lock()
			delete(p.conns, nc)
			p.mu.Unlock()
			nc.Close()
			if err != nil && !errors.Is(err, io.EOF) && p.cfg.Logf != nil {
				p.cfg.Logf("repl: follower %s: %v", nc.RemoteAddr(), err)
			}
		}()
	}
}

// DropFollowers closes every follower connection while the listeners
// keep serving; followers redial and resume from their last applied
// seq (a ring tail replay, no snapshot). Fault-injection surface for
// tests and skipstress.
func (p *Primary) DropFollowers() {
	p.mu.Lock()
	for nc := range p.conns {
		nc.Close()
	}
	p.mu.Unlock()
}

// Shutdown closes listeners and follower connections and waits for the
// senders to exit. The ring (and Append) keep working so a Shutdown
// for failover does not disturb the primary map.
func (p *Primary) Shutdown() {
	p.mu.Lock()
	p.closed = true
	for ln := range p.lns {
		ln.Close()
	}
	for nc := range p.conns {
		nc.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// sender drives one follower: handshake, catch-up, live tail.
func (p *Primary) sender(nc net.Conn) error {
	fr := wire.NewFrameReader(nc, wire.MaxRequestPayload)
	payload, err := fr.Next()
	if err != nil {
		return err
	}
	follow, err := wire.ParseReplMsg(payload)
	if err != nil {
		return err
	}
	if follow.Op != wire.OpFollow {
		return fmt.Errorf("expected Follow, got %s", follow.Op)
	}

	// Admission: tail from follow.Seq+1 when the follower is from this
	// epoch and the tail is still ringed; otherwise full resync. The
	// full-sync cursor is captured under the ring lock BEFORE any
	// snapshot chunk is read, so every record with seq < cursor is
	// fully reflected in the chunks (its map publish happened before
	// the chunk transactions started) and every record >= cursor is
	// streamed — the per-key chunk-stamp filter on the replica absorbs
	// the overlap exactly as recovery replay does.
	p.mu.Lock()
	full := follow.Epoch != p.epoch || follow.Seq+1 < p.baseSeqLocked() || follow.Seq >= p.nextSeq
	cursor := follow.Seq + 1
	if full {
		cursor = p.nextSeq
		p.resyncs++
	}
	p.mu.Unlock()

	var buf []byte
	send := func(m *wire.ReplMsg) error {
		buf = wire.AppendReplMsg(buf[:0], m)
		_, werr := nc.Write(buf)
		return werr
	}
	if err := send(&wire.ReplMsg{Op: wire.OpFollow, Epoch: p.epoch, Seq: cursor - 1, Full: full}); err != nil {
		return err
	}
	if full {
		err := p.cfg.Snapshot(p.cfg.SnapshotChunk, func(stamp uint64, pairs []wire.KV) error {
			return send(&wire.ReplMsg{Op: wire.OpSnapChunk, Stamp: stamp, Pairs: pairs})
		})
		if err != nil {
			return fmt.Errorf("snapshot stream: %w", err)
		}
	}

	sub := &subscriber{kick: make(chan struct{}, 1)}
	p.mu.Lock()
	p.subs[sub] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.subs, sub)
		p.mu.Unlock()
	}()

	// Catch-up: stream the tail up to a sync target, then declare the
	// follower caught up at stamp H. H is read BEFORE the target is
	// captured: a record that misses the capture appended after H was
	// read, so any primary Watermark() taken after that record's commit
	// response reads >= H and the replica's strict barrier (watermark
	// strictly above the requested stamp) correctly refuses until the
	// record arrives.
	caughtUp := p.cfg.ClockRead()
	p.mu.Lock()
	syncTarget := p.nextSeq
	p.mu.Unlock()
	var cerr error
	cursor, cerr = p.stream(send, cursor, syncTarget)
	if cerr != nil {
		return cerr
	}
	if err := send(&wire.ReplMsg{Op: wire.OpCaughtUp, Stamp: caughtUp}); err != nil {
		return err
	}

	// Live tail. Heartbeats follow the same rule: the stamp is read
	// before the drained check, so a heartbeat never advertises a
	// watermark covering a record it did not stream first.
	hb := time.NewTimer(p.cfg.HeartbeatEvery)
	defer hb.Stop()
	for {
		beat := p.cfg.ClockRead()
		p.mu.Lock()
		target := p.nextSeq
		p.mu.Unlock()
		if cursor < target {
			var serr error
			cursor, serr = p.stream(send, cursor, target)
			if serr != nil {
				return serr
			}
			continue
		}
		if err := send(&wire.ReplMsg{Op: wire.OpHeartbeat, Stamp: beat}); err != nil {
			return err
		}
		if !hb.Stop() {
			select {
			case <-hb.C:
			default:
			}
		}
		hb.Reset(p.cfg.HeartbeatEvery)
		select {
		case <-sub.kick:
		case <-hb.C:
		}
	}
}

// stream writes ring records [cursor, target) to the follower,
// returning the new cursor. A cursor the ring has already evicted
// means the follower fell behind the ring budget: the connection is
// cut and the follower resyncs from a snapshot on redial.
func (p *Primary) stream(send func(*wire.ReplMsg) error, cursor, target uint64) (uint64, error) {
	var batch []record
	for cursor < target {
		p.mu.Lock()
		base := p.baseSeqLocked()
		if cursor < base {
			p.mu.Unlock()
			return cursor, fmt.Errorf("follower at seq %d fell behind ring base %d", cursor, base)
		}
		end := target
		if top := p.nextSeq; end > top {
			end = top
		}
		batch = append(batch[:0], p.ring[cursor-base:end-base]...)
		p.mu.Unlock()
		for i := range batch {
			r := &batch[i]
			m := wire.ReplMsg{Op: wire.OpWalRecord, Seq: r.seq, Stamp: r.stamp, Count: uint64(r.count), Ops: r.ops}
			if err := send(&m); err != nil {
				return cursor, err
			}
			cursor = r.seq + 1
		}
	}
	return cursor, nil
}
