package repl

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
	"repro/skiphash"
)

// tapper is the persistence engine's WAL tap surface.
type tapper interface {
	TapWAL(func(stamp uint64, count int, ops []byte))
}

// primaryHarness is one durable primary map with its WAL streamed.
type primaryHarness struct {
	m  *skiphash.Sharded[int64, int64]
	p  *Primary
	ln net.Listener
}

func (h *primaryHarness) addr() string { return h.ln.Addr().String() }

func (h *primaryHarness) close() {
	h.p.Shutdown()
	h.m.Close()
}

// startPrimary opens a durable sharded map over dir and streams its
// WAL on addr ("127.0.0.1:0" for a fresh port).
func startPrimary(t *testing.T, dir, addr string, cfg PrimaryConfig) *primaryHarness {
	t.Helper()
	m, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{
		Durability: &skiphash.Durability{Dir: dir, Fsync: skiphash.FsyncNone},
	}, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatalf("OpenInt64Sharded: %v", err)
	}
	cfg.Snapshot = func(chunkSize int, emit func(stamp uint64, pairs []wire.KV) error) error {
		kvs := make([]wire.KV, 0, chunkSize)
		return m.SnapshotChunks(chunkSize, func(stamp uint64, pairs []skiphash.Pair[int64, int64]) error {
			kvs = kvs[:0]
			for _, p := range pairs {
				kvs = append(kvs, wire.KV{Key: p.Key, Val: p.Val})
			}
			return emit(stamp, kvs)
		})
	}
	clock := m.Runtime().Clock()
	cfg.ClockRead = clock.Read
	cfg.Logf = t.Logf
	p := NewPrimary(cfg)
	tp, ok := m.Persister().(tapper)
	if !ok {
		t.Fatalf("persister %T has no TapWAL", m.Persister())
	}
	tp.TapWAL(p.Append)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go p.Serve(ln)
	return &primaryHarness{m: m, p: p, ln: ln}
}

func startReplica(t *testing.T, addr string) *Replica {
	t.Helper()
	r := NewReplica(ReplicaConfig{Addr: addr, RedialEvery: 20 * time.Millisecond, Logf: t.Logf})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	return r
}

func allPairs(m *skiphash.Sharded[int64, int64]) []skiphash.Pair[int64, int64] {
	return m.Range(math.MinInt64, math.MaxInt64, nil)
}

// waitConverge polls until the replica's full range equals the
// primary map's. Quiescent primary only.
func waitConverge(t *testing.T, pm *skiphash.Sharded[int64, int64], r *Replica) {
	t.Helper()
	want := allPairs(pm)
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := allPairs(r.Map())
		if len(got) == len(want) {
			same := true
			for i := range want {
				if got[i] != want[i] {
					same = false
					break
				}
			}
			if same {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not converge: %d pairs vs %d", len(got), len(want))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReplicaCatchUpFromEmptyAndLiveTail(t *testing.T) {
	h := startPrimary(t, t.TempDir(), "127.0.0.1:0", PrimaryConfig{})
	defer h.close()
	for i := int64(0); i < 500; i++ {
		h.m.Put(i, i*10)
	}
	r := startReplica(t, h.addr())
	defer r.Close()
	waitConverge(t, h.m, r)
	if r.Watermark() == 0 {
		t.Fatal("caught-up replica has zero watermark")
	}
	// Live tail: new writes, overwrites and deletes stream through.
	w0 := r.Watermark()
	for i := int64(400); i < 700; i++ {
		h.m.Put(i, i*11)
	}
	for i := int64(0); i < 100; i++ {
		h.m.Remove(i)
	}
	waitConverge(t, h.m, r)
	if r.Watermark() < w0 {
		t.Fatalf("watermark regressed: %d -> %d", w0, r.Watermark())
	}
	// The live tail arrived as streamed WAL records, and the stamp the
	// lag gauge subtracts from never trails the applied watermark.
	rs := r.Stats()
	if rs.Records == 0 {
		t.Fatal("replica counted no streamed records after live tail")
	}
	if rs.PrimaryStamp < rs.Watermark {
		t.Fatalf("primary stamp %d behind watermark %d", rs.PrimaryStamp, rs.Watermark)
	}
}

func TestReplicaTailReconnect(t *testing.T) {
	h := startPrimary(t, t.TempDir(), "127.0.0.1:0", PrimaryConfig{})
	defer h.close()
	for i := int64(0); i < 200; i++ {
		h.m.Put(i, i)
	}
	r := startReplica(t, h.addr())
	defer r.Close()
	waitConverge(t, h.m, r)
	// Cut every follower; writes continue while the replica is dark.
	h.p.DropFollowers()
	for i := int64(200); i < 400; i++ {
		h.m.Put(i, i)
	}
	waitConverge(t, h.m, r)
}

func TestReplicaResyncAfterRingEviction(t *testing.T) {
	// A ring too small to hold the backlog forces the reconnecting
	// follower through the snapshot path (Full header) instead of a
	// tail replay; convergence must survive that.
	h := startPrimary(t, t.TempDir(), "127.0.0.1:0", PrimaryConfig{RingBytes: 256})
	defer h.close()
	for i := int64(0); i < 100; i++ {
		h.m.Put(i, i)
	}
	r := startReplica(t, h.addr())
	defer r.Close()
	waitConverge(t, h.m, r)
	h.p.DropFollowers()
	for i := int64(0); i < 500; i++ {
		h.m.Put(i, i*3)
	}
	waitConverge(t, h.m, r)

	// Both ends count the two snapshot passes (initial connect plus the
	// post-eviction reconnect) and agree on stream position.
	ps := h.p.Stats()
	if ps.Resyncs < 2 {
		t.Fatalf("primary served %d resyncs, want >= 2", ps.Resyncs)
	}
	rs := r.Stats()
	if rs.Resyncs < 2 {
		t.Fatalf("replica counted %d resyncs, want >= 2", rs.Resyncs)
	}
}

func TestEpochChangeForcesFullResync(t *testing.T) {
	h := startPrimary(t, t.TempDir(), "127.0.0.1:0", PrimaryConfig{})
	for i := int64(0); i < 100; i++ {
		h.m.Put(i, i)
	}
	r := startReplica(t, h.addr())
	defer r.Close()
	waitConverge(t, h.m, r)
	addr := h.addr()
	h.close()
	// A different incarnation on the same address with disjoint state:
	// the epoch mismatch must force a wholesale resync, dropping every
	// key only the dead primary had.
	h2 := startPrimary(t, t.TempDir(), addr, PrimaryConfig{})
	defer h2.close()
	for i := int64(1000); i < 1100; i++ {
		h2.m.Put(i, i)
	}
	waitConverge(t, h2.m, r)
	if _, ok := r.Map().Lookup(5); ok {
		t.Fatal("stale key survived a full resync")
	}
}

func TestRestartedPrimaryForcesResyncAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	h := startPrimary(t, dir, "127.0.0.1:0", PrimaryConfig{})
	for i := int64(0); i < 300; i++ {
		h.m.Put(i, i)
	}
	r := startReplica(t, h.addr())
	defer r.Close()
	waitConverge(t, h.m, r)
	addr := h.addr()
	h.close()
	// Same durability directory reopened: recovery rebuilds the state,
	// the new epoch forces the replica through snapshot+tail, and the
	// states agree again.
	h2 := startPrimary(t, dir, addr, PrimaryConfig{})
	defer h2.close()
	for i := int64(300); i < 350; i++ {
		h2.m.Put(i, i)
	}
	waitConverge(t, h2.m, r)
}

func TestPromoteLiftsClockAndOpensWrites(t *testing.T) {
	h := startPrimary(t, t.TempDir(), "127.0.0.1:0", PrimaryConfig{})
	defer h.close()
	for i := int64(0); i < 50; i++ {
		h.m.Put(i, i)
	}
	r := startReplica(t, h.addr())
	defer r.Close()
	waitConverge(t, h.m, r)

	be := r.Backend()
	if err := be.Atomic(func(op server.Batch) error { op.Insert(999, 1); return nil }); err != server.ErrReadOnly {
		t.Fatalf("write before promotion = %v, want ErrReadOnly", err)
	}
	if err := be.Sync(); err != server.ErrReadOnly {
		t.Fatalf("Sync before promotion = %v, want ErrReadOnly", err)
	}
	w := r.Watermark()
	if got := be.(server.Watermarker).Watermark(); got != w {
		t.Fatalf("backend watermark %d != replica watermark %d", got, w)
	}
	if err := be.(server.Promoter).Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	// The lifted clock floors new stamps above everything applied.
	if next := r.lift.Next(); next <= w {
		t.Fatalf("post-promotion stamp %d not above watermark %d", next, w)
	}
	if err := be.Atomic(func(op server.Batch) error { op.Insert(999, 1); return nil }); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if v, ok := r.Map().Lookup(999); !ok || v != 1 {
		t.Fatalf("promoted write not visible: %d %v", v, ok)
	}
}

func TestPrimaryBackendWatermark(t *testing.T) {
	h := startPrimary(t, t.TempDir(), "127.0.0.1:0", PrimaryConfig{})
	defer h.close()
	clock := h.m.Runtime().Clock()
	be := PrimaryBackend(server.NewShardedBackend(h.m), clock.Read)
	h.m.Put(1, 1)
	w1 := be.(server.Watermarker).Watermark()
	h.m.Put(2, 2)
	w2 := be.(server.Watermarker).Watermark()
	if w1 == 0 || w2 < w1 {
		t.Fatalf("primary watermark not monotone: %d then %d", w1, w2)
	}
	if _, ok := be.(server.Promoter); ok {
		t.Fatal("primary backend must not be promotable")
	}
}
