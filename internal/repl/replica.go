package repl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/server"
	"repro/internal/stm"
	"repro/internal/wire"
	"repro/skiphash"
)

// ReplicaConfig configures a live replica.
type ReplicaConfig struct {
	// Addr is the primary's replication address (host:port).
	Addr string
	// Map tunes the replica's in-memory map; Clock, ClockFactory and
	// Durability are overridden (the replica's clock is the lifted
	// monotonic clock, and its state is the stream, not a local log).
	Map skiphash.Config
	// RedialEvery paces reconnect attempts. Default 100ms.
	RedialEvery time.Duration
	// DialTimeout bounds one dial. Default 2s.
	DialTimeout time.Duration
	// Logf, when set, receives reconnect/apply diagnostics.
	Logf func(format string, args ...any)
}

// applyBatch is how many snapshot-chunk pairs one load transaction
// inserts, mirroring recovery's batched load.
const applyBatch = 128

// Replica follows a primary's WAL stream into a live in-memory map.
// The map serves read-only traffic (through Backend) at the advertised
// watermark until Promote makes it writable.
type Replica struct {
	cfg  ReplicaConfig
	lift *liftClock
	m    *skiphash.Sharded[int64, int64]

	epoch     uint64
	lastSeq   uint64
	catchup   map[int64]uint64 // per-key chunk stamps during full sync
	watermark atomic.Uint64
	promoted  atomic.Bool

	// Observability counters (see Stats). primStamp is the freshest
	// stamp the primary has advertised, updated at message receipt —
	// before apply — while watermark advances after, so
	// primStamp - watermark is the replica's instantaneous lag.
	records    atomic.Uint64
	resyncs    atomic.Uint64
	epochSwaps atomic.Uint64
	primStamp  atomic.Uint64

	ready     chan struct{}
	readyOnce sync.Once
	stopped   chan struct{}
	stopOnce  sync.Once
	done      chan struct{}

	mu sync.Mutex // guards nc
	nc net.Conn
}

// NewReplica builds the replica map and starts following cfg.Addr.
func NewReplica(cfg ReplicaConfig) *Replica {
	if cfg.RedialEvery == 0 {
		cfg.RedialEvery = 100 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	lift := newLiftClock(stm.NewMonotonicClock())
	mc := cfg.Map
	mc.Clock = lift
	mc.ClockFactory = nil
	mc.IsolatedShards = false // the stream is one commit-stamp domain
	mc.Durability = nil
	mc.Maintenance = true
	r := &Replica{
		cfg:     cfg,
		lift:    lift,
		m:       skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, mc),
		ready:   make(chan struct{}),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go r.run()
	return r
}

// Map exposes the replica's live map (reads only until promotion).
func (r *Replica) Map() *skiphash.Sharded[int64, int64] { return r.m }

// Watermark is the replica's applied commit-stamp watermark: every
// primary commit with stamp <= a value this returned is applied here,
// provided the caller observed its stamp through the same lineage's
// Watermark (see the package contract).
func (r *Replica) Watermark() uint64 { return r.watermark.Load() }

// WaitReady blocks until the replica has caught up once (or ctx ends).
func (r *Replica) WaitReady(ctx context.Context) error {
	select {
	case <-r.ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Promote stops following and makes the map writable. The lifted clock
// floors new commit stamps above every applied record, so the promoted
// node's commits extend the dead primary's order. The promoted map is
// not durable and not replicating; restart it with a durability
// directory to resume either.
func (r *Replica) Promote() error {
	r.stop()
	r.promoted.Store(true)
	return nil
}

// Close stops following and releases the map.
func (r *Replica) Close() {
	r.stop()
	r.m.Close()
}

func (r *Replica) stop() {
	r.stopOnce.Do(func() { close(r.stopped) })
	r.mu.Lock()
	if r.nc != nil {
		r.nc.Close()
	}
	r.mu.Unlock()
	<-r.done
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// run is the follower loop: dial, stream, redial until stopped.
func (r *Replica) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stopped:
			return
		default:
		}
		nc, err := net.DialTimeout("tcp", r.cfg.Addr, r.cfg.DialTimeout)
		if err == nil {
			r.mu.Lock()
			r.nc = nc
			r.mu.Unlock()
			err = r.runConn(nc)
			r.mu.Lock()
			r.nc = nil
			r.mu.Unlock()
			nc.Close()
		}
		select {
		case <-r.stopped:
			return
		default:
			if err != nil {
				r.logf("repl: replica: %v", err)
			}
			select {
			case <-time.After(r.cfg.RedialEvery):
			case <-r.stopped:
				return
			}
		}
	}
}

// runConn speaks one follower connection end to end.
func (r *Replica) runConn(nc net.Conn) error {
	frame := wire.AppendReplMsg(nil, &wire.ReplMsg{Op: wire.OpFollow, Epoch: r.epoch, Seq: r.lastSeq})
	if _, err := nc.Write(frame); err != nil {
		return err
	}
	fr := wire.NewFrameReader(nc, wire.MaxResponsePayload)
	payload, err := fr.Next()
	if err != nil {
		return err
	}
	hdr, err := wire.ParseReplMsg(payload)
	if err != nil {
		return err
	}
	if hdr.Op != wire.OpFollow {
		return fmt.Errorf("expected Follow header, got %s", hdr.Op)
	}
	if hdr.Full {
		// Full resync: this primary incarnation (or a tail the ring no
		// longer holds) invalidates local state wholesale.
		r.resyncs.Add(1)
		if r.epoch != 0 && hdr.Epoch != r.epoch {
			r.epochSwaps.Add(1)
		}
		if err := r.clear(); err != nil {
			return err
		}
		r.catchup = make(map[int64]uint64)
		r.epoch = hdr.Epoch
		r.lastSeq = hdr.Seq
	} else if hdr.Epoch != r.epoch || hdr.Seq != r.lastSeq {
		return fmt.Errorf("tail header (%d,%d) does not match follower state (%d,%d)",
			hdr.Epoch, hdr.Seq, r.epoch, r.lastSeq)
	}
	for {
		payload, err := fr.Next()
		if err != nil {
			return err
		}
		m, err := wire.ParseReplMsg(payload)
		if err != nil {
			return err
		}
		switch m.Op {
		case wire.OpSnapChunk:
			if r.catchup == nil {
				return errors.New("snapshot chunk outside full sync")
			}
			if err := r.applyChunk(&m); err != nil {
				return err
			}
		case wire.OpWalRecord:
			if m.Seq != r.lastSeq+1 {
				return fmt.Errorf("record seq %d after %d", m.Seq, r.lastSeq)
			}
			r.raisePrimStamp(m.Stamp)
			if err := r.applyRecord(&m); err != nil {
				return err
			}
			r.records.Add(1)
			r.lastSeq = m.Seq
			r.advance(m.Stamp)
		case wire.OpCaughtUp:
			r.raisePrimStamp(m.Stamp)
			r.catchup = nil
			r.advance(m.Stamp)
			r.readyOnce.Do(func() { close(r.ready) })
		case wire.OpHeartbeat:
			r.raisePrimStamp(m.Stamp)
			r.advance(m.Stamp)
		default:
			return fmt.Errorf("unexpected %s on replication stream", m.Op)
		}
	}
}

// raisePrimStamp lifts the last-advertised primary stamp to s.
func (r *Replica) raisePrimStamp(s uint64) {
	for {
		cur := r.primStamp.Load()
		if s <= cur || r.primStamp.CompareAndSwap(cur, s) {
			return
		}
	}
}

// ReplicaStats is an observability snapshot of the follower.
type ReplicaStats struct {
	// Records counts WAL records applied since start.
	Records uint64
	// Resyncs counts full resyncs (snapshot + tail), including the
	// initial sync.
	Resyncs uint64
	// EpochChanges counts primary-incarnation changes observed (a
	// resync against a different epoch than the last one followed).
	EpochChanges uint64
	// PrimaryStamp is the freshest commit stamp the primary advertised;
	// Watermark the stamp applied locally. PrimaryStamp - Watermark is
	// the instantaneous replication lag in stamp units.
	PrimaryStamp uint64
	Watermark    uint64
}

// Stats returns the follower's counters; safe concurrent with the
// stream.
func (r *Replica) Stats() ReplicaStats {
	return ReplicaStats{
		Records:      r.records.Load(),
		Resyncs:      r.resyncs.Load(),
		EpochChanges: r.epochSwaps.Load(),
		PrimaryStamp: r.primStamp.Load(),
		Watermark:    r.watermark.Load(),
	}
}

// advance lifts the watermark (and the commit-clock floor) to s.
func (r *Replica) advance(s uint64) {
	for {
		cur := r.watermark.Load()
		if s <= cur {
			return
		}
		if r.watermark.CompareAndSwap(cur, s) {
			r.lift.Raise(s)
			return
		}
	}
}

// clear empties the map before a full resync.
func (r *Replica) clear() error {
	var pairs []skiphash.Pair[int64, int64]
	pairs = r.m.Range(math.MinInt64, math.MaxInt64, pairs[:0])
	for len(pairs) > 0 {
		batch := pairs
		if len(batch) > applyBatch {
			batch = pairs[:applyBatch]
		}
		err := r.m.Atomic(func(op *skiphash.ShardedTxn[int64, int64]) error {
			for _, p := range batch {
				op.Remove(p.Key)
			}
			return nil
		})
		if err != nil {
			return err
		}
		pairs = pairs[len(batch):]
	}
	return nil
}

// applyChunk loads one snapshot chunk, recording each key's chunk
// stamp so overlapping tail records replay idempotently (the recovery
// rule: a record touches a key only if its stamp is at or above the
// key's chunk stamp).
func (r *Replica) applyChunk(m *wire.ReplMsg) error {
	pairs := m.Pairs
	for len(pairs) > 0 {
		batch := pairs
		if len(batch) > applyBatch {
			batch = pairs[:applyBatch]
		}
		err := r.m.Atomic(func(op *skiphash.ShardedTxn[int64, int64]) error {
			for _, p := range batch {
				op.Put(p.Key, p.Val)
			}
			return nil
		})
		if err != nil {
			return err
		}
		pairs = pairs[len(batch):]
	}
	for _, p := range m.Pairs {
		r.catchup[p.Key] = m.Stamp
	}
	return nil
}

// applyRecord applies one WAL record as one transaction, mirroring
// recovery replay: during catch-up a key whose chunk stamp exceeds the
// record's stamp already reflects it (or newer) and is skipped; live
// records apply unconditionally in stream order, which is commit order
// for any two records that could disagree about a key.
func (r *Replica) applyRecord(m *wire.ReplMsg) error {
	ic := persist.Int64Codec()
	return r.m.Atomic(func(op *skiphash.ShardedTxn[int64, int64]) error {
		skip := func(k int64) bool {
			if r.catchup == nil {
				return false
			}
			ws, ok := r.catchup[k]
			return ok && m.Stamp < ws
		}
		return persist.DecodeOps(m.Ops, m.Count, ic, ic,
			func(k, v int64) error {
				if !skip(k) {
					op.Put(k, v)
				}
				return nil
			},
			func(k int64) error {
				if !skip(k) {
					op.Remove(k)
				}
				return nil
			})
	})
}

// --- Serving backends ---------------------------------------------------

// Backend returns a server.Backend over the replica map: reads are
// served live, writes (and the durability surface) answer
// server.ErrReadOnly until promotion. It implements server.Watermarker
// and server.Promoter, wiring OpWatermark and OpPromote.
func (r *Replica) Backend() server.Backend {
	return &replicaBackend{Backend: server.NewShardedBackend(r.m), r: r}
}

type replicaBackend struct {
	server.Backend
	r *Replica
}

func (b *replicaBackend) Atomic(fn func(op server.Batch) error) error {
	if !b.r.promoted.Load() {
		return server.ErrReadOnly
	}
	return b.Backend.Atomic(fn)
}

func (b *replicaBackend) Sync() error {
	if !b.r.promoted.Load() {
		return server.ErrReadOnly
	}
	return b.Backend.Sync()
}

func (b *replicaBackend) Snapshot() error {
	if !b.r.promoted.Load() {
		return server.ErrReadOnly
	}
	return b.Backend.Snapshot()
}

// Watermark implements server.Watermarker.
func (b *replicaBackend) Watermark() uint64 { return b.r.Watermark() }

// Promote implements server.Promoter.
func (b *replicaBackend) Promote() error { return b.r.Promote() }

// PrimaryBackend decorates a primary's serving backend with a
// Watermark: a fresh commit-clock read, which by the publish-order
// argument in Primary.sender bounds every commit a client has seen a
// response for.
func PrimaryBackend(be server.Backend, clockRead func() uint64) server.Backend {
	return &primaryBackend{Backend: be, read: clockRead}
}

type primaryBackend struct {
	server.Backend
	read func() uint64
}

// Watermark implements server.Watermarker.
func (b *primaryBackend) Watermark() uint64 { return b.read() }
