package server

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/skiphash"
	"repro/skiphash/client"
)

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body)
}

// TestMetricsScrapeAndNamespaceLifecycle drives client traffic against a
// metrics-enabled server and asserts over a real HTTP scrape: the
// default namespace's latency series counts requests, a created
// namespace's series appears, and dropping the namespace removes it.
func TestMetricsScrapeAndNamespaceLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr := startNsServer(t,
		RegistryConfig{Obs: reg},
		Config{Obs: reg})
	ms := httptest.NewServer(reg)
	defer ms.Close()

	c := dialT(t, addr, client.Options{})
	for k := int64(0); k < 32; k++ {
		if _, err := c.Put(k, k); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if _, _, err := c.Get(k); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}

	body := scrape(t, ms.URL)
	if !strings.Contains(body, `skiphash_server_request_seconds_count{ns="default"}`) {
		t.Fatalf("default namespace latency series missing:\n%s", body)
	}
	if !strings.Contains(body, "skiphash_server_requests_total") {
		t.Fatalf("request counter missing:\n%s", body)
	}
	if strings.Contains(body, `skiphash_server_requests_total 0`+"\n") {
		t.Fatalf("request counter still zero after traffic:\n%s", body)
	}

	// A created namespace's series appears immediately (registered at
	// create, not on first traffic)...
	ns, err := c.CreateNamespace("orders", client.NamespaceOptions{})
	if err != nil {
		t.Fatalf("CreateNamespace: %v", err)
	}
	if !strings.Contains(scrape(t, ms.URL), `skiphash_server_request_seconds_count{ns="orders"}`) {
		t.Fatal("orders namespace series missing after create")
	}
	if _, err := ns.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("ns Insert: %v", err)
	}
	// ...and disappears with the namespace.
	if err := c.DropNamespace("orders"); err != nil {
		t.Fatalf("DropNamespace: %v", err)
	}
	if strings.Contains(scrape(t, ms.URL), `ns="orders"`) {
		t.Fatal("orders namespace series survived the drop")
	}

	// The same exposition is reachable in-band through OpStats.
	blob, err := c.ServerStats()
	if err != nil {
		t.Fatalf("ServerStats: %v", err)
	}
	if !strings.Contains(string(blob), `skiphash_server_request_seconds_count{ns="default"}`) {
		t.Fatalf("ServerStats blob missing default series:\n%s", blob)
	}
}

// TestServerStatsWithoutRegistry checks OpStats degrades to a typed
// error rather than an empty blob.
func TestServerStatsWithoutRegistry(t *testing.T) {
	_, addr := startNsServer(t, RegistryConfig{}, Config{})
	c := dialT(t, addr, client.Options{})
	if _, err := c.ServerStats(); err == nil {
		t.Fatal("ServerStats on a registry-less server did not error")
	}
}

// TestSlowOpTracer arms a zero-threshold tracer and checks entries
// carry the op, namespace, and execution path.
func TestSlowOpTracer(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	tr.SetThreshold(0) // trace everything
	_, addr := startNsServer(t,
		RegistryConfig{Obs: reg},
		Config{Obs: reg, Tracer: tr})
	c := dialT(t, addr, client.Options{})
	if _, err := c.Put(1, 1); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, _, err := c.Get(1); err != nil {
		t.Fatalf("Get: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tr.Total() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	entries := tr.Dump()
	if len(entries) < 2 {
		t.Fatalf("tracer retained %d entries, want >= 2", len(entries))
	}
	var sawGet, sawPut bool
	for _, e := range entries {
		if e.Namespace != "default" {
			t.Errorf("entry namespace = %q, want default", e.Namespace)
		}
		switch e.Op {
		case "Get":
			sawGet = true
			if e.Path != "reads" {
				t.Errorf("Get path = %q, want reads", e.Path)
			}
		case "Put":
			sawPut = true
			if e.Path != "atomic" {
				t.Errorf("Put path = %q, want atomic", e.Path)
			}
		}
	}
	if !sawGet || !sawPut {
		t.Fatalf("missing ops in trace: get=%v put=%v (%v)", sawGet, sawPut, entries)
	}
}

// TestPureGetZeroAllocWithMetrics pins the acceptance requirement that
// enabling metrics (and an armed-but-unmatched tracer) keeps the
// pure-Get drain cycle allocation-free, observation included.
func TestPureGetZeroAllocWithMetrics(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; count is meaningless")
	}
	m, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 1}, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	tr.SetThreshold(time.Hour) // armed, never matched
	srv := New(NewShardedBackend(m), Config{Obs: reg, Tracer: tr})
	c := &conn{
		srv:   srv,
		bw:    bufio.NewWriterSize(io.Discard, 64<<10),
		resps: make([]wire.Response, srv.cfg.MaxBatch),
		track: true,
	}
	c.arrivals = make([]time.Time, 0, srv.cfg.MaxBatch)
	c.paths = make([]uint8, srv.cfg.MaxBatch)
	c.nsAt = make([]*namespace, srv.cfg.MaxBatch)
	for k := int64(0); k < 128; k++ {
		m.Insert(k, k)
	}
	batch := make([]wire.Request, 64)
	for i := range batch {
		batch[i] = wire.Request{ID: uint64(i), Op: wire.OpGet, Key: int64(i) % 128}
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.arrivals = c.arrivals[:0]
		now := time.Now()
		for range batch {
			c.arrivals = append(c.arrivals, now)
		}
		c.execute(batch)
		c.observe(batch)
	})
	if allocs != 0 {
		t.Fatalf("pure-Get cycle with metrics enabled allocates %.1f/op, want 0", allocs)
	}
	if got := reg.Histogram(reqLatencyName, reqLatencyHelp, obs.LatencyBounds, 1e-9,
		obs.Label{Key: "ns", Value: "default"}).Count(); got == 0 {
		t.Fatal("latency histogram saw no observations")
	}
}
