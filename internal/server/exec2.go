package server

import (
	"fmt"

	"repro/internal/wire"
)

// The v2 executor: the byte-string mirror of the v1 coalescing path.
// Runs are additionally keyed by namespace — consecutive transactional
// v2 ops coalesce only while they address the same namespace — and each
// run executes under the namespace's run lock, so a concurrent NsDrop
// waits the run out instead of closing the backend under it.

// transactional2 reports whether a v2 op joins coalesced Atomic
// transactions on its namespace's backend.
func transactional2(op wire.Op) bool {
	switch op {
	case wire.OpGet2, wire.OpInsert2, wire.OpPut2, wire.OpDel2, wire.OpBatch2:
		return true
	}
	return false
}

// resolveNS maps a request's namespace id to its live namespace,
// admitting the connection to the namespace's connection quota. A nil
// namespace comes with the status and message to answer with.
func (c *conn) resolveNS(id uint32) (*namespace, wire.Status, string) {
	if id == 0 {
		return nil, wire.StatusErr, "namespace 0 is the default int64 map: use the v1 ops"
	}
	reg := c.srv.reg
	if reg == nil {
		return nil, wire.StatusNsNotFound, "server has no namespace registry"
	}
	ns := reg.lookup(id)
	if ns == nil {
		return nil, wire.StatusNsNotFound, fmt.Sprintf("namespace %d not found", id)
	}
	if c.attached == nil {
		c.attached = make(map[*namespace]struct{}, 4)
	}
	if _, ok := c.attached[ns]; !ok {
		if !ns.attach(c) {
			if m := c.srv.met; m != nil {
				m.busyNS.Inc()
			}
			return nil, wire.StatusBusy,
				fmt.Sprintf("namespace %q connection limit %d reached", ns.name, ns.maxConns)
		}
		c.attached[ns] = struct{}{}
	}
	return ns, wire.StatusOK, ""
}

// failRun answers every request in a run with one status.
func (c *conn) failRun(group []wire.Request, status wire.Status, msg string) {
	for idx := range group {
		req := &group[idx]
		c.encodeResponse(&wire.Response{ID: req.ID, Op: req.Op, Status: status, Msg: msg})
	}
}

// execRunV2 coalesces and executes one v2 run starting at i, returning
// the index past it. The run's extent is bounded by the batch, the
// namespace boundary, the namespace's coalescing quota, and — on
// isolated-shard backends — the shard boundary, mirroring execRunV1.
func (c *conn) execRunV2(batch []wire.Request, i int) int {
	req := &batch[i]
	ns, status, msg := c.resolveNS(req.NS)
	if ns == nil {
		c.encodeResponse(&wire.Response{ID: req.ID, Op: req.Op, Status: status, Msg: msg})
		return i + 1
	}
	maxRun := ns.maxBatch
	if maxRun <= 0 || maxRun > c.srv.cfg.MaxBatch {
		maxRun = c.srv.cfg.MaxBatch
	}
	sameNS := func(r *wire.Request) bool { return transactional2(r.Op) && r.NS == req.NS }

	ns.mu.RLock()
	defer ns.mu.RUnlock()
	if ns.dropped {
		c.encodeResponse(&wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusNsNotFound,
			Msg: fmt.Sprintf("namespace %q dropped", ns.name)})
		return i + 1
	}
	be := ns.be
	j := i + 1
	if be.Spanning() {
		for j < len(batch) && j-i < maxRun && sameNS(&batch[j]) {
			j++
		}
	} else {
		shard, solo := shardOfReq2(be, req)
		if !solo {
			for j < len(batch) && j-i < maxRun && sameNS(&batch[j]) {
				s2, solo2 := shardOfReq2(be, &batch[j])
				if solo2 || s2 != shard {
					break
				}
				j++
			}
		}
	}
	if allGets2(batch[i:j]) {
		for j < len(batch) && j-i < maxRun && batch[j].Op == wire.OpGet2 && batch[j].NS == req.NS {
			j++
		}
		c.markRun(i, j, pathReads, ns)
		c.prefetchNext2(be, req.NS, batch, j)
		c.execReads2(be, batch[i:j])
	} else {
		c.markRun(i, j, pathAtomic, ns)
		c.prefetchNext2(be, req.NS, batch, j)
		c.execAtomic2(be, batch[i:j])
	}
	return j
}

// allGets2 reports whether every request in the run is a v2 point read.
func allGets2(group []wire.Request) bool {
	for i := range group {
		if group[i].Op != wire.OpGet2 {
			return false
		}
	}
	return true
}

// shardOfReq2 maps a v2 request to its coalescing shard on non-spanning
// backends; solo marks a Batch2 whose own keys span shards.
func shardOfReq2(be BytesBackend, req *wire.Request) (shard int, solo bool) {
	if req.Op != wire.OpBatch2 {
		return be.ShardOf(string(req.BKey)), false
	}
	if len(req.BSteps) == 0 {
		return 0, false
	}
	shard = be.ShardOf(string(req.BSteps[0].Key))
	for i := range req.BSteps[1:] {
		if be.ShardOf(string(req.BSteps[1+i].Key)) != shard {
			return 0, true
		}
	}
	return shard, false
}

// prefetchNext2 warms the next run's keys on the namespace backend,
// restricted to requests addressing the same namespace (other
// namespaces' keys live in other maps).
func (c *conn) prefetchNext2(be BytesBackend, ns uint32, batch []wire.Request, from int) {
	n := 0
	for idx := from; idx < len(batch) && n < prefetchAhead; idx++ {
		req := &batch[idx]
		if !req.Op.IsV2Data() || req.NS != ns {
			continue
		}
		switch req.Op {
		case wire.OpGet2, wire.OpInsert2, wire.OpPut2, wire.OpDel2:
			be.Prefetch(string(req.BKey))
			n++
		case wire.OpBatch2:
			for si := range req.BSteps {
				if n >= prefetchAhead {
					break
				}
				be.Prefetch(string(req.BSteps[si].Key))
				n++
			}
		}
	}
}

// execReads2 answers a pure-read v2 run through the backend's direct
// read path, reusing one value scratch per response (the encode copies
// it into the write buffer before the next read overwrites it).
func (c *conn) execReads2(be BytesBackend, group []wire.Request) {
	var resp wire.Response
	for idx := range group {
		req := &group[idx]
		resp = wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusOK}
		v, ok := be.Get(string(req.BKey))
		resp.Ok = ok
		if ok {
			c.bval = append(c.bval[:0], v...)
			resp.BVal = c.bval
		}
		c.encodeResponse(&resp)
	}
}

// execAtomic2 executes a coalesced v2 run as one transaction on the
// namespace backend and encodes the responses, mirroring execAtomic.
func (c *conn) execAtomic2(be BytesBackend, group []wire.Request) {
	resps := c.resps[:len(group)]
	err := be.Atomic(func(op BBatch) error {
		for idx := range group {
			req := &group[idx]
			resp := &resps[idx]
			resp.ID, resp.Op, resp.Status, resp.Msg = req.ID, req.Op, wire.StatusOK, ""
			resp.BVal = nil
			switch req.Op {
			case wire.OpGet2:
				v, ok := op.Lookup(string(req.BKey))
				resp.Ok = ok
				if ok {
					resp.BVal = []byte(v)
				}
			case wire.OpInsert2:
				resp.Ok = op.Insert(string(req.BKey), string(req.BVal))
			case wire.OpPut2:
				resp.Ok = op.Put(string(req.BKey), string(req.BVal))
			case wire.OpDel2:
				resp.Ok = op.Remove(string(req.BKey))
			case wire.OpBatch2:
				resp.BSteps = resp.BSteps[:0]
				for si := range req.BSteps {
					s := &req.BSteps[si]
					var sr wire.BStepResult
					switch s.Kind {
					case wire.StepInsert:
						sr.Ok = op.Insert(string(s.Key), string(s.Val))
					case wire.StepRemove:
						sr.Ok = op.Remove(string(s.Key))
					case wire.StepLookup:
						v, ok := op.Lookup(string(s.Key))
						sr.Ok = ok
						if ok {
							sr.Val = []byte(v)
						}
					}
					resp.BSteps = append(resp.BSteps, sr)
				}
			}
		}
		return nil
	})
	if err != nil {
		status, msg := statusFor(err)
		c.failRun(group, status, msg)
		return
	}
	for idx := range resps {
		c.encodeResponse(&resps[idx])
	}
}

// execStandalone2 handles the non-coalescable v2 namespace ops (Range2,
// Sync2, Snapshot2, Resize2) under the namespace's run lock.
func (c *conn) execStandalone2(req *wire.Request, resp *wire.Response) {
	ns, status, msg := c.resolveNS(req.NS)
	if ns == nil {
		resp.Status, resp.Msg = status, msg
		return
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	if ns.dropped {
		resp.Status = wire.StatusNsNotFound
		resp.Msg = fmt.Sprintf("namespace %q dropped", ns.name)
		return
	}
	switch req.Op {
	case wire.OpRange2:
		c.execRange2(ns.be, req, resp)
	case wire.OpSync2:
		if err := ns.be.Sync(); err != nil {
			resp.Status, resp.Msg = statusFor(err)
		}
	case wire.OpSnapshot2:
		if err := ns.be.Snapshot(); err != nil {
			resp.Status, resp.Msg = statusFor(err)
		}
	case wire.OpResize2:
		if rz, ok := ns.be.(Resizer); ok {
			n, err := rz.Resize(int(req.Key))
			if err != nil {
				resp.Status, resp.Msg = statusFor(err)
			} else {
				resp.Val = int64(n)
			}
		} else {
			resp.Status, resp.Msg = wire.StatusErr, "namespace backend is not resizable"
		}
	}
}

// execRange2 answers one Range2: [lo, hi] (or everything from lo with
// NoHi) in lexicographic order, truncated to the client's Max and to
// wire.MaxRangeBytes2 so the response always encodes as one frame.
func (c *conn) execRange2(be BytesBackend, req *wire.Request, resp *wire.Response) {
	max := int(req.Max)
	budget := wire.MaxRangeBytes2
	c.bkvs = c.bkvs[:0]
	take := func(k, v string) bool {
		cost := 8 + len(k) + len(v)
		if budget < cost || (max > 0 && len(c.bkvs) >= max) {
			return false
		}
		budget -= cost
		c.bkvs = append(c.bkvs, wire.BKV{Key: []byte(k), Val: []byte(v)})
		return true
	}
	if req.NoHi {
		be.AscendFrom(string(req.BKey), take)
	} else {
		c.bpairs = be.Range(string(req.BKey), string(req.BVal), c.bpairs[:0])
		for i := range c.bpairs {
			if !take(c.bpairs[i].Key, c.bpairs[i].Val) {
				break
			}
		}
	}
	resp.BPairs = c.bkvs
}

// execAdmin handles the namespace admin ops.
func (c *conn) execAdmin(req *wire.Request, resp *wire.Response) {
	reg := c.srv.reg
	switch req.Op {
	case wire.OpNsCreate:
		if reg == nil {
			resp.Status, resp.Msg = wire.StatusErr, "server has no namespace registry"
			return
		}
		ns, err := reg.Create(req.Name, req.Durable, req.Fsync)
		if err != nil {
			resp.Status, resp.Msg = statusFor(err)
			return
		}
		resp.NsID = ns.id
	case wire.OpNsDrop:
		if reg == nil {
			resp.Status, resp.Msg = wire.StatusErr, "server has no namespace registry"
			return
		}
		if err := reg.Drop(req.Name); err != nil {
			resp.Status, resp.Msg = statusFor(err)
		}
	case wire.OpNsList:
		resp.Namespaces = []wire.NsInfo{{ID: 0, Name: "default", Durable: c.srv.defDurable}}
		if reg != nil {
			resp.Namespaces = append(resp.Namespaces, reg.List()...)
		}
	}
}
