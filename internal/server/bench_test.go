package server

import (
	"bufio"
	"io"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/skiphash"
)

// benchConn builds an executor-side conn over a discarding writer, so a
// benchmark can drive drain cycles (execute + encode) without sockets.
func benchConn(b *testing.B, mapCfg skiphash.Config) (*conn, *skiphash.Sharded[int64, int64]) {
	b.Helper()
	m, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, mapCfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	srv := New(NewShardedBackend(m), Config{})
	c := &conn{
		srv:   srv,
		bw:    bufio.NewWriterSize(io.Discard, 64<<10),
		resps: make([]wire.Response, srv.cfg.MaxBatch),
	}
	return c, m
}

// BenchmarkDrainCycleGets measures one drain cycle of a pure-read run:
// the read-segregated path (direct Gets plus prefetch) and response
// encoding. The allocation budget here should be zero — this is the
// serving layer's hottest loop.
func BenchmarkDrainCycleGets(b *testing.B) {
	c, m := benchConn(b, skiphash.Config{Shards: 1})
	for k := int64(0); k < 1024; k++ {
		m.Insert(k, k)
	}
	batch := make([]wire.Request, 64)
	for i := range batch {
		batch[i] = wire.Request{ID: uint64(i), Op: wire.OpGet, Key: int64(i) % 1024}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.execute(batch)
	}
}

// BenchmarkDrainCycleGetsMetrics is BenchmarkDrainCycleGets with the
// full observability stack enabled (registry, histograms, armed
// tracer): the delta against the plain benchmark is the metrics cost,
// and the allocation budget stays zero.
func BenchmarkDrainCycleGetsMetrics(b *testing.B) {
	m, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 1}, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	tr.SetThreshold(time.Hour) // armed, never matched
	srv := New(NewShardedBackend(m), Config{Obs: reg, Tracer: tr})
	c := &conn{
		srv:   srv,
		bw:    bufio.NewWriterSize(io.Discard, 64<<10),
		resps: make([]wire.Response, srv.cfg.MaxBatch),
		track: true,
	}
	c.arrivals = make([]time.Time, 0, srv.cfg.MaxBatch)
	c.paths = make([]uint8, srv.cfg.MaxBatch)
	c.nsAt = make([]*namespace, srv.cfg.MaxBatch)
	for k := int64(0); k < 1024; k++ {
		m.Insert(k, k)
	}
	batch := make([]wire.Request, 64)
	for i := range batch {
		batch[i] = wire.Request{ID: uint64(i), Op: wire.OpGet, Key: int64(i) % 1024}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.arrivals = c.arrivals[:0]
		now := time.Now()
		for range batch {
			c.arrivals = append(c.arrivals, now)
		}
		c.execute(batch)
		c.observe(batch)
	}
}

// BenchmarkDrainCycleMixed measures a drain cycle whose run coalesces
// into one Atomic transaction (reads and writes interleaved).
func BenchmarkDrainCycleMixed(b *testing.B) {
	c, m := benchConn(b, skiphash.Config{Shards: 1})
	for k := int64(0); k < 1024; k++ {
		m.Insert(k, k)
	}
	batch := make([]wire.Request, 64)
	for i := range batch {
		if i%4 == 0 {
			batch[i] = wire.Request{ID: uint64(i), Op: wire.OpPut, Key: int64(i) % 1024, Val: int64(i)}
		} else {
			batch[i] = wire.Request{ID: uint64(i), Op: wire.OpGet, Key: int64(i) % 1024}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.execute(batch)
	}
}
