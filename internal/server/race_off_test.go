//go:build !race

package server

// See race_on_test.go.
const raceEnabled = false
