package server

import (
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Server-side observability. Everything here is additive and stays off
// the data path's shared-write side: instruments are striped atomics,
// per-request annotations live in conn-local scratch, and the tracer
// takes its mutex only for ops that are already slow. With Config.Obs
// and Config.Tracer unset the per-request cost is a nil check.

// Execution-path markers for per-request annotations (conn.paths). The
// zero value is standalone so unannotated requests (admin ops, runs
// that failed namespace resolution) report truthfully.
const (
	pathStandalone uint8 = iota
	pathReads
	pathAtomic
)

// pathName renders a path marker for trace entries.
func pathName(p uint8) string {
	switch p {
	case pathReads:
		return "reads"
	case pathAtomic:
		return "atomic"
	}
	return "standalone"
}

// reqLatencyName is the per-namespace request latency family; the
// default (v1) namespace registers under ns="default" here and named
// namespaces under their own ns label (see Registry.create).
const (
	reqLatencyName = "skiphash_server_request_seconds"
	reqLatencyHelp = "Request latency from frame arrival to response flush, by namespace."
	busyName       = "skiphash_server_busy_refusals_total"
	busyHelp       = "Requests or connections refused with StatusBusy, by reason."
	nsShardsName   = "skiphash_ns_shards"
	nsShardsHelp   = "Live shard count of a named namespace's map (RESIZE moves it)."
)

// metrics holds the server's registered instruments; nil when
// Config.Obs is unset.
type metrics struct {
	requests   *obs.Counter
	runSize    *obs.Histogram
	reqDefault *obs.Histogram
	busyConns  *obs.Counter
	busyNS     *obs.Counter
}

// newMetrics registers the server's instruments on r. Registration is
// idempotent, so two servers sharing a registry share the counters.
func newMetrics(s *Server, r *obs.Registry) *metrics {
	m := &metrics{
		requests: r.Counter("skiphash_server_requests_total",
			"Requests executed, all ops and namespaces."),
		runSize: r.Histogram("skiphash_server_run_size",
			"Requests absorbed by one coalesced executor run.", obs.SizeBounds, 1),
		reqDefault: r.Histogram(reqLatencyName, reqLatencyHelp,
			obs.LatencyBounds, 1e-9, obs.Label{Key: "ns", Value: "default"}),
		busyConns: r.Counter(busyName, busyHelp,
			obs.Label{Key: "reason", Value: "conn_limit"}),
		busyNS: r.Counter(busyName, busyHelp,
			obs.Label{Key: "reason", Value: "ns_quota"}),
	}
	r.GaugeFunc("skiphash_server_connections",
		"Connections currently served.",
		func() float64 { return float64(s.NumConns()) })
	r.GaugeFunc("skiphash_server_queue_depth",
		"Requests decoded but not yet executing, summed over connections.",
		func() float64 {
			s.mu.Lock()
			n := 0
			for c := range s.conns {
				n += len(c.reqs)
			}
			s.mu.Unlock()
			return float64(n)
		})
	return m
}

// markRun annotates one coalesced run's requests with their execution
// path and namespace, and banks the run size. Conn-local; no shared
// writes beyond the striped histogram.
func (c *conn) markRun(i, j int, path uint8, ns *namespace) {
	if !c.track {
		return
	}
	for k := i; k < j; k++ {
		c.paths[k] = path
		c.nsAt[k] = ns
	}
	if m := c.srv.met; m != nil {
		m.runSize.Observe(uint64(j - i))
	}
}

// observe banks the cycle's per-request latencies and feeds the slow-op
// tracer. Called once per drain cycle after the flush, only when the
// connection tracks timings (metrics or tracer attached).
func (c *conn) observe(batch []wire.Request) {
	m := c.srv.met
	tr := c.srv.cfg.Tracer
	now := time.Now()
	traceActive := tr != nil && tr.Enabled()
	var abortDelta uint64
	if traceActive && c.srv.cfg.AbortsFn != nil {
		abortDelta = c.srv.cfg.AbortsFn() - c.abortsBefore
	}
	if m != nil {
		m.requests.Add(uint64(len(batch)))
	}
	for i := range batch {
		d := now.Sub(c.arrivals[i])
		ns := c.nsAt[i]
		var h *obs.Histogram
		if ns != nil && ns.reqLatency != nil {
			h = ns.reqLatency
		} else if m != nil {
			h = m.reqDefault
		}
		if h != nil {
			h.ObserveNanos(int64(d))
		}
		if traceActive && tr.Slow(d) {
			req := &batch[i]
			nsName := "default"
			if ns != nil {
				nsName = ns.name
			}
			tr.Record(obs.TraceEntry{
				UnixNanos: now.UnixNano(),
				Op:        req.Op.String(),
				Namespace: nsName,
				Path:      pathName(c.paths[i]),
				KeyHash:   reqKeyHash(req),
				Duration:  d,
				Aborts:    abortDelta,
			})
		}
	}
}

// reqKeyHash fingerprints the request's (first) key without retaining
// it; 0 for keyless ops.
func reqKeyHash(req *wire.Request) uint64 {
	switch req.Op {
	case wire.OpGet, wire.OpInsert, wire.OpPut, wire.OpDel, wire.OpRange:
		return mixKey(req.Key)
	case wire.OpBatch:
		if len(req.Steps) > 0 {
			return mixKey(req.Steps[0].Key)
		}
	case wire.OpGet2, wire.OpInsert2, wire.OpPut2, wire.OpDel2, wire.OpRange2:
		return obs.HashBytes(req.BKey)
	case wire.OpBatch2:
		if len(req.BSteps) > 0 {
			return obs.HashBytes(req.BSteps[0].Key)
		}
	}
	return 0
}

// mixKey fingerprints an int64 key (Fibonacci hash + xor-fold).
func mixKey(k int64) uint64 {
	x := uint64(k) * 0x9e3779b97f4a7c15
	return x ^ x>>29
}
