package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/skiphash"
	"repro/skiphash/client"
)

// startNsServer serves a default int64 map plus a namespace registry
// rooted at a temp dir.
func startNsServer(t *testing.T, regCfg RegistryConfig, srvCfg Config) (*Server, string) {
	t.Helper()
	if regCfg.Root == "" {
		regCfg.Root = t.TempDir()
	}
	reg, err := NewRegistry(regCfg)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 2})
	srv := NewWithRegistry(NewShardedBackend(m), reg, srvCfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
		m.Close()
	})
	return srv, ln.Addr().String()
}

func TestNamespaceLifecycleAndOps(t *testing.T) {
	_, addr := startNsServer(t, RegistryConfig{}, Config{})
	c := dialT(t, addr, client.Options{Conns: 2})

	// Three named maps, each with its own durability directory.
	var nss []*client.Namespace
	for _, name := range []string{"feeds", "articles", "sessions"} {
		ns, err := c.CreateNamespace(name, client.NamespaceOptions{Durable: true})
		if err != nil {
			t.Fatalf("CreateNamespace(%s): %v", name, err)
		}
		nss = append(nss, ns)
	}
	if _, err := c.CreateNamespace("feeds", client.NamespaceOptions{}); !errors.Is(err, client.ErrNamespaceExists) {
		t.Fatalf("duplicate create: want ErrNamespaceExists, got %v", err)
	}
	infos, err := c.Namespaces()
	if err != nil || len(infos) != 4 {
		t.Fatalf("Namespaces() = %v, %v (want default + 3)", infos, err)
	}
	if infos[0].ID != 0 || infos[0].Name != "default" {
		t.Fatalf("first listing entry = %+v, want the default namespace", infos[0])
	}

	// Same key in different namespaces stays independent.
	for i, ns := range nss {
		if ok, err := ns.Insert([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil || !ok {
			t.Fatalf("%s Insert: %v %v", ns.Name(), ok, err)
		}
	}
	for i, ns := range nss {
		v, ok, err := ns.Get([]byte("k"))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s Get(k) = %q, %v, %v", ns.Name(), v, ok, err)
		}
	}

	// Point ops, ranges, batches on one namespace.
	feeds := nss[0]
	for i := 0; i < 10; i++ {
		if ok, err := feeds.Insert([]byte(fmt.Sprintf("feed/%02d", i)), []byte("x")); err != nil || !ok {
			t.Fatalf("Insert feed/%02d: %v %v", i, ok, err)
		}
	}
	if replaced, err := feeds.Put([]byte("feed/03"), []byte("y")); err != nil || !replaced {
		t.Fatalf("Put: %v %v", replaced, err)
	}
	if ok, err := feeds.Remove([]byte("feed/07")); err != nil || !ok {
		t.Fatalf("Remove: %v %v", ok, err)
	}
	pairs, err := feeds.Range([]byte("feed/"), []byte("feed/~"), 0)
	if err != nil || len(pairs) != 9 {
		t.Fatalf("Range = %d pairs, %v (want 9)", len(pairs), err)
	}
	if !bytes.Equal(pairs[3].Key, []byte("feed/03")) || !bytes.Equal(pairs[3].Val, []byte("y")) {
		t.Fatalf("pairs[3] = %q=%q", pairs[3].Key, pairs[3].Val)
	}
	all, err := feeds.RangeFrom([]byte("feed/05"), 0)
	if err != nil || len(all) != 5 { // 05, 06, 08, 09 and "k"
		t.Fatalf("RangeFrom = %d pairs, %v (want 5)", len(all), err)
	}
	// Zero-length keys are legal end to end.
	if ok, err := feeds.Insert([]byte{}, []byte("empty")); err != nil || !ok {
		t.Fatalf("Insert empty key: %v %v", ok, err)
	}
	if v, ok, err := feeds.Get(nil); err != nil || !ok || string(v) != "empty" {
		t.Fatalf("Get(nil) = %q, %v, %v", v, ok, err)
	}

	// v2 data ops refuse the default namespace.
	raw := c.Conn(0)
	resp, err := raw.Do(&wire.Request{Op: wire.OpGet2, NS: 0, BKey: []byte("k")})
	if err == nil || resp.Status != wire.StatusErr {
		t.Fatalf("Get2 on ns 0: status %v, err %v (want StatusErr)", resp.Status, err)
	}

	// Drop, then every op on the stale handle fails typed.
	if err := c.DropNamespace("sessions"); err != nil {
		t.Fatalf("DropNamespace: %v", err)
	}
	if err := c.DropNamespace("sessions"); !errors.Is(err, client.ErrNamespaceNotFound) {
		t.Fatalf("double drop: want ErrNamespaceNotFound, got %v", err)
	}
	if _, _, err := nss[2].Get([]byte("k")); !errors.Is(err, client.ErrNamespaceNotFound) {
		t.Fatalf("Get on dropped ns: want ErrNamespaceNotFound, got %v", err)
	}
	if _, err := c.Namespace("sessions"); !errors.Is(err, client.ErrNamespaceNotFound) {
		t.Fatalf("resolve dropped ns: want ErrNamespaceNotFound, got %v", err)
	}
}

func TestNamespaceAtomicBatch(t *testing.T) {
	_, addr := startNsServer(t, RegistryConfig{}, Config{})
	c := dialT(t, addr, client.Options{})
	ns, err := c.CreateNamespace("batch", client.NamespaceOptions{})
	if err != nil {
		t.Fatalf("CreateNamespace: %v", err)
	}
	if ok, err := ns.Insert([]byte("a"), []byte("1")); err != nil || !ok {
		t.Fatalf("Insert: %v %v", ok, err)
	}
	results, err := ns.Atomic([]client.BStep{
		{Kind: client.StepInsert, Key: []byte("b"), Val: []byte("2")},
		{Kind: client.StepRemove, Key: []byte("a")},
		{Kind: client.StepLookup, Key: []byte("b")},
		{Kind: client.StepLookup, Key: []byte("a")},
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if !results[0].Ok || !results[1].Ok {
		t.Fatalf("insert/remove results: %+v", results[:2])
	}
	if !results[2].Ok || string(results[2].Val) != "2" {
		t.Fatalf("lookup(b) = %+v", results[2])
	}
	if results[3].Ok {
		t.Fatalf("lookup(a) after remove = %+v", results[3])
	}
}

func TestNamespaceDurableReopen(t *testing.T) {
	root := t.TempDir()
	addrOf := func() (addr string, shutdown func()) {
		reg, err := NewRegistry(RegistryConfig{Root: root, Durability: skiphash.Durability{Fsync: skiphash.FsyncAlways}})
		if err != nil {
			t.Fatalf("NewRegistry: %v", err)
		}
		m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 2})
		srv := NewWithRegistry(NewShardedBackend(m), reg, Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		served := make(chan error, 1)
		go func() { served <- srv.Serve(ln) }()
		return ln.Addr().String(), func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-served
			m.Close()
		}
	}

	addr, shutdown := addrOf()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	ns, err := c.CreateNamespace("persistent", client.NamespaceOptions{Durable: true, Fsync: client.NsFsyncAlways})
	if err != nil {
		t.Fatalf("CreateNamespace: %v", err)
	}
	for i := 0; i < 50; i++ {
		if ok, err := ns.Insert([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil || !ok {
			t.Fatalf("Insert %d: %v %v", i, ok, err)
		}
	}
	c.Close()
	shutdown()

	// Reopen: discovery must restore the namespace and its contents.
	addr, shutdown = addrOf()
	defer shutdown()
	c, err = client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer c.Close()
	ns, err = c.Namespace("persistent")
	if err != nil {
		t.Fatalf("resolve after reopen: %v", err)
	}
	for i := 0; i < 50; i++ {
		v, ok, err := ns.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("after reopen Get(key-%03d) = %q, %v, %v", i, v, ok, err)
		}
	}
	pairs, err := ns.Range([]byte("key-"), []byte("key-~"), 0)
	if err != nil || len(pairs) != 50 {
		t.Fatalf("after reopen Range = %d pairs, %v", len(pairs), err)
	}
}

func TestNamespaceConnQuota(t *testing.T) {
	_, addr := startNsServer(t, RegistryConfig{MaxConns: 1}, Config{})
	c1 := dialT(t, addr, client.Options{Conns: 1})
	c2 := dialT(t, addr, client.Options{Conns: 1})
	ns1, err := c1.CreateNamespace("quota", client.NamespaceOptions{})
	if err != nil {
		t.Fatalf("CreateNamespace: %v", err)
	}
	if ok, err := ns1.Insert([]byte("k"), []byte("v")); err != nil || !ok {
		t.Fatalf("first conn Insert: %v %v", ok, err)
	}
	// The second connection is over the namespace quota: its requests
	// answer StatusBusy, but the connection survives and the default
	// namespace still serves it.
	ns2, err := c2.Namespace("quota")
	if err != nil {
		t.Fatalf("resolve on second conn: %v", err)
	}
	if _, _, err := ns2.Get([]byte("k")); !errors.Is(err, client.ErrServerBusy) {
		t.Fatalf("over-quota Get: want ErrServerBusy, got %v", err)
	}
	if _, err := c2.Insert(1, 10); err != nil {
		t.Fatalf("v1 op on over-quota conn: %v", err)
	}
	// The first connection stays within quota.
	if _, _, err := ns1.Get([]byte("k")); err != nil {
		t.Fatalf("in-quota Get: %v", err)
	}
}

func TestNamespaceDropWhileServing(t *testing.T) {
	srv, addr := startNsServer(t, RegistryConfig{}, Config{})
	c := dialT(t, addr, client.Options{Conns: 2})
	ns, err := c.CreateNamespace("volatile", client.NamespaceOptions{})
	if err != nil {
		t.Fatalf("CreateNamespace: %v", err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := ns.Put([]byte(fmt.Sprintf("w%d-%d", w, i)), []byte("v"))
				if err != nil && !errors.Is(err, client.ErrNamespaceNotFound) {
					t.Errorf("writer %d: unexpected error %v", w, err)
					return
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	if err := srv.Registry().Drop("volatile"); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	// After the drop every further op must fail typed.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := ns.Put([]byte("probe"), []byte("v"))
		if errors.Is(err, client.ErrNamespaceNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ops still succeeding after drop: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestNamespacePipelinedMixedFamilies(t *testing.T) {
	_, addr := startNsServer(t, RegistryConfig{}, Config{})
	c := dialT(t, addr, client.Options{})
	ns, err := c.CreateNamespace("mixed", client.NamespaceOptions{})
	if err != nil {
		t.Fatalf("CreateNamespace: %v", err)
	}
	cn := c.Conn(0)
	// Interleave v1 and v2 writes in one pipelined burst; the executor
	// must split runs at family boundaries and still answer in order.
	var calls []*client.Call
	for i := 0; i < 40; i++ {
		var req wire.Request
		if i%2 == 0 {
			req = wire.Request{Op: wire.OpInsert, Key: int64(i), Val: int64(i * 10)}
		} else {
			req = wire.Request{Op: wire.OpInsert2, NS: ns.ID(),
				BKey: []byte(fmt.Sprintf("p%02d", i)), BVal: []byte("v")}
		}
		call, err := cn.Start(&req)
		if err != nil {
			t.Fatalf("Start %d: %v", i, err)
		}
		calls = append(calls, call)
	}
	if err := cn.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i, call := range calls {
		resp, err := call.Wait()
		if err != nil || !resp.Ok {
			t.Fatalf("call %d: ok=%v err=%v", i, resp.Ok, err)
		}
	}
	if v, ok, err := c.Get(38); err != nil || !ok || v != 380 {
		t.Fatalf("v1 Get(38) = %d, %v, %v", v, ok, err)
	}
	if v, ok, err := ns.Get([]byte("p39")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("v2 Get(p39) = %q, %v, %v", v, ok, err)
	}
}
