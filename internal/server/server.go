// Package server is the skip hash's network front end: it speaks the
// internal/wire protocol over TCP or unix sockets and executes requests
// against an embedded map (unsharded or sharded, durable or not).
//
// # Pipelining and batching
//
// Each connection runs two goroutines. A reader decodes frames and
// feeds a bounded queue; an executor drains the queue, coalesces runs
// of point operations (and client batches) into single Atomic
// transactions, and writes the responses back in request order with
// one flush per drain cycle. A client that pipelines N requests
// therefore pays ~one syscall and ~one STM transaction per batch
// instead of per operation — the access-boundary batching that
// serving-scale throughput lives or dies on. Clients that send one
// request at a time (closed loop) see ordinary request/response
// behavior; batching is purely opportunistic and adds no latency when
// the queue is empty.
//
// Coalescing is shard-aware: on isolated-shard maps an Atomic
// transaction must stay within one shard, so runs are additionally
// split at shard boundaries, and a client batch whose own keys span
// shards executes alone and fails with StatusCrossShard, exactly as
// the embedded map's Atomic would.
//
// Reads are segregated from writes: a coalesced run consisting purely
// of Gets skips the atomic-txn machinery and is answered through the
// backend's direct read path (the map's optimistic non-transactional
// fast path), and while one run executes the drain loop issues index
// prefetches for the next run's keys, overlapping its descent with the
// current run's work.
//
// Coalescing preserves each request's semantics. Every operation in a
// coalesced transaction takes effect at the transaction's single
// commit point, which lies after all of the operations' invocations
// (they were queued) and before any of their responses — a valid
// linearization point for each of them, verified end to end by
// skipstress -net.
//
// # Lifecycle
//
// Shutdown drains gracefully: listeners close, connection readers
// stop accepting new frames, executors finish every request already
// queued and flush the responses, and the map's removal buffers are
// quiesced — wiring the network front end into the map's existing
// Close/Quiesce lifecycle. Connections still open when the context
// expires are force-closed.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/skiphash"
)

// Pair is the map's key/value pair type.
type Pair = skiphash.Pair[int64, int64]

// ErrReadOnly is returned by a backend refusing writes — a replica that
// has not been promoted. The server answers with StatusReadOnly.
var ErrReadOnly = errors.New("server: backend is read-only (unpromoted replica)")

// Watermarker is an optional Backend extension: a backend that can
// report its commit-stamp watermark (the stamp below which every commit
// is visible to reads). Replica backends report their applied stamp;
// primary backends a fresh clock read. Without it, OpWatermark answers
// StatusErr.
type Watermarker interface {
	Watermark() uint64
}

// Promoter is an optional Backend extension: a replica backend that can
// be made writable. Without it, OpPromote answers StatusErr.
type Promoter interface {
	Promote() error
}

// Resizer is an optional extension of Backend and BytesBackend: a
// sharded backend that can live-migrate to a new shard count while
// serving (skiphash.Sharded.Resize). Without it, OpResize/OpResize2
// answer StatusErr. Resize reports the resulting live count.
type Resizer interface {
	Resize(n int) (int, error)
}

// Batch is the transactional view a Backend hands the executor inside
// Atomic; both skiphash.Txn and skiphash.ShardedTxn satisfy it.
type Batch interface {
	Lookup(k int64) (int64, bool)
	Insert(k, v int64) bool
	Remove(k int64) bool
	Put(k, v int64) bool
}

// Backend is the embedded map the server executes against. The two
// implementations wrap skiphash.Map and skiphash.Sharded.
type Backend interface {
	// Atomic runs fn as one transaction; everything fn does through op
	// commits or rolls back together. Like the map's own Atomic, fn may
	// re-execute on conflict.
	Atomic(fn func(op Batch) error) error
	// Get answers one point read directly — through the map's optimistic
	// non-transactional fast path when enabled, with a per-read
	// transactional fallback. The executor routes pure-read runs here so
	// they skip the atomic-txn machinery entirely.
	Get(k int64) (int64, bool)
	// Prefetch warms the cache lines a read or write of k will touch; a
	// pure cache side effect the drain loop issues for the next run's
	// keys while the current run executes.
	Prefetch(k int64)
	// Range collects [l, r] in key order, appending to out.
	Range(l, r int64, out []Pair) []Pair
	// ShardOf reports which coalescing domain k belongs to; always 0
	// when Spanning.
	ShardOf(k int64) int
	// Spanning reports whether one Atomic may touch every key (shared
	// runtime); false splits coalesced runs at shard boundaries.
	Spanning() bool
	// Sync, Snapshot expose the durability surface (skiphash.ErrNotDurable
	// without one).
	Sync() error
	Snapshot() error
	// Quiesce flushes removal buffers; Shutdown calls it after draining.
	Quiesce()
}

// Config tunes the server. The zero value serves with the defaults.
type Config struct {
	// MaxConns bounds concurrently served connections; further accepts
	// receive a StatusBusy frame and are closed. Default 256.
	MaxConns int
	// MaxBatch bounds how many pipelined requests one Atomic
	// transaction may coalesce. Default 64.
	MaxBatch int
	// QueueDepth is the per-connection request queue; a full queue
	// exerts backpressure on the reader (the client's writes stall).
	// Default 1024.
	QueueDepth int
	// WriteTimeout is the slow-client deadline: a drain cycle's
	// response writes must complete within it or the connection is torn
	// down. Default 10s; negative disables.
	WriteTimeout time.Duration
	// IdleTimeout closes connections with no request activity for this
	// long. 0 disables.
	IdleTimeout time.Duration
	// Logf, when set, receives per-connection diagnostics (protocol
	// violations, write failures). Default: silent.
	Logf func(format string, args ...any)
	// Obs, when set, registers the server's metrics (request latency,
	// coalesced-run size, queue depth, busy refusals) and serves the
	// registry's rendered exposition through wire.OpStats. Metrics are
	// additive: nothing is registered on the data path's shared-write
	// side, and with Obs unset the per-request cost is a nil check.
	Obs *obs.Registry
	// Tracer, when set (and armed via its threshold), captures slow
	// requests into its ring: op, namespace, key hash, execution path,
	// duration, and the STM abort delta over the request's batch.
	Tracer *obs.Tracer
	// AbortsFn, when set alongside Tracer, reports the process-wide STM
	// abort count; trace entries carry the delta observed across their
	// drain cycle as an attribution hint.
	AbortsFn func() uint64
}

func (c Config) withDefaults() Config {
	if c.MaxConns == 0 {
		c.MaxConns = 256
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	return c
}

// Server serves one Backend over any number of listeners. With a
// Registry attached it additionally serves named byte-string namespaces
// through the wire v2 ops; the Backend stays namespace 0, the default
// map, reachable only through the v1 ops.
type Server struct {
	be         Backend
	reg        *Registry
	defDurable bool
	cfg        Config
	met        *metrics // nil without Config.Obs

	mu       sync.Mutex
	lns      map[net.Listener]struct{}
	conns    map[*conn]struct{}
	draining atomic.Bool
	connWG   sync.WaitGroup
}

// New creates a server around be. Without a registry the server speaks
// only the v1 ops (v2 data ops answer StatusNsNotFound, NsCreate
// StatusErr).
func New(be Backend, cfg Config) *Server {
	s := &Server{
		be:    be,
		cfg:   cfg.withDefaults(),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[*conn]struct{}),
	}
	if s.cfg.Obs != nil {
		s.met = newMetrics(s, s.cfg.Obs)
	}
	return s
}

// NewWithRegistry creates a multi-namespace server: be is namespace 0
// (the v1 int64 map), reg owns the named namespaces. The server takes
// ownership of the registry's backends — Shutdown closes them.
func NewWithRegistry(be Backend, reg *Registry, cfg Config) *Server {
	s := New(be, cfg)
	s.reg = reg
	return s
}

// Registry exposes the attached namespace registry (nil without one).
func (s *Server) Registry() *Registry { return s.reg }

// SetDefaultDurable records whether the default namespace is durable,
// for NsList reporting. Call before Serve.
func (s *Server) SetDefaultDurable(d bool) { s.defDurable = d }

// errServerClosed distinguishes a drain-initiated accept failure.
var errServerClosed = errors.New("server: shut down")

// Serve accepts connections on ln until the listener fails or the
// server shuts down (then it returns nil). Multiple Serve calls on
// different listeners may run concurrently (TCP + unix socket).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return errServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.startConn(nc)
	}
}

// startConn admits or rejects one accepted connection.
func (s *Server) startConn(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		// Responses are flushed once per drain cycle — already batched —
		// so Nagle only adds delayed-ACK stalls to the request/response
		// rhythm.
		tc.SetNoDelay(true)
	}
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		s.refuse(nc, wire.StatusShuttingDown, "server is shutting down")
		return
	}
	if len(s.conns) >= s.cfg.MaxConns {
		s.mu.Unlock()
		if s.met != nil {
			s.met.busyConns.Inc()
		}
		s.refuse(nc, wire.StatusBusy, fmt.Sprintf("connection limit %d reached", s.cfg.MaxConns))
		return
	}
	c := &conn{
		srv:   s,
		nc:    nc,
		bw:    bufio.NewWriterSize(nc, 64<<10),
		reqs:  make(chan queuedReq, s.cfg.QueueDepth),
		resps: make([]wire.Response, s.cfg.MaxBatch),
		track: s.met != nil || s.cfg.Tracer != nil,
	}
	if c.track {
		c.arrivals = make([]time.Time, 0, s.cfg.MaxBatch)
		c.paths = make([]uint8, s.cfg.MaxBatch)
		c.nsAt = make([]*namespace, s.cfg.MaxBatch)
	}
	s.conns[c] = struct{}{}
	s.connWG.Add(2)
	s.mu.Unlock()
	go c.readLoop()
	go c.serveLoop()
}

// refuse writes one terminal status frame (best effort, under a short
// deadline) and closes the connection.
func (s *Server) refuse(nc net.Conn, status wire.Status, msg string) {
	nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
	frame := wire.AppendResponse(nil, &wire.Response{Op: wire.OpPing, Status: status, Msg: msg})
	nc.Write(frame)
	nc.Close()
}

// NumConns reports the connections currently being served.
func (s *Server) NumConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Shutdown drains the server: listeners stop accepting, every
// connection's reader stops taking new frames, queued requests finish
// executing and their responses are flushed, and the backend's removal
// buffers are quiesced. Connections still open when ctx expires are
// force-closed (their unflushed responses are lost, as a crash would
// lose them); the context's error is returned in that case. Shutdown
// is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	for ln := range s.lns {
		ln.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.startDrain()
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.be.Quiesce()
	if s.reg != nil {
		s.reg.CloseAll()
	}
	return err
}

// queuedReq is a decoded request plus its arrival stamp (zero unless
// the connection tracks timings).
type queuedReq struct {
	req wire.Request
	at  time.Time
}

// conn is one served connection.
type conn struct {
	srv *Server
	nc  net.Conn
	bw  *bufio.Writer

	// reqs carries decoded requests from the reader to the executor;
	// the reader closes it when the connection's read side is done.
	reqs chan queuedReq

	// Executor scratch, reused across drain cycles.
	resps  []wire.Response
	enc    []byte
	pairs  []Pair
	kvs    []wire.KV
	batch  []wire.Request
	bpairs []BPair
	bkvs   []wire.BKV
	bval   []byte

	// Observability scratch (see metrics.go), allocated once when track
	// is set: per-request arrival stamps, execution-path markers, and
	// namespace annotations, all indexed by batch position.
	track        bool
	arrivals     []time.Time
	paths        []uint8
	nsAt         []*namespace
	abortsBefore uint64

	// attached caches which namespaces this connection has been
	// admitted to (the per-namespace connection quota), so the quota
	// check is a conn-local map hit after the first request.
	attached map[*namespace]struct{}

	drained atomic.Bool
}

func (c *conn) logf(format string, args ...any) {
	if c.srv.cfg.Logf != nil {
		c.srv.cfg.Logf(format, args...)
	}
}

// startDrain stops the reader by failing its next blocking read; frames
// already buffered or queued still execute.
func (c *conn) startDrain() {
	c.drained.Store(true)
	c.nc.SetReadDeadline(time.Unix(1, 0))
}

// readLoop decodes frames into the request queue. Any read or decode
// failure ends the stream: after a framing violation there is no next
// frame boundary, so the connection winds down (the executor still
// completes everything already queued).
func (c *conn) readLoop() {
	defer c.srv.connWG.Done()
	defer close(c.reqs)
	br := bufio.NewReaderSize(c.nc, 64<<10)
	fr := wire.NewFrameReader(br, wire.MaxRequestPayload)
	for {
		if t := c.srv.cfg.IdleTimeout; t > 0 && !c.drained.Load() {
			c.nc.SetReadDeadline(time.Now().Add(t))
			// startDrain may have set its expired deadline between the
			// check and the set above; re-checking after the set means
			// one side always observes the other, so the drain deadline
			// cannot be lost under an idle re-arm.
			if c.drained.Load() {
				c.nc.SetReadDeadline(time.Unix(1, 0))
			}
		}
		payload, err := fr.Next()
		if err != nil {
			if err != io.EOF && !c.drained.Load() {
				c.logf("server: %s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		req, err := wire.ParseRequest(payload)
		if err != nil {
			c.logf("server: %s: %v", c.nc.RemoteAddr(), err)
			return
		}
		q := queuedReq{req: req}
		if c.track {
			q.at = time.Now()
		}
		c.reqs <- q
	}
}

// serveLoop is the executor: it drains the queue in cycles, coalesces,
// executes, and writes responses in request order, flushing once per
// cycle.
func (c *conn) serveLoop() {
	defer c.srv.connWG.Done()
	defer c.teardown()
	for {
		batch, open := c.dequeue()
		if len(batch) > 0 {
			// Arm the slow-client deadline for the whole cycle up front:
			// a response larger than the bufio buffer spills to the
			// socket during encoding, and that write must not run under
			// a stale deadline from a previous cycle (spurious timeout)
			// or no deadline at all (a slow reader could park the
			// executor indefinitely).
			if t := c.srv.cfg.WriteTimeout; t > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(t))
			}
			if tr := c.srv.cfg.Tracer; tr != nil && tr.Enabled() && c.srv.cfg.AbortsFn != nil {
				c.abortsBefore = c.srv.cfg.AbortsFn()
			}
			c.execute(batch)
			if err := c.flush(); err != nil {
				c.logf("server: %s: write: %v", c.nc.RemoteAddr(), err)
				return
			}
			if c.track {
				c.observe(batch)
			}
		}
		if !open {
			return
		}
	}
}

// dequeue blocks for the first pending request, then drains whatever
// else is already queued, up to MaxBatch. open reports whether the
// queue can still produce more.
func (c *conn) dequeue() (batch []wire.Request, open bool) {
	c.batch = c.batch[:0]
	if c.track {
		c.arrivals = c.arrivals[:0]
	}
	q, ok := <-c.reqs
	if !ok {
		return nil, false
	}
	c.push(q)
	for len(c.batch) < c.srv.cfg.MaxBatch {
		select {
		case q, ok := <-c.reqs:
			if !ok {
				return c.batch, false
			}
			c.push(q)
		default:
			return c.batch, true
		}
	}
	return c.batch, true
}

// push appends one queued request to the cycle's batch, keeping the
// timing annotations aligned by position.
func (c *conn) push(q queuedReq) {
	c.batch = append(c.batch, q.req)
	if c.track {
		c.arrivals = append(c.arrivals, q.at)
		i := len(c.batch) - 1
		c.paths[i] = pathStandalone
		c.nsAt[i] = nil
	}
}

// teardown closes the connection and unblocks the reader if it is
// parked on a full queue, discarding what it had left.
func (c *conn) teardown() {
	c.nc.Close()
	for range c.reqs {
	}
	for ns := range c.attached {
		ns.detach(c)
	}
	s := c.srv
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// execute runs one drain cycle's requests in order, coalescing maximal
// runs of transactional ops into single Atomic transactions and
// encoding every response into the write buffer. The two op families
// never share a run: a v1 run executes against the default backend, a
// v2 run against one namespace's backend, and each family boundary ends
// the run.
func (c *conn) execute(batch []wire.Request) {
	i := 0
	for i < len(batch) {
		req := &batch[i]
		switch {
		case transactional(req.Op):
			i = c.execRunV1(batch, i)
		case transactional2(req.Op):
			i = c.execRunV2(batch, i)
		default:
			c.execStandalone(req)
			i++
		}
	}
}

// execRunV1 coalesces and executes one v1 run starting at i, returning
// the index past it.
func (c *conn) execRunV1(batch []wire.Request, i int) int {
	spanning := c.srv.be.Spanning()
	req := &batch[i]
	j := i + 1
	if spanning {
		for j < len(batch) && transactional(batch[j].Op) {
			j++
		}
	} else {
		shard, solo := c.shardOfReq(req)
		if !solo {
			for j < len(batch) && transactional(batch[j].Op) {
				s2, solo2 := c.shardOfReq(&batch[j])
				if solo2 || s2 != shard {
					break
				}
				j++
			}
		}
	}
	if allGets(batch[i:j]) {
		// Reads never join a transaction, so a pure-read run may also
		// absorb the Gets a shard boundary would otherwise have split
		// off into the next run.
		for j < len(batch) && batch[j].Op == wire.OpGet {
			j++
		}
		c.markRun(i, j, pathReads, nil)
		c.prefetchNext(batch, j)
		c.execReads(batch[i:j])
	} else {
		c.markRun(i, j, pathAtomic, nil)
		c.prefetchNext(batch, j)
		c.execAtomic(batch[i:j])
	}
	return j
}

// allGets reports whether every request in the run is a point read.
func allGets(group []wire.Request) bool {
	for i := range group {
		if group[i].Op != wire.OpGet {
			return false
		}
	}
	return true
}

// prefetchAhead bounds how many of the next run's keys are prefetched
// per cycle; enough to cover a typical coalesced run without flooding
// the cache ahead of execution.
const prefetchAhead = 16

// prefetchNext issues index prefetches for the keys of the requests that
// follow the run about to execute, overlapping the next run's descent
// with the current run's work. The pipelined queue presents the next run
// already decoded, so this is a bounded scan and a handful of atomic
// loads per cycle.
func (c *conn) prefetchNext(batch []wire.Request, from int) {
	be := c.srv.be
	n := 0
	for idx := from; idx < len(batch) && n < prefetchAhead; idx++ {
		req := &batch[idx]
		switch req.Op {
		case wire.OpGet, wire.OpInsert, wire.OpPut, wire.OpDel:
			be.Prefetch(req.Key)
			n++
		case wire.OpBatch:
			for si := range req.Steps {
				if n >= prefetchAhead {
					break
				}
				be.Prefetch(req.Steps[si].Key)
				n++
			}
		}
	}
}

// execReads answers a pure-read run without the atomic-txn machinery:
// each Get goes through the backend's direct read path (the map's
// optimistic fast path, with a per-read transactional fallback). Each
// read linearizes on its own between its invocation — the request was
// already queued — and its response, so skipping the shared commit point
// preserves every request's contract.
func (c *conn) execReads(group []wire.Request) {
	be := c.srv.be
	var resp wire.Response
	for idx := range group {
		req := &group[idx]
		resp = wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusOK}
		resp.Val, resp.Ok = be.Get(req.Key)
		c.encodeResponse(&resp)
	}
}

// transactional reports whether op joins coalesced Atomic transactions.
func transactional(op wire.Op) bool {
	switch op {
	case wire.OpGet, wire.OpInsert, wire.OpPut, wire.OpDel, wire.OpBatch:
		return true
	}
	return false
}

// shardOfReq maps a request to its coalescing shard on non-spanning
// backends. solo marks a client batch whose own keys span shards: it
// must execute alone (and will fail with the map's ErrCrossShard).
func (c *conn) shardOfReq(req *wire.Request) (shard int, solo bool) {
	be := c.srv.be
	if req.Op != wire.OpBatch {
		return be.ShardOf(req.Key), false
	}
	if len(req.Steps) == 0 {
		return 0, false // empty batch: executes anywhere, touches nothing
	}
	shard = be.ShardOf(req.Steps[0].Key)
	for _, s := range req.Steps[1:] {
		if be.ShardOf(s.Key) != shard {
			return 0, true
		}
	}
	return shard, false
}

// execAtomic executes a coalesced run as one transaction and encodes
// the responses. Results are buffered per attempt and only encoded
// after the commit, so an aborted attempt leaks nothing.
func (c *conn) execAtomic(group []wire.Request) {
	resps := c.resps[:len(group)]
	err := c.srv.be.Atomic(func(op Batch) error {
		for idx := range group {
			req := &group[idx]
			resp := &resps[idx]
			resp.ID, resp.Op, resp.Status, resp.Msg = req.ID, req.Op, wire.StatusOK, ""
			switch req.Op {
			case wire.OpGet:
				resp.Val, resp.Ok = op.Lookup(req.Key)
			case wire.OpInsert:
				resp.Ok = op.Insert(req.Key, req.Val)
			case wire.OpPut:
				resp.Ok = op.Put(req.Key, req.Val)
			case wire.OpDel:
				resp.Ok = op.Remove(req.Key)
			case wire.OpBatch:
				resp.Steps = resp.Steps[:0]
				for _, s := range req.Steps {
					var sr wire.StepResult
					switch s.Kind {
					case wire.StepInsert:
						sr.Ok = op.Insert(s.Key, s.Val)
					case wire.StepRemove:
						sr.Ok = op.Remove(s.Key)
					case wire.StepLookup:
						sr.Out, sr.Ok = op.Lookup(s.Key)
					}
					resp.Steps = append(resp.Steps, sr)
				}
			}
		}
		return nil
	})
	if err != nil {
		status, msg := statusFor(err)
		for idx := range group {
			req := &group[idx]
			c.encodeResponse(&wire.Response{ID: req.ID, Op: req.Op, Status: status, Msg: msg})
		}
		return
	}
	for idx := range resps {
		c.encodeResponse(&resps[idx])
	}
}

// execStandalone executes a non-coalescable request (Range, Sync,
// Snapshot, Ping, Watermark, Promote, Stats, Resize) and encodes its
// response.
func (c *conn) execStandalone(req *wire.Request) {
	resp := wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusOK}
	switch req.Op {
	case wire.OpRange:
		c.pairs = c.srv.be.Range(req.Key, req.Val, c.pairs[:0])
		pairs := c.pairs
		if req.Max > 0 && len(pairs) > int(req.Max) {
			pairs = pairs[:req.Max]
		}
		if len(pairs) > wire.MaxRangePairs {
			// The response must fit one frame; clients paginate past
			// this (documented on wire.MaxRangePairs).
			pairs = pairs[:wire.MaxRangePairs]
		}
		c.kvs = c.kvs[:0]
		for _, p := range pairs {
			c.kvs = append(c.kvs, wire.KV{Key: p.Key, Val: p.Val})
		}
		resp.Pairs = c.kvs
	case wire.OpSync:
		if err := c.srv.be.Sync(); err != nil {
			resp.Status, resp.Msg = statusFor(err)
		}
	case wire.OpSnapshot:
		if err := c.srv.be.Snapshot(); err != nil {
			resp.Status, resp.Msg = statusFor(err)
		}
	case wire.OpWatermark:
		if w, ok := c.srv.be.(Watermarker); ok {
			resp.Val = int64(w.Watermark())
		} else {
			resp.Status, resp.Msg = wire.StatusErr, "backend has no watermark"
		}
	case wire.OpPromote:
		if p, ok := c.srv.be.(Promoter); ok {
			if err := p.Promote(); err != nil {
				resp.Status, resp.Msg = statusFor(err)
			}
		} else {
			resp.Status, resp.Msg = wire.StatusErr, "backend is not promotable"
		}
	case wire.OpStats:
		if r := c.srv.cfg.Obs; r != nil {
			resp.BVal = r.Render()
		} else {
			resp.Status, resp.Msg = wire.StatusErr, "server has no metrics registry"
		}
	case wire.OpResize:
		if rz, ok := c.srv.be.(Resizer); ok {
			n, err := rz.Resize(int(req.Key))
			if err != nil {
				resp.Status, resp.Msg = statusFor(err)
			} else {
				resp.Val = int64(n)
			}
		} else {
			resp.Status, resp.Msg = wire.StatusErr, "backend is not resizable"
		}
	case wire.OpRange2, wire.OpSync2, wire.OpSnapshot2, wire.OpResize2:
		c.execStandalone2(req, &resp)
	case wire.OpNsCreate, wire.OpNsDrop, wire.OpNsList:
		c.execAdmin(req, &resp)
	case wire.OpPing:
		// empty response
	}
	c.encodeResponse(&resp)
}

// encodeResponse appends one response frame to the buffered writer.
func (c *conn) encodeResponse(resp *wire.Response) {
	c.enc = c.enc[:0]
	c.enc = wire.AppendResponse(c.enc, resp)
	c.bw.Write(c.enc) // bufio keeps the first error; flush reports it
}

// flush pushes the cycle's responses to the client under the
// slow-client deadline.
func (c *conn) flush() error {
	if t := c.srv.cfg.WriteTimeout; t > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(t))
	}
	return c.bw.Flush()
}

// statusFor maps backend errors to wire statuses.
func statusFor(err error) (wire.Status, string) {
	switch {
	case errors.Is(err, skiphash.ErrCrossShard):
		return wire.StatusCrossShard, err.Error()
	case errors.Is(err, skiphash.ErrNotDurable):
		return wire.StatusNotDurable, err.Error()
	case errors.Is(err, skiphash.ErrCorrupt):
		return wire.StatusCorrupt, err.Error()
	case errors.Is(err, ErrReadOnly):
		return wire.StatusReadOnly, err.Error()
	case errors.Is(err, ErrNsNotFound):
		return wire.StatusNsNotFound, err.Error()
	case errors.Is(err, ErrNsExists):
		return wire.StatusNsExists, err.Error()
	default:
		return wire.StatusErr, err.Error()
	}
}

// --- Backends -----------------------------------------------------------

// MapBackend serves an unsharded skip hash.
type MapBackend struct{ m *skiphash.Map[int64, int64] }

// NewMapBackend wraps m.
func NewMapBackend(m *skiphash.Map[int64, int64]) *MapBackend { return &MapBackend{m: m} }

// Atomic implements Backend.
func (b *MapBackend) Atomic(fn func(op Batch) error) error {
	return b.m.Atomic(func(op *skiphash.Txn[int64, int64]) error { return fn(op) })
}

// Get implements Backend.
func (b *MapBackend) Get(k int64) (int64, bool) { return b.m.Lookup(k) }

// Prefetch implements Backend.
func (b *MapBackend) Prefetch(k int64) { b.m.Prefetch(k) }

// Range implements Backend.
func (b *MapBackend) Range(l, r int64, out []Pair) []Pair { return b.m.Range(l, r, out) }

// ShardOf implements Backend.
func (b *MapBackend) ShardOf(int64) int { return 0 }

// Spanning implements Backend.
func (b *MapBackend) Spanning() bool { return true }

// Sync implements Backend.
func (b *MapBackend) Sync() error { return b.m.Sync() }

// Snapshot implements Backend.
func (b *MapBackend) Snapshot() error { return b.m.Snapshot() }

// Quiesce implements Backend.
func (b *MapBackend) Quiesce() { b.m.Quiesce() }

// ShardedBackend serves a sharded skip hash.
type ShardedBackend struct {
	s *skiphash.Sharded[int64, int64]
}

// NewShardedBackend wraps s.
func NewShardedBackend(s *skiphash.Sharded[int64, int64]) *ShardedBackend {
	return &ShardedBackend{s: s}
}

// Atomic implements Backend.
func (b *ShardedBackend) Atomic(fn func(op Batch) error) error {
	return b.s.Atomic(func(op *skiphash.ShardedTxn[int64, int64]) error { return fn(op) })
}

// Get implements Backend.
func (b *ShardedBackend) Get(k int64) (int64, bool) { return b.s.Lookup(k) }

// Prefetch implements Backend.
func (b *ShardedBackend) Prefetch(k int64) { b.s.Prefetch(k) }

// Range implements Backend.
func (b *ShardedBackend) Range(l, r int64, out []Pair) []Pair { return b.s.Range(l, r, out) }

// ShardOf implements Backend.
func (b *ShardedBackend) ShardOf(k int64) int { return b.s.ShardOf(k) }

// Spanning implements Backend.
func (b *ShardedBackend) Spanning() bool { return !b.s.Isolated() }

// Resize implements Resizer: it live-migrates the map to n shards.
func (b *ShardedBackend) Resize(n int) (int, error) { return b.s.Resize(n) }

// Sync implements Backend.
func (b *ShardedBackend) Sync() error { return b.s.Sync() }

// Snapshot implements Backend.
func (b *ShardedBackend) Snapshot() error { return b.s.Snapshot() }

// Quiesce implements Backend.
func (b *ShardedBackend) Quiesce() { b.s.Quiesce() }
