package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/skiphash"
	"repro/skiphash/client"
)

// startServer serves a fresh sharded map on a loopback TCP listener and
// returns the address plus a cleanup tearing everything down.
func startServer(t *testing.T, mapCfg skiphash.Config, srvCfg Config) (*skiphash.Sharded[int64, int64], *Server, string) {
	t.Helper()
	m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, mapCfg)
	srv := New(NewShardedBackend(m), srvCfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
		m.Close()
	})
	return m, srv, ln.Addr().String()
}

func dialT(t *testing.T, addr string, opts client.Options) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, opts)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServeBasicOps(t *testing.T) {
	_, _, addr := startServer(t, skiphash.Config{Shards: 4}, Config{})
	c := dialT(t, addr, client.Options{Conns: 2})

	if ok, err := c.Insert(1, 10); err != nil || !ok {
		t.Fatalf("Insert(1) = %v, %v", ok, err)
	}
	if ok, err := c.Insert(1, 11); err != nil || ok {
		t.Fatalf("duplicate Insert(1) = %v, %v", ok, err)
	}
	if v, ok, err := c.Get(1); err != nil || !ok || v != 10 {
		t.Fatalf("Get(1) = %d, %v, %v", v, ok, err)
	}
	if replaced, err := c.Put(1, 12); err != nil || !replaced {
		t.Fatalf("Put(1) = %v, %v", replaced, err)
	}
	if v, ok, err := c.Get(1); err != nil || !ok || v != 12 {
		t.Fatalf("Get(1) after Put = %d, %v, %v", v, ok, err)
	}
	for k := int64(2); k <= 9; k++ {
		if _, err := c.Insert(k, k*10); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	pairs, err := c.Range(0, 100, 0)
	if err != nil || len(pairs) != 9 {
		t.Fatalf("Range = %v (%d pairs), %v", pairs, len(pairs), err)
	}
	for i, p := range pairs {
		if p.Key != int64(i+1) {
			t.Fatalf("range pair %d out of order: %+v", i, p)
		}
	}
	if pairs, err = c.Range(0, 100, 3); err != nil || len(pairs) != 3 {
		t.Fatalf("bounded Range = %d pairs, %v", len(pairs), err)
	}
	if ok, err := c.Remove(5); err != nil || !ok {
		t.Fatalf("Remove(5) = %v, %v", ok, err)
	}
	if _, ok, err := c.Get(5); err != nil || ok {
		t.Fatalf("Get(5) after Remove = %v, %v", ok, err)
	}
	results, err := c.Atomic([]client.Step{
		{Kind: client.StepInsert, Key: 100, Val: 1000},
		{Kind: client.StepRemove, Key: 2},
		{Kind: client.StepLookup, Key: 3},
	})
	if err != nil || len(results) != 3 {
		t.Fatalf("Atomic = %v, %v", results, err)
	}
	if !results[0].Ok || !results[1].Ok || !results[2].Ok || results[2].Out != 30 {
		t.Fatalf("Atomic results = %+v", results)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.Sync(); !errors.Is(err, client.ErrNotDurable) {
		t.Fatalf("Sync on non-durable server = %v, want ErrNotDurable", err)
	}
	if err := c.Snapshot(); !errors.Is(err, client.ErrNotDurable) {
		t.Fatalf("Snapshot on non-durable server = %v, want ErrNotDurable", err)
	}
}

func TestServeUnixSocket(t *testing.T) {
	m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 2})
	defer m.Close()
	srv := New(NewShardedBackend(m), Config{})
	path := t.TempDir() + "/skiphashd.sock"
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatalf("listen unix: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	c := dialT(t, path, client.Options{})
	if ok, err := c.Insert(7, 70); err != nil || !ok {
		t.Fatalf("Insert over unix = %v, %v", ok, err)
	}
	if v, ok, err := c.Get(7); err != nil || !ok || v != 70 {
		t.Fatalf("Get over unix = %d, %v, %v", v, ok, err)
	}
}

func TestCrossShardBatchIsolated(t *testing.T) {
	m, _, addr := startServer(t, skiphash.Config{Shards: 4, IsolatedShards: true}, Config{})
	c := dialT(t, addr, client.Options{})

	// Find two keys on different shards.
	k1 := int64(1)
	k2 := int64(-1)
	for k := int64(2); k < 1000; k++ {
		if m.ShardOf(k) != m.ShardOf(k1) {
			k2 = k
			break
		}
	}
	if k2 < 0 {
		t.Fatal("no cross-shard key pair found")
	}
	_, err := c.Atomic([]client.Step{
		{Kind: client.StepInsert, Key: k1, Val: 1},
		{Kind: client.StepInsert, Key: k2, Val: 2},
	})
	if !errors.Is(err, client.ErrCrossShard) {
		t.Fatalf("cross-shard batch = %v, want ErrCrossShard", err)
	}
	if _, ok, _ := c.Get(k1); ok {
		t.Fatal("cross-shard batch left a partial trace")
	}
	// Same-shard batches still work.
	var k3 int64 = -1
	for k := k1 + 1; k < 1000; k++ {
		if m.ShardOf(k) == m.ShardOf(k1) {
			k3 = k
			break
		}
	}
	results, err := c.Atomic([]client.Step{
		{Kind: client.StepInsert, Key: k1, Val: 1},
		{Kind: client.StepInsert, Key: k3, Val: 3},
	})
	if err != nil || !results[0].Ok || !results[1].Ok {
		t.Fatalf("same-shard batch = %+v, %v", results, err)
	}
}

// rawDial opens a bare TCP connection for protocol-violation tests.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

// expectClosed asserts the server closes the connection (EOF or reset)
// without the client having to send anything more.
func expectClosed(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		_, err := nc.Read(buf)
		if err == nil {
			continue // drain whatever was in flight
		}
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || isReset(err) {
			return
		}
		t.Fatalf("connection not closed by server: %v", err)
	}
}

func isReset(err error) bool {
	var ne *net.OpError
	return errors.As(err, &ne)
}

func TestMalformedFrameTearsConnectionDown(t *testing.T) {
	_, _, addr := startServer(t, skiphash.Config{Shards: 1}, Config{})

	t.Run("BadChecksum", func(t *testing.T) {
		nc := rawDial(t, addr)
		frame := wire.AppendRequest(nil, &wire.Request{ID: 1, Op: wire.OpGet, Key: 1})
		frame[len(frame)-1] ^= 0xff
		nc.Write(frame)
		expectClosed(t, nc)
	})

	t.Run("OversizedFrame", func(t *testing.T) {
		nc := rawDial(t, addr)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:4], wire.MaxRequestPayload+1)
		nc.Write(hdr[:])
		expectClosed(t, nc)
	})

	t.Run("UnknownOp", func(t *testing.T) {
		nc := rawDial(t, addr)
		frame := wire.AppendRequest(nil, &wire.Request{ID: 1, Op: wire.OpPing})
		// Rewrite the op byte and fix the checksum so only parsing fails.
		payload := frame[8:]
		payload[8] = 0xEE
		binary.LittleEndian.PutUint32(frame[4:8], crc32Of(payload))
		nc.Write(frame)
		expectClosed(t, nc)
	})

	t.Run("TruncatedFrameThenDisconnect", func(t *testing.T) {
		// A client dying mid-frame must not wedge or kill the server.
		nc := rawDial(t, addr)
		frame := wire.AppendRequest(nil, &wire.Request{ID: 1, Op: wire.OpInsert, Key: 1, Val: 2})
		nc.Write(frame[:len(frame)-3])
		nc.Close()
	})

	// The server must still serve new connections afterwards.
	c := dialT(t, addr, client.Options{})
	if err := c.Ping(); err != nil {
		t.Fatalf("server unusable after protocol violations: %v", err)
	}
}

// crc32Of mirrors the wire checksum for hand-built test frames.
func crc32Of(payload []byte) uint32 {
	return crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
}

func TestMidRequestDisconnectDuringPipelining(t *testing.T) {
	m, _, addr := startServer(t, skiphash.Config{Shards: 2}, Config{})
	nc := rawDial(t, addr)
	// Pipeline a burst of inserts, then die mid-frame on the last one.
	var stream []byte
	for i := int64(1); i <= 50; i++ {
		stream = wire.AppendRequest(stream, &wire.Request{ID: uint64(i), Op: wire.OpInsert, Key: i, Val: i})
	}
	last := wire.AppendRequest(nil, &wire.Request{ID: 51, Op: wire.OpInsert, Key: 51, Val: 51})
	stream = append(stream, last[:len(last)-5]...)
	nc.Write(stream)
	nc.Close()
	// The complete requests must have executed; the torn one must not
	// have. Poll: execution is asynchronous with the disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Lookup(50); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pipelined requests before the disconnect were not executed")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := m.Lookup(51); ok {
		t.Fatal("torn trailing request executed")
	}
}

func TestConnectionLimitRejection(t *testing.T) {
	_, srv, addr := startServer(t, skiphash.Config{Shards: 1}, Config{MaxConns: 2})

	c1 := dialT(t, addr, client.Options{})
	c2 := dialT(t, addr, client.Options{})
	if err := c1.Ping(); err != nil {
		t.Fatalf("conn 1: %v", err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatalf("conn 2: %v", err)
	}
	// The third connection must be refused with StatusBusy.
	c3, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial 3: %v", err)
	}
	defer c3.Close()
	if err := c3.Ping(); !errors.Is(err, client.ErrServerBusy) {
		t.Fatalf("over-limit ping = %v, want ErrServerBusy", err)
	}
	// Closing one admitted connection frees a slot (poll: deregistration
	// is asynchronous with the close).
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c4, err := client.Dial(addr, client.Options{})
		if err == nil {
			err = c4.Ping()
			c4.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot not freed after close: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := srv.NumConns(); n > 2 {
		t.Fatalf("NumConns = %d, want <= 2", n)
	}
}

func TestPipelinedBatchAtomicityUnderConcurrentWriters(t *testing.T) {
	m, _, addr := startServer(t, skiphash.Config{Shards: 4}, Config{MaxBatch: 32})

	// Writers pipeline atomic batches that keep k and k+1000 equal;
	// concurrently, in-process readers assert they never observe a
	// half-applied batch. Batches ride the same coalescer as the
	// surrounding pipelined point ops.
	const (
		writers = 4
		keys    = 32
		rounds  = 100
	)
	var stop atomic.Bool
	var violations atomic.Int64
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for !stop.Load() {
				_ = m.Atomic(func(op *skiphash.ShardedTxn[int64, int64]) error {
					for k := int64(0); k < keys; k++ {
						v1, ok1 := op.Lookup(k)
						v2, ok2 := op.Lookup(k + 1000)
						if ok1 != ok2 || (ok1 && v1 != v2) {
							violations.Add(1)
						}
					}
					return nil
				})
				// Yield between audits: on a single-P runtime a spinning
				// transaction loop would starve the server goroutines for
				// whole preemption quanta.
				runtime.Gosched()
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{})
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			defer c.Close()
			cn := c.Conn(0)
			for i := 0; i < rounds; i++ {
				k := int64((w*rounds + i) % keys)
				v := int64(w)<<32 | int64(i)
				// Pipeline noise around the batch so coalescing happens.
				calls := make([]*client.Call, 0, 4)
				if call, err := cn.Start(&wire.Request{Op: wire.OpGet, Key: k}); err == nil {
					calls = append(calls, call)
				}
				if call, err := cn.Start(&wire.Request{Op: wire.OpBatch, Steps: []wire.Step{
					{Kind: wire.StepRemove, Key: k},
					{Kind: wire.StepRemove, Key: k + 1000},
					{Kind: wire.StepInsert, Key: k, Val: v},
					{Kind: wire.StepInsert, Key: k + 1000, Val: v},
				}}); err == nil {
					calls = append(calls, call)
				}
				if call, err := cn.Start(&wire.Request{Op: wire.OpGet, Key: k + 1000}); err == nil {
					calls = append(calls, call)
				}
				if err := cn.Flush(); err != nil {
					t.Errorf("writer %d flush: %v", w, err)
					return
				}
				for _, call := range calls {
					if _, err := call.Wait(); err != nil {
						t.Errorf("writer %d wait: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	rg.Wait()
	if n := violations.Load(); n > 0 {
		t.Fatalf("%d atomicity violations observed", n)
	}
}

func TestGracefulDrainCompletesInflightRequests(t *testing.T) {
	for round := 0; round < 5; round++ {
		m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 2})
		srv := New(NewShardedBackend(m), Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		go srv.Serve(ln)

		c, err := client.Dial(ln.Addr().String(), client.Options{})
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		cn := c.Conn(0)
		// Pipeline a burst, then race Shutdown against it.
		const n = 400
		calls := make([]*client.Call, 0, n)
		for i := int64(0); i < n; i++ {
			call, err := cn.Start(&wire.Request{Op: wire.OpInsert, Key: i, Val: i})
			if err != nil {
				t.Fatalf("start: %v", err)
			}
			calls = append(calls, call)
		}
		if err := cn.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = srv.Shutdown(ctx)
		cancel()
		if err != nil {
			t.Fatalf("round %d: shutdown: %v", round, err)
		}
		// Every request the server accepted must have been answered; an
		// unanswered tail is only legal if the conn died, which Wait
		// surfaces as ErrConnClosed. What cannot happen: an acknowledged
		// insert missing from the map, or a map entry nobody acknowledged
		// ... the drain answered everything it executed.
		acked := 0
		for i, call := range calls {
			resp, werr := call.Wait()
			if werr != nil {
				if errors.Is(werr, client.ErrConnClosed) {
					continue
				}
				t.Fatalf("round %d: call %d: %v", round, i, werr)
			}
			if !resp.Ok {
				t.Fatalf("round %d: insert %d not ok", round, i)
			}
			acked++
			if _, ok := m.Lookup(int64(i)); !ok {
				t.Fatalf("round %d: acknowledged insert %d missing after drain", round, i)
			}
		}
		// The flush returned before Shutdown began, so the server's
		// reader had the whole burst available: a graceful drain should
		// answer all of it in practice. Tolerate nothing less than full
		// completion when the connection survived.
		if acked != n && !errors.Is(cnErr(cn), client.ErrConnClosed) {
			t.Fatalf("round %d: only %d/%d pipelined requests answered by graceful drain", round, acked, n)
		}
		c.Close()
		m.Close()
	}
}

// cnErr peeks at the connection's sticky error through a probe call.
func cnErr(cn *client.Conn) error {
	_, _, err := cn.Get(0)
	return err
}

func TestShutdownRefusesNewConnections(t *testing.T) {
	m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 1})
	defer m.Close()
	srv := New(NewShardedBackend(m), Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := client.Dial(ln.Addr().String(), client.Options{}); err == nil {
		t.Fatal("dial after shutdown succeeded")
	}
}

func TestIdleTimeout(t *testing.T) {
	_, srv, addr := startServer(t, skiphash.Config{Shards: 1},
		Config{IdleTimeout: 50 * time.Millisecond})
	c := dialT(t, addr, client.Options{})
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.NumConns() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection not reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("ping on reaped connection succeeded")
	}
}

func TestServeUnshardedBackend(t *testing.T) {
	m := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})
	defer m.Close()
	srv := New(NewMapBackend(m), Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	c := dialT(t, ln.Addr().String(), client.Options{})
	if ok, err := c.Insert(3, 33); err != nil || !ok {
		t.Fatalf("Insert = %v, %v", ok, err)
	}
	results, err := c.Atomic([]client.Step{
		{Kind: client.StepLookup, Key: 3},
		{Kind: client.StepInsert, Key: 4, Val: 44},
	})
	if err != nil || !results[0].Ok || results[0].Out != 33 || !results[1].Ok {
		t.Fatalf("Atomic = %+v, %v", results, err)
	}
}

func TestDurableServedMap(t *testing.T) {
	dir := t.TempDir()
	open := func() *skiphash.Sharded[int64, int64] {
		m, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{
			Shards:     2,
			Durability: &skiphash.Durability{Dir: dir, Fsync: skiphash.FsyncNone},
		}, skiphash.Int64Codec(), skiphash.Int64Codec())
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return m
	}
	m := open()
	srv := New(NewShardedBackend(m), Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	c, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for k := int64(0); k < 100; k++ {
		if _, err := c.Insert(k, k*3); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatalf("Sync over the wire: %v", err)
	}
	if err := c.Snapshot(); err != nil {
		t.Fatalf("Snapshot over the wire: %v", err)
	}
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	srv.Shutdown(ctx)
	cancel()
	m.Close()

	m2 := open()
	defer m2.Close()
	for k := int64(0); k < 100; k++ {
		if v, ok := m2.Lookup(k); !ok || v != k*3 {
			t.Fatalf("recovered Lookup(%d) = %d, %v", k, v, ok)
		}
	}
}

func TestBusyFrameFormat(t *testing.T) {
	// The refusal frame must parse as a StatusBusy response with id 0.
	_, _, addr := startServer(t, skiphash.Config{Shards: 1}, Config{MaxConns: 1})
	hold := dialT(t, addr, client.Options{})
	if err := hold.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	nc := rawDial(t, addr)
	fr := wire.NewFrameReader(nc, wire.MaxResponsePayload)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := fr.Next()
	if err != nil {
		t.Fatalf("read refusal frame: %v", err)
	}
	resp, err := wire.ParseResponse(payload)
	if err != nil {
		t.Fatalf("parse refusal frame: %v", err)
	}
	if resp.ID != 0 || resp.Status != wire.StatusBusy {
		t.Fatalf("refusal frame = %+v", resp)
	}
	expectClosed(t, nc)
}

func TestManyConnsConcurrent(t *testing.T) {
	m, _, addr := startServer(t, skiphash.Config{Shards: 4}, Config{})
	const conns = 8
	const opsPer = 300
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := int64(0); j < opsPer; j++ {
				k := base*opsPer + j
				if _, err := c.Insert(k, k); err != nil {
					errs <- fmt.Errorf("insert %d: %w", k, err)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := m.SizeSlow(); got != conns*opsPer {
		t.Fatalf("map size = %d, want %d", got, conns*opsPer)
	}
}
