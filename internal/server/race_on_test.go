//go:build race

package server

// raceEnabled reports whether the race detector instruments this test
// binary; its shadow-memory bookkeeping allocates, so allocation-count
// assertions are meaningless under it.
const raceEnabled = true
