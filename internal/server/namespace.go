package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/skiphash"
)

// BPair is a byte-namespace key/value pair. Byte-string keys and values
// cross the wire as []byte but are stored as immutable strings (the
// map's comparable key type); the conversion boundary is the executor.
type BPair = skiphash.Pair[string, string]

// Namespace-admin errors, surfaced over the wire as StatusNsNotFound /
// StatusNsExists and matched by the client's typed sentinels.
var (
	ErrNsNotFound = errors.New("server: namespace not found")
	ErrNsExists   = errors.New("server: namespace already exists")
)

// BBatch is the transactional view a BytesBackend hands the executor
// inside Atomic, mirroring Batch for byte-string namespaces.
type BBatch interface {
	Lookup(k string) (string, bool)
	Insert(k, v string) bool
	Remove(k string) bool
	Put(k, v string) bool
}

// BytesBackend is the byte-string counterpart of Backend: the map a
// named namespace executes against. Close releases the backend (a
// durable one flushes and fsyncs its WAL).
type BytesBackend interface {
	Atomic(fn func(op BBatch) error) error
	Get(k string) (string, bool)
	Prefetch(k string)
	// Range collects [l, r] in lexicographic order, appending to out.
	Range(l, r string, out []BPair) []BPair
	// AscendFrom visits pairs with key >= from in ascending order until
	// fn returns false — the upper-unbounded Range2 path.
	AscendFrom(from string, fn func(k, v string) bool)
	ShardOf(k string) int
	Spanning() bool
	Sync() error
	Snapshot() error
	Quiesce()
	Close()
}

// StringBackend serves a sharded string-keyed skip hash as a namespace
// backend.
type StringBackend struct {
	s *skiphash.Sharded[string, string]
}

// NewStringBackend wraps s.
func NewStringBackend(s *skiphash.Sharded[string, string]) *StringBackend {
	return &StringBackend{s: s}
}

// Atomic implements BytesBackend.
func (b *StringBackend) Atomic(fn func(op BBatch) error) error {
	return b.s.Atomic(func(op *skiphash.ShardedTxn[string, string]) error { return fn(op) })
}

// Get implements BytesBackend.
func (b *StringBackend) Get(k string) (string, bool) { return b.s.Lookup(k) }

// Prefetch implements BytesBackend.
func (b *StringBackend) Prefetch(k string) { b.s.Prefetch(k) }

// Range implements BytesBackend.
func (b *StringBackend) Range(l, r string, out []BPair) []BPair { return b.s.Range(l, r, out) }

// AscendFrom implements BytesBackend.
func (b *StringBackend) AscendFrom(from string, fn func(k, v string) bool) {
	b.s.AscendFrom(from, fn)
}

// ShardOf implements BytesBackend.
func (b *StringBackend) ShardOf(k string) int { return b.s.ShardOf(k) }

// Spanning implements BytesBackend.
func (b *StringBackend) Spanning() bool { return !b.s.Isolated() }

// Resize implements Resizer: it live-migrates the namespace's map to n
// shards.
func (b *StringBackend) Resize(n int) (int, error) { return b.s.Resize(n) }

// Sync implements BytesBackend.
func (b *StringBackend) Sync() error { return b.s.Sync() }

// Snapshot implements BytesBackend.
func (b *StringBackend) Snapshot() error { return b.s.Snapshot() }

// Quiesce implements BytesBackend.
func (b *StringBackend) Quiesce() { b.s.Quiesce() }

// Close implements BytesBackend.
func (b *StringBackend) Close() { b.s.Close() }

// RegistryConfig tunes a namespace registry.
type RegistryConfig struct {
	// Root is the directory under which runtime-created durable
	// namespaces live, one ns-<name> subdirectory each; NewRegistry
	// reopens every namespace already present there. Empty refuses
	// durable NsCreate (and performs no discovery).
	Root string
	// Map is the base map configuration for every namespace backend
	// (shards, isolation, maintenance; Durability is set per namespace).
	Map skiphash.Config
	// Durability is the template for durable namespaces: Dir is
	// overridden per namespace and Fsync supplies the NsFsyncDefault
	// policy; the other knobs apply as-is.
	Durability skiphash.Durability
	// MaxConns bounds how many connections may concurrently use one
	// namespace (0 = unlimited). A request from a connection over the
	// quota is answered with StatusBusy — per request, not by tearing
	// the connection down, since the same connection may be serving
	// other namespaces within quota.
	MaxConns int
	// MaxBatch bounds how many pipelined requests one namespace's
	// coalesced transaction may absorb (0 = the server's MaxBatch).
	MaxBatch int
	// Obs, when set, holds each namespace's request-latency histogram
	// (skiphash_server_request_seconds{ns="<name>"}): registered at
	// create, unregistered at drop, so the exposition's series track the
	// namespace lifecycle. Use the same registry as the server's
	// Config.Obs so the default namespace's series sits alongside.
	Obs *obs.Registry
}

// Registry owns a server's named namespaces: creation, lookup by the
// wire's namespace ids, dropping, and shutdown. The default namespace
// (id 0, the server's v1 int64 Backend) is not registered here — it is
// the Server's own backend and cannot be dropped.
type Registry struct {
	cfg RegistryConfig

	mu     sync.RWMutex
	byID   map[uint32]*namespace
	byName map[string]*namespace
	nextID uint32
}

// namespace is one named map being served. Executor runs hold mu.RLock
// for their whole run; Drop takes mu.Lock, so it waits out in-flight
// runs before the backend is closed and the directory deleted.
type namespace struct {
	id       uint32
	name     string
	durable  bool
	dir      string // "" for in-memory namespaces
	be       BytesBackend
	maxConns int
	maxBatch int

	mu      sync.RWMutex
	dropped bool

	connMu sync.Mutex
	conns  map[*conn]struct{}

	// reqLatency is this namespace's request-latency histogram; nil
	// without RegistryConfig.Obs.
	reqLatency *obs.Histogram
}

// attach admits c to the namespace's connection quota; false answers
// the request with StatusBusy.
func (ns *namespace) attach(c *conn) bool {
	ns.connMu.Lock()
	defer ns.connMu.Unlock()
	if _, ok := ns.conns[c]; ok {
		return true
	}
	if ns.maxConns > 0 && len(ns.conns) >= ns.maxConns {
		return false
	}
	ns.conns[c] = struct{}{}
	return true
}

func (ns *namespace) detach(c *conn) {
	ns.connMu.Lock()
	delete(ns.conns, c)
	ns.connMu.Unlock()
}

// fsyncMetaFile records a durable namespace's fsync-policy selector (the
// wire.NsFsync* byte) so a reopen restores the policy it was created
// with rather than the registry default of the day.
const fsyncMetaFile = "nsfsync"

// NewRegistry creates a registry and, when cfg.Root is set, reopens
// every durable namespace already on disk (ns-<name> subdirectories, in
// name order — namespace ids are assigned per process lifetime and are
// not stable across restarts; clients resolve names via NsList or
// NsCreate).
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	r := &Registry{
		cfg:    cfg,
		byID:   make(map[uint32]*namespace),
		byName: make(map[string]*namespace),
		nextID: 1,
	}
	if cfg.Root == "" {
		return r, nil
	}
	if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
		return nil, err
	}
	dirs, err := filepath.Glob(filepath.Join(cfg.Root, "ns-*"))
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		name := strings.TrimPrefix(filepath.Base(dir), "ns-")
		if err := checkNsName(name); err != nil {
			r.CloseAll()
			return nil, fmt.Errorf("server: namespace dir %s: %w", dir, err)
		}
		fsync := wire.NsFsyncDefault
		if raw, err := os.ReadFile(filepath.Join(dir, fsyncMetaFile)); err == nil {
			if v, err := strconv.Atoi(strings.TrimSpace(string(raw))); err == nil && v <= int(wire.NsFsyncAlways) {
				fsync = uint8(v)
			}
		}
		if _, err := r.CreateAt(name, dir, fsync); err != nil {
			r.CloseAll()
			return nil, fmt.Errorf("server: reopen namespace %q: %w", name, err)
		}
	}
	return r, nil
}

// checkNsName enforces the server's namespace-name policy. The wire
// format permits any bytes up to MaxNsName; the server restricts names
// to filesystem-safe [A-Za-z0-9._-] (so a name can be a directory name)
// and reserves "default" for namespace 0.
func checkNsName(name string) error {
	if name == "" || len(name) > wire.MaxNsName {
		return fmt.Errorf("namespace name must be 1..%d bytes", wire.MaxNsName)
	}
	if name == "default" {
		return errors.New(`namespace name "default" is reserved for the v1 map`)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("namespace name %q: byte %d is not in [A-Za-z0-9._-]", name, i)
		}
	}
	if name[0] == '.' {
		return fmt.Errorf("namespace name %q may not start with '.'", name)
	}
	return nil
}

// fsyncPolicy maps a wire fsync selector onto the registry's durability
// template.
func (r *Registry) fsyncPolicy(sel uint8) (skiphash.FsyncPolicy, error) {
	switch sel {
	case wire.NsFsyncDefault:
		return r.cfg.Durability.Fsync, nil
	case wire.NsFsyncNone:
		return skiphash.FsyncNone, nil
	case wire.NsFsyncInterval:
		return skiphash.FsyncInterval, nil
	case wire.NsFsyncAlways:
		return skiphash.FsyncAlways, nil
	default:
		return 0, fmt.Errorf("server: unknown fsync policy %d", sel)
	}
}

// Create makes a new namespace: in-memory, or durable under
// Root/ns-<name>. It returns ErrNsExists for a taken name. The create
// holds the registry lock across a durable namespace's recovery, so
// lookups (and with them all v2 traffic) stall for its duration —
// acceptable for an admin operation.
func (r *Registry) Create(name string, durable bool, fsync uint8) (*namespace, error) {
	dir := ""
	if durable {
		if r.cfg.Root == "" {
			return nil, errors.New("server: registry has no root directory; durable namespaces unavailable")
		}
		if err := checkNsName(name); err != nil {
			return nil, err
		}
		dir = filepath.Join(r.cfg.Root, "ns-"+name)
	}
	return r.create(name, dir, fsync)
}

// CreateAt makes (or reopens) a durable namespace at an explicit
// directory — the daemon's -ns flag path. If the name already exists
// with the same directory, the existing namespace is returned.
func (r *Registry) CreateAt(name, dir string, fsync uint8) (*namespace, error) {
	r.mu.RLock()
	existing := r.byName[name]
	r.mu.RUnlock()
	if existing != nil {
		if existing.dir == dir {
			return existing, nil
		}
		return nil, fmt.Errorf("%w: %q is open at %s", ErrNsExists, name, existing.dir)
	}
	return r.create(name, dir, fsync)
}

func (r *Registry) create(name, dir string, fsync uint8) (*namespace, error) {
	if err := checkNsName(name); err != nil {
		return nil, err
	}
	pol, err := r.fsyncPolicy(fsync)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrNsExists, name)
	}
	mapCfg := r.cfg.Map
	mapCfg.Durability = nil
	if dir != "" {
		dur := r.cfg.Durability
		dur.Dir = dir
		dur.Fsync = pol
		mapCfg.Durability = &dur
	}
	s, err := skiphash.OpenSharded[string, string](skiphash.StringLess, skiphash.HashString, mapCfg, skiphash.StringCodec(), skiphash.StringCodec())
	if err != nil {
		return nil, err
	}
	if dir != "" {
		// Best effort: the selector is advisory metadata for reopen.
		os.WriteFile(filepath.Join(dir, fsyncMetaFile), []byte(strconv.Itoa(int(fsync))+"\n"), 0o644)
	}
	ns := &namespace{
		id:       r.nextID,
		name:     name,
		durable:  dir != "",
		dir:      dir,
		be:       NewStringBackend(s),
		maxConns: r.cfg.MaxConns,
		maxBatch: r.cfg.MaxBatch,
		conns:    make(map[*conn]struct{}),
	}
	if r.cfg.Obs != nil {
		ns.reqLatency = r.cfg.Obs.Histogram(reqLatencyName, reqLatencyHelp,
			obs.LatencyBounds, 1e-9, obs.Label{Key: "ns", Value: name})
		r.cfg.Obs.GaugeFunc(nsShardsName, nsShardsHelp,
			func() float64 { return float64(s.Shards()) },
			obs.Label{Key: "ns", Value: name})
	}
	r.nextID++
	r.byID[ns.id] = ns
	r.byName[name] = ns
	return ns, nil
}

// Drop unregisters a namespace, waits out its in-flight executor runs,
// closes its backend, and — for a durable namespace — deletes its
// directory. Requests racing the drop answer StatusNsNotFound.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	ns, ok := r.byName[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNsNotFound, name)
	}
	delete(r.byName, name)
	delete(r.byID, ns.id)
	r.mu.Unlock()
	ns.mu.Lock()
	ns.dropped = true
	ns.mu.Unlock()
	if r.cfg.Obs != nil {
		r.cfg.Obs.Unregister(reqLatencyName, obs.Label{Key: "ns", Value: ns.name})
		r.cfg.Obs.Unregister(nsShardsName, obs.Label{Key: "ns", Value: ns.name})
	}
	ns.be.Close()
	if ns.dir != "" {
		return os.RemoveAll(ns.dir)
	}
	return nil
}

// lookup resolves a wire namespace id; nil when unknown.
func (r *Registry) lookup(id uint32) *namespace {
	r.mu.RLock()
	ns := r.byID[id]
	r.mu.RUnlock()
	return ns
}

// LookupName resolves a namespace name to its id for this process
// lifetime.
func (r *Registry) LookupName(name string) (uint32, bool) {
	r.mu.RLock()
	ns, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return ns.id, true
}

// List reports the named namespaces in id order (the default namespace
// 0 is the Server's and is prepended by the NsList handler).
func (r *Registry) List() []wire.NsInfo {
	r.mu.RLock()
	out := make([]wire.NsInfo, 0, len(r.byID))
	for _, ns := range r.byID {
		out = append(out, wire.NsInfo{ID: ns.id, Name: ns.name, Durable: ns.durable})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CloseAll closes every namespace backend (durable ones flush and
// fsync), leaving directories intact. Server.Shutdown calls it after
// draining.
func (r *Registry) CloseAll() {
	r.mu.Lock()
	nss := make([]*namespace, 0, len(r.byID))
	for _, ns := range r.byID {
		nss = append(nss, ns)
	}
	r.byID = make(map[uint32]*namespace)
	r.byName = make(map[string]*namespace)
	r.mu.Unlock()
	for _, ns := range nss {
		ns.mu.Lock()
		ns.dropped = true
		ns.mu.Unlock()
		if r.cfg.Obs != nil {
			r.cfg.Obs.Unregister(reqLatencyName, obs.Label{Key: "ns", Value: ns.name})
			r.cfg.Obs.Unregister(nsShardsName, obs.Label{Key: "ns", Value: ns.name})
		}
		ns.be.Close()
	}
}
