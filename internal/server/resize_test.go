package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/skiphash"
	"repro/skiphash/client"
)

// TestServeResize drives the RESIZE op end to end: grow and shrink the
// default map while pipelined client traffic keeps hitting it, then
// audit every key.
func TestServeResize(t *testing.T) {
	m, _, addr := startServer(t, skiphash.Config{Shards: 2}, Config{})
	c := dialT(t, addr, client.Options{Conns: 2})

	for k := int64(0); k < 256; k++ {
		if _, err := c.Insert(k, k*3); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := int64(1000 + 100*w)
			for i := int64(0); !stop.Load(); i++ {
				k := base + i%100
				if _, err := c.Put(k, i); err != nil {
					errCh <- fmt.Errorf("writer %d Put(%d): %w", w, k, err)
					return
				}
				if _, _, err := c.Get(k); err != nil {
					errCh <- fmt.Errorf("writer %d Get(%d): %w", w, k, err)
					return
				}
			}
		}()
	}

	for _, n := range []int{8, 2, 16} {
		got, err := c.Resize(n)
		if err != nil || got != n {
			t.Fatalf("Resize(%d) = %d, %v", n, got, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if got := m.Shards(); got != 16 {
		t.Fatalf("live shard count %d, want 16", got)
	}
	for k := int64(0); k < 256; k++ {
		if v, ok, err := c.Get(k); err != nil || !ok || v != k*3 {
			t.Fatalf("Get(%d) after resizes = %d, %v, %v", k, v, ok, err)
		}
	}
	if st := m.ResizeStats(); st.Resizes != 3 || st.Cutovers == 0 {
		t.Fatalf("ResizeStats = %+v, want 3 resizes with cutovers", st)
	}
}

// TestServeResizeUnresizable: an unsharded backend is not a Resizer and
// must answer RESIZE with an error, not a torn connection.
func TestServeResizeUnresizable(t *testing.T) {
	m := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})
	srv := New(NewMapBackend(m), Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
		m.Close()
	})
	c := dialT(t, ln.Addr().String(), client.Options{})
	if _, err := c.Resize(4); err == nil {
		t.Fatal("Resize on an unsharded backend succeeded")
	}
	// The connection must survive the refused op.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after refused Resize: %v", err)
	}
}

// TestNamespaceResize exercises the v2 RESIZE: per-namespace resizing
// leaves other namespaces untouched, and a dropped namespace answers
// ErrNamespaceNotFound.
func TestNamespaceResize(t *testing.T) {
	_, addr := startNsServer(t, RegistryConfig{Map: skiphash.Config{Shards: 2}}, Config{})
	c := dialT(t, addr, client.Options{Conns: 2})

	a, err := c.CreateNamespace("alpha", client.NamespaceOptions{})
	if err != nil {
		t.Fatalf("CreateNamespace(alpha): %v", err)
	}
	b, err := c.CreateNamespace("beta", client.NamespaceOptions{})
	if err != nil {
		t.Fatalf("CreateNamespace(beta): %v", err)
	}
	for i := 0; i < 128; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if ok, err := a.Insert(k, []byte("a")); err != nil || !ok {
			t.Fatalf("alpha Insert: %v %v", ok, err)
		}
		if ok, err := b.Insert(k, []byte("b")); err != nil || !ok {
			t.Fatalf("beta Insert: %v %v", ok, err)
		}
	}

	if got, err := a.Resize(8); err != nil || got != 8 {
		t.Fatalf("alpha Resize(8) = %d, %v", got, err)
	}
	for i := 0; i < 128; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if v, ok, err := a.Get(k); err != nil || !ok || string(v) != "a" {
			t.Fatalf("alpha Get(%s) = %q, %v, %v", k, v, ok, err)
		}
		if v, ok, err := b.Get(k); err != nil || !ok || string(v) != "b" {
			t.Fatalf("beta Get(%s) = %q, %v, %v", k, v, ok, err)
		}
	}

	if err := c.DropNamespace("beta"); err != nil {
		t.Fatalf("DropNamespace(beta): %v", err)
	}
	if _, err := b.Resize(4); !errors.Is(err, client.ErrNamespaceNotFound) {
		t.Fatalf("Resize on dropped namespace: %v, want ErrNamespaceNotFound", err)
	}
}
