package shard

import (
	"errors"

	"repro/internal/core"
	"repro/internal/stm"
)

// ErrCrossShard is returned by Atomic when shards are isolated and the
// transaction's operations span more than one shard (or need all shards
// at once, as Range and the point queries do). Isolated shards live in
// incomparable STM timestamp domains, so such a batch cannot commit
// atomically; the error makes the limitation explicit instead of
// silently downgrading to per-shard atomicity.
var ErrCrossShard = errors.New("shard: transaction spans multiple isolated shards")

// Txn is the transactional view of a Sharded map inside Atomic. In
// shared mode operations may touch any shard and the whole batch
// commits or rolls back together. In isolated mode the transaction is
// pinned to the shard of the first key it touches; an operation on any
// other shard aborts the batch with ErrCrossShard.
//
// A Txn is only valid inside the closure it was handed to.
type Txn[K comparable, V any] struct {
	h *Handle[K, V]
	// tab is the route table the batch was admitted under; it is pinned
	// (and, during a migration, gated) for the batch's whole lifetime,
	// so routing decisions inside the batch are stable.
	tab *route[K, V]

	// Shared mode: the enclosing transaction plus lazily bound
	// per-shard views, and the authoritative index set the multi-shard
	// operations walk.
	tx    *stm.Tx
	bound []*core.Txn[K, V]
	auth  []int

	// Isolated mode: the pinned shard's view ...
	pinned int
	core   *core.Txn[K, V]
	// ... or, before pinning, the routing probe that discovers which
	// shard the first operation needs.
	probe bool
}

// probeDone aborts the routing probe once the first operation's key is
// known; the caller re-routes the mixed hash under the key's migration
// gate, where the group's cutover flag cannot move.
type probeDone struct{ mixed uint64 }

// crossShard aborts a pinned (or probing) transaction that needs a
// shard other than its own.
type crossShard struct{}

// route returns the core view for k's shard, enforcing the pinning
// discipline in isolated mode.
func (t *Txn[K, V]) route(k K) *core.Txn[K, V] {
	mixed := mix(t.h.s.hash(k))
	if t.probe {
		panic(probeDone{mixed: mixed})
	}
	i := t.tab.idxFor(mixed)
	if t.core != nil {
		if i != t.pinned {
			panic(crossShard{})
		}
		return t.core
	}
	return t.at(i)
}

// at lazily binds and returns the shared-mode view for maps index i.
func (t *Txn[K, V]) at(i int) *core.Txn[K, V] {
	if t.bound[i] == nil {
		t.bound[i] = t.h.hs[i].Bind(t.tx)
	}
	return t.bound[i]
}

// single returns the lone view of a single-shard steady-state map in
// the probe/pinned paths, or aborts: only shared mode (or a one-shard
// map with no resize in flight) can satisfy an all-shards operation.
func (t *Txn[K, V]) single() *core.Txn[K, V] {
	if len(t.tab.maps) == 1 && t.tab.mig == nil {
		if t.probe {
			panic(probeDone{})
		}
		return t.core
	}
	panic(crossShard{})
}

// Lookup returns the value associated with k.
func (t *Txn[K, V]) Lookup(k K) (V, bool) { return t.route(k).Lookup(k) }

// Contains reports whether k is present.
func (t *Txn[K, V]) Contains(k K) bool { return t.route(k).Contains(k) }

// Insert adds (k, v) if k is absent and reports whether it did.
func (t *Txn[K, V]) Insert(k K, v V) bool { return t.route(k).Insert(k, v) }

// Remove deletes k and reports whether it was present.
func (t *Txn[K, V]) Remove(k K) bool { return t.route(k).Remove(k) }

// Put sets k to v unconditionally, reporting whether a previous value
// was replaced.
func (t *Txn[K, V]) Put(k K, v V) bool { return t.route(k).Put(k, v) }

// Ceil returns the smallest key >= k and its value. Requires shared
// mode (or a single shard): the probe spans every shard.
func (t *Txn[K, V]) Ceil(k K) (K, V, bool) {
	return t.reduce(k, false, func(op *core.Txn[K, V], k K) (K, V, bool) { return op.Ceil(k) })
}

// Succ returns the smallest key > k and its value; see Ceil.
func (t *Txn[K, V]) Succ(k K) (K, V, bool) {
	return t.reduce(k, false, func(op *core.Txn[K, V], k K) (K, V, bool) { return op.Succ(k) })
}

// Floor returns the largest key <= k and its value; see Ceil.
func (t *Txn[K, V]) Floor(k K) (K, V, bool) {
	return t.reduce(k, true, func(op *core.Txn[K, V], k K) (K, V, bool) { return op.Floor(k) })
}

// Pred returns the largest key < k and its value; see Ceil.
func (t *Txn[K, V]) Pred(k K) (K, V, bool) {
	return t.reduce(k, true, func(op *core.Txn[K, V], k K) (K, V, bool) { return op.Pred(k) })
}

func (t *Txn[K, V]) reduce(k K, wantMax bool, q func(op *core.Txn[K, V], k K) (K, V, bool)) (K, V, bool) {
	if t.probe || t.core != nil {
		return q(t.single(), k)
	}
	s := t.h.s
	var bk K
	var bv V
	var bok bool
	for _, i := range t.auth {
		ck, cv, ok := q(t.at(i), k)
		if !ok {
			continue
		}
		if !bok || (wantMax && s.less(bk, ck)) || (!wantMax && s.less(ck, bk)) {
			bk, bv, bok = ck, cv, true
		}
	}
	return bk, bv, bok
}

// Range appends every pair with l <= key <= r, in key order, to out
// within the transaction. Requires shared mode (or a single shard): the
// collection spans every shard.
func (t *Txn[K, V]) Range(l, r K, out []Pair[K, V]) []Pair[K, V] {
	h := t.h
	if t.probe || t.core != nil {
		return t.single().Range(l, r, out)
	}
	for _, i := range t.auth {
		h.segs[i] = t.at(i).Range(l, r, h.segs[i][:0])
	}
	return h.merge(t.auth, out)
}

// Atomic runs fn as one transactional batch over the map.
//
// In shared mode (the default) the batch is a single STM transaction
// that may span every shard: all operations commit or roll back
// together, exactly as on the unsharded map. During a resize the batch
// routes against the authoritative shard set, held stable by the
// migration gates for the batch's duration.
//
// In isolated mode the batch is pinned to one shard. A routing pass
// first discovers the shard of the first operation (fn may therefore
// run one extra time; like the STM retry loop, it must tolerate
// re-execution), then fn runs as a transaction on that shard alone.
// Single-key batches — and any batch whose keys co-hash — keep full
// transactional semantics; a batch that touches a second shard fails
// with ErrCrossShard and leaves the map unchanged. Operations that need
// all shards at once (Range, Ceil, Floor, Succ, Pred) fail the same way
// unless the map has a single shard. A resize narrows co-hashing
// transiently: keys that shared a shard may land on different
// destination shards once their group cuts over.
func (h *Handle[K, V]) Atomic(fn func(op *Txn[K, V]) error) error {
	s := h.s
	if !s.isolated {
		t, auth := h.authEnter()
		defer h.authExit(t)
		bound := make([]*core.Txn[K, V], len(t.maps))
		return s.rt.Atomic(func(tx *stm.Tx) error {
			clear(bound)
			return fn(&Txn[K, V]{h: h, tab: t, tx: tx, bound: bound, auth: auth})
		})
	}
	t := s.enter(h.stripe)
	defer s.exit(t, h.stripe)
	if h.tab != t {
		h.rebind(t)
	}
	mixed, err, decided := h.probeShard(t, fn)
	if !decided {
		return err // fn performed no map operations, or crossed shards
	}
	if m := t.mig; m != nil {
		g := m.groupOf(mixed)
		m.gates[g].RLock()
		defer m.gates[g].RUnlock()
	}
	return h.runPinned(t, t.idxFor(mixed), fn)
}

// probeShard runs fn against a routing probe. decided reports whether a
// first operation produced a routing hash; otherwise err carries fn's
// outcome (its plain return when it performed no operations, or
// ErrCrossShard when its first operation already needed every shard).
func (h *Handle[K, V]) probeShard(t *route[K, V], fn func(op *Txn[K, V]) error) (mixed uint64, err error, decided bool) {
	defer func() {
		if p := recover(); p != nil {
			switch pd := p.(type) {
			case probeDone:
				mixed, decided = pd.mixed, true
				err = nil
			case crossShard:
				err = ErrCrossShard
			default:
				panic(p)
			}
		}
	}()
	return 0, fn(&Txn[K, V]{h: h, tab: t, probe: true}), false
}

// runPinned executes fn as a transaction on the pinned shard,
// converting a cross-shard abort into ErrCrossShard after the STM layer
// has rolled the attempt back.
func (h *Handle[K, V]) runPinned(t *route[K, V], pin int, fn func(op *Txn[K, V]) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(crossShard); ok {
				err = ErrCrossShard
				return
			}
			panic(p)
		}
	}()
	return h.hs[pin].Atomic(func(op *core.Txn[K, V]) error {
		return fn(&Txn[K, V]{h: h, tab: t, pinned: pin, core: op})
	})
}
