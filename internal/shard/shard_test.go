package shard_test

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/maptest"
	"repro/internal/shard"
	"repro/internal/stm"
	"repro/internal/thashmap"
)

func newInt64(cfg core.Config) *shard.Sharded[int64, int64] {
	return shard.New[int64, int64](func(a, b int64) bool { return a < b }, thashmap.Hash64, cfg)
}

// adapter exposes a sharded map through the shared conformance
// interface.
type adapter struct {
	s *shard.Sharded[int64, int64]
}

func (a adapter) Lookup(k int64) (int64, bool) { return a.s.Lookup(k) }
func (a adapter) Insert(k, v int64) bool       { return a.s.Insert(k, v) }
func (a adapter) Remove(k int64) bool          { return a.s.Remove(k) }

func (a adapter) Range(l, r int64, buf []maptest.KV) []maptest.KV {
	for _, p := range a.s.Range(l, r, nil) {
		buf = append(buf, maptest.KV{Key: p.Key, Val: p.Val})
	}
	return buf
}

func (a adapter) Ceil(k int64) (int64, int64, bool)  { return a.s.Ceil(k) }
func (a adapter) Floor(k int64) (int64, int64, bool) { return a.s.Floor(k) }
func (a adapter) Succ(k int64) (int64, int64, bool)  { return a.s.Succ(k) }
func (a adapter) Pred(k int64) (int64, int64, bool)  { return a.s.Pred(k) }

func (a adapter) CheckQuiescent() error {
	a.s.Quiesce()
	return a.s.CheckInvariants(core.CheckOptions{})
}

// HandleCount/Close expose the handle lifecycle to the churn component.
func (a adapter) HandleCount() int { return a.s.HandleCount() }
func (a adapter) Close()           { a.s.Close() }

// Batch applies steps as one Atomic batch. In isolated mode a batch
// whose keys span shards is rejected with ErrCrossShard and rolled
// back, which Batch reports as not-applied.
func (a adapter) Batch(steps []linearize.Step) bool {
	return a.s.Atomic(func(op *shard.Txn[int64, int64]) error {
		linearize.ApplySteps(steps, op.Insert, op.Remove, op.Lookup)
		return nil
	}) == nil
}

// InstallSTMHooks installs hooks on every runtime backing the map.
func (a adapter) InstallSTMHooks(h stm.Hooks) {
	if rt := a.s.Runtime(); rt != nil {
		rt.SetHooks(h)
		return
	}
	for i := 0; i < a.s.NumShards(); i++ {
		a.s.Shard(i).Runtime().SetHooks(h)
	}
}

func factory(cfg core.Config) maptest.Factory {
	return func() maptest.OrderedMap {
		cfg := cfg
		cfg.Buckets = 4096 // split across shards by the constructor
		return adapter{s: newInt64(cfg)}
	}
}

// TestConformance runs the full suite — including ordered iteration,
// range-query snapshot sanity, and the range-population linearizability
// bound under concurrent removes — at several shard counts.
func TestConformance(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			maptest.RunAll(t, factory(core.Config{Shards: shards}))
		})
	}
}

// TestConformanceIsolated exercises isolated-runtime shards. Cross-shard
// range queries merge per-shard snapshots taken at distinct instants, so
// the single-instant population bound of RunRangeCountBound does not
// apply; every other component of the suite does.
func TestConformanceIsolated(t *testing.T) {
	for _, shards := range []int{2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			f := factory(core.Config{Shards: shards, IsolatedShards: true})
			t.Run("Sequential", func(t *testing.T) { maptest.RunSequential(t, f) })
			t.Run("Model", func(t *testing.T) { maptest.RunModel(t, f) })
			t.Run("PointQueryModel", func(t *testing.T) { maptest.RunPointQueryModel(t, f) })
			t.Run("ConcurrentDisjoint", func(t *testing.T) { maptest.RunConcurrentDisjoint(t, f) })
			t.Run("ConcurrentContended", func(t *testing.T) { maptest.RunConcurrentContended(t, f) })
			t.Run("RangeSanity", func(t *testing.T) { maptest.RunRangeSanity(t, f) })
			// Per-shard snapshots make multi-shard ranges and point
			// queries non-linearizable by design; the per-key subset
			// (plus same-shard batches) is what isolation preserves.
			t.Run("Linearizability", func(t *testing.T) { maptest.RunLinearizabilityPerKey(t, f) })
		})
	}
}

// TestRangeLinearizableUnderRemoves is a sharper edition of the
// conformance suite's count bound, aimed specifically at cross-shard
// ranges racing removals: every remove is immediately re-inserted, so
// any full-universe range must see at least universe-writers keys; a
// merge of inconsistent per-shard snapshots would routinely see fewer.
func TestRangeLinearizableUnderRemoves(t *testing.T) {
	for _, shards := range []int{2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := newInt64(core.Config{Shards: shards, Buckets: 4096})
			const writers = 4
			const stripe = 64
			const universe = writers * stripe
			for k := int64(0); k < universe; k++ {
				s.Insert(k, k)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(base int64, seed uint64) {
					defer wg.Done()
					h := s.NewHandle()
					rng := rand.New(rand.NewPCG(seed, seed^0x77))
					for i := 0; i < 3000; i++ {
						k := base + int64(rng.Uint64()%stripe)
						if h.Remove(k) {
							h.Insert(k, k)
						}
					}
				}(int64(g)*stripe, uint64(g)+3)
			}
			var readerWG sync.WaitGroup
			for g := 0; g < 2; g++ {
				readerWG.Add(1)
				go func() {
					defer readerWG.Done()
					h := s.NewHandle()
					var buf []shard.Pair[int64, int64]
					for {
						select {
						case <-stop:
							return
						default:
						}
						buf = h.Range(0, universe, buf[:0])
						if len(buf) < universe-writers || len(buf) > universe {
							t.Errorf("range population %d outside [%d, %d]",
								len(buf), universe-writers, universe)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			readerWG.Wait()
			s.Quiesce()
			if err := s.CheckInvariants(core.CheckOptions{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAtomicCrossShardShared verifies that shared-runtime batches span
// shards atomically: a transfer between keys in different shards is
// either fully visible or not at all.
func TestAtomicCrossShardShared(t *testing.T) {
	s := newInt64(core.Config{Shards: 8, Buckets: 4096})
	// Find two keys living in different shards.
	a, b := int64(0), int64(-1)
	for k := int64(1); k < 1024; k++ {
		if s.Shard(0) != nil && shardOf(s, k) != shardOf(s, a) {
			b = k
			break
		}
	}
	if b < 0 {
		t.Fatal("no cross-shard key pair found")
	}
	s.Insert(a, 100)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = s.Atomic(func(op *shard.Txn[int64, int64]) error {
				if v, ok := op.Lookup(a); ok {
					op.Remove(a)
					op.Insert(b, v)
				} else if v, ok := op.Lookup(b); ok {
					op.Remove(b)
					op.Insert(a, v)
				}
				return nil
			})
		}
		close(stop)
	}()
	for {
		select {
		case <-stop:
			wg.Wait()
			va, oka := s.Lookup(a)
			vb, okb := s.Lookup(b)
			if oka == okb || (oka && va != 100) || (okb && vb != 100) {
				t.Fatalf("final state a=(%d,%v) b=(%d,%v)", va, oka, vb, okb)
			}
			return
		default:
		}
		var seen int
		_ = s.Atomic(func(op *shard.Txn[int64, int64]) error {
			seen = 0
			if _, ok := op.Lookup(a); ok {
				seen++
			}
			if _, ok := op.Lookup(b); ok {
				seen++
			}
			return nil
		})
		if seen != 1 {
			t.Fatalf("observed %d of {a, b}; cross-shard batch not atomic", seen)
		}
	}
}

// shardOf recovers a key's shard through the public surface: insert it
// (transiently, if it was absent) and find which shard reports it.
func shardOf(s *shard.Sharded[int64, int64], k int64) int {
	if s.Insert(k, k) {
		defer s.Remove(k)
	}
	for i := 0; i < s.NumShards(); i++ {
		if _, ok := s.Shard(i).Lookup(k); ok {
			return i
		}
	}
	return -1
}

// TestAtomicIsolated verifies the pinning discipline: same-shard batches
// keep transactional semantics, cross-shard batches fail with
// ErrCrossShard and leave the map unchanged.
func TestAtomicIsolated(t *testing.T) {
	s := newInt64(core.Config{Shards: 8, IsolatedShards: true, Buckets: 4096})
	// Single-key batches always work.
	if err := s.Atomic(func(op *shard.Txn[int64, int64]) error {
		op.Insert(7, 70)
		if v, ok := op.Lookup(7); !ok || v != 70 {
			t.Errorf("Lookup inside txn = %d,%v", v, ok)
		}
		return nil
	}); err != nil {
		t.Fatalf("single-key Atomic: %v", err)
	}
	if v, ok := s.Lookup(7); !ok || v != 70 {
		t.Fatalf("Lookup(7) = %d,%v after batch", v, ok)
	}
	// A batch that crosses shards reports ErrCrossShard and rolls back.
	a := int64(7)
	b := int64(-1)
	for k := int64(8); k < 1024; k++ {
		if shardOf(s, k) != shardOf(s, a) {
			b = k
			break
		}
	}
	if b < 0 {
		t.Fatal("no cross-shard key pair found")
	}
	err := s.Atomic(func(op *shard.Txn[int64, int64]) error {
		op.Remove(a)
		op.Insert(b, 70)
		return nil
	})
	if !errors.Is(err, shard.ErrCrossShard) {
		t.Fatalf("cross-shard Atomic error = %v, want ErrCrossShard", err)
	}
	if _, ok := s.Lookup(b); ok {
		t.Error("cross-shard batch leaked a partial insert")
	}
	if v, ok := s.Lookup(a); !ok || v != 70 {
		t.Errorf("cross-shard batch removed a despite rollback: %d,%v", v, ok)
	}
	// Multi-shard probes (ranges, point queries) fail the same way.
	err = s.Atomic(func(op *shard.Txn[int64, int64]) error {
		op.Range(0, 100, nil)
		return nil
	})
	if !errors.Is(err, shard.ErrCrossShard) {
		t.Fatalf("txn Range error = %v, want ErrCrossShard", err)
	}
	// An empty batch is a no-op.
	if err := s.Atomic(func(op *shard.Txn[int64, int64]) error { return nil }); err != nil {
		t.Fatalf("empty Atomic: %v", err)
	}
}

// TestIterators checks the merged ascending/descending iterators and
// their bounded variants against a sorted model.
func TestIterators(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := newInt64(core.Config{Shards: shards, Buckets: 1024})
			const n = 500
			for k := int64(0); k < n; k++ {
				s.Insert(k*3, k*3+1)
			}
			want := int64(0)
			for k, v := range s.All() {
				if k != want*3 || v != want*3+1 {
					t.Fatalf("All: got (%d,%d), want (%d,%d)", k, v, want*3, want*3+1)
				}
				want++
			}
			if want != n {
				t.Fatalf("All visited %d pairs, want %d", want, n)
			}
			want = n - 1
			for k := range s.Backward() {
				if k != want*3 {
					t.Fatalf("Backward: got %d, want %d", k, want*3)
				}
				want--
			}
			var got []int64
			s.AscendFrom(100, func(k, v int64) bool {
				got = append(got, k)
				return len(got) < 5
			})
			if len(got) != 5 || got[0] != 102 || got[4] != 114 {
				t.Fatalf("AscendFrom(100) head = %v", got)
			}
			got = got[:0]
			s.DescendFrom(100, func(k, v int64) bool {
				got = append(got, k)
				return len(got) < 5
			})
			if len(got) != 5 || got[0] != 99 || got[4] != 87 {
				t.Fatalf("DescendFrom(100) head = %v", got)
			}
		})
	}
}

// TestIsolatedClockFactory verifies that isolated shards mint one
// private clock each through Config.ClockFactory, so counter clocks
// stop sharing a commit-tick cacheline.
func TestIsolatedClockFactory(t *testing.T) {
	made := 0
	s := newInt64(core.Config{
		Shards: 4, IsolatedShards: true, Buckets: 1024,
		ClockFactory: func() stm.Clock { made++; return stm.NewGV1() },
	})
	if made != s.NumShards() {
		t.Fatalf("factory minted %d clocks for %d shards", made, s.NumShards())
	}
	seen := make(map[stm.Clock]bool)
	for i := 0; i < s.NumShards(); i++ {
		seen[s.Shard(i).Runtime().Clock()] = true
	}
	if len(seen) != s.NumShards() {
		t.Fatalf("shards share clock instances: %d distinct of %d", len(seen), s.NumShards())
	}
	for k := int64(0); k < 256; k++ {
		if !s.Insert(k, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if got := len(s.Range(0, 256, nil)); got != 256 {
		t.Fatalf("Range found %d of 256 keys", got)
	}
}

// TestShardCountDefaults pins the shard-count normalization rules.
func TestShardCountDefaults(t *testing.T) {
	if got := newInt64(core.Config{Shards: 3, Buckets: 1024}).NumShards(); got != 4 {
		t.Errorf("Shards:3 normalized to %d, want 4", got)
	}
	if got := newInt64(core.Config{Shards: 8, Buckets: 1024}).NumShards(); got != 8 {
		t.Errorf("Shards:8 normalized to %d, want 8", got)
	}
	s := newInt64(core.Config{Buckets: 1024})
	if n := s.NumShards(); n < 1 || n&(n-1) != 0 {
		t.Errorf("default shard count %d is not a positive power of two", n)
	}
}

// TestShardPlacement fills the map and relies on CheckInvariants'
// partition audit to verify keys land in their hash-selected shard, and
// that population spreads across shards at all.
func TestShardPlacement(t *testing.T) {
	s := newInt64(core.Config{Shards: 8, Buckets: 4096})
	for k := int64(0); k < 4096; k++ {
		s.Insert(k, k)
	}
	s.Quiesce()
	if err := s.CheckInvariants(core.CheckOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumShards(); i++ {
		if n := s.Shard(i).SizeSlow(); n < 4096/8/4 {
			t.Errorf("shard %d holds %d of 4096 keys: poor spread", i, n)
		}
	}
	if got := s.SizeSlow(); got != 4096 {
		t.Errorf("SizeSlow = %d, want 4096", got)
	}
}

// TestShardedHandleLifecycle churns explicit and pooled handles on a
// sharded map with background maintenance: the registries (frontend and
// per-shard) must track only live handles, and teardown must leave no
// logically-deleted node stitched on any shard.
func TestShardedHandleLifecycle(t *testing.T) {
	s := newInt64(core.Config{Shards: 4, Buckets: 4096, Maintenance: true})
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xfeedbeef))
			for r := 0; r < 20; r++ {
				h := s.NewHandle()
				for i := 0; i < 150; i++ {
					k := int64(rng.Uint64() % 512)
					if rng.Uint64()&1 == 0 {
						h.Insert(k, k)
					} else {
						h.Remove(k)
					}
				}
				h.Close()
				// Convenience path between handle generations.
				for i := 0; i < 150; i++ {
					k := int64(rng.Uint64() % 512)
					if rng.Uint64()&1 == 0 {
						s.Insert(k, k)
					} else {
						s.Remove(k)
					}
				}
			}
		}(uint64(g) + 1)
	}
	wg.Wait()
	if got := s.HandleCount(); got != 0 {
		t.Errorf("handle registries hold %d entries after churn, want 0", got)
	}
	s.Quiesce()
	if err := s.CheckInvariants(core.CheckOptions{}); err != nil {
		t.Errorf("invariants: %v", err)
	}
	if stitched, live := s.StitchedSlow(), s.SizeSlow(); stitched != live {
		t.Errorf("stitched %d != live %d after churn", stitched, live)
	}
	if ms := s.MaintenanceStats(); ms.Orphaned == 0 || ms.DrainedNodes == 0 {
		t.Errorf("maintenance subsystem idle: %+v", ms)
	}
	s.Close()
	s.Close() // idempotent
	if !s.Closed() {
		t.Error("Closed() = false after Close")
	}
}

// TestShardedCloseConcurrent mirrors the core Close contract at the
// sharded frontend: concurrent Close and Quiesce calls all return after
// teardown, and every call observes the fully closed map.
func TestShardedCloseConcurrent(t *testing.T) {
	s := newInt64(core.Config{Shards: 4, Maintenance: true})
	for k := int64(0); k < 512; k++ {
		s.Insert(k, k)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s.Close()
			if !s.Closed() {
				t.Error("Close returned with Closed() == false")
			}
			for i := 0; i < s.NumShards(); i++ {
				if !s.Shard(i).Closed() {
					t.Errorf("Close returned with shard %d still open", i)
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s.Quiesce()
		}()
	}
	close(start)
	wg.Wait()
	s.Close() // idempotent afterwards
}
