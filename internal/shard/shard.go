// Package shard partitions the skip hash across S independent shards,
// turning "one STM instance" into "as many as the hardware has cores".
// Keys are hash-partitioned: each shard is a complete core.Map (hash
// index + doubly linked skip list + range query coordinator), so point
// operations touch exactly one shard and never share a cacheline with
// traffic on any other. Ordered operations are rebuilt at this layer by
// k-way merging per-shard segments, which stay sorted and disjoint
// because the shards partition the key space.
//
// The partition count is a starting point, not a constraint: Resize
// live-migrates keys between shards under traffic (see resize.go), so
// Config.Shards only chooses the initial layout.
//
// # Consistency model
//
// By default every shard runs on one shared STM runtime whose commit
// clock is the stateless monotonic "hardware" clock: drawing a
// timestamp writes no shared memory, so the shared runtime adds no
// cross-shard contention to point operations, while keeping all shards
// in a single timestamp and transaction-ID domain. That domain is what
// buys back global consistency for the multi-shard operations:
//
//   - Range runs its fast path as one transaction walking every shard's
//     segment, and its slow path by registering a range op with every
//     shard's RQC in one transaction — either way the union of segments
//     is a snapshot at a single commit instant, exactly as linearizable
//     as the unsharded map's ranges.
//   - Ceil/Floor/Succ/Pred probe all shards inside one read-only
//     transaction and reduce.
//   - Atomic bodies may span shards freely; the whole batch commits or
//     rolls back together.
//
// With Config.IsolatedShards every shard instead gets a private runtime
// — and a private clock, when Config.ClockFactory mints one per shard
// (or Config.Clock is left nil, defaulting to private monotonic
// clocks); counter-based clocks then stop sharing a commit-tick
// cacheline. Point operations are unchanged, but cross-shard
// timestamps become incomparable, so multi-shard operations weaken: Range and the
// iterators merge per-shard snapshots taken at (closely spaced but)
// distinct instants, point queries reduce over per-shard probes, and
// Atomic is per-shard only — a transaction whose keys span two shards
// fails with ErrCrossShard rather than silently losing atomicity.
package shard

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
)

// Pair is a key/value pair produced by range queries.
type Pair[K comparable, V any] = core.Pair[K, V]

// maxShards bounds the partition count; beyond this the per-shard merge
// and probe fan-out costs dominate any contention win.
const maxShards = 256

// Sharded is a concurrent ordered map hash-partitioned across S
// independent skip hash shards. All methods are safe for concurrent
// use; hot paths should go through per-goroutine Handles. The shard
// count set at construction is only initial — Resize migrates to a new
// count under live traffic.
type Sharded[K comparable, V any] struct {
	less     func(a, b K) bool
	hash     func(K) uint64
	rt       *stm.Runtime // shared runtime; nil when isolated
	isolated bool
	// baseCfg is the construction config; Resize re-derives per-shard
	// configs from it at the new count.
	baseCfg core.Config
	// tab is the current route table (shard list + routing state).
	// Operations pin it via enter/exit; Resize swaps it.
	tab atomic.Pointer[route[K, V]]
	// stripeCtr deals pin stripes to handles round-robin.
	stripeCtr atomic.Uint32

	handlePool sync.Pool
	mu         sync.Mutex
	handles    []*Handle[K, V]
	// retired accumulates shard-level range counters of handles that
	// left the registry (closed handles, released pooled handles).
	retired core.HandleStats
	// retiredSTM/retiredRange/retiredMaint bank the counters of shards
	// closed by a resize, so aggregate stats never go backwards.
	retiredSTM   stm.Stats
	retiredRange core.RangeStats
	retiredMaint core.MaintenanceStats
	closed       atomic.Bool
	// closeDone lets concurrent Close calls wait for the one closing
	// goroutine (durability makes "Close returned" mean "flushed").
	closeDone chan struct{}
	// persister is the frontend-owned durability engine in shared mode
	// (one WAL spanning every shard, so cross-shard batches are single
	// records); in isolated mode each shard owns its own engine instead
	// and this stays nil.
	persister core.Persister
	// logger is the shared-mode WAL logger; Resize attaches it to
	// destination shards so migrated keys keep logging.
	logger core.OpLogger[K, V]

	// resizeMu serializes Resize calls with each other and with Close.
	resizeMu sync.Mutex
	hooks    ResizeHooks[K, V]
	// maintObs/commitObs remember the installed observers so shards
	// created by Resize inherit them (s.mu guards both; commitObs is
	// only consulted when isolated — the shared runtime outlives
	// resizes on its own).
	maintObs  func(nodes int, d time.Duration)
	commitObs stm.CommitObserver

	rsResizes      atomic.Uint64
	rsKeysCopied   atomic.Uint64
	rsDeltaApplied atomic.Uint64
	rsCutovers     atomic.Uint64
	resizeObs      atomic.Pointer[func(group, tail int, d time.Duration)]
}

// normalizeShards clamps a requested shard count to a power of two in
// [1, maxShards]; zero derives the smallest power of two covering
// GOMAXPROCS.
func normalizeShards(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	return n
}

// perShardConfig derives each shard's core configuration: the bucket
// budget (cfg.Buckets, or the core default) is split evenly so total
// memory matches the unsharded map, and the shard-frontend fields are
// cleared so each core.Map is an ordinary single map.
func perShardConfig(cfg core.Config, shards int) core.Config {
	total := cfg.Buckets
	if total == 0 {
		total = 131071
	}
	per := total / shards
	if per < 127 {
		per = 127
	}
	cfg.Buckets = per | 1 // odd, so weak hashes still spread over chains
	cfg.Shards = 0
	cfg.IsolatedShards = false
	cfg.Durability = nil // the frontend owns durability, not the shards
	return cfg
}

// ResolveShards reports the effective partition count New derives from
// a requested one (zero derives from GOMAXPROCS, then clamping and
// rounding to a power of two). Exported for the durable Open path,
// which must lay out per-shard directories before constructing the map.
func ResolveShards(n int) int { return normalizeShards(n) }

// New creates a sharded skip hash ordered by less and hashed by hash.
// cfg.Shards selects the initial partition count (0 derives a power of
// two from GOMAXPROCS; Resize changes it later) and cfg.Buckets the
// total hash-table budget across shards; the remaining fields configure
// each shard as in core.New. hash must mix its input well: the top bits
// pick the shard (after one extra multiplicative mix) and the low bits
// the bucket chain.
func New[K comparable, V any](less func(a, b K) bool, hash func(K) uint64, cfg core.Config) *Sharded[K, V] {
	n := normalizeShards(cfg.Shards)
	s := &Sharded[K, V]{
		less:      less,
		hash:      hash,
		isolated:  cfg.IsolatedShards,
		baseCfg:   cfg,
		closeDone: make(chan struct{}),
	}
	per := perShardConfig(cfg, n)
	shards := make([]*core.Map[K, V], n)
	if s.isolated {
		// Private runtime per shard, and a private clock when the
		// caller leaves cfg.Clock nil: core.New mints one through
		// cfg.ClockFactory (or defaults to a private monotonic clock).
		// A non-nil cfg.Clock instance is shared by every shard —
		// counter clocks then still tick one cacheline, so prefer the
		// factory for per-shard gv1/gv5.
		for i := range shards {
			shards[i] = core.New[K, V](less, hash, per)
		}
	} else {
		clock := cfg.Clock
		if clock == nil && cfg.ClockFactory != nil {
			clock = cfg.ClockFactory()
		}
		s.rt = stm.New(stm.WithClock(clock))
		for i := range shards {
			shards[i] = core.NewIn[K, V](s.rt, less, hash, per)
		}
	}
	s.tab.Store(newSteadyRoute(shards))
	s.handlePool.New = func() any { return s.NewTransientHandle() }
	return s
}

// Close shuts every shard down: per-shard maintainers stop, registered
// handles' removal buffers flush, and the orphan queues drain, so a
// quiescent map holds no stitched logically-deleted nodes afterwards;
// on durable maps the write-ahead log is then flushed and fsynced.
// Close is idempotent and safe concurrent with operations, Quiesce,
// Resize (it waits for an in-flight resize to finish), and other Close
// calls — every call returns only after teardown (including the
// durability flush) has completed. Operations issued after Close fall
// back to inline reclamation and are no longer logged.
func (s *Sharded[K, V]) Close() {
	if s.closed.Swap(true) {
		<-s.closeDone
		return
	}
	defer close(s.closeDone)
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	for _, m := range s.tab.Load().maps {
		m.Close()
	}
	if s.persister != nil {
		s.persister.Close()
	}
}

// AttachPersistence wires shared-mode durability: l observes every
// shard's committed logical operations (all shards share one commit
// clock, so one WAL orders them globally, and a cross-shard batch is a
// single atomic record), and p owns snapshots, syncs and shutdown at
// the frontend. Isolated shards attach engines per shard instead (see
// the skiphash Open constructors).
func (s *Sharded[K, V]) AttachPersistence(l core.OpLogger[K, V], p core.Persister) {
	for _, m := range s.tab.Load().maps {
		m.AttachPersistence(l, nil)
	}
	s.logger = l
	s.persister = p
}

// SnapshotChunks iterates the authoritative shards' key spaces in
// chunked consistent reads for a durable snapshot; see
// core.Map.SnapshotChunks. Chunks from different shards carry their own
// stamps — recovery's per-key chunk watermarks make the union
// consistent without stopping writers. During a resize the walk covers
// the shard set that was authoritative when it began; writes that move
// later are in the WAL.
func (s *Sharded[K, V]) SnapshotChunks(chunkSize int, fn func(stamp uint64, pairs []Pair[K, V]) error) error {
	for _, m := range s.authMaps() {
		if err := m.SnapshotChunks(chunkSize, fn); err != nil {
			return err
		}
	}
	return nil
}

// authMaps snapshots the authoritative shard set — the maps that
// jointly cover the key space exactly once at this instant.
func (s *Sharded[K, V]) authMaps() []*core.Map[K, V] {
	t := s.tab.Load()
	m := t.mig
	if m == nil {
		return t.maps
	}
	for g := range m.gates {
		m.gates[g].RLock()
	}
	idx := m.authIndices(nil)
	out := make([]*core.Map[K, V], len(idx))
	for i, j := range idx {
		out[i] = t.maps[j]
	}
	for g := range m.gates {
		m.gates[g].RUnlock()
	}
	return out
}

// Snapshot writes a durable snapshot now: through the frontend engine
// in shared mode, per shard in isolated mode. core.ErrNotDurable
// without persistence.
func (s *Sharded[K, V]) Snapshot() error {
	return s.durabilityOp(core.Persister.Snapshot, (*core.Map[K, V]).Snapshot)
}

// Sync forces every logged operation to durable storage; see Snapshot
// for the routing.
func (s *Sharded[K, V]) Sync() error {
	return s.durabilityOp(core.Persister.Sync, (*core.Map[K, V]).Sync)
}

// SimulateCrash abandons the durability engine(s) as a process crash
// would; the in-memory map keeps working. See core.Map.SimulateCrash.
func (s *Sharded[K, V]) SimulateCrash() error {
	return s.durabilityOp(core.Persister.SimulateCrash, (*core.Map[K, V]).SimulateCrash)
}

// Persister returns the frontend-owned durability engine (shared-mode
// durable maps), or nil (non-durable and isolated maps — there each
// Shard(i).Persister() is private).
func (s *Sharded[K, V]) Persister() core.Persister { return s.persister }

// durabilityOp routes a durability verb to the frontend engine (shared
// mode) or to every shard (isolated mode), keeping the first error.
func (s *Sharded[K, V]) durabilityOp(front func(core.Persister) error, per func(*core.Map[K, V]) error) error {
	if s.persister != nil {
		return front(s.persister)
	}
	durable := false
	var first error
	for _, m := range s.tab.Load().maps {
		if m.Persister() == nil {
			continue
		}
		durable = true
		if err := per(m); err != nil && first == nil {
			first = err
		}
	}
	if !durable {
		return core.ErrNotDurable
	}
	return first
}

// Closed reports whether Close has been called.
func (s *Sharded[K, V]) Closed() bool { return s.closed.Load() }

// HandleCount returns the number of handles registered across the map:
// the sharded map's own registry plus every shard's (an explicit
// sharded handle contributes 1 + NumShards entries). Pooled convenience
// handles are transient and never counted; the count is the
// leak-detection probe for handle-lifecycle tests.
func (s *Sharded[K, V]) HandleCount() int {
	s.mu.Lock()
	n := len(s.handles)
	s.mu.Unlock()
	for _, m := range s.tab.Load().maps {
		n += m.HandleCount()
	}
	return n
}

// SetMaintenanceObserver installs fn on every shard; see
// core.Map.SetMaintenanceObserver. Observations from different shards'
// drains interleave on one observer. Shards created by a later Resize
// inherit the observer.
func (s *Sharded[K, V]) SetMaintenanceObserver(fn func(nodes int, d time.Duration)) {
	s.mu.Lock()
	s.maintObs = fn
	s.mu.Unlock()
	for _, m := range s.tab.Load().maps {
		m.SetMaintenanceObserver(fn)
	}
}

// SetCommitObserver installs o (or, with nil, removes it) on every
// runtime backing the map: the one shared runtime, or each shard's
// private runtime when isolated. Shards created by a later Resize
// inherit the observer.
func (s *Sharded[K, V]) SetCommitObserver(o stm.CommitObserver) {
	s.mu.Lock()
	s.commitObs = o
	s.mu.Unlock()
	if s.rt != nil {
		s.rt.SetCommitObserver(o)
		return
	}
	for _, m := range s.tab.Load().maps {
		m.Runtime().SetCommitObserver(o)
	}
}

// MaintenanceStats aggregates the reclamation counters of every shard,
// including shards retired by resizes.
func (s *Sharded[K, V]) MaintenanceStats() core.MaintenanceStats {
	s.mu.Lock()
	agg := s.retiredMaint
	s.mu.Unlock()
	for _, m := range s.tab.Load().maps {
		agg = agg.Add(m.MaintenanceStats())
	}
	return agg
}

// StitchedSlow counts all stitched nodes across shards, including
// logically deleted ones, without transactional protection; with
// SizeSlow it measures the deferred-reclamation backlog.
func (s *Sharded[K, V]) StitchedSlow() int {
	n := 0
	for _, m := range s.authMaps() {
		n += m.StitchedSlow()
	}
	return n
}

// Shards returns the current shard count: the live partition count in
// steady state, or the target count while a resize is migrating toward
// it. This is the operator-facing accessor surfaced through Stats.
func (s *Sharded[K, V]) Shards() int {
	t := s.tab.Load()
	if t.mig != nil {
		return t.mig.newN
	}
	return len(t.maps)
}

// NumShards returns the partition count; see Shards.
func (s *Sharded[K, V]) NumShards() int { return s.Shards() }

// ShardOf reports the routing identity of the shard k is routed to.
// Callers batching operations ahead of Atomic (the network server's
// request coalescer) use it to keep a batch within one shard on
// isolated-shard maps. During a resize the identity reflects the
// per-group cutover state, so coalesced runs re-split at the new
// boundaries; a run split moments before a cutover can still land
// cross-shard and surface ErrCrossShard, exactly like a batch built
// from stale hashes.
func (s *Sharded[K, V]) ShardOf(k K) int {
	return s.tab.Load().idxFor(mix(s.hash(k)))
}

// Isolated reports whether shards run on private STM runtimes.
func (s *Sharded[K, V]) Isolated() bool { return s.isolated }

// Shard exposes one partition (for stats and tests); valid for
// i < Shards() while no resize is in flight.
func (s *Sharded[K, V]) Shard(i int) *core.Map[K, V] { return s.tab.Load().maps[i] }

// Runtime returns the shared STM runtime, or nil when shards are
// isolated (then each Shard(i).Runtime() is private).
func (s *Sharded[K, V]) Runtime() *stm.Runtime { return s.rt }

// STMStats aggregates transaction counters across every runtime backing
// the map (one shared runtime, or one per shard when isolated,
// including shards retired by resizes).
func (s *Sharded[K, V]) STMStats() stm.Stats {
	if !s.isolated {
		return s.rt.Stats()
	}
	s.mu.Lock()
	agg := s.retiredSTM
	s.mu.Unlock()
	for _, m := range s.tab.Load().maps {
		st := m.Runtime().Stats()
		agg.Commits += st.Commits
		agg.ReadOnlyCommits += st.ReadOnlyCommits
		agg.Aborts += st.Aborts
		agg.UserErrors += st.UserErrors
		agg.FastReadHits += st.FastReadHits
		agg.FastReadFallbacks += st.FastReadFallbacks
	}
	return agg
}

// Prefetch warms the cache lines a point read of k will touch on its
// home shard; see core.Map.Prefetch. Routing is advisory during a
// resize (the home may flip before the read).
func (s *Sharded[K, V]) Prefetch(k K) {
	t := s.tab.Load()
	t.maps[t.idxFor(mix(s.hash(k)))].Prefetch(k)
}

// RangeStats aggregates range-path counters: the shard-level fast/slow
// counters of this map's registered handles plus the retired
// accumulator (cross-shard ranges in shared mode), plus each shard's
// own counters (per-shard ranges in isolated mode). The shard-level sum
// runs under s.mu — the mutex bankStats moves counters under — so
// snapshots are exact with respect to banking and successive snapshots
// never decrease.
func (s *Sharded[K, V]) RangeStats() core.RangeStats {
	var agg core.RangeStats
	s.mu.Lock()
	for _, h := range s.handles {
		agg.FastAttempts += h.stats.RangeFastAttempts.Load()
		agg.FastAborts += h.stats.RangeFastAborts.Load()
		agg.FastCommits += h.stats.RangeFastCommits.Load()
		agg.SlowCommits += h.stats.RangeSlowCommits.Load()
	}
	agg.FastAttempts += s.retired.RangeFastAttempts.Load()
	agg.FastAborts += s.retired.RangeFastAborts.Load()
	agg.FastCommits += s.retired.RangeFastCommits.Load()
	agg.SlowCommits += s.retired.RangeSlowCommits.Load()
	agg.FastAttempts += s.retiredRange.FastAttempts
	agg.FastAborts += s.retiredRange.FastAborts
	agg.FastCommits += s.retiredRange.FastCommits
	agg.SlowCommits += s.retiredRange.SlowCommits
	s.mu.Unlock()
	for _, m := range s.tab.Load().maps {
		st := m.RangeStats()
		agg.FastAttempts += st.FastAttempts
		agg.FastAborts += st.FastAborts
		agg.FastCommits += st.FastCommits
		agg.SlowCommits += st.SlowCommits
	}
	return agg
}

// Quiesce flushes every registered handle's removal buffers and drains
// the orphan queue on every shard. Safe concurrent with in-flight
// operations; removals that commit after Quiesce returns are not
// covered.
func (s *Sharded[K, V]) Quiesce() {
	for _, m := range s.tab.Load().maps {
		m.Quiesce()
	}
}

// CheckInvariants audits every shard's composition invariants plus the
// partition invariant (every key lives in the shard its hash selects).
// The map must be quiescent, with no resize in flight.
func (s *Sharded[K, V]) CheckInvariants(opts core.CheckOptions) error {
	t := s.tab.Load()
	if t.mig != nil {
		return fmt.Errorf("shard: CheckInvariants during a resize")
	}
	for i, m := range t.maps {
		if err := m.CheckInvariants(opts); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		for k := range m.All() {
			if home := t.idxFor(mix(s.hash(k))); home != i {
				return fmt.Errorf("shard %d: key %v belongs to shard %d", i, k, home)
			}
		}
	}
	return nil
}

// SizeSlow counts logically present pairs without transactional
// protection; the map must be quiescent.
func (s *Sharded[K, V]) SizeSlow() int {
	n := 0
	for _, m := range s.authMaps() {
		n += m.SizeSlow()
	}
	return n
}

// Convenience methods on Sharded borrow a pooled transient handle,
// mirroring core.Map's ergonomic entry points. Every release recycles
// the handle — counters banked, buffered removals handed to the shards'
// orphan queues — so pool churn cannot strand state.

func (s *Sharded[K, V]) borrow() *Handle[K, V] { return s.handlePool.Get().(*Handle[K, V]) }

func (s *Sharded[K, V]) release(h *Handle[K, V]) {
	h.Recycle()
	s.handlePool.Put(h)
}

// releaseClean returns a borrowed handle without the recycle pass; only
// for operations that can neither buffer a removal nor touch a
// range-path counter on any shard (lookups, inserts, point queries).
// Dirty paths always release through release(), so a pooled handle's
// sub-buffers are empty by invariant.
func (s *Sharded[K, V]) releaseClean(h *Handle[K, V]) { s.handlePool.Put(h) }

// Lookup returns the value associated with k.
func (s *Sharded[K, V]) Lookup(k K) (V, bool) {
	h := s.borrow()
	defer s.releaseClean(h)
	return h.Lookup(k)
}

// Contains reports whether k is present.
func (s *Sharded[K, V]) Contains(k K) bool {
	h := s.borrow()
	defer s.releaseClean(h)
	return h.Contains(k)
}

// Insert adds (k, v) if k is absent and reports whether it did.
func (s *Sharded[K, V]) Insert(k K, v V) bool {
	h := s.borrow()
	defer s.releaseClean(h)
	return h.Insert(k, v)
}

// Remove deletes k and reports whether it was present.
func (s *Sharded[K, V]) Remove(k K) bool {
	h := s.borrow()
	defer s.release(h)
	return h.Remove(k)
}

// Put sets k to v unconditionally, reporting whether a previous value
// was replaced.
func (s *Sharded[K, V]) Put(k K, v V) bool {
	h := s.borrow()
	defer s.release(h)
	return h.Put(k, v)
}

// Ceil returns the smallest key >= k and its value.
func (s *Sharded[K, V]) Ceil(k K) (K, V, bool) {
	h := s.borrow()
	defer s.releaseClean(h)
	return h.Ceil(k)
}

// Succ returns the smallest key > k and its value.
func (s *Sharded[K, V]) Succ(k K) (K, V, bool) {
	h := s.borrow()
	defer s.releaseClean(h)
	return h.Succ(k)
}

// Floor returns the largest key <= k and its value.
func (s *Sharded[K, V]) Floor(k K) (K, V, bool) {
	h := s.borrow()
	defer s.releaseClean(h)
	return h.Floor(k)
}

// Pred returns the largest key < k and its value.
func (s *Sharded[K, V]) Pred(k K) (K, V, bool) {
	h := s.borrow()
	defer s.releaseClean(h)
	return h.Pred(k)
}

// Range collects [l, r] into out; see Handle.Range.
func (s *Sharded[K, V]) Range(l, r K, out []Pair[K, V]) []Pair[K, V] {
	h := s.borrow()
	defer s.release(h)
	return h.Range(l, r, out)
}

// Atomic runs fn as one transactional batch using a pooled handle; see
// Handle.Atomic for the cross-shard contract.
func (s *Sharded[K, V]) Atomic(fn func(op *Txn[K, V]) error) error {
	h := s.borrow()
	defer s.release(h)
	return h.Atomic(fn)
}
