package shard

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/stm"
)

// Handle is a per-goroutine context over a Sharded map. It owns one
// core.Handle per shard (each with its own search scratch and removal
// buffer), the per-shard segment buffers the k-way merge reuses, and
// the shard-level range-path counters. A Handle must not be used
// concurrently; create one per worker with Sharded.NewHandle and Close
// it when the worker is done, so the handle (and its per-shard
// sub-handles) leave the registries and any buffered removals reach the
// shards' orphan queues. When a Resize swaps the route table, the
// handle rebinds lazily at its next operation, reusing sub-handles of
// surviving shards and closing those of retired ones.
type Handle[K comparable, V any] struct {
	s *Sharded[K, V]
	// tab is the route table hs/segs/heads are aligned to.
	tab   *route[K, V]
	hs    []*core.Handle[K, V]
	segs  [][]Pair[K, V]
	heads []int
	// auth is the scratch the multi-shard paths collect the
	// authoritative shard indices into during a migration.
	auth []int
	// stripe is the handle's pin-counter stripe (see resize.go).
	stripe uint32
	stats  core.HandleStats
	// adaptSkip counts remaining range queries that bypass the fast
	// path under Config.Adaptive (shared mode only; isolated shards run
	// their own adaptive policy inside core).
	adaptSkip int
	// registered records membership in Sharded.handles; pooled transient
	// handles bank their counters on release instead. It is written only
	// at construction. closed is atomic so concurrent Close calls (a
	// worker's deferred Close racing a teardown sweep) are safe, matching
	// the core handle's contract.
	registered bool
	closed     atomic.Bool
}

func (s *Sharded[K, V]) newHandle(registered bool) *Handle[K, V] {
	h := &Handle[K, V]{
		s:          s,
		stripe:     s.stripeCtr.Add(1) & (pinStripes - 1),
		registered: registered,
	}
	t := s.enter(h.stripe)
	h.rebind(t)
	s.exit(t, h.stripe)
	return h
}

// NewHandle creates a handle bound to s and registers it — and its
// per-shard sub-handles — for stats aggregation.
func (s *Sharded[K, V]) NewHandle() *Handle[K, V] {
	h := s.newHandle(true)
	s.mu.Lock()
	s.handles = append(s.handles, h)
	s.mu.Unlock()
	return h
}

// NewTransientHandle creates a handle that is tracked by no registry —
// neither the sharded map's nor any shard's. Its counters and buffered
// removals only reach the map when Recycle or Close banks them; the
// pooled convenience paths are built on transient handles so pool churn
// cannot grow the registries or strand removals. Explicit workers
// normally want NewHandle instead.
func (s *Sharded[K, V]) NewTransientHandle() *Handle[K, V] {
	return s.newHandle(false)
}

// rebind aligns the handle's per-shard state with t's shard list,
// reusing sub-handles by map identity (a resize keeps surviving shards'
// handles warm) and closing those whose shards left the table.
func (h *Handle[K, V]) rebind(t *route[K, V]) {
	old := h.hs
	h.hs = make([]*core.Handle[K, V], len(t.maps))
	for i, m := range t.maps {
		for j, ch := range old {
			if ch != nil && ch.Map() == m {
				h.hs[i], old[j] = ch, nil
				break
			}
		}
		if h.hs[i] == nil {
			if h.registered {
				h.hs[i] = m.NewHandle()
			} else {
				h.hs[i] = m.NewTransientHandle()
			}
		}
	}
	for _, ch := range old {
		if ch != nil {
			ch.Close()
		}
	}
	for len(h.segs) < len(t.maps) {
		h.segs = append(h.segs, nil)
	}
	h.segs = h.segs[:len(t.maps)]
	if len(h.heads) < len(t.maps) {
		h.heads = make([]int, len(t.maps))
	}
	h.tab = t
}

// at returns the sub-handle for maps index idx under table t, rebinding
// first when the table moved since the handle's last operation.
func (h *Handle[K, V]) at(t *route[K, V], idx int) *core.Handle[K, V] {
	if h.tab != t {
		h.rebind(t)
	}
	return h.hs[idx]
}

// pointEnter pins the route table and, during a migration, the key's
// group gate, and returns the authoritative sub-handle for k. The
// caller runs its operation and then calls pointExit(t, g).
func (h *Handle[K, V]) pointEnter(k K) (ch *core.Handle[K, V], t *route[K, V], g int) {
	s := h.s
	t = s.enter(h.stripe)
	mixed := mix(s.hash(k))
	g = -1
	if m := t.mig; m != nil {
		g = m.groupOf(mixed)
		m.gates[g].RLock()
	}
	return h.at(t, t.idxFor(mixed)), t, g
}

func (h *Handle[K, V]) pointExit(t *route[K, V], g int) {
	if g >= 0 {
		t.mig.gates[g].RUnlock()
	}
	h.s.exit(t, h.stripe)
}

// authEnter pins the route table, acquires every migration gate when a
// resize is in flight, and returns the authoritative shard indices —
// the set covering the key space exactly once for as long as the gates
// are held. The caller must call authExit(t).
func (h *Handle[K, V]) authEnter() (*route[K, V], []int) {
	t := h.s.enter(h.stripe)
	if h.tab != t {
		h.rebind(t)
	}
	m := t.mig
	if m == nil {
		return t, t.steadyAuth
	}
	for g := range m.gates {
		m.gates[g].RLock()
	}
	h.auth = m.authIndices(h.auth[:0])
	return t, h.auth
}

func (h *Handle[K, V]) authExit(t *route[K, V]) {
	if m := t.mig; m != nil {
		for g := range m.gates {
			m.gates[g].RUnlock()
		}
	}
	h.s.exit(t, h.stripe)
}

// Sharded returns the map this handle operates on.
func (h *Handle[K, V]) Sharded() *Sharded[K, V] { return h.s }

// Close retires the handle: every per-shard sub-handle is closed (its
// buffered removals reach that shard's orphan queue), the shard-level
// counters are banked, and — for handles created with NewHandle — the
// handle leaves the registry. Close is idempotent; the owning goroutine
// must issue no further operations through the handle.
func (h *Handle[K, V]) Close() {
	if h.closed.Swap(true) {
		return
	}
	for _, ch := range h.hs {
		ch.Close()
	}
	h.bankStats()
	if !h.registered {
		return
	}
	s := h.s
	s.mu.Lock()
	for i, other := range s.handles {
		if other == h {
			last := len(s.handles) - 1
			s.handles[i] = s.handles[last]
			s.handles[last] = nil
			s.handles = s.handles[:last]
			break
		}
	}
	s.mu.Unlock()
}

// Recycle banks the handle's counters and hands every sub-handle's
// buffered removals to its shard's orphan queue while leaving the
// handle usable; the pooled convenience paths call it on every release.
// Clean sub-handles (every shard a point op did not touch) recycle with
// a few atomic loads and no lock, so the per-release cost does not grow
// into O(shards) mutex acquisitions.
func (h *Handle[K, V]) Recycle() {
	for _, ch := range h.hs {
		ch.Recycle()
	}
	h.bankStats()
}

// bankStats moves the shard-level counters into the map's retired
// accumulator under s.mu — the mutex RangeStats aggregates under — so a
// snapshot can never catch a value on both sides of the move; exactly
// the core handle's protocol (see core.Handle.bankStats).
func (h *Handle[K, V]) bankStats() {
	st := &h.stats
	if st.RangeFastAttempts.Load()|st.RangeFastAborts.Load()|
		st.RangeFastCommits.Load()|st.RangeSlowCommits.Load() == 0 {
		return // nothing to move; skipping the lock cannot affect a snapshot
	}
	bank := func(c *atomic.Uint64, r *atomic.Uint64) {
		if v := c.Load(); v != 0 {
			r.Add(v)
			c.Store(0) // owner-exclusive writer, so no increments are lost
		}
	}
	s := h.s
	s.mu.Lock()
	bank(&st.RangeFastAttempts, &s.retired.RangeFastAttempts)
	bank(&st.RangeFastAborts, &s.retired.RangeFastAborts)
	bank(&st.RangeFastCommits, &s.retired.RangeFastCommits)
	bank(&st.RangeSlowCommits, &s.retired.RangeSlowCommits)
	s.mu.Unlock()
}

// FlushRemovals drains the removal buffers of every per-shard handle in
// bounded batches; safe concurrent with the owner's operations.
func (h *Handle[K, V]) FlushRemovals() {
	for _, ch := range h.hs {
		ch.FlushRemovals()
	}
}

// Stats returns a snapshot of the handle's shard-level range counters.
func (h *Handle[K, V]) Stats() (attempts, fastAborts, fastCommits, slowCommits uint64) {
	return h.stats.RangeFastAttempts.Load(),
		h.stats.RangeFastAborts.Load(),
		h.stats.RangeFastCommits.Load(),
		h.stats.RangeSlowCommits.Load()
}

// Point operations route to exactly one shard and inherit the skip
// hash's O(1) complexity untouched.

// Lookup returns the value associated with k.
func (h *Handle[K, V]) Lookup(k K) (V, bool) {
	ch, t, g := h.pointEnter(k)
	v, ok := ch.Lookup(k)
	h.pointExit(t, g)
	return v, ok
}

// Contains reports whether k is present.
func (h *Handle[K, V]) Contains(k K) bool {
	ch, t, g := h.pointEnter(k)
	ok := ch.Contains(k)
	h.pointExit(t, g)
	return ok
}

// Insert adds (k, v) if k is absent and reports whether it did.
func (h *Handle[K, V]) Insert(k K, v V) bool {
	ch, t, g := h.pointEnter(k)
	ok := ch.Insert(k, v)
	h.pointExit(t, g)
	return ok
}

// Remove deletes k and reports whether it was present.
func (h *Handle[K, V]) Remove(k K) bool {
	ch, t, g := h.pointEnter(k)
	ok := ch.Remove(k)
	h.pointExit(t, g)
	return ok
}

// Put sets k to v unconditionally, reporting whether a previous value
// was replaced. Replacement stays within one shard, so it is atomic in
// both modes.
func (h *Handle[K, V]) Put(k K, v V) bool {
	ch, t, g := h.pointEnter(k)
	ok := ch.Put(k, v)
	h.pointExit(t, g)
	return ok
}

// Point queries probe every shard and reduce. In shared mode the probes
// run inside one read-only transaction, so the answer is a snapshot; in
// isolated mode each shard is probed in its own transaction and the
// reduction is only as consistent as the probes' interleaving.

// Ceil returns the smallest key >= k and its value.
func (h *Handle[K, V]) Ceil(k K) (K, V, bool) {
	return h.reduce(k, false, func(op *core.Txn[K, V], k K) (K, V, bool) { return op.Ceil(k) })
}

// Succ returns the smallest key > k and its value.
func (h *Handle[K, V]) Succ(k K) (K, V, bool) {
	return h.reduce(k, false, func(op *core.Txn[K, V], k K) (K, V, bool) { return op.Succ(k) })
}

// Floor returns the largest key <= k and its value.
func (h *Handle[K, V]) Floor(k K) (K, V, bool) {
	return h.reduce(k, true, func(op *core.Txn[K, V], k K) (K, V, bool) { return op.Floor(k) })
}

// Pred returns the largest key < k and its value.
func (h *Handle[K, V]) Pred(k K) (K, V, bool) {
	return h.reduce(k, true, func(op *core.Txn[K, V], k K) (K, V, bool) { return op.Pred(k) })
}

// reduce runs the per-shard point query q against every authoritative
// shard and keeps the best answer (max when wantMax, min otherwise).
func (h *Handle[K, V]) reduce(k K, wantMax bool, q func(op *core.Txn[K, V], k K) (K, V, bool)) (K, V, bool) {
	s := h.s
	t, auth := h.authEnter()
	defer h.authExit(t)
	var bk K
	var bv V
	var bok bool
	keep := func(ck K, cv V) {
		if !bok || (wantMax && s.less(bk, ck)) || (!wantMax && s.less(ck, bk)) {
			bk, bv, bok = ck, cv, true
		}
	}
	if s.isolated {
		for _, i := range auth {
			hi := h.hs[i]
			var ck K
			var cv V
			var ok bool
			// The closure may re-execute after an abort; only its final
			// (committed) answer may reach the reduction, so the shard's
			// result lands in per-attempt locals and keep runs outside.
			_ = hi.Atomic(func(op *core.Txn[K, V]) error {
				ck, cv, ok = q(op, k)
				return nil
			})
			if ok {
				keep(ck, cv)
			}
		}
		return bk, bv, bok
	}
	_ = s.rt.Atomic(func(tx *stm.Tx) error {
		bok = false
		for _, i := range auth {
			if ck, cv, ok := q(h.hs[i].Bind(tx), k); ok {
				keep(ck, cv)
			}
		}
		return nil
	})
	return bk, bv, bok
}

// Range appends every pair with l <= key <= r, in key order, to out.
// In shared mode it reproduces the two-path scheme across shards: the
// fast path collects every shard's segment in one try-once transaction;
// the slow path registers a range op with every shard's RQC in one
// transaction (the query's linearization point) and then runs each
// shard's resumable safe-node traversal. In isolated mode each shard
// answers with its own two-path range and the merge is only per-shard
// snapshot consistent. During a resize the walk covers the
// authoritative shard set, held stable by the migration gates.
func (h *Handle[K, V]) Range(l, r K, out []Pair[K, V]) []Pair[K, V] {
	s := h.s
	t, auth := h.authEnter()
	defer h.authExit(t)
	if s.isolated || len(auth) == 1 {
		for _, i := range auth {
			h.segs[i] = h.hs[i].Range(l, r, h.segs[i][:0])
		}
		return h.merge(auth, out)
	}
	return core.TwoPathRange(t.maps[0].Config(), &h.stats, &h.adaptSkip,
		func() ([]Pair[K, V], error) { return h.rangeFast(auth, l, r, out) },
		func() []Pair[K, V] { return h.rangeSlow(auth, l, r, out) })
}

// rangeFast is the cross-shard fast path: one transaction that walks
// every shard's [l, r] segment and does not retry. Because all shards
// share one runtime, a commit means every segment belongs to the same
// snapshot.
func (h *Handle[K, V]) rangeFast(auth []int, l, r K, out []Pair[K, V]) ([]Pair[K, V], error) {
	err := h.s.rt.TryOnce(func(tx *stm.Tx) error {
		for _, i := range auth {
			h.segs[i] = h.hs[i].Bind(tx).Range(l, r, h.segs[i][:0])
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	return h.merge(auth, out), nil
}

// rangeSlow is the cross-shard slow path: registering with every
// shard's RQC in a single transaction pins every shard's version
// counter at one commit instant, so the per-shard safe-node traversals
// — each individually resumable — jointly reconstruct the snapshot at
// that instant.
func (h *Handle[K, V]) rangeSlow(auth []int, l, r K, out []Pair[K, V]) []Pair[K, V] {
	srs := make([]*core.SlowRange[K, V], len(auth))
	_ = h.s.rt.Atomic(func(tx *stm.Tx) error {
		for j, i := range auth {
			srs[j] = h.hs[i].Map().BeginSlowRangeTx(tx, h.hs[i], l)
		}
		return nil
	})
	for j, i := range auth {
		h.segs[i] = srs[j].Collect(r, h.segs[i][:0])
	}
	for j := range srs {
		srs[j].Finish()
	}
	return h.merge(auth, out)
}

// merge k-way merges the per-shard segment buffers of the given shard
// indices into out. Segments are sorted and pairwise disjoint (the
// authoritative shards partition the key space), so a linear selection
// per element suffices at the shard counts this package allows.
func (h *Handle[K, V]) merge(auth []int, out []Pair[K, V]) []Pair[K, V] {
	less := h.s.less
	idx := h.heads[:len(auth)]
	for j := range idx {
		idx[j] = 0
	}
	for {
		best := -1
		for j, i := range auth {
			if idx[j] >= len(h.segs[i]) {
				continue
			}
			if best < 0 || less(h.segs[i][idx[j]].Key, h.segs[auth[best]][idx[best]].Key) {
				best = j
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, h.segs[auth[best]][idx[best]])
		idx[best]++
	}
}
