package shard

import (
	"iter"
)

// mergeSeqs k-way merges sorted, pairwise-disjoint per-shard sequences
// into one sequence ordered by before. Each inner sequence is pulled
// lazily, so early termination by the consumer stops the per-shard
// iterators after at most one buffered chunk each.
func mergeSeqs[K comparable, V any](seqs []iter.Seq2[K, V], before func(a, b K) bool) iter.Seq2[K, V] {
	return func(yield func(K, V) bool) {
		nexts := make([]func() (K, V, bool), len(seqs))
		keys := make([]K, len(seqs))
		vals := make([]V, len(seqs))
		live := make([]bool, len(seqs))
		for i, seq := range seqs {
			next, stop := iter.Pull2(seq)
			defer stop()
			nexts[i] = next
			keys[i], vals[i], live[i] = next()
		}
		for {
			best := -1
			for i := range keys {
				if live[i] && (best < 0 || before(keys[i], keys[best])) {
					best = i
				}
			}
			if best < 0 {
				return
			}
			if !yield(keys[best], vals[best]) {
				return
			}
			keys[best], vals[best], live[best] = nexts[best]()
		}
	}
}

// All returns an iterator over every pair in ascending key order,
// k-way merged from per-shard iterators over the authoritative shard
// set. Each shard's stream is weakly consistent (assembled from chunked
// transactions, like core.Map.All), and the merged stream inherits that
// contract: it is sorted and duplicate-free — the authoritative shards
// partition the key space — but concurrent updates (including a resize
// cutting a region over after the iterator captured its shard set) may
// be observed mid-iteration or missed.
func (s *Sharded[K, V]) All() iter.Seq2[K, V] {
	maps := s.authMaps()
	seqs := make([]iter.Seq2[K, V], len(maps))
	for i, m := range maps {
		seqs[i] = m.All()
	}
	return mergeSeqs(seqs, s.less)
}

// Backward returns a weakly consistent iterator over every pair in
// descending key order; see All for the consistency contract.
func (s *Sharded[K, V]) Backward() iter.Seq2[K, V] {
	maps := s.authMaps()
	seqs := make([]iter.Seq2[K, V], len(maps))
	for i, m := range maps {
		seqs[i] = m.Backward()
	}
	return mergeSeqs(seqs, func(a, b K) bool { return s.less(b, a) })
}

// AscendFrom visits pairs with key >= from in ascending order until fn
// returns false; see All for the consistency contract.
func (s *Sharded[K, V]) AscendFrom(from K, fn func(k K, v V) bool) {
	maps := s.authMaps()
	seqs := make([]iter.Seq2[K, V], len(maps))
	for i, m := range maps {
		seqs[i] = func(yield func(K, V) bool) { m.AscendFrom(from, yield) }
	}
	mergeSeqs(seqs, s.less)(fn)
}

// DescendFrom visits pairs with key <= from in descending order until
// fn returns false; see All for the consistency contract.
func (s *Sharded[K, V]) DescendFrom(from K, fn func(k K, v V) bool) {
	maps := s.authMaps()
	seqs := make([]iter.Seq2[K, V], len(maps))
	for i, m := range maps {
		seqs[i] = func(yield func(K, V) bool) { m.DescendFrom(from, yield) }
	}
	mergeSeqs(seqs, func(a, b K) bool { return s.less(b, a) })(fn)
}
