package shard

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// This file is the live resharding engine. Resize(n) migrates keys
// between core.Map shards while reads and writes keep serving:
//
//   - The routing state (shard list + shift) lives in an immutable
//     route table swapped atomically; every operation pins the table it
//     routes through on a striped counter, so a swap can wait for the
//     stragglers that loaded the previous table (an RCU grace period).
//   - A migration splits the hash space into min(old, new) groups —
//     growing maps one old shard onto a run of new shards, shrinking
//     maps a run of old shards onto one new shard — each with its own
//     reader/writer gate and cutover flag, so the router sends every
//     key to exactly one authoritative shard at every instant.
//   - Per group: a write tap is armed on the sources under a drained
//     gate (from then on every committed write reports, in commit-stamp
//     order, to the group's delta log), the sources are copied through
//     bounded snapshot-chunk transactions, the delta log is drained in
//     catch-up rounds, and the final tail is replayed under the gate
//     before the group's routing flips to the destinations. Replaying
//     the whole delta in commit order converges every key to its latest
//     committed value, so no per-key stamp bookkeeping is needed.
//   - In shared-clock mode all shards live in one timestamp domain and
//     multi-shard operations hold every gate, so the migration is
//     invisible to linearizability; in isolated mode shards migrate
//     group by group with per-group cutover and the usual per-shard
//     consistency contract.
//
// Sources keep their keys until the whole resize completes; retired
// shards are then closed wholesale and their counters banked.

const (
	// resizeChunk is the snapshot-chunk size of the copy phase; it
	// bounds both the consistent-read transactions on the sources and
	// (together with resizeCopyBatch) the insert transactions on the
	// destinations.
	resizeChunk = 512
	// resizeCopyBatch bounds one destination insert transaction.
	resizeCopyBatch = 128
	// resizeCutoverTail is the delta backlog below which the migrator
	// stops catch-up rounds and takes the gate: the write pause is
	// bounded by one small tail replay.
	resizeCutoverTail = 256
	// resizeMaxDrainRounds caps catch-up rounds so a write-heavy group
	// cannot postpone its cutover forever.
	resizeMaxDrainRounds = 16
)

// pinStripes is the width of each route table's pin counter. Handles
// spread over the stripes at construction, so steady-state operations
// pay two uncontended atomic adds, not one shared cacheline.
const pinStripes = 32

type pinCounter struct {
	n atomic.Int64
	_ [56]byte // pad to a cacheline so stripes never false-share
}

// route is one immutable routing state. maps holds every core.Map an
// operation may touch under this table: the steady shards, plus —
// during a migration — the destination shards being populated.
type route[K comparable, V any] struct {
	maps  []*core.Map[K, V]
	shift uint // steady routing: maps[mixed>>shift]
	// mig is non-nil while a resize is in flight; routing then goes
	// through the per-group cutover flags instead of shift.
	mig        *migration[K, V]
	steadyAuth []int // 0..len(maps)-1 when mig == nil
	pins       [pinStripes]pinCounter
}

// migration is the in-flight state of one Resize call.
type migration[K comparable, V any] struct {
	oldN, newN int
	newBase    int // maps[newBase+j] is destination shard j
	oldShift   uint
	newShift   uint
	groups     int
	groupShift uint
	// gates serialize each group's cutover against its in-flight
	// operations: every operation holds its key's group gate (multi-
	// shard operations hold all of them) in read mode for its duration.
	gates []sync.RWMutex
	done  []atomic.Bool
	// mu guards the per-group delta logs the write taps append to.
	// Appends happen inside commits (ownership records held), so each
	// log is in per-key commit order.
	mu    sync.Mutex
	delta [][]deltaOp[K, V]
	// bufs and dbufs are the per-destination buffers of the chunk
	// copier and the delta replayer (only the migrator goroutine
	// touches them).
	bufs  [][]Pair[K, V]
	dbufs [][]deltaOp[K, V]
}

type deltaOp[K comparable, V any] struct {
	del bool
	k   K
	v   V
}

// mix spreads the user hash before routing; the top bits pick shards
// and groups.
func mix(h uint64) uint64 { return h * 0x9e3779b97f4a7c15 }

func shiftFor(n int) uint { return uint(64 - bits.TrailingZeros(uint(n))) }

func newSteadyRoute[K comparable, V any](shards []*core.Map[K, V]) *route[K, V] {
	t := &route[K, V]{
		maps:       shards,
		shift:      shiftFor(len(shards)),
		steadyAuth: make([]int, len(shards)),
	}
	for i := range t.steadyAuth {
		t.steadyAuth[i] = i
	}
	return t
}

// idxFor returns the maps index of the authoritative shard for mixed.
// During a migration the caller must hold the key's group gate for the
// answer to stay authoritative while it is used.
func (t *route[K, V]) idxFor(mixed uint64) int {
	if m := t.mig; m != nil {
		if m.done[mixed>>m.groupShift].Load() {
			return m.newBase + int(mixed>>m.newShift)
		}
		return int(mixed >> m.oldShift)
	}
	return int(mixed >> t.shift)
}

func (m *migration[K, V]) groupOf(mixed uint64) int { return int(mixed >> m.groupShift) }

// destFor returns the maps index of the destination shard for mixed,
// regardless of the group's cutover state (the copy and replay paths
// always write to destinations).
func (m *migration[K, V]) destFor(mixed uint64) int {
	return m.newBase + int(mixed>>m.newShift)
}

// sourceIndices returns the maps indices of group g's source shards.
func (m *migration[K, V]) sourceIndices(g int) []int {
	per := m.oldN / m.groups
	idx := make([]int, per)
	for i := range idx {
		idx[i] = g*per + i
	}
	return idx
}

// authIndices appends the authoritative maps indices — the shard set
// that covers the key space exactly once — to buf. The caller holds
// every group gate.
func (m *migration[K, V]) authIndices(buf []int) []int {
	oldPer := m.oldN / m.groups
	newPer := m.newN / m.groups
	for g := 0; g < m.groups; g++ {
		if m.done[g].Load() {
			for j := 0; j < newPer; j++ {
				buf = append(buf, m.newBase+g*newPer+j)
			}
		} else {
			for j := 0; j < oldPer; j++ {
				buf = append(buf, g*oldPer+j)
			}
		}
	}
	return buf
}

// takeDelta swaps out group g's delta log.
func (m *migration[K, V]) takeDelta(g int) []deltaOp[K, V] {
	m.mu.Lock()
	d := m.delta[g]
	m.delta[g] = nil
	m.mu.Unlock()
	return d
}

// enter pins the current route table on the caller's stripe and returns
// it; the table cannot be retired until exit. The pin-then-recheck loop
// closes the race with a concurrent swap: if the recheck still observes
// the pinned table, the swapper's grace scan is ordered after the pin.
func (s *Sharded[K, V]) enter(stripe uint32) *route[K, V] {
	for {
		t := s.tab.Load()
		t.pins[stripe].n.Add(1)
		if s.tab.Load() == t {
			return t
		}
		t.pins[stripe].n.Add(-1)
	}
}

func (s *Sharded[K, V]) exit(t *route[K, V], stripe uint32) {
	t.pins[stripe].n.Add(-1)
}

// grace waits for every operation pinning t to finish. Transient pins
// from the enter retry loop may flicker the sum, but any operation that
// keeps its pin observed t as current before the swap.
func (s *Sharded[K, V]) grace(t *route[K, V]) {
	for {
		var total int64
		for i := range t.pins {
			total += t.pins[i].n.Load()
		}
		if total == 0 {
			return
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// ResizeHooks lets the durable open path participate in live
// resharding when every shard owns a private durability engine
// (isolated mode). Provision attaches a fresh engine to destination
// shard idx (of newN) before the copy begins; Commit durably records
// the new shard count and retires the old per-shard state after every
// group has cut over; Abort cleans up provisioned state when a later
// Provision call fails. All fields may be nil (non-durable maps, and
// shared-mode durable maps, whose single WAL needs no per-shard work).
type ResizeHooks[K comparable, V any] struct {
	Provision func(idx, newN int, m *core.Map[K, V]) error
	Commit    func(oldN, newN int) error
	Abort     func(newN int)
}

// SetResizeHooks installs the durability hooks Resize calls; see
// ResizeHooks. Must be set before Resize is used, from the open path.
func (s *Sharded[K, V]) SetResizeHooks(h ResizeHooks[K, V]) { s.hooks = h }

// ResizeStats are cumulative live-resharding counters.
type ResizeStats struct {
	// Resizes counts completed Resize calls that changed the count.
	Resizes uint64
	// KeysCopied counts pairs copied by the snapshot-chunk handoff.
	KeysCopied uint64
	// DeltaApplied counts tapped writes replayed onto destinations.
	DeltaApplied uint64
	// Cutovers counts per-group authority flips.
	Cutovers uint64
}

// ResizeStats returns the cumulative resharding counters.
func (s *Sharded[K, V]) ResizeStats() ResizeStats {
	return ResizeStats{
		Resizes:      s.rsResizes.Load(),
		KeysCopied:   s.rsKeysCopied.Load(),
		DeltaApplied: s.rsDeltaApplied.Load(),
		Cutovers:     s.rsCutovers.Load(),
	}
}

// Resizing reports whether a resize is in flight.
func (s *Sharded[K, V]) Resizing() bool { return s.tab.Load().mig != nil }

// SetResizeObserver installs fn to receive every group cutover: the
// group index, the size of the final delta tail replayed under the
// gate, and the gate hold time (the write pause the cutover imposed).
// The embedding layer points it at a latency histogram.
func (s *Sharded[K, V]) SetResizeObserver(fn func(group, tail int, d time.Duration)) {
	s.resizeObs.Store(&fn)
}

// Resize live-migrates the map to n shards (normalized like
// Config.Shards: clamped to a power of two in [1, 256], zero derives
// from GOMAXPROCS) and returns the resulting count. Reads and writes
// keep serving throughout; each group of the hash space pauses writes
// only for its final delta-tail replay at cutover. Resize calls are
// serialized with each other and with Close. Once the copy phase has
// begun the in-memory migration always completes; durability errors
// from the hooks are returned but do not stop the cutovers.
func (s *Sharded[K, V]) Resize(n int) (int, error) {
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	if s.closed.Load() {
		return 0, errors.New("shard: resize on closed map")
	}
	old := s.tab.Load()
	oldN := len(old.maps)
	n = normalizeShards(n)
	if n == oldN {
		return n, nil
	}

	// Phase A — build destination shards (and their durability, via the
	// provision hook); any failure here rolls back completely.
	per := perShardConfig(s.baseCfg, n)
	newShards := make([]*core.Map[K, V], n)
	for i := range newShards {
		if s.isolated {
			newShards[i] = core.New[K, V](s.less, s.hash, per)
		} else {
			newShards[i] = core.NewIn[K, V](s.rt, s.less, s.hash, per)
			if s.logger != nil {
				newShards[i].AttachPersistence(s.logger, nil)
			}
		}
	}
	s.mu.Lock()
	maintObs, commitObs := s.maintObs, s.commitObs
	s.mu.Unlock()
	for _, m := range newShards {
		if maintObs != nil {
			m.SetMaintenanceObserver(maintObs)
		}
		if s.isolated && commitObs != nil {
			m.Runtime().SetCommitObserver(commitObs)
		}
	}
	if s.hooks.Provision != nil {
		for i, m := range newShards {
			if err := s.hooks.Provision(i, n, m); err != nil {
				for _, d := range newShards {
					d.Close()
				}
				if s.hooks.Abort != nil {
					s.hooks.Abort(n)
				}
				return oldN, fmt.Errorf("shard: provisioning destination shard %d of %d: %w", i, n, err)
			}
		}
	}

	// Install the migration table and wait out operations still routing
	// through the steady table; from here on every operation holds its
	// group gate, which is what arms the taps race-free.
	groups := oldN
	if n < groups {
		groups = n
	}
	mig := &migration[K, V]{
		oldN:       oldN,
		newN:       n,
		newBase:    oldN,
		oldShift:   old.shift,
		newShift:   shiftFor(n),
		groups:     groups,
		groupShift: shiftFor(groups),
		gates:      make([]sync.RWMutex, groups),
		done:       make([]atomic.Bool, groups),
		delta:      make([][]deltaOp[K, V], groups),
		bufs:       make([][]Pair[K, V], n),
		dbufs:      make([][]deltaOp[K, V], n),
	}
	maps := make([]*core.Map[K, V], 0, oldN+n)
	maps = append(maps, old.maps...)
	maps = append(maps, newShards...)
	migTab := &route[K, V]{maps: maps, shift: old.shift, mig: mig}
	s.tab.Store(migTab)
	s.grace(old)

	// Phase B — migrate group by group. Errors (durable snapshot reads)
	// are collected; routing must still reach the new steady state.
	var firstErr error
	for g := 0; g < groups; g++ {
		if err := s.migrateGroup(migTab, g); err != nil && firstErr == nil {
			firstErr = err
		}
	}

	steady := newSteadyRoute(newShards)
	s.tab.Store(steady)
	s.grace(migTab)
	s.retireShards(old.maps)
	if s.hooks.Commit != nil {
		if err := s.hooks.Commit(oldN, n); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.rsResizes.Add(1)
	return n, firstErr
}

// migrateGroup runs one group's tap/copy/drain/cutover sequence.
func (s *Sharded[K, V]) migrateGroup(t *route[K, V], g int) error {
	m := t.mig
	srcs := m.sourceIndices(g)

	// Arm the delta taps under a drained gate: in-flight writers finish
	// before the tap is visible, and every writer admitted after the
	// gate reopens reports its commit, so chunk ∪ delta covers the
	// group with nothing in between.
	m.gates[g].Lock()
	for _, i := range srcs {
		t.maps[i].SetWriteTap(func(del bool, k K, v V, _ uint64) {
			m.mu.Lock()
			m.delta[g] = append(m.delta[g], deltaOp[K, V]{del: del, k: k, v: v})
			m.mu.Unlock()
		})
	}
	m.gates[g].Unlock()

	// Copy phase: chunked consistent reads from each source, batched
	// Put transactions into the destinations. A copied value may be
	// stale by the time it lands; the commit-ordered delta replay below
	// rewrites every key written since the tap, so the group converges.
	var copyErr error
	for _, i := range srcs {
		err := t.maps[i].SnapshotChunks(resizeChunk, func(_ uint64, pairs []Pair[K, V]) error {
			s.copyChunk(t, pairs)
			return nil
		})
		if err != nil && copyErr == nil {
			copyErr = err
		}
	}

	// Catch-up rounds shrink the delta backlog without blocking
	// writers; the final tail is replayed under the gate so the flip to
	// the destinations is atomic with the last write landing. Rounds
	// stop as soon as the backlog is small, stops shrinking, or the cap
	// is hit — a write rate above the replay rate can never be drained
	// without the gate, so chasing it only grows the tail.
	prev := -1
	for round := 0; ; round++ {
		batch := m.takeDelta(g)
		s.applyDelta(t, batch)
		if len(batch) < resizeCutoverTail || round >= resizeMaxDrainRounds ||
			(prev >= 0 && len(batch) >= prev) {
			break
		}
		prev = len(batch)
	}
	began := time.Now()
	m.gates[g].Lock()
	tail := m.takeDelta(g)
	s.applyDelta(t, tail)
	for _, i := range srcs {
		t.maps[i].ClearWriteTap()
	}
	m.done[g].Store(true)
	m.gates[g].Unlock()
	s.rsCutovers.Add(1)
	if obs := s.resizeObs.Load(); obs != nil {
		(*obs)(g, len(tail), time.Since(began))
	}
	return copyErr
}

// copyChunk routes one snapshot chunk's pairs into the per-destination
// buffers, flushing each as a bounded Put transaction.
func (s *Sharded[K, V]) copyChunk(t *route[K, V], pairs []Pair[K, V]) {
	m := t.mig
	for _, p := range pairs {
		j := int(mix(s.hash(p.Key)) >> m.newShift)
		m.bufs[j] = append(m.bufs[j], p)
		if len(m.bufs[j]) >= resizeCopyBatch {
			s.flushCopy(t, j)
		}
	}
	for j := range m.bufs {
		if len(m.bufs[j]) > 0 {
			s.flushCopy(t, j)
		}
	}
}

func (s *Sharded[K, V]) flushCopy(t *route[K, V], j int) {
	m := t.mig
	buf := m.bufs[j]
	_ = t.maps[m.newBase+j].Atomic(func(op *core.Txn[K, V]) error {
		for _, p := range buf {
			op.Put(p.Key, p.Val)
		}
		return nil
	})
	s.rsKeysCopied.Add(uint64(len(buf)))
	m.bufs[j] = buf[:0]
}

// applyDelta replays tapped writes onto the destinations. Ops are
// bucketed per destination and flushed as bounded transactions: a key
// always lands on the same destination, so per-destination order is
// per-key commit order, which is all convergence needs.
func (s *Sharded[K, V]) applyDelta(t *route[K, V], ops []deltaOp[K, V]) {
	m := t.mig
	for _, op := range ops {
		j := int(mix(s.hash(op.k)) >> m.newShift)
		m.dbufs[j] = append(m.dbufs[j], op)
		if len(m.dbufs[j]) >= resizeCopyBatch {
			s.flushDelta(t, j)
		}
	}
	for j := range m.dbufs {
		if len(m.dbufs[j]) > 0 {
			s.flushDelta(t, j)
		}
	}
	s.rsDeltaApplied.Add(uint64(len(ops)))
}

func (s *Sharded[K, V]) flushDelta(t *route[K, V], j int) {
	m := t.mig
	buf := m.dbufs[j]
	_ = t.maps[m.newBase+j].Atomic(func(op *core.Txn[K, V]) error {
		for _, d := range buf {
			if d.del {
				op.Remove(d.k)
			} else {
				op.Put(d.k, d.v)
			}
		}
		return nil
	})
	m.dbufs[j] = buf[:0]
}

// retireShards closes resized-away shards and banks their counters into
// the retired accumulators, so stats never go backwards across a
// resize.
func (s *Sharded[K, V]) retireShards(old []*core.Map[K, V]) {
	for _, m := range old {
		m.Close()
	}
	s.mu.Lock()
	for _, m := range old {
		if s.isolated {
			st := m.Runtime().Stats()
			s.retiredSTM.Commits += st.Commits
			s.retiredSTM.ReadOnlyCommits += st.ReadOnlyCommits
			s.retiredSTM.Aborts += st.Aborts
			s.retiredSTM.UserErrors += st.UserErrors
			s.retiredSTM.FastReadHits += st.FastReadHits
			s.retiredSTM.FastReadFallbacks += st.FastReadFallbacks
		}
		rs := m.RangeStats()
		s.retiredRange.FastAttempts += rs.FastAttempts
		s.retiredRange.FastAborts += rs.FastAborts
		s.retiredRange.FastCommits += rs.FastCommits
		s.retiredRange.SlowCommits += rs.SlowCommits
		s.retiredMaint = s.retiredMaint.Add(m.MaintenanceStats())
	}
	s.mu.Unlock()
}
