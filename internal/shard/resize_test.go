package shard_test

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// TestResizeSequential grows and shrinks an idle map and checks that
// every key survives each migration, the live count is reported, and
// the partition invariant holds at the new geometry.
func TestResizeSequential(t *testing.T) {
	for _, isolated := range []bool{false, true} {
		t.Run(fmt.Sprintf("isolated=%v", isolated), func(t *testing.T) {
			s := newInt64(core.Config{Shards: 2, IsolatedShards: isolated, Buckets: 4096})
			defer s.Close()
			const n = 4096
			for k := int64(0); k < n; k++ {
				s.Insert(k, k*3)
			}
			for _, target := range []int{8, 3, 1, 16, 2} {
				got, err := s.Resize(target)
				if err != nil {
					t.Fatalf("Resize(%d): %v", target, err)
				}
				want := target
				if want == 3 {
					want = 4 // rounded up to a power of two
				}
				if got != want || s.Shards() != want {
					t.Fatalf("Resize(%d) = %d, Shards() = %d, want %d", target, got, s.Shards(), want)
				}
				if sz := s.SizeSlow(); sz != n {
					t.Fatalf("after Resize(%d): size %d, want %d", target, sz, n)
				}
				for k := int64(0); k < n; k += 97 {
					if v, ok := s.Lookup(k); !ok || v != k*3 {
						t.Fatalf("after Resize(%d): Lookup(%d) = %d, %v", target, k, v, ok)
					}
				}
				if err := s.CheckInvariants(core.CheckOptions{}); err != nil {
					t.Fatalf("after Resize(%d): %v", target, err)
				}
			}
			st := s.ResizeStats()
			if st.Resizes != 5 || st.KeysCopied == 0 || st.Cutovers == 0 {
				t.Fatalf("resize stats %+v: want 5 resizes with copies and cutovers", st)
			}
		})
	}
}

// TestResizeNoop covers the degenerate arguments: resizing to the
// current count is a no-op, and Resize reports the normalized count.
func TestResizeNoop(t *testing.T) {
	s := newInt64(core.Config{Shards: 4, Buckets: 1024})
	defer s.Close()
	if got, err := s.Resize(4); err != nil || got != 4 {
		t.Fatalf("Resize(4) = %d, %v", got, err)
	}
	if st := s.ResizeStats(); st.Resizes != 0 {
		t.Fatalf("no-op resize counted: %+v", st)
	}
	if got, err := s.Resize(5); err != nil || got != 8 {
		t.Fatalf("Resize(5) = %d, %v; want normalized 8", got, err)
	}
}

// TestResizeUnderLoad runs writers over disjoint key stripes while a
// resizer cycles the shard count up and down. Each writer knows exactly
// what its keys hold at every instant, so any routing gap — a key
// answered by a shard that is no longer (or not yet) authoritative —
// surfaces as a wrong read. Runs in both sharing modes; point ops are
// single-shard in both, so the full op mix applies.
func TestResizeUnderLoad(t *testing.T) {
	for _, isolated := range []bool{false, true} {
		t.Run(fmt.Sprintf("isolated=%v", isolated), func(t *testing.T) {
			s := newInt64(core.Config{Shards: 4, IsolatedShards: isolated, Buckets: 4096})
			defer s.Close()

			const writers = 4
			const stripe = 256
			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, writers+1)

			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := s.NewHandle()
					defer h.Close()
					rng := rand.New(rand.NewPCG(uint64(w), 42))
					present := make(map[int64]int64, stripe)
					for !stop.Load() {
						k := int64(w*stripe) + int64(rng.IntN(stripe))
						switch rng.IntN(4) {
						case 0:
							v := rng.Int64()
							h.Put(k, v)
							present[k] = v
						case 1:
							h.Remove(k)
							delete(present, k)
						default:
							v, ok := h.Lookup(k)
							wantV, wantOK := present[k]
							if ok != wantOK || (ok && v != wantV) {
								errs <- fmt.Errorf("writer %d: Lookup(%d) = (%d,%v), want (%d,%v)",
									w, k, v, ok, wantV, wantOK)
								return
							}
						}
					}
				}(w)
			}

			wg.Add(1)
			go func() {
				defer wg.Done()
				counts := []int{8, 2, 16, 1, 4}
				for i := 0; i < 10; i++ {
					if _, err := s.Resize(counts[i%len(counts)]); err != nil {
						errs <- fmt.Errorf("resize: %v", err)
						return
					}
				}
				stop.Store(true)
			}()

			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			s.Quiesce()
			if err := s.CheckInvariants(core.CheckOptions{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestResizeRangeStability keeps a fixed set of anchor keys in the map
// while resizes run, and checks that every full-range scan sees each
// anchor exactly once — a duplicated or dropped anchor means a scan
// observed a half-migrated region on both (or neither) side.
func TestResizeRangeStability(t *testing.T) {
	for _, isolated := range []bool{false, true} {
		t.Run(fmt.Sprintf("isolated=%v", isolated), func(t *testing.T) {
			s := newInt64(core.Config{Shards: 8, IsolatedShards: isolated, Buckets: 4096})
			defer s.Close()
			const anchors = 512
			for k := int64(0); k < anchors; k++ {
				s.Insert(k*2, k) // even keys are anchors, never touched again
			}
			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, 3)

			wg.Add(1)
			go func() { // churn odd keys so migrations have live traffic
				defer wg.Done()
				h := s.NewHandle()
				defer h.Close()
				rng := rand.New(rand.NewPCG(7, 7))
				for !stop.Load() {
					k := int64(rng.IntN(anchors))*2 + 1
					if rng.IntN(2) == 0 {
						h.Put(k, k)
					} else {
						h.Remove(k)
					}
				}
			}()

			wg.Add(1)
			go func() { // scan continuously
				defer wg.Done()
				h := s.NewHandle()
				defer h.Close()
				var buf []shard.Pair[int64, int64]
				for !stop.Load() {
					buf = h.Range(0, anchors*2, buf[:0])
					seen := 0
					last := int64(-1)
					for _, p := range buf {
						if p.Key <= last {
							errs <- fmt.Errorf("range out of order or duplicate: %d after %d", p.Key, last)
							return
						}
						last = p.Key
						if p.Key%2 == 0 {
							seen++
						}
					}
					if seen != anchors {
						errs <- fmt.Errorf("range saw %d anchors, want %d", seen, anchors)
						return
					}
				}
			}()

			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, n := range []int{2, 16, 1, 8, 4, 32, 8} {
					if _, err := s.Resize(n); err != nil {
						errs <- err
						return
					}
				}
				stop.Store(true)
			}()

			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestResizeAtomicBatches runs multi-key read-modify-write batches in
// shared mode while resizing: two counters must always move in
// lockstep, which only holds if batches stay atomic across shard
// boundaries that are themselves moving.
func TestResizeAtomicBatches(t *testing.T) {
	s := newInt64(core.Config{Shards: 2, Buckets: 1024})
	defer s.Close()
	const pairs = 16
	for k := int64(0); k < pairs*2; k++ {
		s.Insert(k, 0)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 3)

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewPCG(uint64(w), 11))
			for !stop.Load() {
				a := int64(rng.IntN(pairs))
				err := h.Atomic(func(op *shard.Txn[int64, int64]) error {
					va, _ := op.Lookup(a)
					vb, _ := op.Lookup(a + pairs)
					if va != vb {
						return fmt.Errorf("pair %d torn: %d vs %d", a, va, vb)
					}
					op.Put(a, va+1)
					op.Put(a+pairs, vb+1)
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, n := range []int{8, 1, 4, 16, 2} {
			if _, err := s.Resize(n); err != nil {
				errs <- err
				return
			}
		}
		stop.Store(true)
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for a := int64(0); a < pairs; a++ {
		va, _ := s.Lookup(a)
		vb, _ := s.Lookup(a + pairs)
		if va != vb {
			t.Fatalf("pair %d torn after quiesce: %d vs %d", a, va, vb)
		}
	}
}

// TestResizeObserver checks the cutover observer fires once per group
// and that Resizing reverts to false once the migration retires.
func TestResizeObserver(t *testing.T) {
	s := newInt64(core.Config{Shards: 4, Buckets: 1024})
	defer s.Close()
	for k := int64(0); k < 1024; k++ {
		s.Insert(k, k)
	}
	var cutovers atomic.Int64
	s.SetResizeObserver(func(group, tail int, d time.Duration) { cutovers.Add(1) })
	if _, err := s.Resize(8); err != nil {
		t.Fatal(err)
	}
	if got := cutovers.Load(); got != 4 { // groups = min(4, 8)
		t.Fatalf("observer fired %d times, want 4", got)
	}
	if s.Resizing() {
		t.Fatal("Resizing() still true after Resize returned")
	}
}
