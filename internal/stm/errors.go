package stm

import "errors"

// ErrAborted is returned by Runtime.TryOnce when the single attempt
// aborted due to a conflict. Runtime.Atomic never returns it: conflicts
// there are resolved by retrying.
var ErrAborted = errors.New("stm: transaction aborted")

// txAbort is the sentinel panic value used to unwind a conflicting
// transaction out of the user closure. It never escapes the package.
type txAbort struct{}
