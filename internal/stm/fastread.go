package stm

import "sync/atomic"

// Optimistic non-transactional reads. The paper's §2.2 observes that a
// read-only transaction should cost almost nothing; a single-orec point
// read can go further and skip the transaction machinery entirely. The
// protocol is the classic sampled-word validation (a seqlock with the
// orec as the sequence word): sample the orec, fail if a writer holds
// it, read the guarded fields directly through their atomic backing,
// then revalidate that the word is unchanged. Any transaction that
// commits a change to the guarded object in between bumps the word to a
// fresh (strictly increasing) version, and any in-flight writer sets
// the lock bit, so a validated read observed exactly one committed
// state — the one current at the sample instant, which is therefore the
// read's linearization point.
//
// No clock sample is needed: a transaction's start timestamp exists to
// make reads of *multiple* orecs mutually consistent, and a point read
// validates exactly one. Skipping the clock keeps the hit path free of
// the commit clock entirely (on the monotonic clock, that is a nanotime
// call per read).
//
// The one caveat is shared with the transactional readOrec/postRead
// pair: a full acquire→write→rollback cycle completing entirely inside
// the sample window restores the pre-acquire word and is invisible to
// revalidation (see the package comment's abort-ABA note). The fast
// path is therefore exactly as exposed as a read-only transaction, no
// more. On any failed sample or revalidation the caller falls back to a
// full transaction, which remains the source of truth for
// linearizability; the fast path never acquires an orec and never
// writes shared memory, so a fallback costs one wasted walk and nothing
// else.
//
// OrecSample is a plain value (no atomics, no locks): it may be copied
// freely and kept on the stack, keeping the hit path allocation-free.

// OrecSample is the observed word of one orec, to be revalidated after
// the dependent field reads with Valid.
type OrecSample struct {
	o *Orec
	w orecWord
}

// Sample records o's current word for an optimistic read. It fails —
// the caller must fall back to a transaction — when the orec is locked
// by an in-flight writer.
func (o *Orec) Sample() (OrecSample, bool) {
	w := o.load()
	if w.locked() {
		return OrecSample{}, false
	}
	return OrecSample{o: o, w: w}, true
}

// Valid reports whether the orec's word is unchanged since Sample: any
// commit in between released the orec at a strictly newer version, and
// any in-flight acquire set the lock bit, so word equality means every
// field read between Sample and Valid belongs to the single committed
// state that was current at the sample instant.
func (s OrecSample) Valid() bool {
	return s.o != nil && s.o.load() == s.w
}

// fastStripeCount is the number of striped fast-read counter cells per
// runtime; a power of two so assignment is a cheap mask.
const fastStripeCount = 64

// FastReadCounters is one cacheline-padded cell of fast-path counters.
// Handles obtain a cell from Runtime.FastReadCounters and bump it on
// every fast-path outcome; Runtime.Stats sums the cells. Striping (rather
// than per-descriptor counters) keeps the hit path free of the descriptor
// pool entirely.
type FastReadCounters struct {
	hits      atomic.Uint64
	fallbacks atomic.Uint64
	_         [48]byte // pad to a cache line
}

// Hit counts a point read answered on the fast path (no transaction, no
// orec acquired).
func (c *FastReadCounters) Hit() { c.hits.Add(1) }

// Fallback counts a fast-path attempt that observed a locked orec or a
// failed revalidation and fell back to a full transaction.
func (c *FastReadCounters) Fallback() { c.fallbacks.Add(1) }

// FastReadCounters hands out a striped counter cell. Callers (one per
// handle, typically) keep the returned pointer for their lifetime;
// round-robin assignment spreads unrelated handles across cells.
func (rt *Runtime) FastReadCounters() *FastReadCounters {
	i := rt.fastStripeNext.Add(1)
	return &rt.fastStripes[i%fastStripeCount]
}

// sumFastReads adds every stripe's counters into s.
func (rt *Runtime) sumFastReads(s *Stats) {
	for i := range rt.fastStripes {
		s.FastReadHits += rt.fastStripes[i].hits.Load()
		s.FastReadFallbacks += rt.fastStripes[i].fallbacks.Load()
	}
}
