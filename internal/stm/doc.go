// Package stm implements a software transactional memory (STM) runtime in
// the style assumed by the skip hash paper: ownership records (orecs)
// co-located with the objects they protect, encounter-time (eager) lock
// acquisition, undo logging, and a global commit clock.
//
// The design follows the principles the paper attributes to modern STM
// systems (exoTM, TinySTM, TL2 and friends):
//
//   - Orec-based conflict detection. Every protected object embeds an
//     Orec, a single 64-bit word that is either a commit version (even)
//     or a lock owned by a transaction (odd).
//   - Eager acquire with undo logging. Writers take ownership of an orec
//     on first write and mutate fields in place, recording undo actions.
//     Aborts replay the undo log and release ownership at the old version.
//   - No timestamp extension. A read or acquisition of an orec whose
//     version is newer than the transaction's start time aborts the
//     transaction (the paper selects exoTM's eager/undo algorithm
//     "without timestamp extension" for its lowest latency).
//   - Cheap read-only transactions. Each read is validated individually
//     against the start time, so a transaction that never writes commits
//     with no further work and linearizes at its start.
//   - Pluggable global clocks. GV1 (fetch-and-add), GV5 (lazy), and a
//     monotonic wall-clock source that stands in for the paper's rdtscp
//     hardware clock (see Clock).
//
// # Using the package
//
// Shared mutable state lives in transactional fields (Ptr, U64, Bool)
// guarded by an Orec that the enclosing object embeds:
//
//	type account struct {
//	    orec    stm.Orec
//	    balance stm.U64
//	}
//
//	rt := stm.New()
//	err := rt.Atomic(func(tx *stm.Tx) error {
//	    b := from.balance.Load(tx, &from.orec)
//	    from.balance.Store(tx, &from.orec, b-10)
//	    t := to.balance.Load(tx, &to.orec)
//	    to.balance.Store(tx, &to.orec, t+10)
//	    return nil
//	})
//
// Atomic retries the closure until it commits. TryOnce attempts a single
// execution and reports ErrAborted on conflict, which implements the
// paper's atomic(try_once) block used by fast-path range queries. Local
// variables captured by the closure are never rolled back, which is
// exactly the paper's atomic(no_local_undo) semantics.
//
// Transactions abort by panicking with an internal sentinel that the
// runtime recovers; user code never observes it. A non-nil error returned
// from the closure rolls the transaction back and is returned to the
// caller without retrying.
//
// # Optimistic non-transactional reads
//
// A point read guarded by a single orec can bypass transactions and the
// commit clock entirely: sample the orec's word (Orec.Sample, which
// rejects a locked word), read fields through their atomic backing, then
// revalidate that the word is unchanged (OrecSample.Valid). Start
// timestamps exist to make reads of multiple orecs mutually consistent;
// with exactly one orec, word equality across the read already proves
// the walk observed the single committed state current at the sample
// instant — any commit in between releases the orec at a strictly newer
// version — so the read linearizes at its sample. The fallback invariant
// is that the fast path must be exactly as strong as — and no stronger
// than — a read-only transaction: Sample rejects in-flight writers like
// the transactional readOrec, Valid applies the same word-unchanged
// check as postRead, and any failure routes the caller to a full
// transaction, which stays the source of truth for linearizability. In
// particular, both paths share the same narrow acquire/write/rollback
// window (an abort restores the pre-acquire orec word, so a writer's
// entire lifetime fitting between Sample and Valid is indistinguishable
// from no writer at all); the fast path deliberately does not try to
// close a hole the transactional read protocol itself has, it only
// mirrors it. Fast reads never acquire an orec, never write shared
// memory, and are counted per runtime (Stats.FastReadHits /
// Stats.FastReadFallbacks).
package stm
