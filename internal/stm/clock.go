package stm

import (
	"sync/atomic"
	"time"
)

// Clock is the global commit clock used to order transactions. The paper
// evaluates three options for the skip hash (§5.1): the gv1 fetch-and-add
// counter, the gv5 lazy counter, and an rdtscp-based hardware clock. All
// three are provided here; the hardware clock is simulated with Go's
// monotonic wall clock (see MonotonicClock for the substitution argument).
type Clock interface {
	// Read returns a start timestamp for a new transaction. Every value
	// committed before the transaction began must carry a version that
	// Read's result admits (strictly smaller when Strict, otherwise
	// smaller-or-equal).
	Read() uint64
	// Next returns a commit timestamp for a writing transaction. It is
	// invoked after all of the transaction's orecs have been acquired.
	Next() uint64
	// OnAbort notifies the clock that a transaction aborted because it
	// observed a version newer than its start time. Lazy clocks (GV5)
	// use this to advance; others ignore it.
	OnAbort()
	// Strict reports whether readers must reject versions equal to
	// their start time. Clocks whose Next results are not globally
	// unique-and-ordered by happens-before (the monotonic clock) return
	// true; fetch-and-add clocks return false, admitting equality as in
	// classic TL2.
	Strict() bool
	// Name identifies the clock in benchmark output.
	Name() string
}

// GV1 is the classic TL2 global-version clock: a single fetch-and-add
// counter. It is correct and simple but serializes all writer commits on
// one cache line; the paper reports it "did not scale well for the skip
// hash's small transactions".
type GV1 struct {
	counter atomic.Uint64
}

// NewGV1 returns a fetch-and-add commit clock.
func NewGV1() *GV1 { return &GV1{} }

// Read returns the current clock value.
func (c *GV1) Read() uint64 { return c.counter.Load() }

// Next atomically increments the clock and returns the new value.
func (c *GV1) Next() uint64 { return c.counter.Add(1) }

// OnAbort is a no-op for GV1.
func (c *GV1) OnAbort() {}

// Strict reports false: fetch-and-add timestamps are unique, so a version
// equal to the start time can only come from a commit that happened
// before the start was sampled.
func (c *GV1) Strict() bool { return false }

// Name returns "gv1".
func (c *GV1) Name() string { return "gv1" }

// GV5 is the lazy global-version clock: writers stamp orecs with
// counter+1 without incrementing the counter, trading increased false
// aborts for reduced clock contention. The counter only advances when an
// abort caused by a too-new version is reported, bounding the staleness.
type GV5 struct {
	counter atomic.Uint64
}

// NewGV5 returns a lazy commit clock.
func NewGV5() *GV5 { return &GV5{} }

// Read returns the current clock value.
func (c *GV5) Read() uint64 { return c.counter.Load() }

// Next returns counter+1 without advancing the counter.
func (c *GV5) Next() uint64 { return c.counter.Load() + 1 }

// OnAbort advances the counter so that retries observe a fresh start
// time and stop aborting on the same stamped version.
func (c *GV5) OnAbort() { c.counter.Add(1) }

// Strict reports false. GV5 commit stamps are counter+1, which always
// exceeds the start time of any concurrently running reader, so a version
// equal to a reader's start time must come from an already-released
// commit observed through the lazily advanced counter.
func (c *GV5) Strict() bool { return false }

// Name returns "gv5".
func (c *GV5) Name() string { return "gv5" }

// MonotonicClock stands in for the paper's rdtscp hardware timestamp
// counter. Go cannot issue rdtscp directly, so commit timestamps are
// nanoseconds of monotonic wall-clock time, which shares the property the
// paper exploits: drawing a timestamp does not write shared memory, so
// commits do not contend on a clock cache line.
//
// Unlike rdtscp's cycle granularity, two causally ordered events can in
// principle observe the same nanosecond tick. The runtime compensates by
// making readers strict (Strict returns true): a version equal to the
// reader's start time is rejected. A transaction's commit timestamp is
// sampled after all of its orecs are acquired, so any commit that could
// invalidate an in-flight reader's snapshot carries a timestamp causally
// (and therefore numerically, by monotonicity) no smaller than the
// reader's start; strict comparison rejects it even on a tie. The cost is
// an occasional false abort when a reader starts on the same tick as an
// earlier unrelated commit.
type MonotonicClock struct {
	base time.Time
}

// NewMonotonicClock returns a hardware-style commit clock backed by the
// monotonic wall clock.
func NewMonotonicClock() *MonotonicClock {
	return &MonotonicClock{base: time.Now()}
}

// FloorClock shifts every timestamp of an inner clock above a recovered
// floor. Durable maps use it after crash recovery: commit stamps order
// write-ahead-log records, so stamps drawn after a restart must exceed
// every stamp already in the log, no matter which clock flavor backs the
// runtime or how long the process was down. Adding the floor as a
// constant offset preserves the inner clock's ordering, uniqueness, and
// strictness properties unchanged.
type FloorClock struct {
	inner Clock
	floor uint64
}

// NewFloorClock wraps inner so all of its timestamps exceed floor. A
// zero floor returns inner unwrapped.
func NewFloorClock(inner Clock, floor uint64) Clock {
	if floor == 0 {
		return inner
	}
	return &FloorClock{inner: inner, floor: floor}
}

// Read returns the inner start timestamp shifted above the floor.
func (c *FloorClock) Read() uint64 { return c.inner.Read() + c.floor }

// Next returns the inner commit timestamp shifted above the floor.
func (c *FloorClock) Next() uint64 { return c.inner.Next() + c.floor }

// OnAbort delegates to the inner clock.
func (c *FloorClock) OnAbort() { c.inner.OnAbort() }

// Strict delegates to the inner clock (the offset preserves both the
// uniqueness and the tie behavior strictness compensates for).
func (c *FloorClock) Strict() bool { return c.inner.Strict() }

// Name reports the inner clock's name; the floor is a recovery detail,
// not a clock flavor, so benchmark series names stay stable.
func (c *FloorClock) Name() string { return c.inner.Name() }

// Read returns the current monotonic timestamp in nanoseconds.
func (c *MonotonicClock) Read() uint64 { return uint64(time.Since(c.base)) + 1 }

// Next returns the current monotonic timestamp in nanoseconds.
func (c *MonotonicClock) Next() uint64 { return uint64(time.Since(c.base)) + 1 }

// OnAbort is a no-op for the monotonic clock.
func (c *MonotonicClock) OnAbort() {}

// Strict reports true: readers reject versions equal to their start time
// because nanosecond ticks are not unique.
func (c *MonotonicClock) Strict() bool { return true }

// Name returns "hwclock".
func (c *MonotonicClock) Name() string { return "hwclock" }
