package stm

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkReadOnlyTx(b *testing.B) {
	rt := New()
	var c cell
	c.v.Init(1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = rt.Atomic(func(tx *Tx) error {
				_ = c.v.Load(tx, &c.orec)
				return nil
			})
		}
	})
}

func BenchmarkWriterTxDisjoint(b *testing.B) {
	rt := New()
	const cells = 4096
	cs := make([]cell, cells)
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(rand.Uint64(), 1))
		for pb.Next() {
			c := &cs[rng.Uint64()%cells]
			_ = rt.Atomic(func(tx *Tx) error {
				v := c.v.Load(tx, &c.orec)
				c.v.Store(tx, &c.orec, v+1)
				return nil
			})
		}
	})
}

func BenchmarkWriterTxContended(b *testing.B) {
	rt := New()
	var c cell
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = rt.Atomic(func(tx *Tx) error {
				v := c.v.Load(tx, &c.orec)
				c.v.Store(tx, &c.orec, v+1)
				return nil
			})
		}
	})
}

func BenchmarkMultiCellTx(b *testing.B) {
	// The skip hash's typical transaction shape: a handful of reads and
	// writes across several orecs.
	rt := New()
	const cells = 4096
	cs := make([]cell, cells)
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(rand.Uint64(), 2))
		for pb.Next() {
			i := rng.Uint64() % (cells - 4)
			_ = rt.Atomic(func(tx *Tx) error {
				for j := uint64(0); j < 4; j++ {
					c := &cs[i+j]
					v := c.v.Load(tx, &c.orec)
					if j&1 == 0 {
						c.v.Store(tx, &c.orec, v+1)
					}
				}
				return nil
			})
		}
	})
}

func BenchmarkClockSources(b *testing.B) {
	for _, clk := range []Clock{NewGV1(), NewGV5(), NewMonotonicClock()} {
		b.Run(clk.Name(), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					_ = clk.Next()
				}
			})
		})
	}
}
