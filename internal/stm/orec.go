package stm

import "sync/atomic"

// Orec is an ownership record: a single word of synchronization metadata
// co-located with the object it protects (the paper's §2.2 lists
// co-location as one of the design principles shared by modern STMs).
//
// The word has two interpretations:
//
//   - even: a commit version, (time << 1). Time is drawn from the
//     runtime's global Clock when a writing transaction commits.
//   - odd: a lock, (txID << 1) | 1, held by the transaction that
//     acquired the orec at encounter time.
//
// The zero value is an unlocked orec at version 0 and is ready to use,
// so objects can embed an Orec without explicit initialization.
type Orec struct {
	word atomic.Uint64
}

// orecWord is a decoded snapshot of an orec's word.
type orecWord uint64

func (w orecWord) locked() bool    { return w&1 == 1 }
func (w orecWord) owner() uint64   { return uint64(w >> 1) }
func (w orecWord) version() uint64 { return uint64(w >> 1) }

func versionWord(t uint64) orecWord { return orecWord(t << 1) }
func lockWord(id uint64) orecWord   { return orecWord(id<<1 | 1) }

func (o *Orec) load() orecWord { return orecWord(o.word.Load()) }

func (o *Orec) cas(old, new orecWord) bool {
	return o.word.CompareAndSwap(uint64(old), uint64(new))
}

func (o *Orec) store(w orecWord) { o.word.Store(uint64(w)) }

// Version returns the orec's current commit version. It is intended for
// tests and debugging; transactional code never needs it. If the orec is
// locked the version of the in-flight owner is returned, which is only
// meaningful to the owner itself.
func (o *Orec) Version() uint64 { return o.load().version() }

// Locked reports whether the orec is currently owned by an in-flight
// transaction. Intended for tests and debugging.
func (o *Orec) Locked() bool { return o.load().locked() }
