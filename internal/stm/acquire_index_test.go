package stm

import (
	"fmt"
	"testing"
)

// cellArray builds n independently guarded transactional counters.
type cellArray struct {
	cells []struct {
		orec Orec
		v    U64
	}
}

func newCells(n int) *cellArray {
	a := &cellArray{}
	a.cells = make([]struct {
		orec Orec
		v    U64
	}, n)
	return a
}

// bumpAll loads and stores every cell in one transaction. The
// load-then-store pattern puts every orec in both the read set and the
// acquire list, so commit-time validation resolves each read through
// preAcquireWord — the path the acquire index keeps linear.
func (a *cellArray) bumpAll(rt *Runtime) error {
	return rt.Atomic(func(tx *Tx) error {
		for i := range a.cells {
			c := &a.cells[i]
			c.v.Store(tx, &c.orec, c.v.Load(tx, &c.orec)+1)
		}
		return nil
	})
}

// TestLargeWriteSetCommit drives write sets well past
// acquireIndexThreshold through the indexed validation path and checks
// the committed state, including after an intervening rollback.
func TestLargeWriteSetCommit(t *testing.T) {
	const n = 4 * acquireIndexThreshold
	rt := New()
	a := newCells(n)
	for round := uint64(1); round <= 3; round++ {
		if err := a.bumpAll(rt); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range a.cells {
			if got := a.cells[i].v.Raw(); got != round {
				t.Fatalf("round %d: cell %d = %d", round, i, got)
			}
		}
	}
	// A user error rolls the whole batch back; the next commit must not
	// see stale index entries from the aborted attempt.
	wantErr := fmt.Errorf("boom")
	err := rt.Atomic(func(tx *Tx) error {
		for i := range a.cells {
			c := &a.cells[i]
			c.v.Store(tx, &c.orec, 99)
		}
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("Atomic returned %v, want user error", err)
	}
	if err := a.bumpAll(rt); err != nil {
		t.Fatal(err)
	}
	for i := range a.cells {
		if got := a.cells[i].v.Raw(); got != 4 {
			t.Fatalf("after rollback: cell %d = %d, want 4", i, got)
		}
	}
}

// BenchmarkLargeWriteSetCommit guards the preAcquireWord fix: every
// cell is read and written in one transaction, so commit validation
// performs len(cells) preAcquireWord lookups. Before the acquire index
// this was quadratic in the write-set size; the per-operation cost must
// stay flat as the write set grows.
func BenchmarkLargeWriteSetCommit(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512, 2048} {
		b.Run(fmt.Sprintf("cells=%d", n), func(b *testing.B) {
			rt := New()
			a := newCells(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.bumpAll(rt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/cell")
		})
	}
}
