package stm

import (
	"errors"
	"sync"
	"testing"
)

func TestAcquireWithoutWrite(t *testing.T) {
	rt := New()
	var c cell
	c.v.Init(5)
	// Acquire alone must bump the version on commit, invalidating
	// concurrent optimistic readers (this is what makes removals "own
	// everything they read").
	before := c.orec.Version()
	if err := rt.Atomic(func(tx *Tx) error {
		tx.Acquire(&c.orec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.orec.Locked() {
		t.Error("orec still locked after commit")
	}
	if got := c.orec.Version(); got <= before {
		t.Errorf("version %d not advanced past %d by Acquire-only commit", got, before)
	}
	if got := c.v.Raw(); got != 5 {
		t.Errorf("value = %d, want untouched 5", got)
	}
}

func TestAcquireRollbackRestoresVersion(t *testing.T) {
	rt := New()
	var c cell
	before := c.orec.Version()
	_ = rt.Atomic(func(tx *Tx) error {
		tx.Acquire(&c.orec)
		return errors.New("rollback")
	})
	if got := c.orec.Version(); got != before {
		t.Errorf("version = %d, want %d restored by rollback", got, before)
	}
	if c.orec.Locked() {
		t.Error("orec leaked a lock")
	}
}

func TestStrictClockRejectsEqualVersion(t *testing.T) {
	// With a strict clock a reader must abort on version == start; with
	// a non-strict clock it must accept. Construct the situation by
	// hand.
	t.Run("strict aborts", func(t *testing.T) {
		rt := New(WithClock(NewMonotonicClock()))
		var c cell
		err := rt.TryOnce(func(tx *Tx) error {
			c.orec.store(versionWord(tx.Start()))
			_ = c.v.Load(tx, &c.orec)
			return nil
		})
		if !errors.Is(err, ErrAborted) {
			t.Errorf("strict read of ver==start: err = %v, want ErrAborted", err)
		}
	})
	t.Run("non-strict accepts", func(t *testing.T) {
		clk := NewGV1()
		for i := 0; i < 10; i++ {
			clk.Next()
		}
		rt := New(WithClock(clk))
		var c cell
		if err := rt.TryOnce(func(tx *Tx) error {
			c.orec.store(versionWord(tx.Start()))
			_ = c.v.Load(tx, &c.orec)
			return nil
		}); err != nil {
			t.Errorf("gv1 read of ver==start: err = %v, want nil", err)
		}
	})
}

func TestFutureVersionAborts(t *testing.T) {
	rt := New()
	var c cell
	err := rt.TryOnce(func(tx *Tx) error {
		// Version far in the future: the read must abort (no
		// timestamp extension in this configuration).
		c.orec.store(versionWord(tx.Start() + 1_000_000))
		_ = c.v.Load(tx, &c.orec)
		return nil
	})
	if !errors.Is(err, ErrAborted) {
		t.Errorf("err = %v, want ErrAborted", err)
	}
}

func TestTxIDsUniqueAcrossDescriptors(t *testing.T) {
	rt := New()
	const goroutines = 16
	const perG = 200
	ids := make(chan uint64, goroutines*perG)
	var wg sync.WaitGroup
	var c cell
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var id uint64
				_ = rt.Atomic(func(tx *Tx) error {
					id = tx.id // record outside: aborted attempts retry fn
					c.v.Store(tx, &c.orec, 1)
					return nil
				})
				// Exactly one send per committed transaction, so the
				// buffered channel can never block a sender.
				ids <- id
			}
		}()
	}
	wg.Wait()
	close(ids)
	// Committed attempts must all carry distinct lock-word IDs: a
	// duplicate would let one transaction mistake another's lock for
	// its own.
	seen := make(map[uint64]bool, goroutines*perG)
	for id := range ids {
		if seen[id] {
			t.Fatalf("transaction ID %d reused", id)
		}
		seen[id] = true
	}
}

func TestCommitValidationCatchesInterleavedWrite(t *testing.T) {
	rt := New()
	var a, b cell
	hold := make(chan struct{})
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	tries := 0
	go func() {
		defer wg.Done()
		_ = rt.Atomic(func(tx *Tx) error {
			tries++
			_ = a.v.Load(tx, &a.orec) // read a
			if tries == 1 {
				close(hold) // let the interferer write a
				<-proceed
			}
			b.v.Store(tx, &b.orec, 1) // write b (writer path: must validate a)
			return nil
		})
	}()
	<-hold
	_ = rt.Atomic(func(tx *Tx) error {
		a.v.Store(tx, &a.orec, 99)
		return nil
	})
	close(proceed)
	wg.Wait()
	if tries < 2 {
		t.Errorf("transaction committed without revalidating its read set (tries=%d)", tries)
	}
	if got := b.v.Raw(); got != 1 {
		t.Errorf("b = %d, want 1", got)
	}
}
