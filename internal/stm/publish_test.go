package stm

import (
	"errors"
	"sync"
	"testing"
)

// TestOnPublishCommitOrder: publish hooks fire only for successful
// writing commits, with the commit stamp, before the orecs release —
// so for conflicting transactions, publish order is commit order.
func TestOnPublishSemantics(t *testing.T) {
	rt := New()
	var o Orec
	var f U64

	var stamps []uint64
	var locals []any
	// A committed writer publishes exactly once with a nonzero stamp.
	err := rt.Atomic(func(tx *Tx) error {
		if tx.Local() != nil {
			t.Error("fresh attempt has a non-nil local slot")
		}
		tx.SetLocal("x")
		locals = append(locals, tx.Local())
		f.Store(tx, &o, 1)
		tx.OnPublish(func(stamp uint64) { stamps = append(stamps, stamp) })
		tx.OnCommit(func() {
			if got := tx.CommitStamp(); got != stamps[len(stamps)-1] {
				t.Errorf("CommitStamp %d != published stamp %d", got, stamps[len(stamps)-1])
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 1 || stamps[0] == 0 {
		t.Fatalf("publish fired %d times with %v", len(stamps), stamps)
	}
	if locals[0] != "x" {
		t.Fatalf("local slot lost within attempt: %v", locals)
	}

	// A user error discards publish hooks.
	published := false
	sentinel := errors.New("boom")
	if err := rt.Atomic(func(tx *Tx) error {
		f.Store(tx, &o, 2)
		tx.OnPublish(func(uint64) { published = true })
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("user error lost: %v", err)
	}
	if published {
		t.Fatal("publish hook fired for a rolled-back transaction")
	}

	// A read-only commit draws no stamp and publishes nothing.
	_ = rt.Atomic(func(tx *Tx) error {
		_ = f.Load(tx, &o)
		tx.OnPublish(func(uint64) { published = true })
		return nil
	})
	if published {
		t.Fatal("publish hook fired for a read-only commit")
	}

	// Conflicting writers publish in commit order: while a publish hook
	// runs, the orec is still owned, so a stamp observed there is
	// strictly ordered with any later conflicting commit's stamp.
	var mu sync.Mutex
	var order []uint64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = rt.Atomic(func(tx *Tx) error {
					f.Store(tx, &o, f.Load(tx, &o)+1)
					tx.OnPublish(func(stamp uint64) {
						mu.Lock()
						order = append(order, stamp)
						mu.Unlock()
					})
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if len(order) != 8*200 {
		t.Fatalf("published %d times, want %d", len(order), 8*200)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("conflicting publishes out of stamp order at %d: %d after %d", i, order[i], order[i-1])
		}
	}
}

// TestFloorClock: the wrapper shifts stamps above the floor and
// preserves the inner clock's contract surface.
func TestFloorClock(t *testing.T) {
	if c := NewFloorClock(NewGV1(), 0); c != any(c).(Clock) || c.Name() != "gv1" {
		t.Fatal("zero floor should keep the clock usable")
	}
	inner := NewGV1()
	c := NewFloorClock(inner, 1000)
	if got := c.Read(); got != 1000 {
		t.Fatalf("Read = %d, want 1000", got)
	}
	if got := c.Next(); got != 1001 {
		t.Fatalf("Next = %d, want 1001", got)
	}
	if c.Strict() != inner.Strict() || c.Name() != inner.Name() {
		t.Fatal("FloorClock must delegate Strict and Name")
	}
	rt := New(WithClock(NewFloorClock(NewMonotonicClock(), 500)))
	var o Orec
	var f U64
	if err := rt.Atomic(func(tx *Tx) error {
		if tx.Start() <= 500 {
			t.Errorf("start stamp %d not above floor", tx.Start())
		}
		f.Store(tx, &o, 9)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := f.Raw(); got != 9 {
		t.Fatalf("write through floored runtime lost: %d", got)
	}
}
