package stm

import (
	"sync"
	"testing"
	"time"
)

// hookCell is a minimal transactional object for hook tests.
type hookCell struct {
	orec Orec
	v    U64
}

// traceHooks records every firing and aborts according to a script.
type traceHooks struct {
	mu     sync.Mutex
	points []Point
	abort  map[Point]int // abort the first n firings at each point
}

func (h *traceHooks) OnPoint(p Point, txID uint64, attempt int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.points = append(h.points, p)
	if h.abort[p] > 0 {
		h.abort[p]--
		return false
	}
	return true
}

func TestHookPointOrder(t *testing.T) {
	h := &traceHooks{}
	rt := New(WithHooks(h))
	c := &hookCell{}
	// A writing transaction fires begin, validate, commit in order.
	if err := rt.Atomic(func(tx *Tx) error {
		c.v.Store(tx, &c.orec, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []Point{PointBegin, PointValidate, PointCommit}
	if len(h.points) != len(want) {
		t.Fatalf("writer fired %v, want %v", h.points, want)
	}
	for i := range want {
		if h.points[i] != want[i] {
			t.Fatalf("writer fired %v, want %v", h.points, want)
		}
	}
	// A read-only transaction skips validate.
	h.points = nil
	if err := rt.Atomic(func(tx *Tx) error {
		_ = c.v.Load(tx, &c.orec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want = []Point{PointBegin, PointCommit}
	if len(h.points) != 2 || h.points[0] != want[0] || h.points[1] != want[1] {
		t.Fatalf("reader fired %v, want %v", h.points, want)
	}
}

func TestHookInjectedAborts(t *testing.T) {
	for _, p := range []Point{PointBegin, PointValidate, PointCommit} {
		h := &traceHooks{abort: map[Point]int{p: 1}}
		rt := New(WithHooks(h))
		c := &hookCell{}
		if err := rt.Atomic(func(tx *Tx) error {
			c.v.Store(tx, &c.orec, 42)
			return nil
		}); err != nil {
			t.Fatalf("abort at %v: Atomic returned %v", p, err)
		}
		if got := c.v.Raw(); got != 42 {
			t.Fatalf("abort at %v: value %d after retry, want 42", p, got)
		}
		if aborts := rt.Stats().Aborts; aborts < 1 {
			t.Fatalf("abort at %v: stats report %d aborts, want >= 1", p, aborts)
		}
	}
}

func TestHookAbortTryOnce(t *testing.T) {
	h := &traceHooks{abort: map[Point]int{PointBegin: 1}}
	rt := New(WithHooks(h))
	if err := rt.TryOnce(func(tx *Tx) error { return nil }); err != ErrAborted {
		t.Fatalf("TryOnce under begin-abort = %v, want ErrAborted", err)
	}
}

func TestSetHooksSwap(t *testing.T) {
	rt := New()
	c := &hookCell{}
	h := &traceHooks{}
	rt.SetHooks(h)
	_ = rt.Atomic(func(tx *Tx) error { c.v.Store(tx, &c.orec, 1); return nil })
	if len(h.points) == 0 {
		t.Fatal("installed hooks never fired")
	}
	rt.SetHooks(nil)
	n := len(h.points)
	_ = rt.Atomic(func(tx *Tx) error { c.v.Store(tx, &c.orec, 2); return nil })
	if len(h.points) != n {
		t.Fatal("removed hooks still fired")
	}
}

func TestAbortInjectorConverges(t *testing.T) {
	// Heavy injection must still let every transaction through
	// eventually, with the final state exactly as without faults.
	inj := NewAbortInjector(99, 1, 3)
	rt := New(WithHooks(inj), WithBackoffSeed(7))
	cells := make([]hookCell, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ci := i % len(cells)
				_ = rt.Atomic(func(tx *Tx) error {
					c := &cells[ci]
					c.v.Store(tx, &c.orec, c.v.Load(tx, &c.orec)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	var total uint64
	for i := range cells {
		total += cells[i].v.Raw()
	}
	if total != 4*200 {
		t.Fatalf("total increments = %d, want %d", total, 4*200)
	}
	if inj.Injected() == 0 {
		t.Fatal("injector never fired")
	}
	if inj.Aborts() == 0 {
		t.Fatal("injector never aborted an attempt")
	}
	if rt.Stats().Aborts == 0 {
		t.Fatal("no aborts recorded despite injection")
	}
}

func TestStepSchedulerSerializesAndCompletes(t *testing.T) {
	sched := NewStepScheduler(12345)
	rt := New(WithHooks(sched))
	var cell hookCell
	const workers = 4
	const perWorker = 100

	sched.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sched.Attach()
			defer sched.Detach()
			for i := 0; i < perWorker; i++ {
				_ = rt.Atomic(func(tx *Tx) error {
					cell.v.Store(tx, &cell.orec, cell.v.Load(tx, &cell.orec)+1)
					return nil
				})
			}
		}()
		// Deterministic start order: wait for this worker to park at its
		// first point before starting the next.
		deadline := time.Now().Add(10 * time.Second)
		for sched.Waiting() != w+1 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d never parked (waiting=%d)", w, sched.Waiting())
			}
			time.Sleep(time.Millisecond)
		}
	}
	sched.Release()
	wg.Wait()

	if got := cell.v.Raw(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if sched.Steps() == 0 {
		t.Fatal("scheduler made no decisions")
	}
	if sched.Waiting() != 0 {
		t.Fatalf("%d goroutines still parked after completion", sched.Waiting())
	}
	// Disengaged scheduler passes unattached traffic through.
	if err := rt.Atomic(func(tx *Tx) error {
		cell.v.Store(tx, &cell.orec, 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffSeedIsolatesStreams(t *testing.T) {
	// Two runtimes with the same seed hand descriptors identical PRNG
	// streams; different seeds diverge. Observable through nextRand via
	// a single-descriptor probe.
	draw := func(seed uint64) uint64 {
		rt := New(WithBackoffSeed(seed))
		var out uint64
		_ = rt.Atomic(func(tx *Tx) error {
			out = tx.rng
			return nil
		})
		return out
	}
	if draw(1) != draw(1) {
		t.Error("same seed produced different descriptor streams")
	}
	if draw(1) == draw(2) {
		t.Error("different seeds produced identical descriptor streams")
	}
}
