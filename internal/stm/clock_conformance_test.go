package stm

import (
	"sync"
	"testing"
)

// TestClockConformance pins the Clock contract for every provided
// implementation in one table-driven suite: Strict reporting, Read and
// Next monotonicity, the admission relation between commit stamps and
// later start times, and OnAbort's advancement duty for lazy clocks.
func TestClockConformance(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Clock
		// strict is the contract the runtime keys its reader comparison
		// off: strict clocks demand version < start, lax admit equality.
		strict bool
		// lazy marks clocks (GV5) whose commit stamps outrun Read until
		// OnAbort catches the counter up.
		lazy bool
		// uniqueNext marks clocks whose Next results are globally unique
		// (fetch-and-add).
		uniqueNext bool
	}{
		{name: "gv1", mk: func() Clock { return NewGV1() }, strict: false, lazy: false, uniqueNext: true},
		{name: "gv5", mk: func() Clock { return NewGV5() }, strict: false, lazy: true, uniqueNext: false},
		{name: "hwclock", mk: func() Clock { return NewMonotonicClock() }, strict: true, lazy: false, uniqueNext: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.mk()
			if got := c.Strict(); got != tc.strict {
				t.Errorf("Strict() = %v, want %v", got, tc.strict)
			}
			if got := c.Name(); got != tc.name {
				t.Errorf("Name() = %q, want %q", got, tc.name)
			}

			// Read is monotone non-decreasing.
			prev := c.Read()
			for i := 0; i < 1000; i++ {
				r := c.Read()
				if r < prev {
					t.Fatalf("Read went backwards: %d after %d", r, prev)
				}
				prev = r
			}

			// Next is monotone non-decreasing (strictly increasing when
			// stamps are unique), and never falls below Read's past.
			start := c.Read()
			prevNext := uint64(0)
			for i := 0; i < 1000; i++ {
				n := c.Next()
				if n < start {
					t.Fatalf("Next() = %d below earlier Read() = %d", n, start)
				}
				if tc.uniqueNext && n <= prevNext && i > 0 {
					t.Fatalf("Next not strictly increasing: %d after %d", n, prevNext)
				}
				if n < prevNext {
					t.Fatalf("Next went backwards: %d after %d", n, prevNext)
				}
				prevNext = n
			}

			// Admission: once a commit stamp is visible through Read, a
			// new reader must admit it (stamp < start when strict,
			// stamp <= start otherwise). Lazy clocks owe this only after
			// OnAbort.
			stamp := c.Next()
			if tc.lazy {
				if r := c.Read(); r >= stamp {
					t.Fatalf("lazy clock advanced Read to %d on Next %d", r, stamp)
				}
				c.OnAbort()
			}
			r := c.Read()
			if tc.strict {
				// Strict clocks only promise r >= stamp at equal-tick
				// granularity; the runtime rejects equality, which costs
				// a false abort, never a violation.
				if r < stamp {
					t.Fatalf("Read() = %d below committed stamp %d", r, stamp)
				}
			} else if r < stamp {
				t.Fatalf("Read() = %d does not admit committed stamp %d", r, stamp)
			}

			// OnAbort never moves any clock backwards.
			before := c.Read()
			c.OnAbort()
			if after := c.Read(); after < before {
				t.Fatalf("OnAbort moved Read backwards: %d -> %d", before, after)
			}
		})
	}
}

// TestClockConcurrentStamps hammers Next from many goroutines and
// checks the per-clock uniqueness/monotonicity guarantees hold under
// contention (notably GV1's fetch-and-add uniqueness).
func TestClockConcurrentStamps(t *testing.T) {
	clocks := []struct {
		name   string
		mk     func() Clock
		unique bool
	}{
		{"gv1", func() Clock { return NewGV1() }, true},
		{"gv5", func() Clock { return NewGV5() }, false},
		{"hwclock", func() Clock { return NewMonotonicClock() }, false},
	}
	for _, tc := range clocks {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.mk()
			const workers = 8
			const perWorker = 2000
			stamps := make([][]uint64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					out := make([]uint64, perWorker)
					for i := range out {
						out[i] = c.Next()
					}
					stamps[w] = out
				}(w)
			}
			wg.Wait()
			seen := make(map[uint64]int)
			for w := range stamps {
				prev := uint64(0)
				for _, s := range stamps[w] {
					if s < prev {
						t.Fatalf("worker %d saw Next go backwards: %d after %d", w, s, prev)
					}
					prev = s
					seen[s]++
				}
			}
			if tc.unique && len(seen) != workers*perWorker {
				t.Fatalf("gv1 stamps not unique: %d distinct of %d", len(seen), workers*perWorker)
			}
		})
	}
}

// TestClockRuntimeIntegration runs a small transactional workload under
// each clock, confirming the Strict wiring end to end.
func TestClockRuntimeIntegration(t *testing.T) {
	for _, mk := range []func() Clock{
		func() Clock { return NewGV1() },
		func() Clock { return NewGV5() },
		func() Clock { return NewMonotonicClock() },
	} {
		c := mk()
		t.Run(c.Name(), func(t *testing.T) {
			rt := New(WithClock(c))
			if rt.Clock() != c {
				t.Fatal("runtime did not adopt the injected clock")
			}
			cells := make([]hookCell, 4)
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						ci := i % len(cells)
						_ = rt.Atomic(func(tx *Tx) error {
							cell := &cells[ci]
							cell.v.Store(tx, &cell.orec, cell.v.Load(tx, &cell.orec)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			var total uint64
			for i := range cells {
				total += cells[i].v.Raw()
			}
			if total != 4*500 {
				t.Fatalf("clock %s lost updates: %d of %d", c.Name(), total, 4*500)
			}
		})
	}
}
