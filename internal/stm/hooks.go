package stm

import (
	"sync"
	"sync/atomic"
)

// Point identifies an instrumentation point in a transaction attempt's
// lifecycle. The points are the three moments the paper's commit
// protocol can be meaningfully perturbed at: after the attempt samples
// its start time, before commit-time read-set validation, and after
// validation but before the writes are published.
type Point uint8

const (
	// PointBegin fires right after an attempt samples its start
	// timestamp, before the user closure runs.
	PointBegin Point = iota
	// PointValidate fires at commit time for writing attempts, before
	// the commit timestamp is drawn and the read set is validated.
	// Read-only attempts skip it.
	PointValidate
	// PointCommit fires after validation succeeds, immediately before
	// the attempt publishes its writes (for read-only attempts: before
	// the no-op commit completes).
	PointCommit
)

// String names the point for diagnostics.
func (p Point) String() string {
	switch p {
	case PointBegin:
		return "begin"
	case PointValidate:
		return "validate"
	case PointCommit:
		return "commit"
	}
	return "unknown"
}

// Hooks observes and steers every transaction of a Runtime. It is the
// deterministic-schedule and fault-injection surface used by the
// linearizability harness: an implementation can serialize interleavings
// (StepScheduler), inject aborts (AbortInjector), or record event
// traces. There is no build tag; a Runtime with nil hooks pays one nil
// check per attempt.
//
// OnPoint is called on the transaction's own goroutine. Returning false
// aborts the current attempt exactly as a conflict would: the attempt
// rolls back and Runtime.Atomic retries (Runtime.TryOnce returns
// ErrAborted). OnPoint must be safe for concurrent use.
type Hooks interface {
	OnPoint(p Point, txID uint64, attempt int) (proceed bool)
}

// mix64 is a splitmix64 finalization step, used wherever hooks and
// backoff need a cheap seeded PRNG stream.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// AbortInjector is a Hooks implementation that aborts a seeded
// pseudo-random fraction of attempts at every instrumentation point. It
// is the "deliberately hostile scheduler" used to prove retry paths keep
// histories linearizable: num out of den hook firings abort. The draw
// sequence is a pure function of the seed and the global firing order,
// so a single-threaded run is exactly reproducible and a concurrent run
// is statistically reproducible.
type AbortInjector struct {
	seed   uint64
	num    uint64
	den    uint64
	ctr    atomic.Uint64
	aborts atomic.Uint64
}

// NewAbortInjector returns an injector aborting num of every den hook
// firings (den must be nonzero).
func NewAbortInjector(seed, num, den uint64) *AbortInjector {
	if den == 0 {
		den = 1
	}
	return &AbortInjector{seed: seed, num: num, den: den}
}

// OnPoint implements Hooks.
func (a *AbortInjector) OnPoint(Point, uint64, int) bool {
	i := a.ctr.Add(1)
	if mix64(a.seed^i)%a.den < a.num {
		a.aborts.Add(1)
		return false
	}
	return true
}

// Injected returns how many hook firings have been drawn so far.
func (a *AbortInjector) Injected() uint64 { return a.ctr.Load() }

// Aborts returns how many of those firings actually injected an abort.
func (a *AbortInjector) Aborts() uint64 { return a.aborts.Load() }

// StepScheduler is a Hooks implementation that serializes transaction
// execution: at every instrumentation point the calling goroutine
// parks, and whenever no attached goroutine is runnable the scheduler
// wakes exactly one parked goroutine, chosen by a seeded PRNG. All STM
// events therefore execute one goroutine at a time, with every
// scheduling decision derived from the seed — concurrent interleavings
// become explorable and (given a deterministic start order, see Freeze)
// reproducible.
//
// Protocol: each worker goroutine calls Attach before its first
// transaction and Detach when done. While any goroutine is attached,
// only attached goroutines may run transactions on the hooked runtime —
// an unattached transaction would bypass the serialization. For a
// deterministic start order, Freeze the scheduler, start workers one at
// a time until Waiting reports each has parked at its first point, then
// Release.
type StepScheduler struct {
	mu       sync.Mutex
	rng      uint64
	attached int
	running  int
	frozen   bool
	waiters  []chan struct{}
	steps    uint64
}

// NewStepScheduler returns a scheduler drawing every decision from seed.
func NewStepScheduler(seed uint64) *StepScheduler {
	return &StepScheduler{rng: seed}
}

// Attach enrolls the calling goroutine. It must be called before the
// goroutine's first transaction on the hooked runtime.
func (s *StepScheduler) Attach() {
	s.mu.Lock()
	s.attached++
	s.running++
	s.mu.Unlock()
}

// Detach withdraws the calling goroutine, handing the schedule to a
// parked peer if it was the last one runnable.
func (s *StepScheduler) Detach() {
	s.mu.Lock()
	s.attached--
	s.running--
	if !s.frozen && s.running == 0 && len(s.waiters) > 0 {
		s.wakeOneLocked()
	}
	s.mu.Unlock()
}

// Freeze holds every goroutine at its next instrumentation point until
// Release, so a test can park all workers in a known order before the
// first scheduling decision.
func (s *StepScheduler) Freeze() {
	s.mu.Lock()
	s.frozen = true
	s.mu.Unlock()
}

// Release ends a Freeze and wakes one parked goroutine if none is
// runnable.
func (s *StepScheduler) Release() {
	s.mu.Lock()
	s.frozen = false
	if s.running == 0 && len(s.waiters) > 0 {
		s.wakeOneLocked()
	}
	s.mu.Unlock()
}

// Waiting reports how many goroutines are parked at a point.
func (s *StepScheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// Steps reports how many scheduling decisions have been made.
func (s *StepScheduler) Steps() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steps
}

// OnPoint implements Hooks: park until the seeded schedule picks this
// goroutine. It never injects an abort.
func (s *StepScheduler) OnPoint(Point, uint64, int) bool {
	s.mu.Lock()
	if s.attached == 0 {
		// Not engaged (setup or teardown traffic): pass through.
		s.mu.Unlock()
		return true
	}
	ch := make(chan struct{})
	s.waiters = append(s.waiters, ch)
	s.running--
	if !s.frozen && s.running == 0 {
		s.wakeOneLocked()
	}
	s.mu.Unlock()
	<-ch
	return true
}

// wakeOneLocked picks a parked goroutine by the seeded PRNG and makes
// it the runnable one. Caller holds s.mu and guarantees the waiter list
// is nonempty.
func (s *StepScheduler) wakeOneLocked() {
	s.rng = mix64(s.rng)
	s.steps++
	i := int(s.rng % uint64(len(s.waiters)))
	ch := s.waiters[i]
	last := len(s.waiters) - 1
	s.waiters[i] = s.waiters[last]
	s.waiters = s.waiters[:last]
	s.running++
	close(ch)
}
