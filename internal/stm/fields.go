package stm

import (
	"sync/atomic"
	"unsafe"
)

// Transactional fields. Each field belongs to an object that embeds an
// Orec; the orec is passed to every access so the runtime can validate
// (reads) or acquire (writes) it. Fields are backed by atomics so that
// the optimistic read protocol is free of data races: a racing writer
// holds the orec, and the post-read orec check discards any value read
// concurrently with it.
//
// Immutable state (keys, heights, insertion times fixed before
// publication) should be stored in plain Go fields: the paper's §2.2
// calls out const-field optimization as a key latency lever, and it falls
// out naturally here because published pointers are only ever obtained
// through atomic loads, giving the necessary happens-before edge.

// Ptr is a transactional pointer field of type *T. The slot is a raw
// unsafe.Pointer (always holding a *T) accessed through sync/atomic, so
// the undo log can record its pre-transaction image as a plain untyped
// word instead of a per-store closure.
type Ptr[T any] struct {
	p unsafe.Pointer // *T
}

// Load transactionally reads the pointer. o must be the orec of the
// object the field belongs to.
func (f *Ptr[T]) Load(tx *Tx, o *Orec) *T {
	w, mine := tx.readOrec(o)
	v := (*T)(atomic.LoadPointer(&f.p))
	if !mine {
		tx.postRead(o, w)
	}
	return v
}

// Store transactionally writes the pointer, acquiring o on first write.
func (f *Ptr[T]) Store(tx *Tx, o *Orec, v *T) {
	tx.acquire(o)
	tx.logUndoPtr(&f.p, atomic.LoadPointer(&f.p))
	atomic.StorePointer(&f.p, unsafe.Pointer(v))
}

// Init sets the pointer without any transactional bookkeeping. It is only
// safe before the owning object is published (e.g. while wiring a freshly
// allocated node that no other transaction can reach).
func (f *Ptr[T]) Init(v *T) { atomic.StorePointer(&f.p, unsafe.Pointer(v)) }

// Raw returns the current pointer without validation. It is intended for
// tests, debug checks, single-threaded post-quiescence audits, and the
// optimistic read fast path (which validates via OrecSample instead).
func (f *Ptr[T]) Raw() *T { return (*T)(atomic.LoadPointer(&f.p)) }

// U64 is a transactional uint64 field.
type U64 struct {
	v atomic.Uint64
}

// Load transactionally reads the value.
func (f *U64) Load(tx *Tx, o *Orec) uint64 {
	w, mine := tx.readOrec(o)
	v := f.v.Load()
	if !mine {
		tx.postRead(o, w)
	}
	return v
}

// Store transactionally writes the value, acquiring o on first write.
func (f *U64) Store(tx *Tx, o *Orec, v uint64) {
	tx.acquire(o)
	tx.logUndoU64(&f.v, f.v.Load())
	f.v.Store(v)
}

// Init sets the value without transactional bookkeeping; see Ptr.Init.
func (f *U64) Init(v uint64) { f.v.Store(v) }

// Raw returns the current value without validation; see Ptr.Raw.
func (f *U64) Raw() uint64 { return f.v.Load() }

// Bool is a transactional boolean field.
type Bool struct {
	v atomic.Bool
}

// Load transactionally reads the value.
func (f *Bool) Load(tx *Tx, o *Orec) bool {
	w, mine := tx.readOrec(o)
	v := f.v.Load()
	if !mine {
		tx.postRead(o, w)
	}
	return v
}

// Store transactionally writes the value, acquiring o on first write.
func (f *Bool) Store(tx *Tx, o *Orec, v bool) {
	tx.acquire(o)
	tx.logUndoBool(&f.v, f.v.Load())
	f.v.Store(v)
}

// Init sets the value without transactional bookkeeping; see Ptr.Init.
func (f *Bool) Init(v bool) { f.v.Store(v) }

// Raw returns the current value without validation; see Ptr.Raw.
func (f *Bool) Raw() bool { return f.v.Load() }

// Val is a transactional value field for small value types (stored
// boxed). Use Ptr directly when the value is naturally a pointer.
type Val[T any] struct {
	p unsafe.Pointer // *T
}

// Load transactionally reads the value. The zero value of T is returned
// if the field was never stored.
func (f *Val[T]) Load(tx *Tx, o *Orec) T {
	w, mine := tx.readOrec(o)
	p := (*T)(atomic.LoadPointer(&f.p))
	if !mine {
		tx.postRead(o, w)
	}
	if p == nil {
		var zero T
		return zero
	}
	return *p
}

// Store transactionally writes the value, acquiring o on first write.
func (f *Val[T]) Store(tx *Tx, o *Orec, v T) {
	tx.acquire(o)
	tx.logUndoPtr(&f.p, atomic.LoadPointer(&f.p))
	atomic.StorePointer(&f.p, unsafe.Pointer(&v))
}

// Init sets the value without transactional bookkeeping; see Ptr.Init.
func (f *Val[T]) Init(v T) { atomic.StorePointer(&f.p, unsafe.Pointer(&v)) }

// Raw returns the current value without validation; see Ptr.Raw.
func (f *Val[T]) Raw() T {
	p := (*T)(atomic.LoadPointer(&f.p))
	if p == nil {
		var zero T
		return zero
	}
	return *p
}
