package stm

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// Tx is a transaction descriptor. A Tx is only ever used by one goroutine
// at a time; descriptors are pooled and reused across transactions so the
// read set, undo log, and acquire list retain their capacity.
//
// Tx is handed to the closure passed to Runtime.Atomic or Runtime.TryOnce
// and must not be retained after the closure returns.
type Tx struct {
	rt     *Runtime
	id     uint64 // unique per attempt; encoded into lock words
	idEnd  uint64 // exclusive end of the descriptor's private ID block
	start  uint64 // start timestamp from the clock
	strict bool   // reject version == start (see Clock.Strict)
	active bool

	reads    []readEntry
	undo     []undoEntry
	acquired []acqEntry
	hooks    []func()
	publish  []func(stamp uint64)

	// end is the commit timestamp of the most recent successful writing
	// commit (zero for read-only commits, which never draw one).
	end uint64

	// local is the per-attempt scratch slot for layers above the STM
	// (see SetLocal). It is cleared at the start of every attempt, so
	// state accumulated by an aborted attempt can never leak into its
	// retry.
	local any

	// acqIndex mirrors acquired as orec -> pre-acquire word once the
	// acquire list outgrows acquireIndexThreshold, so commit-time
	// read-set validation stays O(reads) instead of O(reads*acquired)
	// for transactions with large write sets. nil until first needed;
	// retained (emptied) across the descriptor's reuses.
	acqIndex map[*Orec]orecWord

	attempts int
	rng      uint64

	// instr is the runtime's instrumentation hooks surface (see Hooks),
	// snapshotted once per attempt at begin (nil when uninstrumented).
	instr Hooks

	// abortReason classifies the in-flight abort for rollback's
	// by-reason counters; reset after each rollback.
	abortReason uint8

	stats txStats
}

type readEntry struct {
	orec *Orec
	seen orecWord
}

type acqEntry struct {
	orec *Orec
	prev orecWord // pre-acquire version word, restored on abort
}

// undoEntry restores one field's pre-transaction image on abort. It is
// a tagged union over the field kinds (exactly one slot pointer is
// non-nil) so that logging a store appends a plain struct instead of
// allocating a closure — the write path's only per-store heap
// allocation before this layout.
type undoEntry struct {
	ptr  *unsafe.Pointer // pointer-backed fields (Ptr, Val)
	u64  *atomic.Uint64  // word-backed fields (U64)
	b    *atomic.Bool    // Bool fields
	oldP unsafe.Pointer
	oldU uint64 // word image; Bool stores 0/1 here
}

// txStats counts events for one descriptor. Counters are atomics so the
// aggregation in Runtime.Stats can read them while the descriptor is in
// use; each counter is only ever written by the descriptor's current
// owner, so the adds are uncontended.
type txStats struct {
	commits         atomic.Uint64
	readOnlyCommits atomic.Uint64
	aborts          atomic.Uint64
	userErrors      atomic.Uint64
	// Aborts by reason (see the abortReason constants); user-error
	// rollbacks carry no reason, so the three never exceed aborts.
	abortsValidate atomic.Uint64
	abortsAcquire  atomic.Uint64
	abortsInjected atomic.Uint64
	// backoffNanos accumulates wall time spent in backoff between
	// attempts.
	backoffNanos atomic.Uint64
}

// Abort reasons, recorded at the conflict site and banked by rollback:
// acquire is any failure encountering a lock (an orec held by another
// transaction, or a lost acquisition race); validate is any version
// admissibility or read-set validation failure; injected is an abort
// requested by instrumentation hooks.
const (
	reasonNone = iota
	reasonValidate
	reasonAcquire
	reasonInjected
)

// idBlock is how many transaction IDs a descriptor reserves at once, so
// the global counter is touched ~never instead of per attempt.
const idBlock = 1 << 20

// acquireIndexThreshold is the acquire-list length beyond which a
// descriptor maintains acqIndex. Small transactions — the skip hash's
// common case — keep the branch-free linear scan over a few entries;
// large write sets (batch Atomic bodies, long unstitch chains) switch
// to the map before validation turns quadratic.
const acquireIndexThreshold = 32

// begin (re)initializes the descriptor for a fresh attempt.
func (tx *Tx) begin() {
	tx.id++
	if tx.id >= tx.idEnd {
		tx.idEnd = tx.rt.txIDs.Add(idBlock)
		tx.id = tx.idEnd - idBlock + 1
	}
	tx.start = tx.rt.clock.Read()
	tx.strict = tx.rt.strict
	tx.reads = tx.reads[:0]
	tx.undo = tx.undo[:0]
	tx.acquired = tx.acquired[:0]
	tx.hooks = tx.hooks[:0]
	tx.publish = tx.publish[:0]
	tx.end = 0
	tx.local = nil
	if len(tx.acqIndex) > 0 {
		clear(tx.acqIndex)
	}
	tx.instr = tx.rt.loadHooks()
	tx.active = true
}

// hookPoint fires the instrumentation hook at p, reporting whether the
// attempt may proceed (false requests an injected abort).
func (tx *Tx) hookPoint(p Point) bool {
	if tx.instr == nil {
		return true
	}
	return tx.instr.OnPoint(p, tx.id, tx.attempts)
}

// Start returns the transaction's start timestamp. Exposed for tests and
// for data structures that want to reason about snapshot ages.
func (tx *Tx) Start() uint64 { return tx.start }

// conflict aborts the current attempt by unwinding to the retry loop,
// recording the abort's reason for the by-reason counters.
func (tx *Tx) conflict(reason uint8) {
	tx.abortReason = reason
	panic(txAbort{})
}

// versionOK reports whether a version observed on an orec is admissible
// for this transaction's snapshot.
func (tx *Tx) versionOK(ver uint64) bool {
	if tx.strict {
		return ver < tx.start
	}
	return ver <= tx.start
}

// readOrec performs the optimistic pre-read step: it loads the orec and
// aborts unless the orec is unlocked with an admissible version or is
// owned by this transaction. It reports whether the orec is owned by this
// transaction (in which case no post-validation is required).
func (tx *Tx) readOrec(o *Orec) (w orecWord, mine bool) {
	w = o.load()
	if w.locked() {
		if w.owner() == tx.id {
			return w, true
		}
		tx.conflict(reasonAcquire)
	}
	if !tx.versionOK(w.version()) {
		tx.rt.clock.OnAbort()
		tx.conflict(reasonValidate)
	}
	return w, false
}

// postRead validates that the orec did not change while the field was
// being read and records it in the read set.
func (tx *Tx) postRead(o *Orec, w orecWord) {
	if o.load() != w {
		tx.conflict(reasonValidate)
	}
	// Consecutive reads of fields guarded by the same orec are common
	// (several fields of one node); collapse them.
	if n := len(tx.reads); n > 0 && tx.reads[n-1].orec == o {
		return
	}
	tx.reads = append(tx.reads, readEntry{orec: o, seen: w})
}

// acquire takes ownership of the orec at encounter time, aborting on any
// conflict. It is idempotent for orecs this transaction already owns.
func (tx *Tx) acquire(o *Orec) {
	w := o.load()
	if w.locked() {
		if w.owner() == tx.id {
			return
		}
		tx.conflict(reasonAcquire)
	}
	if !tx.versionOK(w.version()) {
		tx.rt.clock.OnAbort()
		tx.conflict(reasonValidate)
	}
	if !o.cas(w, lockWord(tx.id)) {
		tx.conflict(reasonAcquire)
	}
	tx.acquired = append(tx.acquired, acqEntry{orec: o, prev: w})
	if len(tx.acqIndex) > 0 {
		tx.acqIndex[o] = w
	} else if len(tx.acquired) > acquireIndexThreshold {
		if tx.acqIndex == nil {
			tx.acqIndex = make(map[*Orec]orecWord, 2*acquireIndexThreshold)
		}
		for i := range tx.acquired {
			tx.acqIndex[tx.acquired[i].orec] = tx.acquired[i].prev
		}
	}
}

// Acquire takes write ownership of an orec without writing any field.
// Data structures use it to upgrade a node they are about to logically
// modify from optimistic-read to owned, converting commit-time validation
// aborts into eager conflicts. The paper's observation that "remove()
// operations do not read any skip list node that they do not also write"
// relies on exactly this pattern.
func (tx *Tx) Acquire(o *Orec) { tx.acquire(o) }

// logUndoPtr records a pointer field's pre-transaction image. Undo
// entries are applied in reverse order on abort.
func (tx *Tx) logUndoPtr(slot *unsafe.Pointer, old unsafe.Pointer) {
	tx.undo = append(tx.undo, undoEntry{ptr: slot, oldP: old})
}

// logUndoU64 records a uint64 field's pre-transaction image.
func (tx *Tx) logUndoU64(slot *atomic.Uint64, old uint64) {
	tx.undo = append(tx.undo, undoEntry{u64: slot, oldU: old})
}

// logUndoBool records a bool field's pre-transaction image.
func (tx *Tx) logUndoBool(slot *atomic.Bool, old bool) {
	var u uint64
	if old {
		u = 1
	}
	tx.undo = append(tx.undo, undoEntry{b: slot, oldU: u})
}

// OnCommit registers fn to run after this transaction commits. Hooks are
// discarded if the transaction aborts or returns an error, making them
// the right place for side effects that must happen at most once, such as
// the skip hash's per-handle removal-buffer pushes.
func (tx *Tx) OnCommit(fn func()) {
	tx.hooks = append(tx.hooks, fn)
}

// OnPublish registers fn to run inside a successful commit of a writing
// transaction: after read-set validation has succeeded and the commit
// timestamp has been drawn, but before any acquired orec is released.
// This is the serialization observation point durability needs — while
// fn runs, every conflicting transaction is still excluded, so the order
// in which OnPublish hooks of conflicting transactions execute is
// exactly their commit order, and fn receives the commit stamp that
// orders them. fn must be fast (it extends every conflicting writer's
// wait) and must not panic or start new transactions on this runtime.
//
// Hooks are discarded on abort or user error, and read-only commits
// never run them (no stamp is drawn). Registrations do not carry across
// attempts: a retried closure re-registers.
func (tx *Tx) OnPublish(fn func(stamp uint64)) {
	tx.publish = append(tx.publish, fn)
}

// CommitStamp returns the commit timestamp of the transaction's
// successful writing commit. It is meaningful inside OnCommit hooks (and
// after OnPublish has fired); read-only commits report zero.
func (tx *Tx) CommitStamp() uint64 { return tx.end }

// SetLocal attaches per-attempt scratch state to the transaction for
// layers above the STM. The slot is cleared at the start of every
// attempt, so an aborted attempt's state never leaks into its retry;
// callers detect a fresh attempt by Local returning nil (or a value they
// do not own) and rebuild.
func (tx *Tx) SetLocal(v any) { tx.local = v }

// Local returns the per-attempt scratch slot; see SetLocal.
func (tx *Tx) Local() any { return tx.local }

// preAcquireWord returns the version word an orec held before this
// transaction acquired it. ok is false if the orec is not in the acquire
// list. Above acquireIndexThreshold the lookup goes through acqIndex,
// keeping commit-time validation of mixed read/write sets linear.
func (tx *Tx) preAcquireWord(o *Orec) (orecWord, bool) {
	if len(tx.acqIndex) > 0 {
		w, ok := tx.acqIndex[o]
		return w, ok
	}
	for i := range tx.acquired {
		if tx.acquired[i].orec == o {
			return tx.acquired[i].prev, true
		}
	}
	return 0, false
}

// commit attempts to commit. It reports success; on failure the
// transaction has already been rolled back.
func (tx *Tx) commit() bool {
	if len(tx.acquired) == 0 {
		// Read-only fast path: every read was individually validated
		// against the start time, so the snapshot is consistent as of
		// Start() and nothing remains to be done. This is the
		// "negligible overhead" read-only optimization from §2.2.
		if !tx.hookPoint(PointCommit) {
			tx.abortReason = reasonInjected
			tx.rollback()
			return false
		}
		tx.active = false
		tx.stats.commits.Add(1)
		tx.stats.readOnlyCommits.Add(1)
		return true
	}
	if !tx.hookPoint(PointValidate) {
		tx.abortReason = reasonInjected
		tx.rollback()
		return false
	}
	end := tx.rt.clock.Next()
	// Validate the read set: every orec we read must either still hold
	// the word we saw, or be locked by us with its pre-acquire word
	// matching what we saw.
	for i := range tx.reads {
		r := &tx.reads[i]
		w := r.orec.load()
		if w == r.seen {
			continue
		}
		if w.locked() && w.owner() == tx.id {
			if prev, ok := tx.preAcquireWord(r.orec); ok && prev == r.seen {
				continue
			}
		}
		tx.abortReason = reasonValidate
		tx.rollback()
		return false
	}
	if !tx.hookPoint(PointCommit) {
		tx.abortReason = reasonInjected
		tx.rollback()
		return false
	}
	tx.end = end
	// Commit is now decided: run the publish observers while the
	// acquired orecs are still held, so observers of conflicting
	// transactions fire in commit order (see OnPublish).
	for _, f := range tx.publish {
		f(end)
	}
	// Publish: release every acquired orec at the commit timestamp.
	release := versionWord(end)
	for i := range tx.acquired {
		tx.acquired[i].orec.store(release)
	}
	tx.active = false
	tx.stats.commits.Add(1)
	return true
}

// rollback undoes all in-place writes and releases ownership at the
// pre-acquire versions.
func (tx *Tx) rollback() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		e := &tx.undo[i]
		switch {
		case e.ptr != nil:
			atomic.StorePointer(e.ptr, e.oldP)
		case e.u64 != nil:
			e.u64.Store(e.oldU)
		default:
			e.b.Store(e.oldU != 0)
		}
	}
	for i := range tx.acquired {
		tx.acquired[i].orec.store(tx.acquired[i].prev)
	}
	tx.undo = tx.undo[:0]
	tx.acquired = tx.acquired[:0]
	tx.active = false
	tx.stats.aborts.Add(1)
	switch tx.abortReason {
	case reasonValidate:
		tx.stats.abortsValidate.Add(1)
	case reasonAcquire:
		tx.stats.abortsAcquire.Add(1)
	case reasonInjected:
		tx.stats.abortsInjected.Add(1)
	}
	tx.abortReason = reasonNone
}

// runHooks fires the on-commit hooks registered during a successful
// transaction.
func (tx *Tx) runHooks() {
	for _, h := range tx.hooks {
		h()
	}
	tx.hooks = tx.hooks[:0]
}

// backoff applies randomized bounded exponential backoff between
// attempts. Encounter-time locking resolves deadlock by aborting rather
// than waiting, so backoff is what prevents livelock between symmetric
// conflicting transactions.
func (tx *Tx) backoff() {
	t0 := time.Now()
	tx.attempts++
	shift := tx.attempts
	if shift > 12 {
		shift = 12
	}
	spins := tx.nextRand() % (uint64(1) << shift)
	for i := uint64(0); i < spins; i++ {
		// Burn a few cycles without touching shared memory.
		tx.rng += i
	}
	if tx.attempts%8 == 0 {
		runtime.Gosched()
	}
	// Bank the wall time so Stats can report contention-induced delay;
	// this path only runs after an abort, never on a clean commit.
	tx.stats.backoffNanos.Add(uint64(time.Since(t0)))
}

// nextRand is a splitmix64 step seeded per descriptor.
func (tx *Tx) nextRand() uint64 {
	tx.rng += 0x9e3779b97f4a7c15
	z := tx.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
