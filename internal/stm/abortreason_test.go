package stm

import (
	"sync"
	"testing"
	"time"
)

// TestAbortReasons checks that the by-reason abort counters classify
// every abort: injected aborts via hooks, acquire/validate conflicts
// under contention, and that the three reasons sum to Aborts when no
// user errors occur (user-error rollbacks carry no reason).
func TestAbortReasons(t *testing.T) {
	rt := New(WithHooks(NewAbortInjector(7, 1, 4)))
	var c cell
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				_ = rt.Atomic(func(tx *Tx) error {
					c.v.Store(tx, &c.orec, c.v.Load(tx, &c.orec)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	s := rt.Stats()
	if s.Commits != 8000 {
		t.Errorf("commits = %d, want 8000", s.Commits)
	}
	if s.AbortsInjected == 0 {
		t.Error("no injected aborts counted despite the injector")
	}
	if got, want := s.AbortsValidate+s.AbortsAcquire+s.AbortsInjected, s.Aborts; got != want {
		t.Errorf("reason counters sum to %d, want Aborts = %d (%+v)", got, want, s)
	}
	d := s.Sub(Stats{AbortsInjected: 1})
	if d.AbortsInjected != s.AbortsInjected-1 {
		t.Errorf("Sub dropped AbortsInjected: %d", d.AbortsInjected)
	}
}

// TestBackoffNanosAndCommitObserver checks that contended runs bank
// backoff time and that an installed commit observer sees one latency
// per successful commit.
func TestBackoffNanosAndCommitObserver(t *testing.T) {
	rt := New()
	h := &recordingObserver{}
	rt.SetCommitObserver(h)
	var c cell
	var wg sync.WaitGroup
	const workers, per = 4, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = rt.Atomic(func(tx *Tx) error {
					c.v.Store(tx, &c.orec, c.v.Load(tx, &c.orec)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	s := rt.Stats()
	if s.Aborts > 0 && s.BackoffNanos == 0 {
		t.Errorf("aborts %d but zero backoff nanos", s.Aborts)
	}
	h.mu.Lock()
	n := h.n
	h.mu.Unlock()
	if n != workers*per {
		t.Errorf("observer saw %d commits, want %d", n, workers*per)
	}
	rt.SetCommitObserver(nil)
	if err := rt.Atomic(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	if h.n != n {
		t.Error("observer fired after removal")
	}
	h.mu.Unlock()
}

type recordingObserver struct {
	mu sync.Mutex
	n  int
}

func (r *recordingObserver) ObserveNanos(n int64) {
	if n < 0 || time.Duration(n) > time.Hour {
		panic("implausible latency")
	}
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}
