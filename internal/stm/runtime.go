package stm

import (
	"sync"
	"sync/atomic"
	"time"
)

// Runtime is an STM instance: a commit clock plus the descriptor pool and
// statistics registry shared by all transactions running against one set
// of data structures. Multiple Runtimes are fully independent; objects
// must only ever be accessed through transactions of the Runtime that
// owns them.
type Runtime struct {
	clock  Clock
	strict bool
	txIDs  atomic.Uint64

	// hooks is the schedule/fault instrumentation surface (see Hooks).
	// It is swappable at runtime via SetHooks; each attempt snapshots it
	// once at begin, so a swap takes effect at attempt granularity.
	hooks atomic.Pointer[hooksBox]
	// commitObs, when set, receives each successful Atomic call's
	// begin-to-commit latency (retries and backoff included). Loaded
	// once per call; nil costs one atomic load.
	commitObs atomic.Pointer[commitObsBox]
	// backoffSeed derives every descriptor's backoff PRNG stream, making
	// backoff spin counts reproducible per descriptor for a fixed seed.
	backoffSeed uint64

	pool sync.Pool

	mu          sync.Mutex
	descriptors []*Tx

	// fastStripes are the striped fast-read counters (see fastread.go);
	// fastStripeNext round-robins handle assignment across them.
	fastStripes    [fastStripeCount]FastReadCounters
	fastStripeNext atomic.Uint64
}

// hooksBox wraps the Hooks interface value so it can live in an
// atomic.Pointer.
type hooksBox struct{ h Hooks }

// CommitObserver receives successful-commit latencies in nanoseconds.
// The obs package's Histogram satisfies it; keeping the interface here
// keeps the STM dependency-free.
type CommitObserver interface {
	ObserveNanos(n int64)
}

// commitObsBox wraps the observer interface value for atomic.Pointer.
type commitObsBox struct{ o CommitObserver }

// SetCommitObserver installs (or, with nil, removes) the runtime's
// commit-latency observer. When set, every successful Atomic/TryOnce
// call reports its wall time from first begin to commit, including
// retries and backoff.
func (rt *Runtime) SetCommitObserver(o CommitObserver) {
	if o == nil {
		rt.commitObs.Store(nil)
		return
	}
	rt.commitObs.Store(&commitObsBox{o: o})
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithClock selects the commit clock. The default is the monotonic
// "hardware" clock, matching the configuration the paper reports results
// for.
func WithClock(c Clock) Option {
	return func(rt *Runtime) { rt.clock = c }
}

// WithHooks installs schedule/fault hooks at construction; see Hooks
// and SetHooks.
func WithHooks(h Hooks) Option {
	return func(rt *Runtime) { rt.SetHooks(h) }
}

// WithBackoffSeed seeds the per-descriptor backoff PRNG streams. The
// default seed is zero; any fixed seed makes each descriptor's backoff
// spin counts a pure function of its creation index.
func WithBackoffSeed(seed uint64) Option {
	return func(rt *Runtime) { rt.backoffSeed = seed }
}

// New creates an STM runtime.
func New(opts ...Option) *Runtime {
	rt := &Runtime{}
	for _, opt := range opts {
		opt(rt)
	}
	if rt.clock == nil {
		rt.clock = NewMonotonicClock()
	}
	rt.strict = rt.clock.Strict()
	rt.pool.New = func() any {
		tx := &Tx{rt: rt}
		rt.mu.Lock()
		rt.descriptors = append(rt.descriptors, tx)
		tx.rng = mix64(rt.backoffSeed ^ uint64(len(rt.descriptors))*0x9e3779b97f4a7c15)
		rt.mu.Unlock()
		return tx
	}
	return rt
}

// Clock returns the runtime's commit clock.
func (rt *Runtime) Clock() Clock { return rt.clock }

// SetHooks installs (or, with nil, removes) the runtime's schedule and
// fault-injection hooks. The swap is atomic and takes effect at the
// next attempt of each transaction; in-flight attempts finish under the
// hooks they started with.
func (rt *Runtime) SetHooks(h Hooks) {
	if h == nil {
		rt.hooks.Store(nil)
		return
	}
	rt.hooks.Store(&hooksBox{h: h})
}

// loadHooks returns the currently installed hooks, or nil.
func (rt *Runtime) loadHooks() Hooks {
	b := rt.hooks.Load()
	if b == nil {
		return nil
	}
	return b.h
}

// Atomic runs fn as a transaction, retrying until it commits. A non-nil
// error from fn rolls the transaction back and is returned without
// retrying. Panics from fn propagate after the transaction is rolled
// back. Local variables captured by fn are never rolled back
// (atomic(no_local_undo) semantics), so fn must be written to tolerate
// re-execution — or must route all shared mutation through transactional
// fields, which is the normal case.
func (rt *Runtime) Atomic(fn func(tx *Tx) error) error {
	return rt.run(fn, false)
}

// TryOnce runs fn as a transaction that does not retry: a conflict rolls
// the transaction back and returns ErrAborted. This is the paper's
// atomic(try_once) block used by fast-path range queries.
func (rt *Runtime) TryOnce(fn func(tx *Tx) error) error {
	return rt.run(fn, true)
}

func (rt *Runtime) run(fn func(tx *Tx) error, tryOnce bool) error {
	tx := rt.pool.Get().(*Tx)
	defer rt.pool.Put(tx)
	tx.attempts = 0
	var t0 time.Time
	obs := rt.commitObs.Load()
	if obs != nil {
		t0 = time.Now()
	}
	for {
		tx.begin()
		if tx.hookPoint(PointBegin) {
			err, aborted := attempt(tx, fn)
			if !aborted {
				if err != nil {
					tx.rollback()
					tx.stats.userErrors.Add(1)
					return err
				}
				if tx.commit() {
					tx.runHooks()
					if obs != nil {
						obs.o.ObserveNanos(int64(time.Since(t0)))
					}
					return nil
				}
				// Commit-time validation (or an injected abort) failed;
				// commit already rolled back.
			} else {
				tx.rollback()
			}
		} else {
			// Injected abort at begin.
			tx.abortReason = reasonInjected
			tx.rollback()
		}
		if tryOnce {
			return ErrAborted
		}
		tx.backoff()
	}
}

// attempt executes fn, converting the abort sentinel panic into a flag
// while letting genuine panics escape (after the caller rolls back).
func attempt(tx *Tx, fn func(tx *Tx) error) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(txAbort); ok {
				aborted = true
				return
			}
			tx.rollback()
			panic(r)
		}
	}()
	return fn(tx), false
}

// Stats aggregates commit/abort counters across every descriptor the
// runtime has ever created. It is safe to call concurrently with running
// transactions; the counts are a consistent-enough snapshot for
// reporting.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	descriptors := make([]*Tx, len(rt.descriptors))
	copy(descriptors, rt.descriptors)
	rt.mu.Unlock()
	var s Stats
	for _, tx := range descriptors {
		s.Commits += tx.stats.commits.Load()
		s.ReadOnlyCommits += tx.stats.readOnlyCommits.Load()
		s.Aborts += tx.stats.aborts.Load()
		s.UserErrors += tx.stats.userErrors.Load()
		s.AbortsValidate += tx.stats.abortsValidate.Load()
		s.AbortsAcquire += tx.stats.abortsAcquire.Load()
		s.AbortsInjected += tx.stats.abortsInjected.Load()
		s.BackoffNanos += tx.stats.backoffNanos.Load()
	}
	rt.sumFastReads(&s)
	return s
}

// Stats is a snapshot of runtime-wide transaction counters.
type Stats struct {
	// Commits counts successfully committed transactions.
	Commits uint64
	// ReadOnlyCommits counts the subset of Commits that never wrote.
	ReadOnlyCommits uint64
	// Aborts counts rolled-back attempts (conflicts and failed
	// commit-time validations, including TryOnce failures).
	Aborts uint64
	// AbortsValidate/AbortsAcquire/AbortsInjected split Aborts by
	// reason: version-admissibility and read-set validation failures;
	// lock conflicts (an orec held by another transaction, or a lost
	// acquisition race); and aborts injected by instrumentation hooks.
	// User-error rollbacks carry no reason, so the three sum to at
	// most Aborts.
	AbortsValidate uint64
	AbortsAcquire  uint64
	AbortsInjected uint64
	// BackoffNanos is wall time spent in inter-attempt backoff — the
	// contention-induced delay behind the abort counts.
	BackoffNanos uint64
	// UserErrors counts transactions rolled back because the closure
	// returned a non-nil error.
	UserErrors uint64
	// FastReadHits counts point reads answered by the optimistic
	// non-transactional fast path (see fastread.go): no transaction
	// started, no orec acquired.
	FastReadHits uint64
	// FastReadFallbacks counts fast-path attempts that observed a locked
	// orec, a too-new version, or a failed revalidation and fell back to
	// a full transaction (the fallback's commit is counted normally).
	FastReadFallbacks uint64
}

// Sub returns the element-wise difference s - prev, for windowed
// measurements.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Commits:           s.Commits - prev.Commits,
		ReadOnlyCommits:   s.ReadOnlyCommits - prev.ReadOnlyCommits,
		Aborts:            s.Aborts - prev.Aborts,
		AbortsValidate:    s.AbortsValidate - prev.AbortsValidate,
		AbortsAcquire:     s.AbortsAcquire - prev.AbortsAcquire,
		AbortsInjected:    s.AbortsInjected - prev.AbortsInjected,
		BackoffNanos:      s.BackoffNanos - prev.BackoffNanos,
		UserErrors:        s.UserErrors - prev.UserErrors,
		FastReadHits:      s.FastReadHits - prev.FastReadHits,
		FastReadFallbacks: s.FastReadFallbacks - prev.FastReadFallbacks,
	}
}
