package stm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

type cell struct {
	orec Orec
	v    U64
}

func TestOrecWordEncoding(t *testing.T) {
	tests := []struct {
		name   string
		word   orecWord
		locked bool
		val    uint64
	}{
		{"zero is unlocked version 0", versionWord(0), false, 0},
		{"version 42", versionWord(42), false, 42},
		{"lock by tx 7", lockWord(7), true, 7},
		{"large version", versionWord(1 << 60), false, 1 << 60},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.word.locked(); got != tt.locked {
				t.Errorf("locked() = %v, want %v", got, tt.locked)
			}
			if tt.locked {
				if got := tt.word.owner(); got != tt.val {
					t.Errorf("owner() = %d, want %d", got, tt.val)
				}
			} else {
				if got := tt.word.version(); got != tt.val {
					t.Errorf("version() = %d, want %d", got, tt.val)
				}
			}
		})
	}
}

func TestAtomicReadWrite(t *testing.T) {
	rt := New()
	var c cell
	if err := rt.Atomic(func(tx *Tx) error {
		c.v.Store(tx, &c.orec, 41)
		got := c.v.Load(tx, &c.orec)
		if got != 41 {
			t.Errorf("read-after-write inside tx = %d, want 41", got)
		}
		c.v.Store(tx, &c.orec, got+1)
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got := c.v.Raw(); got != 42 {
		t.Errorf("committed value = %d, want 42", got)
	}
	if c.orec.Locked() {
		t.Error("orec still locked after commit")
	}
}

func TestUserErrorRollsBack(t *testing.T) {
	rt := New()
	var c cell
	c.v.Init(10)
	wantErr := errors.New("boom")
	err := rt.Atomic(func(tx *Tx) error {
		c.v.Store(tx, &c.orec, 99)
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Atomic error = %v, want %v", err, wantErr)
	}
	if got := c.v.Raw(); got != 10 {
		t.Errorf("value after rollback = %d, want 10", got)
	}
	if c.orec.Locked() {
		t.Error("orec still locked after rollback")
	}
}

func TestPanicRollsBackAndPropagates(t *testing.T) {
	rt := New()
	var c cell
	c.v.Init(7)
	func() {
		defer func() {
			if r := recover(); r != "kapow" {
				t.Errorf("recovered %v, want kapow", r)
			}
		}()
		_ = rt.Atomic(func(tx *Tx) error {
			c.v.Store(tx, &c.orec, 1)
			panic("kapow")
		})
	}()
	if got := c.v.Raw(); got != 7 {
		t.Errorf("value after panic rollback = %d, want 7", got)
	}
	if c.orec.Locked() {
		t.Error("orec still locked after panic rollback")
	}
}

func TestTryOnceAbortsOnConflict(t *testing.T) {
	rt := New()
	var c cell

	// Lock the orec as if another transaction owned it.
	other := lockWord(1 << 40)
	c.orec.store(other)
	err := rt.TryOnce(func(tx *Tx) error {
		_ = c.v.Load(tx, &c.orec)
		return nil
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("TryOnce with locked orec = %v, want ErrAborted", err)
	}
	c.orec.store(versionWord(0))
	if err := rt.TryOnce(func(tx *Tx) error {
		c.v.Store(tx, &c.orec, 5)
		return nil
	}); err != nil {
		t.Fatalf("TryOnce without conflict: %v", err)
	}
	if got := c.v.Raw(); got != 5 {
		t.Errorf("value = %d, want 5", got)
	}
}

func TestOnCommitHooks(t *testing.T) {
	rt := New()
	var c cell

	t.Run("run on commit", func(t *testing.T) {
		fired := 0
		if err := rt.Atomic(func(tx *Tx) error {
			c.v.Store(tx, &c.orec, 1)
			tx.OnCommit(func() { fired++ })
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if fired != 1 {
			t.Errorf("hook fired %d times, want 1", fired)
		}
	})

	t.Run("dropped on user error", func(t *testing.T) {
		fired := 0
		_ = rt.Atomic(func(tx *Tx) error {
			tx.OnCommit(func() { fired++ })
			return errors.New("no")
		})
		if fired != 0 {
			t.Errorf("hook fired %d times after rollback, want 0", fired)
		}
	})

	t.Run("fired once despite retries", func(t *testing.T) {
		fired := 0
		tries := 0
		if err := rt.Atomic(func(tx *Tx) error {
			tries++
			if tries == 1 {
				tx.OnCommit(func() { fired++ })
				tx.conflict(reasonAcquire) // force a retry after registering
			}
			tx.OnCommit(func() { fired++ })
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if fired != 1 {
			t.Errorf("hook fired %d times, want exactly 1", fired)
		}
	})
}

func TestReadOnlySnapshotConsistency(t *testing.T) {
	// A read-only transaction must never observe a half-applied update
	// to a pair of cells kept equal by writers.
	rt := New()
	var a, b cell
	const writers = 4
	const iters = 3000

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < iters; i++ {
				_ = rt.Atomic(func(tx *Tx) error {
					v := a.v.Load(tx, &a.orec)
					a.v.Store(tx, &a.orec, v+1)
					b.v.Store(tx, &b.orec, v+1)
					return nil
				})
			}
		}()
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = rt.Atomic(func(tx *Tx) error {
				av := a.v.Load(tx, &a.orec)
				bv := b.v.Load(tx, &b.orec)
				if av != bv {
					t.Errorf("torn snapshot: a=%d b=%d", av, bv)
				}
				return nil
			})
		}
	}()
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if got, want := a.v.Raw(), b.v.Raw(); got != want {
		t.Errorf("final a=%d b=%d, want equal", got, want)
	}
}

func TestConcurrentCountersSumPreserved(t *testing.T) {
	// Bank-transfer invariant: concurrent transfers between random
	// accounts preserve the total.
	for _, clk := range []Clock{NewGV1(), NewGV5(), NewMonotonicClock()} {
		t.Run(clk.Name(), func(t *testing.T) {
			rt := New(WithClock(clk))
			const nAccounts = 16
			const perAccount = 1000
			accounts := make([]cell, nAccounts)
			for i := range accounts {
				accounts[i].v.Init(perAccount)
			}
			const goroutines = 8
			const transfers = 2000
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := seed
					next := func() uint64 {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						return rng
					}
					for i := 0; i < transfers; i++ {
						from := &accounts[next()%nAccounts]
						to := &accounts[next()%nAccounts]
						if from == to {
							continue
						}
						_ = rt.Atomic(func(tx *Tx) error {
							fv := from.v.Load(tx, &from.orec)
							if fv == 0 {
								return nil
							}
							from.v.Store(tx, &from.orec, fv-1)
							tv := to.v.Load(tx, &to.orec)
							to.v.Store(tx, &to.orec, tv+1)
							return nil
						})
					}
				}(uint64(g) + 1)
			}
			wg.Wait()
			var total uint64
			for i := range accounts {
				total += accounts[i].v.Raw()
			}
			if total != nAccounts*perAccount {
				t.Errorf("total = %d, want %d", total, nAccounts*perAccount)
			}
		})
	}
}

func TestStatsCounting(t *testing.T) {
	rt := New()
	var c cell
	before := rt.Stats()
	for i := 0; i < 5; i++ {
		_ = rt.Atomic(func(tx *Tx) error {
			c.v.Store(tx, &c.orec, uint64(i))
			return nil
		})
	}
	_ = rt.Atomic(func(tx *Tx) error {
		_ = c.v.Load(tx, &c.orec)
		return nil
	})
	s := rt.Stats().Sub(before)
	if s.Commits != 6 {
		t.Errorf("Commits = %d, want 6", s.Commits)
	}
	if s.ReadOnlyCommits != 1 {
		t.Errorf("ReadOnlyCommits = %d, want 1", s.ReadOnlyCommits)
	}
}

func TestClockMonotonic(t *testing.T) {
	for _, clk := range []Clock{NewGV1(), NewMonotonicClock()} {
		t.Run(clk.Name(), func(t *testing.T) {
			last := uint64(0)
			for i := 0; i < 1000; i++ {
				n := clk.Next()
				if n < last {
					t.Fatalf("Next went backwards: %d after %d", n, last)
				}
				last = n
			}
		})
	}
}

func TestGV5Semantics(t *testing.T) {
	c := NewGV5()
	if got := c.Next(); got != 1 {
		t.Errorf("first Next = %d, want 1 (counter untouched)", got)
	}
	if got := c.Read(); got != 0 {
		t.Errorf("Read after Next = %d, want 0", got)
	}
	c.OnAbort()
	if got := c.Read(); got != 1 {
		t.Errorf("Read after OnAbort = %d, want 1", got)
	}
}

func TestPtrFieldNilAndValues(t *testing.T) {
	rt := New()
	type obj struct {
		orec Orec
		p    Ptr[int]
	}
	var o obj
	x := 12
	if err := rt.Atomic(func(tx *Tx) error {
		if got := o.p.Load(tx, &o.orec); got != nil {
			t.Errorf("initial pointer = %v, want nil", got)
		}
		o.p.Store(tx, &o.orec, &x)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := o.p.Raw(); got != &x {
		t.Errorf("pointer = %p, want %p", got, &x)
	}
}

func TestValField(t *testing.T) {
	rt := New()
	type obj struct {
		orec Orec
		s    Val[string]
	}
	var o obj
	if err := rt.Atomic(func(tx *Tx) error {
		if got := o.s.Load(tx, &o.orec); got != "" {
			t.Errorf("zero Val = %q, want empty", got)
		}
		o.s.Store(tx, &o.orec, "hello")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := o.s.Raw(); got != "hello" {
		t.Errorf("Val = %q, want hello", got)
	}
}

func TestBoolField(t *testing.T) {
	rt := New()
	type obj struct {
		orec Orec
		b    Bool
	}
	var o obj
	if err := rt.Atomic(func(tx *Tx) error {
		o.b.Store(tx, &o.orec, true)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !o.b.Raw() {
		t.Error("Bool = false, want true")
	}
	err := rt.Atomic(func(tx *Tx) error {
		o.b.Store(tx, &o.orec, false)
		return errors.New("rollback")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !o.b.Raw() {
		t.Error("Bool rolled back to false, want true restored")
	}
}

// TestQuickTransactionalModel drives a random batch of increments across
// cells through the STM and checks the result against a sequential model.
func TestQuickTransactionalModel(t *testing.T) {
	rt := New()
	f := func(ops []uint8) bool {
		const n = 8
		cells := make([]cell, n)
		model := make([]uint64, n)
		for _, op := range ops {
			i := int(op) % n
			j := int(op/8) % n
			_ = rt.Atomic(func(tx *Tx) error {
				vi := cells[i].v.Load(tx, &cells[i].orec)
				cells[i].v.Store(tx, &cells[i].orec, vi+1)
				if i != j {
					vj := cells[j].v.Load(tx, &cells[j].orec)
					cells[j].v.Store(tx, &cells[j].orec, vj+2)
				}
				return nil
			})
			model[i]++
			if i != j {
				model[j] += 2
			}
		}
		for i := range cells {
			if cells[i].v.Raw() != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriteWriteConflictSerializes(t *testing.T) {
	// Two goroutines hammering the same cell with read-modify-write
	// transactions must produce exactly the sum of their increments.
	rt := New()
	var c cell
	const goroutines = 8
	const iters = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = rt.Atomic(func(tx *Tx) error {
					v := c.v.Load(tx, &c.orec)
					c.v.Store(tx, &c.orec, v+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := c.v.Raw(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
}

func TestMultipleWritesSameFieldUndoOrder(t *testing.T) {
	rt := New()
	var c cell
	c.v.Init(100)
	err := rt.Atomic(func(tx *Tx) error {
		c.v.Store(tx, &c.orec, 1)
		c.v.Store(tx, &c.orec, 2)
		c.v.Store(tx, &c.orec, 3)
		return errors.New("rollback")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := c.v.Raw(); got != 100 {
		t.Errorf("value after rollback = %d, want original 100", got)
	}
}

func TestStartTimestampAdvances(t *testing.T) {
	rt := New()
	var c cell
	var first, second uint64
	_ = rt.Atomic(func(tx *Tx) error {
		first = tx.Start()
		c.v.Store(tx, &c.orec, 1)
		return nil
	})
	_ = rt.Atomic(func(tx *Tx) error {
		second = tx.Start()
		_ = c.v.Load(tx, &c.orec) // must succeed: committed before we began
		return nil
	})
	if second < first {
		t.Errorf("start timestamps went backwards: %d then %d", first, second)
	}
}

func ExampleRuntime_Atomic() {
	rt := New()
	var c cell
	_ = rt.Atomic(func(tx *Tx) error {
		c.v.Store(tx, &c.orec, 42)
		return nil
	})
	fmt.Println(c.v.Raw())
	// Output: 42
}
