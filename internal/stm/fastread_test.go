package stm

import (
	"sync"
	"testing"
)

// mustStore commits one transactional store of v into c.
func mustStore(t *testing.T, rt *Runtime, c *cell, v uint64) {
	t.Helper()
	if err := rt.Atomic(func(tx *Tx) error {
		c.v.Store(tx, &c.orec, v)
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
}

func TestFastReadHitSeesCommittedValue(t *testing.T) {
	for _, clk := range []struct {
		name string
		opts []Option
	}{
		{"hwclock", nil},
		{"gv1", []Option{WithClock(NewGV1())}},
	} {
		t.Run(clk.name, func(t *testing.T) {
			rt := New(clk.opts...)
			var c cell
			mustStore(t, rt, &c, 42)

			s, ok := c.orec.Sample()
			if !ok {
				t.Fatal("Sample failed on a quiescent orec")
			}
			got := c.v.Raw()
			if !s.Valid() {
				t.Fatal("Valid failed with no concurrent writer")
			}
			if got != 42 {
				t.Fatalf("fast read = %d, want 42", got)
			}
		})
	}
}

func TestFastReadSampleFailsOnLockedOrec(t *testing.T) {
	rt := New()
	var c cell
	if err := rt.Atomic(func(tx *Tx) error {
		c.v.Store(tx, &c.orec, 1) // acquires c.orec for this attempt
		if _, ok := c.orec.Sample(); ok {
			t.Error("Sample succeeded on a locked orec")
		}
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
}

func TestFastReadValidDetectsConcurrentCommit(t *testing.T) {
	rt := New()
	var c cell
	mustStore(t, rt, &c, 1)

	s, ok := c.orec.Sample()
	if !ok {
		t.Fatal("Sample failed on a quiescent orec")
	}
	mustStore(t, rt, &c, 2) // commits between Sample and Valid
	if s.Valid() {
		t.Error("Valid accepted an orec a writer committed to mid-read")
	}
	// A fresh sample sees the new version and validates.
	s, ok = c.orec.Sample()
	if !ok || !s.Valid() {
		t.Error("fresh sample rejected a quiescent orec after a commit")
	}
}

func TestFastReadZeroSampleInvalid(t *testing.T) {
	var s OrecSample
	if s.Valid() {
		t.Error("zero OrecSample validated")
	}
}

func TestFastReadCountersSumIntoStats(t *testing.T) {
	rt := New()
	before := rt.Stats()

	// More handles than stripes, exercising round-robin reuse.
	var wg sync.WaitGroup
	const handles, per = fastStripeCount + 5, 7
	for i := 0; i < handles; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fc := rt.FastReadCounters()
			for j := 0; j < per; j++ {
				fc.Hit()
			}
			fc.Fallback()
		}()
	}
	wg.Wait()

	d := rt.Stats().Sub(before)
	if d.FastReadHits != handles*per {
		t.Errorf("FastReadHits = %d, want %d", d.FastReadHits, handles*per)
	}
	if d.FastReadFallbacks != handles {
		t.Errorf("FastReadFallbacks = %d, want %d", d.FastReadFallbacks, handles)
	}
	if d.Commits != 0 {
		t.Errorf("fast-read counting committed %d transactions", d.Commits)
	}
}
