package vcas

import (
	"sync"
	"testing"

	"sync/atomic"

	"repro/internal/epoch"
)

func TestReadAfterInit(t *testing.T) {
	src := epoch.NewCounterSource()
	var p VPointer[int64]
	p.Init(7)
	if got := p.Read(src); got != 7 {
		t.Errorf("Read = %d, want 7", got)
	}
}

func TestZeroValueUsable(t *testing.T) {
	src := epoch.NewCounterSource()
	var p VPointer[int64]
	if got := p.Read(src); got != 0 {
		t.Errorf("zero VPointer Read = %d, want 0", got)
	}
	if v, ok := p.ReadVersion(src, src.Snapshot()); !ok || v != 0 {
		t.Errorf("zero VPointer ReadVersion = %d,%v", v, ok)
	}
}

func TestCASSemantics(t *testing.T) {
	src := epoch.NewCounterSource()
	var p VPointer[int64]
	p.Init(1)
	if p.CompareAndSwap(src, 2, 3) {
		t.Error("CAS with wrong expected value succeeded")
	}
	if !p.CompareAndSwap(src, 1, 2) {
		t.Error("CAS with correct expected value failed")
	}
	if got := p.Read(src); got != 2 {
		t.Errorf("Read after CAS = %d", got)
	}
	if !p.CompareAndSwap(src, 2, 2) {
		t.Error("idempotent CAS failed")
	}
	if got := p.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2 (idempotent CAS installs nothing)", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	src := epoch.NewCounterSource()
	var p VPointer[int64]
	p.Init(10)
	ts1 := src.Snapshot()
	if !p.CompareAndSwap(src, 10, 20) {
		t.Fatal("CAS failed")
	}
	ts2 := src.Snapshot()
	if !p.CompareAndSwap(src, 20, 30) {
		t.Fatal("CAS failed")
	}
	if v, ok := p.ReadVersion(src, ts1); !ok || v != 10 {
		t.Errorf("at ts1: %d,%v want 10", v, ok)
	}
	if v, ok := p.ReadVersion(src, ts2); !ok || v != 20 {
		t.Errorf("at ts2: %d,%v want 20", v, ok)
	}
	if got := p.Read(src); got != 30 {
		t.Errorf("current = %d, want 30", got)
	}
}

func TestSnapshotIsolationHybridSource(t *testing.T) {
	src := epoch.NewHybridSource()
	var p VPointer[int64]
	p.Init(10)
	ts1 := src.Snapshot()
	if !p.CompareAndSwap(src, 10, 20) {
		t.Fatal("CAS failed")
	}
	if v, ok := p.ReadVersion(src, ts1); !ok || v != 10 {
		t.Errorf("at ts1: %d,%v want 10 (hybrid stamps must exceed snapshot)", v, ok)
	}
}

func TestPrune(t *testing.T) {
	src := epoch.NewCounterSource()
	var p VPointer[int64]
	p.Init(0)
	var stamps []uint64
	for i := int64(1); i <= 10; i++ {
		stamps = append(stamps, src.Snapshot()) // advance the clock
		if !p.CompareAndSwap(src, i-1, i) {
			t.Fatal("CAS failed")
		}
	}
	if got := p.Depth(); got != 11 {
		t.Fatalf("Depth = %d, want 11", got)
	}
	min := stamps[7]
	p.Prune(src, min)
	if got := p.Depth(); got > 5 {
		t.Errorf("Depth after prune = %d, want <= 5", got)
	}
	// Everything at or after min must still resolve.
	if v, ok := p.ReadVersion(src, min); !ok || v < 7 {
		t.Errorf("ReadVersion(min) = %d,%v", v, ok)
	}
}

func TestTracker(t *testing.T) {
	var tr epoch.Tracker
	if got := tr.Min(); got != ^uint64(0) {
		t.Errorf("empty tracker Min = %d", got)
	}
	t1 := tr.Enter(100)
	t2 := tr.Enter(50)
	if got := tr.Min(); got != 50 {
		t.Errorf("Min = %d, want 50", got)
	}
	tr.Exit(t2)
	if got := tr.Min(); got != 100 {
		t.Errorf("Min = %d, want 100", got)
	}
	tr.Exit(t1)
	if got := tr.Min(); got != ^uint64(0) {
		t.Errorf("Min after exits = %d", got)
	}
}

func TestConcurrentCASCounting(t *testing.T) {
	// Exactly one CAS per expected value can succeed.
	src := epoch.NewHybridSource()
	var p VPointer[int64]
	p.Init(0)
	const goroutines = 8
	const rounds = 500
	var successes atomic64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < rounds; i++ {
				if p.CompareAndSwap(src, i, i+1) {
					successes.add(1)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := p.Read(src); got != rounds {
		t.Errorf("final value = %d, want %d", got, rounds)
	}
	if got := successes.load(); got != rounds {
		t.Errorf("successful CASes = %d, want %d", got, rounds)
	}
}

func TestConcurrentSnapshotsSeeMonotonicHistory(t *testing.T) {
	// Readers at increasing snapshots must see non-decreasing values of
	// a monotonically incremented cell.
	src := epoch.NewCounterSource()
	var p VPointer[int64]
	p.Init(0)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := int64(0); i < 3000; i++ {
			p.CompareAndSwap(src, i, i+1)
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			lastTS := uint64(0)
			lastVal := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts := src.Snapshot()
				v, ok := p.ReadVersion(src, ts)
				if !ok {
					t.Error("ReadVersion found no version")
					return
				}
				if ts >= lastTS && v < lastVal {
					t.Errorf("snapshot went backwards: ts %d -> %d but val %d -> %d",
						lastTS, ts, lastVal, v)
					return
				}
				lastTS, lastVal = ts, v
			}
		}()
	}
	writer.Wait()
	close(stop)
	readers.Wait()
}

type atomic64 struct{ v atomic.Int64 }

func (a *atomic64) add(d int64) { a.v.Add(d) }
func (a *atomic64) load() int64 { return a.v.Load() }
