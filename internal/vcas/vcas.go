// Package vcas implements versioned compare-and-swap pointers, the
// substrate of the vCAS baselines (Wei et al., "Constant-Time Snapshots
// with Applications to Concurrent Data Structures", PPoPP 2021): every
// mutable pointer keeps a timestamped version list, writers install new
// versions with a CAS-compatible interface, and range queries read the
// version that was current at their snapshot timestamp.
//
// The timestamp-initialization ("initTS") protocol is reproduced: a
// version is installed unstamped and stamped immediately afterwards;
// readers that encounter an unstamped version help stamp it, so a
// version's timestamp is fixed before anyone depends on it.
package vcas

import (
	"sync/atomic"

	"repro/internal/epoch"
)

// unstamped marks a version whose timestamp has not been fixed yet.
const unstamped = 0

// initialTS is the stamp of a version installed before the structure is
// shared; it is visible to every snapshot.
const initialTS = 1

// Version is one entry of a version list. Values are immutable; the
// timestamp is fixed once by the initTS protocol.
type Version[T comparable] struct {
	val  T
	ts   atomic.Uint64
	next atomic.Pointer[Version[T]]
}

// VPointer is a versioned mutable cell of type T. The zero value holds
// the zero value of T at the initial timestamp.
type VPointer[T comparable] struct {
	head atomic.Pointer[Version[T]]
}

// Init sets the initial value with a timestamp visible to all snapshots.
// It must happen before the VPointer is shared.
func (p *VPointer[T]) Init(v T) {
	ver := &Version[T]{val: v}
	ver.ts.Store(initialTS)
	p.head.Store(ver)
}

func (p *VPointer[T]) loadHead(src epoch.Source) *Version[T] {
	h := p.head.Load()
	if h == nil {
		// Lazily materialize the zero value so the zero VPointer works.
		ver := &Version[T]{}
		ver.ts.Store(initialTS)
		if p.head.CompareAndSwap(nil, ver) {
			return ver
		}
		h = p.head.Load()
	}
	initTS(h, src)
	return h
}

// initTS fixes v's timestamp if it is still unstamped; concurrent
// helpers race benignly via CAS.
func initTS[T comparable](v *Version[T], src epoch.Source) {
	if v.ts.Load() == unstamped {
		v.ts.CompareAndSwap(unstamped, src.Stamp())
	}
}

// Read returns the current value.
func (p *VPointer[T]) Read(src epoch.Source) T {
	return p.loadHead(src).val
}

// ReadVersion returns the value that was current at snapshot ts: the
// newest version whose stamp is <= ts. If every version is newer, the
// zero value of T and false are returned (the cell did not exist at ts).
func (p *VPointer[T]) ReadVersion(src epoch.Source, ts uint64) (T, bool) {
	for v := p.loadHead(src); v != nil; v = v.next.Load() {
		initTS(v, src)
		if v.ts.Load() <= ts {
			return v.val, true
		}
	}
	var zero T
	return zero, false
}

// CompareAndSwap installs new if the current value equals old, reporting
// success. On success the new version's timestamp is fixed before
// returning. A CAS where old == new succeeds without installing a
// version, as in the original (idempotent writes need no version).
func (p *VPointer[T]) CompareAndSwap(src epoch.Source, old, new T) bool {
	h := p.loadHead(src)
	if h.val != old {
		return false
	}
	if old == new {
		return true
	}
	n := &Version[T]{val: new}
	n.next.Store(h)
	if !p.head.CompareAndSwap(h, n) {
		return false
	}
	initTS(n, src)
	return true
}

// ReadVersioned returns the current value together with its version
// handle. The handle can be passed to CompareAndSwapVersion for an
// ABA-immune update: a later write of the same value installs a new
// version object, so a stale CAS against the old handle fails even
// though the values match. The Ellen-style BST needs exactly this (a
// deleted leaf's sibling can be promoted back into the same child slot,
// recreating the old value).
func (p *VPointer[T]) ReadVersioned(src epoch.Source) (T, *Version[T]) {
	h := p.loadHead(src)
	return h.val, h
}

// CompareAndSwapVersion installs new iff the current head version is
// exactly expected (pointer identity), reporting success. The new
// version's timestamp is fixed before returning.
func (p *VPointer[T]) CompareAndSwapVersion(src epoch.Source, expected *Version[T], new T) bool {
	n := &Version[T]{val: new}
	n.next.Store(expected)
	if !p.head.CompareAndSwap(expected, n) {
		return false
	}
	initTS(n, src)
	return true
}

// Prune drops versions strictly older than needed than minActive: the
// newest version with ts <= minActive is kept as the boundary and
// everything behind it is unlinked, letting the garbage collector
// reclaim it. Safe because every active snapshot is >= minActive and
// later snapshots only grow.
func (p *VPointer[T]) Prune(src epoch.Source, minActive uint64) {
	v := p.head.Load()
	if v == nil {
		return
	}
	for ; v != nil; v = v.next.Load() {
		initTS(v, src)
		if v.ts.Load() <= minActive {
			v.next.Store(nil)
			return
		}
	}
}

// Depth reports the current version-list length (for tests and GC
// heuristics).
func (p *VPointer[T]) Depth() int {
	n := 0
	for v := p.head.Load(); v != nil; v = v.next.Load() {
		n++
	}
	return n
}
