// Package linearize provides history recording and linearizability
// checking for the ordered maps in this repository.
//
// # History format
//
// A history is a flat slice of completed operations ([Op]). Every Op
// carries the invoking client, the operation kind with its arguments
// and recorded outputs, and two timestamps: Call, drawn immediately
// before the operation was invoked, and Return, drawn immediately
// after it returned. Timestamps come from one shared atomic counter
// ([Recorder]), so they form a total order consistent with real time:
// if a.Return < b.Call then operation a really did complete before b
// was invoked. Concurrent operations have overlapping [Call, Return]
// intervals, and the checker is free to order them either way.
//
// # Checker
//
// [Check] decides whether a history is linearizable with respect to
// the sequential ordered-map specification: does some total order of
// the operations exist that (1) respects the real-time partial order
// above and (2) makes every recorded output correct when the
// operations are applied sequentially? The search is the classic
// Wing & Gong algorithm with Lowe's memoization (the same shape as
// Porcupine's): walk the history, tentatively linearize any operation
// whose call is enabled, cache visited (linearized-set, state) pairs,
// and backtrack on dead ends.
//
// # Partitioning and its limits
//
// Linearizability is compositional per object, and for a map each key
// behaves as an independent object, so the checker first partitions the
// history: single-key operations (Insert/Remove/Lookup and batch steps)
// partition by key; multi-key operations (Range, Ceil/Floor/Succ/Pred,
// multi-key batches) fuse the partitions of every key in their
// footprint. A history of purely single-key traffic therefore checks in
// near-linear time however long it is, while a history with
// whole-universe range queries collapses into one partition whose check
// is worst-case exponential — that is the fundamental limit of
// linearizability checking, not an implementation shortcut. CheckOpts
// accepts a search budget; when it is exhausted the result is reported
// as Unknown rather than pretending either verdict.
//
// # Reproducing a failure
//
// The harnesses in internal/maptest and cmd/skipstress generate every
// workload from a seed; a failure report prints the seed and the
// offending partition's operations (see FormatOps). Re-running with the
// same seed regenerates the identical operation streams; combined with
// the deterministic schedule hooks in internal/stm (StepScheduler,
// AbortInjector) the interleaving itself is replayed from the seed.
package linearize

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/kv"
)

// KV is a key/value pair as produced by range queries.
type KV = kv.KV

// Kind identifies an operation in a history.
type Kind uint8

const (
	// Insert adds Key->Val if absent; Ok reports whether it did.
	Insert Kind = iota
	// Remove deletes Key; Ok reports whether it was present.
	Remove
	// Lookup reads Key; Ok reports presence, OutVal the value.
	Lookup
	// Ceil finds the smallest key >= Key (outputs OutKey/OutVal/Ok).
	Ceil
	// Floor finds the largest key <= Key.
	Floor
	// Succ finds the smallest key > Key.
	Succ
	// Pred finds the largest key < Key.
	Pred
	// Range collects [Lo, Hi] in key order into Pairs.
	Range
	// Batch applies Steps atomically, in order.
	Batch
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Insert:
		return "Insert"
	case Remove:
		return "Remove"
	case Lookup:
		return "Lookup"
	case Ceil:
		return "Ceil"
	case Floor:
		return "Floor"
	case Succ:
		return "Succ"
	case Pred:
		return "Pred"
	case Range:
		return "Range"
	case Batch:
		return "Batch"
	}
	return "?"
}

// Step is one primitive inside an atomic batch: Insert, Remove, or
// Lookup with the same argument/output conventions as the standalone
// kinds.
type Step struct {
	Kind Kind
	Key  int64
	Val  int64
	Ok   bool
	Out  int64 // Lookup's value
}

// ApplySteps runs batch steps against any map's primitive operations,
// filling in each step's outputs. It is the one dispatch loop every
// Batcher adapter shares, so step semantics cannot drift between them;
// callers re-executing a transactional closure may call it repeatedly
// (each run overwrites the outputs).
func ApplySteps(steps []Step,
	insert func(k, v int64) bool, remove func(k int64) bool, lookup func(k int64) (int64, bool)) {
	for i := range steps {
		s := &steps[i]
		switch s.Kind {
		case Insert:
			s.Ok = insert(s.Key, s.Val)
		case Remove:
			s.Ok = remove(s.Key)
		case Lookup:
			s.Out, s.Ok = lookup(s.Key)
		}
	}
}

// Op is one completed operation of a history.
type Op struct {
	// Client identifies the invoking client; it is informational (the
	// real-time order lives in the timestamps).
	Client int
	// Call and Return are the invocation and response timestamps, drawn
	// from one Recorder. Call < Return, and all stamps are unique.
	Call, Return int64

	Kind Kind
	// Key is the argument key (single-key ops and point queries); Val
	// the inserted value.
	Key, Val int64
	// Lo, Hi bound a Range.
	Lo, Hi int64

	// Ok is the success/presence output.
	Ok bool
	// OutKey, OutVal are point-query outputs (OutVal doubles as
	// Lookup's value).
	OutKey, OutVal int64
	// Pairs is a Range's output.
	Pairs []KV
	// Steps is a Batch's body, outputs filled in.
	Steps []Step
}

// Recorder issues history timestamps from one atomic counter and owns
// the per-client operation logs. Each client goroutine uses its own
// Client; after all clients are done, Merge collects the history.
type Recorder struct {
	clock atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Now draws the next timestamp.
func (r *Recorder) Now() int64 { return r.clock.Add(1) }

// NewClient returns a log for one client goroutine. id should be
// unique per client; the Client is not safe for concurrent use.
func (r *Recorder) NewClient(id int) *Client {
	return &Client{r: r, id: id}
}

// Client is a single goroutine's operation log.
type Client struct {
	r   *Recorder
	id  int
	ops []Op
}

// Now draws a timestamp from the shared counter.
func (c *Client) Now() int64 { return c.r.Now() }

// Add appends a completed operation, stamping its Client field.
func (c *Client) Add(op Op) {
	op.Client = c.id
	c.ops = append(c.ops, op)
}

// Ops returns the client's log.
func (c *Client) Ops() []Op { return c.ops }

// Merge concatenates client logs into one history.
func Merge(clients ...*Client) []Op {
	var out []Op
	for _, c := range clients {
		out = append(out, c.ops...)
	}
	return out
}

// FormatOps renders a history fragment for failure reports: one line
// per operation, sorted by invocation time.
func FormatOps(ops []Op) string {
	sorted := make([]Op, len(ops))
	copy(sorted, ops)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Call < sorted[j].Call })
	var b strings.Builder
	for _, op := range sorted {
		fmt.Fprintf(&b, "  client %d  [%d,%d]  %s\n", op.Client, op.Call, op.Return, formatOp(op))
	}
	return b.String()
}

func formatOp(op Op) string {
	switch op.Kind {
	case Insert:
		return fmt.Sprintf("Insert(%d,%d) -> %v", op.Key, op.Val, op.Ok)
	case Remove:
		return fmt.Sprintf("Remove(%d) -> %v", op.Key, op.Ok)
	case Lookup:
		if op.Ok {
			return fmt.Sprintf("Lookup(%d) -> %d,true", op.Key, op.OutVal)
		}
		return fmt.Sprintf("Lookup(%d) -> miss", op.Key)
	case Ceil, Floor, Succ, Pred:
		if op.Ok {
			return fmt.Sprintf("%s(%d) -> %d,%d", op.Kind, op.Key, op.OutKey, op.OutVal)
		}
		return fmt.Sprintf("%s(%d) -> none", op.Kind, op.Key)
	case Range:
		var b strings.Builder
		fmt.Fprintf(&b, "Range[%d,%d] -> {", op.Lo, op.Hi)
		for i, p := range op.Pairs {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%d:%d", p.Key, p.Val)
		}
		b.WriteString("}")
		return b.String()
	case Batch:
		var b strings.Builder
		b.WriteString("Batch{")
		for i, s := range op.Steps {
			if i > 0 {
				b.WriteString("; ")
			}
			switch s.Kind {
			case Insert:
				fmt.Fprintf(&b, "Insert(%d,%d)->%v", s.Key, s.Val, s.Ok)
			case Remove:
				fmt.Fprintf(&b, "Remove(%d)->%v", s.Key, s.Ok)
			case Lookup:
				if s.Ok {
					fmt.Fprintf(&b, "Lookup(%d)->%d", s.Key, s.Out)
				} else {
					fmt.Fprintf(&b, "Lookup(%d)->miss", s.Key)
				}
			}
		}
		b.WriteString("}")
		return b.String()
	}
	return op.Kind.String()
}
