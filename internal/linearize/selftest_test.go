// Bug-injection self-test: the checker is only trustworthy if it
// actually rejects non-linearizable behavior, so this file drives the
// real recording harness (maptest.RecordHistory) against deliberately
// broken map shims — weakened insert validation, stale reads, stale
// range snapshots, non-atomic batches — and requires a rejection for
// each, plus an acceptance for the correct control implementation.
package linearize_test

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/kv"
	"repro/internal/linearize"
	"repro/internal/maptest"
)

// lockedMap is the correct control: a mutex around a Go map. Everything
// it does is trivially linearizable.
type lockedMap struct {
	mu sync.Mutex
	m  map[int64]int64
}

func newLockedMap() *lockedMap { return &lockedMap{m: make(map[int64]int64)} }

func (l *lockedMap) Lookup(k int64) (int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.m[k]
	return v, ok
}

func (l *lockedMap) Insert(k, v int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.m[k]; ok {
		return false
	}
	l.m[k] = v
	return true
}

func (l *lockedMap) Remove(k int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.m[k]; !ok {
		return false
	}
	delete(l.m, k)
	return true
}

func (l *lockedMap) Range(lo, hi int64, buf []maptest.KV) []maptest.KV {
	l.mu.Lock()
	defer l.mu.Unlock()
	return rangeOf(l.m, lo, hi, buf)
}

func rangeOf(m map[int64]int64, lo, hi int64, buf []maptest.KV) []maptest.KV {
	for k, v := range m {
		if k >= lo && k <= hi {
			buf = append(buf, kv.KV{Key: k, Val: v})
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].Key < buf[j].Key })
	return buf
}

func (l *lockedMap) Batch(steps []linearize.Step) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	applyStepsTo(l.m, steps)
	return true
}

// applyStepsTo applies batch steps to m in place, filling outputs.
func applyStepsTo(m map[int64]int64, steps []linearize.Step) {
	linearize.ApplySteps(steps,
		func(k, v int64) bool {
			if _, ok := m[k]; ok {
				return false
			}
			m[k] = v
			return true
		},
		func(k int64) bool {
			_, ok := m[k]
			delete(m, k)
			return ok
		},
		func(k int64) (int64, bool) {
			v, ok := m[k]
			return v, ok
		})
}

// dupInsertMap weakens insert's presence validation — the analog of a
// commit that skips re-validating its read set: Insert reports success
// even when the key is already present.
type dupInsertMap struct{ lockedMap }

func (d *dupInsertMap) Insert(k, v int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[k] = v
	return true
}

// staleShim maintains a snapshot that lags the live state by one write,
// the analog of a reader admitting a version older than its start time.
type staleShim struct {
	mu  sync.Mutex
	cur map[int64]int64
	old map[int64]int64
}

func newStaleShim() *staleShim {
	return &staleShim{cur: make(map[int64]int64), old: make(map[int64]int64)}
}

func (s *staleShim) snapshot() {
	s.old = make(map[int64]int64, len(s.cur))
	for k, v := range s.cur {
		s.old[k] = v
	}
}

func (s *staleShim) Insert(k, v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshot()
	if _, ok := s.cur[k]; ok {
		return false
	}
	s.cur[k] = v
	return true
}

func (s *staleShim) Remove(k int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshot()
	if _, ok := s.cur[k]; !ok {
		return false
	}
	delete(s.cur, k)
	return true
}

// staleReadMap serves Lookup from the lagging snapshot.
type staleReadMap struct{ *staleShim }

func (s staleReadMap) Lookup(k int64) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.old[k]
	return v, ok
}

func (s staleReadMap) Range(lo, hi int64, buf []maptest.KV) []maptest.KV {
	s.mu.Lock()
	defer s.mu.Unlock()
	return rangeOf(s.cur, lo, hi, buf)
}

// staleRangeMap answers Lookup correctly but serves Range from the
// lagging snapshot — a non-atomic range traversal in miniature.
type staleRangeMap struct{ *staleShim }

func (s staleRangeMap) Lookup(k int64) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.cur[k]
	return v, ok
}

func (s staleRangeMap) Range(lo, hi int64, buf []maptest.KV) []maptest.KV {
	s.mu.Lock()
	defer s.mu.Unlock()
	return rangeOf(s.old, lo, hi, buf)
}

// partialBatchMap claims to apply a whole batch but actually applies
// only its first step — lost atomicity.
type partialBatchMap struct{ lockedMap }

func (p *partialBatchMap) Batch(steps []linearize.Step) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Claimed outputs: as if the whole batch ran.
	scratch := make(map[int64]int64, len(p.m))
	for k, v := range p.m {
		scratch[k] = v
	}
	applyStepsTo(scratch, steps)
	// Actual effect: first step only.
	if len(steps) > 0 {
		first := []linearize.Step{steps[0]}
		applyStepsTo(p.m, first)
	}
	return true
}

// record drives the standard harness workload over m. A single client
// keeps the history sequential, so every shim's misbehavior surfaces
// deterministically from the seed.
func record(m maptest.OrderedMap, o maptest.WorkloadOptions) []linearize.Op {
	return maptest.RecordHistory(m, o)
}

func TestCheckerAcceptsCorrectMap(t *testing.T) {
	for _, clients := range []int{1, 4} {
		h := record(newLockedMap(), maptest.WorkloadOptions{
			Clients: clients, OpsPerClient: 200, Universe: 8, Seed: 11,
			Ranges: true, Batches: true,
		})
		if res := linearize.Check(h); !res.Ok {
			t.Fatalf("correct map rejected (%d clients):\n%s", clients, linearize.FormatOps(res.Ops))
		}
	}
}

func TestCheckerRejectsBrokenShims(t *testing.T) {
	shims := []struct {
		name string
		mk   func() maptest.OrderedMap
		opts maptest.WorkloadOptions
	}{
		{
			name: "weakened insert validation",
			mk:   func() maptest.OrderedMap { return &dupInsertMap{lockedMap{m: make(map[int64]int64)}} },
			opts: maptest.WorkloadOptions{Clients: 1, OpsPerClient: 100, Universe: 4, Seed: 1},
		},
		{
			name: "stale reads",
			mk:   func() maptest.OrderedMap { return staleReadMap{newStaleShim()} },
			opts: maptest.WorkloadOptions{Clients: 1, OpsPerClient: 100, Universe: 4, Seed: 1},
		},
		{
			name: "stale range snapshots",
			mk:   func() maptest.OrderedMap { return staleRangeMap{newStaleShim()} },
			opts: maptest.WorkloadOptions{Clients: 1, OpsPerClient: 120, Universe: 4, Seed: 1, Ranges: true},
		},
		{
			name: "non-atomic batches",
			mk:   func() maptest.OrderedMap { return &partialBatchMap{lockedMap{m: make(map[int64]int64)}} },
			opts: maptest.WorkloadOptions{Clients: 1, OpsPerClient: 150, Universe: 4, Seed: 1, Batches: true},
		},
	}
	for _, tc := range shims {
		t.Run(tc.name, func(t *testing.T) {
			h := record(tc.mk(), tc.opts)
			res := linearize.Check(h)
			if res.Ok || res.Unknown {
				t.Fatalf("checker failed to reject %s (ok=%v unknown=%v, %d ops)",
					tc.name, res.Ok, res.Unknown, len(h))
			}
		})
	}
}
