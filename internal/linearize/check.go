package linearize

import (
	"encoding/binary"
	"sort"
)

// Options tunes a check.
type Options struct {
	// Budget caps the number of search steps per partition; 0 selects
	// DefaultBudget. An exhausted budget yields Unknown, not a verdict.
	Budget int
	// Initial is the map's contents at the start of the history
	// (quiescent), for checking windows of a longer run.
	Initial []KV
}

// DefaultBudget is the per-partition search-step cap.
const DefaultBudget = 4 << 20

// Result is a check's outcome.
type Result struct {
	// Ok reports the history was proved linearizable.
	Ok bool
	// Unknown reports the search budget ran out before a verdict; Ok is
	// false but the history was not proved non-linearizable.
	Unknown bool
	// PartitionKeys is the key set of the offending (or exhausted)
	// partition.
	PartitionKeys []int64
	// Ops holds the offending partition's operations.
	Ops []Op
}

// Check reports whether the history is linearizable with respect to
// the sequential ordered-map specification, starting from an empty map.
func Check(ops []Op) Result { return CheckOpts(ops, Options{}) }

// CheckOpts is Check with options.
func CheckOpts(ops []Op, opt Options) Result {
	budget := opt.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}

	// The key universe: every key that any write could have put in the
	// map plus every key an output claims to have seen.
	universe := make(map[int64]struct{})
	addKey := func(k int64) { universe[k] = struct{}{} }
	for i := range opt.Initial {
		addKey(opt.Initial[i].Key)
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case Insert, Remove, Lookup:
			addKey(op.Key)
		case Batch:
			for _, s := range op.Steps {
				addKey(s.Key)
			}
		case Ceil, Floor, Succ, Pred:
			if op.Ok {
				addKey(op.OutKey)
			}
		case Range:
			for _, p := range op.Pairs {
				addKey(p.Key)
			}
		}
	}
	keys := make([]int64, 0, len(universe))
	for k := range universe {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Union-find over the universe; every multi-key operation fuses the
	// partitions of its footprint.
	uf := newUnionFind(keys)
	footprints := make([][]int64, len(ops))
	for i := range ops {
		fp := footprint(&ops[i], keys)
		footprints[i] = fp
		for j := 1; j < len(fp); j++ {
			uf.union(fp[0], fp[j])
		}
	}

	// Bucket operations (and initial pairs) by partition root.
	partOps := make(map[int64][]Op)
	partInit := make(map[int64][]KV)
	for i := range ops {
		fp := footprints[i]
		if len(fp) == 0 {
			// No key this operation could have observed: its output must
			// be the empty answer.
			if !emptyAnswerOK(&ops[i]) {
				return Result{Ok: false, Ops: []Op{ops[i]}}
			}
			continue
		}
		root := uf.find(fp[0])
		partOps[root] = append(partOps[root], ops[i])
	}
	for _, p := range opt.Initial {
		root := uf.find(p.Key)
		partInit[root] = append(partInit[root], p)
	}

	roots := make([]int64, 0, len(partOps))
	for r := range partOps {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })

	var unknown *Result
	for _, root := range roots {
		sub := partOps[root]
		init := make(map[int64]int64, len(partInit[root]))
		for _, p := range partInit[root] {
			init[p.Key] = p.Val
		}
		ok, exhausted := wgl(sub, init, budget)
		if ok {
			continue
		}
		res := Result{
			Ok:            false,
			Unknown:       exhausted,
			PartitionKeys: uf.members(root),
			Ops:           sub,
		}
		if !exhausted {
			return res
		}
		if unknown == nil {
			unknown = &res
		}
	}
	if unknown != nil {
		return *unknown
	}
	return Result{Ok: true}
}

// footprint lists the universe keys an operation's result can depend
// on, in no particular order (first element is used as the union-find
// anchor).
func footprint(op *Op, universe []int64) []int64 {
	switch op.Kind {
	case Insert, Remove, Lookup:
		return []int64{op.Key}
	case Batch:
		fp := make([]int64, 0, len(op.Steps))
		for _, s := range op.Steps {
			fp = append(fp, s.Key)
		}
		return fp
	case Range:
		lo := sort.Search(len(universe), func(i int) bool { return universe[i] >= op.Lo })
		hi := sort.Search(len(universe), func(i int) bool { return universe[i] > op.Hi })
		fp := append([]int64(nil), universe[lo:hi]...)
		for _, p := range op.Pairs {
			if p.Key < op.Lo || p.Key > op.Hi {
				fp = append(fp, p.Key)
			}
		}
		return fp
	case Ceil:
		return tailKeys(universe, op.Key, true, op)
	case Succ:
		return tailKeys(universe, op.Key, false, op)
	case Floor:
		return headKeys(universe, op.Key, true, op)
	case Pred:
		return headKeys(universe, op.Key, false, op)
	}
	return nil
}

// tailKeys returns the universe keys >= k (or > k when !incl), plus
// the op's claimed output key.
func tailKeys(universe []int64, k int64, incl bool, op *Op) []int64 {
	i := sort.Search(len(universe), func(i int) bool {
		if incl {
			return universe[i] >= k
		}
		return universe[i] > k
	})
	fp := append([]int64(nil), universe[i:]...)
	return addOutKey(fp, op)
}

// headKeys returns the universe keys <= k (or < k when !incl), plus
// the op's claimed output key.
func headKeys(universe []int64, k int64, incl bool, op *Op) []int64 {
	i := sort.Search(len(universe), func(i int) bool {
		if incl {
			return universe[i] > k
		}
		return universe[i] >= k
	})
	fp := append([]int64(nil), universe[:i]...)
	return addOutKey(fp, op)
}

func addOutKey(fp []int64, op *Op) []int64 {
	if !op.Ok {
		return fp
	}
	for _, k := range fp {
		if k == op.OutKey {
			return fp
		}
	}
	return append(fp, op.OutKey)
}

// emptyAnswerOK checks an operation whose footprint is empty: no key it
// could observe ever existed, so only the empty answer is correct.
func emptyAnswerOK(op *Op) bool {
	switch op.Kind {
	case Ceil, Floor, Succ, Pred:
		return !op.Ok
	case Range:
		return len(op.Pairs) == 0
	case Batch:
		return len(op.Steps) == 0
	}
	return false
}

// unionFind is a basic disjoint-set forest over int64 keys.
type unionFind struct {
	parent map[int64]int64
}

func newUnionFind(keys []int64) *unionFind {
	p := make(map[int64]int64, len(keys))
	for _, k := range keys {
		p[k] = k
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(k int64) int64 {
	for u.parent[k] != k {
		u.parent[k] = u.parent[u.parent[k]]
		k = u.parent[k]
	}
	return k
}

func (u *unionFind) union(a, b int64) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

func (u *unionFind) members(root int64) []int64 {
	var out []int64
	for k := range u.parent {
		if u.find(k) == root {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// event is one call or return in the doubly linked search list.
type event struct {
	op         int
	match      *event // return node for a call; nil for a return
	prev, next *event
}

// wgl runs the Wing & Gong search with Lowe's memoization over one
// partition. It reports (linearizable, budgetExhausted).
func wgl(ops []Op, initial map[int64]int64, budget int) (bool, bool) {
	n := len(ops)
	if n == 0 {
		return true, false
	}

	// Build the time-sorted event list under a head sentinel.
	type stamped struct {
		t    int64
		op   int
		call bool
	}
	evs := make([]stamped, 0, 2*n)
	for i := range ops {
		evs = append(evs, stamped{t: ops[i].Call, op: i, call: true})
		evs = append(evs, stamped{t: ops[i].Return, op: i, call: false})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
	head := &event{op: -1}
	cur := head
	returns := make(map[int]*event, n)
	calls := make(map[int]*event, n)
	for _, e := range evs {
		node := &event{op: e.op}
		if e.call {
			calls[e.op] = node
		} else {
			returns[e.op] = node
		}
		node.prev = cur
		cur.next = node
		cur = node
	}
	for i := range ops {
		calls[i].match = returns[i]
	}

	lift := func(e *event) {
		e.prev.next = e.next
		if e.next != nil {
			e.next.prev = e.prev
		}
		m := e.match
		m.prev.next = m.next
		if m.next != nil {
			m.next.prev = m.prev
		}
	}
	unlift := func(e *event) {
		m := e.match
		m.prev.next = m
		if m.next != nil {
			m.next.prev = m
		}
		e.prev.next = e
		if e.next != nil {
			e.next.prev = e
		}
	}

	words := (n + 63) / 64
	linearized := make([]uint64, words)
	cache := make(map[string]struct{})
	cacheKey := func(st map[int64]int64) string {
		buf := make([]byte, 0, 8*words+16*len(st))
		for _, w := range linearized {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		ks := make([]int64, 0, len(st))
		for k := range st {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		for _, k := range ks {
			buf = binary.AppendVarint(buf, k)
			buf = binary.AppendVarint(buf, st[k])
		}
		return string(buf)
	}

	type frame struct {
		e  *event
		st map[int64]int64
	}
	var stack []frame
	state := initial
	entry := head.next
	remaining := n

	for remaining > 0 {
		if budget--; budget < 0 {
			return false, true
		}
		if entry == nil {
			// Dead end: the first pending operation could not be
			// linearized anywhere before its return. Backtrack.
			if len(stack) == 0 {
				return false, false
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			unlift(f.e)
			linearized[f.e.op/64] &^= 1 << (uint(f.e.op) % 64)
			state = f.st
			remaining++
			entry = f.e.next
			continue
		}
		if entry.match == nil {
			// Reached a return before linearizing its call: every order
			// for the current prefix is exhausted. Treat as dead end.
			entry = nil
			continue
		}
		newState, outOK := apply(state, &ops[entry.op])
		if outOK {
			linearized[entry.op/64] |= 1 << (uint(entry.op) % 64)
			key := cacheKey(newState)
			if _, seen := cache[key]; !seen {
				cache[key] = struct{}{}
				stack = append(stack, frame{e: entry, st: state})
				state = newState
				lift(entry)
				remaining--
				entry = head.next
				continue
			}
			linearized[entry.op/64] &^= 1 << (uint(entry.op) % 64)
		}
		entry = entry.next
	}
	return true, false
}

// apply runs op against st, reporting whether the recorded outputs
// match the sequential specification. st is never mutated; writes
// return a fresh map.
func apply(st map[int64]int64, op *Op) (map[int64]int64, bool) {
	switch op.Kind {
	case Insert:
		_, present := st[op.Key]
		if op.Ok == present {
			return nil, false
		}
		if !present {
			st = cloneState(st)
			st[op.Key] = op.Val
		}
		return st, true
	case Remove:
		_, present := st[op.Key]
		if op.Ok != present {
			return nil, false
		}
		if present {
			st = cloneState(st)
			delete(st, op.Key)
		}
		return st, true
	case Lookup:
		v, present := st[op.Key]
		if op.Ok != present || (present && v != op.OutVal) {
			return nil, false
		}
		return st, true
	case Ceil:
		return st, checkBound(st, op, func(k int64) bool { return k >= op.Key }, false)
	case Succ:
		return st, checkBound(st, op, func(k int64) bool { return k > op.Key }, false)
	case Floor:
		return st, checkBound(st, op, func(k int64) bool { return k <= op.Key }, true)
	case Pred:
		return st, checkBound(st, op, func(k int64) bool { return k < op.Key }, true)
	case Range:
		want := make([]KV, 0, len(op.Pairs))
		ks := make([]int64, 0, len(st))
		for k := range st {
			if k >= op.Lo && k <= op.Hi {
				ks = append(ks, k)
			}
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		for _, k := range ks {
			want = append(want, KV{Key: k, Val: st[k]})
		}
		if len(want) != len(op.Pairs) {
			return nil, false
		}
		for i := range want {
			if want[i] != op.Pairs[i] {
				return nil, false
			}
		}
		return st, true
	case Batch:
		cur := st
		cloned := false
		for i := range op.Steps {
			s := &op.Steps[i]
			switch s.Kind {
			case Insert:
				_, present := cur[s.Key]
				if s.Ok == present {
					return nil, false
				}
				if !present {
					if !cloned {
						cur, cloned = cloneState(cur), true
					}
					cur[s.Key] = s.Val
				}
			case Remove:
				_, present := cur[s.Key]
				if s.Ok != present {
					return nil, false
				}
				if present {
					if !cloned {
						cur, cloned = cloneState(cur), true
					}
					delete(cur, s.Key)
				}
			case Lookup:
				v, present := cur[s.Key]
				if s.Ok != present || (present && v != s.Out) {
					return nil, false
				}
			default:
				return nil, false
			}
		}
		return cur, true
	}
	return nil, false
}

// checkBound verifies a point query's output against the best key
// satisfying pred (largest when wantMax, else smallest).
func checkBound(st map[int64]int64, op *Op, pred func(int64) bool, wantMax bool) bool {
	var best int64
	found := false
	for k := range st {
		if !pred(k) {
			continue
		}
		if !found || (wantMax && k > best) || (!wantMax && k < best) {
			best, found = k, true
		}
	}
	if op.Ok != found {
		return false
	}
	if !found {
		return true
	}
	return op.OutKey == best && op.OutVal == st[best]
}

func cloneState(st map[int64]int64) map[int64]int64 {
	out := make(map[int64]int64, len(st)+1)
	for k, v := range st {
		out[k] = v
	}
	return out
}
