package linearize

import (
	"strings"
	"testing"
)

// seqOps builds a strictly sequential history from a compact op list.
func seqOps(ops []Op) []Op {
	t := int64(0)
	for i := range ops {
		t++
		ops[i].Call = t
		t++
		ops[i].Return = t
	}
	return ops
}

func TestSequentialValidHistory(t *testing.T) {
	h := seqOps([]Op{
		{Kind: Insert, Key: 1, Val: 10, Ok: true},
		{Kind: Insert, Key: 1, Val: 11, Ok: false},
		{Kind: Lookup, Key: 1, Ok: true, OutVal: 10},
		{Kind: Remove, Key: 1, Ok: true},
		{Kind: Lookup, Key: 1, Ok: false},
		{Kind: Remove, Key: 1, Ok: false},
	})
	if res := Check(h); !res.Ok {
		t.Fatalf("valid sequential history rejected:\n%s", FormatOps(res.Ops))
	}
}

func TestSequentialInvalidHistories(t *testing.T) {
	cases := []struct {
		name string
		h    []Op
	}{
		{"duplicate insert both succeed", seqOps([]Op{
			{Kind: Insert, Key: 1, Val: 10, Ok: true},
			{Kind: Insert, Key: 1, Val: 11, Ok: true},
		})},
		{"lookup misses present key", seqOps([]Op{
			{Kind: Insert, Key: 1, Val: 10, Ok: true},
			{Kind: Lookup, Key: 1, Ok: false},
		})},
		{"lookup returns stale value", seqOps([]Op{
			{Kind: Insert, Key: 1, Val: 10, Ok: true},
			{Kind: Remove, Key: 1, Ok: true},
			{Kind: Insert, Key: 1, Val: 20, Ok: true},
			{Kind: Lookup, Key: 1, Ok: true, OutVal: 10},
		})},
		{"remove of absent key succeeds", seqOps([]Op{
			{Kind: Remove, Key: 5, Ok: true},
		})},
		{"range misses a stable key", seqOps([]Op{
			{Kind: Insert, Key: 1, Val: 10, Ok: true},
			{Kind: Insert, Key: 2, Val: 20, Ok: true},
			{Kind: Range, Lo: 0, Hi: 9, Pairs: []KV{{Key: 1, Val: 10}}},
		})},
		{"ceil skips a closer key", seqOps([]Op{
			{Kind: Insert, Key: 3, Val: 30, Ok: true},
			{Kind: Insert, Key: 7, Val: 70, Ok: true},
			{Kind: Ceil, Key: 2, Ok: true, OutKey: 7, OutVal: 70},
		})},
		{"phantom point query", seqOps([]Op{
			{Kind: Succ, Key: 0, Ok: true, OutKey: 9, OutVal: 90},
		})},
		{"batch not applied", seqOps([]Op{
			{Kind: Batch, Steps: []Step{
				{Kind: Insert, Key: 1, Val: 10, Ok: true},
				{Kind: Insert, Key: 2, Val: 20, Ok: true},
			}},
			{Kind: Lookup, Key: 2, Ok: false},
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if res := Check(tc.h); res.Ok || res.Unknown {
				t.Fatalf("invalid history accepted (ok=%v unknown=%v)", res.Ok, res.Unknown)
			}
		})
	}
}

func TestConcurrentReorderingAccepted(t *testing.T) {
	// Insert and Lookup overlap: the lookup may legally see either the
	// old absence or the new pair.
	for _, lookupOk := range []bool{true, false} {
		h := []Op{
			{Client: 0, Kind: Insert, Key: 1, Val: 10, Ok: true, Call: 1, Return: 5},
			{Client: 1, Kind: Lookup, Key: 1, Ok: lookupOk, OutVal: 10, Call: 2, Return: 4},
		}
		if res := Check(h); !res.Ok {
			t.Fatalf("overlapping lookup (ok=%v) rejected:\n%s", lookupOk, FormatOps(res.Ops))
		}
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// The lookup BEGINS after the insert RETURNED, so absence is no
	// longer a legal answer.
	h := []Op{
		{Client: 0, Kind: Insert, Key: 1, Val: 10, Ok: true, Call: 1, Return: 2},
		{Client: 1, Kind: Lookup, Key: 1, Ok: false, Call: 3, Return: 4},
	}
	if res := Check(h); res.Ok {
		t.Fatal("real-time violation accepted")
	}
}

func TestConcurrentWriteWriteRace(t *testing.T) {
	// Two overlapping inserts on one key: exactly one may succeed ...
	h := []Op{
		{Client: 0, Kind: Insert, Key: 1, Val: 10, Ok: true, Call: 1, Return: 5},
		{Client: 1, Kind: Insert, Key: 1, Val: 20, Ok: false, Call: 2, Return: 6},
		{Client: 0, Kind: Lookup, Key: 1, Ok: true, OutVal: 10, Call: 7, Return: 8},
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("legal write/write race rejected:\n%s", FormatOps(res.Ops))
	}
	// ... and the surviving value must be the winner's.
	h[2].OutVal = 20
	if res := Check(h); res.Ok {
		t.Fatal("lookup of the losing insert's value accepted")
	}
}

func TestRangeSnapshotAtomicity(t *testing.T) {
	// A range overlapping a batch that moves 1 -> 2 must see the pair
	// on exactly one side, never both or neither.
	base := []Op{
		{Client: 0, Kind: Insert, Key: 1, Val: 10, Ok: true, Call: 1, Return: 2},
		{Client: 0, Kind: Batch, Call: 4, Return: 8, Steps: []Step{
			{Kind: Remove, Key: 1, Ok: true},
			{Kind: Insert, Key: 2, Val: 10, Ok: true},
		}},
	}
	for _, tc := range []struct {
		name  string
		pairs []KV
		want  bool
	}{
		{"before", []KV{{Key: 1, Val: 10}}, true},
		{"after", []KV{{Key: 2, Val: 10}}, true},
		{"both", []KV{{Key: 1, Val: 10}, {Key: 2, Val: 10}}, false},
		{"neither", nil, false},
	} {
		h := append(append([]Op(nil), base...),
			Op{Client: 1, Kind: Range, Lo: 0, Hi: 9, Pairs: tc.pairs, Call: 5, Return: 7})
		if res := Check(h); res.Ok != tc.want {
			t.Errorf("%s: ok=%v want %v", tc.name, res.Ok, tc.want)
		}
	}
}

func TestPerKeyPartitioning(t *testing.T) {
	// Disjoint keys check independently: an impossible cross-key order
	// is fine as long as each key's subhistory linearizes. 130 ops on
	// 13 keys stays fast because no multi-key op fuses partitions.
	var h []Op
	tm := int64(0)
	for i := 0; i < 130; i++ {
		k := int64(i % 13)
		tm++
		call := tm
		tm++
		h = append(h, Op{Kind: Insert, Key: k, Val: k, Ok: i < 13, Call: call, Return: tm})
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("partitioned history rejected:\n%s", FormatOps(res.Ops))
	}
}

func TestInitialState(t *testing.T) {
	h := seqOps([]Op{
		{Kind: Lookup, Key: 1, Ok: true, OutVal: 10},
		{Kind: Remove, Key: 2, Ok: true},
		{Kind: Range, Lo: 0, Hi: 9, Pairs: []KV{{Key: 1, Val: 10}}},
	})
	res := CheckOpts(h, Options{Initial: []KV{{Key: 1, Val: 10}, {Key: 2, Val: 20}}})
	if !res.Ok {
		t.Fatalf("history valid from initial state rejected:\n%s", FormatOps(res.Ops))
	}
	if res := Check(h); res.Ok {
		t.Fatal("same history from empty state accepted")
	}
}

func TestBudgetYieldsUnknown(t *testing.T) {
	// A pile of overlapping same-key ops with a one-step budget cannot
	// be decided.
	var h []Op
	for i := 0; i < 8; i++ {
		h = append(h, Op{Client: i, Kind: Insert, Key: 1, Val: int64(i), Ok: i == 0, Call: int64(i + 1), Return: int64(100 + i)})
	}
	res := CheckOpts(h, Options{Budget: 1})
	if res.Ok || !res.Unknown {
		t.Fatalf("budget-starved check: ok=%v unknown=%v, want undecided", res.Ok, res.Unknown)
	}
}

func TestFormatOps(t *testing.T) {
	h := seqOps([]Op{
		{Kind: Insert, Key: 1, Val: 10, Ok: true},
		{Kind: Range, Lo: 0, Hi: 5, Pairs: []KV{{Key: 1, Val: 10}}},
	})
	out := FormatOps(h)
	for _, want := range []string{"Insert(1,10) -> true", "Range[0,5] -> {1:10}"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatOps output missing %q:\n%s", want, out)
		}
	}
}
