package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers counters, gauges and a histogram from
// many goroutines (run under -race in CI) and checks the totals.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("skiphash_test_ops_total", "ops")
	g := r.Gauge("skiphash_test_depth", "depth")
	h := r.Histogram("skiphash_test_latency_seconds", "latency", LatencyBounds, 1e-9)
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(uint64(id*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	var wantSum uint64
	for i := uint64(0); i < workers*per; i++ {
		wantSum += i
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound
// contract: a value equal to a bound lands in that bound's bucket, one
// above lands in the next, and values above the last bound land in
// +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]uint64{10, 20}, 1)
	h.Observe(0)  // first bucket
	h.Observe(10) // first bucket (inclusive)
	h.Observe(11) // second bucket
	h.Observe(20) // second bucket
	h.Observe(21) // +Inf
	buckets, sum := h.snapshot()
	want := []uint64{2, 2, 1}
	for i, w := range want {
		if buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d (all: %v)", i, buckets[i], w, buckets)
		}
	}
	if sum != 0+10+11+20+21 {
		t.Errorf("sum = %d, want 62", sum)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
}

// TestExpositionGolden locks the exposition format byte-for-byte:
// family ordering (registration order), label rendering, cumulative le
// buckets, scaled _sum.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("skiphash_stm_commits_total", "Committed transactions.")
	c.Add(42)
	r.CounterFunc("skiphash_persist_late_syncs_total", "Syncs lost to shutdown races.",
		func() uint64 { return 3 })
	g := r.Gauge("skiphash_server_queue_depth", "Queued requests.", Label{"conn", "all"})
	g.Set(7)
	r.GaugeFunc("skiphash_repl_lag_stamps", "Primary stamp minus watermark.",
		func() float64 { return 1.5 })
	h := r.Histogram("skiphash_wal_fsync_seconds", "Fsync latency.",
		[]uint64{1_000_000, 10_000_000}, 1e-9, Label{"ns", "default"})
	h.Observe(500_000)    // le 0.001
	h.Observe(1_000_000)  // le 0.001 (inclusive)
	h.Observe(2_000_000)  // le 0.01
	h.Observe(20_000_000) // +Inf
	const want = `# HELP skiphash_stm_commits_total Committed transactions.
# TYPE skiphash_stm_commits_total counter
skiphash_stm_commits_total 42
# HELP skiphash_persist_late_syncs_total Syncs lost to shutdown races.
# TYPE skiphash_persist_late_syncs_total counter
skiphash_persist_late_syncs_total 3
# HELP skiphash_server_queue_depth Queued requests.
# TYPE skiphash_server_queue_depth gauge
skiphash_server_queue_depth{conn="all"} 7
# HELP skiphash_repl_lag_stamps Primary stamp minus watermark.
# TYPE skiphash_repl_lag_stamps gauge
skiphash_repl_lag_stamps 1.5
# HELP skiphash_wal_fsync_seconds Fsync latency.
# TYPE skiphash_wal_fsync_seconds histogram
skiphash_wal_fsync_seconds_bucket{ns="default",le="0.001"} 2
skiphash_wal_fsync_seconds_bucket{ns="default",le="0.01"} 3
skiphash_wal_fsync_seconds_bucket{ns="default",le="+Inf"} 4
skiphash_wal_fsync_seconds_sum{ns="default"} 0.0235
skiphash_wal_fsync_seconds_count{ns="default"} 4
`
	got := string(r.Render())
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryIdempotentAndUnregister checks that re-registration
// returns the same metric and that Unregister removes exactly the
// addressed child (per-namespace lifecycle).
func TestRegistryIdempotentAndUnregister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("skiphash_x_total", "x", Label{"ns", "a"})
	b := r.Counter("skiphash_x_total", "x", Label{"ns", "b"})
	if a == b {
		t.Fatal("distinct labels returned the same counter")
	}
	if again := r.Counter("skiphash_x_total", "x", Label{"ns", "a"}); again != a {
		t.Fatal("re-registration returned a new counter")
	}
	a.Add(1)
	b.Add(2)
	if !r.Unregister("skiphash_x_total", Label{"ns", "a"}) {
		t.Fatal("Unregister(ns=a) = false")
	}
	out := string(r.Render())
	if strings.Contains(out, `ns="a"`) {
		t.Errorf("dropped series still rendered:\n%s", out)
	}
	if !strings.Contains(out, `skiphash_x_total{ns="b"} 2`) {
		t.Errorf("surviving series missing:\n%s", out)
	}
	if r.Unregister("skiphash_x_total", Label{"ns", "b"}); strings.Contains(string(r.Render()), "skiphash_x_total") {
		t.Error("empty family still rendered")
	}
}

// TestServeHTTP checks the handler's content type and body.
func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("skiphash_y_total", "y").Add(9)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "skiphash_y_total 9") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestSamples checks the flattened view histograms included.
func TestSamples(t *testing.T) {
	r := NewRegistry()
	r.Counter("skiphash_a_total", "a").Add(5)
	h := r.Histogram("skiphash_b_seconds", "b", []uint64{1000}, 1e-9)
	h.Observe(500)
	h.Observe(2000)
	got := map[string]float64{}
	for _, s := range r.Samples() {
		got[s.Name+s.Labels] = s.Value
	}
	if got["skiphash_a_total"] != 5 {
		t.Errorf("counter sample = %v", got["skiphash_a_total"])
	}
	if got["skiphash_b_seconds_count"] != 2 {
		t.Errorf("histogram count sample = %v", got["skiphash_b_seconds_count"])
	}
	if want := 2500e-9; got["skiphash_b_seconds_sum"] != want {
		t.Errorf("histogram sum sample = %v, want %v", got["skiphash_b_seconds_sum"], want)
	}
}

// TestTracer covers threshold gating, ring eviction, and ordering.
func TestTracer(t *testing.T) {
	tr := NewTracer(3)
	if tr.Slow(time.Hour) {
		t.Error("disabled tracer reported slow")
	}
	tr.SetThreshold(10 * time.Millisecond)
	if tr.Slow(9 * time.Millisecond) {
		t.Error("below-threshold op reported slow")
	}
	if !tr.Slow(10 * time.Millisecond) {
		t.Error("at-threshold op not slow")
	}
	for i := 0; i < 5; i++ {
		tr.Record(TraceEntry{KeyHash: uint64(i), Op: "Get", Duration: time.Second})
	}
	got := tr.Dump()
	if len(got) != 3 || tr.Total() != 5 {
		t.Fatalf("dump len %d total %d, want 3/5", len(got), tr.Total())
	}
	for i, e := range got {
		if e.KeyHash != uint64(i+2) {
			t.Errorf("entry %d key %d, want %d (oldest-first after eviction)", i, e.KeyHash, i+2)
		}
	}
	tr.SetThreshold(0)
	if !tr.Slow(0) {
		t.Error("zero threshold should trace everything")
	}
	if s := tr.String(); !strings.Contains(s, "op=Get") {
		t.Errorf("text dump missing entries:\n%s", s)
	}
}
