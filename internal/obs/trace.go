package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEntry is one captured slow operation.
type TraceEntry struct {
	// UnixNanos stamps the operation's completion.
	UnixNanos int64 `json:"unix_nanos"`
	// Op is the wire op name ("Get", "Put2", ...).
	Op string `json:"op"`
	// Namespace names the namespace the op addressed ("default" for
	// the v1 map).
	Namespace string `json:"namespace"`
	// Path is the execution path the op's run took: "reads" (the
	// read-segregated fast path), "atomic" (a coalesced transaction),
	// or "standalone".
	Path string `json:"path"`
	// KeyHash fingerprints the op's key without retaining it.
	KeyHash uint64 `json:"key_hash"`
	// Duration is arrival-to-response-flushed latency.
	Duration time.Duration `json:"duration_nanos"`
	// Aborts is the process-wide STM abort delta observed while the
	// op's batch executed — an attribution hint, not an exact per-op
	// count (concurrent batches share the window).
	Aborts uint64 `json:"aborts"`
}

// Tracer is a fixed-capacity ring of slow operations: entries with
// latency at or above the threshold. Disabled (negative threshold) it
// costs one atomic load per candidate; recording takes a mutex, which
// only slow ops — rare by definition — pay.
type Tracer struct {
	threshold atomic.Int64 // nanos; negative = disabled
	mu        sync.Mutex
	ring      []TraceEntry
	total     uint64 // entries ever recorded
}

// NewTracer returns a disabled tracer holding up to capacity entries.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	t := &Tracer{ring: make([]TraceEntry, 0, capacity)}
	t.threshold.Store(-1)
	return t
}

// SetThreshold arms the tracer for ops taking d or longer; zero traces
// everything, negative disables.
func (t *Tracer) SetThreshold(d time.Duration) { t.threshold.Store(int64(d)) }

// Slow reports whether an op of duration d should be recorded.
func (t *Tracer) Slow(d time.Duration) bool {
	thr := t.threshold.Load()
	return thr >= 0 && int64(d) >= thr
}

// Enabled reports whether the tracer is armed at all — the cheap gate
// callers use before doing any per-batch bookkeeping for Record.
func (t *Tracer) Enabled() bool { return t.threshold.Load() >= 0 }

// Record appends one entry, evicting the oldest at capacity. Callers
// gate on Slow first.
func (t *Tracer) Record(e TraceEntry) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		copy(t.ring, t.ring[1:])
		t.ring[len(t.ring)-1] = e
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many entries were ever recorded (including
// evicted ones).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dump returns the retained entries, oldest first.
func (t *Tracer) Dump() []TraceEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEntry, len(t.ring))
	copy(out, t.ring)
	return out
}

// WriteText renders the retained entries one per line (the drain dump
// and the /debug/slowops body).
func (t *Tracer) WriteText(w io.Writer) {
	entries := t.Dump()
	fmt.Fprintf(w, "slow ops: %d retained, %d recorded, threshold %v\n",
		len(entries), t.Total(), time.Duration(t.threshold.Load()))
	for _, e := range entries {
		fmt.Fprintf(w, "%s op=%s ns=%s path=%s key=%#016x dur=%v aborts=%d\n",
			time.Unix(0, e.UnixNanos).UTC().Format("15:04:05.000"),
			e.Op, e.Namespace, e.Path, e.KeyHash, e.Duration, e.Aborts)
	}
}

// String renders WriteText to a string.
func (t *Tracer) String() string {
	var b strings.Builder
	t.WriteText(&b)
	return b.String()
}

// ServeHTTP serves the text dump (the /debug/slowops endpoint).
func (t *Tracer) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	t.WriteText(w)
}

// HashBytes fingerprints a byte key for TraceEntry.KeyHash (FNV-1a).
func HashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
