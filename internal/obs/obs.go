// Package obs is the repository's zero-dependency metrics core:
// atomic counters and gauges, fixed-bucket latency histograms with
// cacheline-padded striping (the FastReadCounters pattern), a registry
// that renders the Prometheus text exposition format, and a slow-op
// ring tracer.
//
// Everything here is additive instrumentation: metric writes are single
// atomic adds on striped cells, never locks, and no instrumented layer
// puts a metric update on a fast path's shared-write side. The read
// side (scrapes, log lines) pays all aggregation cost. Layers that stay
// dependency-pure (stm, core) are instrumented through Func metrics
// reading their existing stats accessors at scrape time, so their hot
// paths carry no obs code at all.
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histStripes is the stripe count of a Histogram. Observations hash to
// a stripe by their value, so concurrent observers with differing
// values touch different cachelines; the render side sums all stripes.
const histStripes = 16

// Histogram is a fixed-bucket histogram over uint64 values (typically
// nanoseconds). Each stripe's cells occupy whole cachelines, so an
// observation is two uncontended atomic adds. Bounds are inclusive
// upper bucket bounds in ascending order; values above the last bound
// land in the implicit +Inf bucket.
type Histogram struct {
	bounds []uint64
	// scale converts stored values to the rendered unit (1e-9 renders
	// nanoseconds as Prometheus-conventional seconds; 1 renders sizes).
	scale  float64
	stride int
	cells  []atomic.Uint64
}

// newHistogram builds an unregistered histogram (the Registry wraps
// this; tests may use it directly).
func newHistogram(bounds []uint64, scale float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	// Per stripe: len(bounds) bucket cells, one +Inf cell, one sum
	// cell, rounded up to whole 64-byte cachelines.
	stride := (len(bounds) + 2 + 7) &^ 7
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		scale:  scale,
		stride: stride,
		cells:  make([]atomic.Uint64, stride*histStripes),
	}
}

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v uint64) {
	// Fibonacci hash of the value picks the stripe: concurrent
	// observers see jittering values, so their adds spread across
	// stripes without any shared round-robin state.
	stripe := int((v * 0x9e3779b97f4a7c15) >> 60)
	base := stripe % histStripes * h.stride
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.cells[base+idx].Add(1)
	h.cells[base+len(h.bounds)+1].Add(v)
}

// ObserveNanos records a latency in nanoseconds (negative clamps to
// zero). It satisfies stm.CommitObserver.
func (h *Histogram) ObserveNanos(n int64) {
	if n < 0 {
		n = 0
	}
	h.Observe(uint64(n))
}

// ObserveSince records the latency since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.ObserveNanos(int64(time.Since(t0)))
}

// snapshot sums the stripes: per-bucket counts (bucket len(bounds) is
// +Inf) and the raw value sum.
func (h *Histogram) snapshot() (buckets []uint64, sum uint64) {
	buckets = make([]uint64, len(h.bounds)+1)
	for s := 0; s < histStripes; s++ {
		base := s * h.stride
		for i := range buckets {
			buckets[i] += h.cells[base+i].Load()
		}
		sum += h.cells[base+len(h.bounds)+1].Load()
	}
	return buckets, sum
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for s := 0; s < histStripes; s++ {
		base := s * h.stride
		for i := 0; i <= len(h.bounds); i++ {
			n += h.cells[base+i].Load()
		}
	}
	return n
}

// Sum returns the raw (unscaled) sum of all observed values.
func (h *Histogram) Sum() uint64 {
	var n uint64
	for s := 0; s < histStripes; s++ {
		n += h.cells[s*h.stride+len(h.bounds)+1].Load()
	}
	return n
}

// LatencyBounds are the default latency bucket bounds in nanoseconds:
// 1µs to 2.5s in a 1-2.5-5 decade ladder, rendered as seconds.
var LatencyBounds = []uint64{
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000, 1_000_000_000, 2_500_000_000,
}

// SizeBounds are power-of-two bucket bounds for size-like histograms
// (batch sizes, run lengths).
var SizeBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
