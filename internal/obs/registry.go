package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one metric dimension, rendered as {key="value"}.
type Label struct {
	Key, Value string
}

// Kind distinguishes metric families for consumers that aggregate
// samples (log-line deltas treat counters and gauges differently).
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// child is one labeled metric of a family; exactly one of the value
// fields is set, matching the family's kind.
type child struct {
	labels  string // pre-rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	cfn     func() uint64
	gfn     func() float64
	hist    *Histogram
}

// family is one metric name with its help text and labeled children.
type family struct {
	name, help string
	kind       Kind
	children   []*child
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration is idempotent: registering an
// existing name+labels pair returns the existing metric, so lazy
// call-site registration is safe. Families render in registration
// order; children in label order.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	byKey map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*family)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register finds or creates the family and child slot. It returns the
// existing child when the name+labels pair is already present (the
// caller must tolerate its own metric type there).
func (r *Registry) register(name, help string, kind Kind, labels []Label) (*child, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byKey[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byKey[name] = f
		r.fams = append(r.fams, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %v (was %v)", name, kind, f.kind))
	}
	ls := renderLabels(labels)
	for _, c := range f.children {
		if c.labels == ls {
			return c, false
		}
	}
	c := &child{labels: ls}
	f.children = append(f.children, c)
	sort.Slice(f.children, func(i, j int) bool { return f.children[i].labels < f.children[j].labels })
	return c, true
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c, fresh := r.register(name, help, KindCounter, labels)
	if fresh {
		c.counter = &Counter{}
	}
	if c.counter == nil {
		panic(fmt.Sprintf("obs: %s%s registered as a func counter", name, c.labels))
	}
	return c.counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c, fresh := r.register(name, help, KindGauge, labels)
	if fresh {
		c.gauge = &Gauge{}
	}
	if c.gauge == nil {
		panic(fmt.Sprintf("obs: %s%s registered as a func gauge", name, c.labels))
	}
	return c.gauge
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — the zero-hot-path-cost way to export an existing
// stats accessor. fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	c, _ := r.register(name, help, KindCounter, labels)
	c.counter, c.cfn = nil, fn
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c, _ := r.register(name, help, KindGauge, labels)
	c.gauge, c.gfn = nil, fn
}

// Histogram registers (or finds) a histogram with the given inclusive
// upper bucket bounds; scale converts stored values to the rendered
// unit (1e-9 for nanosecond observations rendered as seconds, 1 for
// sizes).
func (r *Registry) Histogram(name, help string, bounds []uint64, scale float64, labels ...Label) *Histogram {
	c, fresh := r.register(name, help, KindHistogram, labels)
	if fresh {
		c.hist = newHistogram(bounds, scale)
	}
	return c.hist
}

// Unregister removes the metric with the given name and labels; when
// the family's last child goes, the family goes too. Dropping a
// namespace unregisters its per-namespace series this way. It returns
// whether anything was removed.
func (r *Registry) Unregister(name string, labels ...Label) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byKey[name]
	if f == nil {
		return false
	}
	ls := renderLabels(labels)
	for i, c := range f.children {
		if c.labels == ls {
			f.children = append(f.children[:i], f.children[i+1:]...)
			if len(f.children) == 0 {
				delete(r.byKey, name)
				for j, g := range r.fams {
					if g == f {
						r.fams = append(r.fams[:j], r.fams[j+1:]...)
						break
					}
				}
			}
			return true
		}
	}
	return false
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		// Children may be unregistered concurrently; snapshot under mu.
		r.mu.Lock()
		children := make([]*child, len(f.children))
		copy(children, f.children)
		r.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range children {
			switch f.kind {
			case KindCounter:
				v := uint64(0)
				if c.counter != nil {
					v = c.counter.Value()
				} else if c.cfn != nil {
					v = c.cfn()
				}
				fmt.Fprintf(&b, "%s%s %d\n", f.name, c.labels, v)
			case KindGauge:
				var v float64
				if c.gauge != nil {
					v = float64(c.gauge.Value())
				} else if c.gfn != nil {
					v = c.gfn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, c.labels, formatFloat(v))
			case KindHistogram:
				writeHistogram(&b, f.name, c.labels, c.hist)
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeHistogram renders one histogram child: cumulative le buckets,
// +Inf, scaled _sum and _count.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	buckets, sum := h.snapshot()
	// Splice le="..." into the existing label set.
	inner := ""
	if labels != "" {
		inner = labels[1:len(labels)-1] + ","
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += buckets[i]
		fmt.Fprintf(b, "%s_bucket{%sle=\"%s\"} %d\n",
			name, inner, formatFloat(float64(bound)*h.scale), cum)
	}
	cum += buckets[len(h.bounds)]
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, inner, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(float64(sum)*h.scale))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}

// Render returns the full exposition as a byte slice (the STATS2 wire
// payload).
func (r *Registry) Render() []byte {
	var b strings.Builder
	r.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return []byte(b.String())
}

// ServeHTTP serves the exposition (the /metrics endpoint).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteTo(w) //nolint:errcheck // nothing to do about a dead client
}

// Sample is one flattened metric value; histograms flatten to
// name_count and name_sum counter samples.
type Sample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Value  float64 `json:"value"`
}

// Samples flattens the registry to one value per series, for log-line
// deltas and JSON dumps.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	var out []Sample
	for _, f := range fams {
		r.mu.Lock()
		children := make([]*child, len(f.children))
		copy(children, f.children)
		r.mu.Unlock()
		for _, c := range children {
			switch f.kind {
			case KindCounter:
				v := uint64(0)
				if c.counter != nil {
					v = c.counter.Value()
				} else if c.cfn != nil {
					v = c.cfn()
				}
				out = append(out, Sample{f.name, c.labels, f.kind.String(), float64(v)})
			case KindGauge:
				var v float64
				if c.gauge != nil {
					v = float64(c.gauge.Value())
				} else if c.gfn != nil {
					v = c.gfn()
				}
				out = append(out, Sample{f.name, c.labels, f.kind.String(), v})
			case KindHistogram:
				out = append(out,
					Sample{f.name + "_count", c.labels, "counter", float64(c.hist.Count())},
					Sample{f.name + "_sum", c.labels, "counter", float64(c.hist.Sum()) * c.hist.scale})
			}
		}
	}
	return out
}
