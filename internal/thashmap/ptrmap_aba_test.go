package thashmap

import (
	"errors"
	"testing"

	"repro/internal/stm"
)

// The abort-ABA window: a transaction that aborts restores both the
// chain images (undo log) and the bucket orec's pre-acquire word, so
// after an abort the orec word is bit-identical to what a concurrent
// fast walk sampled. That restore is what keeps aborts invisible to
// optimistic readers — but it is only sound because a later COMMIT on
// the same orec always releases at a fresh clock stamp, never reusing
// a version a reader may have sampled before the abort. These tests
// pin both halves deterministically with the fast-walk hook.

// errInjected aborts the hook's first transaction after its writes.
var errInjected = errors.New("injected abort")

// abortWrite runs one transaction against key k that removes it and
// then aborts, exercising undo of both the splice and the orec word.
func abortWrite(t *testing.T, rt *stm.Runtime, m *PtrMap[int64, payload], k int64) {
	t.Helper()
	if err := rt.Atomic(func(tx *stm.Tx) error {
		if !m.RemoveTx(tx, k) {
			t.Errorf("RemoveTx(%d) found nothing to remove", k)
		}
		return errInjected
	}); !errors.Is(err, errInjected) {
		t.Fatalf("aborting txn returned %v, want errInjected", err)
	}
}

func TestGetPtrFastAbortRestoresSampledWord(t *testing.T) {
	rt, m := newPtrMap(1)
	a := &payload{v: 1}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		m.InsertPtrTx(tx, 1, a)
		return nil
	})

	// The hook fires between the walk and revalidation: the abort-only
	// interleaving must leave the sample valid — the undo restored the
	// chain to exactly what the walk saw, so failing the read here
	// would be pure pessimism (and would make every abort a fast-path
	// invalidation storm).
	fired := 0
	SetFastWalkHook(func() {
		fired++
		abortWrite(t, rt, m, 1)
	})
	defer SetFastWalkHook(nil)

	if v, ok := m.GetPtrFast(1); !ok || v != a {
		t.Errorf("fast read across an abort = (%p, %v), want validated (%p, true)", v, ok, a)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
}

func TestGetPtrFastCommitAfterAbortInvalidates(t *testing.T) {
	rt, m := newPtrMap(1)
	a := &payload{v: 1}
	b := &payload{v: 2}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		m.InsertPtrTx(tx, 1, a)
		return nil
	})

	// The regression half: abort restores the sampled word, then a
	// commit on the same bucket replaces the chain. If the commit's
	// release word could ever collide with the restored (sampled) word
	// — say, a version counter reset by the abort — the walk's stale
	// observation would validate. The commit must release at a fresh
	// clock stamp, so the sample fails.
	fired := 0
	SetFastWalkHook(func() {
		fired++
		abortWrite(t, rt, m, 1)
		if err := rt.Atomic(func(tx *stm.Tx) error {
			if !m.RemoveTx(tx, 1) {
				t.Error("committing txn found key 1 missing (abort undo lost the entry)")
			}
			m.InsertPtrTx(tx, 1, b)
			return nil
		}); err != nil {
			t.Errorf("committing txn: %v", err)
		}
	})
	defer SetFastWalkHook(nil)

	if _, ok := m.GetPtrFast(1); ok {
		t.Error("fast read validated across abort-then-commit: commit reused a sampled orec word")
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}

	SetFastWalkHook(nil)
	// The post-commit state is the committed one, not the aborted one.
	if v, ok := m.GetPtrFast(1); !ok || v != b {
		t.Errorf("fast read after the dust settled = (%p, %v), want (%p, true)", v, ok, b)
	}
}
