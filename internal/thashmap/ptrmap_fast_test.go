package thashmap

import (
	"testing"

	"repro/internal/stm"
)

func TestGetPtrFastHitAndMiss(t *testing.T) {
	rt, m := newPtrMap(17)
	a := &payload{v: 1}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		m.InsertPtrTx(tx, 1, a)
		return nil
	})

	if v, ok := m.GetPtrFast(1); !ok || v != a {
		t.Errorf("GetPtrFast(present) = (%p, %v), want (%p, true)", v, ok, a)
	}
	// A validated miss is an answer, not a fallback: the bucket's orec
	// proved the key absent for the whole walk.
	if v, ok := m.GetPtrFast(2); !ok || v != nil {
		t.Errorf("GetPtrFast(absent) = (%p, %v), want (nil, true)", v, ok)
	}
}

func TestGetPtrFastFailsUnderWriterLock(t *testing.T) {
	rt, m := newPtrMap(1) // single bucket: the write below locks every key's orec
	a := &payload{v: 1}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		m.InsertPtrTx(tx, 1, a)
		if _, ok := m.GetPtrFast(1); ok {
			t.Error("fast read answered while the bucket orec was held")
		}
		return nil
	})
}

func TestGetPtrFastHookForcedInvalidation(t *testing.T) {
	rt, m := newPtrMap(1)
	a := &payload{v: 1}
	b := &payload{v: 2}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		m.InsertPtrTx(tx, 1, a)
		return nil
	})

	// The hook fires after the chain walk and before revalidation —
	// committing a write there deterministically forces the torn-read
	// case the post-walk Valid check exists for.
	fired := 0
	hook := func() {
		fired++
		_ = rt.Atomic(func(tx *stm.Tx) error {
			m.RemoveTx(tx, 1)
			m.InsertPtrTx(tx, 2, b)
			return nil
		})
	}
	SetFastWalkHook(hook)
	defer SetFastWalkHook(nil)

	if _, ok := m.GetPtrFast(1); ok {
		t.Error("fast read validated across a concurrent commit")
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}

	SetFastWalkHook(nil)
	// With the writer gone the retry validates and sees the new state.
	if v, ok := m.GetPtrFast(2); !ok || v != b {
		t.Errorf("GetPtrFast(2) after invalidation = (%p, %v), want (%p, true)", v, ok, b)
	}
	if v, ok := m.GetPtrFast(1); !ok || v != nil {
		t.Errorf("GetPtrFast(1) after removal = (%p, %v), want (nil, true)", v, ok)
	}
}

func TestPrefetchPtr(t *testing.T) {
	rt, m := newPtrMap(17)
	a := &payload{v: 1}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		m.InsertPtrTx(tx, 1, a)
		return nil
	})
	if got := m.PrefetchPtr(1); got != a {
		t.Errorf("PrefetchPtr(present) = %p, want %p", got, a)
	}
	if got := m.PrefetchPtr(2); got != nil {
		t.Errorf("PrefetchPtr(absent) = %p, want nil", got)
	}
}
