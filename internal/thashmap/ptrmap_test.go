package thashmap

import (
	"sync"
	"testing"

	"repro/internal/stm"
)

type payload struct{ v int64 }

func newPtrMap(buckets int) (*stm.Runtime, *PtrMap[int64, payload]) {
	rt := stm.New()
	return rt, NewPtr[int64, payload](rt, Hash64, buckets)
}

func TestPtrMapBasic(t *testing.T) {
	rt, m := newPtrMap(17)
	a := &payload{v: 1}
	b := &payload{v: 2}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		if got := m.GetPtrTx(tx, 1); got != nil {
			t.Error("empty map returned a pointer")
		}
		if !m.InsertPtrTx(tx, 1, a) {
			t.Error("insert of absent key failed")
		}
		if m.InsertPtrTx(tx, 1, b) {
			t.Error("insert of present key succeeded")
		}
		if got := m.GetPtrTx(tx, 1); got != a {
			t.Errorf("GetPtrTx = %p, want %p", got, a)
		}
		if !m.RemoveTx(tx, 1) {
			t.Error("remove of present key failed")
		}
		if m.RemoveTx(tx, 1) {
			t.Error("remove of absent key succeeded")
		}
		return nil
	})
	if got := m.SizeSlow(); got != 0 {
		t.Errorf("SizeSlow = %d, want 0", got)
	}
}

func TestPtrMapIdentityPreserved(t *testing.T) {
	// The whole point of PtrMap: Get returns the exact pointer stored,
	// unboxed, so the skip hash routes to the very node it linked.
	rt, m := newPtrMap(1) // single chain
	ptrs := make([]*payload, 10)
	_ = rt.Atomic(func(tx *stm.Tx) error {
		for k := int64(0); k < 10; k++ {
			ptrs[k] = &payload{v: k}
			m.InsertPtrTx(tx, k, ptrs[k])
		}
		return nil
	})
	_ = rt.Atomic(func(tx *stm.Tx) error {
		for k := int64(0); k < 10; k++ {
			if got := m.GetPtrTx(tx, k); got != ptrs[k] {
				t.Errorf("key %d: pointer identity lost", k)
			}
		}
		return nil
	})
}

func TestPtrMapChainRemoval(t *testing.T) {
	rt, m := newPtrMap(1)
	_ = rt.Atomic(func(tx *stm.Tx) error {
		for k := int64(0); k < 5; k++ {
			m.InsertPtrTx(tx, k, &payload{v: k})
		}
		return nil
	})
	// Remove middle, head-of-chain (most recent prepend), then tail.
	for _, k := range []int64{2, 4, 0} {
		ok := false
		_ = rt.Atomic(func(tx *stm.Tx) error {
			ok = m.RemoveTx(tx, k)
			return nil
		})
		if !ok {
			t.Fatalf("RemoveTx(%d) failed", k)
		}
	}
	want := map[int64]bool{1: true, 3: true}
	count := 0
	m.ForEachSlow(func(k int64, v *payload) bool {
		count++
		if !want[k] || v.v != k {
			t.Errorf("unexpected survivor %d -> %+v", k, v)
		}
		return true
	})
	if count != 2 {
		t.Errorf("%d survivors, want 2", count)
	}
}

func TestPtrMapRollback(t *testing.T) {
	rt, m := newPtrMap(17)
	p := &payload{v: 9}
	err := rt.Atomic(func(tx *stm.Tx) error {
		m.InsertPtrTx(tx, 9, p)
		return errBoom
	})
	if err != errBoom {
		t.Fatalf("err = %v", err)
	}
	if got := m.SizeSlow(); got != 0 {
		t.Errorf("rollback leaked %d entries", got)
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }

func TestPtrMapConcurrent(t *testing.T) {
	rt, m := newPtrMap(31)
	const goroutines = 8
	const perG = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < perG; i++ {
				k := base*perG + i
				p := &payload{v: k}
				_ = rt.Atomic(func(tx *stm.Tx) error {
					m.InsertPtrTx(tx, k, p)
					return nil
				})
				_ = rt.Atomic(func(tx *stm.Tx) error {
					if got := m.GetPtrTx(tx, k); got != p {
						t.Errorf("key %d: wrong pointer", k)
					}
					return nil
				})
			}
		}(int64(g))
	}
	wg.Wait()
	if got := m.SizeSlow(); got != goroutines*perG {
		t.Errorf("SizeSlow = %d, want %d", got, goroutines*perG)
	}
}

func TestNewPtrPanicsOnBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPtr with -1 buckets did not panic")
		}
	}()
	NewPtr[int64, payload](stm.New(), Hash64, -1)
}
