// Package thashmap implements the transactional closed-addressing hash
// map the skip hash composes with its skip list (Figure 1's hashmap
// component). It also serves, standalone, as the paper's "Hash Map (STM)"
// baseline for workloads without range queries.
//
// The table is a fixed array of buckets, each a singly linked chain of
// immutable-key entries guarded by one ownership record per bucket. All
// operations are O(1) expected time and touch exactly one bucket, so two
// operations conflict only when their keys collide into the same bucket.
package thashmap

import (
	"repro/internal/stm"
)

// DefaultBuckets is the bucket count used by the paper's evaluation: the
// smallest prime for which the expected population of 5*10^5 keys keeps
// the table at or below 70% utilization (§5.1).
const DefaultBuckets = 714341

// Map is a transactional hash map from K to V.
type Map[K comparable, V any] struct {
	rt      *stm.Runtime
	hash    func(K) uint64
	buckets []bucket[K, V]
}

type bucket[K comparable, V any] struct {
	orec stm.Orec
	head stm.Ptr[entry[K, V]]
}

type entry[K comparable, V any] struct {
	key  K // immutable
	val  stm.Val[V]
	next stm.Ptr[entry[K, V]] // guarded by the bucket's orec
}

// New creates a map with nBuckets chains. hash must be deterministic and
// should distribute keys uniformly; nBuckets should be prime (see
// DefaultBuckets). nBuckets below 1 panics: the table cannot be grown, so
// a silent fallback would hide a configuration bug.
func New[K comparable, V any](rt *stm.Runtime, hash func(K) uint64, nBuckets int) *Map[K, V] {
	if nBuckets < 1 {
		panic("thashmap: bucket count must be positive")
	}
	return &Map[K, V]{
		rt:      rt,
		hash:    hash,
		buckets: make([]bucket[K, V], nBuckets),
	}
}

// Runtime returns the STM runtime the map was created with.
func (m *Map[K, V]) Runtime() *stm.Runtime { return m.rt }

func (m *Map[K, V]) bucketFor(k K) *bucket[K, V] {
	return &m.buckets[m.hash(k)%uint64(len(m.buckets))]
}

// GetTx looks k up within an enclosing transaction.
func (m *Map[K, V]) GetTx(tx *stm.Tx, k K) (V, bool) {
	b := m.bucketFor(k)
	for e := b.head.Load(tx, &b.orec); e != nil; e = e.next.Load(tx, &b.orec) {
		if e.key == k {
			return e.val.Load(tx, &b.orec), true
		}
	}
	var zero V
	return zero, false
}

// InsertTx adds the pair (k, v) if k is absent and reports whether it did.
func (m *Map[K, V]) InsertTx(tx *stm.Tx, k K, v V) bool {
	b := m.bucketFor(k)
	for e := b.head.Load(tx, &b.orec); e != nil; e = e.next.Load(tx, &b.orec) {
		if e.key == k {
			return false
		}
	}
	m.prepend(tx, b, k, v)
	return true
}

// PutTx sets k to v, inserting or overwriting; it reports whether a
// previous value was replaced.
func (m *Map[K, V]) PutTx(tx *stm.Tx, k K, v V) bool {
	b := m.bucketFor(k)
	for e := b.head.Load(tx, &b.orec); e != nil; e = e.next.Load(tx, &b.orec) {
		if e.key == k {
			e.val.Store(tx, &b.orec, v)
			return true
		}
	}
	m.prepend(tx, b, k, v)
	return false
}

func (m *Map[K, V]) prepend(tx *stm.Tx, b *bucket[K, V], k K, v V) {
	e := &entry[K, V]{key: k}
	e.val.Init(v)
	e.next.Init(b.head.Load(tx, &b.orec))
	b.head.Store(tx, &b.orec, e)
}

// RemoveTx deletes k and reports whether it was present.
func (m *Map[K, V]) RemoveTx(tx *stm.Tx, k K) bool {
	b := m.bucketFor(k)
	var prev *entry[K, V]
	for e := b.head.Load(tx, &b.orec); e != nil; e = e.next.Load(tx, &b.orec) {
		if e.key == k {
			succ := e.next.Load(tx, &b.orec)
			if prev == nil {
				b.head.Store(tx, &b.orec, succ)
			} else {
				prev.next.Store(tx, &b.orec, succ)
			}
			return true
		}
		prev = e
	}
	return false
}

// Get looks k up in its own transaction.
func (m *Map[K, V]) Get(k K) (V, bool) {
	var v V
	var ok bool
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		v, ok = m.GetTx(tx, k)
		return nil
	})
	return v, ok
}

// Insert adds (k, v) if absent, in its own transaction.
func (m *Map[K, V]) Insert(k K, v V) bool {
	var ok bool
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		ok = m.InsertTx(tx, k, v)
		return nil
	})
	return ok
}

// Put sets k to v in its own transaction; it reports whether a previous
// value was replaced.
func (m *Map[K, V]) Put(k K, v V) bool {
	var replaced bool
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		replaced = m.PutTx(tx, k, v)
		return nil
	})
	return replaced
}

// Remove deletes k in its own transaction and reports whether it was
// present.
func (m *Map[K, V]) Remove(k K) bool {
	var ok bool
	_ = m.rt.Atomic(func(tx *stm.Tx) error {
		ok = m.RemoveTx(tx, k)
		return nil
	})
	return ok
}

// SizeSlow counts entries by walking every bucket without transactional
// protection. It is only meaningful when the map is quiescent; use it in
// tests and debugging.
func (m *Map[K, V]) SizeSlow() int {
	n := 0
	for i := range m.buckets {
		for e := m.buckets[i].head.Raw(); e != nil; e = e.next.Raw() {
			n++
		}
	}
	return n
}

// ForEachSlow visits every entry without transactional protection; see
// SizeSlow for the quiescence requirement. Iteration stops if fn returns
// false.
func (m *Map[K, V]) ForEachSlow(fn func(k K, v V) bool) {
	for i := range m.buckets {
		for e := m.buckets[i].head.Raw(); e != nil; e = e.next.Raw() {
			if !fn(e.key, e.val.Raw()) {
				return
			}
		}
	}
}

// Hash64 is a splitmix64-style mixer suitable as the hash function for
// integer keys (the evaluation's std::hash stand-in).
func Hash64(k int64) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
