package thashmap

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
)

func newTestMap(t *testing.T, buckets int) *Map[int64, int64] {
	t.Helper()
	return New[int64, int64](stm.New(), Hash64, buckets)
}

func TestBasicOperations(t *testing.T) {
	m := newTestMap(t, 17)

	if _, ok := m.Get(1); ok {
		t.Error("Get on empty map reported present")
	}
	if !m.Insert(1, 10) {
		t.Error("Insert of absent key failed")
	}
	if m.Insert(1, 11) {
		t.Error("Insert of present key succeeded")
	}
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Errorf("Get(1) = %d,%v want 10,true", v, ok)
	}
	if !m.Remove(1) {
		t.Error("Remove of present key failed")
	}
	if m.Remove(1) {
		t.Error("Remove of absent key succeeded")
	}
	if _, ok := m.Get(1); ok {
		t.Error("key present after removal")
	}
}

func TestPutUpsert(t *testing.T) {
	m := newTestMap(t, 17)
	if m.Put(5, 1) {
		t.Error("first Put reported replacement")
	}
	if !m.Put(5, 2) {
		t.Error("second Put did not report replacement")
	}
	if v, _ := m.Get(5); v != 2 {
		t.Errorf("value after Put = %d, want 2", v)
	}
}

func TestChainCollisions(t *testing.T) {
	// One bucket forces every key into a single chain; exercises
	// prepend, interior removal, and head removal.
	m := newTestMap(t, 1)
	keys := []int64{1, 2, 3, 4, 5}
	for _, k := range keys {
		if !m.Insert(k, k*100) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if got := m.SizeSlow(); got != len(keys) {
		t.Fatalf("SizeSlow = %d, want %d", got, len(keys))
	}
	// Remove interior, head-of-chain, and tail-of-chain keys.
	for _, k := range []int64{3, 5, 1} {
		if !m.Remove(k) {
			t.Errorf("Remove(%d) failed", k)
		}
	}
	for _, k := range []int64{2, 4} {
		if v, ok := m.Get(k); !ok || v != k*100 {
			t.Errorf("Get(%d) = %d,%v want %d,true", k, v, ok, k*100)
		}
	}
	for _, k := range []int64{1, 3, 5} {
		if _, ok := m.Get(k); ok {
			t.Errorf("removed key %d still present", k)
		}
	}
}

func TestTransactionalComposition(t *testing.T) {
	// Two maps updated in one transaction stay consistent even when the
	// transaction is rolled back.
	rt := stm.New()
	a := New[int64, int64](rt, Hash64, 17)
	b := New[int64, int64](rt, Hash64, 17)
	err := rt.Atomic(func(tx *stm.Tx) error {
		a.InsertTx(tx, 1, 1)
		b.InsertTx(tx, 1, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		a.RemoveTx(tx, 1)
		if _, ok := a.GetTx(tx, 1); ok {
			t.Error("key visible inside tx after RemoveTx")
		}
		// Abort by returning an error: both maps must keep the key.
		return errRollback
	})
	if _, ok := a.Get(1); !ok {
		t.Error("rollback lost key in map a")
	}
	if _, ok := b.Get(1); !ok {
		t.Error("rollback lost key in map b")
	}
}

var errRollback = &rollbackError{}

type rollbackError struct{}

func (*rollbackError) Error() string { return "rollback" }

func TestQuickVersusModel(t *testing.T) {
	m := newTestMap(t, 7) // tiny table to force collisions
	model := make(map[int64]int64)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			k := int64(op % 32)
			switch (op / 32) % 3 {
			case 0:
				got := m.Insert(k, k*10)
				_, present := model[k]
				if got == present {
					return false
				}
				if !present {
					model[k] = k * 10
				}
			case 1:
				got := m.Remove(k)
				_, present := model[k]
				if got != present {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := m.Get(k)
				mv, present := model[k]
				if ok != present || (ok && v != mv) {
					return false
				}
			}
		}
		return m.SizeSlow() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	m := newTestMap(t, 31)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < perG; i++ {
				k := base*perG + i
				if !m.Insert(k, k) {
					t.Errorf("Insert(%d) failed", k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := m.SizeSlow(); got != goroutines*perG {
		t.Fatalf("SizeSlow = %d, want %d", got, goroutines*perG)
	}
	// Remove everything concurrently.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < perG; i++ {
				k := base*perG + i
				if !m.Remove(k) {
					t.Errorf("Remove(%d) failed", k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := m.SizeSlow(); got != 0 {
		t.Fatalf("SizeSlow after removal = %d, want 0", got)
	}
}

func TestConcurrentContendedKeys(t *testing.T) {
	// All goroutines fight over the same small key space; per-key
	// success counting verifies linearizability of insert/remove pairs:
	// successfulInserts - successfulRemoves must equal final presence.
	m := newTestMap(t, 3)
	const keys = 8
	const goroutines = 6
	const iters = 1000
	var inserts, removes [keys]int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var localIns, localRem [keys]int64
			rng := seed
			for i := 0; i < iters; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := int64(rng % keys)
				if rng&(1<<20) == 0 {
					if m.Insert(k, k) {
						localIns[k]++
					}
				} else {
					if m.Remove(k) {
						localRem[k]++
					}
				}
			}
			mu.Lock()
			for k := 0; k < keys; k++ {
				inserts[k] += localIns[k]
				removes[k] += localRem[k]
			}
			mu.Unlock()
		}(uint64(g) + 1)
	}
	wg.Wait()
	for k := int64(0); k < keys; k++ {
		_, present := m.Get(k)
		balance := inserts[k] - removes[k]
		want := int64(0)
		if present {
			want = 1
		}
		if balance != want {
			t.Errorf("key %d: inserts-removes = %d, present=%v", k, balance, present)
		}
	}
}

func TestHash64Distribution(t *testing.T) {
	// Sanity check: sequential keys should spread across buckets.
	const buckets = 64
	var counts [buckets]int
	const n = 64 * 128
	for k := int64(0); k < n; k++ {
		counts[Hash64(k)%buckets]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("bucket %d empty after %d sequential keys", i, n)
		}
		if c > 4*n/buckets {
			t.Errorf("bucket %d holds %d keys, want < %d", i, c, 4*n/buckets)
		}
	}
}

func TestNewPanicsOnBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with 0 buckets did not panic")
		}
	}()
	New[int64, int64](stm.New(), Hash64, 0)
}
