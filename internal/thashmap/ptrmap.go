package thashmap

import (
	"sync/atomic"

	"repro/internal/stm"
)

// PtrMap is a transactional hash map from K to *V, specialized so values
// are stored unboxed. The skip hash uses it to route keys to skip list
// nodes (Figure 1's hashmap<K, sl_node>): Get returns the node pointer
// directly, keeping the composition's O(1) promise allocation-free on
// lookups.
type PtrMap[K comparable, V any] struct {
	rt      *stm.Runtime
	hash    func(K) uint64
	buckets []ptrBucket[K, V]
}

type ptrBucket[K comparable, V any] struct {
	orec stm.Orec
	head stm.Ptr[ptrEntry[K, V]]
}

type ptrEntry[K comparable, V any] struct {
	key  K                       // immutable
	val  *V                      // immutable: entries are replaced, never mutated
	next stm.Ptr[ptrEntry[K, V]] // guarded by the bucket's orec
}

// NewPtr creates a pointer-valued map with nBuckets chains; see New for
// parameter requirements.
func NewPtr[K comparable, V any](rt *stm.Runtime, hash func(K) uint64, nBuckets int) *PtrMap[K, V] {
	if nBuckets < 1 {
		panic("thashmap: bucket count must be positive")
	}
	return &PtrMap[K, V]{
		rt:      rt,
		hash:    hash,
		buckets: make([]ptrBucket[K, V], nBuckets),
	}
}

func (m *PtrMap[K, V]) bucketFor(k K) *ptrBucket[K, V] {
	return &m.buckets[m.hash(k)%uint64(len(m.buckets))]
}

// GetPtrTx returns the pointer stored under k, or nil if k is absent.
func (m *PtrMap[K, V]) GetPtrTx(tx *stm.Tx, k K) *V {
	b := m.bucketFor(k)
	for e := b.head.Load(tx, &b.orec); e != nil; e = e.next.Load(tx, &b.orec) {
		if e.key == k {
			return e.val
		}
	}
	return nil
}

// fastWalkHook, when installed, runs between a fast walk's orec sample
// and its revalidation, so tests can deterministically force a
// concurrent write into the validation window.
var fastWalkHook atomic.Pointer[func()]

// SetFastWalkHook installs fn (nil removes it) to run inside every
// GetPtrFast between sample and validation. Test instrumentation only.
func SetFastWalkHook(fn func()) {
	if fn == nil {
		fastWalkHook.Store(nil)
		return
	}
	fastWalkHook.Store(&fn)
}

// GetPtrFast looks k up optimistically, without a transaction or a clock
// sample: sample the bucket's orec, walk the chain through the fields'
// atomic backing, revalidate. The chain stays acyclic under concurrent
// inserts (prepends) and removals (splices) and their undos, so the raw
// walk terminates; a torn observation is discarded by the revalidation.
// ok reports whether the walk validated — on false the caller must fall
// back to GetPtrTx, and v is meaningless. The single bucket orec guards
// the whole chain, so one sample covers every link the walk dereferences.
func (m *PtrMap[K, V]) GetPtrFast(k K) (v *V, ok bool) {
	b := m.bucketFor(k)
	s, ok := b.orec.Sample()
	if !ok {
		return nil, false
	}
	for e := b.head.Raw(); e != nil; e = e.next.Raw() {
		if e.key == k {
			v = e.val
			break
		}
	}
	if h := fastWalkHook.Load(); h != nil {
		(*h)()
	}
	if !s.Valid() {
		return nil, false
	}
	return v, true
}

// PrefetchPtr warms the cache lines a subsequent read of k will touch —
// the bucket header and the chain entries — by walking the chain through
// the atomic backing (atomic loads are never elided), and returns the
// value pointer so the caller can touch the target object too. The result
// carries no consistency guarantee; it exists only to be dereferenced for
// its cache side effect.
func (m *PtrMap[K, V]) PrefetchPtr(k K) *V {
	b := m.bucketFor(k)
	for e := b.head.Raw(); e != nil; e = e.next.Raw() {
		if e.key == k {
			return e.val
		}
	}
	return nil
}

// InsertPtrTx adds (k, v) if k is absent and reports whether it did.
func (m *PtrMap[K, V]) InsertPtrTx(tx *stm.Tx, k K, v *V) bool {
	b := m.bucketFor(k)
	for e := b.head.Load(tx, &b.orec); e != nil; e = e.next.Load(tx, &b.orec) {
		if e.key == k {
			return false
		}
	}
	e := &ptrEntry[K, V]{key: k, val: v}
	e.next.Init(b.head.Load(tx, &b.orec))
	b.head.Store(tx, &b.orec, e)
	return true
}

// RemoveTx deletes k and reports whether it was present.
func (m *PtrMap[K, V]) RemoveTx(tx *stm.Tx, k K) bool {
	b := m.bucketFor(k)
	var prev *ptrEntry[K, V]
	for e := b.head.Load(tx, &b.orec); e != nil; e = e.next.Load(tx, &b.orec) {
		if e.key == k {
			succ := e.next.Load(tx, &b.orec)
			if prev == nil {
				b.head.Store(tx, &b.orec, succ)
			} else {
				prev.next.Store(tx, &b.orec, succ)
			}
			return true
		}
		prev = e
	}
	return false
}

// SizeSlow counts entries without transactional protection; the map must
// be quiescent. Intended for tests.
func (m *PtrMap[K, V]) SizeSlow() int {
	n := 0
	for i := range m.buckets {
		for e := m.buckets[i].head.Raw(); e != nil; e = e.next.Raw() {
			n++
		}
	}
	return n
}

// ForEachSlow visits every entry without transactional protection; see
// SizeSlow. Iteration stops if fn returns false.
func (m *PtrMap[K, V]) ForEachSlow(fn func(k K, v *V) bool) {
	for i := range m.buckets {
		for e := m.buckets[i].head.Raw(); e != nil; e = e.next.Raw() {
			if !fn(e.key, e.val) {
				return
			}
		}
	}
}
