// Package kv defines the key/value pair type shared by the benchmark
// harness, the conformance suite, and every baseline map (the evaluation
// fixes keys and values to signed 64-bit integers, §5.1).
package kv

// KV is a key/value pair.
type KV struct {
	Key int64
	Val int64
}
