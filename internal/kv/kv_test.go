package kv

import "testing"

// TestKV pins the properties the harness and conformance suite rely
// on: KV is a comparable value type whose zero value is (0, 0), usable
// as a map key and compared field-wise.
func TestKV(t *testing.T) {
	var zero KV
	if zero.Key != 0 || zero.Val != 0 {
		t.Fatalf("zero KV = %+v", zero)
	}
	a := KV{Key: 1, Val: 10}
	b := a
	if a != b {
		t.Fatal("copies compare unequal")
	}
	b.Val = 11
	if a == b {
		t.Fatal("field-wise comparison broken")
	}
	if a != (KV{Key: 1, Val: 10}) {
		t.Fatal("composite literal comparison broken")
	}
	set := map[KV]bool{a: true, b: true}
	if len(set) != 2 || !set[KV{Key: 1, Val: 10}] || !set[KV{Key: 1, Val: 11}] {
		t.Fatalf("KV as map key: %v", set)
	}
}
