package bundleskip

import (
	"testing"

	"repro/internal/epoch"
	"repro/internal/maptest"
)

func TestConformanceHybridSource(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return New(Config{Source: epoch.NewHybridSource()})
	})
}

func TestConformanceCounterSource(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return New(Config{Source: epoch.NewCounterSource()})
	})
}

func TestConformanceNoGC(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return New(Config{GCEvery: -1})
	})
}

func TestConformanceTinyTowers(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return New(Config{MaxLevel: 2})
	})
}

func TestBundleHistoryPreservesSnapshot(t *testing.T) {
	m := New(Config{Source: epoch.NewCounterSource(), GCEvery: -1})
	for k := int64(0); k < 8; k++ {
		m.Insert(k, k)
	}
	ts, ticket := m.tracker.Begin(m.src)
	m.Remove(3)
	m.Insert(100, 100)
	// Replay the bundle traversal at ts: it must see 3 and not 100.
	var keys []int64
	cur := m.head
	for {
		nxt := m.bundleAt(cur, ts)
		if nxt == nil || nxt.sentinel > 0 {
			break
		}
		keys = append(keys, nxt.key)
		cur = nxt
	}
	m.tracker.Exit(ticket)
	want := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	if len(keys) != len(want) {
		t.Fatalf("snapshot keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("snapshot keys = %v, want %v", keys, want)
		}
	}
	// A fresh range sees the update.
	now := m.Range(0, 200, nil)
	if len(now) != 8 || now[len(now)-1].Key != 100 {
		t.Errorf("current range = %v", now)
	}
}

func TestBundlePruning(t *testing.T) {
	m := New(Config{Source: epoch.NewCounterSource(), GCEvery: 1})
	m.Insert(1, 1)
	// Churn a neighbor so head's bundle grows and gets pruned (no
	// active snapshots, so pruning can cut to one entry).
	for i := 0; i < 200; i++ {
		m.Insert(0, 0)
		m.Remove(0)
	}
	depth := 0
	for e := m.bundle(m.head); e != nil; e = e.next.Load() {
		depth++
	}
	if depth > 8 {
		t.Errorf("head bundle depth = %d after churn with GC, want small", depth)
	}
}
