// Package bundleskip implements the evaluation's "Skip list (Bundled)"
// baseline (Nelson-Slivon et al., "Bundling Linked Data Structures for
// Linearizable Range Queries", PPoPP 2022): an optimistic lazy skip list
// (Herlihy–Shavit style, per-node locks, logical marking) whose level-0
// links carry bundles — timestamped histories of the link's past values.
// A range query draws a snapshot timestamp and dereferences each bundle
// at that timestamp, so it traverses the list exactly as it was when the
// query linearized, without blocking or restarting against updaters.
//
// As with the vCAS baseline, the timestamp source selects between the
// original shared-counter clock and the rdtscp-style variant.
package bundleskip

import (
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/kv"
)

// DefaultMaxLevel matches the evaluation configuration (§5.1).
const DefaultMaxLevel = 20

// bundleEntry is one element of a node's level-0 link history, newest
// first. ts and ptr are immutable; next is atomic so lock-free readers
// can race with pruning.
type bundleEntry struct {
	ts   uint64
	ptr  *node
	next atomic.Pointer[bundleEntry]
}

type node struct {
	key      int64
	val      int64
	sentinel int8
	topLevel int
	iTs      uint64 // insertion stamp, fixed before the node is published

	mu          sync.Mutex
	marked      atomic.Bool
	fullyLinked atomic.Bool
	next        []atomic.Pointer[node]
	bundle      atomic.Pointer[bundleEntry] // level-0 history, newest first
}

// Map is a bundled lazy skip list.
type Map struct {
	src      epoch.Source
	tracker  epoch.Tracker
	maxLevel int
	head     *node
	tail     *node
	gcOn     bool
	gcMask   uint64
}

// Config tunes the map.
type Config struct {
	// MaxLevel is the tower height (default 20).
	MaxLevel int
	// Source is the snapshot timestamp source (default HybridSource,
	// the rdtscp-style variant the paper prefers).
	Source epoch.Source
	// GCEvery prunes bundles on roughly one in GCEvery updates; 0
	// selects 16, negative disables pruning.
	GCEvery int
}

// New creates an empty map.
func New(cfg Config) *Map {
	if cfg.MaxLevel == 0 {
		cfg.MaxLevel = DefaultMaxLevel
	}
	if cfg.Source == nil {
		cfg.Source = epoch.NewHybridSource()
	}
	gcEvery := cfg.GCEvery
	if gcEvery == 0 {
		gcEvery = 16
	}
	m := &Map{src: cfg.Source, maxLevel: cfg.MaxLevel}
	if gcEvery > 0 {
		m.gcOn = true
		m.gcMask = 1<<uint(bits.Len(uint(gcEvery-1))) - 1
	}
	m.head = &node{sentinel: -1, topLevel: cfg.MaxLevel, next: make([]atomic.Pointer[node], cfg.MaxLevel)}
	m.tail = &node{sentinel: 1, topLevel: cfg.MaxLevel, next: make([]atomic.Pointer[node], cfg.MaxLevel)}
	m.head.fullyLinked.Store(true)
	m.tail.fullyLinked.Store(true)
	for l := 0; l < cfg.MaxLevel; l++ {
		m.head.next[l].Store(m.tail)
	}
	e := &bundleEntry{ts: 1, ptr: m.tail}
	m.head.bundle.Store(e)
	return m
}

func (m *Map) before(n *node, k int64) bool {
	if n.sentinel != 0 {
		return n.sentinel < 0
	}
	return n.key < k
}

func (m *Map) randomHeight() int {
	h := bits.TrailingZeros64(rand.Uint64()|(1<<63)) + 1
	if h > m.maxLevel {
		h = m.maxLevel
	}
	return h
}

// find fills preds/succs and returns the highest level at which k was
// found, or -1. Pure traversal: no helping, no locking.
func (m *Map) find(k int64, preds, succs []*node) int {
	lFound := -1
	pred := m.head
	for l := m.maxLevel - 1; l >= 0; l-- {
		cur := pred.next[l].Load()
		for m.before(cur, k) {
			pred = cur
			cur = pred.next[l].Load()
		}
		if lFound == -1 && cur.sentinel == 0 && cur.key == k {
			lFound = l
		}
		preds[l] = pred
		succs[l] = cur
	}
	return lFound
}

// prependBundle records that n's level-0 link changed to ptr at stamp
// ts. Caller holds n's lock; readers are lock-free. Pruning keeps the
// newest entry at or below the oldest active snapshot as the boundary.
func (m *Map) prependBundle(n *node, ts uint64, ptr *node) {
	e := &bundleEntry{ts: ts, ptr: ptr}
	e.next.Store(m.bundle(n))
	n.bundle.Store(e)
	if m.gcOn && rand.Uint64()&m.gcMask == 0 {
		min := m.tracker.Min()
		for cur := e; cur != nil; cur = cur.next.Load() {
			if cur.ts <= min {
				cur.next.Store(nil)
				break
			}
		}
	}
}

func (m *Map) bundle(n *node) *bundleEntry { return n.bundle.Load() }

// bundleAt returns n's level-0 successor as of snapshot ts.
func (m *Map) bundleAt(n *node, ts uint64) *node {
	for e := m.bundle(n); e != nil; e = e.next.Load() {
		if e.ts <= ts {
			return e.ptr
		}
	}
	return nil
}

// Insert adds (k, v) if absent and reports whether it did.
func (m *Map) Insert(k, v int64) bool {
	topLevel := m.randomHeight()
	preds := make([]*node, m.maxLevel)
	succs := make([]*node, m.maxLevel)
	for {
		if lFound := m.find(k, preds, succs); lFound != -1 {
			found := succs[lFound]
			if !found.marked.Load() {
				// Wait until the winning insert finishes linking.
				for !found.fullyLinked.Load() {
					runtime.Gosched()
				}
				return false
			}
			continue // marked: wait for physical removal, then retry
		}
		highestLocked := -1
		valid := true
		var prevPred *node
		for l := 0; valid && l < topLevel; l++ {
			pred, succ := preds[l], succs[l]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = l
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() && pred.next[l].Load() == succ
		}
		if !valid {
			unlockPreds(preds, highestLocked)
			continue
		}
		ts := m.src.Stamp()
		n := &node{key: k, val: v, topLevel: topLevel, iTs: ts,
			next: make([]atomic.Pointer[node], topLevel)}
		for l := 0; l < topLevel; l++ {
			n.next[l].Store(succs[l])
		}
		ne := &bundleEntry{ts: ts, ptr: succs[0]}
		n.bundle.Store(ne)
		// Publish to snapshots first (bundle), then to the current
		// structure (pointers), all under the pred locks.
		m.prependBundle(preds[0], ts, n)
		for l := 0; l < topLevel; l++ {
			preds[l].next[l].Store(n)
		}
		n.fullyLinked.Store(true)
		unlockPreds(preds, highestLocked)
		return true
	}
}

// Remove deletes k and reports whether this call removed it.
func (m *Map) Remove(k int64) bool {
	preds := make([]*node, m.maxLevel)
	succs := make([]*node, m.maxLevel)
	var victim *node
	isMarked := false
	topLevel := -1
	for {
		lFound := m.find(k, preds, succs)
		if lFound != -1 {
			victim = succs[lFound]
		}
		if !isMarked {
			if lFound == -1 {
				return false
			}
			if !victim.fullyLinked.Load() || victim.topLevel != lFound+1 || victim.marked.Load() {
				return false
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false
			}
			victim.marked.Store(true)
			isMarked = true
		}
		highestLocked := -1
		valid := true
		var prevPred *node
		for l := 0; valid && l < topLevel; l++ {
			pred := preds[l]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = l
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[l].Load() == victim
		}
		if !valid {
			unlockPreds(preds, highestLocked)
			continue
		}
		ts := m.src.Stamp()
		m.prependBundle(preds[0], ts, victim.next[0].Load())
		for l := topLevel - 1; l >= 0; l-- {
			preds[l].next[l].Store(victim.next[l].Load())
		}
		victim.mu.Unlock()
		unlockPreds(preds, highestLocked)
		return true
	}
}

// Lookup returns the value for k. Wait-free: one traversal, two flag
// loads.
func (m *Map) Lookup(k int64) (int64, bool) {
	pred := m.head
	var found *node
	for l := m.maxLevel - 1; l >= 0; l-- {
		cur := pred.next[l].Load()
		for m.before(cur, k) {
			pred = cur
			cur = pred.next[l].Load()
		}
		if cur.sentinel == 0 && cur.key == k {
			found = cur
			break
		}
	}
	if found == nil || !found.fullyLinked.Load() || found.marked.Load() {
		return 0, false
	}
	return found.val, true
}

// Contains reports whether k is present.
func (m *Map) Contains(k int64) bool {
	_, ok := m.Lookup(k)
	return ok
}

// Range appends all pairs with l <= key <= r, linearized at a snapshot
// timestamp, to buf. The traversal dereferences bundles at the snapshot,
// so it sees exactly the level-0 list of that instant.
func (m *Map) Range(l, r int64, buf []kv.KV) []kv.KV {
	ts, ticket := m.tracker.Begin(m.src)
	defer m.tracker.Exit(ticket)

	preds := make([]*node, m.maxLevel)
	succs := make([]*node, m.maxLevel)
	// Find a traversal start that was already in the list at ts: a
	// currently unmarked node with key < l inserted at or before ts.
	// Unmarked-now implies alive at ts, so its bundle history at ts is
	// the state we need. The head (iTs 0) is the always-valid fallback.
	start := m.head
	m.find(l, preds, succs)
	if p := preds[0]; p.sentinel == 0 && p.iTs <= ts && !p.marked.Load() {
		start = p
	}
	cur := start
	for {
		nxt := m.bundleAt(cur, ts)
		if nxt == nil || nxt.sentinel > 0 {
			break
		}
		if nxt.key > r {
			break
		}
		if nxt.key >= l {
			buf = append(buf, kv.KV{Key: nxt.key, Val: nxt.val})
		}
		cur = nxt
	}
	return buf
}

// CheckQuiescent audits the quiescent structure: sorted unique keys at
// level 0 and tower consistency.
func (m *Map) CheckQuiescent() error {
	prevKey := int64(0)
	first := true
	for cur := m.head.next[0].Load(); cur.sentinel == 0; cur = cur.next[0].Load() {
		if cur.marked.Load() {
			return errAudit("marked node still linked at quiescence")
		}
		if !first && cur.key <= prevKey {
			return errAudit("level-0 order violation")
		}
		prevKey = cur.key
		first = false
	}
	return nil
}

type errAudit string

func (e errAudit) Error() string { return "bundleskip: " + string(e) }

func unlockPreds(preds []*node, highest int) {
	var prev *node
	for l := 0; l <= highest; l++ {
		if preds[l] != prev {
			preds[l].mu.Unlock()
			prev = preds[l]
		}
	}
}
