package vcasskip

import (
	"testing"

	"repro/internal/epoch"
	"repro/internal/maptest"
)

func TestConformanceHybridSource(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return New(Config{Source: epoch.NewHybridSource()})
	})
}

func TestConformanceCounterSource(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return New(Config{Source: epoch.NewCounterSource()})
	})
}

func TestConformanceNoGC(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return New(Config{GCEvery: -1})
	})
}

func TestConformanceTinyTowers(t *testing.T) {
	// Degenerate one-level towers stress the bottom-level protocol.
	maptest.RunAll(t, func() maptest.OrderedMap {
		return New(Config{MaxLevel: 1})
	})
}

func TestSnapshotSeesRemovedNode(t *testing.T) {
	// A version read at an old snapshot must still see a since-removed
	// key, which is what distinguishes vCAS ranges from naive scans.
	m := New(Config{Source: epoch.NewCounterSource()})
	for k := int64(0); k < 10; k++ {
		m.Insert(k, k)
	}
	src := m.src
	ts, ticket := m.tracker.Begin(src)
	defer m.tracker.Exit(ticket)
	m.Remove(5)
	if _, ok := m.Lookup(5); ok {
		t.Fatal("Lookup sees removed key")
	}
	// A fresh range must not include 5.
	now := m.Range(0, 9, nil)
	if len(now) != 9 {
		t.Fatalf("current range has %d keys, want 9", len(now))
	}
	// But the old snapshot traversal must: replay it manually through
	// the versioned links.
	var got []int64
	cur := m.head
	for {
		e, ok := cur.next[0].ReadVersion(src, ts)
		if !ok || e.Succ == nil || e.Succ.sentinel > 0 {
			break
		}
		n := e.Succ
		if ne, ok2 := n.next[0].ReadVersion(src, ts); ok2 && !ne.Marked {
			got = append(got, n.Key)
		}
		cur = n
	}
	if len(got) != 10 {
		t.Errorf("snapshot traversal found %d keys, want 10 (including removed 5): %v", len(got), got)
	}
}
