// Package vcasskip implements the evaluation's "Skip list (vCAS)"
// baseline: a lock-free skip list in the Harris/Fraser/Herlihy-Shavit
// style whose links are versioned-CAS objects (Wei et al. [50]), so
// range queries read a constant-time snapshot instead of coordinating
// with updaters. The timestamp source selects between the original
// shared-counter camera and the rdtscp-style variant of Grimes et
// al. [23] (see package epoch).
//
// Every level's links are versioned. A node is logically deleted by
// marking its own next links (top down, bottom last — the bottom mark is
// the linearization point); searches physically unlink marked nodes as
// they pass. A range query takes a snapshot timestamp and navigates the
// version of the list current at that timestamp: a node is in the
// result iff it is reachable through timestamp-t links and its own
// bottom link was unmarked at t.
package vcasskip

import (
	"math/bits"
	"math/rand/v2"

	"repro/internal/epoch"
	"repro/internal/kv"
	"repro/internal/vcas"
)

// DefaultMaxLevel matches the evaluation configuration (§5.1).
const DefaultMaxLevel = 20

// Edge is the value stored in each versioned link: the successor and the
// logical-deletion mark of the link's owner.
type Edge struct {
	Succ   *Node
	Marked bool
}

// Node is a skip list node. Key and value are immutable; all mutable
// state lives in the versioned links.
type Node struct {
	Key      int64
	Val      int64
	sentinel int8
	next     []vcas.VPointer[Edge]
}

func (n *Node) height() int { return len(n.next) }

// Map is a lock-free ordered map with vCAS snapshots.
type Map struct {
	src      epoch.Source
	tracker  epoch.Tracker
	maxLevel int
	head     *Node
	tail     *Node
	gcOn     bool
	gcMask   uint64
}

// Config tunes the map.
type Config struct {
	// MaxLevel is the tower height (default 20).
	MaxLevel int
	// Source is the snapshot timestamp source (default: hwclock-style
	// HybridSource, the paper's preferred rdtscp variant).
	Source epoch.Source
	// GCEvery prunes version lists on roughly one in GCEvery successful
	// link updates; 0 selects 16, negative disables pruning.
	GCEvery int
}

// New creates an empty map.
func New(cfg Config) *Map {
	if cfg.MaxLevel == 0 {
		cfg.MaxLevel = DefaultMaxLevel
	}
	if cfg.Source == nil {
		cfg.Source = epoch.NewHybridSource()
	}
	gcEvery := cfg.GCEvery
	if gcEvery == 0 {
		gcEvery = 16
	}
	m := &Map{
		src:      cfg.Source,
		maxLevel: cfg.MaxLevel,
	}
	if gcEvery > 0 {
		// Round to a power of two for cheap masking.
		m.gcOn = true
		m.gcMask = 1<<uint(bits.Len(uint(gcEvery-1))) - 1
	}
	m.head = &Node{sentinel: -1, next: make([]vcas.VPointer[Edge], cfg.MaxLevel)}
	m.tail = &Node{sentinel: 1, next: make([]vcas.VPointer[Edge], cfg.MaxLevel)}
	for l := 0; l < cfg.MaxLevel; l++ {
		m.head.next[l].Init(Edge{Succ: m.tail})
		m.tail.next[l].Init(Edge{})
	}
	return m
}

// before reports whether n orders strictly before key k.
func (m *Map) before(n *Node, k int64) bool {
	if n.sentinel != 0 {
		return n.sentinel < 0
	}
	return n.Key < k
}

func (m *Map) randomHeight() int {
	h := bits.TrailingZeros64(rand.Uint64()|(1<<63)) + 1
	if h > m.maxLevel {
		h = m.maxLevel
	}
	return h
}

// maybePrune occasionally trims a link's version list down to the oldest
// version any active snapshot can still need.
func (m *Map) maybePrune(p *vcas.VPointer[Edge]) {
	if !m.gcOn || rand.Uint64()&m.gcMask != 0 {
		return
	}
	p.Prune(m.src, m.tracker.Min())
}

// find locates k, filling preds/succs per level and physically unlinking
// marked nodes along the way (Harris-style helping). It reports whether
// an unmarked node with key k was found at the bottom level.
func (m *Map) find(k int64, preds, succs []*Node) bool {
retry:
	pred := m.head
	for level := m.maxLevel - 1; level >= 0; level-- {
		cur := pred.next[level].Read(m.src).Succ
		for {
			succEdge := cur.next[level].Read(m.src)
			for succEdge.Marked {
				// cur is logically deleted: unlink it at this level.
				if !pred.next[level].CompareAndSwap(m.src, Edge{Succ: cur}, Edge{Succ: succEdge.Succ}) {
					goto retry
				}
				m.maybePrune(&pred.next[level])
				cur = succEdge.Succ
				succEdge = cur.next[level].Read(m.src)
			}
			if m.before(cur, k) {
				pred = cur
				cur = succEdge.Succ
				continue
			}
			break
		}
		preds[level] = pred
		succs[level] = cur
	}
	return succs[0].sentinel == 0 && succs[0].Key == k
}

// Insert adds (k, v) if absent and reports whether it did. The
// linearization point of a successful insert is the bottom-level CAS.
func (m *Map) Insert(k, v int64) bool {
	preds := make([]*Node, m.maxLevel)
	succs := make([]*Node, m.maxLevel)
	for {
		if m.find(k, preds, succs) {
			return false
		}
		height := m.randomHeight()
		n := &Node{Key: k, Val: v, next: make([]vcas.VPointer[Edge], height)}
		for l := 0; l < height; l++ {
			n.next[l].Init(Edge{Succ: succs[l]})
		}
		if !preds[0].next[0].CompareAndSwap(m.src, Edge{Succ: succs[0]}, Edge{Succ: n}) {
			continue // bottom link changed under us; retry from scratch
		}
		m.maybePrune(&preds[0].next[0])
		// Best-effort upper-level linking: abandoned if the node is
		// deleted concurrently; index completeness is a performance
		// matter only.
		for l := 1; l < height; l++ {
			for {
				if preds[l].next[l].CompareAndSwap(m.src, Edge{Succ: succs[l]}, Edge{Succ: n}) {
					m.maybePrune(&preds[l].next[l])
					break
				}
				if n.next[0].Read(m.src).Marked {
					return true
				}
				m.find(k, preds, succs)
				if succs[0] != n {
					return true // deleted (and possibly replaced)
				}
				// Refresh our forward pointer at this level.
				old := n.next[l].Read(m.src)
				if old.Marked {
					return true
				}
				if old.Succ != succs[l] &&
					!n.next[l].CompareAndSwap(m.src, old, Edge{Succ: succs[l]}) {
					if n.next[l].Read(m.src).Marked {
						return true
					}
				}
			}
		}
		return true
	}
}

// Remove deletes k and reports whether this call removed it. The
// linearization point is the successful bottom-level mark.
func (m *Map) Remove(k int64) bool {
	preds := make([]*Node, m.maxLevel)
	succs := make([]*Node, m.maxLevel)
	if !m.find(k, preds, succs) {
		return false
	}
	n := succs[0]
	// Mark upper levels top-down.
	for l := n.height() - 1; l >= 1; l-- {
		e := n.next[l].Read(m.src)
		for !e.Marked {
			n.next[l].CompareAndSwap(m.src, e, Edge{Succ: e.Succ, Marked: true})
			e = n.next[l].Read(m.src)
		}
	}
	// Bottom-level mark decides the winner among racing removers.
	for {
		e := n.next[0].Read(m.src)
		if e.Marked {
			return false
		}
		if n.next[0].CompareAndSwap(m.src, e, Edge{Succ: e.Succ, Marked: true}) {
			m.find(k, preds, succs) // physically unlink via helping
			return true
		}
	}
}

// Lookup returns the value for k. It is read-only (no helping).
func (m *Map) Lookup(k int64) (int64, bool) {
	pred := m.head
	for level := m.maxLevel - 1; level >= 0; level-- {
		cur := pred.next[level].Read(m.src).Succ
		for {
			e := cur.next[level].Read(m.src)
			if e.Marked {
				cur = e.Succ // skip deleted node without unlinking
				continue
			}
			if m.before(cur, k) {
				pred = cur
				cur = e.Succ
				continue
			}
			break
		}
		if cur.sentinel == 0 && cur.Key == k {
			return cur.Val, true
		}
	}
	return 0, false
}

// Contains reports whether k is present.
func (m *Map) Contains(k int64) bool {
	_, ok := m.Lookup(k)
	return ok
}

// Range appends all pairs with l <= key <= r, at a single snapshot
// timestamp, to buf. This is the vCAS payoff: the query never restarts
// and never blocks updaters; it simply reads timestamp-t versions.
func (m *Map) Range(l, r int64, buf []kv.KV) []kv.KV {
	ts, ticket := m.tracker.Begin(m.src)
	defer m.tracker.Exit(ticket)

	// Versioned descent to the rightmost node before l as of ts. Every
	// node reached is reachable at ts by induction from the head.
	pred := m.head
	for level := m.maxLevel - 1; level >= 0; level-- {
		for {
			e, ok := pred.next[level].ReadVersion(m.src, ts)
			if !ok {
				break
			}
			cur := e.Succ
			if cur == nil || !m.before(cur, l) {
				break
			}
			pred = cur
		}
	}
	// Bottom-level scan at ts.
	cur := pred
	for {
		e, ok := cur.next[0].ReadVersion(m.src, ts)
		if !ok || e.Succ == nil {
			break
		}
		n := e.Succ
		if n.sentinel > 0 || n.Key > r {
			break
		}
		if n.Key >= l {
			// n is reachable at ts; it is a member iff its own bottom
			// link was unmarked at ts.
			if ne, ok2 := n.next[0].ReadVersion(m.src, ts); ok2 && !ne.Marked {
				buf = append(buf, kv.KV{Key: n.Key, Val: n.Val})
			}
		}
		cur = n
	}
	return buf
}

// CheckQuiescent audits the quiescent structure: bottom level sorted and
// unmarked-reachable nodes unique.
func (m *Map) CheckQuiescent() error {
	last := int64(0)
	first := true
	cur := m.head.next[0].Read(m.src).Succ
	for cur.sentinel == 0 {
		e := cur.next[0].Read(m.src)
		if !e.Marked {
			if !first && cur.Key <= last {
				return errOrder{prev: last, cur: cur.Key}
			}
			last = cur.Key
			first = false
		}
		cur = e.Succ
	}
	return nil
}

type errOrder struct{ prev, cur int64 }

func (e errOrder) Error() string { return "vcasskip: order violation" }
