// Package vcasbst implements the evaluation's "BST (vCAS)" baseline: the
// non-blocking leaf-oriented binary search tree of Ellen, Fatourou,
// Ruppert and van Breugel (PODC 2010) with its child pointers replaced by
// versioned-CAS objects (Wei et al. [50]), so range queries read an
// in-order snapshot of the leaves at a single timestamp.
//
// Keys live only in leaves; internal nodes route: left subtree strictly
// below the routing key, right subtree at or above it. Updates coordinate
// through per-internal-node update records (IFlag/DFlag/Mark/Clean) with
// helping, exactly as in the original algorithm; only the child-pointer
// CASes are versioned, because they are what snapshots traverse.
package vcasbst

import (
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/kv"
	"repro/internal/vcas"
)

// rank orders the two infinity sentinels above every real key.
const (
	rankReal int8 = 0
	rankInf1 int8 = 1
	rankInf2 int8 = 2
)

type state uint8

const (
	clean state = iota
	iflag
	dflag
	mark
)

// update is the coordination word of an internal node. A specific
// *update pointer doubles as the CAS version.
type update struct {
	state state
	info  any // *iInfo (iflag) or *dInfo (dflag, mark); nil when clean
}

var cleanUpdate = &update{state: clean}

// iInfo describes a pending insertion. lVer is the version handle of
// the child slot holding l at search time: the ichild CAS targets that
// exact version, making it immune to the sibling-promotion ABA (a
// deleted leaf's sibling can become its grandparent's child again,
// restoring the old pointer value but never the old version object).
type iInfo struct {
	p           *tnode
	l           *tnode
	lVer        *vcas.Version[*tnode]
	newInternal *tnode
	flagUpd     *update // the IFlag record installed on p
}

// dInfo describes a pending deletion. pVer is the version handle of the
// grandparent's child slot holding p at search time; see iInfo.lVer.
type dInfo struct {
	gp, p   *tnode
	pVer    *vcas.Version[*tnode]
	l       *tnode
	pUpdate *update // p's update word observed at search time
	flagUpd *update // the DFlag record installed on gp
}

// tnode is either an internal router (leaf false) or a leaf.
type tnode struct {
	key  int64
	rank int8
	leaf bool
	val  int64 // leaves only

	// internal only:
	left, right vcas.VPointer[*tnode]
	upd         atomic.Pointer[update]
}

// Map is a non-blocking external BST with vCAS snapshots.
type Map struct {
	src     epoch.Source
	tracker epoch.Tracker
	root    *tnode
}

// Config tunes the map.
type Config struct {
	// Source is the snapshot timestamp source (default HybridSource).
	Source epoch.Source
}

// New creates an empty map: a sentinel root keyed at infinity-2 whose
// children are the two dummy leaves, so every real leaf sits at depth at
// least two and deletions always have a grandparent.
func New(cfg Config) *Map {
	if cfg.Source == nil {
		cfg.Source = epoch.NewHybridSource()
	}
	m := &Map{src: cfg.Source}
	m.root = &tnode{rank: rankInf2}
	m.root.upd.Store(cleanUpdate)
	m.root.left.Init(&tnode{rank: rankInf1, leaf: true})
	m.root.right.Init(&tnode{rank: rankInf2, leaf: true})
	return m
}

// keyBelow reports whether real key k routes left of internal node n.
func keyBelow(k int64, n *tnode) bool {
	if n.rank != rankReal {
		return true // every real key is below the sentinels
	}
	return k < n.key
}

// leafLess orders leaves by (rank, key).
func leafLess(a, b *tnode) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.key < b.key
}

// search descends to the leaf for k, recording the parent, grandparent,
// their update words (read before the respective child pointers, as the
// original algorithm requires), and the version handles of the last two
// child slots traversed.
func (m *Map) search(k int64) (gp, p, l *tnode, gpUpd, pUpd *update, pVer, lVer *vcas.Version[*tnode]) {
	l = m.root
	for !l.leaf {
		gp, p = p, l
		gpUpd = pUpd
		pUpd = p.upd.Load()
		pVer = lVer
		if keyBelow(k, p) {
			l, lVer = p.left.ReadVersioned(m.src)
		} else {
			l, lVer = p.right.ReadVersioned(m.src)
		}
	}
	return gp, p, l, gpUpd, pUpd, pVer, lVer
}

// Lookup returns the value for k.
func (m *Map) Lookup(k int64) (int64, bool) {
	n := m.root
	for !n.leaf {
		if keyBelow(k, n) {
			n = n.left.Read(m.src)
		} else {
			n = n.right.Read(m.src)
		}
	}
	if n.rank == rankReal && n.key == k {
		return n.val, true
	}
	return 0, false
}

// Contains reports whether k is present.
func (m *Map) Contains(k int64) bool {
	_, ok := m.Lookup(k)
	return ok
}

// Insert adds (k, v) if absent and reports whether it did.
func (m *Map) Insert(k, v int64) bool {
	for {
		_, p, l, _, pUpd, _, lVer := m.search(k)
		if l.rank == rankReal && l.key == k {
			return false
		}
		if pUpd.state != clean {
			m.help(pUpd)
			continue
		}
		newLeaf := &tnode{key: k, rank: rankReal, leaf: true, val: v}
		ni := m.newInternal(l, newLeaf)
		op := &iInfo{p: p, l: l, lVer: lVer, newInternal: ni}
		op.flagUpd = &update{state: iflag, info: op}
		if p.upd.CompareAndSwap(pUpd, op.flagUpd) {
			m.helpInsert(op)
			return true
		}
		m.help(p.upd.Load())
	}
}

// newInternal builds the replacement subtree for an insertion: an
// internal node routing between the old leaf and the new one.
func (m *Map) newInternal(oldLeaf, newLeaf *tnode) *tnode {
	small, large := newLeaf, oldLeaf
	if leafLess(oldLeaf, newLeaf) {
		small, large = oldLeaf, newLeaf
	}
	ni := &tnode{key: large.key, rank: large.rank}
	ni.upd.Store(cleanUpdate)
	ni.left.Init(small)
	ni.right.Init(large)
	return ni
}

func (m *Map) helpInsert(op *iInfo) {
	m.casChild(op.p, op.lVer, op.newInternal)
	op.p.upd.CompareAndSwap(op.flagUpd, &update{state: clean, info: op})
}

// Remove deletes k and reports whether this call removed it.
func (m *Map) Remove(k int64) bool {
	for {
		gp, p, l, gpUpd, pUpd, pVer, _ := m.search(k)
		if !(l.rank == rankReal && l.key == k) {
			return false
		}
		if gpUpd.state != clean {
			m.help(gpUpd)
			continue
		}
		if pUpd.state != clean {
			m.help(pUpd)
			continue
		}
		op := &dInfo{gp: gp, p: p, pVer: pVer, l: l, pUpdate: pUpd}
		op.flagUpd = &update{state: dflag, info: op}
		if gp.upd.CompareAndSwap(gpUpd, op.flagUpd) {
			if m.helpDelete(op) {
				return true
			}
			continue
		}
		m.help(gp.upd.Load())
	}
}

// helpDelete tries to complete a flagged deletion: mark the parent, then
// splice the sibling up. It reports whether the deletion went through
// (false means the DFlag was backed out and the caller must retry).
func (m *Map) helpDelete(op *dInfo) bool {
	markUpd := &update{state: mark, info: op}
	for {
		if op.p.upd.CompareAndSwap(op.pUpdate, markUpd) {
			break
		}
		cur := op.p.upd.Load()
		if cur.state == mark {
			if di, ok := cur.info.(*dInfo); ok && di == op {
				break // someone else marked for this same operation
			}
		}
		// The parent changed under us: back out the DFlag.
		m.help(cur)
		op.gp.upd.CompareAndSwap(op.flagUpd, &update{state: clean, info: op})
		return false
	}
	m.helpMarked(op)
	return true
}

// helpMarked splices the deleted leaf's sibling into the grandparent and
// clears the DFlag.
func (m *Map) helpMarked(op *dInfo) {
	// p is marked: its children are frozen, so the sibling read is
	// stable.
	sibling := op.p.left.Read(m.src)
	if sibling == op.l {
		sibling = op.p.right.Read(m.src)
	}
	m.casChild(op.gp, op.pVer, sibling)
	op.gp.upd.CompareAndSwap(op.flagUpd, &update{state: clean, info: op})
}

// casChild replaces the child version oldVer with new under parent,
// whichever side holds that exact version. Version-handle identity makes
// the helping race-idempotent and ABA-immune: exactly one helper's CAS
// can succeed, and a stale helper whose operation completed long ago can
// never fire again even if the slot's value has cycled back.
func (m *Map) casChild(parent *tnode, oldVer *vcas.Version[*tnode], new *tnode) {
	if parent.left.CompareAndSwapVersion(m.src, oldVer, new) {
		return
	}
	parent.right.CompareAndSwapVersion(m.src, oldVer, new)
}

// help advances whatever operation owns the given update word.
func (m *Map) help(u *update) {
	switch u.state {
	case iflag:
		m.helpInsert(u.info.(*iInfo))
	case dflag:
		m.helpDelete(u.info.(*dInfo))
	case mark:
		m.helpMarked(u.info.(*dInfo))
	case clean:
	}
}

// Range appends all pairs with l <= key <= r, linearized at a snapshot
// timestamp, to buf: an in-order walk over the version of the tree
// current at that timestamp, pruned to the query window.
func (m *Map) Range(l, r int64, buf []kv.KV) []kv.KV {
	ts, ticket := m.tracker.Begin(m.src)
	defer m.tracker.Exit(ticket)
	return m.rangeAt(m.root, ts, l, r, buf)
}

func (m *Map) rangeAt(n *tnode, ts uint64, l, r int64, buf []kv.KV) []kv.KV {
	if n == nil {
		return buf
	}
	if n.leaf {
		if n.rank == rankReal && n.key >= l && n.key <= r {
			buf = append(buf, kv.KV{Key: n.key, Val: n.val})
		}
		return buf
	}
	// Left subtree holds keys < n.key (sentinel-ranked routers hold all
	// real keys on the left).
	if n.rank != rankReal || l < n.key {
		if c, ok := n.left.ReadVersion(m.src, ts); ok {
			buf = m.rangeAt(c, ts, l, r, buf)
		}
	}
	if n.rank != rankReal || r >= n.key {
		if c, ok := n.right.ReadVersion(m.src, ts); ok {
			buf = m.rangeAt(c, ts, l, r, buf)
		}
	}
	return buf
}

// CheckQuiescent audits the quiescent tree: leaf keys strictly ascending
// in-order and routing invariants respected.
func (m *Map) CheckQuiescent() error {
	var last *tnode
	var walk func(n *tnode) error
	walk = func(n *tnode) error {
		if n.leaf {
			if last != nil && !leafLess(last, n) {
				return errAudit("in-order leaves not ascending")
			}
			last = n
			return nil
		}
		lc := n.left.Read(m.src)
		rc := n.right.Read(m.src)
		if lc == nil || rc == nil {
			return errAudit("internal node with missing child")
		}
		if err := walk(lc); err != nil {
			return err
		}
		return walk(rc)
	}
	return walk(m.root)
}

type errAudit string

func (e errAudit) Error() string { return "vcasbst: " + string(e) }
