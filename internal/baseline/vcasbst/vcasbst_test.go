package vcasbst

import (
	"testing"

	"repro/internal/epoch"
	"repro/internal/maptest"
)

func TestConformanceHybridSource(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return New(Config{Source: epoch.NewHybridSource()})
	})
}

func TestConformanceCounterSource(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return New(Config{Source: epoch.NewCounterSource()})
	})
}

func TestEmptyTreeQueries(t *testing.T) {
	m := New(Config{})
	if _, ok := m.Lookup(1); ok {
		t.Error("empty tree reports key")
	}
	if m.Remove(1) {
		t.Error("empty tree removes key")
	}
	if got := m.Range(-100, 100, nil); len(got) != 0 {
		t.Errorf("empty tree range = %v", got)
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

func TestDeleteDownToEmpty(t *testing.T) {
	m := New(Config{})
	keys := []int64{5, 3, 8, 1, 4, 7, 9, 2, 6}
	for _, k := range keys {
		if !m.Insert(k, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	for _, k := range keys {
		if !m.Remove(k) {
			t.Fatalf("Remove(%d) failed", k)
		}
		if err := m.CheckQuiescent(); err != nil {
			t.Fatalf("after removing %d: %v", k, err)
		}
	}
	if got := m.Range(0, 10, nil); len(got) != 0 {
		t.Errorf("range after emptying = %v", got)
	}
	// Tree is reusable after full drain.
	if !m.Insert(42, 42) {
		t.Error("insert after drain failed")
	}
}

func TestSnapshotSeesRemovedLeaf(t *testing.T) {
	m := New(Config{Source: epoch.NewCounterSource()})
	for k := int64(0); k < 16; k++ {
		m.Insert(k, k)
	}
	ts, ticket := m.tracker.Begin(m.src)
	m.Remove(7)
	m.Insert(100, 100)
	got := m.rangeAt(m.root, ts, 0, 200, nil)
	m.tracker.Exit(ticket)
	if len(got) != 16 {
		t.Fatalf("snapshot range has %d keys, want 16: %v", len(got), got)
	}
	for i, p := range got {
		if p.Key != int64(i) {
			t.Errorf("snapshot[%d] = %d, want %d", i, p.Key, i)
		}
	}
	now := m.Range(0, 200, nil)
	if len(now) != 16 || now[len(now)-1].Key != 100 {
		t.Errorf("current range = %v", now)
	}
}
