// Package repro is a from-scratch Go reproduction of "Skip Hash: A Fast
// Ordered Map Via Software Transactional Memory" (Rodriguez, Aksenov,
// Spear). The public API lives in repro/skiphash — including the
// sharded variant that partitions the map across independent skip-hash
// shards, the handle-lifecycle subsystem (Handle.Close, orphan
// queues, the Config.Maintenance background maintainer) that keeps the
// paper's deferred removal buffers from stranding stitched nodes on
// long-running servers, and the durability subsystem (Config.Durability
// plus the Open constructors): a write-ahead log of logical operations
// ordered by the STM's commit stamps, clock-consistent background
// snapshots, and crash recovery with torn-tail tolerance and checksum
// rejection. The experiment drivers in cmd/skipbench regenerate every
// figure and table of the paper's evaluation plus the shard sweep, the
// handle-churn series, and the durability-overhead table; cmd/skipstress
// -crash audits kill/recover cycles against a shadow model. See
// README.md for the package map and quickstart.
package repro
