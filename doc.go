// Package repro is a from-scratch Go reproduction of "Skip Hash: A Fast
// Ordered Map Via Software Transactional Memory" (Rodriguez, Aksenov,
// Spear). The public API lives in repro/skiphash — including the
// sharded variant that partitions the map across independent skip-hash
// shards — and the experiment drivers in cmd/skipbench regenerate every
// figure and table of the paper's evaluation plus the shard sweep. See
// README.md for the package map and quickstart.
package repro
