// Package repro is a from-scratch Go reproduction of "Skip Hash: A Fast
// Ordered Map Via Software Transactional Memory" (Rodriguez, Aksenov,
// Spear). The public API lives in repro/skiphash — including the
// sharded variant that partitions the map across independent skip-hash
// shards, and the handle-lifecycle subsystem (Handle.Close, orphan
// queues, the Config.Maintenance background maintainer) that keeps the
// paper's deferred removal buffers from stranding stitched nodes on
// long-running servers. The experiment drivers in cmd/skipbench
// regenerate every figure and table of the paper's evaluation plus the
// shard sweep and the handle-churn series. See README.md for the
// package map and quickstart.
package repro
