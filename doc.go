// Package repro is a from-scratch Go reproduction of "Skip Hash: A Fast
// Ordered Map Via Software Transactional Memory" (Rodriguez, Aksenov,
// Spear). The public API lives in repro/skiphash; the experiment drivers
// in cmd/skipbench regenerate every figure and table of the paper's
// evaluation. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
