package skiphash_test

import (
	"math/rand/v2"
	"testing"

	"repro/skiphash"
)

// TestIsolatedDurableResizeReopen is the reopen-after-resize property
// test for isolated durability: interleave random writes with grow and
// shrink resizes under FsyncAlways, SIGKILL via SimulateCrash, reopen
// (with a deliberately wrong Config.Shards), and require the recovered
// map to have the post-resize shard count and exactly the model's
// contents — every acknowledged write was group-committed, so nothing
// may be lost.
func TestIsolatedDurableResizeReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := skiphash.Config{
		Shards:         2,
		IsolatedShards: true,
		Durability:     &skiphash.Durability{Dir: dir, Fsync: skiphash.FsyncAlways},
	}
	s, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatal(err)
	}

	const universe = 512
	rng := rand.New(rand.NewPCG(11, 13))
	model := make(map[int64]int64)
	mutate := func(n int) {
		for i := 0; i < n; i++ {
			k := int64(rng.IntN(universe))
			if rng.IntN(4) == 0 {
				s.Remove(k)
				delete(model, k)
			} else {
				v := rng.Int64()
				s.Put(k, v)
				model[k] = v
			}
		}
	}

	mutate(600)
	for _, n := range []int{8, 4} {
		if got, err := s.Resize(n); err != nil || got != n {
			t.Fatalf("Resize(%d) = %d, %v", n, got, err)
		}
		mutate(400)
	}
	if err := s.SimulateCrash(); err != nil {
		t.Fatalf("SimulateCrash: %v", err)
	}
	s.Close()

	cfg.Shards = 2 // ignored: the meta record's count (4) must win
	s, err = skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatalf("reopen after resize+crash: %v", err)
	}
	defer s.Close()
	if got := s.Shards(); got != 4 {
		t.Fatalf("recovered shard count %d, want 4", got)
	}
	for k := int64(0); k < universe; k++ {
		v, ok := s.Lookup(k)
		mv, mok := model[k]
		if ok != mok || (ok && v != mv) {
			t.Fatalf("key %d: recovered (%d,%v), model (%d,%v)", k, v, ok, mv, mok)
		}
	}
	if err := s.CheckInvariants(skiphash.CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestSharedDurableResizeReopen: in shared mode one WAL orders every
// shard's operations, so a resize needs no durable bookkeeping at all —
// after a crash the log replays into whatever geometry the reopening
// Config asks for.
func TestSharedDurableResizeReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := skiphash.Config{
		Shards:     2,
		Durability: &skiphash.Durability{Dir: dir, Fsync: skiphash.FsyncAlways},
	}
	s, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 256; k++ {
		s.Insert(k, k*7)
	}
	if _, err := s.Resize(8); err != nil {
		t.Fatal(err)
	}
	for k := int64(256); k < 512; k++ {
		s.Insert(k, k*7)
	}
	if err := s.SimulateCrash(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	cfg.Shards = 4
	s, err = skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	for k := int64(0); k < 512; k++ {
		if v, ok := s.Lookup(k); !ok || v != k*7 {
			t.Fatalf("Lookup(%d) = %d, %v after reopen", k, v, ok)
		}
	}
}
