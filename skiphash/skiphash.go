package skiphash

import (
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/thashmap"
)

// Map is a concurrent ordered map. All methods are safe for concurrent
// use; per-goroutine Handles avoid the small cost of borrowing pooled
// state. See the package documentation for the design.
type Map[K comparable, V any] = core.Map[K, V]

// Handle is a per-goroutine context over a Map. Handles are not safe for
// concurrent use; create one per worker with Map.NewHandle.
type Handle[K comparable, V any] = core.Handle[K, V]

// Txn is the transactional view of a Map inside Map.Atomic or
// Handle.Atomic: every operation performed through it commits or rolls
// back atomically with the rest.
type Txn[K comparable, V any] = core.Txn[K, V]

// Pair is a key/value pair produced by Range.
type Pair[K comparable, V any] = core.Pair[K, V]

// Config selects the tunables the paper's evaluation varies; the zero
// value gives the recommended two-path configuration.
type Config = core.Config

// CheckOptions tunes Map.CheckInvariants.
type CheckOptions = core.CheckOptions

// RangeStats aggregates range-query path counters (fast attempts/aborts
// and per-path completions) across a Map's handles.
type RangeStats = core.RangeStats

// MaintenanceStats counts the reclamation subsystem's work: orphaned and
// adopted buffer nodes, drained nodes and batches, and maintainer
// wakeups. See Map.MaintenanceStats / Sharded.MaintenanceStats.
type MaintenanceStats = core.MaintenanceStats

// RemovalBufferDisabled is the explicit "no removal buffering" sentinel
// for Config.RemovalBufferSize (a zero value keeps the paper's default
// buffer of 32).
const RemovalBufferDisabled = core.RemovalBufferDisabled

// New creates a skip hash for any key type: less supplies the ordering,
// hash the distribution over buckets. New and Open (plus their Sharded
// counterparts) are the package's construction surface; see the package
// documentation's Construction section.
func New[K comparable, V any](less func(a, b K) bool, hash func(K) uint64, cfg Config) *Map[K, V] {
	return core.New[K, V](less, hash, cfg)
}

// Int64Less is the natural int64 ordering, the stock less function for
// New/Open with the paper's evaluation key type.
func Int64Less(a, b int64) bool { return a < b }

// StringLess is the lexicographic (byte-wise) string ordering, the
// stock less function for New/Open with string keys.
func StringLess(a, b string) bool { return a < b }

// NewInt64 creates a skip hash with int64 keys.
//
// Deprecated: use New[int64, V](Int64Less, Hash64, cfg).
func NewInt64[V any](cfg Config) *Map[int64, V] {
	return New[int64, V](Int64Less, Hash64, cfg)
}

// Hash64 is a strong mixer for integer keys, exported for callers
// building custom key types on top of int64 identities.
func Hash64(k int64) uint64 { return thashmap.Hash64(k) }

// HashString hashes a string key: FNV-1a over the bytes followed by a
// splitmix64-style finalizer, so both the top bits (shard routing) and
// the low bits (bucket selection) are well mixed even for short or
// shared-prefix keys.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewString creates a skip hash with string keys.
//
// Deprecated: use New[string, V](StringLess, HashString, cfg).
func NewString[V any](cfg Config) *Map[string, V] {
	return New[string, V](StringLess, HashString, cfg)
}

// NewStringSharded creates a sharded skip hash with string keys.
//
// Deprecated: use NewSharded[string, V](StringLess, HashString, cfg).
func NewStringSharded[V any](cfg Config) *Sharded[string, V] {
	return NewSharded[string, V](StringLess, HashString, cfg)
}

// Sharded is a concurrent ordered map hash-partitioned across
// Config.Shards independent skip hashes. See the package documentation
// for the sharding and consistency model.
type Sharded[K comparable, V any] = shard.Sharded[K, V]

// ShardedHandle is a per-goroutine context over a Sharded map; create
// one per worker with Sharded.NewHandle.
type ShardedHandle[K comparable, V any] = shard.Handle[K, V]

// ShardedTxn is the transactional view of a Sharded map inside its
// Atomic. With the default shared runtime a batch may span shards; with
// IsolatedShards it is pinned to the shard of its first key and fails
// with ErrCrossShard if it strays.
type ShardedTxn[K comparable, V any] = shard.Txn[K, V]

// ErrCrossShard is returned by Sharded.Atomic on a map with
// IsolatedShards when a batch's operations span more than one shard.
var ErrCrossShard = shard.ErrCrossShard

// NewSharded creates a sharded skip hash for any key type: less
// supplies the ordering, hash the distribution over shards (top bits)
// and buckets (low bits), cfg.Shards the initial partition count
// (Sharded.Resize changes it live).
func NewSharded[K comparable, V any](less func(a, b K) bool, hash func(K) uint64, cfg Config) *Sharded[K, V] {
	return shard.New[K, V](less, hash, cfg)
}

// NewInt64Sharded creates a sharded skip hash with int64 keys.
//
// Deprecated: use NewSharded[int64, V](Int64Less, Hash64, cfg).
func NewInt64Sharded[V any](cfg Config) *Sharded[int64, V] {
	return NewSharded[int64, V](Int64Less, Hash64, cfg)
}
