package client

import (
	"errors"
	"testing"

	"repro/internal/wire"
	"repro/skiphash"
)

// The full request/response paths are exercised end to end against a
// live server by internal/server's tests and skipstress -net; these
// unit tests pin the pure mappings.

func TestStatusErrorMapsToMapSentinels(t *testing.T) {
	cases := []struct {
		status wire.Status
		want   error
	}{
		{wire.StatusOK, nil},
		{wire.StatusCrossShard, skiphash.ErrCrossShard},
		{wire.StatusNotDurable, skiphash.ErrNotDurable},
		{wire.StatusCorrupt, skiphash.ErrCorrupt},
		{wire.StatusBusy, ErrServerBusy},
		{wire.StatusShuttingDown, ErrShuttingDown},
		{wire.StatusNsNotFound, ErrNamespaceNotFound},
		{wire.StatusNsExists, ErrNamespaceExists},
	}
	for _, c := range cases {
		err := statusError(&wire.Response{Status: c.status, Msg: "m"})
		if c.want == nil {
			if err != nil {
				t.Fatalf("%s: err = %v, want nil", c.status, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Fatalf("%s: err = %v, not errors.Is %v", c.status, err, c.want)
		}
	}
	if err := statusError(&wire.Response{Status: wire.StatusErr, Msg: "disk exploded"}); err == nil {
		t.Fatal("StatusErr mapped to nil")
	}
}

func TestTypedErrorsAreTheMapsOwn(t *testing.T) {
	// The client's sentinels must be identical to the embedded map's, so
	// call sites behave the same against a local and a served map.
	if !errors.Is(ErrCrossShard, skiphash.ErrCrossShard) ||
		!errors.Is(ErrNotDurable, skiphash.ErrNotDurable) ||
		!errors.Is(ErrCorrupt, skiphash.ErrCorrupt) {
		t.Fatal("client sentinels diverged from skiphash sentinels")
	}
}

func TestRefusalError(t *testing.T) {
	if err := refusalError(&wire.Response{Status: wire.StatusBusy}); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("busy refusal = %v", err)
	}
	if err := refusalError(&wire.Response{Status: wire.StatusShuttingDown}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("shutdown refusal = %v", err)
	}
	if err := refusalError(&wire.Response{Status: wire.StatusOK}); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("unexpected id-0 frame = %v, want ErrConnClosed wrap", err)
	}
}

func TestDialRejectsUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", Options{DialTimeout: 100_000_000}); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
}
