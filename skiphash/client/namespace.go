package client

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// BKV is a byte-string key/value pair returned by Namespace.Range.
type BKV = wire.BKV

// BStep re-exports the wire v2 batch step for Namespace.Atomic.
type BStep = wire.BStep

// BStepResult re-exports the wire v2 batch step result.
type BStepResult = wire.BStepResult

// NsInfo describes one namespace, as reported by Namespaces.
type NsInfo = wire.NsInfo

// Fsync policy selectors for CreateNamespace.
const (
	NsFsyncDefault  = wire.NsFsyncDefault
	NsFsyncNone     = wire.NsFsyncNone
	NsFsyncInterval = wire.NsFsyncInterval
	NsFsyncAlways   = wire.NsFsyncAlways
)

// Namespace-typed sentinels, errors.Is-matchable across the wire like
// ErrCrossShard and ErrCorrupt.
var (
	// ErrNamespaceNotFound reports an operation addressed to a namespace
	// the server does not know (or one dropped mid-flight).
	ErrNamespaceNotFound = errors.New("client: namespace not found")
	// ErrNamespaceExists reports CreateNamespace on a taken name.
	ErrNamespaceExists = errors.New("client: namespace already exists")
)

// NamespaceOptions configures CreateNamespace.
type NamespaceOptions struct {
	// Durable gives the namespace its own WAL + snapshot directory under
	// the server's namespace root; false keeps it in memory.
	Durable bool
	// Fsync selects the durability policy (NsFsync*); NsFsyncDefault
	// uses the server's default.
	Fsync uint8
}

// CreateNamespace makes a named byte-string map on the server and
// returns its handle. Fails with ErrNamespaceExists if the name is
// taken.
func (c *Client) CreateNamespace(name string, opts NamespaceOptions) (*Namespace, error) {
	resp, err := c.pick().Do(&wire.Request{
		Op: wire.OpNsCreate, Name: name, Durable: opts.Durable, Fsync: opts.Fsync,
	})
	if err != nil {
		return nil, err
	}
	return &Namespace{c: c, id: resp.NsID, name: name}, nil
}

// DropNamespace deletes a named map — its data, and for a durable
// namespace its directory. Fails with ErrNamespaceNotFound if absent.
func (c *Client) DropNamespace(name string) error {
	_, err := c.pick().Do(&wire.Request{Op: wire.OpNsDrop, Name: name})
	return err
}

// Namespaces lists the server's namespaces, the default map (id 0)
// first.
func (c *Client) Namespaces() ([]NsInfo, error) {
	resp, err := c.pick().Do(&wire.Request{Op: wire.OpNsList})
	if err != nil {
		return nil, err
	}
	return resp.Namespaces, nil
}

// Namespace resolves an existing namespace by name. Namespace ids are
// assigned per server-process lifetime, so handles must be re-resolved
// after a server restart. Fails with ErrNamespaceNotFound if absent.
func (c *Client) Namespace(name string) (*Namespace, error) {
	infos, err := c.Namespaces()
	if err != nil {
		return nil, err
	}
	for _, info := range infos {
		if info.Name == name && info.ID != 0 {
			return &Namespace{c: c, id: info.ID, name: name}, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNamespaceNotFound, name)
}

// Namespace is a handle on one named byte-string map. Its methods
// mirror the Client's int64 surface over []byte keys and values and
// round-robin the same connection pool; for pipelining, issue
// Conn.Start with the v2 ops and this handle's ID.
//
// Keys are bounded by wire.MaxKeyLen, values by wire.MaxValLen; every
// method rejects oversized arguments client-side, because the server
// answers an oversized frame by tearing down the connection (and every
// pipelined call on it).
type Namespace struct {
	c    *Client
	id   uint32
	name string
}

// ID is the namespace's wire id for hand-rolled pipelined requests.
func (n *Namespace) ID() uint32 { return n.id }

// Name is the namespace's name.
func (n *Namespace) Name() string { return n.name }

func checkKey(k []byte) error {
	if len(k) > wire.MaxKeyLen {
		return fmt.Errorf("client: key of %d bytes exceeds wire.MaxKeyLen (%d)", len(k), wire.MaxKeyLen)
	}
	return nil
}

func checkVal(v []byte) error {
	if len(v) > wire.MaxValLen {
		return fmt.Errorf("client: value of %d bytes exceeds wire.MaxValLen (%d)", len(v), wire.MaxValLen)
	}
	return nil
}

// Get returns the value stored under k. The returned slice is owned by
// the caller.
func (n *Namespace) Get(k []byte) (v []byte, ok bool, err error) {
	if err := checkKey(k); err != nil {
		return nil, false, err
	}
	resp, err := n.c.pick().Do(&wire.Request{Op: wire.OpGet2, NS: n.id, BKey: k})
	return resp.BVal, resp.Ok, err
}

// Insert adds (k, v) if k is absent and reports whether it did.
func (n *Namespace) Insert(k, v []byte) (bool, error) {
	if err := checkKey(k); err != nil {
		return false, err
	}
	if err := checkVal(v); err != nil {
		return false, err
	}
	resp, err := n.c.pick().Do(&wire.Request{Op: wire.OpInsert2, NS: n.id, BKey: k, BVal: v})
	return resp.Ok, err
}

// Put sets k to v unconditionally, reporting whether a previous value
// was replaced.
func (n *Namespace) Put(k, v []byte) (bool, error) {
	if err := checkKey(k); err != nil {
		return false, err
	}
	if err := checkVal(v); err != nil {
		return false, err
	}
	resp, err := n.c.pick().Do(&wire.Request{Op: wire.OpPut2, NS: n.id, BKey: k, BVal: v})
	return resp.Ok, err
}

// Remove deletes k and reports whether it was present.
func (n *Namespace) Remove(k []byte) (bool, error) {
	if err := checkKey(k); err != nil {
		return false, err
	}
	resp, err := n.c.pick().Do(&wire.Request{Op: wire.OpDel2, NS: n.id, BKey: k})
	return resp.Ok, err
}

// Range returns every pair with lo <= key <= hi in lexicographic order;
// max > 0 truncates server-side. Responses are additionally capped at
// wire.MaxRangeBytes2 of encoded pairs; callers wanting more paginate,
// resuming from their last key + "\x00".
func (n *Namespace) Range(lo, hi []byte, max int) ([]BKV, error) {
	if err := checkKey(lo); err != nil {
		return nil, err
	}
	if err := checkKey(hi); err != nil {
		return nil, err
	}
	resp, err := n.c.pick().Do(&wire.Request{
		Op: wire.OpRange2, NS: n.id, BKey: lo, BVal: hi, Max: uint32(max),
	})
	return resp.BPairs, err
}

// RangeFrom returns pairs with key >= lo, with no upper bound, under
// the same max and byte caps as Range.
func (n *Namespace) RangeFrom(lo []byte, max int) ([]BKV, error) {
	if err := checkKey(lo); err != nil {
		return nil, err
	}
	resp, err := n.c.pick().Do(&wire.Request{
		Op: wire.OpRange2, NS: n.id, BKey: lo, Max: uint32(max), NoHi: true,
	})
	return resp.BPairs, err
}

// Atomic applies steps as one transaction on this namespace. All steps
// take effect at a single commit point, or none do.
func (n *Namespace) Atomic(steps []BStep) ([]BStepResult, error) {
	if len(steps) > wire.MaxBatchSteps {
		return nil, fmt.Errorf("client: batch of %d steps exceeds wire.MaxBatchSteps (%d)",
			len(steps), wire.MaxBatchSteps)
	}
	if b := wire.BatchBytes2(steps); b > wire.MaxBatchBytes2 {
		return nil, fmt.Errorf("client: batch of %d encoded bytes exceeds wire.MaxBatchBytes2 (%d)",
			b, wire.MaxBatchBytes2)
	}
	for i := range steps {
		if err := checkKey(steps[i].Key); err != nil {
			return nil, err
		}
		if steps[i].Kind == wire.StepInsert {
			if err := checkVal(steps[i].Val); err != nil {
				return nil, err
			}
		}
	}
	resp, err := n.c.pick().Do(&wire.Request{Op: wire.OpBatch2, NS: n.id, BSteps: steps})
	return resp.BSteps, err
}

// Sync forces this namespace's WAL to durable storage.
func (n *Namespace) Sync() error {
	_, err := n.c.pick().Do(&wire.Request{Op: wire.OpSync2, NS: n.id})
	return err
}

// Snapshot makes the server write a durable snapshot of this namespace
// now.
func (n *Namespace) Snapshot() error {
	_, err := n.c.pick().Do(&wire.Request{Op: wire.OpSnapshot2, NS: n.id})
	return err
}

// Resize asks the server to live-migrate this namespace's map to n
// shards (rounded up to a power of two; 0 = the map's automatic
// default) and returns the resulting count. A dropped namespace answers
// ErrNamespaceNotFound.
func (n *Namespace) Resize(shards int) (int, error) {
	resp, err := n.c.pick().Do(&wire.Request{Op: wire.OpResize2, NS: n.id, Key: int64(shards)})
	return int(resp.Val), err
}
