// Package client is the Go client for the skip hash network protocol
// served by cmd/skiphashd (internal/server, internal/wire).
//
// A Client owns a pool of connections; its synchronous methods
// (Get/Insert/Put/Remove/Range/Atomic/Sync/Snapshot) round-robin over
// the pool and behave like the embedded map's, with an error result
// added for the transport. For throughput, pipeline: obtain a Conn and
// issue Start calls — each returns a Call immediately — then Flush and
// Wait. The server coalesces a pipelined burst into single atomic
// transactions and answers with one write, so a window of W in-flight
// requests costs ~1/W of the per-op round trips of the closed loop.
//
// Errors mirror the embedded map's typed errors: a batch spanning
// isolated shards fails with skiphash.ErrCrossShard, Sync/Snapshot on
// a non-durable server with skiphash.ErrNotDurable, durability-layer
// corruption with an error matching skiphash.ErrCorrupt; all are
// errors.Is-compatible. Transport failures fail every in-flight call
// with ErrConnClosed (wrapping the cause), after which the connection
// is unusable.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
	"repro/skiphash"
)

// KV is a key/value pair returned by Range.
type KV = wire.KV

// Step re-exports the wire batch step for Atomic.
type Step = wire.Step

// StepResult re-exports the wire batch step result.
type StepResult = wire.StepResult

// Batch step kinds.
const (
	StepInsert = wire.StepInsert
	StepRemove = wire.StepRemove
	StepLookup = wire.StepLookup
)

// Typed errors. ErrCrossShard, ErrNotDurable and ErrCorrupt are the
// map's own sentinels, so errors.Is behaves identically against a
// local map and a served one.
var (
	ErrCrossShard = skiphash.ErrCrossShard
	ErrNotDurable = skiphash.ErrNotDurable
	ErrCorrupt    = skiphash.ErrCorrupt
	// ErrServerBusy reports the server refused the connection at its
	// connection limit.
	ErrServerBusy = errors.New("client: server at connection limit")
	// ErrShuttingDown reports the server is draining.
	ErrShuttingDown = errors.New("client: server shutting down")
	// ErrConnClosed fails calls whose connection died before their
	// response arrived.
	ErrConnClosed = errors.New("client: connection closed")
	// ErrReadOnly mirrors server.ErrReadOnly: a write (or Sync/
	// Snapshot) reached a replica that has not been promoted.
	ErrReadOnly = errors.New("client: server is a read-only replica")
	// errStale marks a replica whose watermark has not reached a GetAt
	// read barrier; GetAt falls through to the next replica on it.
	errStale = errors.New("client: replica watermark below read barrier")
)

// Options tunes Dial.
type Options struct {
	// Conns is the pool size. Default 1.
	Conns int
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// WriteTimeout bounds each flush. Default 10s; negative disables.
	WriteTimeout time.Duration
	// Replicas lists replica server addresses (same address syntax as
	// Dial) for read fan-out: GetAt round-robins watermark-barriered
	// reads over them, falling back to the primary pool. One connection
	// per address.
	Replicas []string
}

func (o Options) withDefaults() Options {
	if o.Conns == 0 {
		o.Conns = 1
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
	return o
}

// Client is a pool of protocol connections. All methods are safe for
// concurrent use.
type Client struct {
	conns    []*Conn
	replicas []*Conn
	next     atomic.Uint64
	rnext    atomic.Uint64
}

// splitNetwork infers the network from the address syntax: an address
// containing a path separator (or prefixed "unix:") is a unix socket,
// anything else TCP.
func splitNetwork(addr string) (network, bare string) {
	if strings.HasPrefix(addr, "unix:") {
		return "unix", strings.TrimPrefix(addr, "unix:")
	}
	if strings.ContainsAny(addr, "/\\") {
		return "unix", addr
	}
	return "tcp", addr
}

// Dial connects a pool to addr. The network is inferred (see
// splitNetwork); Dial2 pins it explicitly.
func Dial(addr string, opts Options) (*Client, error) {
	network, addr := splitNetwork(addr)
	return Dial2(network, addr, opts)
}

// Dial2 connects a pool over an explicit network ("tcp", "unix").
// Replica connections (Options.Replicas) infer their network per
// address.
func Dial2(network, addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{conns: make([]*Conn, 0, opts.Conns)}
	for i := 0; i < opts.Conns; i++ {
		cn, err := dialConn(network, addr, opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, cn)
	}
	for _, raddr := range opts.Replicas {
		rn, ra := splitNetwork(raddr)
		cn, err := dialConn(rn, ra, opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.replicas = append(c.replicas, cn)
	}
	return c, nil
}

// NumConns reports the pool size.
func (c *Client) NumConns() int { return len(c.conns) }

// NumReplicas reports the replica connection count.
func (c *Client) NumReplicas() int { return len(c.replicas) }

// Conn returns pool member i, for callers managing pipelining
// explicitly (one goroutine per connection).
func (c *Client) Conn(i int) *Conn { return c.conns[i] }

// pick round-robins the pool.
func (c *Client) pick() *Conn {
	return c.conns[c.next.Add(1)%uint64(len(c.conns))]
}

// Close closes every connection; in-flight calls fail with
// ErrConnClosed.
func (c *Client) Close() error {
	var first error
	for _, cn := range append(append([]*Conn(nil), c.conns...), c.replicas...) {
		if cn == nil {
			continue
		}
		if err := cn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Get returns the value stored under k.
func (c *Client) Get(k int64) (v int64, ok bool, err error) { return c.pick().Get(k) }

// GetAt reads k with a commit-stamp barrier: the read is served by a
// replica only if that replica's watermark strictly exceeds minStamp —
// meaning every primary commit with stamp <= minStamp is applied there
// — and otherwise falls through the remaining replicas to the primary.
// Callers obtain minStamp from Watermark on the same lineage (the
// primary answers a fresh clock read, which bounds every commit it has
// acknowledged). With no replicas configured it is Get.
func (c *Client) GetAt(k int64, minStamp uint64) (v int64, ok bool, err error) {
	if n := uint64(len(c.replicas)); n > 0 {
		start := c.rnext.Add(1)
		for i := uint64(0); i < n; i++ {
			cn := c.replicas[(start+i)%n]
			v, ok, err := cn.getAt(k, minStamp)
			if err == nil {
				return v, ok, nil
			}
		}
	}
	return c.pick().Get(k)
}

// Watermark reports the primary's commit-stamp watermark — an upper
// bound covering every write this client has seen complete — for use
// as a GetAt barrier.
func (c *Client) Watermark() (uint64, error) { return c.pick().Watermark() }

// Promote asks the server to make its replica map writable. Against a
// primary (or a non-promotable backend) it fails.
func (c *Client) Promote() error { return c.pick().Promote() }

// Insert adds (k, v) if k is absent and reports whether it did.
func (c *Client) Insert(k, v int64) (bool, error) { return c.pick().Insert(k, v) }

// Put sets k to v unconditionally, reporting whether a previous value
// was replaced.
func (c *Client) Put(k, v int64) (bool, error) { return c.pick().Put(k, v) }

// Remove deletes k and reports whether it was present.
func (c *Client) Remove(k int64) (bool, error) { return c.pick().Remove(k) }

// Range returns every pair with l <= key <= r in key order; max > 0
// truncates the result server-side. Results are additionally capped at
// wire.MaxRangePairs per response (so one range fits one frame);
// callers wanting more paginate, resuming from their last key + 1.
func (c *Client) Range(l, r int64, max int) ([]KV, error) { return c.pick().Range(l, r, max) }

// Atomic applies steps as one transaction on the server, filling each
// step's results. All steps take effect at a single commit point, or
// none do (ErrCrossShard on isolated-shard servers when keys span
// shards).
func (c *Client) Atomic(steps []Step) ([]StepResult, error) { return c.pick().Atomic(steps) }

// Sync forces the server's WAL to durable storage.
func (c *Client) Sync() error { return c.pick().Sync() }

// Snapshot makes the server write a durable snapshot now.
func (c *Client) Snapshot() error { return c.pick().Snapshot() }

// Resize asks the server to live-migrate its default map to n shards
// (rounded up to a power of two; 0 = the map's automatic default) and
// returns the resulting count. The migration serves reads and writes
// throughout; see skiphash.Sharded.Resize for the consistency contract.
func (c *Client) Resize(n int) (int, error) { return c.pick().Resize(n) }

// Ping round-trips an empty request.
func (c *Client) Ping() error { return c.pick().Ping() }

// ServerStats fetches the server's metrics exposition; see
// Conn.ServerStats.
func (c *Client) ServerStats() ([]byte, error) { return c.pick().ServerStats() }

// Conn is one protocol connection. It is safe for concurrent use;
// pipelining callers typically dedicate it to one goroutine.
type Conn struct {
	nc net.Conn

	mu      sync.Mutex // guards writer, id, pending registration, closing
	bw      *bufio.Writer
	enc     []byte // request-encode scratch, reused under mu
	id      uint64
	pending map[uint64]*Call
	err     error // sticky transport error
	wt      time.Duration

	closeOnce  sync.Once // guards nc.Close: exactly one teardown
	readerDone chan struct{}
}

// Call is one in-flight request.
type Call struct {
	done chan struct{}
	resp wire.Response
	err  error
}

// Wait blocks for the response and decodes its status into the typed
// errors.
func (call *Call) Wait() (wire.Response, error) {
	<-call.done
	if call.err != nil {
		return call.resp, call.err
	}
	return call.resp, statusError(&call.resp)
}

func dialConn(network, addr string, opts Options) (*Conn, error) {
	nc, err := net.DialTimeout(network, addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // pipelining batches writes itself; Nagle only adds latency
	}
	cn := &Conn{
		nc:         nc,
		bw:         bufio.NewWriterSize(nc, 64<<10),
		pending:    make(map[uint64]*Call),
		wt:         opts.WriteTimeout,
		readerDone: make(chan struct{}),
	}
	go cn.readLoop()
	return cn, nil
}

// readLoop demultiplexes responses to their pending calls.
func (cn *Conn) readLoop() {
	defer close(cn.readerDone)
	br := bufio.NewReaderSize(cn.nc, 64<<10)
	fr := wire.NewFrameReader(br, wire.MaxResponsePayload)
	for {
		payload, err := fr.Next()
		if err != nil {
			cn.fail(fmt.Errorf("%w: %w", ErrConnClosed, err))
			return
		}
		resp, err := wire.ParseResponse(payload)
		if err != nil {
			cn.fail(fmt.Errorf("%w: %w", ErrConnClosed, err))
			return
		}
		if resp.ID == 0 {
			// Unsolicited terminal frame: the server refusing the
			// connection (busy / shutting down).
			cn.fail(refusalError(&resp))
			return
		}
		cn.mu.Lock()
		call := cn.pending[resp.ID]
		delete(cn.pending, resp.ID)
		cn.mu.Unlock()
		if call != nil {
			call.resp = resp
			close(call.done)
		}
	}
}

// fail marks the connection dead and fails every pending call,
// returning the sticky error (the first failure wins). Teardown is
// idempotent: however many times the reader, a writer and Close race
// into here, the socket closes once and the first cause survives.
func (cn *Conn) fail(err error) error {
	cn.mu.Lock()
	if cn.err == nil {
		cn.err = err
	}
	sticky := cn.err
	calls := cn.pending
	cn.pending = make(map[uint64]*Call)
	cn.mu.Unlock()
	cn.closeOnce.Do(func() { cn.nc.Close() })
	for _, call := range calls {
		call.err = sticky
		close(call.done)
	}
	return sticky
}

// Start encodes req into the connection's write buffer and registers a
// pending Call; the request reaches the wire on the next Flush (or
// when the buffer fills). The req.ID field is assigned by the
// connection.
func (cn *Conn) Start(req *wire.Request) (*Call, error) {
	call := &Call{done: make(chan struct{})}
	cn.mu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.mu.Unlock()
		return nil, err
	}
	cn.id++
	req.ID = cn.id
	cn.pending[req.ID] = call
	// Encoding under mu keeps pipelined frames contiguous and lets the
	// scratch buffer be reused across requests; bufio copies the bytes
	// out, so contention is memcpy-bounded and allocation-free.
	cn.enc = wire.AppendRequest(cn.enc[:0], req)
	buf := cn.enc
	if cn.wt > 0 && cn.bw.Available() < len(buf) {
		// This write will spill to the socket (bufio flushes the full
		// buffer). Arm a fresh deadline: an absolute deadline left over
		// from an earlier Flush may already lie in the past and would
		// fail a perfectly healthy connection.
		cn.nc.SetWriteDeadline(time.Now().Add(cn.wt))
	}
	_, werr := cn.bw.Write(buf)
	cn.mu.Unlock()
	if werr != nil {
		return nil, cn.fail(fmt.Errorf("%w: %w", ErrConnClosed, werr))
	}
	return call, nil
}

// Flush pushes every buffered request to the wire.
func (cn *Conn) Flush() error {
	cn.mu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.mu.Unlock()
		return err
	}
	if cn.wt > 0 {
		cn.nc.SetWriteDeadline(time.Now().Add(cn.wt))
	}
	err := cn.bw.Flush()
	cn.mu.Unlock()
	if err != nil {
		return cn.fail(fmt.Errorf("%w: %w", ErrConnClosed, err))
	}
	return nil
}

// Do issues req synchronously: Start, Flush, Wait.
func (cn *Conn) Do(req *wire.Request) (wire.Response, error) {
	call, err := cn.Start(req)
	if err != nil {
		return wire.Response{}, err
	}
	if err := cn.Flush(); err != nil {
		return wire.Response{}, err
	}
	return call.Wait()
}

// Close tears the connection down; in-flight calls fail with
// ErrConnClosed. A clean close (this Close was the first failure, on
// either call of a double Close) returns nil; a connection that had
// already died returns the original transport failure instead of
// swallowing it, wrapped in ErrConnClosed by the path that recorded
// it.
func (cn *Conn) Close() error {
	err := cn.fail(ErrConnClosed)
	<-cn.readerDone
	if err == ErrConnClosed { // the bare sentinel: closed by Close, not by a failure
		return nil
	}
	return err
}

// Get returns the value stored under k.
func (cn *Conn) Get(k int64) (v int64, ok bool, err error) {
	resp, err := cn.Do(&wire.Request{Op: wire.OpGet, Key: k})
	return resp.Val, resp.Ok, err
}

// Insert adds (k, v) if absent; see Client.Insert.
func (cn *Conn) Insert(k, v int64) (bool, error) {
	resp, err := cn.Do(&wire.Request{Op: wire.OpInsert, Key: k, Val: v})
	return resp.Ok, err
}

// Put sets k to v unconditionally; see Client.Put.
func (cn *Conn) Put(k, v int64) (bool, error) {
	resp, err := cn.Do(&wire.Request{Op: wire.OpPut, Key: k, Val: v})
	return resp.Ok, err
}

// Remove deletes k; see Client.Remove.
func (cn *Conn) Remove(k int64) (bool, error) {
	resp, err := cn.Do(&wire.Request{Op: wire.OpDel, Key: k})
	return resp.Ok, err
}

// Range collects [l, r]; see Client.Range.
func (cn *Conn) Range(l, r int64, max int) ([]KV, error) {
	resp, err := cn.Do(&wire.Request{Op: wire.OpRange, Key: l, Val: r, Max: uint32(max)})
	return resp.Pairs, err
}

// Atomic applies steps transactionally; see Client.Atomic.
func (cn *Conn) Atomic(steps []Step) ([]StepResult, error) {
	if len(steps) > wire.MaxBatchSteps {
		// Reject before writing: the server would refuse the frame and
		// the whole connection (with every pipelined call on it) would
		// die for one oversized request.
		return nil, fmt.Errorf("client: batch of %d steps exceeds wire.MaxBatchSteps (%d)",
			len(steps), wire.MaxBatchSteps)
	}
	resp, err := cn.Do(&wire.Request{Op: wire.OpBatch, Steps: steps})
	return resp.Steps, err
}

// Sync forces the server's WAL to durable storage.
func (cn *Conn) Sync() error {
	_, err := cn.Do(&wire.Request{Op: wire.OpSync})
	return err
}

// Snapshot makes the server write a durable snapshot now.
func (cn *Conn) Snapshot() error {
	_, err := cn.Do(&wire.Request{Op: wire.OpSnapshot})
	return err
}

// Ping round-trips an empty request.
func (cn *Conn) Ping() error {
	_, err := cn.Do(&wire.Request{Op: wire.OpPing})
	return err
}

// Resize live-migrates the server's default map to n shards; see
// Client.Resize.
func (cn *Conn) Resize(n int) (int, error) {
	resp, err := cn.Do(&wire.Request{Op: wire.OpResize, Key: int64(n)})
	return int(resp.Val), err
}

// Watermark reports the server's commit-stamp watermark.
func (cn *Conn) Watermark() (uint64, error) {
	resp, err := cn.Do(&wire.Request{Op: wire.OpWatermark})
	return uint64(resp.Val), err
}

// Promote asks the server to make its replica map writable.
func (cn *Conn) Promote() error {
	_, err := cn.Do(&wire.Request{Op: wire.OpPromote})
	return err
}

// ServerStats fetches the server's metrics registry rendered in the
// Prometheus text exposition format. Servers without a registry answer
// with an error.
func (cn *Conn) ServerStats() ([]byte, error) {
	resp, err := cn.Do(&wire.Request{Op: wire.OpStats})
	return resp.BVal, err
}

// getAt pipelines Watermark+Get in one flush on this (replica)
// connection. The server executes a connection's requests in order, so
// when the watermark response strictly exceeds minStamp, every commit
// at or below minStamp was applied before the Get executed and the
// read is valid under the barrier; otherwise errStale sends the caller
// to the next replica.
func (cn *Conn) getAt(k int64, minStamp uint64) (int64, bool, error) {
	wcall, err := cn.Start(&wire.Request{Op: wire.OpWatermark})
	if err != nil {
		return 0, false, err
	}
	gcall, err := cn.Start(&wire.Request{Op: wire.OpGet, Key: k})
	if err != nil {
		return 0, false, err
	}
	if err := cn.Flush(); err != nil {
		return 0, false, err
	}
	wresp, werr := wcall.Wait()
	gresp, gerr := gcall.Wait()
	if werr != nil {
		return 0, false, werr
	}
	if uint64(wresp.Val) <= minStamp {
		return 0, false, errStale
	}
	if gerr != nil {
		return 0, false, gerr
	}
	return gresp.Val, gresp.Ok, nil
}

// statusError maps a response status onto the typed errors.
func statusError(resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusCrossShard:
		return ErrCrossShard
	case wire.StatusNotDurable:
		return ErrNotDurable
	case wire.StatusCorrupt:
		return fmt.Errorf("client: server reported %q: %w", resp.Msg, ErrCorrupt)
	case wire.StatusBusy:
		return ErrServerBusy
	case wire.StatusShuttingDown:
		return ErrShuttingDown
	case wire.StatusReadOnly:
		return ErrReadOnly
	case wire.StatusNsNotFound:
		return fmt.Errorf("client: server reported %q: %w", resp.Msg, ErrNamespaceNotFound)
	case wire.StatusNsExists:
		return fmt.Errorf("client: server reported %q: %w", resp.Msg, ErrNamespaceExists)
	default:
		return fmt.Errorf("client: server error: %s", resp.Msg)
	}
}

// refusalError interprets an id-0 terminal frame.
func refusalError(resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusBusy:
		return ErrServerBusy
	case wire.StatusShuttingDown:
		return ErrShuttingDown
	default:
		return fmt.Errorf("%w: unsolicited %s frame", ErrConnClosed, resp.Status)
	}
}

var _ io.Closer = (*Conn)(nil)
