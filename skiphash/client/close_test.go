package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
	"repro/skiphash"
)

// holdListener accepts connections and holds them open silently.
func holdListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close()
		}
	}()
	return ln
}

func TestCloseIsIdempotent(t *testing.T) {
	ln := holdListener(t)
	cl, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	cn := cl.Conn(0)
	if err := cn.Close(); err != nil {
		t.Fatalf("first Close = %v, want nil", err)
	}
	if err := cn.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("pool Close after conn Close = %v, want nil", err)
	}
}

func TestCloseSurfacesPriorReaderFailure(t *testing.T) {
	// A server that hangs up immediately: the read loop fails with the
	// wrapped transport error before Close runs, and Close must report
	// that original cause instead of swallowing it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			nc.Close()
		}
	}()
	cl, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	cn := cl.Conn(0)
	select {
	case <-cn.readerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("reader did not observe the hangup")
	}
	cerr := cn.Close()
	if cerr == nil {
		t.Fatal("Close after reader failure = nil, want the original cause")
	}
	if !errors.Is(cerr, ErrConnClosed) {
		t.Fatalf("Close error %v does not match ErrConnClosed", cerr)
	}
	if cerr == ErrConnClosed {
		t.Fatal("Close returned the bare sentinel, losing the original cause")
	}
	// Idempotent even after a failure: the second Close reports the
	// same sticky cause, and the socket is not double-closed (no panic,
	// no new error kind).
	if again := cn.Close(); !errors.Is(again, ErrConnClosed) {
		t.Fatalf("second Close = %v", again)
	}
}

func TestCloseFailsInFlightCalls(t *testing.T) {
	ln := holdListener(t)
	cl, err := Dial(ln.Addr().String(), Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	cn := cl.Conn(0)
	call, err := cn.Start(&wire.Request{Op: wire.OpGet, Key: 1})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := cn.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	done := make(chan error, 1)
	go func() { _, werr := call.Wait(); done <- werr }()
	if err := cn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case werr := <-done:
		if !errors.Is(werr, ErrConnClosed) {
			t.Fatalf("in-flight call failed with %v, want ErrConnClosed", werr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight call never failed after Close")
	}
}

// stampedBackend wraps a served map with a fixed watermark (and an
// optional promote hook), standing in for a replica backend.
type stampedBackend struct {
	server.Backend
	watermark uint64
}

func (b *stampedBackend) Watermark() uint64 { return b.watermark }

func serveBackend(t *testing.T, be server.Backend) string {
	t.Helper()
	srv := server.New(be, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func TestGetAtFansOutOverReplicas(t *testing.T) {
	primary := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})
	primary.Put(1, 100)
	pAddr := serveBackend(t, server.NewMapBackend(primary))

	// Replica A is stale in both senses: watermark below any barrier
	// and a wrong (old) value. Replica B is caught up.
	stale := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})
	stale.Put(1, -1)
	staleAddr := serveBackend(t, &stampedBackend{Backend: server.NewMapBackend(stale), watermark: 5})
	fresh := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})
	fresh.Put(1, 100)
	freshAddr := serveBackend(t, &stampedBackend{Backend: server.NewMapBackend(fresh), watermark: 50})

	cl, err := Dial(pAddr, Options{Replicas: []string{staleAddr, freshAddr}})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if cl.NumReplicas() != 2 {
		t.Fatalf("NumReplicas = %d", cl.NumReplicas())
	}
	// The barrier must route around the stale replica regardless of
	// round-robin position.
	for i := 0; i < 8; i++ {
		v, ok, err := cl.GetAt(1, 10)
		if err != nil || !ok || v != 100 {
			t.Fatalf("GetAt(1, 10) = %d %v %v; want 100 true nil", v, ok, err)
		}
	}
	// Both replicas below the barrier: the primary answers.
	for i := 0; i < 4; i++ {
		v, ok, err := cl.GetAt(1, 60)
		if err != nil || !ok || v != 100 {
			t.Fatalf("GetAt(1, 60) = %d %v %v; want primary fallback 100 true nil", v, ok, err)
		}
	}
	// The primary has no Watermarker here, so Watermark must error, not
	// invent a stamp.
	if _, err := cl.Watermark(); err == nil {
		t.Fatal("Watermark against a plain backend = nil error")
	}
	if err := cl.Promote(); err == nil {
		t.Fatal("Promote against a plain backend = nil error")
	}
}

func TestStatusReadOnlyMapsToErrReadOnly(t *testing.T) {
	if err := statusError(&wire.Response{Status: wire.StatusReadOnly, Msg: "replica"}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("StatusReadOnly mapped to %v", err)
	}
}
