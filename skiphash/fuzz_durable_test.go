package skiphash_test

import (
	"testing"

	"repro/skiphash"
)

// FuzzDurableReplayReads interleaves optimistic fast-path reads with
// WAL-logged writes, then closes the map, recovers it by WAL replay,
// and drives the same interleaving over the replayed nodes. Every read
// — before and after recovery — is checked against a model, so the fast
// path's validation protocol is fuzzed over node/index states produced
// both by live transactions and by the recovery path's rebuild.
func FuzzDurableReplayReads(f *testing.F) {
	// Seeds interleave reads (odd opcodes) between writes, with duplicate
	// and boundary keys, and a write-after-read tail that the replay must
	// preserve.
	f.Add([]byte{0, 5, 1, 5, 0, 7, 1, 7, 2, 5, 1, 6})
	f.Add([]byte{0, 250, 1, 250, 0, 251, 1, 251, 2, 250, 1, 252})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 1, 1, 2, 1, 3, 2, 2, 1, 2, 3, 1, 1, 1})
	f.Add([]byte{4, 9, 1, 9, 4, 9, 1, 9, 2, 9, 1, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<10 {
			data = data[:1<<10]
		}
		dir := t.TempDir()
		cfg := skiphash.Config{
			Buckets:    127,
			MaxLevel:   8,
			Durability: &skiphash.Durability{Dir: dir, Fsync: skiphash.FsyncNone},
		}
		m, err := skiphash.Open[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		model := make(map[int64]int64)

		// run applies the opcode stream: even opcodes write (WAL-logged),
		// odd opcodes read through the fast path, each verified in place.
		run := func(m *skiphash.Map[int64, int64], data []byte) {
			step := int64(0)
			for pos := 0; pos+1 < len(data); pos += 2 {
				opc, k := data[pos], fuzzKey(data[pos+1])
				step++
				v := step << 8
				switch opc % 6 {
				case 0: // Insert
					if m.Insert(k, v) {
						model[k] = v
					}
				case 2: // Remove
					if m.Remove(k) {
						delete(model, k)
					}
				case 4: // Put
					m.Put(k, v)
					model[k] = v
				case 1, 3: // Lookup (fast path)
					got, ok := m.Lookup(k)
					want, present := model[k]
					if ok != present || (ok && got != want) {
						t.Fatalf("step %d: Lookup(%d) = %d,%v want %d,%v", step, k, got, ok, want, present)
					}
				case 5: // Contains (fast path)
					_, present := model[k]
					if got := m.Contains(k); got != present {
						t.Fatalf("step %d: Contains(%d) = %v want %v", step, k, got, present)
					}
				}
			}
		}

		run(m, data)
		if err := m.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		m.Close()

		// Recover by WAL replay and re-run the interleaving over the
		// replayed state; the model carries across, so the first reads
		// check recovery itself.
		m, err = skiphash.Open[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer m.Close()
		for k, want := range model {
			if got, ok := m.Lookup(k); !ok || got != want {
				t.Fatalf("after replay: Lookup(%d) = %d,%v want %d,true", k, got, ok, want)
			}
		}
		run(m, data)
		m.Quiesce()
		if err := m.CheckInvariants(skiphash.CheckOptions{}); err != nil {
			t.Fatalf("invariants after replay: %v", err)
		}
	})
}
