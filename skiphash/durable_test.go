package skiphash_test

import (
	"errors"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/persist"
	"repro/skiphash"
)

func openDurable(t *testing.T, cfg skiphash.Config) *skiphash.Map[int64, int64] {
	t.Helper()
	m, err := skiphash.Open[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatalf("OpenInt64: %v", err)
	}
	return m
}

func assertMatchesModel(t *testing.T, m *skiphash.Map[int64, int64], model map[int64]int64, universe int64) {
	t.Helper()
	for k := int64(0); k < universe; k++ {
		v, ok := m.Lookup(k)
		mv, mok := model[k]
		if ok != mok || (ok && v != mv) {
			t.Fatalf("key %d: recovered (%d,%v), model (%d,%v)", k, v, ok, mv, mok)
		}
	}
	n := 0
	for range m.All() {
		n++
	}
	if n != len(model) {
		t.Fatalf("recovered size %d, model %d", n, len(model))
	}
}

// TestDurableSnapshotReplayProperty is the recovery property test:
// under a randomized workload with snapshots interleaved at arbitrary
// points (and writers running concurrently with them), every
// close-and-reopen cycle must reproduce the sequential model exactly.
func TestDurableSnapshotReplayProperty(t *testing.T) {
	const universe = 256
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		rng := rand.New(rand.NewPCG(seed, 0xd0))
		dir := t.TempDir()
		cfg := skiphash.Config{Durability: &skiphash.Durability{
			Dir: dir, SegmentBytes: 1 << 12, SnapshotBytes: -1,
		}}
		model := map[int64]int64{}
		for cycle := 0; cycle < 4; cycle++ {
			m := openDurable(t, cfg)
			assertMatchesModel(t, m, model, universe)
			// Background writer on disjoint high keys exercises
			// snapshot-while-writing; its committed ops are replayed into
			// the model after it joins.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			bgDone := make(map[int64]int64)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := int64(0); i < 3000; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := universe + (i % 64)
					m.Put(k, i)
					bgDone[k] = i
				}
			}()
			ops := 400 + int(rng.Uint64()%400)
			for i := 0; i < ops; i++ {
				k := int64(rng.Uint64() % universe)
				switch rng.Uint64() % 5 {
				case 0, 1:
					if m.Insert(k, int64(i)) {
						model[k] = int64(i)
					}
				case 2:
					if m.Remove(k) {
						delete(model, k)
					}
				case 3:
					m.Put(k, int64(i))
					model[k] = int64(i)
				case 4:
					if err := m.Snapshot(); err != nil {
						t.Fatalf("seed %d cycle %d: Snapshot: %v", seed, cycle, err)
					}
				}
			}
			close(stop)
			wg.Wait()
			for k, v := range bgDone {
				model[k] = v
			}
			m.Close()
		}
		// Final audit including the background keys.
		m := openDurable(t, cfg)
		assertMatchesModel(t, m, model, universe+64)
		m.Close()
	}
}

// TestDurableCrashAlwaysLosesNothing: with FsyncAlways, a simulated
// process crash after acknowledged operations loses none of them.
func TestDurableCrashAlwaysLosesNothing(t *testing.T) {
	dir := t.TempDir()
	cfg := skiphash.Config{Durability: &skiphash.Durability{Dir: dir, Fsync: skiphash.FsyncAlways}}
	m := openDurable(t, cfg)
	model := map[int64]int64{}
	rng := rand.New(rand.NewPCG(3, 9))
	for i := 0; i < 500; i++ {
		k := int64(rng.Uint64() % 128)
		if rng.Uint64()&1 == 0 {
			m.Put(k, int64(i))
			model[k] = int64(i)
		} else if m.Remove(k) {
			delete(model, k)
		}
	}
	if err := m.SimulateCrash(); err != nil {
		t.Fatalf("SimulateCrash: %v", err)
	}
	m.Close()
	m2 := openDurable(t, cfg)
	defer m2.Close()
	assertMatchesModel(t, m2, model, 128)
}

// TestDurableBatchAtomicity: atomic batches spanning shards are single
// WAL records, so recovery — even from a torn tail — sees each batch
// entirely or not at all.
func TestDurableBatchAtomicity(t *testing.T) {
	dir := t.TempDir()
	// FsyncNone with a fast write-out: records reach the file but stay
	// unsynced, so the torn crash below has a real tail to cut (the tear
	// is bounded by the fsync horizon).
	cfg := skiphash.Config{Shards: 4, Durability: &skiphash.Durability{
		Dir: dir, Fsync: skiphash.FsyncNone, FsyncEvery: 2 * time.Millisecond,
	}}
	s, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatal(err)
	}
	const half = int64(1 << 20)
	for i := int64(0); i < 300; i++ {
		i := i
		_ = s.Atomic(func(op *skiphash.ShardedTxn[int64, int64]) error {
			op.Insert(i, i)
			op.Insert(i+half, i)
			return nil
		})
	}
	st, ok := s.Persister().(*persist.Store[int64, int64])
	if !ok {
		t.Fatal("sharded persister is not the shared store")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if stats := st.Stats(); stats.FlushedBytes == stats.AppendedBytes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("records never reached the file")
		}
		time.Sleep(time.Millisecond)
	}
	// Tear the log mid-record: batches are single records, so the cut
	// may drop trailing batches but can never split one.
	if err := st.SimulateTornCrash(13); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatalf("recovery after torn crash: %v", err)
	}
	defer s2.Close()
	recovered := 0
	for i := int64(0); i < 300; i++ {
		v1, ok1 := s2.Lookup(i)
		v2, ok2 := s2.Lookup(i + half)
		if ok1 != ok2 {
			t.Fatalf("batch %d recovered torn: low=%v high=%v", i, ok1, ok2)
		}
		if ok1 {
			if v1 != i || v2 != i {
				t.Fatalf("batch %d recovered wrong values: %d %d", i, v1, v2)
			}
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("torn tail dropped every batch")
	}
}

// TestDurableCorruptionRejected: a damaged WAL makes Open fail with an
// error matching skiphash.ErrCorrupt, never a silently wrong map.
func TestDurableCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := skiphash.Config{Durability: &skiphash.Durability{Dir: dir}}
	m := openDurable(t, cfg)
	for i := int64(0); i < 200; i++ {
		m.Insert(i, i)
	}
	m.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) == 0 {
		t.Fatal("no WAL segments on disk")
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = skiphash.Open[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if !errors.Is(err, skiphash.ErrCorrupt) {
		t.Fatalf("Open on corrupt WAL: %v, want ErrCorrupt", err)
	}
}

// TestDurabilitySurfaceOnPlainMaps: the durability verbs fail with
// ErrNotDurable on maps built without Config.Durability.
func TestDurabilitySurfaceOnPlainMaps(t *testing.T) {
	m := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})
	defer m.Close()
	if err := m.Snapshot(); !errors.Is(err, skiphash.ErrNotDurable) {
		t.Fatalf("Snapshot on plain map: %v", err)
	}
	if err := m.Sync(); !errors.Is(err, skiphash.ErrNotDurable) {
		t.Fatalf("Sync on plain map: %v", err)
	}
	s := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 2})
	defer s.Close()
	if err := s.Snapshot(); !errors.Is(err, skiphash.ErrNotDurable) {
		t.Fatalf("Snapshot on plain sharded map: %v", err)
	}
}

// TestIsolatedShardCountFromMeta: Config.Shards is only the initial
// count. Reopening an isolated durable map uses the count recorded in
// the meta file — a differing Config.Shards is ignored rather than
// re-partitioning (or rejecting) recovered per-shard histories.
func TestIsolatedShardCountFromMeta(t *testing.T) {
	dir := t.TempDir()
	cfg := skiphash.Config{Shards: 4, IsolatedShards: true, Durability: &skiphash.Durability{Dir: dir}}
	s, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(1, 11)
	s.Close()
	cfg.Shards = 8
	s, err = skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatalf("reopen with different Config.Shards: %v", err)
	}
	if got := s.Shards(); got != 4 {
		t.Fatalf("reopened with %d shards, want recorded 4", got)
	}
	if v, ok := s.Lookup(1); !ok || v != 11 {
		t.Fatalf("Lookup(1) after reopen = %d, %v", v, ok)
	}
	s.Close()

	// A failed/crashed first open leaves some shard directories but no
	// meta file; retrying with the intended count must succeed (nothing
	// could have been written before the first Open returned).
	dir2 := t.TempDir()
	for _, sub := range []string{"shard-000", "shard-002"} {
		if err := os.MkdirAll(filepath.Join(dir2, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	cfg2 := skiphash.Config{Shards: 4, IsolatedShards: true, Durability: &skiphash.Durability{Dir: dir2}}
	s2, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg2, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		t.Fatalf("retry after partial first open: %v", err)
	}
	s2.Insert(9, 9)
	s2.Close()
}
