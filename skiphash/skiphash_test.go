package skiphash_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/linearize"
	"repro/internal/maptest"
	"repro/internal/stm"
	"repro/skiphash"
)

// adapter exposes a skip hash through the shared conformance interface.
type adapter struct {
	m *skiphash.Map[int64, int64]
}

func (a adapter) Lookup(k int64) (int64, bool) { return a.m.Lookup(k) }
func (a adapter) Insert(k, v int64) bool       { return a.m.Insert(k, v) }
func (a adapter) Remove(k int64) bool          { return a.m.Remove(k) }

func (a adapter) Range(l, r int64, buf []maptest.KV) []maptest.KV {
	pairs := a.m.Range(l, r, nil)
	for _, p := range pairs {
		buf = append(buf, maptest.KV{Key: p.Key, Val: p.Val})
	}
	return buf
}

func (a adapter) Ceil(k int64) (int64, int64, bool)  { return a.m.Ceil(k) }
func (a adapter) Floor(k int64) (int64, int64, bool) { return a.m.Floor(k) }
func (a adapter) Succ(k int64) (int64, int64, bool)  { return a.m.Succ(k) }
func (a adapter) Pred(k int64) (int64, int64, bool)  { return a.m.Pred(k) }

func (a adapter) CheckQuiescent() error {
	a.m.Quiesce()
	return a.m.CheckInvariants(skiphash.CheckOptions{})
}

// HandleCount/Close expose the handle lifecycle to the churn component.
func (a adapter) HandleCount() int { return a.m.HandleCount() }
func (a adapter) Close()           { a.m.Close() }

// Batch applies steps as one Atomic transaction; the body tolerates
// re-execution because each attempt overwrites the step outputs.
func (a adapter) Batch(steps []linearize.Step) bool {
	return a.m.Atomic(func(op *skiphash.Txn[int64, int64]) error {
		linearize.ApplySteps(steps, op.Insert, op.Remove, op.Lookup)
		return nil
	}) == nil
}

// InstallSTMHooks exposes the map's runtime to the linearizability
// suite's fault-injection and deterministic-schedule phases.
func (a adapter) InstallSTMHooks(h stm.Hooks) { a.m.Runtime().SetHooks(h) }

func factory(cfg skiphash.Config) maptest.Factory {
	return func() maptest.OrderedMap {
		cfg := cfg
		cfg.Buckets = 1021
		return adapter{m: skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg)}
	}
}

func TestConformanceTwoPath(t *testing.T) {
	maptest.RunAll(t, factory(skiphash.Config{}))
}

func TestConformanceFastOnly(t *testing.T) {
	maptest.RunAll(t, factory(skiphash.Config{FastOnly: true}))
}

func TestConformanceSlowOnly(t *testing.T) {
	maptest.RunAll(t, factory(skiphash.Config{SlowOnly: true}))
}

func TestConformanceUnbufferedRemovals(t *testing.T) {
	maptest.RunAll(t, factory(skiphash.Config{RemovalBufferSize: -1}))
}

func TestStringKeys(t *testing.T) {
	// The paper argues STM makes complex key types trivial; exercise a
	// non-integral key type through the generic constructor.
	m := skiphash.New[string, []string](
		func(a, b string) bool { return a < b },
		func(s string) uint64 {
			var h uint64 = 1469598103934665603
			for i := 0; i < len(s); i++ {
				h = (h ^ uint64(s[i])) * 1099511628211
			}
			return h
		},
		skiphash.Config{Buckets: 101},
	)
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, w := range words {
		if !m.Insert(w, []string{strings.ToUpper(w)}) {
			t.Fatalf("Insert(%q) failed", w)
		}
	}
	pairs := m.Range("alpha", "delta", nil)
	want := []string{"alpha", "bravo", "charlie", "delta"}
	if len(pairs) != len(want) {
		t.Fatalf("Range = %d pairs, want %d", len(pairs), len(want))
	}
	for i, p := range pairs {
		if p.Key != want[i] || p.Val[0] != strings.ToUpper(want[i]) {
			t.Errorf("pair %d = %v", i, p)
		}
	}
	if k, _, ok := m.Succ("bravo"); !ok || k != "charlie" {
		t.Errorf("Succ(bravo) = %q,%v", k, ok)
	}
}

func ExampleNewInt64() {
	m := skiphash.New[int64, string](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Buckets: 101})
	m.Insert(3, "three")
	m.Insert(1, "one")
	m.Insert(2, "two")
	for _, p := range m.Range(1, 3, nil) {
		fmt.Println(p.Key, p.Val)
	}
	// Output:
	// 1 one
	// 2 two
	// 3 three
}

func ExampleMap_All() {
	m := skiphash.New[int64, string](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Buckets: 101})
	m.Insert(2, "two")
	m.Insert(1, "one")
	for k, v := range m.All() {
		fmt.Println(k, v)
	}
	// Output:
	// 1 one
	// 2 two
}

func TestAdaptiveRangeConfig(t *testing.T) {
	maptest.RunAll(t, factory(skiphash.Config{Adaptive: true, AdaptiveSkip: 4}))
}

// shardedAdapter exposes a sharded skip hash through the conformance
// interface.
type shardedAdapter struct {
	s *skiphash.Sharded[int64, int64]
}

func (a shardedAdapter) Lookup(k int64) (int64, bool) { return a.s.Lookup(k) }
func (a shardedAdapter) Insert(k, v int64) bool       { return a.s.Insert(k, v) }
func (a shardedAdapter) Remove(k int64) bool          { return a.s.Remove(k) }

func (a shardedAdapter) Range(l, r int64, buf []maptest.KV) []maptest.KV {
	for _, p := range a.s.Range(l, r, nil) {
		buf = append(buf, maptest.KV{Key: p.Key, Val: p.Val})
	}
	return buf
}

func (a shardedAdapter) Ceil(k int64) (int64, int64, bool)  { return a.s.Ceil(k) }
func (a shardedAdapter) Floor(k int64) (int64, int64, bool) { return a.s.Floor(k) }
func (a shardedAdapter) Succ(k int64) (int64, int64, bool)  { return a.s.Succ(k) }
func (a shardedAdapter) Pred(k int64) (int64, int64, bool)  { return a.s.Pred(k) }

func (a shardedAdapter) CheckQuiescent() error {
	a.s.Quiesce()
	return a.s.CheckInvariants(skiphash.CheckOptions{})
}

// HandleCount/Close expose the handle lifecycle to the churn component.
func (a shardedAdapter) HandleCount() int { return a.s.HandleCount() }
func (a shardedAdapter) Close()           { a.s.Close() }

// Batch applies steps as one cross-shard Atomic transaction.
func (a shardedAdapter) Batch(steps []linearize.Step) bool {
	return a.s.Atomic(func(op *skiphash.ShardedTxn[int64, int64]) error {
		linearize.ApplySteps(steps, op.Insert, op.Remove, op.Lookup)
		return nil
	}) == nil
}

// InstallSTMHooks installs hooks on every runtime backing the map (one
// shared, or one per shard when isolated).
func (a shardedAdapter) InstallSTMHooks(h stm.Hooks) {
	if rt := a.s.Runtime(); rt != nil {
		rt.SetHooks(h)
		return
	}
	for i := 0; i < a.s.NumShards(); i++ {
		a.s.Shard(i).Runtime().SetHooks(h)
	}
}

func TestConformanceSharded(t *testing.T) {
	maptest.RunAll(t, func() maptest.OrderedMap {
		return shardedAdapter{s: skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 4, Buckets: 4096})}
	})
}

func ExampleNewInt64Sharded() {
	m := skiphash.NewSharded[int64, string](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 4, Buckets: 1024})
	m.Insert(3, "three")
	m.Insert(1, "one")
	m.Insert(2, "two")
	// Ranges merge the shards back into key order.
	for _, p := range m.Range(1, 3, nil) {
		fmt.Println(p.Key, p.Val)
	}
	// Batches span shards atomically on the default shared runtime.
	_ = m.Atomic(func(op *skiphash.ShardedTxn[int64, string]) error {
		op.Remove(1)
		op.Insert(4, "four")
		return nil
	})
	fmt.Println(m.Contains(1))
	// Output:
	// 1 one
	// 2 two
	// 3 three
	// false
}

func ExampleMap_Atomic() {
	m := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Buckets: 101})
	m.Insert(1, 100)
	// Move the value from key 1 to key 2 atomically.
	_ = m.Atomic(func(op *skiphash.Txn[int64, int64]) error {
		v, _ := op.Lookup(1)
		op.Remove(1)
		op.Insert(2, v)
		return nil
	})
	_, ok1 := m.Lookup(1)
	v2, ok2 := m.Lookup(2)
	fmt.Println(ok1, v2, ok2)
	// Output: false 100 true
}
