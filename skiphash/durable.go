package skiphash

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/shard"
	"repro/internal/stm"
)

// Durability configures persistence for the Open constructors; set it
// as Config.Durability. See the package documentation's "Durability and
// recovery" section for the fsync-policy contract.
type Durability = persist.Options

// FsyncPolicy selects how aggressively the write-ahead log is fsynced.
type FsyncPolicy = persist.FsyncPolicy

// Fsync policies, least to most durable: FsyncNone never fsyncs while
// running (a clean Close still flushes and syncs), FsyncInterval (the
// default) fsyncs in the background at least every Durability.FsyncEvery,
// FsyncAlways group-commits — every update blocks until an fsync covers
// its record.
const (
	FsyncInterval = persist.FsyncInterval
	FsyncAlways   = persist.FsyncAlways
	FsyncNone     = persist.FsyncNone
)

// Codec serializes keys or values of a durable map; see persist.Codec.
type Codec[T any] = persist.Codec[T]

// Int64Codec encodes int64 keys or values for durable maps.
func Int64Codec() Codec[int64] { return persist.Int64Codec() }

// StringCodec encodes string keys or values for durable maps.
func StringCodec() Codec[string] { return persist.StringCodec() }

// Float64Codec encodes float64 values for durable maps.
func Float64Codec() Codec[float64] { return persist.Float64Codec() }

// BytesCodec encodes []byte values for durable maps.
func BytesCodec() Codec[[]byte] { return persist.BytesCodec() }

// ErrCorrupt is matched (errors.Is) by the corruption errors Open
// returns when a WAL segment or snapshot fails its checksums anywhere
// recovery is not allowed to tolerate it.
var ErrCorrupt = persist.ErrCorrupt

// ErrNotDurable is returned by Snapshot/Sync/SimulateCrash on maps
// constructed without Config.Durability.
var ErrNotDurable = core.ErrNotDurable

// Open creates — or recovers — a durable skip hash. With
// cfg.Durability nil it is exactly New. Otherwise the directory's
// newest valid snapshot is loaded, strictly-newer write-ahead-log
// records are replayed in commit-stamp order (tolerating a torn record
// at the tail of the newest segment, the expected artifact of a crash
// mid-append; rejecting checksum corruption with an error matching
// ErrCorrupt), the map's commit clock is floored above every recovered
// stamp, and from then on every committed insert, remove and atomic
// batch is logged with its commit stamp. Call Close to flush; see
// Map.Snapshot, Map.Sync and Map.SimulateCrash for the rest of the
// durability surface.
func Open[K comparable, V any](less func(a, b K) bool, hash func(K) uint64, cfg Config, keys Codec[K], vals Codec[V]) (*Map[K, V], error) {
	if cfg.Durability == nil {
		return New[K, V](less, hash, cfg), nil
	}
	st, err := persist.Open[K, V](*cfg.Durability, keys, vals)
	if err != nil {
		return nil, err
	}
	cfg2 := cfg
	cfg2.Clock = flooredClock(cfg, st.Recovered().MaxStamp)
	cfg2.ClockFactory = nil
	m := core.New[K, V](less, hash, cfg2)
	loadRecovered(st.TakeRecovered(), func(fn func(op *Txn[K, V]) error) { _ = m.Atomic(fn) })
	m.AttachPersistence(st, st)
	st.Start(snapshotSource(st, m.SnapshotChunks))
	return m, nil
}

// OpenInt64 is Open for int64 keys (the paper's evaluation type).
//
// Deprecated: use Open[int64, V](Int64Less, Hash64, cfg, Int64Codec(), vals).
func OpenInt64[V any](cfg Config, vals Codec[V]) (*Map[int64, V], error) {
	return Open[int64, V](Int64Less, Hash64, cfg, Int64Codec(), vals)
}

// OpenSharded creates — or recovers — a durable sharded skip hash.
//
// In shared mode (the default) all shards live in one commit-stamp
// domain, so one write-ahead log under cfg.Durability.Dir orders every
// shard's operations globally and a cross-shard atomic batch is a
// single log record — recovered all-or-nothing even after a crash.
//
// With cfg.IsolatedShards every shard runs its own engine in a
// per-shard subdirectory (shard-000, shard-001, ...): per-shard WAL
// segments recovered into a consistent whole, matching isolated mode's
// per-shard atomicity contract. cfg.Shards only seeds the first open; a
// meta record tracks the live count across Resize calls, and reopening
// recovers at the recorded count regardless of cfg.Shards.
func OpenSharded[K comparable, V any](less func(a, b K) bool, hash func(K) uint64, cfg Config, keys Codec[K], vals Codec[V]) (*Sharded[K, V], error) {
	if cfg.Durability == nil {
		return NewSharded[K, V](less, hash, cfg), nil
	}
	if !cfg.IsolatedShards {
		st, err := persist.Open[K, V](*cfg.Durability, keys, vals)
		if err != nil {
			return nil, err
		}
		cfg2 := cfg
		cfg2.Clock = flooredClock(cfg, st.Recovered().MaxStamp)
		cfg2.ClockFactory = nil
		s := shard.New[K, V](less, hash, cfg2)
		loadRecovered(st.TakeRecovered(), func(fn func(op *ShardedTxn[K, V]) error) { _ = s.Atomic(fn) })
		s.AttachPersistence(st, st)
		st.Start(snapshotSource(st, s.SnapshotChunks))
		return s, nil
	}
	return openIsolatedSharded[K, V](less, hash, cfg, keys, vals)
}

// OpenInt64Sharded is OpenSharded for int64 keys.
//
// Deprecated: use OpenSharded[int64, V](Int64Less, Hash64, cfg, Int64Codec(), vals).
func OpenInt64Sharded[V any](cfg Config, vals Codec[V]) (*Sharded[int64, V], error) {
	return OpenSharded[int64, V](Int64Less, Hash64, cfg, Int64Codec(), vals)
}

// OpenString is Open for string keys in lexicographic order.
//
// Deprecated: use Open[string, V](StringLess, HashString, cfg, StringCodec(), vals).
func OpenString[V any](cfg Config, vals Codec[V]) (*Map[string, V], error) {
	return Open[string, V](StringLess, HashString, cfg, StringCodec(), vals)
}

// OpenStringSharded is OpenSharded for string keys — the constructor
// behind the serving layer's byte-string namespaces.
//
// Deprecated: use OpenSharded[string, V](StringLess, HashString, cfg, StringCodec(), vals).
func OpenStringSharded[V any](cfg Config, vals Codec[V]) (*Sharded[string, V], error) {
	return OpenSharded[string, V](StringLess, HashString, cfg, StringCodec(), vals)
}

// shardDirName returns the directory holding shard i's engine in
// generation gen. Generation 0 keeps the legacy bare name so existing
// directories reopen unchanged; each completed resize bumps the
// generation, giving the new shard set fresh directories that can
// coexist with — and be atomically committed over — the old ones.
func shardDirName(dir string, i int, gen uint64) string {
	if gen == 0 {
		return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
	}
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.g%d", i, gen))
}

// parseShardMeta decodes the meta record: "count\n" (legacy, generation
// 0) or "count gen\n".
func parseShardMeta(raw []byte) (count int, gen uint64, err error) {
	fields := strings.Fields(string(raw))
	switch len(fields) {
	case 1:
		count, err = strconv.Atoi(fields[0])
		return count, 0, err
	case 2:
		count, err = strconv.Atoi(fields[0])
		if err != nil {
			return 0, 0, err
		}
		gen, err = strconv.ParseUint(fields[1], 10, 64)
		return count, gen, err
	}
	return 0, 0, fmt.Errorf("want 1 or 2 fields, got %d", len(fields))
}

// openIsolatedSharded opens one durability engine per shard under
// generation-suffixed subdirectories of dir. The live shard count is
// tracked by a meta file: on reopen the meta's count wins over
// cfg.Shards (which is only the initial count), so a map resized while
// running reopens at its resized geometry. Directories from any other
// generation are deleted at open — they are the leftovers of a resize
// that crashed before (new generation) or just after (old generation)
// its meta commit. The meta is written only after the first fully
// successful open, so a crashed or failed first open (which may leave a
// partial set of empty shard directories — no data can have been
// written before Open returned) is retryable.
func openIsolatedSharded[K comparable, V any](less func(a, b K) bool, hash func(K) uint64, cfg Config, keys Codec[K], vals Codec[V]) (*Sharded[K, V], error) {
	dir := cfg.Durability.Dir
	n := shard.ResolveShards(cfg.Shards)
	gen := uint64(0)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(dir, "shards")
	if raw, err := os.ReadFile(metaPath); err == nil {
		count, g, perr := parseShardMeta(raw)
		if perr != nil {
			return nil, fmt.Errorf("skiphash: unreadable shard-count meta %s: %q: %v", metaPath, raw, perr)
		}
		n, gen = count, g
	} else {
		// No meta: first open (or a retry after a failed/crashed first
		// open). Surplus shard directories would silently lose data, so
		// they are an error; missing ones are simply created.
		existing, gerr := filepath.Glob(filepath.Join(dir, "shard-*"))
		if gerr != nil {
			return nil, gerr
		}
		if len(existing) > n {
			return nil, fmt.Errorf("skiphash: durability dir %s holds %d shard directories but the map resolves to %d shards", dir, len(existing), n)
		}
	}
	// Sweep directories that do not belong to the committed generation:
	// either side of a crashed resize leaves a complete committed set
	// plus stale strays, so the sweep never touches live data.
	live := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		live[shardDirName(dir, i, gen)] = true
	}
	strays, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		return nil, err
	}
	for _, d := range strays {
		if !live[d] {
			if err := os.RemoveAll(d); err != nil {
				return nil, err
			}
		}
	}
	stores := make([]*persist.Store[K, V], n)
	var maxStamp uint64
	for i := range stores {
		opts := *cfg.Durability
		opts.Dir = shardDirName(dir, i, gen)
		st, err := persist.Open[K, V](opts, keys, vals)
		if err != nil {
			for _, prev := range stores[:i] {
				prev.Close()
			}
			return nil, err
		}
		stores[i] = st
		if ms := st.Recovered().MaxStamp; ms > maxStamp {
			maxStamp = ms
		}
	}
	// Every engine opened: record the shard count (atomically and
	// dir-fsynced, so a crash here leaves either no meta — retryable —
	// or a complete one, and power loss cannot silently drop the record
	// and let a later open re-partition recovered data).
	if err := persist.WriteFileAtomic(metaPath, []byte(fmt.Sprintf("%d %d\n", n, gen))); err != nil {
		for _, st := range stores {
			st.Close()
		}
		return nil, err
	}
	cfg2 := cfg
	cfg2.Shards = n
	if cfg2.Clock != nil {
		cfg2.Clock = stm.NewFloorClock(cfg2.Clock, maxStamp)
	} else {
		base := cfg2.ClockFactory
		floor := maxStamp
		cfg2.ClockFactory = func() stm.Clock {
			var inner stm.Clock
			if base != nil {
				inner = base()
			} else {
				inner = stm.NewMonotonicClock()
			}
			return stm.NewFloorClock(inner, floor)
		}
	}
	s := shard.New[K, V](less, hash, cfg2)
	for i, st := range stores {
		loadRecovered(st.TakeRecovered(), func(fn func(op *Txn[K, V]) error) { _ = s.Shard(i).Atomic(fn) })
		s.Shard(i).AttachPersistence(st, st)
		st.Start(snapshotSource(st, s.Shard(i).SnapshotChunks))
	}
	installIsolatedResizeHooks(s, dir, metaPath, gen, cfg, keys, vals)
	return s, nil
}

// installIsolatedResizeHooks wires Sharded.Resize into the per-shard
// durability layout: each resize provisions engines for the destination
// shards in a fresh generation of directories and commits by atomically
// rewriting the meta record once every group has cut over and the old
// engines have been flushed and closed, so reopen always sees exactly
// one complete generation.
//
// Durability contract during an isolated resize: writes committed to an
// already-cut-over group are logged only in the new generation, which
// becomes the recovered history only when the meta record commits at
// the end of the resize. A crash inside that window reopens the
// previous generation — complete up to each group's cutover, because
// sources keep every key — so writes accepted during the migration
// itself may be lost, exactly one generation deep. Shared mode has no
// such window: its single WAL orders every geometry's operations.
func installIsolatedResizeHooks[K comparable, V any](s *Sharded[K, V], dir, metaPath string, gen uint64, cfg Config, keys Codec[K], vals Codec[V]) {
	cur := gen
	var pending []*persist.Store[K, V]
	s.SetResizeHooks(shard.ResizeHooks[K, V]{
		Provision: func(idx, newN int, m *core.Map[K, V]) error {
			opts := *cfg.Durability
			opts.Dir = shardDirName(dir, idx, cur+1)
			st, err := persist.Open[K, V](opts, keys, vals)
			if err != nil {
				return err
			}
			st.TakeRecovered() // fresh directory: nothing to load
			m.AttachPersistence(st, st)
			st.Start(snapshotSource(st, m.SnapshotChunks))
			pending = append(pending, st)
			return nil
		},
		Commit: func(oldN, newN int) error {
			// The old engines were flushed and closed when Resize
			// retired their shards. Sync the new generation so its WALs
			// cover every migrated key, then commit the new geometry
			// with one atomic meta rewrite; only then is the old
			// generation garbage.
			var firstErr error
			for _, st := range pending {
				if err := st.Sync(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			pending = nil
			if firstErr != nil {
				return firstErr
			}
			next := cur + 1
			if err := persist.WriteFileAtomic(metaPath, []byte(fmt.Sprintf("%d %d\n", newN, next))); err != nil {
				return err
			}
			old := cur
			cur = next
			for i := 0; i < oldN; i++ {
				if err := os.RemoveAll(shardDirName(dir, i, old)); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			return firstErr
		},
		Abort: func(newN int) {
			// Resize closed any attached engines with the destination
			// shards; their directories hold no committed history.
			pending = nil
			for i := 0; i < newN; i++ {
				os.RemoveAll(shardDirName(dir, i, cur+1))
			}
		},
	})
}

// recoveredBatch is how many recovered pairs each load transaction
// inserts: batching amortizes per-transaction overhead during recovery
// without building oversized write sets.
const recoveredBatch = 128

// txnInserter abstracts the two Txn flavors for loadRecovered.
type txnInserter[K comparable, V any] interface{ Insert(k K, v V) bool }

// loadRecovered replays recovered pairs into a freshly built (and still
// private) map, in batched transactions, before the operation logger is
// attached — so the load is not re-logged.
func loadRecovered[K comparable, V any, T txnInserter[K, V]](pairs []persist.KV[K, V], atomic func(fn func(op T) error)) {
	for len(pairs) > 0 {
		batch := pairs
		if len(batch) > recoveredBatch {
			batch = pairs[:recoveredBatch]
		}
		atomic(func(op T) error {
			for _, kv := range batch {
				op.Insert(kv.Key, kv.Val)
			}
			return nil
		})
		pairs = pairs[len(batch):]
	}
}

// flooredClock resolves the configured commit clock and floors it above
// every recovered stamp, so post-restart commits extend the log's total
// order instead of rewinding it.
func flooredClock(cfg Config, maxStamp uint64) stm.Clock {
	clock := cfg.Clock
	if clock == nil && cfg.ClockFactory != nil {
		clock = cfg.ClockFactory()
	}
	if clock == nil {
		clock = stm.NewMonotonicClock()
	}
	return stm.NewFloorClock(clock, maxStamp)
}

// snapshotSource adapts a map's SnapshotChunks iterator to the persist
// engine's callback type, reusing one conversion buffer.
func snapshotSource[K comparable, V any](st *persist.Store[K, V],
	chunks func(int, func(uint64, []Pair[K, V]) error) error) persist.SnapshotSource[K, V] {
	return func(chunkSize int, emit func(stamp uint64, kvs []persist.KV[K, V]) error) error {
		kvs := make([]persist.KV[K, V], 0, chunkSize)
		return chunks(chunkSize, func(stamp uint64, pairs []Pair[K, V]) error {
			kvs = kvs[:0]
			for _, p := range pairs {
				kvs = append(kvs, persist.KV[K, V]{Key: p.Key, Val: p.Val})
			}
			return emit(stamp, kvs)
		})
	}
}
