package skiphash_test

import (
	"math"
	"sort"
	"testing"

	"repro/skiphash"
)

// FuzzOps drives the public API — including Atomic batches, range and
// point queries — from a fuzz-provided opcode stream and checks every
// answer against a reference model map, then audits the structural
// invariants. Keys decode through a table that pins the boundary values
// (MinInt64, MaxInt64, 0, negatives) alongside a small contended
// universe, so duplicate and boundary keys are the common case.
func FuzzOps(f *testing.F) {
	// Seed corpus: empty input, duplicate keys, boundary keys, a batch,
	// and a mixed stream touching every opcode.
	f.Add([]byte{})
	f.Add([]byte{0, 5, 0, 5, 2, 5, 1, 5, 1, 5})
	f.Add([]byte{0, 250, 0, 251, 0, 252, 0, 253, 7, 250, 251, 1, 250, 2, 251})
	f.Add([]byte{8, 2, 0, 1, 1, 2, 0, 3, 2, 3})
	f.Add([]byte{0, 1, 9, 2, 20, 3, 7, 4, 7, 0, 9, 5, 17, 6, 30, 7, 0, 40, 8, 1, 2, 9})
	// Fast-path reads interleaved with writes on the same keys: every
	// Lookup lands between commits that move the keys' bucket orecs.
	f.Add([]byte{0, 5, 2, 5, 1, 5, 2, 5, 3, 6, 2, 6, 0, 6, 2, 7, 1, 6, 2, 6})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		m := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Buckets: 127, MaxLevel: 8})
		model := make(map[int64]int64)
		pos := 0
		next := func() (byte, bool) {
			if pos >= len(data) {
				return 0, false
			}
			b := data[pos]
			pos++
			return b, true
		}
		step := int64(0)
		for {
			opc, ok := next()
			if !ok {
				break
			}
			kb, _ := next()
			k := fuzzKey(kb)
			step++
			v := step << 8
			switch opc % 10 {
			case 0: // Insert
				got := m.Insert(k, v)
				_, present := model[k]
				if got == present {
					t.Fatalf("step %d: Insert(%d) = %v with present=%v", step, k, got, present)
				}
				if !present {
					model[k] = v
				}
			case 1: // Remove
				got := m.Remove(k)
				_, present := model[k]
				if got != present {
					t.Fatalf("step %d: Remove(%d) = %v with present=%v", step, k, got, present)
				}
				delete(model, k)
			case 2: // Lookup
				got, ok := m.Lookup(k)
				want, present := model[k]
				if ok != present || (ok && got != want) {
					t.Fatalf("step %d: Lookup(%d) = %d,%v want %d,%v", step, k, got, ok, want, present)
				}
			case 3: // Put
				replaced := m.Put(k, v)
				_, present := model[k]
				if replaced != present {
					t.Fatalf("step %d: Put(%d) = %v with present=%v", step, k, replaced, present)
				}
				model[k] = v
			case 4: // Ceil
				checkFuzzBound(t, step, "Ceil", k, model, m.Ceil, func(mk int64) bool { return mk >= k }, false)
			case 5: // Floor
				checkFuzzBound(t, step, "Floor", k, model, m.Floor, func(mk int64) bool { return mk <= k }, true)
			case 6: // Succ
				checkFuzzBound(t, step, "Succ", k, model, m.Succ, func(mk int64) bool { return mk > k }, false)
			case 7: // Pred
				checkFuzzBound(t, step, "Pred", k, model, m.Pred, func(mk int64) bool { return mk < k }, true)
			case 8: // Atomic batch of up to 4 steps
				nb, _ := next()
				count := int(nb%4) + 1
				type bstep struct {
					op byte
					k  int64
				}
				steps := make([]bstep, 0, count)
				for i := 0; i < count; i++ {
					ob, _ := next()
					bk, _ := next()
					steps = append(steps, bstep{op: ob % 3, k: fuzzKey(bk)})
				}
				// The closure may re-execute on conflict; it recomputes
				// from a fresh model clone each attempt.
				var scratch map[int64]int64
				err := m.Atomic(func(op *skiphash.Txn[int64, int64]) error {
					scratch = make(map[int64]int64, len(model))
					for mk, mv := range model {
						scratch[mk] = mv
					}
					for i, s := range steps {
						sv := v + int64(i)
						switch s.op {
						case 0:
							got := op.Insert(s.k, sv)
							_, present := scratch[s.k]
							if got == present {
								t.Errorf("step %d: batch Insert(%d) = %v with present=%v", step, s.k, got, present)
							}
							if !present {
								scratch[s.k] = sv
							}
						case 1:
							got := op.Remove(s.k)
							_, present := scratch[s.k]
							if got != present {
								t.Errorf("step %d: batch Remove(%d) = %v with present=%v", step, s.k, got, present)
							}
							delete(scratch, s.k)
						case 2:
							got, ok := op.Lookup(s.k)
							want, present := scratch[s.k]
							if ok != present || (ok && got != want) {
								t.Errorf("step %d: batch Lookup(%d) = %d,%v want %d,%v", step, s.k, got, ok, want, present)
							}
						}
					}
					return nil
				})
				if err != nil {
					t.Fatalf("step %d: Atomic returned %v", step, err)
				}
				model = scratch
			case 9: // Range
				span, _ := next()
				lo, hi := k, k
				// Guard against overflow at the MaxInt64 boundary.
				if hi <= math.MaxInt64-int64(span) {
					hi = k + int64(span)
				} else {
					hi = math.MaxInt64
				}
				got := m.Range(lo, hi, nil)
				want := modelPairs(model, lo, hi)
				if len(got) != len(want) {
					t.Fatalf("step %d: Range(%d,%d) returned %d pairs, want %d", step, lo, hi, len(got), len(want))
				}
				for i := range want {
					if got[i].Key != want[i].Key || got[i].Val != want[i].Val {
						t.Fatalf("step %d: Range(%d,%d)[%d] = %v want %v", step, lo, hi, i, got[i], want[i])
					}
				}
			}
		}
		// Final audit: full contents and structural invariants.
		got := m.Range(math.MinInt64, math.MaxInt64, nil)
		want := modelPairs(model, math.MinInt64, math.MaxInt64)
		if len(got) != len(want) {
			t.Fatalf("final population %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Val != want[i].Val {
				t.Fatalf("final pair %d = %v, want %v", i, got[i], want[i])
			}
		}
		m.Quiesce()
		if err := m.CheckInvariants(skiphash.CheckOptions{}); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}

// fuzzKey decodes a key byte: most values land in a small contended
// universe (with negatives), the top of the range pins boundaries.
func fuzzKey(b byte) int64 {
	switch b {
	case 250:
		return math.MinInt64
	case 251:
		return math.MaxInt64
	case 252:
		return math.MinInt64 + 1
	case 253:
		return math.MaxInt64 - 1
	case 254:
		return -1
	case 255:
		return 1
	default:
		return int64(b%48) - 8
	}
}

func checkFuzzBound(t *testing.T, step int64, name string, k int64, model map[int64]int64,
	q func(int64) (int64, int64, bool), pred func(int64) bool, wantMax bool) {
	t.Helper()
	gk, gv, gok := q(k)
	var wk int64
	wok := false
	for mk := range model {
		if !pred(mk) {
			continue
		}
		if !wok || (wantMax && mk > wk) || (!wantMax && mk < wk) {
			wk, wok = mk, true
		}
	}
	if gok != wok || (gok && (gk != wk || gv != model[wk])) {
		t.Fatalf("step %d: %s(%d) = %d,%d,%v want %d,%d,%v", step, name, k, gk, gv, gok, wk, model[wk], wok)
	}
}

func modelPairs(model map[int64]int64, lo, hi int64) []skiphash.Pair[int64, int64] {
	var out []skiphash.Pair[int64, int64]
	for k, v := range model {
		if k >= lo && k <= hi {
			out = append(out, skiphash.Pair[int64, int64]{Key: k, Val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
